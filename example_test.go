package shareinsights_test

import (
	"fmt"
	"log"

	"shareinsights"
)

// ExampleParseFlowFile shows the smallest complete pipeline: a CSV data
// object grouped into an endpoint sink.
func ExampleParseFlowFile() {
	const flow = `
D:
  sales: [region, amount]

D.sales:
  source: mem:sales.csv
  format: csv

F:
  +D.by_region: D.sales | T.sum_by_region

T:
  sum_by_region:
    type: groupby
    groupby: [region]
    aggregates:
      - operator: sum
        apply_on: amount
        out_field: total
`
	p := shareinsights.NewPlatform()
	p.Connectors = shareinsights.NewConnectorRegistry(shareinsights.ConnectorOptions{
		Mem: map[string][]byte{"sales.csv": []byte("east,10\nwest,20\neast,5\n")},
	})
	f, err := shareinsights.ParseFlowFile("sales", flow)
	if err != nil {
		log.Fatal(err)
	}
	d, err := p.Compile(f, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := d.Run(); err != nil {
		log.Fatal(err)
	}
	t, _ := d.Endpoint("by_region")
	fmt.Print(t.Format(0))
	// Output:
	// region  total
	// ------  -----
	// east    15
	// west    20
}

// ExampleDashboard_Select shows widget-to-widget interaction: selecting
// in a list filters a dependent grid, with no event handlers — the
// interaction is a data-transformation flow.
func ExampleDashboard_Select() {
	const flow = `
D:
  sales: [region, product, amount]

D.sales:
  source: mem:sales.csv
  format: csv

F:
  +D.regions: D.sales | T.region_groups

W:
  region_list:
    type: List
    source: D.regions
    text: region

  detail:
    type: Grid
    source: D.sales | T.pick_region

T:
  region_groups:
    type: groupby
    groupby: [region]
  pick_region:
    type: filter_by
    filter_by: [region]
    filter_source: W.region_list
    filter_val: [text]

L:
  rows:
    - [span4: W.region_list, span8: W.detail]
`
	p := shareinsights.NewPlatform()
	p.Connectors = shareinsights.NewConnectorRegistry(shareinsights.ConnectorOptions{
		Mem: map[string][]byte{"sales.csv": []byte("east,widget,10\nwest,gadget,20\neast,gizmo,5\n")},
	})
	f, err := shareinsights.ParseFlowFile("interactive", flow)
	if err != nil {
		log.Fatal(err)
	}
	d, err := p.Compile(f, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := d.Run(); err != nil {
		log.Fatal(err)
	}
	if err := d.Select("region_list", "east"); err != nil {
		log.Fatal(err)
	}
	detail, _ := d.Widget("detail")
	fmt.Print(detail.Data.Format(0))
	// Output:
	// region  product  amount
	// ------  -------  ------
	// east    widget   10
	// east    gizmo    5
}

// ExampleCatalog shows the data-sharing model: one dashboard publishes a
// processed object, another consumes it by name.
func ExampleCatalog() {
	p := shareinsights.NewPlatform()
	p.Connectors = shareinsights.NewConnectorRegistry(shareinsights.ConnectorOptions{
		Mem: map[string][]byte{"raw.csv": []byte("a,1\nb,2\na,3\n")},
	})
	producer, err := shareinsights.ParseFlowFile("producer", `
D:
  raw: [k, v]

D.raw:
  source: mem:raw.csv
  format: csv

F:
  +D.agg: D.raw | T.sum

D.agg:
  publish: totals

T:
  sum:
    type: groupby
    groupby: [k]
    aggregates:
      - operator: sum
        apply_on: v
        out_field: total
`)
	if err != nil {
		log.Fatal(err)
	}
	pd, err := p.Compile(producer, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := pd.Run(); err != nil {
		log.Fatal(err)
	}
	// The consumer has no flows: its widget reads the published object.
	consumer, err := shareinsights.ParseFlowFile("consumer", `
W:
  grid:
    type: Grid
    source: D.totals

L:
  rows:
    - [span12: W.grid]
`)
	if err != nil {
		log.Fatal(err)
	}
	cd, err := p.Compile(consumer, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := cd.Run(); err != nil {
		log.Fatal(err)
	}
	grid, _ := cd.Widget("grid")
	fmt.Print(grid.Data.Format(0))
	// Output:
	// k  total
	// -  -----
	// a  4
	// b  2
}
