package shareinsights

// Optimizer pair: the same end-to-end dashboard run unoptimized
// (as-written stage order, full csv decode) and optimized with run
// history attached — where observed selectivities reorder a rare filter
// ahead of a string scan, push its predicate into the csv decode, and
// skip two never-read columns. The delta is the statistics-informed
// plan win snapshotted in BENCH_optimizer.json.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"shareinsights/internal/connector"
	"shareinsights/internal/dashboard"
	"shareinsights/internal/flowfile"
	"shareinsights/internal/obs/history"
)

const optimizerBenchFlow = `
D:
  sales: [region, amount, notes, audit, payload]

D.sales:
  source: mem:sales.csv
  format: csv

F:
  D.mid: D.sales | T.scan | T.rare
  +D.out: D.mid | T.agg

T:
  scan:
    type: filter_by
    filter_expression: notes contains 'needle'
  rare:
    type: filter_by
    filter_expression: region == 'east'
  agg:
    type: groupby
    groupby: [region]
    aggregates:
      - operator: sum
        apply_on: amount
        out_field: total
`

// optimizerBenchCSV builds the skewed dataset the plan change exploits:
// the region filter keeps ~1% of rows but is written second, the notes
// scan keeps ~half and is written first, and audit/payload are wide
// columns nothing ever reads.
func optimizerBenchCSV(rows int) []byte {
	rng := rand.New(rand.NewSource(17))
	var b strings.Builder
	b.Grow(rows * 90)
	b.WriteString("region,amount,notes,audit,payload\n")
	regions := []string{"west", "north", "south"}
	for i := 0; i < rows; i++ {
		region := regions[rng.Intn(len(regions))]
		if rng.Intn(100) == 0 {
			region = "east"
		}
		notes := fmt.Sprintf("case %07d routine", i)
		if rng.Intn(2) == 0 {
			notes = fmt.Sprintf("case %07d needle review", i)
		}
		fmt.Fprintf(&b, "%s,%d,%s,audit-%016d,payload-%024d\n",
			region, rng.Intn(500), notes, rng.Int63(), rng.Int63())
	}
	return []byte(b.String())
}

func benchOptimizerRun(b *testing.B, optimize bool) {
	f, err := flowfile.Parse("optbench", optimizerBenchFlow)
	if err != nil {
		b.Fatal(err)
	}
	mem := map[string][]byte{"sales.csv": optimizerBenchCSV(150_000)}
	p := dashboard.NewPlatform()
	p.Optimize = optimize
	p.Connectors = connector.NewRegistry(connector.Options{Mem: mem})
	if optimize {
		p.History = history.NewRecorder(history.Options{})
	}
	d, err := p.Compile(f, nil)
	if err != nil {
		b.Fatal(err)
	}
	// Prime: the first run observes as-written selectivities, the second
	// already executes the history-informed plan. Outside the timer, so
	// the measured steady state is what a serving dashboard sees.
	for i := 0; i < 2; i++ {
		if err := d.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	out, ok := d.Endpoint("out")
	if !ok || out.Len() != 1 {
		b.Fatalf("endpoint out missing or wrong shape")
	}
	if optimize {
		// The win must come from the statistics-informed rewrites, not
		// noise: assert the plan the timed runs executed reordered on
		// history evidence and pushed the predicate into the source.
		plan := d.LastPlan()
		np := plan.Node("mid")
		if np == nil || len(np.Stages) == 0 || np.Stages[0].Stage != "filter_by region == 'east'" {
			b.Fatalf("history did not reorder the rare filter first: %+v", np)
		}
		src := plan.Node("sales")
		if src == nil || src.Pushdown == nil || src.Pushdown.Predicate != "region == 'east'" {
			b.Fatalf("predicate did not push into the source: %+v", src)
		}
		if len(src.Pushdown.SkipColumns) == 0 {
			b.Fatalf("dead columns not scheduled for decode skip: %+v", src.Pushdown)
		}
	}
}

func BenchmarkOptimizerOff(b *testing.B) { benchOptimizerRun(b, false) }
func BenchmarkOptimizerOn(b *testing.B)  { benchOptimizerRun(b, true) }

// TestOptimizerBenchEquivalence pins the pair's correctness contract:
// both configurations produce identical endpoint cells.
func TestOptimizerBenchEquivalence(t *testing.T) {
	f, err := flowfile.Parse("optbench", optimizerBenchFlow)
	if err != nil {
		t.Fatal(err)
	}
	mem := map[string][]byte{"sales.csv": optimizerBenchCSV(20_000)}
	var rows [][]string
	for _, optimize := range []bool{false, true} {
		p := dashboard.NewPlatform()
		p.Optimize = optimize
		p.Connectors = connector.NewRegistry(connector.Options{Mem: mem})
		if optimize {
			p.History = history.NewRecorder(history.Options{})
		}
		d, err := p.Compile(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if err := d.Run(); err != nil {
				t.Fatal(err)
			}
		}
		out, ok := d.Endpoint("out")
		if !ok {
			t.Fatal("endpoint out missing")
		}
		var got [][]string
		for _, r := range out.Rows() {
			var cells []string
			for _, v := range r {
				cells = append(cells, v.String())
			}
			got = append(got, cells)
		}
		if rows == nil {
			rows = got
			continue
		}
		if len(got) != len(rows) {
			t.Fatalf("row count drifted: %v vs %v", got, rows)
		}
		for i := range got {
			for j := range got[i] {
				if got[i][j] != rows[i][j] {
					t.Fatalf("cell (%d,%d) drifted: %v vs %v", i, j, got, rows)
				}
			}
		}
	}
}
