package shareinsights

// CLI-level durability tests: serve -data-dir must flush and fsync all
// acknowledged state on SIGTERM, and a fresh process over the same
// directory must recover it.

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// serveProc is one live `shareinsights serve` process.
type serveProc struct {
	cmd  *exec.Cmd
	addr string
	out  *bytes.Buffer
	done chan error
}

// startServe launches the server and waits for its listening banner.
func startServe(t *testing.T, args ...string) *serveProc {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildCLIs(t), "shareinsights"),
		append([]string{"serve", "-addr", "127.0.0.1:0"}, args...)...)
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serveProc{cmd: cmd, out: &bytes.Buffer{}, done: make(chan error, 1)}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(io.TeeReader(pipe, p.out))
		for sc.Scan() {
			line := sc.Text()
			if _, rest, ok := strings.Cut(line, "ShareInsights listening on "); ok {
				addrc <- strings.Fields(rest)[0]
			}
		}
		p.done <- cmd.Wait()
	}()
	select {
	case p.addr = <-addrc:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("server never started:\n%s", p.out)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	return p
}

// stop sends SIGTERM and waits for a clean exit.
func (p *serveProc) stop(t *testing.T) string {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-p.done:
		if err != nil {
			t.Fatalf("server exited uncleanly: %v\n%s", err, p.out)
		}
	case <-time.After(30 * time.Second):
		p.cmd.Process.Kill()
		t.Fatalf("server did not exit on SIGTERM:\n%s", p.out)
	}
	return p.out.String()
}

func httpDo(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestCLIServeGracefulShutdownPersists is the graceful-shutdown
// acceptance test: a dashboard saved over HTTP survives SIGTERM (which
// must flush + fsync the durable state before exiting) and is served
// again by a fresh process over the same -data-dir.
func TestCLIServeGracefulShutdownPersists(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := writeFlowDir(t)
	stateDir := filepath.Join(dir, "state")

	p1 := startServe(t, "-data", dir, "-data-dir", stateDir)
	if code, body := httpDo(t, "PUT", "http://"+p1.addr+"/dashboards/demo", cliFlow); code != 200 {
		t.Fatalf("put: %d %s", code, body)
	}
	if code, body := httpDo(t, "POST", "http://"+p1.addr+"/dashboards/demo/branches/dev", ""); code != 200 {
		t.Fatalf("branch: %d %s", code, body)
	}
	out := p1.stop(t)
	if !strings.Contains(out, "shutting down") || !strings.Contains(out, "durable state closed") {
		t.Fatalf("shutdown did not close the store:\n%s", out)
	}

	// A fresh process over the same directory recovers everything.
	p2 := startServe(t, "-data", dir, "-data-dir", stateDir)
	code, body := httpDo(t, "GET", "http://"+p2.addr+"/dashboards/demo", "")
	if code != 200 || !strings.Contains(body, "D.sales") {
		t.Fatalf("dashboard lost across restart: %d %s", code, body)
	}
	code, body = httpDo(t, "GET", "http://"+p2.addr+"/dashboards/demo/branches", "")
	if code != 200 || !strings.Contains(body, `"dev"`) {
		t.Fatalf("branch lost across restart: %d %s", code, body)
	}
	code, body = httpDo(t, "GET", "http://"+p2.addr+"/health", "")
	if code != 200 || !strings.Contains(body, `"durability":"durable"`) {
		t.Fatalf("health: %d %s", code, body)
	}
	code, body = httpDo(t, "GET", "http://"+p2.addr+"/metrics", "")
	if code != 200 || !strings.Contains(body, "si_store_recoveries_total") {
		t.Fatalf("si_store_* metrics missing: %d", code)
	}
	out = p2.stop(t)
	if !strings.Contains(out, "recovered vcs:") {
		t.Fatalf("recovery summary missing from startup output:\n%s", out)
	}
}

// TestCLIServeInMemoryDefault pins the default: without -data-dir the
// server keeps state in memory and says so on the health surface, and
// without -pprof no profiling endpoint exists anywhere.
func TestCLIServeInMemoryDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	p := startServe(t, "-data", t.TempDir())
	code, body := httpDo(t, "GET", "http://"+p.addr+"/health", "")
	if code != 200 || !strings.Contains(body, `"durability":"in-memory"`) {
		t.Fatalf("health: %d %s", code, body)
	}
	if code, _ := httpDo(t, "GET", "http://"+p.addr+"/debug/pprof/", ""); code != 404 {
		t.Fatalf("pprof on public mux without -pprof: %d", code)
	}
	out := p.stop(t)
	if strings.Contains(out, "pprof listening") {
		t.Fatalf("pprof started without -pprof:\n%s", out)
	}
}

// TestCLIServePprof pins the profiler isolation contract: -pprof serves
// net/http/pprof on its own listener and mux, and the public route
// table never exposes /debug/pprof even while the profiler is up.
func TestCLIServePprof(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	p := startServe(t, "-data", t.TempDir(), "-pprof", "127.0.0.1:0")
	// The pprof banner prints before the main one, so it is already in
	// the captured output once startServe returns.
	_, rest, ok := strings.Cut(p.out.String(), "pprof listening on ")
	if !ok {
		t.Fatalf("pprof banner missing:\n%s", p.out)
	}
	pprofAddr := strings.Fields(rest)[0]
	if pprofAddr == p.addr {
		t.Fatalf("pprof shares the public listener %s", p.addr)
	}
	code, body := httpDo(t, "GET", "http://"+pprofAddr+"/debug/pprof/", "")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: %d %s", code, body)
	}
	// The public mux stays clean even with the profiler running.
	if code, _ := httpDo(t, "GET", "http://"+p.addr+"/debug/pprof/", ""); code != 404 {
		t.Fatalf("pprof leaked onto the public mux: %d", code)
	}
	// And the profiler listener serves nothing but pprof.
	if code, _ := httpDo(t, "GET", "http://"+pprofAddr+"/dashboards", ""); code != 404 {
		t.Fatalf("public route on the pprof mux: %d", code)
	}
	p.stop(t)
}

// TestCLIServeHistoryPersists is the flight-recorder restart
// acceptance: runs recorded before a SIGTERM survive into a fresh
// process over the same -data-dir, and a run in the new process
// compares against the recovered baseline.
func TestCLIServeHistoryPersists(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := writeFlowDir(t)
	stateDir := filepath.Join(dir, "state")

	p1 := startServe(t, "-data", dir, "-data-dir", stateDir)
	base1 := "http://" + p1.addr + "/dashboards/demo"
	if code, body := httpDo(t, "PUT", base1, cliFlow); code != 200 {
		t.Fatalf("put: %d %s", code, body)
	}
	if code, body := httpDo(t, "POST", base1+"/run", ""); code != 200 {
		t.Fatalf("run: %d %s", code, body)
	}
	code, body := httpDo(t, "GET", base1+"/history", "")
	if code != 200 || !strings.Contains(body, `"seq":1`) {
		t.Fatalf("history before restart: %d %s", code, body)
	}
	p1.stop(t)

	p2 := startServe(t, "-data", dir, "-data-dir", stateDir)
	base2 := "http://" + p2.addr + "/dashboards/demo"
	// The recorded run survived the restart.
	code, body = httpDo(t, "GET", base2+"/history", "")
	if code != 200 || !strings.Contains(body, `"seq":1`) {
		t.Fatalf("history lost across restart: %d %s", code, body)
	}
	// A fresh run compares against the recovered baseline.
	if code, body := httpDo(t, "POST", base2+"/run", ""); code != 200 {
		t.Fatalf("run after restart: %d %s", code, body)
	}
	code, body = httpDo(t, "GET", base2+"/history?baseline=1", "")
	if code != 200 || !strings.Contains(body, `"seq":2`) ||
		!strings.Contains(body, `"baseline"`) || !strings.Contains(body, `"baseline_us"`) {
		t.Fatalf("baseline after restart: %d %s", code, body)
	}
	out := p2.stop(t)
	if !strings.Contains(out, "recovered history:") {
		t.Fatalf("history recovery summary missing:\n%s", out)
	}
}
