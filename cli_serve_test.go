package shareinsights

// CLI-level durability tests: serve -data-dir must flush and fsync all
// acknowledged state on SIGTERM, and a fresh process over the same
// directory must recover it.

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// serveProc is one live `shareinsights serve` process.
type serveProc struct {
	cmd  *exec.Cmd
	addr string
	out  *bytes.Buffer
	done chan error
}

// startServe launches the server and waits for its listening banner.
func startServe(t *testing.T, args ...string) *serveProc {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildCLIs(t), "shareinsights"),
		append([]string{"serve", "-addr", "127.0.0.1:0"}, args...)...)
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serveProc{cmd: cmd, out: &bytes.Buffer{}, done: make(chan error, 1)}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(io.TeeReader(pipe, p.out))
		for sc.Scan() {
			line := sc.Text()
			if _, rest, ok := strings.Cut(line, "listening on "); ok {
				addrc <- strings.Fields(rest)[0]
			}
		}
		p.done <- cmd.Wait()
	}()
	select {
	case p.addr = <-addrc:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("server never started:\n%s", p.out)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	return p
}

// stop sends SIGTERM and waits for a clean exit.
func (p *serveProc) stop(t *testing.T) string {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-p.done:
		if err != nil {
			t.Fatalf("server exited uncleanly: %v\n%s", err, p.out)
		}
	case <-time.After(30 * time.Second):
		p.cmd.Process.Kill()
		t.Fatalf("server did not exit on SIGTERM:\n%s", p.out)
	}
	return p.out.String()
}

func httpDo(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestCLIServeGracefulShutdownPersists is the graceful-shutdown
// acceptance test: a dashboard saved over HTTP survives SIGTERM (which
// must flush + fsync the durable state before exiting) and is served
// again by a fresh process over the same -data-dir.
func TestCLIServeGracefulShutdownPersists(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := writeFlowDir(t)
	stateDir := filepath.Join(dir, "state")

	p1 := startServe(t, "-data", dir, "-data-dir", stateDir)
	if code, body := httpDo(t, "PUT", "http://"+p1.addr+"/dashboards/demo", cliFlow); code != 200 {
		t.Fatalf("put: %d %s", code, body)
	}
	if code, body := httpDo(t, "POST", "http://"+p1.addr+"/dashboards/demo/branches/dev", ""); code != 200 {
		t.Fatalf("branch: %d %s", code, body)
	}
	out := p1.stop(t)
	if !strings.Contains(out, "shutting down") || !strings.Contains(out, "durable state closed") {
		t.Fatalf("shutdown did not close the store:\n%s", out)
	}

	// A fresh process over the same directory recovers everything.
	p2 := startServe(t, "-data", dir, "-data-dir", stateDir)
	code, body := httpDo(t, "GET", "http://"+p2.addr+"/dashboards/demo", "")
	if code != 200 || !strings.Contains(body, "D.sales") {
		t.Fatalf("dashboard lost across restart: %d %s", code, body)
	}
	code, body = httpDo(t, "GET", "http://"+p2.addr+"/dashboards/demo/branches", "")
	if code != 200 || !strings.Contains(body, `"dev"`) {
		t.Fatalf("branch lost across restart: %d %s", code, body)
	}
	code, body = httpDo(t, "GET", "http://"+p2.addr+"/health", "")
	if code != 200 || !strings.Contains(body, `"durability":"durable"`) {
		t.Fatalf("health: %d %s", code, body)
	}
	code, body = httpDo(t, "GET", "http://"+p2.addr+"/metrics", "")
	if code != 200 || !strings.Contains(body, "si_store_recoveries_total") {
		t.Fatalf("si_store_* metrics missing: %d", code)
	}
	out = p2.stop(t)
	if !strings.Contains(out, "recovered vcs:") {
		t.Fatalf("recovery summary missing from startup output:\n%s", out)
	}
}

// TestCLIServeInMemoryDefault pins the default: without -data-dir the
// server keeps state in memory and says so on the health surface.
func TestCLIServeInMemoryDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	p := startServe(t, "-data", t.TempDir())
	code, body := httpDo(t, "GET", "http://"+p.addr+"/health", "")
	if code != 200 || !strings.Contains(body, `"durability":"in-memory"`) {
		t.Fatalf("health: %d %s", code, body)
	}
	p.stop(t)
}
