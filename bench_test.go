package shareinsights

// The benchmark harness regenerates every data figure and quantified
// claim of the paper's evaluation (see DESIGN.md §4 for the experiment
// index and EXPERIMENTS.md for paper-vs-measured records):
//
//	BenchmarkFigure31PlatformUsage      Figure 31 — operator/widget popularity
//	BenchmarkFigure32PracticeVsSuccess  Figure 32 — practice vs competition runs
//	BenchmarkFigure35ForkSizes          Figure 35 — fork-to-go flow-file sizes
//	BenchmarkEffortFlowfileVsBaseline   E4 — headline weeks→hours claim proxy
//	BenchmarkApachePipeline/IPLPipeline E5 — §3 use cases end to end
//	BenchmarkOptimizerTransferAblation  E6 — §4.1 transfer minimization
//	BenchmarkAdhocQuery                 E7 — §4.4 path query
//	BenchmarkSharedVsInlineProcessing   E8 — §4.5.3 flow-file-group speedup
//	BenchmarkVCSRevertCycle             E9 — observation-7 debugging loop
//
// plus per-operator micro-benchmarks for the engine substrates.

import (
	"fmt"
	"strings"
	"testing"

	"shareinsights/internal/baseline"
	"shareinsights/internal/connector"
	"shareinsights/internal/dashboard"
	"shareinsights/internal/engine/cube"
	"shareinsights/internal/experiments"
	"shareinsights/internal/flowfile"
	"shareinsights/internal/gen"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
	"shareinsights/internal/task"
	"shareinsights/internal/value"
	"shareinsights/internal/vcs"
)

// ---------------------------------------------------------------------
// Figures 31/32/35 — the hackathon telemetry dashboards

func BenchmarkFigure31PlatformUsage(b *testing.B) {
	var tel *experiments.Telemetry
	var err error
	for i := 0; i < b.N; i++ {
		tel, err = experiments.RunTelemetry(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tel.OperatorUsage.Len()), "operators")
	b.ReportMetric(tel.OperatorUsage.Cell(0, "count").Float(), "top_operator_uses")
	if b.N == 1 {
		b.Logf("Figure 31 — operator usage:\n%s", tel.OperatorUsage.Format(0))
		b.Logf("Figure 31 — widget usage:\n%s", tel.WidgetUsage.Format(0))
	}
}

func BenchmarkFigure32PracticeVsSuccess(b *testing.B) {
	var tel *experiments.Telemetry
	var err error
	for i := 0; i < b.N; i++ {
		tel, err = experiments.RunTelemetry(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tel.PracticeCorrelation(), "pearson_r")
	b.ReportMetric(100*tel.WinnersPracticePercentile(), "winners_practice_pctile")
	if b.N == 1 {
		b.Logf("Figure 32 — practice vs competition runs:\n%s", tel.PracticeVsRuns.Format(0))
		b.Logf("finalists %v, winners %v", tel.Sim.FinalistIDs(), tel.Sim.WinnerIDs())
	}
}

func BenchmarkFigure35ForkSizes(b *testing.B) {
	var tel *experiments.Telemetry
	var err error
	for i := 0; i < b.N; i++ {
		tel, err = experiments.RunTelemetry(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	minSize, maxSize := 1<<30, 0
	for i := 0; i < tel.ForkSizes.Len(); i++ {
		s := int(tel.ForkSizes.Cell(i, "fork_size_bytes").Int())
		if s < minSize {
			minSize = s
		}
		if s > maxSize {
			maxSize = s
		}
	}
	b.ReportMetric(float64(minSize), "min_bytes")
	b.ReportMetric(float64(maxSize), "max_bytes")
	if b.N == 1 {
		b.Logf("Figure 35 — fork sizes:\n%s", tel.ForkSizes.Format(0))
	}
}

// ---------------------------------------------------------------------
// E4 — the headline claim

func BenchmarkEffortFlowfileVsBaseline(b *testing.B) {
	var e *experiments.EffortResult
	var err error
	for i := 0; i < b.N; i++ {
		e, err = experiments.RunEffort(experiments.DefaultSeed, 20000)
		if err != nil {
			b.Fatal(err)
		}
	}
	if !e.OutputsMatch {
		b.Fatal("outputs diverged")
	}
	b.ReportMetric(float64(e.FlowFile.Lines), "flowfile_lines")
	b.ReportMetric(float64(e.Baseline.Lines), "baseline_lines")
	b.ReportMetric(float64(e.Baseline.Tokens)/float64(e.FlowFile.Tokens), "token_ratio")
	if b.N == 1 {
		b.Logf("E4: %s", e)
	}
}

// ---------------------------------------------------------------------
// E5 — the §3 use-case pipelines end to end

func benchPipeline(b *testing.B, name, flow string, mem map[string][]byte, resources map[string][]byte, endpoint string) {
	f, err := flowfile.Parse(name, flow)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := dashboard.NewPlatform()
		p.Connectors = connector.NewRegistry(connector.Options{Mem: mem})
		d, err := p.Compile(f, resources)
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Run(); err != nil {
			b.Fatal(err)
		}
		if _, ok := d.Endpoint(endpoint); !ok {
			b.Fatalf("endpoint %s missing", endpoint)
		}
	}
}

const apacheBenchFlow = `
D:
  svn_jira_summary: [project, year, noOfBugs, noOfCheckins,
    noOfEmailsTotal, noOfContributors, noOfReleases]
  project_meta: [project, technology]

D.svn_jira_summary:
  source: mem:svn.csv
  format: csv

D.project_meta:
  source: mem:meta.csv
  format: csv

F:
  D.activity: D.svn_jira_summary | T.weight
  +D.bubbles: (D.activity, D.project_meta) | T.join_meta | T.agg

T:
  weight:
    type: map
    operator: expr
    expression: noOfCheckins * 2 + noOfBugs + noOfContributors * 5 + noOfReleases * 20
    output: total_wt
  join_meta:
    type: join
    left: activity by project
    right: project_meta by project
    join_condition: inner
    project:
      activity_project: project
      activity_total_wt: total_wt
      project_meta_technology: technology
  agg:
    type: groupby
    groupby: [project, technology]
    aggregates:
      - operator: sum
        apply_on: total_wt
        out_field: total_wt
`

func BenchmarkApachePipeline(b *testing.B) {
	benchPipeline(b, "apache", apacheBenchFlow, map[string][]byte{
		"svn.csv":  gen.SvnJiraSummaryCSV(gen.ApacheOptions{Seed: 7}),
		"meta.csv": gen.ProjectMetaCSV(),
	}, nil, "bubbles")
}

func BenchmarkIPLPipeline(b *testing.B) {
	benchPipeline(b, "ipl", experiments.IPLProcessingFlow, map[string][]byte{
		"tweets.csv": gen.TweetsCSV(gen.TweetsOptions{Seed: 11, N: 20000}),
	}, map[string][]byte{"players.txt": gen.PlayersDict()}, "players_tweets")
}

// ---------------------------------------------------------------------
// E6 / E7 / E8 / E9

func BenchmarkOptimizerTransferAblation(b *testing.B) {
	var a *experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		a, err = experiments.RunAblation(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(a.OptimizedBytes), "optimized_bytes")
	b.ReportMetric(float64(a.RawBytes), "raw_bytes")
	b.ReportMetric(float64(a.RawBytes)/float64(a.OptimizedBytes), "transfer_reduction_x")
	if b.N == 1 {
		b.Logf("E6: %s", a)
	}
}

func BenchmarkAdhocQuery(b *testing.B) {
	p := dashboard.NewPlatform()
	p.Connectors = connector.NewRegistry(connector.Options{
		Mem: map[string][]byte{"tweets.csv": gen.TweetsCSV(gen.TweetsOptions{Seed: 11, N: 20000})},
	})
	f, err := flowfile.Parse("ipl", experiments.IPLProcessingFlow)
	if err != nil {
		b.Fatal(err)
	}
	d, err := p.Compile(f, map[string][]byte{"players.txt": gen.PlayersDict()})
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Run(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := d.AdhocQuery("players_tweets", "player", "sum", "count")
		if err != nil {
			b.Fatal(err)
		}
		if out.Len() == 0 {
			b.Fatal("empty ad-hoc result")
		}
	}
}

func BenchmarkSharedVsInlineProcessing(b *testing.B) {
	var s *experiments.SharedResult
	var err error
	for i := 0; i < b.N; i++ {
		s, err = experiments.RunShared(experiments.DefaultSeed, 20000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.ConsumptionTime.Microseconds()), "shared_us")
	b.ReportMetric(float64(s.InlineTime.Microseconds()), "inline_us")
	b.ReportMetric(float64(s.InlineTime)/float64(s.ConsumptionTime), "feedback_speedup_x")
	if b.N == 1 {
		b.Logf("E8: %s", s)
	}
}

func BenchmarkVCSRevertCycle(b *testing.B) {
	stable := []byte(experiments.IPLProcessingFlow)
	broken := append(append([]byte{}, stable...), []byte("\nT:\n  extra:\n    type: distinct\n")...)
	for i := 0; i < b.N; i++ {
		r := vcs.NewRepo("team")
		h, err := r.Commit(vcs.DefaultBranch, "team", "stable", stable)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Commit(vcs.DefaultBranch, "team", "experiment", broken); err != nil {
			b.Fatal(err)
		}
		content, err := r.ContentAt(h)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Commit(vcs.DefaultBranch, "team", "revert", content); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Micro-benchmarks: engine operators

func benchTable(n int) *table.Table {
	t := table.New(schema.MustFromNames("k", "cat", "v"))
	for i := 0; i < n; i++ {
		t.AppendValues(
			value.NewInt(int64(i)),
			value.NewString(fmt.Sprintf("c%d", i%37)),
			value.NewFloat(float64(i%1000)),
		)
	}
	return t
}

func specFromText(b *testing.B, src string) task.Spec {
	b.Helper()
	f, err := flowfile.Parse("bench", "T:\n"+src)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := task.NewRegistry().Parse(f, f.Tasks[f.TaskOrder[0]])
	if err != nil {
		b.Fatal(err)
	}
	return spec
}

func benchSpec(b *testing.B, spec task.Spec, in *table.Table) {
	env := &task.Env{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Exec(env, []*table.Table{in}, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(in.SizeBytes()))
}

func BenchmarkTaskFilter(b *testing.B) {
	benchSpec(b, specFromText(b, "  f:\n    type: filter_by\n    filter_expression: v > 500\n"), benchTable(100000))
}

func BenchmarkTaskGroupBy(b *testing.B) {
	benchSpec(b, specFromText(b, `  g:
    type: groupby
    groupby: [cat]
    aggregates:
      - operator: sum
        apply_on: v
        out_field: total
      - operator: avg
        apply_on: v
        out_field: mean
`), benchTable(100000))
}

func BenchmarkTaskTopN(b *testing.B) {
	benchSpec(b, specFromText(b, "  t:\n    type: topn\n    groupby: [cat]\n    orderby_column: [v DESC]\n    limit: 5\n"), benchTable(100000))
}

func BenchmarkTaskMapExpr(b *testing.B) {
	benchSpec(b, specFromText(b, "  m:\n    type: map\n    operator: expr\n    expression: v * 2 + k\n    output: score\n"), benchTable(100000))
}

func BenchmarkTaskJoin(b *testing.B) {
	left := benchTable(50000)
	right := table.New(schema.MustFromNames("cat", "label"))
	for i := 0; i < 37; i++ {
		right.AppendValues(value.NewString(fmt.Sprintf("c%d", i)), value.NewString(fmt.Sprintf("label%d", i)))
	}
	spec := specFromText(b, `  j:
    type: join
    left: l by cat
    right: r by cat
    join_condition: inner
`)
	env := &task.Env{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Exec(env, []*table.Table{left, right}, []string{"l", "r"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCubeFilterUpdate(b *testing.B) {
	t := benchTable(100000)
	c := cube.New(t)
	cat, err := c.Dimension("cat")
	if err != nil {
		b.Fatal(err)
	}
	v, err := c.Dimension("v")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.GroupBy(cat, cube.Sum, "v"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := value.NewFloat(float64(i % 500))
		hi := value.NewFloat(float64(i%500 + 200))
		v.FilterRange(lo, hi)
	}
}

func BenchmarkFlowFileParse(b *testing.B) {
	src := experiments.IPLProcessingFlow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flowfile.Parse("bench", src); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(src)))
}

func BenchmarkSBINEncodeDecode(b *testing.B) {
	t := benchTable(10000)
	payload := connector.EncodeSBIN(t)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := connector.DecodeSBIN(connector.EncodeSBIN(t)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineIPL(b *testing.B) {
	tweets := gen.TweetsCSV(gen.TweetsOptions{Seed: 11, N: 20000})
	dict := gen.PlayersDict()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.IPLPlayerCounts(tweets, dict); err != nil {
			b.Fatal(err)
		}
	}
}

// Sanity test keeping the bench fixtures honest under `go test`.
func TestBenchFixturesParse(t *testing.T) {
	for name, src := range map[string]string{
		"apache": apacheBenchFlow,
		"ipl":    experiments.IPLProcessingFlow,
	} {
		f, err := flowfile.Parse(name, src)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := f.Validate(true); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if !strings.Contains(experiments.IPLProcessingFlow, "players_pipeline") {
		t.Error("IPL flow fixture unexpectedly changed")
	}
}
