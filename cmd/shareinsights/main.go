// Command shareinsights is the platform CLI.
//
//	shareinsights run <flow-file>        compile, run, print endpoint data
//	shareinsights validate <flow-file>   parse and cross-check the sections
//	shareinsights lint [-json] [-fail-on sev] <flow-file>
//	                                     static analysis: type-check every
//	                                     expression, find dead entities,
//	                                     bad properties (docs/LINTING.md);
//	                                     exits 1 when a finding at or above
//	                                     sev (error|warning|info) exists
//	shareinsights check [-json] <flow-file>
//	                                     lint plus the inferred facts: per-
//	                                     object column types, constants,
//	                                     value intervals, cardinality
//	                                     bounds, filter verdicts and dead
//	                                     columns (docs/TYPES.md)
//	shareinsights fmt <flow-file>        print the canonical form
//	shareinsights plan <flow-file>       print the compiled DAG
//	shareinsights explore <flow-file>    run and print every endpoint table
//	shareinsights render <flow-file>     run and write <name>.html
//	shareinsights time [-compare] <flow-file>
//	                                     run and print the slowest pipeline
//	                                     stages (§6 bottleneck analysis);
//	                                     -compare records the run in the
//	                                     flight recorder (.sihistory beside
//	                                     the flow file, or -history-dir) and
//	                                     prints per-stage deltas against the
//	                                     EWMA baseline of earlier runs
//	shareinsights history [-json] [-limit N] <flow-file>
//	                                     print the recorded run history and
//	                                     per-stage latency profiles without
//	                                     running (docs/OBSERVABILITY.md)
//	shareinsights profile <flow-file>    run and print the auto-generated
//	                                     data-profile meta-dashboard (§6)
//	shareinsights serve [-addr :8080]    start the REST development server
//	                                     (-pprof addr serves net/http/pprof
//	                                     on its own listener and mux, never
//	                                     the public route table); admission
//	                                     control via -max-inflight,
//	                                     -queue-depth, -tenant-rps,
//	                                     -result-cache, -run-max-rows,
//	                                     -run-max-bytes (docs/SERVING.md);
//	                                     -follow <leader-url> serves as a
//	                                     read-only replica with bounded
//	                                     staleness via -max-lag
//	                                     (docs/REPLICATION.md)
//	shareinsights load [-url http://...] drive concurrent dashboard
//	                                     sessions against a serve process
//	                                     and report latency percentiles,
//	                                     shed rate and cache hit rate; with
//	                                     no -url, self-hosts a server and
//	                                     reports ungated vs gated
//	                                     (BENCH_serve.json shape);
//	                                     -replica compares a durable
//	                                     leader against a caught-up
//	                                     follower replica instead
//	shareinsights library                list installed tasks, operators,
//	                                     aggregates, widgets, connectors
//
// Data files referenced by a flow file (CSV payloads, task dictionaries)
// are looked up in the directory of the flow file — the per-dashboard
// data folder of §4.3.2.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"shareinsights"
	"shareinsights/internal/analyze"
	"shareinsights/internal/analyze/flowcheck"
	"shareinsights/internal/dag"
	"shareinsights/internal/diagnose"
	"shareinsights/internal/obs/history"
	"shareinsights/internal/profile"
	"shareinsights/internal/store"
	"shareinsights/internal/task"
	"shareinsights/internal/widget"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shareinsights: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "run", "explore":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		showTrace := fs.Bool("trace", false, "print the run's execution span tree")
		traceJSON := fs.String("trace-json", "", "write the run's trace as Chrome trace-event JSON to `file`")
		timeout := fs.Duration("timeout", 0, "overall run deadline (e.g. 30s); 0 disables")
		retries := fs.Int("retries", -1, "connector retry budget per source; -1 keeps the default")
		fs.Parse(args)
		var trace *shareinsights.Trace
		d := mustRunTraced(mustArg(fs.Args(), "flow file"), func(p *shareinsights.Platform, name string) {
			configureResilience(p, *timeout, *retries)
			if *showTrace || *traceJSON != "" {
				trace = shareinsights.NewTrace(name)
				p.Tracer = trace
			}
		})
		for _, name := range d.EndpointNames() {
			t, ok := d.Endpoint(name)
			if !ok {
				continue
			}
			limit := 20
			if cmd == "explore" {
				limit = 0
			}
			fmt.Printf("== D.%s (%d rows) ==\n%s\n", name, t.Len(), t.Format(limit))
		}
		if *showTrace {
			fmt.Println("execution trace:")
			trace.Format(os.Stdout)
		}
		if *traceJSON != "" {
			fd, err := os.Create(*traceJSON)
			if err != nil {
				log.Fatal(err)
			}
			if err := trace.WriteChrome(fd); err != nil {
				log.Fatal(err)
			}
			if err := fd.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Println("wrote", *traceJSON)
		}
	case "validate":
		f := mustParse(mustArg(args, "flow file"))
		if err := f.Validate(true); err != nil {
			for _, d := range diagnose.Diagnose(f, err) {
				fmt.Fprintln(os.Stderr, d)
			}
			os.Exit(1)
		}
		fmt.Printf("%s: ok (%d data objects, %d flows, %d tasks, %d widgets)\n",
			f.Name, len(f.Data), len(f.Flows), len(f.Tasks), len(f.Widgets))
	case "lint":
		fs := flag.NewFlagSet("lint", flag.ExitOnError)
		asJSON := fs.Bool("json", false, "emit findings as JSON")
		failOn := fs.String("fail-on", "error", "exit nonzero when a finding at or above this severity exists: error, warning or info")
		fs.Parse(args)
		gate, ok := analyze.ParseSeverity(*failOn)
		if !ok {
			fatalUsage("bad -fail-on %q: want error, warning or info", *failOn)
		}
		path := mustArg(fs.Args(), "flow file")
		f := mustParse(path)
		report, _ := lintFile(f, path)
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(report); err != nil {
				log.Fatal(err)
			}
		} else {
			for _, fd := range report.Findings {
				fmt.Println(fd)
			}
			errs, warns, infos := report.Counts()
			if len(report.Findings) == 0 {
				fmt.Printf("%s: clean\n", f.Name)
			} else {
				fmt.Printf("%s: %d error(s), %d warning(s), %d info(s)\n", f.Name, errs, warns, infos)
			}
		}
		if report.HasAtLeast(gate) {
			os.Exit(1)
		}
	case "check":
		fs := flag.NewFlagSet("check", flag.ExitOnError)
		asJSON := fs.Bool("json", false, "emit findings and facts as JSON")
		fs.Parse(args)
		path := mustArg(fs.Args(), "flow file")
		f := mustParse(path)
		report, facts := lintFile(f, path)
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(map[string]any{"findings": report.Findings, "facts": facts}); err != nil {
				log.Fatal(err)
			}
		} else {
			printFacts(f.Name, facts)
			for _, fd := range report.Findings {
				fmt.Println(fd)
			}
		}
		if report.HasErrors() {
			os.Exit(1)
		}
	case "fmt":
		f := mustParse(mustArg(args, "flow file"))
		fmt.Print(f.String())
	case "plan":
		path := mustArg(args, "flow file")
		f := mustParse(path)
		p := platformFor(path)
		g, err := dag.Build(f, p.Tasks, p.Catalog.ResolveSchema)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(g.String())
		if dead := g.DeadSinks(); len(dead) > 0 {
			fmt.Printf("dead sinks (skipped): %s\n", strings.Join(dead, ", "))
		}
	case "explain":
		fs := flag.NewFlagSet("explain", flag.ExitOnError)
		asJSON := fs.Bool("json", false, "emit the plan as JSON")
		histDir := fs.String("history-dir", "", "flight-recorder directory feeding observed selectivities; default .sihistory beside the flow file")
		fs.Parse(args)
		path := mustArg(fs.Args(), "flow file")
		var rec *history.Recorder
		_, d := mustCompileTraced(path, func(p *shareinsights.Platform, name string) {
			// Attach the flight recorder only when it already exists (or
			// was pointed at explicitly): explain is read-only and must
			// not litter .sihistory directories.
			dir := historyDir(path, *histDir)
			if _, err := os.Stat(dir); err != nil && *histDir == "" {
				return
			}
			var err error
			rec, err = history.Open(store.NewOSFS(dir), history.Options{})
			if err != nil {
				log.Fatal(err)
			}
			p.History = rec
		})
		if rec != nil {
			defer rec.Close()
		}
		plan := d.Explain()
		if plan == nil {
			log.Fatal("optimizer disabled on this platform; nothing to explain")
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(map[string]any{"dashboard": d.Name, "plan": plan}); err != nil {
				log.Fatal(err)
			}
			break
		}
		fmt.Printf("plan for %s (evidence: history > facts > heuristic):\n", d.Name)
		fmt.Print(plan.Format())
	case "render":
		path := mustArg(args, "flow file")
		d := mustRun(path)
		out := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path)) + ".html"
		fd, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		defer fd.Close()
		if err := d.RenderHTML(fd); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", out)
	case "serve":
		fs := flag.NewFlagSet("serve", flag.ExitOnError)
		addr := fs.String("addr", ":8080", "listen address")
		dataDir := fs.String("data", ".", "data directory for file sources")
		stateDir := fs.String("data-dir", "", "durable state directory (WAL + snapshots, docs/DURABILITY.md); empty keeps state in memory")
		sharedCap := fs.Int("shared-cap", 0, "max published objects in the shared catalog (LRU eviction); 0 = unbounded")
		timeout := fs.Duration("timeout", 0, "per-run deadline for dashboard runs; 0 disables")
		retries := fs.Int("retries", -1, "connector retry budget per source; -1 keeps the default")
		pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (own listener and mux); empty disables")
		maxInflight := fs.Int("max-inflight", 0, "admission gate: max concurrent expensive requests (runs, renders, explores); 0 disables the gate")
		queueDepth := fs.Int("queue-depth", 0, "admission gate: waiters allowed beyond -max-inflight before shedding with 429")
		tenantRPS := fs.Float64("tenant-rps", 0, "per-tenant token-bucket rate limit (X-SI-Tenant header); 0 disables")
		resultCache := fs.Int("result-cache", 0, "shared result cache: collapse identical concurrent runs, serve repeats until invalidated; value bounds the entry count, 0 disables")
		runMaxRows := fs.Int64("run-max-rows", 0, "per-run budget: max materialized rows across all data objects; 0 = unbounded")
		runMaxBytes := fs.Int64("run-max-bytes", 0, "per-run budget: max materialized bytes across all data objects; 0 = unbounded")
		follow := fs.String("follow", "", "run as a read-only replica pulling WAL frames from the leader at this base URL (docs/REPLICATION.md); writes redirect there. With -data-dir the replication cursor survives restarts")
		maxLag := fs.Duration("max-lag", 0, "follower: refuse dashboard reads with 503 + Retry-After once replication lag exceeds this bound; 0 serves however stale")
		poll := fs.Duration("poll", 0, "follower: leader poll interval; 0 keeps the default (500ms)")
		fs.Parse(args)
		p := shareinsights.NewPlatform()
		p.Connectors = shareinsights.NewConnectorRegistry(shareinsights.ConnectorOptions{DataDir: *dataDir})
		configureResilience(p, *timeout, *retries)
		if *runMaxRows > 0 || *runMaxBytes > 0 {
			rows, bytes := *runMaxRows, *runMaxBytes
			p.NewRunBudget = func() shareinsights.EngineBudget {
				return shareinsights.NewRunBudget(rows, bytes)
			}
		}
		if *sharedCap > 0 {
			p.Catalog.SetLimit(*sharedCap)
		}
		var opts []shareinsights.ServerOption
		if *maxInflight > 0 || *queueDepth > 0 || *tenantRPS > 0 {
			opts = append(opts, shareinsights.WithAdmission(shareinsights.AdmissionConfig{
				MaxInFlight: *maxInflight,
				QueueDepth:  *queueDepth,
				TenantRPS:   *tenantRPS,
			}))
		}
		if *resultCache > 0 {
			opts = append(opts, shareinsights.WithResultCache(*resultCache))
		}
		var st *shareinsights.Store
		var fol *shareinsights.Follower
		if *follow != "" {
			p.Metrics = shareinsights.NewMetricsRegistry()
			fcfg := shareinsights.FollowerConfig{
				LeaderURL:    *follow,
				PollInterval: *poll,
				Metrics:      p.Metrics,
			}
			if *stateDir != "" {
				// A durable replica home: the cursor and applied frames
				// survive restarts, so the follower resumes instead of
				// re-bootstrapping.
				fcfg.FS = store.NewOSFS(*stateDir)
			}
			var err error
			fol, err = shareinsights.NewFollower(fcfg)
			if err != nil {
				log.Fatal(err)
			}
			opts = append(opts, shareinsights.WithFollower(fol, *maxLag))
		} else if *stateDir != "" {
			p.Metrics = shareinsights.NewMetricsRegistry()
			var err error
			st, err = shareinsights.NewStore(*stateDir, p.Metrics)
			if err != nil {
				log.Fatal(err)
			}
			for _, rec := range st.Recoveries() {
				line := fmt.Sprintf("recovered %s: %d record(s) replayed", rec.Component, rec.RecordCount)
				if rec.SnapshotBytes > 0 {
					line += fmt.Sprintf(", snapshot %dB from %s", rec.SnapshotBytes, rec.SnapshotAt.Format(time.RFC3339))
				}
				if rec.TornBytes > 0 {
					line += fmt.Sprintf(", %dB torn tail truncated", rec.TornBytes)
				}
				if rec.CorruptSnapshots > 0 {
					line += fmt.Sprintf(", %d corrupt snapshot(s) skipped", rec.CorruptSnapshots)
				}
				fmt.Println(line)
			}
			opts = append(opts, shareinsights.WithStore(st))
		}
		srv := shareinsights.NewServer(p, opts...)
		hs := &http.Server{
			Addr:    *addr,
			Handler: srv.Handler(),
			// Slow-client protection: a stalled peer cannot pin a
			// connection (and its goroutine) forever, and a sink that
			// stops reading a response cannot stall a writer goroutine.
			ReadHeaderTimeout: 10 * time.Second,
			ReadTimeout:       5 * time.Minute,
			WriteTimeout:      5 * time.Minute,
			IdleTimeout:       2 * time.Minute,
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if fol != nil {
			// Catch up before accepting traffic so the first reads are not
			// needlessly stale; a failed first sync is non-fatal (the pull
			// loop keeps retrying) but worth announcing.
			if err := fol.Sync(ctx); err != nil {
				log.Printf("initial sync from %s failed: %v (serving stale; pull loop retries)", *follow, err)
			}
			go fol.Run(ctx)
			fmt.Printf("following leader at %s (poll %s, max lag %s)\n", *follow, *poll, *maxLag)
		}
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			log.Fatal(err)
		}
		errc := make(chan error, 1)
		go func() { errc <- hs.Serve(ln) }()
		// The profiler gets its own mux on its own listener: the pprof
		// handlers never join the public route table, and the default
		// (-pprof unset) exposes nothing.
		var ps *http.Server
		if *pprofAddr != "" {
			pmux := http.NewServeMux()
			pmux.HandleFunc("/debug/pprof/", pprof.Index)
			pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			pln, err := net.Listen("tcp", *pprofAddr)
			if err != nil {
				log.Fatal(err)
			}
			ps = &http.Server{Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
			go func() { ps.Serve(pln) }()
			fmt.Printf("pprof listening on %s\n", pln.Addr())
		}
		// Print the resolved address (":0" picks a free port).
		fmt.Printf("ShareInsights listening on %s (data dir %s)\n", ln.Addr(), *dataDir)
		select {
		case err := <-errc:
			log.Fatal(err)
		case <-ctx.Done():
			stop()
			fmt.Println("shutting down...")
			sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := hs.Shutdown(sctx); err != nil {
				log.Fatal(err)
			}
			if ps != nil {
				ps.Shutdown(sctx)
			}
			// In-flight requests have drained; flush and fsync the WAL
			// so every acknowledged mutation is durable before exit.
			if st != nil {
				if err := st.Close(); err != nil {
					log.Fatal(err)
				}
				fmt.Println("durable state closed")
			}
			if fol != nil {
				if err := fol.Close(); err != nil {
					log.Fatal(err)
				}
				fmt.Println("replica state closed")
			}
		}
	case "load":
		fs := flag.NewFlagSet("load", flag.ExitOnError)
		url := fs.String("url", "", "target serve base URL; empty self-hosts an in-process server and reports ungated vs gated")
		dashboards := fs.Int("dashboards", 4, "distinct dashboards to create and round-robin across")
		workers := fs.Int("workers", 64, "concurrent client sessions")
		requests := fs.Int("requests", 1000, "total run requests")
		tenants := fs.Int("tenants", 4, "distinct X-SI-Tenant identities")
		rows := fs.Int("rows", 500, "rows per dashboard's uploaded CSV")
		maxInflight := fs.Int("max-inflight", 8, "gated self-host: admission gate concurrency")
		queueDepth := fs.Int("queue-depth", 16, "gated self-host: queue depth before shedding")
		tenantRPS := fs.Float64("tenant-rps", 0, "gated self-host: per-tenant token-bucket rate limit; 0 disables")
		resultCache := fs.Int("result-cache", 64, "gated self-host: result cache entries")
		replicaCmp := fs.Bool("replica", false, "self-host compare: a durable leader vs a follower replica serving the same reads after catch-up (docs/REPLICATION.md)")
		out := fs.String("out", "", "write the JSON report to this file instead of stdout")
		fs.Parse(args)
		cfg := shareinsights.LoadConfig{
			BaseURL:    *url,
			Dashboards: *dashboards,
			Workers:    *workers,
			Requests:   *requests,
			Tenants:    *tenants,
			Rows:       *rows,
		}
		var report any
		if *url != "" {
			rep, err := shareinsights.RunLoad(cfg)
			if err != nil {
				log.Fatal(err)
			}
			report = rep
		} else if *replicaCmp {
			report = runReplicaCompare(cfg)
		} else {
			// Self-host compare: the same burst against a plain server and
			// against a gated one, so the report shows what admission
			// control buys — bounded latency plus controlled 429s instead
			// of unbounded pile-up.
			run := func(opts ...shareinsights.ServerOption) *shareinsights.LoadReport {
				base, shutdown := startLoadServer(opts...)
				defer shutdown()
				c := cfg
				c.BaseURL = base
				rep, err := shareinsights.RunLoad(c)
				if err != nil {
					log.Fatal(err)
				}
				return rep
			}
			ungated := run()
			gated := run(
				shareinsights.WithAdmission(shareinsights.AdmissionConfig{
					MaxInFlight: *maxInflight,
					QueueDepth:  *queueDepth,
					TenantRPS:   *tenantRPS,
				}),
				shareinsights.WithResultCache(*resultCache),
			)
			report = map[string]any{
				"config": map[string]any{
					"dashboards": *dashboards, "workers": *workers,
					"requests": *requests, "tenants": *tenants, "rows": *rows,
					"max_inflight": *maxInflight, "queue_depth": *queueDepth,
					"tenant_rps": *tenantRPS, "result_cache": *resultCache,
				},
				"ungated": ungated,
				"gated":   gated,
			}
		}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		buf = append(buf, '\n')
		if *out != "" {
			if err := os.WriteFile(*out, buf, 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("load report written to %s\n", *out)
		} else {
			os.Stdout.Write(buf)
		}
	case "time":
		fs := flag.NewFlagSet("time", flag.ExitOnError)
		compare := fs.Bool("compare", false, "record the run in the flight recorder and print per-stage deltas vs the EWMA baseline")
		histDir := fs.String("history-dir", "", "flight-recorder directory; default .sihistory beside the flow file")
		fs.Parse(args)
		path := mustArg(fs.Args(), "flow file")
		var rec *history.Recorder
		d := mustRunTraced(path, func(p *shareinsights.Platform, name string) {
			if !*compare {
				return
			}
			var err error
			rec, err = history.Open(store.NewOSFS(historyDir(path, *histDir)), history.Options{})
			if err != nil {
				log.Fatal(err)
			}
			p.History = rec
		})
		st := d.Result().Stats
		fmt.Println("slowest pipeline stages:")
		for _, s := range st.Slowest(10) {
			fmt.Printf("  %-12v  D.%-20s  %6d rows  %-8s  %s", s.Duration.Round(time.Microsecond), s.Output, s.Rows, s.Path, s.Stage)
			if s.Plan != "" && s.Plan != "as-written" {
				fmt.Printf("  [plan: %s]", s.Plan)
			}
			fmt.Println()
		}
		// RunWithCache also reports what did NOT run: cached nodes and
		// optimizer-eliminated sinks are as bottleneck-relevant as the
		// slow stages.
		if len(st.CacheHits) > 0 {
			fmt.Printf("cache hits: %s\n", strings.Join(st.CacheHits, ", "))
		} else {
			fmt.Println("cache hits: none")
		}
		if len(st.SkippedSinks) > 0 {
			fmt.Printf("skipped sinks: %s\n", strings.Join(st.SkippedSinks, ", "))
		} else {
			fmt.Println("skipped sinks: none")
		}
		// Resilience telemetry: sources that needed retries or served
		// fallback data are bottlenecks (and risks) too.
		h := d.Health()
		fmt.Printf("source retries: %d\n", h.Retries)
		var degraded []string
		for _, sh := range h.Sources {
			if sh.Status != "ok" {
				degraded = append(degraded, fmt.Sprintf("D.%s (%s)", sh.Name, sh.Status))
			}
		}
		if len(degraded) > 0 {
			fmt.Printf("degraded sources: %s\n", strings.Join(degraded, ", "))
		} else {
			fmt.Println("degraded sources: none")
		}
		if rec != nil {
			printCompare(rec, d.Name)
			if err := rec.Close(); err != nil {
				log.Fatal(err)
			}
		}
	case "history":
		fs := flag.NewFlagSet("history", flag.ExitOnError)
		asJSON := fs.Bool("json", false, "emit runs and profiles as JSON")
		limit := fs.Int("limit", 10, "max runs to print; 0 = all")
		histDir := fs.String("history-dir", "", "flight-recorder directory; default .sihistory beside the flow file")
		fs.Parse(args)
		path := mustArg(fs.Args(), "flow file")
		f := mustParse(path)
		rec, err := history.Open(store.NewOSFS(historyDir(path, *histDir)), history.Options{})
		if err != nil {
			log.Fatal(err)
		}
		defer rec.Close()
		runs := rec.Runs(f.Name, *limit)
		if len(runs) == 0 {
			fatalUsage("no recorded runs for %s; run `shareinsights time -compare %s` first", f.Name, path)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			body := map[string]any{
				"dashboard": f.Name,
				"flow_hash": runs[0].FlowHash,
				"runs":      runs,
				"profiles":  rec.Profiles(runs[0].FlowHash),
			}
			// The recorder's WAL position — the cursor a replica of this
			// history would resume from (docs/REPLICATION.md).
			if d := rec.Dir(); d != nil {
				cur := d.Cursor()
				body["wal"] = map[string]any{
					"generation":       cur.Gen,
					"committed_offset": cur.Offset,
				}
			}
			if err := enc.Encode(body); err != nil {
				log.Fatal(err)
			}
			break
		}
		fmt.Printf("run history for %s (%d run(s), newest first):\n", f.Name, len(runs))
		for _, r := range runs {
			line := fmt.Sprintf("  #%-4d %s  %-8s  %8s  %d stage(s)",
				r.Seq, r.StartedAt.Format(time.RFC3339), r.Status,
				time.Duration(r.DurationUS)*time.Microsecond, len(r.Stages))
			if r.Retries > 0 {
				line += fmt.Sprintf("  retries=%d", r.Retries)
			}
			if r.CacheHits > 0 {
				line += fmt.Sprintf("  cache_hits=%d", r.CacheHits)
			}
			if r.ColumnarFallbacks > 0 {
				line += fmt.Sprintf("  fallbacks=%d", r.ColumnarFallbacks)
			}
			if len(r.DegradedSources) > 0 {
				line += "  degraded=" + strings.Join(r.DegradedSources, ",")
			}
			fmt.Println(line)
		}
		profs := rec.Profiles(runs[0].FlowHash)
		if len(profs) > 0 {
			fmt.Printf("stage profiles (flow %s):\n", runs[0].FlowHash)
			for _, p := range profs {
				fmt.Printf("  D.%-20s %-24s n=%-4d ewma=%-10s p50=%-10s p99=%-10s sel=%.2f\n",
					p.Output, p.Stage, p.Count,
					time.Duration(int64(p.EWMAUS))*time.Microsecond,
					time.Duration(int64(p.Latency.Quantile(0.5)))*time.Microsecond,
					time.Duration(int64(p.Latency.Quantile(0.99)))*time.Microsecond,
					p.Selectivity)
			}
		}
		printCompare(rec, f.Name)
	case "profile":
		d := mustRun(mustArg(args, "flow file"))
		meta, err := profile.BuildMeta(d)
		if err != nil {
			log.Fatal(err)
		}
		for _, name := range meta.EndpointNames() {
			t, ok := meta.Endpoint(name)
			if !ok {
				continue
			}
			fmt.Printf("== %s ==\n%s\n", name, t.Format(0))
		}
	case "library":
		p := shareinsights.NewPlatform()
		fmt.Println("tasks:     ", strings.Join(p.Tasks.Types(), ", "))
		fmt.Println("operators: ", strings.Join(task.Operators(), ", "))
		fmt.Println("aggregates:", strings.Join(task.Aggregates(), ", "))
		fmt.Println("widgets:   ", strings.Join(widget.Types(), ", "))
		fmt.Println("protocols: ", strings.Join(p.Connectors.Protocols(), ", "))
		fmt.Println("formats:   ", strings.Join(p.Connectors.Formats(), ", "))
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: shareinsights {run|validate|lint|check|fmt|plan|explain|explore|render|time|history|profile|serve|load|library} [args]")
	os.Exit(2)
}

// runReplicaCompare is `load -replica`: drive the burst against a
// durable leader, let a follower replicate the resulting state, then
// drive the same run burst against the follower (reads only — its
// writes would 307 to the leader). The report shows what a read
// replica buys: leader-equivalent run latency off replicated state,
// plus the catch-up cost (docs/REPLICATION.md).
func runReplicaCompare(cfg shareinsights.LoadConfig) map[string]any {
	leaderDir, err := os.MkdirTemp("", "si-load-leader-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(leaderDir)
	lp := shareinsights.NewPlatform()
	lp.Metrics = shareinsights.NewMetricsRegistry()
	st, err := shareinsights.NewStore(leaderDir, lp.Metrics)
	if err != nil {
		log.Fatal(err)
	}
	lsrv := shareinsights.NewServer(lp, shareinsights.WithStore(st))
	lln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	lhs := &http.Server{Handler: lsrv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go lhs.Serve(lln)
	leaderURL := "http://" + lln.Addr().String()

	lc := cfg
	lc.BaseURL = leaderURL
	leaderRep, err := shareinsights.RunLoad(lc)
	if err != nil {
		log.Fatal(err)
	}

	fp := shareinsights.NewPlatform()
	fp.Metrics = shareinsights.NewMetricsRegistry()
	fol, err := shareinsights.NewFollower(shareinsights.FollowerConfig{
		LeaderURL: leaderURL,
		Metrics:   fp.Metrics,
	})
	if err != nil {
		log.Fatal(err)
	}
	fsrv := shareinsights.NewServer(fp, shareinsights.WithFollower(fol, 0))
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	t0 := time.Now()
	if err := fol.Sync(ctx); err != nil {
		log.Fatal(err)
	}
	catchup := time.Since(t0)
	fln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fhs := &http.Server{Handler: fsrv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go fhs.Serve(fln)

	fc := cfg
	fc.BaseURL = "http://" + fln.Addr().String()
	fc.SkipSetup = true
	followerRep, err := shareinsights.RunLoad(fc)
	if err != nil {
		log.Fatal(err)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	fhs.Shutdown(sctx)
	lhs.Shutdown(sctx)
	if err := fol.Close(); err != nil {
		log.Fatal(err)
	}
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
	return map[string]any{
		"config": map[string]any{
			"dashboards": cfg.Dashboards, "workers": cfg.Workers,
			"requests": cfg.Requests, "tenants": cfg.Tenants, "rows": cfg.Rows,
		},
		"leader":     leaderRep,
		"follower":   followerRep,
		"catchup_ms": float64(catchup.Microseconds()) / 1000,
	}
}

// startLoadServer spins up an in-process serve instance on a loopback
// port for the self-hosted `load` comparison, returning its base URL
// and a shutdown func.
func startLoadServer(opts ...shareinsights.ServerOption) (string, func()) {
	p := shareinsights.NewPlatform()
	srv := shareinsights.NewServer(p, opts...)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}
}

// historyDir resolves the flight-recorder directory: an explicit
// -history-dir wins, else .sihistory beside the flow file so repeated
// `time -compare` runs of the same dashboard share one baseline.
func historyDir(flowPath, dir string) string {
	if dir != "" {
		return dir
	}
	return filepath.Join(filepath.Dir(flowPath), ".sihistory")
}

// printCompare prints the latest recorded run's per-stage deltas
// against the EWMA baseline of earlier runs — the regression view of
// `time -compare` and GET /dashboards/{name}/history?baseline=1.
// Regressions (beyond the recorder's threshold) are marked with '!'.
func printCompare(rec *history.Recorder, dash string) {
	last, ok := rec.LastRun(dash)
	if !ok {
		return
	}
	if len(last.Deltas) == 0 {
		fmt.Println("baseline: first recorded run for this flow revision, no baseline yet")
		return
	}
	fmt.Println("vs baseline (EWMA of prior runs, '!' = regressed):")
	for _, dl := range last.Deltas {
		mark := " "
		if dl.Regressed {
			mark = "!"
		}
		fmt.Printf("%s D.%-20s %-24s %-8s last=%-10s base=%-10s delta=%+.1f%%\n",
			mark, dl.Output, dl.Stage, dl.Path,
			time.Duration(dl.LastUS)*time.Microsecond,
			time.Duration(dl.BaselineUS)*time.Microsecond,
			dl.DeltaPct)
	}
}

// lintFile runs the static analyzer with the platform context rooted at
// the flow file's directory, returning the report and the inferred
// facts.
func lintFile(f *shareinsights.FlowFile, path string) (*analyze.Report, *flowcheck.Facts) {
	p := platformFor(path)
	return analyze.LintWithFacts(f, analyze.Options{
		Tasks:      p.Tasks,
		Connectors: p.Connectors,
		Shared:     p.Catalog.ResolveSchema,
		Published: func() []analyze.PublishedObject {
			var out []analyze.PublishedObject
			for _, obj := range p.Catalog.Objects() {
				out = append(out, analyze.PublishedObject{Name: obj.Name, Dashboard: obj.Dashboard})
			}
			return out
		},
	})
}

// printFacts renders the typed per-object summary of `shareinsights
// check`: column types with constants and value bounds, row-count
// bounds, filter verdicts, and dead columns.
func printFacts(name string, facts *flowcheck.Facts) {
	fmt.Printf("%s: %d data object(s)\n", name, len(facts.Objects))
	objs := make([]string, 0, len(facts.Objects))
	for obj := range facts.Objects {
		objs = append(objs, obj)
	}
	sort.Strings(objs)
	for _, obj := range objs {
		of := facts.Objects[obj]
		line := fmt.Sprintf("D.%s  <- %s  rows %s", obj, of.Producer, cardString(of.Card))
		if of.Verdict != "" {
			line += "  [" + of.Verdict + "]"
		}
		fmt.Println(line)
		cols := make([]string, 0, len(of.Columns))
		for c := range of.Columns {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		live := map[string]bool{}
		for _, c := range of.Live {
			live[c] = true
		}
		for _, c := range cols {
			cf := of.Columns[c]
			line := fmt.Sprintf("  %-20s %s", c, cf.Type)
			if cf.Const != nil {
				line += fmt.Sprintf("  = %s", *cf.Const)
			} else if cf.Lo != nil || cf.Hi != nil {
				lo, hi := "-inf", "+inf"
				if cf.Lo != nil {
					lo = strconv.FormatFloat(*cf.Lo, 'g', -1, 64)
				}
				if cf.Hi != nil {
					hi = strconv.FormatFloat(*cf.Hi, 'g', -1, 64)
				}
				line += fmt.Sprintf("  in [%s, %s]", lo, hi)
			}
			if of.Live != nil && !live[c] {
				line += "  (unused)"
			}
			fmt.Println(line)
		}
	}
	for _, d := range facts.Dead {
		role := "fetched"
		if d.Computed {
			role = "computed"
		}
		fmt.Printf("dead column: D.%s.%s (%s, never read downstream)\n", d.Object, d.Column, role)
	}
}

// cardString renders a row-count bound compactly: "0..100", ">=5", "?".
func cardString(c flowcheck.Card) string {
	if c.Unbounded {
		if c.Min > 0 {
			return fmt.Sprintf(">=%d", c.Min)
		}
		return "?"
	}
	return fmt.Sprintf("%d..%d", c.Min, c.Max)
}

// fatalUsage reports a usage-level problem (bad argument, unreadable
// or unparsable input) and exits 2, distinguishing it from exit 1,
// which lint/check reserve for "findings at or above the gate".
func fatalUsage(format string, args ...any) {
	log.Printf(format, args...)
	os.Exit(2)
}

func mustArg(args []string, what string) string {
	if len(args) < 1 {
		fatalUsage("missing %s argument", what)
	}
	return args[0]
}

func mustParse(path string) *shareinsights.FlowFile {
	src, err := os.ReadFile(path)
	if err != nil {
		fatalUsage("%v", err)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	f, err := shareinsights.ParseFlowFile(name, string(src))
	if err != nil {
		fatalUsage("%v", err)
	}
	return f
}

// configureResilience applies the -timeout/-retries flags to a
// platform: the run deadline and the connector retry budget.
func configureResilience(p *shareinsights.Platform, timeout time.Duration, retries int) {
	p.RunTimeout = timeout
	if retries >= 0 {
		pol := p.Connectors.RetryPolicy()
		pol.MaxRetries = retries
		p.Connectors.SetRetryPolicy(pol)
	}
}

// platformFor builds a platform whose file connector and task resources
// are rooted at the flow file's directory.
func platformFor(path string) *shareinsights.Platform {
	p := shareinsights.NewPlatform()
	p.Connectors = shareinsights.NewConnectorRegistry(shareinsights.ConnectorOptions{
		DataDir: filepath.Dir(path),
	})
	return p
}

func mustRun(path string) *shareinsights.Dashboard {
	return mustRunTraced(path, nil)
}

// mustRunTraced is mustRun with a pre-run platform hook (the run
// command uses it to attach an execution tracer).
func mustRunTraced(path string, configure func(*shareinsights.Platform, string)) *shareinsights.Dashboard {
	f, d := mustCompileTraced(path, configure)
	if err := d.Run(); err != nil {
		fatalDiagnostics(f, err)
	}
	return d
}

// mustCompileTraced parses and compiles a flow file without running it
// (the explain command's path), with the same platform setup and data
// resources a run would see.
func mustCompileTraced(path string, configure func(*shareinsights.Platform, string)) (*shareinsights.FlowFile, *shareinsights.Dashboard) {
	f := mustParse(path)
	p := platformFor(path)
	if configure != nil {
		configure(p, f.Name)
	}
	// Every regular file beside the flow file is available as a task
	// resource (dictionaries) and via the data: scheme.
	resources := map[string][]byte{}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err == nil {
		for _, e := range entries {
			if e.IsDir() || e.Name() == filepath.Base(path) {
				continue
			}
			if b, err := os.ReadFile(filepath.Join(filepath.Dir(path), e.Name())); err == nil {
				resources[e.Name()] = b
			}
		}
	}
	d, err := p.Compile(f, resources)
	if err != nil {
		fatalDiagnostics(f, err)
	}
	return f, d
}

// fatalDiagnostics prints flow-file-level diagnostics (§6 error
// pin-pointing) instead of raw engine errors, then exits.
func fatalDiagnostics(f *shareinsights.FlowFile, err error) {
	for _, d := range diagnose.Diagnose(f, err) {
		fmt.Fprintln(os.Stderr, "error:", d)
	}
	os.Exit(1)
}
