// Command lintgo runs the project's custom Go analyzers
// (internal/lintgo: ctxbg, metricname) in two modes:
//
//	lintgo ./cmd ./internal      # standalone: walk files and dirs
//	go vet -vettool=$(which lintgo) ./...   # as a vet backend
//
// The vet mode speaks the subset of the unitchecker protocol cmd/go
// needs: -V=full identity for the build cache, -flags discovery, and
// per-package .cfg files whose GoFiles are analyzed. Facts files
// (VetxOutput) are written empty — these analyzers are file-local.
//
// Exit status: 0 clean, 1 diagnostics were reported, 2 usage or
// internal error. CI treats any nonzero as a failed static-analysis
// gate.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"shareinsights/internal/lintgo"
)

// vetConfig is the subset of cmd/go's vet .cfg payload the driver
// consumes.
type vetConfig struct {
	ID         string
	Dir        string
	ImportPath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
}

func main() {
	args := os.Args[1:]
	for i, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			printVersion()
			return
		case a == "-flags" || a == "--flags":
			// Flag discovery: cmd/go probes for supported flags; the
			// driver takes none beyond the protocol itself.
			fmt.Println("[]")
			return
		case a == "-json" || a == "--json":
			args = append(args[:i:i], args[i+1:]...)
		}
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: lintgo [files or dirs...] | lintgo pkg.cfg")
		os.Exit(2)
	}

	var problems []lintgo.Problem
	for _, arg := range args {
		ps, err := run(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lintgo:", err)
			os.Exit(2)
		}
		problems = append(problems, ps...)
	}
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, p)
	}
	if len(problems) > 0 {
		os.Exit(1)
	}
}

// run analyzes one argument: a vet .cfg package unit, or a file or
// directory tree in standalone mode.
func run(arg string) ([]lintgo.Problem, error) {
	if strings.HasSuffix(arg, ".cfg") {
		return runVetUnit(arg)
	}
	files, err := lintgo.GoFilesUnder([]string{arg})
	if err != nil {
		return nil, err
	}
	return lintgo.RunAll(files)
}

func runVetUnit(path string) ([]lintgo.Problem, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("%s: malformed vet config: %w", path, err)
	}
	// The build cache records the facts file as this action's output;
	// it must exist even though file-local analyzers export no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}
	return lintgo.RunAll(cfg.GoFiles)
}

// printVersion answers cmd/go's -V=full probe. The build cache keys
// vet results on this line, so it embeds a digest of the executable:
// rebuilding the tool invalidates cached vet verdicts.
func printVersion() {
	name := "lintgo"
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil)[:16])
			}
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", name, id)
}
