// Command race2insights regenerates every data figure and quantified
// claim from the paper's evaluation (§5) — see EXPERIMENTS.md for the
// paper-vs-measured record.
//
//	race2insights -fig 31       Figure 31: platform usage (operators, widgets)
//	race2insights -fig 32       Figure 32: practice vs competition runs
//	race2insights -fig 35       Figure 35: fork-to-go flow-file sizes
//	race2insights -fig effort   headline claim (E4): flow file vs hand-coded stack
//	race2insights -fig e6       §4.1 optimizer ablation: client transfer
//	race2insights -fig e8       §4.5.3 shared-data feedback speedup
//	race2insights -fig all      everything (default)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"shareinsights/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 31, 32, 35, effort, e6, e8, obs, all")
	seed := flag.Int64("seed", experiments.DefaultSeed, "simulation seed")
	tweets := flag.Int("tweets", 50000, "synthetic tweet volume for effort/shared runs")
	flag.Parse()

	switch *fig {
	case "31", "32", "35":
		telemetry(*seed, *fig)
	case "effort":
		effort(*seed, *tweets)
	case "e6":
		ablation(*seed)
	case "e8":
		shared(*seed, *tweets)
	case "obs":
		observations(*seed)
	case "all":
		telemetry(*seed, "31")
		telemetry(*seed, "32")
		telemetry(*seed, "35")
		effort(*seed, *tweets)
		ablation(*seed)
		shared(*seed, *tweets)
		observations(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}
}

func telemetry(seed int64, fig string) {
	tel, err := experiments.RunTelemetry(seed)
	if err != nil {
		log.Fatalf("telemetry: %v", err)
	}
	switch fig {
	case "31":
		fmt.Println("== Figure 31: platform usage — popular operators ==")
		fmt.Println(tel.OperatorUsage.Format(0))
		fmt.Println("== Figure 31: platform usage — popular widgets ==")
		fmt.Println(tel.WidgetUsage.Format(0))
		fmt.Println("== Figure 31 companion: dashboard runs per hour ==")
		fmt.Println(tel.ActivityByHour.Format(0))
	case "32":
		fmt.Println("== Figure 32: does practice matter? (per-team runs) ==")
		fmt.Println(tel.PracticeVsRuns.Format(0))
		fmt.Printf("finalists: %v\nwinners:   %v\n", tel.Sim.FinalistIDs(), tel.Sim.WinnerIDs())
		fmt.Printf("practice/competition-run Pearson correlation: %.3f\n", tel.PracticeCorrelation())
		fmt.Printf("winners' mean practice percentile: %.0f%%\n\n", 100*tel.WinnersPracticePercentile())
	case "35":
		fmt.Println("== Figure 35: fork to go (flow-file size in bytes at competition start) ==")
		fmt.Println(tel.ForkSizes.Format(0))
	}
}

func effort(seed int64, tweets int) {
	fmt.Println("== E4: headline claim — flow file vs hand-coded Big Data stack ==")
	e, err := experiments.RunEffort(seed, tweets)
	if err != nil {
		log.Fatalf("effort: %v", err)
	}
	fmt.Println(e)
	fmt.Println()
}

func ablation(seed int64) {
	fmt.Println("== E6: §4.1 optimizer ablation — transfer to the interactive context ==")
	a, err := experiments.RunAblation(seed)
	if err != nil {
		log.Fatalf("ablation: %v", err)
	}
	fmt.Println(a)
	fmt.Println()
}

func shared(seed int64, tweets int) {
	fmt.Println("== E8: §4.5.3 shared-data feedback speedup ==")
	s, err := experiments.RunShared(seed, tweets)
	if err != nil {
		log.Fatalf("shared: %v", err)
	}
	fmt.Println(s)
	fmt.Println()
}

// observations restates the paper's §5.2.2 learnings with the evidence
// this reproduction measures for each.
func observations(seed int64) {
	tel, err := experiments.RunTelemetry(seed)
	if err != nil {
		log.Fatalf("telemetry: %v", err)
	}
	sim := tel.Sim
	custom, customSkilled := 0, 0
	forked := 0
	var minFork int = 1 << 30
	for _, t := range sim.Teams {
		if t.WroteCustomTask {
			custom++
			if t.Skill > 0.75 {
				customSkilled++
			}
		}
		if t.ForkSizeBytes > 0 {
			forked++
		}
		if t.ForkSizeBytes < minFork {
			minFork = t.ForkSizeBytes
		}
	}
	customOps := 0
	for i := 0; i < tel.OperatorUsage.Len(); i++ {
		if tel.OperatorUsage.Cell(i, "operator").Str() == "custom" {
			customOps = int(tel.OperatorUsage.Cell(i, "count").Int())
		}
	}
	fmt.Println("== §5.2.2 observations, with measured evidence ==")
	fmt.Printf("1. rich dashboards in six hours: see E4 (flow file is ~5-10x smaller than the hand-coded stack)\n")
	fmt.Printf("2. winning teams wrote custom tasks: %d teams wrote one (%d of them high-skill); %d custom-task uses in telemetry\n",
		custom, customSkilled, customOps)
	fmt.Printf("3. teams forked to start: %d/%d teams started from a fork; smallest starting flow file %d bytes\n",
		forked, len(sim.Teams), minFork)
	fmt.Printf("4. data cleaning is non-trivial: see the profile meta-dashboard (shareinsights profile) surfacing nulls/distincts per column\n")
	fmt.Printf("5. interaction specification needed training: interaction filters are ordinary tasks (filter_by + filter_source); see docs/GRAMMAR.md\n")
	fmt.Printf("6. zero-install browser development: the REST editor API (PUT/run/ds/html) is the only interface; see internal/server\n")
	fmt.Printf("7. revert-to-stable debugging: supported by the VCS (BenchmarkVCSRevertCycle, ~tens of µs per cycle) plus internal/diagnose error pin-pointing\n\n")
}
