package shareinsights

// End-to-end smoke tests for the two executables, built once and driven
// through their real command lines.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var buildOnce sync.Once
var binDir string
var buildErr error

func buildCLIs(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "si-bin")
		if buildErr != nil {
			return
		}
		for _, cmd := range []string{"shareinsights", "race2insights"} {
			out, err := exec.Command("go", "build", "-o", filepath.Join(binDir, cmd), "./cmd/"+cmd).CombinedOutput()
			if err != nil {
				buildErr = err
				t.Logf("build %s: %s", cmd, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building CLIs: %v", buildErr)
	}
	return binDir
}

func runCLI(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	out, err := exec.Command(filepath.Join(buildCLIs(t), bin), args...).CombinedOutput()
	return string(out), err
}

const cliFlow = `
D:
  sales: [region, amount]

D.sales:
  source: sales.csv
  format: csv

F:
  +D.by_region: D.sales | T.sum

T:
  sum:
    type: groupby
    groupby: [region]
    aggregates:
      - operator: sum
        apply_on: amount
        out_field: total
`

func writeFlowDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "demo.flow"), []byte(cliFlow), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "sales.csv"), []byte("east,10\nwest,20\neast,5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestCLIRunValidatePlanProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := writeFlowDir(t)
	flow := filepath.Join(dir, "demo.flow")

	out, err := runCLI(t, "shareinsights", "run", flow)
	if err != nil || !strings.Contains(out, "east") || !strings.Contains(out, "15") {
		t.Fatalf("run: %v\n%s", err, out)
	}
	out, err = runCLI(t, "shareinsights", "validate", flow)
	if err != nil || !strings.Contains(out, "ok") {
		t.Fatalf("validate: %v\n%s", err, out)
	}
	out, err = runCLI(t, "shareinsights", "plan", flow)
	if err != nil || !strings.Contains(out, "groupby region") {
		t.Fatalf("plan: %v\n%s", err, out)
	}
	out, err = runCLI(t, "shareinsights", "profile", flow)
	if err != nil || !strings.Contains(out, "by_region_profile") {
		t.Fatalf("profile: %v\n%s", err, out)
	}
	out, err = runCLI(t, "shareinsights", "time", flow)
	if err != nil || !strings.Contains(out, "slowest pipeline stages") {
		t.Fatalf("time: %v\n%s", err, out)
	}
	out, err = runCLI(t, "shareinsights", "library")
	if err != nil || !strings.Contains(out, "groupby") || !strings.Contains(out, "BubbleChart") {
		t.Fatalf("library: %v\n%s", err, out)
	}
}

func TestCLIDiagnostics(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := writeFlowDir(t)
	bad := strings.Replace(cliFlow, "apply_on: amount", "apply_on: amout", 1)
	badPath := filepath.Join(dir, "bad.flow")
	if err := os.WriteFile(badPath, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "shareinsights", "run", badPath)
	if err == nil {
		t.Fatal("run of broken flow should fail")
	}
	if !strings.Contains(out, "did you mean") {
		t.Fatalf("diagnostics missing from CLI error:\n%s", out)
	}
}

func TestCLILint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := writeFlowDir(t)

	// The shipped flow lints clean, exit 0.
	out, err := runCLI(t, "shareinsights", "lint", filepath.Join(dir, "demo.flow"))
	if err != nil || !strings.Contains(out, "clean") {
		t.Fatalf("lint clean flow: %v\n%s", err, out)
	}

	// A misspelled column in a filter expression is an error: rule ID,
	// task entity, line, did-you-mean hint, exit code 1 — and the
	// pipeline never executes (no sales.csv read is needed).
	bad := strings.Replace(cliFlow, "D.sales | T.sum", "D.sales | T.keep | T.sum", 1) +
		"  keep:\n    type: filter_by\n    filter_expression: amont > 3\n"
	badPath := filepath.Join(dir, "bad.flow")
	if err := os.WriteFile(badPath, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = runCLI(t, "shareinsights", "lint", badPath)
	if err == nil {
		t.Fatalf("lint of broken flow should exit nonzero:\n%s", out)
	}
	for _, want := range []string{"FL003", "T.keep", "line ", `did you mean "amount"?`} {
		if !strings.Contains(out, want) {
			t.Fatalf("lint output missing %q:\n%s", want, out)
		}
	}

	// JSON mode emits the structured findings.
	out, err = runCLI(t, "shareinsights", "lint", "-json", badPath)
	if err == nil {
		t.Fatalf("lint -json of broken flow should exit nonzero:\n%s", out)
	}
	for _, want := range []string{`"rule": "FL003"`, `"severity": "error"`, `"entity": "T.keep"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("lint -json output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIRace2Insights(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	out, err := runCLI(t, "race2insights", "-fig", "31")
	if err != nil || !strings.Contains(out, "filter_by") {
		t.Fatalf("fig 31: %v\n%s", err, out)
	}
	out, err = runCLI(t, "race2insights", "-fig", "obs")
	if err != nil || !strings.Contains(out, "observations") {
		t.Fatalf("obs: %v\n%s", err, out)
	}
}

// TestCLITraceAndTime drives the observability surfaces of the CLI:
// run -trace prints the execution span tree, -trace-json writes a
// Chrome trace-event file, and time reports cache hits and
// optimizer-skipped sinks alongside the slowest stages.
func TestCLITraceAndTime(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := writeFlowDir(t)
	flow := filepath.Join(dir, "demo.flow")

	out, err := runCLI(t, "shareinsights", "run", "-trace", flow)
	if err != nil {
		t.Fatalf("run -trace: %v\n%s", err, out)
	}
	for _, want := range []string{"execution trace:", "run demo", "source D.sales", "node D.by_region", "stage groupby region"} {
		if !strings.Contains(out, want) {
			t.Errorf("run -trace output missing %q:\n%s", want, out)
		}
	}

	traceFile := filepath.Join(dir, "trace.json")
	out, err = runCLI(t, "shareinsights", "run", "-trace-json", traceFile, flow)
	if err != nil || !strings.Contains(out, "wrote "+traceFile) {
		t.Fatalf("run -trace-json: %v\n%s", err, out)
	}
	b, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.TrimSpace(string(b)), "[") || !strings.Contains(string(b), `"ph":"X"`) {
		t.Errorf("trace file is not Chrome trace-event JSON:\n%s", b)
	}

	out, err = runCLI(t, "shareinsights", "time", flow)
	if err != nil || !strings.Contains(out, "cache hits: none") || !strings.Contains(out, "skipped sinks: none") {
		t.Fatalf("time: %v\n%s", err, out)
	}
}

func TestCLIExplain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := writeFlowDir(t)
	flow := filepath.Join(dir, "demo.flow")

	out, err := runCLI(t, "shareinsights", "explain", flow)
	if err != nil || !strings.Contains(out, "plan for demo") ||
		!strings.Contains(out, "D.sales  (source)") ||
		!strings.Contains(out, "groupby region") {
		t.Fatalf("explain: %v\n%s", err, out)
	}
	// explain is read-only: it must not create a flight-recorder
	// directory as a side effect.
	if _, err := os.Stat(filepath.Join(dir, ".sihistory")); err == nil {
		t.Fatal("explain created .sihistory")
	}

	out, err = runCLI(t, "shareinsights", "explain", "-json", flow)
	if err != nil || !strings.Contains(out, `"plan"`) || !strings.Contains(out, `"order"`) {
		t.Fatalf("explain -json: %v\n%s", err, out)
	}

	// After `time -compare` records a run, explain reads the recorded
	// history from the same default directory.
	if out, err = runCLI(t, "shareinsights", "time", "-compare", flow); err != nil {
		t.Fatalf("time -compare: %v\n%s", err, out)
	}
	out, err = runCLI(t, "shareinsights", "explain", flow)
	if err != nil || !strings.Contains(out, "plan for demo") {
		t.Fatalf("explain with history: %v\n%s", err, out)
	}
}
