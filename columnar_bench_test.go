package shareinsights

// Columnar kernel benchmarks, paired with the row-path task benchmarks
// in bench_test.go (BenchmarkTaskFilter/GroupBy/TopN/MapExpr). Each
// side consumes the same 100k-row benchTable in its native format: the
// row kernels take the table, the columnar kernels take the converted
// Batch. The row->column conversion is benchmarked on its own
// (BenchmarkColumnarConvert), and BenchmarkEnginePipeline measures the
// end-to-end engine difference — the planner converts once per
// vectorized run, so the conversion amortizes across a task chain.
// Measured numbers are snapshotted in BENCH_columnar.json.

import (
	"testing"

	"shareinsights/internal/dag"
	"shareinsights/internal/engine/batch"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
	"shareinsights/internal/table/colstore"
	"shareinsights/internal/task"
)

func benchBatch(b *testing.B, in *table.Table) *colstore.Batch {
	b.Helper()
	cb, ok := colstore.FromTable(in)
	if !ok {
		b.Fatal("bench table is not columnar-eligible")
	}
	return cb
}

func benchKernel(b *testing.B, in *table.Table, k colstore.Kernel) {
	b.Helper()
	cb := benchBatch(b, in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Run(cb); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(in.SizeBytes()))
}

func BenchmarkColumnarConvert(b *testing.B) {
	in := benchTable(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := colstore.FromTable(in); !ok {
			b.Fatal("bench table is not columnar-eligible")
		}
	}
	b.SetBytes(int64(in.SizeBytes()))
}

func BenchmarkColumnarFilter(b *testing.B) {
	in := benchTable(100000)
	pred, err := colstore.CompileVecSrc("v > 500", in.Schema())
	if err != nil {
		b.Fatal(err)
	}
	benchKernel(b, in, &colstore.Filter{Pred: pred})
}

func BenchmarkColumnarGroupBy(b *testing.B) {
	in := benchTable(100000)
	s := in.Schema()
	benchKernel(b, in, &colstore.GroupBy{
		Keys: []int{s.Index("cat")},
		Aggs: []colstore.Agg{
			{Op: colstore.AggSum, Col: s.Index("v")},
			{Op: colstore.AggAvg, Col: s.Index("v")},
		},
		Out:      schema.MustFromNames("cat", "total", "mean"),
		SortKeys: []table.SortKey{{Column: "cat"}},
	})
}

func BenchmarkColumnarTopN(b *testing.B) {
	in := benchTable(100000)
	benchKernel(b, in, &colstore.TopN{
		Key:   in.Schema().Index("v"),
		Desc:  true,
		Limit: 5,
	})
}

func BenchmarkColumnarMapExpr(b *testing.B) {
	in := benchTable(100000)
	ev, err := colstore.CompileVecSrc("v * 2 + k", in.Schema())
	if err != nil {
		b.Fatal(err)
	}
	out, err := in.Schema().Extend("score")
	if err != nil {
		b.Fatal(err)
	}
	benchKernel(b, in, &colstore.MapExpr{Eval: ev, Out: out, Slot: out.Index("score")})
}

// BenchmarkRowTopNGlobal is the row-path twin of BenchmarkColumnarTopN:
// the columnar topn kernel handles only the ungrouped shape, so the
// grouped BenchmarkTaskTopN is not its direct pair.
func BenchmarkRowTopNGlobal(b *testing.B) {
	benchSpec(b, specFromText(b, "  t:\n    type: topn\n    orderby_column: [v DESC]\n    limit: 5\n"), benchTable(100000))
}

// --- End-to-end engine comparison ----------------------------------------

const benchPipelineFlow = `
D:
  src: [k, cat, v]

F:
  D.out: D.src | T.keep | T.score | T.agg | T.top

T:
  keep:
    type: filter_by
    filter_expression: v > 100
  score:
    type: map
    operator: expr
    expression: v * 2 + k
    output: score
  agg:
    type: groupby
    groupby: [cat]
    aggregates:
      - operator: sum
        apply_on: score
        out_field: total
  top:
    type: topn
    orderby_column: [total DESC]
    limit: 10
`

func benchEnginePipeline(b *testing.B, columnar string) {
	f, err := ParseFlowFile("bench", benchPipelineFlow)
	if err != nil {
		b.Fatal(err)
	}
	g, err := dag.Build(f, task.NewRegistry(), nil)
	if err != nil {
		b.Fatal(err)
	}
	src := benchTable(100000)
	e := &batch.Executor{Parallelism: 1, Columnar: columnar}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(g, &task.Env{Parallelism: 1}, map[string]*table.Table{"src": src}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(src.SizeBytes()))
}

// BenchmarkEnginePipelineRow and BenchmarkEnginePipelineColumnar run the
// same four-stage flow (filter | map | groupby | topn) through the batch
// engine with the columnar planner off and on; the difference is what a
// real pipeline gains, conversion overhead included.
func BenchmarkEnginePipelineRow(b *testing.B)      { benchEnginePipeline(b, batch.ColumnarOff) }
func BenchmarkEnginePipelineColumnar(b *testing.B) { benchEnginePipeline(b, batch.ColumnarOn) }
