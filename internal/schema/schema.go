// Package schema models the column structure of ShareInsights data
// objects.
//
// The paper's Data (D) section requires users to "explicitly call out the
// schema of the payload" (Figure 5) either as a plain column list or as
// `path => column` mappings that pull fields out of hierarchical payloads
// (Figure 6, Figure 18). Schema captures both forms.
package schema

import (
	"fmt"
	"strings"
)

// Column describes one column of a data object.
type Column struct {
	// Name is the column name used throughout the flow file.
	Name string
	// Path is the optional payload path (a dotted JSON/XML path such as
	// "user.location") the column is extracted from. Empty means the
	// column is taken from the payload by name (flat formats like CSV).
	Path string
}

// Source returns the payload field the column is read from: Path when
// present, otherwise Name.
func (c Column) Source() string {
	if c.Path != "" {
		return c.Path
	}
	return c.Name
}

// String renders the column in flow-file form.
func (c Column) String() string {
	if c.Path != "" {
		return c.Path + " => " + c.Name
	}
	return c.Name
}

// Schema is an ordered set of columns with O(1) name lookup.
type Schema struct {
	cols  []Column
	index map[string]int
}

// New builds a schema from the given columns. Duplicate names are an
// error because tasks address columns by name.
func New(cols ...Column) (*Schema, error) {
	s := &Schema{cols: make([]Column, 0, len(cols)), index: make(map[string]int, len(cols))}
	for _, c := range cols {
		if err := s.add(c); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustNew is New for statically known-good column lists; it panics on a
// duplicate name.
func MustNew(cols ...Column) *Schema {
	s, err := New(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// FromNames builds a schema of plain (path-less) columns.
func FromNames(names ...string) (*Schema, error) {
	cols := make([]Column, len(names))
	for i, n := range names {
		cols[i] = Column{Name: n}
	}
	return New(cols...)
}

// MustFromNames is FromNames panicking on duplicates.
func MustFromNames(names ...string) *Schema {
	s, err := FromNames(names...)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Schema) add(c Column) error {
	if c.Name == "" {
		return fmt.Errorf("schema: empty column name")
	}
	if _, dup := s.index[c.Name]; dup {
		return fmt.Errorf("schema: duplicate column %q", c.Name)
	}
	s.index[c.Name] = len(s.cols)
	s.cols = append(s.cols, c)
	return nil
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Columns returns the columns in order. The slice must not be modified.
func (s *Schema) Columns() []Column { return s.cols }

// Names returns the column names in order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.cols))
	for i, c := range s.cols {
		names[i] = c.Name
	}
	return names
}

// Col returns the i'th column.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// Index returns the position of the named column, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Has reports whether the named column exists.
func (s *Schema) Has(name string) bool { _, ok := s.index[name]; return ok }

// Require resolves each name to its index, failing with a descriptive
// error naming the missing column — the contextual binding check the
// paper describes for tasks ("the task configuration assumes that it will
// be used in a context where the data source has a rating column").
func (s *Schema) Require(names ...string) ([]int, error) {
	idx := make([]int, len(names))
	for i, n := range names {
		j := s.Index(n)
		if j < 0 {
			return nil, fmt.Errorf("schema: column %q not found (have %s)", n, strings.Join(s.Names(), ", "))
		}
		idx[i] = j
	}
	return idx, nil
}

// Project returns a new schema containing the named columns in the given
// order.
func (s *Schema) Project(names ...string) (*Schema, error) {
	cols := make([]Column, len(names))
	for i, n := range names {
		j := s.Index(n)
		if j < 0 {
			return nil, fmt.Errorf("schema: column %q not found", n)
		}
		cols[i] = s.cols[j]
	}
	return New(cols...)
}

// Extend returns a new schema with extra plain columns appended. Adding a
// column that already exists is an error.
func (s *Schema) Extend(names ...string) (*Schema, error) {
	cols := make([]Column, len(s.cols), len(s.cols)+len(names))
	copy(cols, s.cols)
	for _, n := range names {
		cols = append(cols, Column{Name: n})
	}
	return New(cols...)
}

// ExtendOrSame is Extend that tolerates existing columns: names already
// present are kept in place, only new names are appended. Map tasks use
// it because their output column may overwrite an input column.
func (s *Schema) ExtendOrSame(names ...string) *Schema {
	out := &Schema{index: make(map[string]int, len(s.cols)+len(names))}
	for _, c := range s.cols {
		_ = out.add(c)
	}
	for _, n := range names {
		if !out.Has(n) {
			_ = out.add(Column{Name: n})
		}
	}
	return out
}

// Equal reports whether the two schemas have the same column names in the
// same order (paths are presentation detail and do not affect equality).
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.cols {
		if s.cols[i].Name != o.cols[i].Name {
			return false
		}
	}
	return true
}

// String renders the schema in flow-file form: [a, b, path => c].
func (s *Schema) String() string {
	parts := make([]string, len(s.cols))
	for i, c := range s.cols {
		parts[i] = c.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Clone returns an independent copy of the schema.
func (s *Schema) Clone() *Schema {
	cols := make([]Column, len(s.cols))
	copy(cols, s.cols)
	return MustNew(cols...)
}
