package schema

import (
	"strings"
	"testing"
)

func TestNewAndLookup(t *testing.T) {
	s, err := New(Column{Name: "a"}, Column{Name: "b", Path: "user.b"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Index("a") != 0 || s.Index("b") != 1 || s.Index("zz") != -1 {
		t.Error("index lookup wrong")
	}
	if !s.Has("b") || s.Has("user.b") {
		t.Error("Has uses column names, not paths")
	}
	if s.Col(1).Source() != "user.b" || s.Col(0).Source() != "a" {
		t.Error("Source() wrong")
	}
	if got := s.String(); got != "[a, user.b => b]" {
		t.Errorf("String = %s", got)
	}
}

func TestDuplicateAndEmptyNames(t *testing.T) {
	if _, err := New(Column{Name: "a"}, Column{Name: "a"}); err == nil {
		t.Error("duplicate columns should fail")
	}
	if _, err := New(Column{Name: ""}); err == nil {
		t.Error("empty column name should fail")
	}
	if _, err := FromNames("x", "x"); err == nil {
		t.Error("FromNames duplicate should fail")
	}
}

func TestRequire(t *testing.T) {
	s := MustFromNames("a", "b", "c")
	idx, err := s.Require("c", "a")
	if err != nil || idx[0] != 2 || idx[1] != 0 {
		t.Errorf("Require = %v, %v", idx, err)
	}
	_, err = s.Require("a", "nope")
	if err == nil || !strings.Contains(err.Error(), "nope") || !strings.Contains(err.Error(), "a, b, c") {
		t.Errorf("Require error should name the column and list available: %v", err)
	}
}

func TestProjectExtend(t *testing.T) {
	s := MustFromNames("a", "b", "c")
	p, err := s.Project("c", "a")
	if err != nil || p.String() != "[c, a]" {
		t.Errorf("Project = %v, %v", p, err)
	}
	if _, err := s.Project("zz"); err == nil {
		t.Error("Project missing column should fail")
	}
	e, err := s.Extend("d")
	if err != nil || e.String() != "[a, b, c, d]" {
		t.Errorf("Extend = %v, %v", e, err)
	}
	if _, err := s.Extend("a"); err == nil {
		t.Error("Extend existing column should fail")
	}
	eos := s.ExtendOrSame("a", "d")
	if eos.String() != "[a, b, c, d]" {
		t.Errorf("ExtendOrSame = %v", eos)
	}
	// Original untouched.
	if s.Len() != 3 {
		t.Error("Extend mutated the receiver")
	}
}

func TestEqualClone(t *testing.T) {
	a := MustFromNames("x", "y")
	b := MustFromNames("x", "y")
	c := MustFromNames("y", "x")
	if !a.Equal(b) || a.Equal(c) {
		t.Error("Equal is order-sensitive name equality")
	}
	cl := a.Clone()
	if !a.Equal(cl) {
		t.Error("clone differs")
	}
	if &a.cols[0] == &cl.cols[0] {
		t.Error("clone shares storage")
	}
}
