// Package connector loads data objects from their configured sources.
//
// A flow file's data detail block names a protocol (file, http, mem) and
// a payload format (csv, tsv, json, jsonl, xml, sbin); the platform
// "provides popular protocol connectors … and recognizes popular data
// payload formats" (§3.2) and both sets are extensible through the same
// registration API user connectors use (§4.2).
package connector

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"shareinsights/internal/flowfile"
	"shareinsights/internal/obs"
	"shareinsights/internal/resilience"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
)

// Protocol fetches the raw payload for a data definition.
type Protocol interface {
	// Fetch returns the payload bytes for the data object's source.
	Fetch(d *flowfile.DataDef) ([]byte, error)
}

// ProtocolContext is the context-aware fetch path. Protocols that
// implement it honor cancellation and per-attempt deadlines; plain
// Protocol implementations keep working through an adapter that runs
// the blocking Fetch on a goroutine and abandons it when the context
// ends.
type ProtocolContext interface {
	// FetchContext is Fetch bounded by ctx.
	FetchContext(ctx context.Context, d *flowfile.DataDef) ([]byte, error)
}

// fetch dispatches to the context-aware path when the protocol has one.
// For legacy protocols the blocking Fetch runs on its own goroutine so
// a hung source cannot outlive the caller's deadline — the goroutine is
// abandoned (its result dropped) when ctx ends first.
func fetch(ctx context.Context, p Protocol, d *flowfile.DataDef) ([]byte, error) {
	if pc, ok := p.(ProtocolContext); ok {
		return pc.FetchContext(ctx, d)
	}
	if ctx.Done() == nil {
		return p.Fetch(d)
	}
	type result struct {
		b   []byte
		err error
	}
	ch := make(chan result, 1)
	go func() {
		b, err := p.Fetch(d)
		ch <- result{b, err}
	}()
	select {
	case r := <-ch:
		return r.b, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Format decodes payload bytes into a table conforming to the declared
// schema.
type Format interface {
	// Decode parses the payload. The returned table's schema must equal s.
	Decode(d *flowfile.DataDef, s *schema.Schema, payload []byte) (*table.Table, error)
}

// Registry resolves protocols and formats for data definitions, and
// applies the platform's fetch resilience policy: retry with backoff,
// per-(protocol,source) circuit breakers, and per-attempt deadlines.
type Registry struct {
	mu        sync.RWMutex
	protocols map[string]Protocol
	formats   map[string]Format
	retry     resilience.Policy
	breakers  *resilience.BreakerSet
	maxBytes  int64
	metrics   *obs.Registry
}

// Options configure the default registry.
type Options struct {
	// DataDir roots the file protocol; relative sources resolve inside
	// it (the per-dashboard 'data' folder of §4.3.2). Empty disables the
	// file protocol.
	DataDir string
	// Mem seeds the in-process protocol: source "mem:<key>" (or just the
	// key) resolves here. Tests and examples use it.
	Mem map[string][]byte
	// HTTPClient overrides the client used by the http protocol.
	HTTPClient *http.Client
	// MaxPayloadBytes caps fetched response bodies so one misbehaving
	// source cannot OOM the process. 0 means DefaultMaxPayloadBytes;
	// negative disables the cap.
	MaxPayloadBytes int64
	// Retry is the default retry policy applied to source fetches.
	// The zero value (every field unset) means resilience.Defaults();
	// per-source `retries` and `timeout` data-detail properties
	// override it.
	Retry resilience.Policy
	// Breaker tunes the per-(protocol,source) circuit breakers.
	Breaker resilience.BreakerConfig
}

// DefaultMaxPayloadBytes bounds fetched payloads when Options leaves
// MaxPayloadBytes at 0.
const DefaultMaxPayloadBytes = 64 << 20

// sharedTransport is the connection pool behind every registry's
// default HTTP client. One process-wide transport means repeated pulls
// from the same endpoint — every dashboard run re-reads its sources —
// reuse warm connections instead of paying a fresh TCP/TLS handshake
// per call, and idle connections are capped and reaped so the pool
// cannot grow without bound. Registries built with Options.HTTPClient
// keep whatever transport that client carries.
var sharedTransport = func() *http.Transport {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 64
	t.MaxIdleConnsPerHost = 16
	t.IdleConnTimeout = 90 * time.Second
	return t
}()

// NewRegistry builds a registry with the platform connectors and formats
// installed.
func NewRegistry(opts Options) *Registry {
	retry := opts.Retry
	if retry.MaxRetries == 0 && retry.BaseDelay == 0 && retry.MaxDelay == 0 &&
		retry.AttemptTimeout == 0 && retry.Sleep == nil && retry.Rand == nil {
		retry = resilience.Defaults()
	}
	maxBytes := opts.MaxPayloadBytes
	if maxBytes == 0 {
		maxBytes = DefaultMaxPayloadBytes
	}
	r := &Registry{
		protocols: map[string]Protocol{},
		formats:   map[string]Format{},
		retry:     retry,
		breakers:  resilience.NewBreakerSet(opts.Breaker),
		maxBytes:  maxBytes,
	}
	if opts.DataDir != "" {
		r.protocols["file"] = &fileProtocol{root: opts.DataDir}
	}
	client := opts.HTTPClient
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second, Transport: sharedTransport}
	}
	r.protocols["http"] = &httpProtocol{client: client, maxBytes: maxBytes}
	r.protocols["https"] = &httpProtocol{client: client, maxBytes: maxBytes}
	r.protocols["mem"] = &memProtocol{data: opts.Mem}
	for name, f := range map[string]Format{
		"csv":   &csvFormat{},
		"tsv":   &csvFormat{sep: '\t'},
		"json":  &jsonFormat{},
		"jsonl": &jsonFormat{lines: true},
		"xml":   &xmlFormat{},
		"sbin":  &sbinFormat{},
	} {
		r.formats[name] = f
	}
	return r
}

// RegisterProtocol installs a user connector for a protocol scheme.
func (r *Registry) RegisterProtocol(name string, p Protocol) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.protocols[name]; dup {
		return fmt.Errorf("connector: protocol %q already registered", name)
	}
	r.protocols[name] = p
	return nil
}

// RegisterFormat installs a user payload format.
func (r *Registry) RegisterFormat(name string, f Format) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.formats[name]; dup {
		return fmt.Errorf("connector: format %q already registered", name)
	}
	r.formats[name] = f
	return nil
}

// Protocols lists installed protocol names, sorted.
func (r *Registry) Protocols() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.protocols))
	for n := range r.protocols {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Formats lists installed format names, sorted.
func (r *Registry) Formats() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.formats))
	for n := range r.formats {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// protocolFor picks the protocol: an explicit `protocol:` property wins,
// then the source URL scheme, then file.
func (r *Registry) protocolFor(d *flowfile.DataDef) (Protocol, string, error) {
	name := d.Prop("protocol")
	if name == "" {
		src := d.Prop("source")
		if i := strings.Index(src, "://"); i > 0 {
			name = src[:i]
		} else if i := strings.Index(src, ":"); i > 0 && !strings.Contains(src[:i], "/") && !strings.Contains(src[:i], ".") {
			name = src[:i]
		} else {
			name = "file"
		}
	}
	r.mu.RLock()
	p, ok := r.protocols[name]
	r.mu.RUnlock()
	if !ok {
		return nil, "", fmt.Errorf("connector: D.%s: no protocol %q (have %s)", d.Name, name, strings.Join(r.Protocols(), ", "))
	}
	return p, name, nil
}

// formatFor picks the format: explicit `format:` property, then source
// extension, then csv.
func (r *Registry) formatFor(d *flowfile.DataDef) (Format, string, error) {
	name := strings.ToLower(d.Prop("format"))
	if name == "" {
		ext := strings.TrimPrefix(strings.ToLower(filepath.Ext(d.Prop("source"))), ".")
		if ext != "" {
			name = ext
		} else {
			name = "csv"
		}
	}
	if name == "txt" {
		name = "csv"
	}
	r.mu.RLock()
	f, ok := r.formats[name]
	r.mu.RUnlock()
	if !ok {
		return nil, "", fmt.Errorf("connector: D.%s: no format %q (have %s)", d.Name, name, strings.Join(r.Formats(), ", "))
	}
	return f, name, nil
}

// Decode decodes an already-fetched payload with the definition's
// configured format. The dashboard runtime uses it for the per-dashboard
// data folder (uploaded files referenced as `data:<file>`), whose
// payloads live outside any protocol connector.
func (r *Registry) Decode(d *flowfile.DataDef, s *schema.Schema, payload []byte) (*table.Table, error) {
	if s == nil {
		return nil, fmt.Errorf("connector: D.%s has no declared schema", d.Name)
	}
	f, fname, err := r.formatFor(d)
	if err != nil {
		return nil, err
	}
	t, err := f.Decode(d, s, payload)
	if err != nil {
		return nil, fmt.Errorf("connector: D.%s as %s: %w", d.Name, fname, err)
	}
	return t, nil
}

// SetMetrics attaches a metrics registry: retry counts and breaker
// state transitions are recorded against it (si_source_retries_total,
// si_breaker_transitions_total). The server wires the platform registry
// here; nil detaches.
func (r *Registry) SetMetrics(m *obs.Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = m
	if m == nil {
		r.breakers.SetOnTransition(nil)
		return
	}
	r.breakers.SetOnTransition(func(key string, from, to resilience.State) {
		proto, _, _ := strings.Cut(key, "\x00")
		m.CounterVec("si_breaker_transitions_total",
			"Connector circuit-breaker state transitions.", "protocol", "to").
			With(proto, to.String()).Inc()
	})
}

// SetRetryPolicy replaces the registry's default fetch retry policy
// (the CLI's -retries/-timeout flags land here).
func (r *Registry) SetRetryPolicy(p resilience.Policy) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retry = p
}

// RetryPolicy returns the registry's default fetch retry policy.
func (r *Registry) RetryPolicy() resilience.Policy {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.retry
}

// Breakers exposes the per-(protocol,source) circuit-breaker set
// (health reporting and tests).
func (r *Registry) Breakers() *resilience.BreakerSet { return r.breakers }

// LoadStats reports what one Load actually did.
type LoadStats struct {
	// Attempts is how many fetch attempts ran (retries = Attempts-1 on
	// success).
	Attempts int
	// Protocol is the resolved protocol name.
	Protocol string
}

// policyFor derives the effective retry policy for one data object:
// the registry default overridden by the `retries` and `timeout`
// data-detail properties.
func (r *Registry) policyFor(d *flowfile.DataDef) resilience.Policy {
	p := r.RetryPolicy()
	if v := d.Prop("retries"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			p.MaxRetries = n
		}
	}
	if v := d.Prop("timeout"); v != "" {
		if dur, err := time.ParseDuration(v); err == nil && dur > 0 {
			p.AttemptTimeout = dur
		}
	}
	return p
}

// Load fetches and decodes a data object. The definition must declare a
// schema (the explicit schema call-out of §3.2).
func (r *Registry) Load(d *flowfile.DataDef, s *schema.Schema) (*table.Table, error) {
	t, _, err := r.LoadContext(context.Background(), d, s, nil, 0)
	return t, err
}

// LoadTraced is Load with execution tracing: one span for the protocol
// fetch and one for the payload decode, opened under parent on tr. A
// nil tr traces nothing and adds no allocations.
func (r *Registry) LoadTraced(d *flowfile.DataDef, s *schema.Schema, tr obs.Tracer, parent int) (*table.Table, error) {
	t, _, err := r.LoadContext(context.Background(), d, s, tr, parent)
	return t, err
}

// LoadContext fetches and decodes a data object under ctx, applying the
// fetch resilience policy: the source's circuit breaker is consulted
// first (an open breaker fails fast without touching the source), then
// the fetch runs under the retry policy — exponential backoff with full
// jitter, Retry-After hints honored, permanent errors not retried —
// with each attempt bounded by the per-source `timeout` property when
// set. Breaker outcomes and retry counts feed the attached metrics
// registry and the returned LoadStats. It is LoadPushdownContext with
// an empty offer: both paths share one fetch/decode sequence, which is
// what keeps pushdown-on and pushdown-off runs byte-identical in their
// retry and breaker behavior.
func (r *Registry) LoadContext(ctx context.Context, d *flowfile.DataDef, s *schema.Schema, tr obs.Tracer, parent int) (*table.Table, LoadStats, error) {
	t, stats, _, err := r.LoadPushdownContext(ctx, d, s, Pushdown{}, tr, parent)
	return t, stats, err
}

// Metrics returns the attached metrics registry (nil when none).
func (r *Registry) Metrics() *obs.Registry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.metrics
}

// ---------------------------------------------------------------------
// Protocols

// fileProtocol reads sources from the dashboard's data directory,
// refusing paths that escape it.
type fileProtocol struct{ root string }

func (p *fileProtocol) Fetch(d *flowfile.DataDef) ([]byte, error) {
	src := strings.TrimPrefix(d.Prop("source"), "file://")
	if src == "" {
		return nil, fmt.Errorf("no source configured")
	}
	full := filepath.Join(p.root, filepath.Clean("/"+src))
	rootAbs, err := filepath.Abs(p.root)
	if err != nil {
		return nil, err
	}
	fullAbs, err := filepath.Abs(full)
	if err != nil {
		return nil, err
	}
	if fullAbs != rootAbs && !strings.HasPrefix(fullAbs, rootAbs+string(filepath.Separator)) {
		return nil, fmt.Errorf("source %q escapes the data directory", src)
	}
	return os.ReadFile(fullAbs)
}

// httpProtocol fetches provider APIs (Figure 6), forwarding configured
// http_headers.* properties. It is hardened for untrusted sources:
// non-2xx responses are errors carrying the status and a body snippet,
// response bodies are capped so a misbehaving source cannot OOM the
// process, client errors are marked permanent (no retry), and 429/503
// Retry-After headers become backoff hints for the retry policy.
type httpProtocol struct {
	client   *http.Client
	maxBytes int64
}

func (p *httpProtocol) Fetch(d *flowfile.DataDef) ([]byte, error) {
	return p.FetchContext(context.Background(), d)
}

// FetchContext implements ProtocolContext: the request carries ctx, so
// cancellation and deadlines abort the transfer mid-flight.
func (p *httpProtocol) FetchContext(ctx context.Context, d *flowfile.DataDef) ([]byte, error) {
	src := d.Prop("source")
	method := strings.ToUpper(d.Prop("request_type"))
	if method == "" {
		method = http.MethodGet
	}
	req, err := http.NewRequestWithContext(ctx, method, src, nil)
	if err != nil {
		return nil, resilience.Permanent(err)
	}
	for _, k := range d.PropOrder {
		if strings.HasPrefix(k, "http_headers.") {
			req.Header.Set(strings.TrimPrefix(k, "http_headers."), d.Props[k])
		}
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		serr := fmt.Errorf("%s %s: status %s: %s", method, src, resp.Status,
			strings.TrimSpace(string(snippet)))
		switch {
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			if after := parseRetryAfter(resp.Header.Get("Retry-After")); after > 0 {
				return nil, resilience.RetryAfter(serr, after)
			}
			return nil, serr
		case resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusRequestTimeout:
			// A client error will not heal on retry.
			return nil, resilience.Permanent(serr)
		default:
			return nil, serr
		}
	}
	if p.maxBytes < 0 {
		return io.ReadAll(resp.Body)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, p.maxBytes+1))
	if err != nil {
		return nil, err
	}
	if int64(len(body)) > p.maxBytes {
		return nil, resilience.Permanent(fmt.Errorf("%s %s: response exceeds the %d-byte payload cap", method, src, p.maxBytes))
	}
	return body, nil
}

// parseRetryAfter reads an HTTP Retry-After header: delta-seconds or an
// HTTP date. 0 means absent/unparseable.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// memProtocol serves payloads from an in-process map.
type memProtocol struct{ data map[string][]byte }

func (p *memProtocol) Fetch(d *flowfile.DataDef) ([]byte, error) {
	key := strings.TrimPrefix(strings.TrimPrefix(d.Prop("source"), "mem://"), "mem:")
	b, ok := p.data[key]
	if !ok {
		return nil, fmt.Errorf("mem source %q not found", key)
	}
	return b, nil
}
