// Package connector loads data objects from their configured sources.
//
// A flow file's data detail block names a protocol (file, http, mem) and
// a payload format (csv, tsv, json, jsonl, xml, sbin); the platform
// "provides popular protocol connectors … and recognizes popular data
// payload formats" (§3.2) and both sets are extensible through the same
// registration API user connectors use (§4.2).
package connector

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"shareinsights/internal/flowfile"
	"shareinsights/internal/obs"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
)

// Protocol fetches the raw payload for a data definition.
type Protocol interface {
	// Fetch returns the payload bytes for the data object's source.
	Fetch(d *flowfile.DataDef) ([]byte, error)
}

// Format decodes payload bytes into a table conforming to the declared
// schema.
type Format interface {
	// Decode parses the payload. The returned table's schema must equal s.
	Decode(d *flowfile.DataDef, s *schema.Schema, payload []byte) (*table.Table, error)
}

// Registry resolves protocols and formats for data definitions.
type Registry struct {
	mu        sync.RWMutex
	protocols map[string]Protocol
	formats   map[string]Format
}

// Options configure the default registry.
type Options struct {
	// DataDir roots the file protocol; relative sources resolve inside
	// it (the per-dashboard 'data' folder of §4.3.2). Empty disables the
	// file protocol.
	DataDir string
	// Mem seeds the in-process protocol: source "mem:<key>" (or just the
	// key) resolves here. Tests and examples use it.
	Mem map[string][]byte
	// HTTPClient overrides the client used by the http protocol.
	HTTPClient *http.Client
}

// NewRegistry builds a registry with the platform connectors and formats
// installed.
func NewRegistry(opts Options) *Registry {
	r := &Registry{protocols: map[string]Protocol{}, formats: map[string]Format{}}
	if opts.DataDir != "" {
		r.protocols["file"] = &fileProtocol{root: opts.DataDir}
	}
	client := opts.HTTPClient
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	r.protocols["http"] = &httpProtocol{client: client}
	r.protocols["https"] = &httpProtocol{client: client}
	r.protocols["mem"] = &memProtocol{data: opts.Mem}
	for name, f := range map[string]Format{
		"csv":   &csvFormat{},
		"tsv":   &csvFormat{sep: '\t'},
		"json":  &jsonFormat{},
		"jsonl": &jsonFormat{lines: true},
		"xml":   &xmlFormat{},
		"sbin":  &sbinFormat{},
	} {
		r.formats[name] = f
	}
	return r
}

// RegisterProtocol installs a user connector for a protocol scheme.
func (r *Registry) RegisterProtocol(name string, p Protocol) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.protocols[name]; dup {
		return fmt.Errorf("connector: protocol %q already registered", name)
	}
	r.protocols[name] = p
	return nil
}

// RegisterFormat installs a user payload format.
func (r *Registry) RegisterFormat(name string, f Format) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.formats[name]; dup {
		return fmt.Errorf("connector: format %q already registered", name)
	}
	r.formats[name] = f
	return nil
}

// Protocols lists installed protocol names, sorted.
func (r *Registry) Protocols() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.protocols))
	for n := range r.protocols {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Formats lists installed format names, sorted.
func (r *Registry) Formats() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.formats))
	for n := range r.formats {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// protocolFor picks the protocol: an explicit `protocol:` property wins,
// then the source URL scheme, then file.
func (r *Registry) protocolFor(d *flowfile.DataDef) (Protocol, string, error) {
	name := d.Prop("protocol")
	if name == "" {
		src := d.Prop("source")
		if i := strings.Index(src, "://"); i > 0 {
			name = src[:i]
		} else if i := strings.Index(src, ":"); i > 0 && !strings.Contains(src[:i], "/") && !strings.Contains(src[:i], ".") {
			name = src[:i]
		} else {
			name = "file"
		}
	}
	r.mu.RLock()
	p, ok := r.protocols[name]
	r.mu.RUnlock()
	if !ok {
		return nil, "", fmt.Errorf("connector: D.%s: no protocol %q (have %s)", d.Name, name, strings.Join(r.Protocols(), ", "))
	}
	return p, name, nil
}

// formatFor picks the format: explicit `format:` property, then source
// extension, then csv.
func (r *Registry) formatFor(d *flowfile.DataDef) (Format, string, error) {
	name := strings.ToLower(d.Prop("format"))
	if name == "" {
		ext := strings.TrimPrefix(strings.ToLower(filepath.Ext(d.Prop("source"))), ".")
		if ext != "" {
			name = ext
		} else {
			name = "csv"
		}
	}
	if name == "txt" {
		name = "csv"
	}
	r.mu.RLock()
	f, ok := r.formats[name]
	r.mu.RUnlock()
	if !ok {
		return nil, "", fmt.Errorf("connector: D.%s: no format %q (have %s)", d.Name, name, strings.Join(r.Formats(), ", "))
	}
	return f, name, nil
}

// Decode decodes an already-fetched payload with the definition's
// configured format. The dashboard runtime uses it for the per-dashboard
// data folder (uploaded files referenced as `data:<file>`), whose
// payloads live outside any protocol connector.
func (r *Registry) Decode(d *flowfile.DataDef, s *schema.Schema, payload []byte) (*table.Table, error) {
	if s == nil {
		return nil, fmt.Errorf("connector: D.%s has no declared schema", d.Name)
	}
	f, fname, err := r.formatFor(d)
	if err != nil {
		return nil, err
	}
	t, err := f.Decode(d, s, payload)
	if err != nil {
		return nil, fmt.Errorf("connector: D.%s as %s: %w", d.Name, fname, err)
	}
	return t, nil
}

// Load fetches and decodes a data object. The definition must declare a
// schema (the explicit schema call-out of §3.2).
func (r *Registry) Load(d *flowfile.DataDef, s *schema.Schema) (*table.Table, error) {
	return r.LoadTraced(d, s, nil, 0)
}

// LoadTraced is Load with execution tracing: one span for the protocol
// fetch and one for the payload decode, opened under parent on tr. A
// nil tr traces nothing and adds no allocations.
func (r *Registry) LoadTraced(d *flowfile.DataDef, s *schema.Schema, tr obs.Tracer, parent int) (*table.Table, error) {
	if s == nil {
		return nil, fmt.Errorf("connector: D.%s has no declared schema", d.Name)
	}
	p, pname, err := r.protocolFor(d)
	if err != nil {
		return nil, err
	}
	fid := 0
	if tr != nil {
		fid = tr.StartSpan(parent, "fetch "+pname)
	}
	payload, err := p.Fetch(d)
	if tr != nil {
		tr.SpanInt(fid, "bytes", int64(len(payload)))
		tr.EndSpan(fid)
	}
	if err != nil {
		return nil, fmt.Errorf("connector: D.%s via %s: %w", d.Name, pname, err)
	}
	f, fname, err := r.formatFor(d)
	if err != nil {
		return nil, err
	}
	did := 0
	if tr != nil {
		did = tr.StartSpan(parent, "decode "+fname)
	}
	t, err := f.Decode(d, s, payload)
	if tr != nil {
		if t != nil {
			tr.SpanInt(did, "rows_out", int64(t.Len()))
		}
		tr.EndSpan(did)
	}
	if err != nil {
		return nil, fmt.Errorf("connector: D.%s as %s: %w", d.Name, fname, err)
	}
	return t, nil
}

// ---------------------------------------------------------------------
// Protocols

// fileProtocol reads sources from the dashboard's data directory,
// refusing paths that escape it.
type fileProtocol struct{ root string }

func (p *fileProtocol) Fetch(d *flowfile.DataDef) ([]byte, error) {
	src := strings.TrimPrefix(d.Prop("source"), "file://")
	if src == "" {
		return nil, fmt.Errorf("no source configured")
	}
	full := filepath.Join(p.root, filepath.Clean("/"+src))
	rootAbs, err := filepath.Abs(p.root)
	if err != nil {
		return nil, err
	}
	fullAbs, err := filepath.Abs(full)
	if err != nil {
		return nil, err
	}
	if fullAbs != rootAbs && !strings.HasPrefix(fullAbs, rootAbs+string(filepath.Separator)) {
		return nil, fmt.Errorf("source %q escapes the data directory", src)
	}
	return os.ReadFile(fullAbs)
}

// httpProtocol fetches provider APIs (Figure 6), forwarding configured
// http_headers.* properties.
type httpProtocol struct{ client *http.Client }

func (p *httpProtocol) Fetch(d *flowfile.DataDef) ([]byte, error) {
	src := d.Prop("source")
	method := strings.ToUpper(d.Prop("request_type"))
	if method == "" {
		method = http.MethodGet
	}
	req, err := http.NewRequest(method, src, nil)
	if err != nil {
		return nil, err
	}
	for _, k := range d.PropOrder {
		if strings.HasPrefix(k, "http_headers.") {
			req.Header.Set(strings.TrimPrefix(k, "http_headers."), d.Props[k])
		}
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("GET %s: status %s", src, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// memProtocol serves payloads from an in-process map.
type memProtocol struct{ data map[string][]byte }

func (p *memProtocol) Fetch(d *flowfile.DataDef) ([]byte, error) {
	key := strings.TrimPrefix(strings.TrimPrefix(d.Prop("source"), "mem://"), "mem:")
	b, ok := p.data[key]
	if !ok {
		return nil, fmt.Errorf("mem source %q not found", key)
	}
	return b, nil
}
