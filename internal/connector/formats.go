package connector

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"shareinsights/internal/flowfile"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
	"shareinsights/internal/value"
)

// ---------------------------------------------------------------------
// CSV / TSV

// csvFormat decodes delimiter-separated text. Columns bind to the
// declared schema by position; when the first record matches the schema
// column names (or their payload paths) it is treated as a header and
// binding switches to by-name.
type csvFormat struct{ sep rune }

func (f *csvFormat) Decode(d *flowfile.DataDef, s *schema.Schema, payload []byte) (*table.Table, error) {
	t, _, err := f.decode(d, s, payload, Pushdown{})
	return t, err
}

// DecodePushdown implements FormatPushdown: skipped columns decode as
// nulls without parsing their fields, and a pushed predicate filters
// rows as they decode. Columns the predicate reads keep decoding even
// when listed as skippable, and a predicate that does not bind against
// the declared schema is declined — never an error, the consumer
// pipeline re-applies it anyway.
func (f *csvFormat) DecodePushdown(d *flowfile.DataDef, s *schema.Schema, payload []byte, pd Pushdown) (*table.Table, PushdownResult, error) {
	return f.decode(d, s, payload, pd)
}

func (f *csvFormat) decode(d *flowfile.DataDef, s *schema.Schema, payload []byte, pd Pushdown) (*table.Table, PushdownResult, error) {
	r := csv.NewReader(bytes.NewReader(payload))
	r.Comma = f.sep
	if r.Comma == 0 {
		r.Comma = ','
		if sep := d.Prop("separator"); sep != "" {
			rs := []rune(sep)
			r.Comma = rs[0]
		}
	}
	r.FieldsPerRecord = -1
	r.TrimLeadingSpace = true
	var res PushdownResult
	records, err := r.ReadAll()
	if err != nil {
		return nil, res, err
	}
	t := table.New(s)
	// Negotiate the pushdown: a predicate that binds filters while
	// decoding; requested skip columns decode as nulls unless the
	// predicate reads them.
	pred, need := compilePushdownPredicate(pd.Predicate, s)
	res.PredicateApplied = pred != nil
	skip := map[int]bool{}
	for _, c := range pd.SkipColumns {
		if need[c] {
			continue
		}
		if i := s.Index(c); i >= 0 {
			skip[i] = true
			res.SkippedColumns = append(res.SkippedColumns, c)
		}
	}
	if len(records) == 0 {
		return t, res, nil
	}
	// Header detection and by-name binding.
	binding := make([]int, s.Len()) // schema column -> record index
	for i := range binding {
		binding[i] = i
	}
	start := 0
	if isHeader(records[0], s) {
		start = 1
		pos := map[string]int{}
		for i, field := range records[0] {
			pos[strings.TrimSpace(field)] = i
		}
		for i, col := range s.Columns() {
			if j, ok := pos[col.Source()]; ok {
				binding[i] = j
			} else if j, ok := pos[col.Name]; ok {
				binding[i] = j
			} else {
				return nil, res, fmt.Errorf("header has no column for %q", col.Source())
			}
		}
	}
	for _, rec := range records[start:] {
		row := make(table.Row, s.Len())
		for i, j := range binding {
			if skip[i] {
				row[i] = value.VNull
			} else if j < len(rec) {
				row[i] = value.Parse(rec[j])
			} else {
				row[i] = value.VNull
			}
		}
		if pred != nil && !pred(row).Truthy() {
			continue
		}
		t.Append(row)
	}
	return t, res, nil
}

// isHeader reports whether the record names the schema's columns.
func isHeader(rec []string, s *schema.Schema) bool {
	names := map[string]bool{}
	for _, c := range s.Columns() {
		names[c.Name] = true
		names[c.Source()] = true
	}
	matched := 0
	for _, field := range rec {
		if names[strings.TrimSpace(field)] {
			matched++
		}
	}
	return matched >= s.Len() || (matched > 0 && matched == len(rec))
}

// EncodeCSV renders a table as CSV with a header row — the wire form of
// the REST data API.
func EncodeCSV(t *table.Table) ([]byte, error) {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(t.Schema().Names()); err != nil {
		return nil, err
	}
	rec := make([]string, t.Schema().Len())
	for _, row := range t.Rows() {
		for i, v := range row {
			rec[i] = v.String()
		}
		if err := w.Write(rec); err != nil {
			return nil, err
		}
	}
	w.Flush()
	return buf.Bytes(), w.Error()
}

// ---------------------------------------------------------------------
// JSON / JSONL

// jsonFormat decodes a JSON array of objects (or newline-delimited
// objects with lines=true). Columns resolve through their payload paths
// (the `=>` mappings of Figure 6: "The => notation maps JSON paths in
// the payload to column names").
type jsonFormat struct{ lines bool }

func (f *jsonFormat) Decode(d *flowfile.DataDef, s *schema.Schema, payload []byte) (*table.Table, error) {
	var docs []map[string]any
	if f.lines {
		dec := json.NewDecoder(bytes.NewReader(payload))
		for {
			var doc map[string]any
			if err := dec.Decode(&doc); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			docs = append(docs, doc)
		}
	} else {
		trimmed := bytes.TrimSpace(payload)
		if len(trimmed) > 0 && trimmed[0] == '{' {
			// A wrapper object: find the first array member (provider
			// APIs wrap items, e.g. Stack Exchange's {"items": [...]}).
			var wrapper map[string]any
			if err := json.Unmarshal(trimmed, &wrapper); err != nil {
				return nil, err
			}
			member := d.Prop("items")
			found := false
			for _, key := range []string{member, "items", "results", "data", "rows"} {
				if key == "" {
					continue
				}
				if arr, ok := wrapper[key].([]any); ok {
					for _, item := range arr {
						if m, ok := item.(map[string]any); ok {
							docs = append(docs, m)
						}
					}
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("json object payload has no recognizable item array (set the items property)")
			}
		} else {
			var arr []map[string]any
			if err := json.Unmarshal(trimmed, &arr); err != nil {
				return nil, err
			}
			docs = arr
		}
	}
	t := table.New(s)
	for _, doc := range docs {
		row := make(table.Row, s.Len())
		for i, col := range s.Columns() {
			row[i] = value.FromAny(lookupPath(doc, col.Source()))
		}
		t.Append(row)
	}
	return t, nil
}

// lookupPath resolves a dotted path ("user.location") in a decoded JSON
// document. Missing segments yield nil.
func lookupPath(doc map[string]any, path string) any {
	cur := any(doc)
	for _, seg := range strings.Split(path, ".") {
		m, ok := cur.(map[string]any)
		if !ok {
			return nil
		}
		cur, ok = m[seg]
		if !ok {
			return nil
		}
	}
	return cur
}

// EncodeJSON renders a table as a JSON array of objects.
func EncodeJSON(t *table.Table) ([]byte, error) {
	names := t.Schema().Names()
	out := make([]map[string]any, 0, t.Len())
	for _, row := range t.Rows() {
		obj := make(map[string]any, len(names))
		for i, n := range names {
			obj[n] = jsonValue(row[i])
		}
		out = append(out, obj)
	}
	return json.Marshal(out)
}

func jsonValue(v value.V) any {
	switch v.Kind() {
	case value.Null:
		return nil
	case value.Bool:
		return v.Bool()
	case value.Int:
		return v.Int()
	case value.Float:
		return v.Float()
	case value.Time:
		return v.String()
	default:
		return v.Str()
	}
}

// ---------------------------------------------------------------------
// XML

// xmlFormat decodes repeated record elements. The `record_tag` property
// names the repeating element (default "record" / "row" / the first
// repeating child). Column paths address nested elements with dots.
type xmlFormat struct{}

type xmlNode struct {
	name     string
	text     string
	children []*xmlNode
}

func (f *xmlFormat) Decode(d *flowfile.DataDef, s *schema.Schema, payload []byte) (*table.Table, error) {
	root, err := parseXML(payload)
	if err != nil {
		return nil, err
	}
	tag := d.Prop("record_tag")
	records := findRecords(root, tag)
	t := table.New(s)
	for _, rec := range records {
		row := make(table.Row, s.Len())
		for i, col := range s.Columns() {
			row[i] = value.Parse(rec.path(col.Source()))
		}
		t.Append(row)
	}
	return t, nil
}

func parseXML(payload []byte) (*xmlNode, error) {
	dec := xml.NewDecoder(bytes.NewReader(payload))
	root := &xmlNode{}
	stack := []*xmlNode{root}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch el := tok.(type) {
		case xml.StartElement:
			n := &xmlNode{name: el.Name.Local}
			parent := stack[len(stack)-1]
			parent.children = append(parent.children, n)
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) > 1 {
				stack = stack[:len(stack)-1]
			}
		case xml.CharData:
			stack[len(stack)-1].text += string(el)
		}
	}
	return root, nil
}

// findRecords locates the repeating record nodes.
func findRecords(root *xmlNode, tag string) []*xmlNode {
	if tag != "" {
		var out []*xmlNode
		var walk func(n *xmlNode)
		walk = func(n *xmlNode) {
			for _, c := range n.children {
				if c.name == tag {
					out = append(out, c)
				} else {
					walk(c)
				}
			}
		}
		walk(root)
		return out
	}
	// Default: the document element's repeated children.
	if len(root.children) == 1 {
		return root.children[0].children
	}
	return root.children
}

// path resolves a dotted element path under the record.
func (n *xmlNode) path(p string) string {
	cur := n
	for _, seg := range strings.Split(p, ".") {
		var next *xmlNode
		for _, c := range cur.children {
			if c.name == seg {
				next = c
				break
			}
		}
		if next == nil {
			return ""
		}
		cur = next
	}
	return strings.TrimSpace(cur.text)
}
