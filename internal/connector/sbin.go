package connector

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"shareinsights/internal/flowfile"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
	"shareinsights/internal/value"
)

// sbin is ShareInsights' compact binary row format — the offline
// stand-in for AVRO (see DESIGN.md substitutions). Layout:
//
//	magic   "SBIN\x01"
//	ncols   uvarint, then ncols length-prefixed column names
//	nrows   uvarint
//	rows    per cell: 1 kind byte, then payload
//	          null:   nothing
//	          bool:   1 byte
//	          int:    varint
//	          float:  8-byte little-endian IEEE bits
//	          string: uvarint length + bytes
//	          time:   varint unix nanoseconds
//
// Column binding is by name against the declared schema, so an sbin
// payload may carry columns in any order or extras the schema ignores.
type sbinFormat struct{}

const sbinMagic = "SBIN\x01"

func (f *sbinFormat) Decode(d *flowfile.DataDef, s *schema.Schema, payload []byte) (*table.Table, error) {
	names, rows, err := DecodeSBIN(payload)
	if err != nil {
		return nil, err
	}
	binding := make([]int, s.Len())
	pos := map[string]int{}
	for i, n := range names {
		pos[n] = i
	}
	for i, col := range s.Columns() {
		j, ok := pos[col.Source()]
		if !ok {
			j, ok = pos[col.Name]
		}
		if !ok {
			return nil, fmt.Errorf("sbin payload has no column %q (has %v)", col.Source(), names)
		}
		binding[i] = j
	}
	t := table.New(s)
	for _, rec := range rows {
		row := make(table.Row, s.Len())
		for i, j := range binding {
			row[i] = rec[j]
		}
		t.Append(row)
	}
	return t, nil
}

// EncodeSBIN serializes a table in the sbin format.
func EncodeSBIN(t *table.Table) []byte {
	var buf bytes.Buffer
	buf.WriteString(sbinMagic)
	writeUvarint(&buf, uint64(t.Schema().Len()))
	for _, n := range t.Schema().Names() {
		writeUvarint(&buf, uint64(len(n)))
		buf.WriteString(n)
	}
	writeUvarint(&buf, uint64(t.Len()))
	for _, row := range t.Rows() {
		for _, v := range row {
			buf.WriteByte(byte(v.Kind()))
			switch v.Kind() {
			case value.Null:
			case value.Bool:
				if v.Bool() {
					buf.WriteByte(1)
				} else {
					buf.WriteByte(0)
				}
			case value.Int:
				writeVarint(&buf, v.Int())
			case value.Float:
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.Float()))
				buf.Write(b[:])
			case value.String:
				s := v.Str()
				writeUvarint(&buf, uint64(len(s)))
				buf.WriteString(s)
			case value.Time:
				writeVarint(&buf, v.Time().UnixNano())
			}
		}
	}
	return buf.Bytes()
}

// DecodeSBIN parses an sbin payload into column names and rows.
func DecodeSBIN(payload []byte) ([]string, []table.Row, error) {
	r := bytes.NewReader(payload)
	magic := make([]byte, len(sbinMagic))
	if _, err := r.Read(magic); err != nil || string(magic) != sbinMagic {
		return nil, nil, fmt.Errorf("sbin: bad magic")
	}
	ncols, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, nil, fmt.Errorf("sbin: %w", err)
	}
	if ncols > 1<<16 {
		return nil, nil, fmt.Errorf("sbin: implausible column count %d", ncols)
	}
	names := make([]string, ncols)
	for i := range names {
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, nil, fmt.Errorf("sbin: %w", err)
		}
		b := make([]byte, n)
		if _, err := readFull(r, b); err != nil {
			return nil, nil, fmt.Errorf("sbin: %w", err)
		}
		names[i] = string(b)
	}
	nrows, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, nil, fmt.Errorf("sbin: %w", err)
	}
	rows := make([]table.Row, 0, nrows)
	for ri := uint64(0); ri < nrows; ri++ {
		row := make(table.Row, ncols)
		for ci := range row {
			kind, err := r.ReadByte()
			if err != nil {
				return nil, nil, fmt.Errorf("sbin: truncated row %d: %w", ri, err)
			}
			switch value.Kind(kind) {
			case value.Null:
				row[ci] = value.VNull
			case value.Bool:
				b, err := r.ReadByte()
				if err != nil {
					return nil, nil, fmt.Errorf("sbin: %w", err)
				}
				row[ci] = value.NewBool(b != 0)
			case value.Int:
				n, err := binary.ReadVarint(r)
				if err != nil {
					return nil, nil, fmt.Errorf("sbin: %w", err)
				}
				row[ci] = value.NewInt(n)
			case value.Float:
				var b [8]byte
				if _, err := readFull(r, b[:]); err != nil {
					return nil, nil, fmt.Errorf("sbin: %w", err)
				}
				row[ci] = value.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(b[:])))
			case value.String:
				n, err := binary.ReadUvarint(r)
				if err != nil {
					return nil, nil, fmt.Errorf("sbin: %w", err)
				}
				if n > uint64(r.Len()) {
					return nil, nil, fmt.Errorf("sbin: string length %d exceeds remaining payload", n)
				}
				b := make([]byte, n)
				if _, err := readFull(r, b); err != nil {
					return nil, nil, fmt.Errorf("sbin: %w", err)
				}
				row[ci] = value.NewString(string(b))
			case value.Time:
				n, err := binary.ReadVarint(r)
				if err != nil {
					return nil, nil, fmt.Errorf("sbin: %w", err)
				}
				row[ci] = value.NewTime(time.Unix(0, n))
			default:
				return nil, nil, fmt.Errorf("sbin: unknown kind byte %d", kind)
			}
		}
		rows = append(rows, row)
	}
	return names, rows, nil
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var b [binary.MaxVarintLen64]byte
	buf.Write(b[:binary.PutUvarint(b[:], v)])
}

func writeVarint(buf *bytes.Buffer, v int64) {
	var b [binary.MaxVarintLen64]byte
	buf.Write(b[:binary.PutVarint(b[:], v)])
}

func readFull(r *bytes.Reader, b []byte) (int, error) {
	n, err := r.Read(b)
	if err == nil && n < len(b) {
		return n, fmt.Errorf("short read: %d of %d", n, len(b))
	}
	return n, err
}
