// Negotiated source pushdown: the cost-based optimizer (internal/dag's
// Optimize) may ask a source to apply a filter predicate and to skip
// decoding columns nothing downstream reads. The request is an offer,
// never an assumption — a protocol or format that cannot honor part of
// it declines that part in its PushdownResult and the pipeline's own
// stages re-establish the semantics (pushed predicates stay in the
// consumer pipeline, so a declined or partially applied pushdown is
// always sound). Negotiation happens in-band with the single fetch and
// the single decode a plain Load performs: declining never refetches,
// so retry accounting (si_source_retries_total) is identical with
// pushdown on and off.
package connector

import (
	"context"
	"fmt"

	"shareinsights/internal/expr"
	"shareinsights/internal/flowfile"
	"shareinsights/internal/obs"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
)

// Pushdown is the optimizer's request to a source: filter rows by
// Predicate (an expression over the declared schema) and skip decoding
// SkipColumns (columns no downstream stage reads — they surface as
// nulls). Either part may be empty.
type Pushdown struct {
	// Predicate filters rows at the source. The consumer pipeline
	// re-applies the same filter, so connectors may apply it fully,
	// partially, or not at all.
	Predicate string `json:"predicate,omitempty"`
	// SkipColumns are declared columns whose values are never read
	// downstream; connectors may decode them as nulls.
	SkipColumns []string `json:"skip_columns,omitempty"`
}

// Empty reports whether the request asks for nothing.
func (pd Pushdown) Empty() bool { return pd.Predicate == "" && len(pd.SkipColumns) == 0 }

// PushdownResult reports what a connector actually applied. Declined
// parts are simply absent — a decline is a normal outcome, not an
// error.
type PushdownResult struct {
	// PredicateApplied is true when the source filtered rows by the
	// requested predicate.
	PredicateApplied bool `json:"predicate_applied,omitempty"`
	// SkippedColumns lists the requested columns the source actually
	// skipped (decoded as nulls).
	SkippedColumns []string `json:"skipped_columns,omitempty"`
}

// ProtocolPushdown is the optional protocol capability hook: a
// connector that can ask its source to filter or project server-side
// implements it. FetchPushdown must behave exactly like Fetch for the
// parts of pd it declines, and report what it applied — it must never
// fail because of the pushdown itself.
type ProtocolPushdown interface {
	FetchPushdown(ctx context.Context, d *flowfile.DataDef, pd Pushdown) ([]byte, PushdownResult, error)
}

// FormatPushdown is the optional format capability hook: a format that
// can filter rows or skip column parsing while decoding implements it.
// The same decline contract applies: unsupported parts of pd are
// ignored (and absent from the result), never errors, and the payload
// is decoded exactly once either way.
type FormatPushdown interface {
	DecodePushdown(d *flowfile.DataDef, s *schema.Schema, payload []byte, pd Pushdown) (*table.Table, PushdownResult, error)
}

// subtractStrings returns xs minus the elements of ys, preserving
// order.
func subtractStrings(xs, ys []string) []string {
	if len(ys) == 0 {
		return xs
	}
	drop := make(map[string]bool, len(ys))
	for _, y := range ys {
		drop[y] = true
	}
	out := xs[:0:0]
	for _, x := range xs {
		if !drop[x] {
			out = append(out, x)
		}
	}
	return out
}

// LoadPushdown is LoadPushdownContext without context or tracing.
func (r *Registry) LoadPushdown(d *flowfile.DataDef, s *schema.Schema, pd Pushdown) (*table.Table, PushdownResult, error) {
	t, _, res, err := r.LoadPushdownContext(context.Background(), d, s, pd, nil, 0)
	return t, res, err
}

// LoadPushdownContext is LoadContext with a pushdown offer. The offer
// is negotiated in two steps against the exact same fetch/decode
// sequence a plain load performs: the protocol sees the whole request
// first (inside the one retried fetch — capability is probed before
// fetching, so a decline never refetches or re-charges retry metrics),
// then whatever it declined is offered to the format at decode time.
// The merged PushdownResult reports what was applied; callers needing
// exact semantics must keep the predicate in the consumer pipeline,
// where re-applying it is idempotent.
func (r *Registry) LoadPushdownContext(ctx context.Context, d *flowfile.DataDef, s *schema.Schema, pd Pushdown, tr obs.Tracer, parent int) (*table.Table, LoadStats, PushdownResult, error) {
	var stats LoadStats
	var res PushdownResult
	if s == nil {
		return nil, stats, res, fmt.Errorf("connector: D.%s has no declared schema", d.Name)
	}
	p, pname, err := r.protocolFor(d)
	if err != nil {
		return nil, stats, res, err
	}
	stats.Protocol = pname
	// Probe the protocol capability before any fetch runs: the fetch
	// below happens exactly once through the retry policy whether the
	// pushdown is applied, partially applied, or declined.
	pp, protoPush := p.(ProtocolPushdown)
	protoPush = protoPush && !pd.Empty()
	breaker := r.breakers.For(pname + "\x00" + d.Prop("source"))
	fid := 0
	if tr != nil {
		fid = tr.StartSpan(parent, "fetch "+pname)
	}
	var payload []byte
	if berr := breaker.Allow(); berr != nil {
		err = fmt.Errorf("source unavailable (%s, %w)", breaker.State(), berr)
	} else {
		policy := r.policyFor(d)
		stats.Attempts, err = policy.Do(ctx, func(actx context.Context) error {
			var ferr error
			if protoPush {
				payload, res, ferr = pp.FetchPushdown(actx, d, pd)
			} else {
				payload, ferr = fetch(actx, p, d)
			}
			return ferr
		})
		if err != nil {
			breaker.Failure()
		} else {
			breaker.Success()
		}
	}
	if retries := stats.Attempts - 1; retries > 0 {
		if m := r.Metrics(); m != nil {
			m.CounterVec("si_source_retries_total",
				"Source fetch retries, by protocol.", "protocol").
				With(pname).Add(int64(retries))
		}
		if tr != nil {
			tr.SpanInt(fid, "retries", int64(retries))
		}
	}
	if tr != nil {
		tr.SpanInt(fid, "bytes", int64(len(payload)))
		if err != nil {
			tr.SpanFlag(fid, "error")
		}
		tr.EndSpan(fid)
	}
	if err != nil {
		return nil, stats, res, fmt.Errorf("connector: D.%s via %s: %w", d.Name, pname, err)
	}
	f, fname, err := r.formatFor(d)
	if err != nil {
		return nil, stats, res, err
	}
	// Offer the format whatever the protocol declined.
	rem := pd
	if res.PredicateApplied {
		rem.Predicate = ""
	}
	rem.SkipColumns = subtractStrings(rem.SkipColumns, res.SkippedColumns)
	fp, formatPush := f.(FormatPushdown)
	formatPush = formatPush && !rem.Empty()
	did := 0
	if tr != nil {
		did = tr.StartSpan(parent, "decode "+fname)
		if res.PredicateApplied || formatPush {
			tr.SpanFlag(did, "pushdown")
		}
	}
	var t *table.Table
	if formatPush {
		var fres PushdownResult
		t, fres, err = fp.DecodePushdown(d, s, payload, rem)
		res.PredicateApplied = res.PredicateApplied || fres.PredicateApplied
		res.SkippedColumns = append(res.SkippedColumns, fres.SkippedColumns...)
	} else {
		t, err = f.Decode(d, s, payload)
	}
	if tr != nil {
		if t != nil {
			tr.SpanInt(did, "rows_out", int64(t.Len()))
		}
		tr.EndSpan(did)
	}
	if err != nil {
		return nil, stats, res, fmt.Errorf("connector: D.%s as %s: %w", d.Name, fname, err)
	}
	return t, stats, res, nil
}

// compilePushdownPredicate binds a pushed predicate against the
// declared schema for decode-time filtering. It returns the bound
// evaluator plus the set of columns the predicate reads (those must
// keep decoding even when listed in SkipColumns). A predicate that
// fails to parse or bind is declined (nil evaluator) — the consumer
// pipeline still applies it, so declining is always sound.
func compilePushdownPredicate(pred string, s *schema.Schema) (expr.Eval, map[string]bool) {
	if pred == "" {
		return nil, nil
	}
	ev, err := expr.Compile(pred, s)
	if err != nil {
		return nil, nil
	}
	cols, err := expr.ReferencedColumns(pred)
	if err != nil {
		return nil, nil
	}
	need := make(map[string]bool, len(cols))
	for _, c := range cols {
		need[c] = true
	}
	return ev, need
}
