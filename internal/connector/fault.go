package connector

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"shareinsights/internal/flowfile"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
)

// FaultConfig configures injected failures. Deterministic knobs
// (FailFirst, FailEvery) drive the test matrix; ErrorRate exercises
// probabilistic chaos with a seeded generator.
type FaultConfig struct {
	// FailFirst fails the first N calls with a transient error, then
	// passes through — the "flaky source recovers after N retries"
	// scenario.
	FailFirst int
	// FailEvery fails every Nth call (1 = always).
	FailEvery int
	// ErrorRate fails calls with this probability in [0, 1), drawn from
	// a generator seeded with Seed.
	ErrorRate float64
	// Seed seeds the ErrorRate generator (deterministic chaos runs).
	Seed int64
	// Latency is added before every call.
	Latency time.Duration
	// Hang blocks calls until the context is canceled — the pathological
	// stuck source. Protocols wrapped this way never return data.
	Hang bool
	// ShortRead truncates successful payloads to at most N bytes when
	// > 0, simulating broken transfers.
	ShortRead int
	// Err overrides the injected error (default: a generic transient
	// fault).
	Err error
}

// faultCore is the shared call-counting and failure decision.
type faultCore struct {
	cfg   FaultConfig
	calls atomic.Int64

	mu  sync.Mutex
	rng *rand.Rand
}

func newFaultCore(cfg FaultConfig) *faultCore {
	c := &faultCore{cfg: cfg}
	if cfg.ErrorRate > 0 {
		c.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	return c
}

// Calls reports how many calls were attempted (tests assert retry
// counts against it).
func (c *faultCore) Calls() int { return int(c.calls.Load()) }

func (c *faultCore) fail(n int64) bool {
	if n <= int64(c.cfg.FailFirst) {
		return true
	}
	if c.cfg.FailEvery > 0 && n%int64(c.cfg.FailEvery) == 0 {
		return true
	}
	if c.rng != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.rng.Float64() < c.cfg.ErrorRate
	}
	return false
}

func (c *faultCore) err(what string, n int64) error {
	if c.cfg.Err != nil {
		return c.cfg.Err
	}
	return fmt.Errorf("fault injection: %s %d failed", what, n)
}

// before applies latency and hangs, honoring ctx.
func (c *faultCore) before(ctx context.Context) error {
	if c.cfg.Hang {
		<-ctx.Done()
		return ctx.Err()
	}
	if c.cfg.Latency > 0 {
		t := time.NewTimer(c.cfg.Latency)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// FaultProtocol wraps a Protocol with configurable fault injection:
// error rates, added latency, hangs and short reads. It registers
// through the ordinary extension API (RegisterProtocol) like any user
// connector, so the retry/breaker/degradation matrix is tested through
// exactly the path user connectors use.
type FaultProtocol struct {
	*faultCore
	inner Protocol
}

// NewFaultProtocol wraps inner with fault injection.
func NewFaultProtocol(inner Protocol, cfg FaultConfig) *FaultProtocol {
	return &FaultProtocol{faultCore: newFaultCore(cfg), inner: inner}
}

// Fetch implements Protocol.
func (p *FaultProtocol) Fetch(d *flowfile.DataDef) ([]byte, error) {
	return p.FetchContext(context.Background(), d)
}

// FetchContext implements ProtocolContext.
func (p *FaultProtocol) FetchContext(ctx context.Context, d *flowfile.DataDef) ([]byte, error) {
	n := p.calls.Add(1)
	if err := p.before(ctx); err != nil {
		return nil, err
	}
	if p.fail(n) {
		return nil, p.err("fetch", n)
	}
	b, err := fetch(ctx, p.inner, d)
	if err != nil {
		return nil, err
	}
	if p.cfg.ShortRead > 0 && len(b) > p.cfg.ShortRead {
		b = b[:p.cfg.ShortRead]
	}
	return b, nil
}

// FetchPushdown implements ProtocolPushdown by forwarding the offer to
// the wrapped protocol when it has the capability and declining it
// otherwise — fault decisions (fail counts, latency, hangs, short
// reads) apply identically either way, so the chaos matrix exercises
// pushdown negotiation through exactly the retry/breaker path plain
// fetches take.
func (p *FaultProtocol) FetchPushdown(ctx context.Context, d *flowfile.DataDef, pd Pushdown) ([]byte, PushdownResult, error) {
	var res PushdownResult
	n := p.calls.Add(1)
	if err := p.before(ctx); err != nil {
		return nil, res, err
	}
	if p.fail(n) {
		return nil, res, p.err("fetch", n)
	}
	var b []byte
	var err error
	if pp, ok := p.inner.(ProtocolPushdown); ok {
		b, res, err = pp.FetchPushdown(ctx, d, pd)
	} else {
		b, err = fetch(ctx, p.inner, d)
	}
	if err != nil {
		return nil, res, err
	}
	if p.cfg.ShortRead > 0 && len(b) > p.cfg.ShortRead {
		b = b[:p.cfg.ShortRead]
	}
	return b, res, nil
}

// FaultFormat wraps a Format with the same failure decisions, for
// exercising decode-stage errors.
type FaultFormat struct {
	*faultCore
	inner Format
}

// NewFaultFormat wraps inner with fault injection.
func NewFaultFormat(inner Format, cfg FaultConfig) *FaultFormat {
	return &FaultFormat{faultCore: newFaultCore(cfg), inner: inner}
}

// Decode implements Format.
func (f *FaultFormat) Decode(d *flowfile.DataDef, s *schema.Schema, payload []byte) (*table.Table, error) {
	n := f.calls.Add(1)
	if f.fail(n) {
		return nil, f.err("decode", n)
	}
	if f.cfg.ShortRead > 0 && len(payload) > f.cfg.ShortRead {
		payload = payload[:f.cfg.ShortRead]
	}
	return f.inner.Decode(d, s, payload)
}
