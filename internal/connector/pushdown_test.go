package connector

import (
	"context"
	"strings"
	"testing"
	"time"

	"shareinsights/internal/flowfile"
	"shareinsights/internal/obs"
	"shareinsights/internal/resilience"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
	"shareinsights/internal/value"
)

const pushCSV = "region,amount,notes\neast,10,a\nwest,200,b\neast,300,c\n"

func pushRegistry(retries int) *Registry {
	return NewRegistry(Options{
		Mem:   map[string][]byte{"t.csv": []byte(pushCSV)},
		Retry: fastRetry(retries),
	})
}

func pushDef(t *testing.T) *flowfile.DataDef {
	return def(t, "t", map[string]string{"source": "mem:t.csv", "format": "csv"})
}

func pushSchema() *schema.Schema { return schema.MustFromNames("region", "amount", "notes") }

func TestCSVPredicatePushdown(t *testing.T) {
	r := pushRegistry(0)
	tb, res, err := r.LoadPushdown(pushDef(t), pushSchema(), Pushdown{Predicate: "amount > 100"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.PredicateApplied {
		t.Fatalf("csv declined a bindable predicate: %+v", res)
	}
	if tb.Len() != 2 {
		t.Fatalf("rows = %d, want 2 (filtered at decode)", tb.Len())
	}
	for _, row := range tb.Rows() {
		if row[1].Int() <= 100 {
			t.Fatalf("pushed predicate let through %v", row)
		}
	}
}

func TestCSVSkipColumnsDecodeAsNulls(t *testing.T) {
	r := pushRegistry(0)
	tb, res, err := r.LoadPushdown(pushDef(t), pushSchema(), Pushdown{SkipColumns: []string{"notes", "ghost"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SkippedColumns) != 1 || res.SkippedColumns[0] != "notes" {
		t.Fatalf("SkippedColumns = %v, want [notes] (unknown columns ignored)", res.SkippedColumns)
	}
	for _, row := range tb.Rows() {
		if !row[2].IsNull() {
			t.Fatalf("skipped column decoded a value: %v", row)
		}
		if row[0].IsNull() || row[1].IsNull() {
			t.Fatalf("live column lost its value: %v", row)
		}
	}
}

func TestCSVPredicateKeepsItsColumns(t *testing.T) {
	// The predicate reads amount; a request to also skip amount must
	// keep it decoding (nulling it would evaluate the filter on nulls).
	r := pushRegistry(0)
	tb, res, err := r.LoadPushdown(pushDef(t), pushSchema(), Pushdown{
		Predicate:   "amount > 100",
		SkipColumns: []string{"amount", "notes"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SkippedColumns) != 1 || res.SkippedColumns[0] != "notes" {
		t.Fatalf("SkippedColumns = %v, want [notes]", res.SkippedColumns)
	}
	if tb.Len() != 2 {
		t.Fatalf("rows = %d, want 2", tb.Len())
	}
	for _, row := range tb.Rows() {
		if row[1].IsNull() {
			t.Fatalf("predicate column was nulled: %v", row)
		}
	}
}

func TestCSVUnbindablePredicateDeclined(t *testing.T) {
	r := pushRegistry(0)
	tb, res, err := r.LoadPushdown(pushDef(t), pushSchema(), Pushdown{Predicate: "nosuch > 1"})
	if err != nil {
		t.Fatal(err)
	}
	if res.PredicateApplied {
		t.Fatal("unbindable predicate reported as applied")
	}
	if tb.Len() != 3 {
		t.Fatalf("declined pushdown dropped rows: %d", tb.Len())
	}
}

func TestJSONFormatDeclinesPushdown(t *testing.T) {
	// json has no DecodePushdown: the whole offer is declined, the load
	// still succeeds, and every row decodes.
	r := NewRegistry(Options{
		Mem:   map[string][]byte{"t.json": []byte(`[{"region":"east","amount":10},{"region":"west","amount":200}]`)},
		Retry: fastRetry(0),
	})
	d := def(t, "t", map[string]string{"source": "mem:t.json", "format": "json"})
	tb, res, err := r.LoadPushdown(d, schema.MustFromNames("region", "amount"), Pushdown{Predicate: "amount > 100", SkipColumns: []string{"region"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.PredicateApplied || len(res.SkippedColumns) != 0 {
		t.Fatalf("format without the capability reported pushdown: %+v", res)
	}
	if tb.Len() != 2 {
		t.Fatalf("declined pushdown dropped rows: %d", tb.Len())
	}
}

// applyPred filters a table by the same predicate a consumer pipeline
// would re-apply — the reference semantics for the equivalence checks.
func applyPred(t *testing.T, tb *table.Table, keep func(table.Row) bool) *table.Table {
	t.Helper()
	out := table.New(tb.Schema())
	for _, row := range tb.Rows() {
		if keep(row) {
			out.Append(row)
		}
	}
	return out
}

func sameRows(a, b *table.Table) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i, row := range a.Rows() {
		for j, v := range row {
			if v.String() != b.Rows()[i][j].String() {
				return false
			}
		}
	}
	return true
}

// chaosPushRegistry wires a fault-injected protocol over the pushdown
// payload, mirroring chaosRegistry but with three columns.
func chaosPushRegistry(t *testing.T, cfg FaultConfig, retries int) (*Registry, *FaultProtocol) {
	t.Helper()
	r := NewRegistry(Options{Retry: fastRetry(retries)})
	fp := NewFaultProtocol(&memProtocol{data: map[string][]byte{"t.csv": []byte(pushCSV)}}, cfg)
	if err := r.RegisterProtocol("chaos", fp); err != nil {
		t.Fatal(err)
	}
	return r, fp
}

func chaosPushDef(t *testing.T) *flowfile.DataDef {
	return def(t, "t", map[string]string{"source": "t.csv", "protocol": "chaos", "format": "csv"})
}

// TestPushdownRetryEquivalence is the pushdown × retry interplay
// matrix: a flaky source that recovers after N retries must yield the
// same rows, the same attempt counts, and the same retry metrics with
// pushdown on and off — a pushdown never adds or hides fetch attempts.
func TestPushdownRetryEquivalence(t *testing.T) {
	pd := Pushdown{Predicate: "amount > 100", SkipColumns: []string{"notes"}}
	keep := func(row table.Row) bool { return row[1].Int() > 100 }
	for _, tc := range []struct {
		name string
		cfg  FaultConfig
	}{
		{"healthy", FaultConfig{}},
		{"recovers_after_2", FaultConfig{FailFirst: 2}},
		{"every_3rd_fails", FaultConfig{FailEvery: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := pushSchema()
			offR, offFP := chaosPushRegistry(t, tc.cfg, 3)
			offTb, offStats, err := offR.LoadContext(context.Background(), chaosPushDef(t), s, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			onR, onFP := chaosPushRegistry(t, tc.cfg, 3)
			onTb, onStats, res, err := onR.LoadPushdownContext(context.Background(), chaosPushDef(t), s, pd, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !res.PredicateApplied {
				t.Fatalf("csv declined the predicate: %+v", res)
			}
			if onStats.Attempts != offStats.Attempts || onFP.Calls() != offFP.Calls() {
				t.Fatalf("pushdown changed fetch accounting: on=%d/%d off=%d/%d",
					onStats.Attempts, onFP.Calls(), offStats.Attempts, offFP.Calls())
			}
			// Identical results once the consumer's own filter (which
			// stays in the pipeline) runs over the pushdown-off rows;
			// skipped columns are nulls in both (nothing reads them).
			want := applyPred(t, offTb, keep)
			for _, row := range want.Rows() {
				row[2] = value.VNull
			}
			if !sameRows(onTb, want) {
				t.Fatalf("pushdown-on rows diverge:\non=%v\nwant=%v", onTb.Rows(), want.Rows())
			}
		})
	}
}

// TestDeclinedPushdownNoDoubleCharge pins the probe-before-fetch
// contract: a pushdown the stack declines (json format, plain mem
// protocol) falls back inside the one retried fetch — the source sees
// exactly as many calls as a pushdown-off load and
// si_source_retries_total advances by exactly the same amount.
func TestDeclinedPushdownNoDoubleCharge(t *testing.T) {
	payload := `[{"region":"east","amount":10},{"region":"west","amount":200}]`
	s := schema.MustFromNames("region", "amount")
	load := func(pd Pushdown) (*table.Table, LoadStats, PushdownResult, int, string) {
		r := NewRegistry(Options{Retry: fastRetry(3)})
		fp := NewFaultProtocol(&memProtocol{data: map[string][]byte{"t.json": []byte(payload)}}, FaultConfig{FailFirst: 2})
		if err := r.RegisterProtocol("chaos", fp); err != nil {
			t.Fatal(err)
		}
		m := obs.NewRegistry()
		r.SetMetrics(m)
		d := def(t, "t", map[string]string{"source": "t.json", "protocol": "chaos", "format": "json"})
		tb, stats, res, err := r.LoadPushdownContext(context.Background(), d, s, pd, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		var buf strings.Builder
		m.WritePrometheus(&buf)
		return tb, stats, res, fp.Calls(), buf.String()
	}
	offTb, offStats, _, offCalls, offMetrics := load(Pushdown{})
	onTb, onStats, res, onCalls, onMetrics := load(Pushdown{Predicate: "amount > 100", SkipColumns: []string{"region"}})
	if res.PredicateApplied || len(res.SkippedColumns) != 0 {
		t.Fatalf("expected a full decline, got %+v", res)
	}
	if onCalls != offCalls || onStats.Attempts != offStats.Attempts {
		t.Fatalf("declined pushdown changed fetch counts: on=%d/%d off=%d/%d",
			onCalls, onStats.Attempts, offCalls, offStats.Attempts)
	}
	const wantRetries = `si_source_retries_total{protocol="chaos"} 2`
	if !strings.Contains(onMetrics, wantRetries) || !strings.Contains(offMetrics, wantRetries) {
		t.Fatalf("retry metric double-charged:\non:\n%s\noff:\n%s", onMetrics, offMetrics)
	}
	if !sameRows(onTb, offTb) {
		t.Fatalf("declined pushdown changed rows:\non=%v\noff=%v", onTb.Rows(), offTb.Rows())
	}
}

// TestPushdownBreakerHalfOpenEquivalence is the pushdown × breaker
// interplay: the trip / fail-fast / half-open-probe / close lifecycle
// is identical with a pushdown offered, and the successful probe both
// closes the breaker and applies the pushdown.
func TestPushdownBreakerHalfOpenEquivalence(t *testing.T) {
	pd := Pushdown{Predicate: "amount > 100"}
	s := pushSchema()
	run := func(use bool) (calls []int, probeRows int) {
		clock := time.Unix(0, 0)
		r := NewRegistry(Options{
			Retry:   fastRetry(0),
			Breaker: resilience.BreakerConfig{FailureThreshold: 3, OpenFor: 10 * time.Second, Now: func() time.Time { return clock }},
		})
		fp := NewFaultProtocol(&memProtocol{data: map[string][]byte{"t.csv": []byte(pushCSV)}}, FaultConfig{FailFirst: 3})
		if err := r.RegisterProtocol("chaos", fp); err != nil {
			t.Fatal(err)
		}
		d := chaosPushDef(t)
		load := func() (*table.Table, error) {
			if use {
				tb, _, _, err := r.LoadPushdownContext(context.Background(), d, s, pd, nil, 0)
				return tb, err
			}
			tb, _, err := r.LoadContext(context.Background(), d, s, nil, 0)
			return tb, err
		}
		// Three failures trip the breaker.
		for i := 0; i < 3; i++ {
			if _, err := load(); err == nil {
				t.Fatalf("call %d unexpectedly succeeded", i)
			}
			calls = append(calls, fp.Calls())
		}
		// Open: fail fast, source untouched.
		if _, err := load(); err == nil || !strings.Contains(err.Error(), "circuit breaker open") {
			t.Fatalf("open breaker let the call through: %v", err)
		}
		calls = append(calls, fp.Calls())
		// Half-open probe succeeds and closes the breaker.
		clock = clock.Add(11 * time.Second)
		tb, err := load()
		if err != nil {
			t.Fatalf("half-open probe failed: %v", err)
		}
		calls = append(calls, fp.Calls())
		if st := r.Breakers().For("chaos\x00t.csv").State(); st != resilience.Closed {
			t.Fatalf("breaker %v after successful probe, want closed", st)
		}
		return calls, tb.Len()
	}
	offCalls, offRows := run(false)
	onCalls, onRows := run(true)
	for i := range offCalls {
		if onCalls[i] != offCalls[i] {
			t.Fatalf("breaker lifecycle diverged at step %d: on=%v off=%v", i, onCalls, offCalls)
		}
	}
	if offRows != 3 || onRows != 2 {
		t.Fatalf("probe rows: off=%d (want 3), on=%d (want 2, predicate applied)", offRows, onRows)
	}
}

// TestFaultProtocolForwardsCapability pins that the chaos wrapper
// forwards FetchPushdown to a capable inner protocol and declines for
// a plain one.
func TestFaultProtocolForwardsCapability(t *testing.T) {
	inner := &capableProtocol{payload: []byte(pushCSV)}
	fp := NewFaultProtocol(inner, FaultConfig{})
	b, res, err := fp.FetchPushdown(context.Background(), pushDef(t), Pushdown{Predicate: "x > 1"})
	if err != nil || !res.PredicateApplied {
		t.Fatalf("capability not forwarded: res=%+v err=%v", res, err)
	}
	if string(b) != pushCSV {
		t.Fatal("payload mangled")
	}
	plain := NewFaultProtocol(&memProtocol{data: map[string][]byte{"t.csv": []byte(pushCSV)}}, FaultConfig{})
	d := def(t, "t", map[string]string{"source": "t.csv"})
	_, res, err = plain.FetchPushdown(context.Background(), d, Pushdown{Predicate: "x > 1"})
	if err != nil || res.PredicateApplied {
		t.Fatalf("plain inner should decline: res=%+v err=%v", res, err)
	}
}

// capableProtocol is a test protocol that claims full predicate
// pushdown support.
type capableProtocol struct{ payload []byte }

func (p *capableProtocol) Fetch(d *flowfile.DataDef) ([]byte, error) { return p.payload, nil }

func (p *capableProtocol) FetchPushdown(ctx context.Context, d *flowfile.DataDef, pd Pushdown) ([]byte, PushdownResult, error) {
	return p.payload, PushdownResult{PredicateApplied: pd.Predicate != ""}, nil
}
