package connector

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"shareinsights/internal/flowfile"
	"shareinsights/internal/obs"
	"shareinsights/internal/resilience"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
	"shareinsights/internal/value"
)

// fastRetry is a test policy that never sleeps on the clock.
func fastRetry(retries int) resilience.Policy {
	return resilience.Policy{
		MaxRetries: retries,
		Sleep:      func(context.Context, time.Duration) error { return nil },
	}
}

// chaosRegistry builds a registry whose "chaos" protocol wraps mem with
// the given fault config — registered through the ordinary extension
// API, like any user connector.
func chaosRegistry(t *testing.T, cfg FaultConfig, retries int) (*Registry, *FaultProtocol) {
	t.Helper()
	r := NewRegistry(Options{
		Mem:   map[string][]byte{"t.csv": []byte("east,10\nwest,20\n")},
		Retry: fastRetry(retries),
	})
	fp := NewFaultProtocol(&memProtocol{data: map[string][]byte{"t.csv": []byte("east,10\nwest,20\n")}}, cfg)
	if err := r.RegisterProtocol("chaos", fp); err != nil {
		t.Fatal(err)
	}
	return r, fp
}

func chaosDef(t *testing.T) *flowfile.DataDef {
	return def(t, "t", map[string]string{"source": "t.csv", "protocol": "chaos", "format": "csv"})
}

func TestFlakySourceRecoversAfterRetries(t *testing.T) {
	r, fp := chaosRegistry(t, FaultConfig{FailFirst: 2}, 3)
	tb, stats, err := r.LoadContext(context.Background(), chaosDef(t), schema.MustFromNames("region", "amount"), nil, 0)
	if err != nil {
		t.Fatalf("flaky source did not recover: %v", err)
	}
	if tb.Len() != 2 {
		t.Fatalf("rows = %d, want 2", tb.Len())
	}
	if stats.Attempts != 3 || fp.Calls() != 3 {
		t.Fatalf("attempts = %d, calls = %d, want 3 (2 failures + success)", stats.Attempts, fp.Calls())
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	r, fp := chaosRegistry(t, FaultConfig{FailEvery: 1}, 2)
	_, stats, err := r.LoadContext(context.Background(), chaosDef(t), schema.MustFromNames("region", "amount"), nil, 0)
	if err == nil {
		t.Fatal("always-failing source succeeded")
	}
	if stats.Attempts != 3 || fp.Calls() != 3 {
		t.Fatalf("attempts = %d, calls = %d, want 3", stats.Attempts, fp.Calls())
	}
}

func TestPerSourceRetriesProperty(t *testing.T) {
	r, fp := chaosRegistry(t, FaultConfig{FailEvery: 1}, 0)
	d := chaosDef(t)
	d.SetProp("retries", "4")
	_, stats, err := r.LoadContext(context.Background(), d, schema.MustFromNames("region", "amount"), nil, 0)
	if err == nil {
		t.Fatal("always-failing source succeeded")
	}
	if stats.Attempts != 5 || fp.Calls() != 5 {
		t.Fatalf("attempts = %d, calls = %d, want 5 (retries: 4 property)", stats.Attempts, fp.Calls())
	}
}

func TestBreakerOpensThenHalfOpenProbeCloses(t *testing.T) {
	clock := time.Unix(0, 0)
	r := NewRegistry(Options{
		Retry:   fastRetry(0),
		Breaker: resilience.BreakerConfig{FailureThreshold: 3, OpenFor: 10 * time.Second, Now: func() time.Time { return clock }},
	})
	fp := NewFaultProtocol(&memProtocol{data: map[string][]byte{"t.csv": []byte("east,10\n")}}, FaultConfig{FailFirst: 3})
	if err := r.RegisterProtocol("chaos", fp); err != nil {
		t.Fatal(err)
	}
	s := schema.MustFromNames("region", "amount")
	d := chaosDef(t)
	// Three failures trip the breaker.
	for i := 0; i < 3; i++ {
		if _, _, err := r.LoadContext(context.Background(), d, s, nil, 0); err == nil {
			t.Fatalf("call %d unexpectedly succeeded", i)
		}
	}
	calls := fp.Calls()
	// While open, calls fail fast without touching the source.
	if _, _, err := r.LoadContext(context.Background(), d, s, nil, 0); err == nil || !strings.Contains(err.Error(), "circuit breaker open") {
		t.Fatalf("open breaker let the call through: %v", err)
	}
	if fp.Calls() != calls {
		t.Fatal("open breaker still touched the source")
	}
	// Cooldown elapses: the half-open probe reaches the (now healthy)
	// source and closes the breaker.
	clock = clock.Add(11 * time.Second)
	if _, _, err := r.LoadContext(context.Background(), d, s, nil, 0); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if st := r.Breakers().For("chaos\x00t.csv").State(); st != resilience.Closed {
		t.Fatalf("breaker %v after successful probe, want closed", st)
	}
	if _, _, err := r.LoadContext(context.Background(), d, s, nil, 0); err != nil {
		t.Fatalf("closed breaker refused a call: %v", err)
	}
}

func TestBreakerTransitionMetrics(t *testing.T) {
	r, _ := chaosRegistry(t, FaultConfig{FailEvery: 1}, 0)
	m := obs.NewRegistry()
	r.SetMetrics(m)
	s := schema.MustFromNames("region", "amount")
	for i := 0; i < 6; i++ {
		r.LoadContext(context.Background(), chaosDef(t), s, nil, 0)
	}
	var buf strings.Builder
	m.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `si_breaker_transitions_total{protocol="chaos",to="open"} 1`) {
		t.Fatalf("breaker transition not recorded:\n%s", buf.String())
	}
}

func TestRetryMetrics(t *testing.T) {
	r, _ := chaosRegistry(t, FaultConfig{FailFirst: 2}, 3)
	m := obs.NewRegistry()
	r.SetMetrics(m)
	if _, _, err := r.LoadContext(context.Background(), chaosDef(t), schema.MustFromNames("region", "amount"), nil, 0); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	m.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `si_source_retries_total{protocol="chaos"} 2`) {
		t.Fatalf("retries not recorded:\n%s", buf.String())
	}
}

func TestHungSourceHonorsDeadline(t *testing.T) {
	r, _ := chaosRegistry(t, FaultConfig{Hang: true}, 0)
	d := chaosDef(t)
	d.SetProp("timeout", "50ms")
	start := time.Now()
	_, _, err := r.LoadContext(context.Background(), d, schema.MustFromNames("region", "amount"), nil, 0)
	if err == nil {
		t.Fatal("hung source returned data")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hung fetch took %v, deadline not honored", elapsed)
	}
}

func TestLegacyFetchAdapterHonorsCancellation(t *testing.T) {
	// A plain Protocol (no FetchContext) that blocks forever: the
	// adapter must abandon it when the context ends.
	r := NewRegistry(Options{Retry: fastRetry(0)})
	if err := r.RegisterProtocol("stuck", stuckProtocol{}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	d := def(t, "t", map[string]string{"source": "x", "protocol": "stuck", "format": "csv"})
	start := time.Now()
	_, _, err := r.LoadContext(ctx, d, schema.MustFromNames("a"), nil, 0)
	if err == nil || time.Since(start) > 5*time.Second {
		t.Fatalf("legacy adapter did not honor cancellation: err=%v after %v", err, time.Since(start))
	}
}

type stuckProtocol struct{}

func (stuckProtocol) Fetch(*flowfile.DataDef) ([]byte, error) {
	select {} // block forever
}

func TestShortReadInjection(t *testing.T) {
	// Short-read an sbin payload: the checksummed format reliably
	// detects the truncation as corruption.
	s := schema.MustFromNames("region", "amount")
	tb := table.New(s)
	tb.AppendValues(value.NewString("east"), value.NewInt(10))
	payload := EncodeSBIN(tb)
	r := NewRegistry(Options{Retry: fastRetry(0)})
	fp := NewFaultProtocol(&memProtocol{data: map[string][]byte{"t.sbin": payload}}, FaultConfig{ShortRead: len(payload) / 2})
	if err := r.RegisterProtocol("chaos", fp); err != nil {
		t.Fatal(err)
	}
	d := def(t, "t", map[string]string{"source": "t.sbin", "protocol": "chaos", "format": "sbin"})
	_, _, err := r.LoadContext(context.Background(), d, s, nil, 0)
	if err == nil {
		t.Fatal("short read decoded cleanly; want a decode error")
	}
}

func TestFaultFormatFailsDecodes(t *testing.T) {
	r := NewRegistry(Options{Mem: map[string][]byte{"t.csv": []byte("east,10\n")}})
	ff := NewFaultFormat(&csvFormat{}, FaultConfig{FailFirst: 1})
	if err := r.RegisterFormat("chaoscsv", ff); err != nil {
		t.Fatal(err)
	}
	d := def(t, "t", map[string]string{"source": "mem:t.csv", "format": "chaoscsv"})
	s := schema.MustFromNames("region", "amount")
	if _, err := r.Load(d, s); err == nil {
		t.Fatal("first decode should fail")
	}
	if _, err := r.Load(d, s); err != nil {
		t.Fatalf("second decode should pass: %v", err)
	}
}

// --- HTTP hardening ---------------------------------------------------

func TestHTTPNon2xxIsErrorWithSnippet(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "database exploded", http.StatusInternalServerError)
	}))
	defer srv.Close()
	r := NewRegistry(Options{Retry: fastRetry(0)})
	d := def(t, "t", map[string]string{"source": srv.URL, "format": "csv"})
	_, _, err := r.LoadContext(context.Background(), d, schema.MustFromNames("a"), nil, 0)
	if err == nil {
		t.Fatal("500 response decoded cleanly")
	}
	if !strings.Contains(err.Error(), "500") || !strings.Contains(err.Error(), "database exploded") {
		t.Fatalf("error misses status/body snippet: %v", err)
	}
}

func TestHTTP4xxIsPermanent(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "no such dataset", http.StatusNotFound)
	}))
	defer srv.Close()
	r := NewRegistry(Options{Retry: fastRetry(5)})
	d := def(t, "t", map[string]string{"source": srv.URL, "format": "csv"})
	_, _, err := r.LoadContext(context.Background(), d, schema.MustFromNames("a"), nil, 0)
	if err == nil {
		t.Fatal("404 succeeded")
	}
	if hits.Load() != 1 {
		t.Fatalf("404 retried %d times; client errors are permanent", hits.Load())
	}
}

func TestHTTPRetryAfterHonored(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "7")
			http.Error(w, "try later", http.StatusTooManyRequests)
			return
		}
		fmt.Fprint(w, "east,10\n")
	}))
	defer srv.Close()
	var delays []time.Duration
	r := NewRegistry(Options{Retry: resilience.Policy{
		MaxRetries: 2,
		Sleep: func(_ context.Context, d time.Duration) error {
			delays = append(delays, d)
			return nil
		},
	}})
	d := def(t, "t", map[string]string{"source": srv.URL, "format": "csv"})
	tb, _, err := r.LoadContext(context.Background(), d, schema.MustFromNames("region", "amount"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 1 {
		t.Fatalf("rows = %d", tb.Len())
	}
	if len(delays) != 1 || delays[0] < 7*time.Second {
		t.Fatalf("Retry-After not honored as minimum backoff: %v", delays)
	}
}

func TestHTTPPayloadCap(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(make([]byte, 4096))
	}))
	defer srv.Close()
	r := NewRegistry(Options{Retry: fastRetry(3), MaxPayloadBytes: 1024})
	d := def(t, "t", map[string]string{"source": srv.URL, "format": "csv"})
	_, stats, err := r.LoadContext(context.Background(), d, schema.MustFromNames("a"), nil, 0)
	if err == nil || !strings.Contains(err.Error(), "payload cap") {
		t.Fatalf("oversized payload passed the cap: %v", err)
	}
	// The cap violation is permanent: it must not be retried.
	if stats.Attempts != 1 {
		t.Fatalf("cap violation retried %d times", stats.Attempts)
	}
}
