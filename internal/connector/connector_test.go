package connector

import (
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"

	"shareinsights/internal/flowfile"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
	"shareinsights/internal/value"
)

func def(t *testing.T, name string, props map[string]string) *flowfile.DataDef {
	t.Helper()
	d := &flowfile.DataDef{Name: name}
	for _, k := range []string{"source", "format", "protocol", "separator", "record_tag", "request_type", "items"} {
		if v, ok := props[k]; ok {
			d.SetProp(k, v)
		}
	}
	for k, v := range props {
		if d.Prop(k) == "" {
			d.SetProp(k, v)
		}
	}
	return d
}

func TestCSVPositionalBinding(t *testing.T) {
	r := NewRegistry(Options{Mem: map[string][]byte{
		"t.csv": []byte("east,10\nwest,20\n"),
	}})
	s := schema.MustFromNames("region", "amount")
	tb, err := r.Load(def(t, "t", map[string]string{"source": "mem:t.csv", "format": "csv"}), s)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 2 || tb.Cell(0, "amount").Int() != 10 {
		t.Errorf("csv load wrong:\n%s", tb.Format(0))
	}
}

func TestCSVHeaderBinding(t *testing.T) {
	// Header present with reordered columns: binding switches to by-name.
	r := NewRegistry(Options{Mem: map[string][]byte{
		"t.csv": []byte("amount,region\n10,east\n20,west\n"),
	}})
	s := schema.MustFromNames("region", "amount")
	tb, err := r.Load(def(t, "t", map[string]string{"source": "mem:t.csv"}), s)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Cell(0, "region").Str() != "east" || tb.Cell(0, "amount").Int() != 10 {
		t.Errorf("header binding wrong:\n%s", tb.Format(0))
	}
}

func TestCSVCustomSeparator(t *testing.T) {
	r := NewRegistry(Options{Mem: map[string][]byte{
		"t.csv": []byte("a;1\nb;2\n"),
	}})
	s := schema.MustFromNames("k", "v")
	tb, err := r.Load(def(t, "t", map[string]string{"source": "mem:t.csv", "separator": ";"}), s)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Cell(1, "v").Int() != 2 {
		t.Errorf("separator not honored:\n%s", tb.Format(0))
	}
}

func TestTSV(t *testing.T) {
	r := NewRegistry(Options{Mem: map[string][]byte{
		"t.tsv": []byte("a\t1\nb\t2\n"),
	}})
	s := schema.MustFromNames("k", "v")
	tb, err := r.Load(def(t, "t", map[string]string{"source": "mem:t.tsv", "format": "tsv"}), s)
	if err != nil || tb.Len() != 2 {
		t.Fatalf("tsv: %v", err)
	}
}

func TestJSONPathMapping(t *testing.T) {
	payload := `[
	  {"postedTime":"x","body":"hello","user":{"location":"Pune, India"}},
	  {"postedTime":"y","body":"bye","user":{}}
	]`
	r := NewRegistry(Options{Mem: map[string][]byte{"t.json": []byte(payload)}})
	s := schema.MustNew(
		schema.Column{Name: "created_at", Path: "postedTime"},
		schema.Column{Name: "text", Path: "body"},
		schema.Column{Name: "location", Path: "user.location"},
	)
	tb, err := r.Load(def(t, "t", map[string]string{"source": "mem:t.json", "format": "json"}), s)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Cell(0, "location").Str() != "Pune, India" {
		t.Errorf("path mapping wrong:\n%s", tb.Format(0))
	}
	if !tb.Cell(1, "location").IsNull() {
		t.Error("missing path should be null")
	}
}

func TestJSONWrapperObject(t *testing.T) {
	payload := `{"items":[{"q":"how","tags":"pig"}],"has_more":false}`
	r := NewRegistry(Options{Mem: map[string][]byte{"t.json": []byte(payload)}})
	s := schema.MustNew(schema.Column{Name: "question", Path: "q"}, schema.Column{Name: "tags", Path: "tags"})
	tb, err := r.Load(def(t, "t", map[string]string{"source": "mem:t.json", "format": "json"}), s)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 1 || tb.Cell(0, "question").Str() != "how" {
		t.Errorf("wrapper decode wrong:\n%s", tb.Format(0))
	}
}

func TestJSONL(t *testing.T) {
	payload := "{\"a\":1}\n{\"a\":2}\n"
	r := NewRegistry(Options{Mem: map[string][]byte{"t.jsonl": []byte(payload)}})
	s := schema.MustFromNames("a")
	tb, err := r.Load(def(t, "t", map[string]string{"source": "mem:t.jsonl", "format": "jsonl"}), s)
	if err != nil || tb.Len() != 2 || tb.Cell(1, "a").Int() != 2 {
		t.Fatalf("jsonl: %v\n%v", err, tb)
	}
}

func TestXML(t *testing.T) {
	payload := `<rows>
	  <row><project>pig</project><stats><bugs>3</bugs></stats></row>
	  <row><project>hive</project><stats><bugs>5</bugs></stats></row>
	</rows>`
	r := NewRegistry(Options{Mem: map[string][]byte{"t.xml": []byte(payload)}})
	s := schema.MustNew(
		schema.Column{Name: "project", Path: "project"},
		schema.Column{Name: "bugs", Path: "stats.bugs"},
	)
	tb, err := r.Load(def(t, "t", map[string]string{"source": "mem:t.xml", "format": "xml", "record_tag": "row"}), s)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 2 || tb.Cell(1, "bugs").Int() != 5 {
		t.Errorf("xml decode wrong:\n%s", tb.Format(0))
	}
}

func TestFileProtocolConfinement(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "ok.csv"), []byte("a\n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(Options{DataDir: dir})
	s := schema.MustFromNames("a")
	if _, err := r.Load(def(t, "t", map[string]string{"source": "ok.csv"}), s); err != nil {
		t.Fatalf("in-dir load: %v", err)
	}
	// Escaping paths are cleaned into the data dir; a genuinely missing
	// file errors rather than reading outside.
	if _, err := r.Load(def(t, "t", map[string]string{"source": "../../etc/passwd"}), s); err == nil {
		t.Error("escape should fail")
	}
}

func TestHTTPProtocol(t *testing.T) {
	var gotHeader string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHeader = r.Header.Get("X-Access-Key")
		w.Write([]byte(`[{"a":1}]`))
	}))
	defer ts.Close()
	r := NewRegistry(Options{HTTPClient: ts.Client()})
	s := schema.MustFromNames("a")
	d := def(t, "t", map[string]string{"source": ts.URL, "format": "json"})
	d.SetProp("http_headers.X-Access-Key", "XXX")
	tb, err := r.Load(d, s)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 1 || gotHeader != "XXX" {
		t.Errorf("http fetch: rows=%d header=%q", tb.Len(), gotHeader)
	}
}

func TestProtocolAndFormatErrors(t *testing.T) {
	r := NewRegistry(Options{})
	s := schema.MustFromNames("a")
	if _, err := r.Load(def(t, "t", map[string]string{"source": "gopher://x"}), s); err == nil || !strings.Contains(err.Error(), "gopher") {
		t.Errorf("unknown protocol: %v", err)
	}
	r2 := NewRegistry(Options{Mem: map[string][]byte{"x": []byte("a")}})
	if _, err := r2.Load(def(t, "t", map[string]string{"source": "mem:x", "format": "avro"}), s); err == nil || !strings.Contains(err.Error(), "avro") {
		t.Errorf("unknown format: %v", err)
	}
	if _, err := r2.Load(def(t, "t", map[string]string{"source": "mem:x"}), nil); err == nil {
		t.Error("missing schema should fail")
	}
}

func TestExtensionRegistration(t *testing.T) {
	r := NewRegistry(Options{})
	if err := r.RegisterProtocol("mem", nil); err == nil {
		t.Error("replacing a platform protocol should fail")
	}
	if err := r.RegisterFormat("csv", nil); err == nil {
		t.Error("replacing a platform format should fail")
	}
	if err := r.RegisterFormat("fixed", &csvFormat{}); err != nil {
		t.Errorf("new format: %v", err)
	}
	found := false
	for _, f := range r.Formats() {
		if f == "fixed" {
			found = true
		}
	}
	if !found {
		t.Error("registered format not listed")
	}
}

func TestSBINRoundTrip(t *testing.T) {
	s := schema.MustFromNames("s", "i", "f", "b", "n")
	src := table.New(s)
	src.AppendValues(value.NewString("héllo"), value.NewInt(-5), value.NewFloat(2.5), value.VTrue, value.VNull)
	src.AppendValues(value.NewString(""), value.NewInt(1<<40), value.NewFloat(-0.1), value.VFalse, value.VNull)
	payload := EncodeSBIN(src)
	r := NewRegistry(Options{Mem: map[string][]byte{"t.sbin": payload}})
	got, err := r.Load(def(t, "t", map[string]string{"source": "mem:t.sbin", "format": "sbin"}), s)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(src) {
		t.Errorf("sbin round trip:\n%s\nvs\n%s", got.Format(0), src.Format(0))
	}
}

func TestSBINRejectsCorruption(t *testing.T) {
	s := schema.MustFromNames("a")
	src := table.New(s)
	src.AppendValues(value.NewString("x"))
	payload := EncodeSBIN(src)
	for _, corrupt := range [][]byte{
		{},
		[]byte("BOGUS"),
		payload[:len(payload)-1],
	} {
		if _, _, err := DecodeSBIN(corrupt); err == nil {
			t.Errorf("corrupt payload %q decoded", corrupt)
		}
	}
}

func TestSBINRoundTripProperty(t *testing.T) {
	f := func(ss []string, is []int64) bool {
		s := schema.MustFromNames("s", "i")
		src := table.New(s)
		n := len(ss)
		if len(is) < n {
			n = len(is)
		}
		for i := 0; i < n; i++ {
			src.AppendValues(value.NewString(ss[i]), value.NewInt(is[i]))
		}
		names, rows, err := DecodeSBIN(EncodeSBIN(src))
		if err != nil || len(names) != 2 || len(rows) != n {
			return false
		}
		for i, r := range rows {
			if r[0].Str() != ss[i] || r[1].Int() != is[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEncodeCSVAndJSON(t *testing.T) {
	s := schema.MustFromNames("a", "b")
	tb := table.New(s)
	tb.AppendValues(value.NewString("x,y"), value.NewInt(1))
	csvOut, err := EncodeCSV(tb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csvOut), "a,b\n\"x,y\",1") {
		t.Errorf("csv = %q", csvOut)
	}
	jsonOut, err := EncodeJSON(tb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(jsonOut), `"a":"x,y"`) {
		t.Errorf("json = %s", jsonOut)
	}
}

// TestHTTPConnectionReuse pins the pooling behavior of the default
// client: repeated pulls from the same endpoint ride one warm
// connection instead of dialing per call.
func TestHTTPConnectionReuse(t *testing.T) {
	var conns atomic.Int64
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`[{"a":1}]`))
	}))
	ts.Config.ConnState = func(c net.Conn, st http.ConnState) {
		if st == http.StateNew {
			conns.Add(1)
		}
	}
	ts.Start()
	defer ts.Close()

	r := NewRegistry(Options{}) // no HTTPClient: the shared pooled transport
	s := schema.MustFromNames("a")
	d := def(t, "t", map[string]string{"source": ts.URL, "format": "json"})
	for i := 0; i < 5; i++ {
		if _, err := r.Load(d, s); err != nil {
			t.Fatal(err)
		}
	}
	if got := conns.Load(); got != 1 {
		t.Errorf("5 sequential pulls opened %d connections, want 1 (no reuse)", got)
	}
}
