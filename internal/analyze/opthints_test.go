package analyze

import (
	"testing"

	"shareinsights/internal/dag"
	"shareinsights/internal/flowfile"
	"shareinsights/internal/task"
)

func hintsSrc(t *testing.T, src string) Hints {
	t.Helper()
	f, err := flowfile.Parse("demo", src)
	if err != nil {
		t.Fatal(err)
	}
	return OptimizerHints(f, Options{Tasks: task.NewRegistry()})
}

func TestOptimizerHintsConstantFilters(t *testing.T) {
	h := hintsSrc(t, `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
F:
  +D.none: D.src | T.nothing
  +D.all: D.src | T.everything
T:
  nothing:
    type: filter_by
    filter_expression: 1 > 2
  everything:
    type: filter_by
    filter_expression: 1 == 1 or region == 'east'
`)
	if got, ok := h.Selectivity[dag.HintKey("none", "filter_by 1 > 2")]; !ok || got != 0 {
		t.Fatalf("always_false hint = %v (present=%v), want 0", got, ok)
	}
	if got, ok := h.Selectivity[dag.HintKey("all", "filter_by 1 == 1 or region == 'east'")]; !ok || got != 1 {
		t.Fatalf("always_true hint = %v (present=%v), want 1", got, ok)
	}
	if len(h.Selectivity) != 2 {
		t.Fatalf("unprovable stages leaked hints: %v", h.Selectivity)
	}
}

func TestOptimizerHintsDeadSourceColumns(t *testing.T) {
	h := hintsSrc(t, `
D:
  src: [region, amount, notes, extra]
D.src:
  source: mem:src.csv
F:
  +D.out: D.src | T.agg
T:
  agg:
    type: groupby
    groupby: [region]
    aggregates:
      - operator: sum
        apply_on: amount
`)
	dead := h.DeadSourceColumns["src"]
	if len(dead) != 2 || dead[0] != "extra" || dead[1] != "notes" {
		t.Fatalf("DeadSourceColumns = %v, want [extra notes] sorted", dead)
	}
	// The hints drop straight into planner options.
	opts := h.PlanOptions(nil)
	if len(opts.DeadSourceColumns["src"]) != 2 || opts.Hints == nil {
		t.Fatalf("PlanOptions lost the hints: %+v", opts)
	}
}

// TestOptimizerHintsFeedPlanner wires the static hints end to end: a
// provably-false filter reorders ahead of an unprovable one with facts
// evidence, with no run history at all.
func TestOptimizerHintsFeedPlanner(t *testing.T) {
	const src = `
D:
  raw: [region, amount, flag]
D.raw:
  source: mem:raw.csv
F:
  D.mid: D.raw | T.wide | T.narrow
  +D.out: D.mid | T.agg
T:
  wide:
    type: filter_by
    filter_expression: amount > 0
  narrow:
    type: filter_by
    filter_expression: 1 > 2
  agg:
    type: groupby
    groupby: [region]
`
	f, err := flowfile.Parse("demo", src)
	if err != nil {
		t.Fatal(err)
	}
	h := OptimizerHints(f, Options{Tasks: task.NewRegistry()})
	g, err := dag.Build(f, task.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	p := dag.Optimize(g, h.PlanOptions(nil))
	np := p.Node("mid")
	if task.Describe(np.Specs[0]) != "filter_by 1 > 2" {
		t.Fatalf("facts evidence did not reorder: %v", np.Stages)
	}
	var seen bool
	for _, d := range np.Decisions {
		if d.Rule == dag.RuleFilterReorder && d.Evidence == dag.EvidenceFacts {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("no facts-evidence reorder decision: %+v", np.Decisions)
	}
}
