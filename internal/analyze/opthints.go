package analyze

import (
	"sort"

	"shareinsights/internal/dag"
	"shareinsights/internal/flowfile"
	"shareinsights/internal/task"
)

// Hints is the static-analysis feed for the cost-based optimizer
// (dag.Optimize), used when a flow has no run history yet: flowcheck
// evidence instead of observed evidence.
type Hints struct {
	// Selectivity maps dag.HintKey(output, stage) to a proven
	// selectivity: 0 for a filter whose predicate is always false, 1 for
	// always true. Only provable stages appear — everything else is left
	// to the heuristic.
	Selectivity map[string]float64
	// DeadSourceColumns lists, per source data object, declared columns
	// no downstream stage ever reads — the projection-pushdown feed.
	// Columns are sorted.
	DeadSourceColumns map[string][]string
}

// OptimizerHints runs the lint walk and extracts the optimizer's
// static evidence: constant-predicate filter verdicts as selectivity
// hints, and fetched-but-unused source columns for projection
// pushdown. Broken flows contribute nothing (the optimizer then simply
// has no static evidence for them, which is safe).
func OptimizerHints(f *flowfile.File, opts Options) Hints {
	l := lintRun(f, opts)
	h := Hints{
		Selectivity:       map[string]float64{},
		DeadSourceColumns: map[string][]string{},
	}
	for i, fl := range f.Flows {
		rec := l.flowRecs[i]
		if rec == nil || !rec.ok {
			continue
		}
		for _, st := range rec.stages {
			var sel float64
			switch st.verdict {
			case "always_false":
				sel = 0
			case "always_true":
				sel = 1
			default:
				continue
			}
			desc := task.Describe(st.spec)
			for _, o := range fl.Outputs {
				h.Selectivity[dag.HintKey(o.Name, desc)] = sel
			}
		}
	}
	for _, dc := range l.exportFacts().Dead {
		if dc.Computed {
			// A task computed it — FL064 material, not a fetch to trim.
			continue
		}
		h.DeadSourceColumns[dc.Object] = append(h.DeadSourceColumns[dc.Object], dc.Column)
	}
	for _, cols := range h.DeadSourceColumns {
		sort.Strings(cols)
	}
	return h
}

// PlanOptions assembles dag.PlanOptions from these hints plus an
// optional observed-statistics feed; stats win over hints inside the
// planner's evidence chain (history → facts → heuristic).
func (h Hints) PlanOptions(stats dag.StatsFn) dag.PlanOptions {
	return dag.PlanOptions{
		Stats:             stats,
		Hints:             h.Selectivity,
		DeadSourceColumns: h.DeadSourceColumns,
	}
}

// FileHints is OptimizerHints for callers that already parsed the file
// but carry no lint options (CLI one-shots): tasks resolve from the
// default registry.
func FileHints(f *flowfile.File, tasks *task.Registry) Hints {
	return OptimizerHints(f, Options{Tasks: tasks})
}
