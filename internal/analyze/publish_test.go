package analyze

import (
	"strings"
	"testing"

	"shareinsights/internal/flowfile"
	"shareinsights/internal/task"
)

const publishFlow = `
D:
  src: [region, amount]
  out: [region, total]

D.src:
  source: mem:src.csv

F:
  D.out: D.src | T.sum

  D.out:
    endpoint: true
    publish: sales_totals

T:
  sum:
    type: groupby
    groupby: [region]
    aggregates:
      - operator: sum
        apply_on: amount
        out_field: total
`

func lintPublish(t *testing.T, name, src string, existing []PublishedObject) *Report {
	t.Helper()
	f, err := flowfile.Parse(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return Lint(f, Options{
		Tasks:     task.NewRegistry(),
		Published: func() []PublishedObject { return existing },
	})
}

func TestFL044CrossDashboardCollision(t *testing.T) {
	report := lintPublish(t, "demo", publishFlow, []PublishedObject{
		{Name: "sales_totals", Dashboard: "other-dash"},
	})
	got := findRule(report, "FL044")
	if len(got) != 1 {
		t.Fatalf("want 1 FL044, got %+v", report.Findings)
	}
	fd := got[0]
	if fd.Severity != Warning || fd.Entity != "D.out" || fd.Line == 0 {
		t.Fatalf("FL044 = %+v", fd)
	}
	if !strings.Contains(fd.Message, `dashboard "other-dash"`) || !strings.Contains(fd.Message, "last writer wins") {
		t.Fatalf("FL044 message: %s", fd.Message)
	}
}

func TestFL044RepublishOwnObjectIsFine(t *testing.T) {
	// Republishing your own object on a re-run is the normal versioning
	// path, not shadowing.
	report := lintPublish(t, "demo", publishFlow, []PublishedObject{
		{Name: "sales_totals", Dashboard: "demo"},
	})
	if got := findRule(report, "FL044"); len(got) != 0 {
		t.Fatalf("own republish flagged: %+v", got)
	}
}

func TestFL044NearMissGetsDidYouMean(t *testing.T) {
	src := strings.Replace(publishFlow, "publish: sales_totals", "publish: sales_totl", 1)
	report := lintPublish(t, "demo", src, []PublishedObject{
		{Name: "sales_totals", Dashboard: "other-dash"},
	})
	got := findRule(report, "FL044")
	if len(got) != 1 {
		t.Fatalf("want 1 FL044 near-miss, got %+v", report.Findings)
	}
	fd := got[0]
	if fd.Severity != Info || !strings.Contains(fd.Hint, `"sales_totals"`) {
		t.Fatalf("FL044 near-miss = %+v", fd)
	}
}

func TestFL044WithinFileDuplicate(t *testing.T) {
	src := strings.Replace(publishFlow,
		"D:\n  src: [region, amount]\n  out: [region, total]",
		"D:\n  src: [region, amount]\n  out: [region, total]\n  out2: [region, total]", 1)
	src = strings.Replace(src,
		"T:",
		"  D.out2: D.src | T.sum\n\n  D.out2:\n    endpoint: true\n    publish: sales_totals\n\nT:", 1)
	report := lintPublish(t, "demo", src, nil)
	got := findRule(report, "FL044")
	if len(got) != 1 {
		t.Fatalf("want 1 FL044 duplicate, got %+v", report.Findings)
	}
	fd := got[0]
	if fd.Severity != Warning || fd.Entity != "D.out2" || !strings.Contains(fd.Message, "D.out") {
		t.Fatalf("FL044 duplicate = %+v", fd)
	}
}

func TestFL044SilentWithoutCatalogHook(t *testing.T) {
	report := lintPublish(t, "demo", publishFlow, nil)
	if got := findRule(report, "FL044"); len(got) != 0 {
		t.Fatalf("FL044 fired without any existing objects: %+v", got)
	}
}
