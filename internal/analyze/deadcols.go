package analyze

import (
	"fmt"

	"shareinsights/internal/analyze/flowcheck"
	"shareinsights/internal/flowfile"
	"shareinsights/internal/task"
)

// checkDeadColumns is the backward liveness pass: starting from what the
// outside world can observe (endpoints, published objects, widget
// bindings, pipelines the walk could not analyze — all conservatively
// fully live), it propagates column demand backward through every walked
// flow and reports FL064 for columns a task computes that no downstream
// consumer ever reads. Source columns that are fetched but unused are
// recorded as facts only (projection-pushdown input for the optimizer),
// not findings — the flow author often cannot change a source's schema.
func (l *linter) checkDeadColumns() {
	l.full = map[string]bool{}
	l.live = map[string]map[string]bool{}
	l.consumed = map[string]bool{}

	// Externally visible objects need every column.
	for _, name := range l.f.DataOrder {
		d := l.f.Data[name]
		if d.Endpoint || d.Publish != "" {
			l.full[name] = true
		}
	}
	// Widgets may render any column of their source pipeline's inputs;
	// their demand is not tracked column-by-column.
	for _, wname := range l.f.WidgetOrder {
		if w := l.f.Widgets[wname]; w.Source != nil {
			for _, in := range w.Source.Inputs {
				l.full[in.Name] = true
				l.consumed[in.Name] = true
			}
		}
	}
	// A flow the walk could not analyze may read anything.
	for i, fl := range l.f.Flows {
		if fl.Pipeline == nil {
			continue
		}
		for _, in := range fl.Pipeline.Inputs {
			l.consumed[in.Name] = true
		}
		if rec := l.flowRecs[i]; rec == nil || !rec.ok {
			for _, in := range fl.Pipeline.Inputs {
				l.full[in.Name] = true
			}
		}
	}

	lookup := l.taskLookup()
	for changed := true; changed; {
		changed = false
		for i, fl := range l.f.Flows {
			rec := l.flowRecs[i]
			if rec == nil || !rec.ok {
				continue
			}
			sets, _ := l.backProp(rec, lookup, l.outLive(fl.Outputs))
			for j, name := range rec.inputs {
				if j >= len(sets) || l.full[name] {
					continue
				}
				if l.live[name] == nil {
					l.live[name] = map[string]bool{}
				}
				for c := range sets[j] {
					if !l.live[name][c] {
						l.live[name][c] = true
						changed = true
					}
				}
			}
		}
	}

	// FL064: a computed column nothing downstream reads. Deduplicated by
	// task and column — a task shared by several flows reports once.
	seen := map[string]bool{}
	for i, fl := range l.f.Flows {
		rec := l.flowRecs[i]
		if rec == nil || !rec.ok {
			continue
		}
		_, liveAfter := l.backProp(rec, lookup, l.outLive(fl.Outputs))
		for k, st := range rec.stages {
			for _, c := range computedCols(st.spec) {
				if liveAfter[k][c] || seen[st.name+"\x00"+c] {
					continue
				}
				seen[st.name+"\x00"+c] = true
				l.add(Finding{Rule: "FL064", Severity: Info, Entity: "T." + st.name, Line: st.def.Line,
					Message: fmt.Sprintf("column %q is computed but never used downstream — no endpoint, widget, filter or later task reads it", c),
					Hint:    "drop the column, or remove the task if nothing else needs it"})
			}
		}
	}
}

// outLive is the union of column demand over a flow's output objects; a
// fully-live output expands to its whole schema.
func (l *linter) outLive(outs []flowfile.Ref) map[string]bool {
	demand := map[string]bool{}
	for _, o := range outs {
		if l.full[o.Name] {
			if s := l.schemas[o.Name]; s != nil {
				for _, n := range s.Names() {
					demand[n] = true
				}
			}
			continue
		}
		for c := range l.live[o.Name] {
			demand[c] = true
		}
	}
	return demand
}

// backProp pushes a demand set backward through one walked chain. It
// returns the per-pipeline-input demand and, for FL064, the demand set
// live immediately after each stage.
func (l *linter) backProp(rec *chainRec, lookup flowcheck.TaskLookup, liveOut map[string]bool) ([]map[string]bool, []map[string]bool) {
	liveAfter := make([]map[string]bool, len(rec.stages))
	cur := liveOut
	for k := len(rec.stages) - 1; k >= 0; k-- {
		liveAfter[k] = cur
		st := rec.stages[k]
		sets := flowcheck.LiveIn(st.spec, st.def, lookup, st.ins, cur)
		if k == 0 {
			return sets, liveAfter
		}
		if len(sets) > 0 {
			cur = sets[0]
		} else {
			cur = map[string]bool{}
		}
	}
	// No stages: every input feeds the output unchanged.
	sets := make([]map[string]bool, len(rec.inputs))
	for i := range sets {
		c := map[string]bool{}
		for k := range liveOut {
			c[k] = true
		}
		sets[i] = c
	}
	return sets, liveAfter
}

// computedCols names the columns a stage derives (as opposed to carries):
// map and parallel operator outputs and group-by aggregate fields.
func computedCols(sp task.Spec) []string {
	switch t := sp.(type) {
	case *task.MapSpec:
		return t.OutColumns()
	case *task.ParallelSpec:
		var out []string
		for _, sub := range t.Subs {
			if ms, ok := sub.(*task.MapSpec); ok {
				out = append(out, ms.OutColumns()...)
			}
		}
		return out
	case *task.GroupBySpec:
		var out []string
		for _, a := range t.Aggs {
			out = append(out, a.OutField)
		}
		return out
	}
	return nil
}
