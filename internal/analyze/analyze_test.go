package analyze

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"shareinsights/internal/analyze/flowcheck"
	"shareinsights/internal/connector"
	"shareinsights/internal/flowfile"
	"shareinsights/internal/task"
)

func lintSrc(t *testing.T, src string) *Report {
	t.Helper()
	f, err := flowfile.Parse("demo", src)
	if err != nil {
		t.Fatal(err)
	}
	return Lint(f, Options{
		Tasks:      task.NewRegistry(),
		Connectors: connector.NewRegistry(connector.Options{DataDir: "."}),
	})
}

func findRule(r *Report, rule string) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Rule == rule {
			out = append(out, f)
		}
	}
	return out
}

// TestRules exercises every rule family with a minimal failing flow.
func TestRules(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		rule     string
		severity Severity
		entity   string
		msgPart  string
		hintPart string
		wantLine bool
		minCount int
	}{
		{
			name: "FL000 dangling task reference",
			src: `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
F:
  +D.out: D.src | T.missing
`,
			rule: "FL000", severity: Error, msgPart: "T.missing", wantLine: true,
		},
		{
			name: "FL001 unknown task type with hint",
			src: `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
F:
  +D.out: D.src | T.agg
T:
  agg:
    type: groupbyy
    groupby: [region]
`,
			rule: "FL001", severity: Error, entity: "T.agg",
			msgPart: "groupbyy", hintPart: `"groupby"`, wantLine: true,
		},
		{
			name: "FL002 topn without orderby_column",
			src: `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
F:
  +D.out: D.src | T.top
T:
  top:
    type: topn
    groupby: [region]
    limit: 5
`,
			rule: "FL002", severity: Error, entity: "T.top",
			msgPart: "orderby_column", hintPart: "rank rows", wantLine: true,
		},
		{
			name: "FL003 misspelled filter column with hint",
			src: `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
F:
  +D.out: D.src | T.keep
T:
  keep:
    type: filter_by
    filter_expression: amont > 3
`,
			rule: "FL003", severity: Error, entity: "T.keep",
			msgPart: `"amont" not found`, hintPart: `"amount"`, wantLine: true,
		},
		{
			name: "FL003 source without schema",
			src: `
D.src:
  source: mem:src.csv
F:
  +D.out: D.src | T.agg
T:
  agg:
    type: groupby
    groupby: [region]
`,
			rule: "FL003", severity: Error, entity: "D.src",
			msgPart: "no declared schema", wantLine: true,
		},
		{
			name: "FL004 number compared with text",
			src: `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
F:
  +D.out: D.src | T.agg | T.keep
T:
  agg:
    type: groupby
    groupby: [region]
  keep:
    type: filter_by
    filter_expression: count > 'many'
`,
			rule: "FL004", severity: Warning, entity: "T.keep",
			msgPart: "compares count (number) with 'many' (text)", wantLine: true,
		},
		{
			name: "FL010 dead computed sink",
			src: `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
F:
  +D.out: D.src | T.agg
  D.tmp: D.src | T.agg2
T:
  agg:
    type: groupby
    groupby: [region]
  agg2:
    type: groupby
    groupby: [region]
`,
			rule: "FL010", severity: Warning, entity: "D.tmp",
			msgPart: "never read", wantLine: true,
		},
		{
			name: "FL010 dead declared source",
			src: `
D:
  src: [region, amount]
  spare: [a, b]
D.src:
  source: mem:src.csv
D.spare:
  source: mem:spare.csv
F:
  +D.out: D.src | T.agg
T:
  agg:
    type: groupby
    groupby: [region]
`,
			rule: "FL010", severity: Warning, entity: "D.spare",
			msgPart: "never read", wantLine: true,
		},
		{
			name: "FL011 unused task",
			src: `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
F:
  +D.out: D.src | T.agg
T:
  agg:
    type: groupby
    groupby: [region]
  leftover:
    type: filter_by
    filter_expression: amount > 0
`,
			rule: "FL011", severity: Warning, entity: "T.leftover", wantLine: true,
		},
		{
			name: "FL012 widget off the layout",
			src: `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
F:
  +D.out: D.src | T.agg
T:
  agg:
    type: groupby
    groupby: [region]
W:
  shown:
    type: Pie
    source: D.out
    text: region
    size: count
  hidden:
    type: Pie
    source: D.out
    text: region
    size: count
L:
  rows:
    - [span12: W.shown]
`,
			rule: "FL012", severity: Warning, entity: "W.hidden", wantLine: true,
		},
		{
			name: "FL020 aggregate output collides with group key",
			src: `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
F:
  +D.out: D.src | T.agg
T:
  agg:
    type: groupby
    groupby: [region]
    aggregates:
      - operator: sum
        apply_on: amount
        out_field: region
`,
			rule: "FL020", severity: Error, entity: "T.agg",
			msgPart: "duplicate column", wantLine: true,
		},
		{
			name: "FL021 join keys of different types",
			src: `
D:
  src: [region, amount]
  other: [body]
  left: [region, count]
  right: [body, word]
D.src:
  source: mem:src.csv
D.other:
  source: mem:other.csv
F:
  D.left: D.src | T.agg
  D.right: D.other | T.upper_word
  +D.joined: (D.left, D.right) | T.j
T:
  agg:
    type: groupby
    groupby: [region]
  upper_word:
    type: map
    operator: upper
    transform: body
    output: word
  j:
    type: join
    left: left by count
    right: right by word
`,
			rule: "FL021", severity: Warning, entity: "T.j",
			msgPart: "different types", wantLine: true,
		},
		{
			name: "FL030 unknown widget type with hint",
			src: `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
F:
  +D.out: D.src | T.agg
T:
  agg:
    type: groupby
    groupby: [region]
W:
  chart:
    type: BubleChart
    source: D.out
    text: region
    size: count
L:
  rows:
    - [span12: W.chart]
`,
			rule: "FL030", severity: Error, entity: "W.chart",
			msgPart: "BubleChart", hintPart: `"BubbleChart"`, wantLine: true,
		},
		{
			name: "FL031 unknown widget property with hint",
			src: `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
F:
  +D.out: D.src | T.agg
T:
  agg:
    type: groupby
    groupby: [region]
W:
  chart:
    type: Pie
    source: D.out
    txt: region
    size: count
L:
  rows:
    - [span12: W.chart]
`,
			rule: "FL031", severity: Warning, entity: "W.chart",
			msgPart: `"txt"`, hintPart: `"text"`, wantLine: true,
		},
		{
			name: "FL032 missing required data attribute",
			src: `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
F:
  +D.out: D.src | T.agg
T:
  agg:
    type: groupby
    groupby: [region]
W:
  chart:
    type: Pie
    source: D.out
    text: region
L:
  rows:
    - [span12: W.chart]
`,
			rule: "FL032", severity: Error, entity: "W.chart",
			msgPart: `requires data attribute "size"`, wantLine: true,
		},
		{
			name: "FL033 data attribute bound to missing column",
			src: `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
F:
  +D.out: D.src | T.agg
T:
  agg:
    type: groupby
    groupby: [region]
W:
  chart:
    type: Pie
    source: D.out
    text: regon
    size: count
L:
  rows:
    - [span12: W.chart]
`,
			rule: "FL033", severity: Error, entity: "W.chart",
			msgPart: `"regon"`, hintPart: `"region"`, wantLine: true,
		},
		{
			name: "FL040 unknown protocol with hint",
			src: `
D:
  src: [region, amount]
D.src:
  source: src.csv
  protocol: files
F:
  +D.out: D.src | T.agg
T:
  agg:
    type: groupby
    groupby: [region]
`,
			rule: "FL040", severity: Error, entity: "D.src",
			msgPart: `"files"`, hintPart: `"file"`, wantLine: true,
		},
		{
			name: "FL041 unknown data property with hint",
			src: `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
  formt: csv
F:
  +D.out: D.src | T.agg
T:
  agg:
    type: groupby
    groupby: [region]
`,
			rule: "FL041", severity: Warning, entity: "D.src",
			msgPart: `"formt"`, hintPart: `"format"`, wantLine: true,
		},
		{
			name: "FL042 misspelled on_error mode with hint",
			src: `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
  on_error: stael
F:
  +D.out: D.src | T.agg
T:
  agg:
    type: groupby
    groupby: [region]
`,
			rule: "FL042", severity: Error, entity: "D.src",
			msgPart: `"stael"`, hintPart: `"stale"`, wantLine: true,
		},
		{
			name: "FL042 timeout without a unit",
			src: `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
  timeout: 30
F:
  +D.out: D.src | T.agg
T:
  agg:
    type: groupby
    groupby: [region]
`,
			rule: "FL042", severity: Error, entity: "D.src",
			msgPart: `"30"`, hintPart: `"30s"`, wantLine: true,
		},
		{
			name: "FL042 negative retries",
			src: `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
  retries: -1
F:
  +D.out: D.src | T.agg
T:
  agg:
    type: groupby
    groupby: [region]
`,
			rule: "FL042", severity: Error, entity: "D.src",
			msgPart: "non-negative", wantLine: true,
		},
		{
			name: "FL050 filter blocked behind a producing stage",
			src: `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
F:
  +D.out: D.src | T.agg | T.keep
T:
  agg:
    type: groupby
    groupby: [region]
  keep:
    type: filter_by
    filter_expression: count > 3
`,
			rule: "FL050", severity: Info, entity: "T.keep",
			msgPart: "cannot be pushed ahead of T.agg", wantLine: true,
		},
		{
			name: "FL051 topn ordered by its own group key",
			src: `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
F:
  +D.out: D.src | T.top
T:
  top:
    type: topn
    groupby: [region]
    orderby_column: [region DESC]
    limit: 5
`,
			rule: "FL051", severity: Info, entity: "T.top",
			msgPart: "grouping key", wantLine: true,
		},
		{
			name: "FL051 sort feeding a limit",
			src: `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
F:
  +D.out: D.src | T.bysize | T.first10
T:
  bysize:
    type: sort
    orderby_column: [amount DESC]
  first10:
    type: limit
    limit: 10
`,
			rule: "FL051", severity: Info, entity: "T.bysize",
			msgPart: "topn task computes the same result", wantLine: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			report := lintSrc(t, tc.src)
			got := findRule(report, tc.rule)
			if len(got) == 0 {
				t.Fatalf("no %s finding; report:\n%s", tc.rule, renderReport(report))
			}
			f := got[0]
			if tc.entity != "" {
				f = Finding{}
				for _, cand := range got {
					if cand.Entity == tc.entity {
						f = cand
						break
					}
				}
				if f.Rule == "" {
					t.Fatalf("no %s finding for %s; report:\n%s", tc.rule, tc.entity, renderReport(report))
				}
			}
			if f.Severity != tc.severity {
				t.Errorf("severity = %s, want %s", f.Severity, tc.severity)
			}
			if tc.msgPart != "" && !strings.Contains(f.Message, tc.msgPart) {
				t.Errorf("message = %q, want it to contain %q", f.Message, tc.msgPart)
			}
			if tc.hintPart != "" && !strings.Contains(f.Hint, tc.hintPart) {
				t.Errorf("hint = %q, want it to contain %q", f.Hint, tc.hintPart)
			}
			if tc.wantLine && f.Line == 0 {
				t.Errorf("finding has no line: %s", f)
			}
			if tc.minCount > 0 && len(got) < tc.minCount {
				t.Errorf("got %d %s findings, want at least %d", len(got), tc.rule, tc.minCount)
			}
		})
	}
}

func renderReport(r *Report) string {
	var b strings.Builder
	for _, f := range r.Findings {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestCleanFlowHasNoFindings pins the zero-noise property: a wired-up
// dashboard lints clean.
func TestCleanFlowHasNoFindings(t *testing.T) {
	const src = `
D:
  src: [region, amount]

D.src:
  source: mem:src.csv
  format: csv

F:
  +D.out: D.src | T.agg

T:
  agg:
    type: groupby
    groupby: [region]
    aggregates:
      - operator: sum
        apply_on: amount
        out_field: total

W:
  chart:
    type: Pie
    source: D.out
    text: region
    size: total

L:
  rows:
    - [span12: W.chart]
`
	report := lintSrc(t, src)
	if len(report.Findings) != 0 {
		t.Fatalf("want a clean report, got:\n%s", renderReport(report))
	}
}

// TestFindingString pins the rendered form the CLI prints.
func TestFindingString(t *testing.T) {
	f := Finding{Rule: "FL003", Severity: Error, Entity: "T.keep", Line: 12,
		Message: `column "amont" not found`, Hint: `did you mean "amount"?`}
	want := `FL003 error: T.keep (line 12): column "amont" not found — did you mean "amount"?`
	if f.String() != want {
		t.Fatalf("String() = %q, want %q", f.String(), want)
	}
}

// TestGoldenIPLExample lints the shipped §3.7 example dashboards — both
// the data-processing and the data-consumption flow must stay clean, so
// the linter never nags about idiomatic files.
func TestGoldenIPLExample(t *testing.T) {
	src, err := os.ReadFile("../../examples/ipl/main.go")
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile("(?s)const (processingFlow|consumptionFlow) = `(.*?)`")
	matches := re.FindAllStringSubmatch(string(src), -1)
	if len(matches) != 2 {
		t.Fatalf("found %d flow constants in examples/ipl/main.go, want 2", len(matches))
	}
	for _, m := range matches {
		name, flow := m[1], m[2]
		t.Run(name, func(t *testing.T) {
			report := lintSrc(t, flow)
			if len(report.Findings) != 0 {
				t.Fatalf("examples/ipl %s lints dirty:\n%s", name, renderReport(report))
			}
		})
	}
}

// TestLintToleratesBrokenFiles pins that Lint never panics and keeps
// reporting whatever it can on structurally damaged input.
func TestLintToleratesBrokenFiles(t *testing.T) {
	srcs := []string{
		"",
		"D:\n  x: [a]\n",
		"F:\n  +D.out: D.ghost | T.ghost\n",
		"W:\n  w:\n    type: Nope\n",
		"L:\n  rows:\n    - [span12: W.nobody]\n",
	}
	for _, src := range srcs {
		f, err := flowfile.Parse("broken", src)
		if err != nil {
			continue
		}
		_ = Lint(f, Options{Tasks: task.NewRegistry()})
	}
}

// TestResilienceFindingsNotDuplicatedAsFL000 pins the dedup: a bad
// on_error value is a hard Validate error and an FL042 lint finding,
// but the report must show it once (as FL042, which carries the hint).
func TestResilienceFindingsNotDuplicatedAsFL000(t *testing.T) {
	report := lintSrc(t, `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
  on_error: stael
F:
  +D.out: D.src | T.agg
T:
  agg:
    type: groupby
    groupby: [region]
`)
	if got := findRule(report, "FL042"); len(got) != 1 {
		t.Fatalf("FL042 findings = %d, want 1; report:\n%s", len(got), renderReport(report))
	}
	if got := findRule(report, "FL000"); len(got) != 0 {
		t.Fatalf("bad on_error duplicated as FL000; report:\n%s", renderReport(report))
	}
}

// TestColumnarFindingsNotDuplicatedAsFL000 pins the same dedup for the
// columnar detail: a bad columnar: value surfaces once, as FL043.
func TestColumnarFindingsNotDuplicatedAsFL000(t *testing.T) {
	report := lintSrc(t, `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
  columnar: never
F:
  +D.out: D.src | T.agg
T:
  agg:
    type: groupby
    groupby: [region]
`)
	if got := findRule(report, "FL043"); len(got) != 1 {
		t.Fatalf("FL043 findings = %d, want 1; report:\n%s", len(got), renderReport(report))
	}
	if got := findRule(report, "FL000"); len(got) != 0 {
		t.Fatalf("bad columnar duplicated as FL000; report:\n%s", renderReport(report))
	}
}

// TestConstantFilterVerdicts pins FL063: provably-constant filter
// predicates are reported with their direction.
func TestConstantFilterVerdicts(t *testing.T) {
	report := lintSrc(t, `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
F:
  +D.out: D.src | T.nothing
T:
  nothing:
    type: filter_by
    filter_expression: 1 > 2
`)
	got := findRule(report, "FL063")
	if len(got) != 1 || !strings.Contains(got[0].Message, "provably false") {
		t.Fatalf("FL063 = %v; report:\n%s", got, renderReport(report))
	}

	report = lintSrc(t, `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
F:
  +D.out: D.src | T.everything
T:
  everything:
    type: filter_by
    filter_expression: 1 == 1 or region == 'east'
`)
	got = findRule(report, "FL063")
	if len(got) != 1 || !strings.Contains(got[0].Message, "provably true") {
		t.Fatalf("FL063 = %v; report:\n%s", got, renderReport(report))
	}
}

// TestDeadComputedColumn pins FL064: a computed column nothing reads is
// reported; the same column becomes clean once a widget consumes the
// producing object (widget demand is conservatively all-columns).
func TestDeadComputedColumn(t *testing.T) {
	const flow = `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
F:
  D.mid: D.src | T.extra
  +D.out: D.mid | T.agg
T:
  extra:
    type: map
    operator: expr
    expression: amount * 2
    output: unused_double
  agg:
    type: groupby
    groupby: [region]
    aggregates:
      - operator: sum
        apply_on: amount
        out_field: total
`
	report := lintSrc(t, flow)
	got := findRule(report, "FL064")
	if len(got) != 1 || !strings.Contains(got[0].Message, `"unused_double"`) {
		t.Fatalf("FL064 = %v; report:\n%s", got, renderReport(report))
	}

	// A widget on D.mid consumes every column: the finding must vanish.
	report = lintSrc(t, flow+`
W:
  peek:
    type: table
    source: D.mid
`)
	if got := findRule(report, "FL064"); len(got) != 0 {
		t.Fatalf("FL064 fired despite widget consumer; report:\n%s", renderReport(report))
	}
}

// TestMapExprUnknownColumn pins the fuzzer-found gap: a map expression
// naming a missing column must fail lint (FL003), not compile and then
// die at run time.
func TestMapExprUnknownColumn(t *testing.T) {
	report := lintSrc(t, `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
F:
  +D.out: D.src | T.bad
T:
  bad:
    type: map
    operator: expr
    expression: amonut * 2
    output: double
`)
	got := findRule(report, "FL003")
	if len(got) != 1 || got[0].Severity != Error {
		t.Fatalf("FL003 = %v; report:\n%s", got, renderReport(report))
	}
	if !strings.Contains(got[0].Hint, `"amount"`) {
		t.Fatalf("missing did-you-mean hint: %v", got[0])
	}
}

// TestSeverityGate pins the lint -fail-on contract helpers.
func TestSeverityGate(t *testing.T) {
	r := &Report{Findings: []Finding{{Rule: "FL051", Severity: Info}, {Rule: "FL004", Severity: Warning}}}
	if r.HasAtLeast(Error) {
		t.Errorf("HasAtLeast(Error) true without errors")
	}
	if !r.HasAtLeast(Warning) || !r.HasAtLeast(Info) {
		t.Errorf("HasAtLeast misses warning/info findings")
	}
	if s, ok := ParseSeverity("warning"); !ok || s != Warning {
		t.Errorf("ParseSeverity(warning) = %v, %v", s, ok)
	}
	if _, ok := ParseSeverity("fatal"); ok {
		t.Errorf("ParseSeverity accepted junk")
	}
}

// TestFactsExport pins the stable Facts contract on a small typed flow:
// inferred types, the propagated constant, the row bound from limit, and
// the fetched-but-unused source column.
func TestFactsExport(t *testing.T) {
	f, err := flowfile.Parse("demo", `
D:
  src: [region, amount, junk]
D.src:
  source: mem:src.csv
F:
  +D.out: D.src | T.tag | T.keep | T.cut
T:
  tag:
    type: map
    operator: constant
    output: label
    value: "42"
  keep:
    type: project
    columns: [region, amount, label]
  cut:
    type: limit
    limit: 10
`)
	if err != nil {
		t.Fatal(err)
	}
	report, facts := LintWithFacts(f, Options{
		Tasks:      task.NewRegistry(),
		Connectors: connector.NewRegistry(connector.Options{DataDir: "."}),
		SourceScopes: map[string]flowcheck.Scope{"src": {
			"region": {Type: flowcheck.Type{Kind: flowcheck.KString}},
			"amount": {Type: flowcheck.Type{Kind: flowcheck.KInt, Nullable: true}},
			"junk":   {Type: flowcheck.Type{Kind: flowcheck.KString}},
		}},
	})
	if report.HasErrors() {
		t.Fatalf("unexpected errors:\n%s", renderReport(report))
	}
	out := facts.Objects["out"]
	if out == nil {
		t.Fatalf("no facts for D.out; have %v", facts.Objects)
	}
	if out.Producer != "T.cut" {
		t.Errorf("producer = %q, want T.cut", out.Producer)
	}
	if out.Card.Unbounded || out.Card.Max != 10 {
		t.Errorf("card = %+v, want max 10", out.Card)
	}
	if got := out.Columns["label"]; got.Type != "int" || got.Const == nil || *got.Const != "42" {
		t.Errorf("label facts = %+v, want const int 42", got)
	}
	if got := out.Columns["amount"]; got.Type != "int?" {
		t.Errorf("amount type = %q, want int?", got.Type)
	}
	var sawJunk bool
	for _, d := range facts.Dead {
		if d.Object == "src" && d.Column == "junk" && !d.Computed {
			sawJunk = true
		}
	}
	if !sawJunk {
		t.Errorf("fetched-but-unused src.junk not in dead facts: %+v", facts.Dead)
	}
}

// TestCacheFindingsNotDuplicatedAsFL000 pins the same dedup for the
// admission details: a bad cache: value surfaces once, as FL045 with
// its did-you-mean hint, never as a generic FL000 copy.
func TestCacheFindingsNotDuplicatedAsFL000(t *testing.T) {
	report := lintSrc(t, `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
  cache: of
F:
  +D.out: D.src | T.agg
T:
  agg:
    type: groupby
    groupby: [region]
`)
	got := findRule(report, "FL045")
	if len(got) != 1 {
		t.Fatalf("FL045 findings = %d, want 1; report:\n%s", len(got), renderReport(report))
	}
	if !strings.Contains(got[0].Hint, `"off"`) {
		t.Errorf("FL045 hint = %q, want did-you-mean off", got[0].Hint)
	}
	if dup := findRule(report, "FL000"); len(dup) != 0 {
		t.Fatalf("bad cache duplicated as FL000; report:\n%s", renderReport(report))
	}
}

// TestMaxRowsFindingNotDuplicated covers the numeric half of FL045.
func TestMaxRowsFindingNotDuplicated(t *testing.T) {
	report := lintSrc(t, `
D:
  src: [region, amount]
D.src:
  source: mem:src.csv
  max_rows: lots
F:
  +D.out: D.src | T.agg
T:
  agg:
    type: groupby
    groupby: [region]
`)
	if got := findRule(report, "FL045"); len(got) != 1 {
		t.Fatalf("FL045 findings = %d, want 1; report:\n%s", len(got), renderReport(report))
	}
	if got := findRule(report, "FL000"); len(got) != 0 {
		t.Fatalf("bad max_rows duplicated as FL000; report:\n%s", renderReport(report))
	}
}
