package analyze

import (
	"fmt"

	"shareinsights/internal/analyze/flowcheck"
	"shareinsights/internal/flowfile"
	"shareinsights/internal/task"
)

// The linter's type inference is flowcheck (the typed expression IR and
// fact lattice); this file adapts its output to findings. The legacy
// coarse column types survive as flowcheck's Type.Coarse projection, so
// FL004 and FL021 keep their exact historical wording while FL060–FL063
// report what only the fine lattice can prove.

// checkExprIssues lowers one expression through flowcheck and converts
// its issues to findings at the given entity/line.
func (l *linter) checkExprIssues(src string, sc flowcheck.Scope, entity string, line int) {
	if src == "" {
		return
	}
	_, issues := flowcheck.CheckExpr(src, sc)
	for _, is := range issues {
		l.add(Finding{Rule: is.Rule, Severity: Severity(is.Severity), Entity: entity,
			Line: line, Message: is.Message, Hint: is.Hint})
	}
}

// taskLookup resolves parallel sub-task definitions for flowcheck.
func (l *linter) taskLookup() flowcheck.TaskLookup {
	return func(name string) *flowfile.TaskDef { return l.f.Tasks[name] }
}

// checkJoinKeys compares the inferred types of paired join keys: FL021.
// The conflict predicate is flowcheck's coarse projection — identical to
// the pre-flowcheck rule.
func (l *linter) checkJoinKeys(j *task.JoinSpec, entity string, def *flowfile.TaskDef, ins []flowcheck.Input) {
	if len(ins) != 2 {
		return
	}
	left, right := ins[0].Scope, ins[1].Scope
	if ins[0].Name == j.RightName && ins[1].Name == j.LeftName && j.LeftName != j.RightName {
		left, right = right, left
	}
	for i := 0; i < len(j.LeftKeys) && i < len(j.RightKeys); i++ {
		lt, rt := left.TypeOf(j.LeftKeys[i]), right.TypeOf(j.RightKeys[i])
		if flowcheck.CoarseConflict(lt, rt) {
			l.add(Finding{Rule: "FL021", Severity: Warning, Entity: entity, Line: def.Line,
				Message: fmt.Sprintf("join keys %q (%s) and %q (%s) have different types; rows will never match",
					j.LeftKeys[i], lt.Coarse(), j.RightKeys[i], rt.Coarse())})
		}
	}
}
