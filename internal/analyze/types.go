package analyze

import (
	"fmt"

	"shareinsights/internal/expr"
	"shareinsights/internal/flowfile"
	"shareinsights/internal/schema"
	"shareinsights/internal/task"
	"shareinsights/internal/value"
)

// colType is the inferred static type of a column. Source columns start
// unknown — values are parsed dynamically — and types appear as soon as
// a task derives a column whose kind is fixed: aggregates are numbers,
// extract outputs are text, a constant has its literal's kind. The
// lattice is deliberately flat: a check fires only when both sides are
// known and disagree, so inference can never produce a false positive on
// untyped source data.
type colType int

const (
	tyUnknown colType = iota
	tyNum
	tyStr
	tyBool
	tyTime
)

// String names the type in user vocabulary.
func (t colType) String() string {
	switch t {
	case tyNum:
		return "number"
	case tyStr:
		return "text"
	case tyBool:
		return "boolean"
	case tyTime:
		return "time"
	}
	return "unknown"
}

// typeEnv maps column names to inferred types for one data object.
type typeEnv map[string]colType

// litType maps a literal's value kind to a column type.
func litType(v value.V) colType {
	switch v.Kind() {
	case value.Int, value.Float:
		return tyNum
	case value.String:
		return tyStr
	case value.Bool:
		return tyBool
	case value.Time:
		return tyTime
	}
	return tyUnknown
}

// conflict reports whether two known types cannot meaningfully meet in a
// comparison. Text/time pairs are exempt — date columns compare against
// their string forms throughout the engine.
func conflict(a, b colType) bool {
	if a == tyUnknown || b == tyUnknown || a == b {
		return false
	}
	if (a == tyTime && b == tyStr) || (a == tyStr && b == tyTime) {
		return false
	}
	return true
}

// checkExprTypes type-checks one expression source against the
// environment, emitting FL004 warnings. Parse failures are ignored here:
// the spec parser already rejected them as FL002.
func (l *linter) checkExprTypes(src string, env typeEnv, entity string, line int) {
	if src == "" {
		return
	}
	n, err := expr.Parse(src)
	if err != nil {
		return
	}
	var issues []string
	inferExpr(n, env, &issues)
	for _, issue := range issues {
		l.add(Finding{Rule: "FL004", Severity: Warning, Entity: entity, Line: line,
			Message: fmt.Sprintf("expression type mismatch: %s", issue)})
	}
}

// inferExpr computes an expression's type bottom-up, appending a
// description of every impossible operand pairing it meets.
func inferExpr(n expr.Node, env typeEnv, issues *[]string) colType {
	switch t := n.(type) {
	case *expr.Lit:
		return litType(t.Val)
	case *expr.Col:
		return env[t.Name]
	case *expr.Unary:
		x := inferExpr(t.X, env, issues)
		if t.Op == "-" {
			if x == tyStr {
				*issues = append(*issues, fmt.Sprintf("negating %s, a text value", t.X))
			}
			return tyNum
		}
		return tyBool
	case *expr.Tuple:
		ty := tyUnknown
		for i, it := range t.Items {
			e := inferExpr(it, env, issues)
			if i == 0 {
				ty = e
			} else if e != ty {
				ty = tyUnknown
			}
		}
		return ty
	case *expr.Binary:
		return inferBinary(t, env, issues)
	}
	return tyUnknown
}

func inferBinary(t *expr.Binary, env typeEnv, issues *[]string) colType {
	switch t.Op {
	case "and", "or", "&&", "||":
		inferExpr(t.L, env, issues)
		inferExpr(t.R, env, issues)
		return tyBool
	case "<", "<=", ">", ">=", "==", "!=", "=":
		lt := inferExpr(t.L, env, issues)
		rt := inferExpr(t.R, env, issues)
		if conflict(lt, rt) {
			*issues = append(*issues, fmt.Sprintf("%q compares %s (%s) with %s (%s)",
				t.Op, t.L, lt, t.R, rt))
		}
		return tyBool
	case "in":
		lt := inferExpr(t.L, env, issues)
		if tup, ok := t.R.(*expr.Tuple); ok {
			for _, it := range tup.Items {
				rt := inferExpr(it, env, issues)
				if conflict(lt, rt) {
					*issues = append(*issues, fmt.Sprintf("'in' list item %s (%s) can never match %s (%s)",
						it, rt, t.L, lt))
				}
			}
		} else {
			inferExpr(t.R, env, issues)
		}
		return tyBool
	case "contains":
		lt := inferExpr(t.L, env, issues)
		inferExpr(t.R, env, issues)
		if lt == tyNum {
			*issues = append(*issues, fmt.Sprintf("'contains' matches text, but %s is a number", t.L))
		}
		return tyBool
	default: // arithmetic: + - * / %
		lt := inferExpr(t.L, env, issues)
		rt := inferExpr(t.R, env, issues)
		for _, side := range []struct {
			n  expr.Node
			ty colType
		}{{t.L, lt}, {t.R, rt}} {
			if side.ty == tyStr || side.ty == tyBool {
				*issues = append(*issues, fmt.Sprintf("arithmetic %q on %s, a %s value", t.Op, side.n, side.ty))
			}
		}
		return tyNum
	}
}

// outTypes computes the column-type environment after sp runs, given the
// inputs (aligned with envs) and sp's already-computed output schema.
// Unhandled spec kinds fall back to carrying same-name columns and
// leaving new ones unknown — always safe, never wrong.
func (l *linter) outTypes(sp task.Spec, def *flowfile.TaskDef, ins []task.Input, envs []typeEnv, out *schema.Schema) typeEnv {
	env := typeEnv{}
	// Default: carry columns whose name survives. For multi-input specs
	// (union), a name typed differently across inputs degrades to unknown.
	for _, c := range out.Columns() {
		ty, seen := tyUnknown, false
		for _, e := range envs {
			t, ok := e[c.Name]
			if !ok {
				continue
			}
			if !seen {
				ty, seen = t, true
			} else if t != ty {
				ty = tyUnknown
			}
		}
		env[c.Name] = ty
	}
	switch t := sp.(type) {
	case *task.GroupBySpec:
		for _, a := range t.Aggs {
			env[a.OutField] = aggType(a, envs[0])
		}
	case *task.MapSpec:
		l.applyMapTypes(t, def, envs[0], env)
	case *task.ParallelSpec:
		for i, sub := range t.Subs {
			ms, ok := sub.(*task.MapSpec)
			if !ok || i >= len(t.Names) {
				continue
			}
			if sdef, ok := l.f.Tasks[t.Names[i]]; ok {
				l.applyMapTypes(ms, sdef, envs[0], env)
			}
		}
	case *task.JoinSpec:
		applyJoinTypes(t, ins, envs, env)
	}
	return env
}

// aggType is the output type of one groupby aggregate.
func aggType(a task.AggSpec, in typeEnv) colType {
	switch a.Operator {
	case "count", "count_distinct", "sum", "avg", "stddev", "median":
		return tyNum
	case "min", "max", "first", "last":
		return in[a.ApplyOn]
	}
	return tyUnknown
}

// applyMapTypes assigns the map operator's output columns their types.
func (l *linter) applyMapTypes(m *task.MapSpec, def *flowfile.TaskDef, in typeEnv, env typeEnv) {
	ty := tyUnknown
	switch m.Operator {
	case "date", "extract", "extract_location", "extract_words",
		"upper", "lower", "trim", "concat", "replace", "case":
		ty = tyStr
	case "bucket":
		ty = tyNum
	case "constant":
		if def.Config != nil {
			ty = litType(value.Parse(def.Config.Str("value")))
		}
	case "expr":
		if def.Config != nil {
			if n, err := expr.Parse(def.Config.Str("expression")); err == nil {
				var drop []string
				ty = inferExpr(n, in, &drop)
			}
		}
	}
	for _, c := range m.OutColumns() {
		env[c] = ty
	}
}

// applyJoinTypes maps qualified (and projected) output columns back to
// their side's input types.
func applyJoinTypes(j *task.JoinSpec, ins []task.Input, envs []typeEnv, env typeEnv) {
	if len(ins) != 2 || len(envs) != 2 {
		return
	}
	qual := map[string]colType{}
	for i, in := range ins {
		for col, ty := range envs[i] {
			qual[in.Name+"_"+col] = ty
		}
	}
	if len(j.Project) > 0 {
		for _, p := range j.Project {
			env[p.Out] = qual[p.Qualified]
		}
		return
	}
	for name, ty := range qual {
		if _, ok := env[name]; ok {
			env[name] = ty
		}
	}
}
