package analyze

import (
	"testing"

	"shareinsights/internal/connector"
	"shareinsights/internal/flowfile"
	"shareinsights/internal/task"
)

// FuzzLint drives the analyzer with arbitrary flow-file text. The
// contract: on any input that parses, Lint never panics and every
// finding carries a rule ID and a severity that renders.
func FuzzLint(f *testing.F) {
	f.Add("D:\n  a: [x, y]\nF:\n  +D.o: D.a | T.t\nT:\n  t:\n    type: groupby\n    groupby: [x]\n")
	f.Add("F:\n  +D.o: (D.a, D.b) | T.t\n")
	f.Add("T:\n  t:\n    type: filter_by\n    filter_expression: a > 'b'\n")
	f.Add("W:\n  w:\n    type: Pie\n    source: D.a\n    text: x\n")
	f.Add("L:\n  rows:\n    - [span3: W.w]\n")
	f.Add("D.x:\n  source: 'a:b#c'\n  protocol: nope\n")
	f.Add("T:\n  t:\n    type: topn\n    groupby: [x]\n    limit: 5\n")
	f.Add("T:\n  p:\n    type: parallel\n    parallel: [T.p]\n")
	reg := task.NewRegistry()
	conns := connector.NewRegistry(connector.Options{DataDir: "."})
	f.Fuzz(func(t *testing.T, src string) {
		parsed, err := flowfile.Parse("fuzz", src)
		if err != nil {
			return
		}
		report := Lint(parsed, Options{Tasks: reg, Connectors: conns})
		for _, fd := range report.Findings {
			if fd.Rule == "" {
				t.Fatalf("finding without a rule ID: %#v", fd)
			}
			if fd.String() == "" {
				t.Fatalf("finding renders empty: %#v", fd)
			}
		}
	})
}
