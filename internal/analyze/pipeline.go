package analyze

import (
	"fmt"
	"regexp"
	"strings"

	"shareinsights/internal/analyze/flowcheck"
	"shareinsights/internal/dag"
	"shareinsights/internal/diagnose"
	"shareinsights/internal/expr"
	"shareinsights/internal/flowfile"
	"shareinsights/internal/schema"
	"shareinsights/internal/task"
)

// stageRec is one walked stage, kept for the backward liveness pass and
// the facts export.
type stageRec struct {
	name string
	spec task.Spec
	def  *flowfile.TaskDef
	// ins snapshots the stage's inputs (names, schemas, scopes) before it
	// ran; out is its bound output schema.
	ins []flowcheck.Input
	out *schema.Schema
	// verdict is the filter constant-predicate verdict, "" otherwise.
	verdict string
}

// chainRec is one walked pipeline: its input object names and stages.
type chainRec struct {
	inputs []string
	stages []stageRec
	ok     bool
}

// resolveAndWalk resolves every data object's schema and walks every
// flow pipeline stage by stage. Unlike dag.Build — which aborts on the
// first error — the walk is a tolerant fixpoint: each flow binds as soon
// as its inputs resolve, failures are attributed to the specific task
// and line, and downstream flows of a failed one are skipped silently
// (their root cause is already reported).
func (l *linter) resolveAndWalk() {
	produced := map[string]bool{}
	for _, fl := range l.f.Flows {
		for _, out := range fl.Outputs {
			produced[out.Name] = true
		}
	}
	// Seed source schemas: declared inline, or resolved from the shared
	// catalog. Source column types are unknown — values are parsed
	// dynamically — so inference starts at the first deriving task. A
	// caller that does know source types (the differential fuzzer seeds
	// its generator's true column types) provides them via SourceScopes.
	for _, name := range l.f.DataOrder {
		if produced[name] {
			continue
		}
		d := l.f.Data[name]
		if d.Schema != nil {
			l.schemas[name] = d.Schema
			l.scopes[name] = l.sourceScope(name)
			l.cards[name] = flowcheck.CardUnknown()
			continue
		}
		if l.opts.Shared != nil {
			if s, ok := l.opts.Shared(name); ok {
				l.schemas[name] = s
				l.scopes[name] = l.sourceScope(name)
				l.cards[name] = flowcheck.CardUnknown()
				continue
			}
		}
		if d.Prop("source") != "" || d.Prop("protocol") != "" {
			l.add(Finding{Rule: "FL003", Severity: Error, Entity: "D." + name, Line: d.Line,
				Message: "data object has a source but no declared schema, so its columns cannot be resolved",
				Hint:    "add a schema: block listing the source's columns"})
		} else {
			l.add(Finding{Rule: "FL003", Severity: Warning, Entity: "D." + name, Line: d.Line,
				Message: "data object is not resolvable locally; assuming a shared publication — its pipelines cannot be checked"})
		}
	}
	// Fixpoint: bind flows whose inputs have all resolved.
	pending := map[int]bool{}
	for i, fl := range l.f.Flows {
		if fl.Pipeline != nil && len(fl.Outputs) > 0 {
			pending[i] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for i, fl := range l.f.Flows {
			if !pending[i] || !l.inputsReady(fl.Pipeline) {
				continue
			}
			pending[i] = false
			changed = true
			out, sc, card, rec := l.walkPipeline(fl.Pipeline, "D."+fl.Outputs[0].Name, fl.Line)
			l.flowRecs[i] = rec
			if !rec.ok {
				continue
			}
			for _, o := range fl.Outputs {
				l.schemas[o.Name] = out
				l.scopes[o.Name] = sc
				l.cards[o.Name] = card
			}
		}
	}
}

// sourceScope returns the caller-provided facts for a source object
// (empty — all unknown — unless Options.SourceScopes supplies them).
func (l *linter) sourceScope(name string) flowcheck.Scope {
	if l.opts.SourceScopes != nil {
		if sc, ok := l.opts.SourceScopes[name]; ok {
			return sc
		}
	}
	return flowcheck.Scope{}
}

// inputsReady reports whether every pipeline input has a resolved schema.
func (l *linter) inputsReady(p *flowfile.Pipeline) bool {
	for _, in := range p.Inputs {
		if l.schemas[in.Name] == nil {
			return false
		}
	}
	return true
}

// walkPipeline steps a pipeline's spec chain, mirroring dag.BindPipeline
// but collecting findings instead of failing fast. It returns the final
// schema, column facts and cardinality bound; rec.ok is false when the
// walk aborted (a missing input, unparsed task, or bind error — all
// reported elsewhere or here).
func (l *linter) walkPipeline(p *flowfile.Pipeline, owner string, ownerLine int) (*schema.Schema, flowcheck.Scope, flowcheck.Card, *chainRec) {
	rec := &chainRec{}
	ins := make([]flowcheck.Input, 0, len(p.Inputs))
	for _, in := range p.Inputs {
		s := l.schemas[in.Name]
		if s == nil {
			return nil, nil, flowcheck.Card{}, rec
		}
		sc := l.scopes[in.Name]
		if sc == nil {
			sc = flowcheck.Scope{}
		}
		card, ok := l.cards[in.Name]
		if !ok {
			card = flowcheck.CardUnknown()
		}
		ins = append(ins, flowcheck.Input{Name: in.Name, Schema: s, Scope: sc, Card: card})
		rec.inputs = append(rec.inputs, in.Name)
	}
	specs := make([]task.Spec, 0, len(p.Tasks))
	defs := make([]*flowfile.TaskDef, 0, len(p.Tasks))
	for _, t := range p.Tasks {
		def, ok := l.f.Tasks[t.Name]
		if !ok || l.broken[t.Name] {
			// Undefined (FL000) or unparsable (FL001/FL002): already
			// reported; the chain past this point has no schema.
			return nil, nil, flowcheck.Card{}, rec
		}
		specs = append(specs, l.specs[t.Name])
		defs = append(defs, def)
	}
	taskIns := make([]task.Input, 0, len(ins))
	for _, in := range ins {
		taskIns = append(taskIns, task.Input{Name: in.Name, Schema: in.Schema})
	}
	for k, sp := range specs {
		l.checkStage(specs, k, defs[k], p.Tasks[k].Name, ins)
		out, err := sp.Out(taskIns)
		if err != nil {
			l.reportBindError(p.Tasks[k].Name, defs[k], err, taskIns)
			return nil, nil, flowcheck.Card{}, rec
		}
		res := flowcheck.TransferStage(sp, defs[k], l.taskLookup(), ins, out)
		l.checkFilterVerdict(sp, defs[k], p.Tasks[k].Name, res.Verdict)
		rec.stages = append(rec.stages, stageRec{
			name: p.Tasks[k].Name, spec: sp, def: defs[k],
			ins: ins, out: out, verdict: res.Verdict,
		})
		ins = []flowcheck.Input{{Name: ins[0].Name, Schema: out, Scope: res.Scope, Card: res.Card}}
		taskIns = []task.Input{{Name: ins[0].Name, Schema: out}}
	}
	// Advisories over the whole chain: filters the optimizer cannot hoist.
	for _, bf := range dag.BlockedFilters(specs) {
		name := p.Tasks[bf.Index].Name
		blocker := p.Tasks[bf.Blocker].Name
		msg := fmt.Sprintf("filter cannot be pushed ahead of T.%s", blocker)
		if len(bf.Columns) > 0 {
			msg += fmt.Sprintf(" (it reads %s, which T.%s produces)", quoteJoin(bf.Columns), blocker)
		}
		l.add(Finding{Rule: "FL050", Severity: Info, Entity: "T." + name, Line: defs[bf.Index].Line,
			Message: msg + "; every row flows through that stage before it can be discarded"})
	}
	if len(ins) != 1 {
		// A multi-input pipeline whose chain never merged them (e.g. no
		// tasks at all): no single output schema to propagate.
		return nil, nil, flowcheck.Card{}, rec
	}
	rec.ok = true
	return ins[0].Schema, ins[0].Scope, ins[0].Card, rec
}

// checkFilterVerdict reports FL063 for a filter whose expression has a
// proven constant truth value. The flowcheck folder suppresses verdicts
// on expressions already condemned by FL061/FL062, so the two never
// stack on one root cause.
func (l *linter) checkFilterVerdict(sp task.Spec, def *flowfile.TaskDef, name, verdict string) {
	if verdict == "" {
		return
	}
	if _, ok := sp.(*task.FilterSpec); !ok {
		return
	}
	line := configLine(def, "filter_expression")
	if verdict == "always_false" {
		l.add(Finding{Rule: "FL063", Severity: Warning, Entity: "T." + name, Line: line,
			Message: "filter expression is provably false on every row: the stage and everything downstream are empty",
			Hint:    "the predicate contradicts an upstream filter or constant; remove the stage or fix the bounds"})
		return
	}
	l.add(Finding{Rule: "FL063", Severity: Warning, Entity: "T." + name, Line: line,
		Message: "filter expression is provably true on every row: the stage passes everything through",
		Hint:    "remove the stage, or tighten the predicate"})
}

// checkStage runs the per-stage rules that need the input facts: FL004/
// FL060/FL061/FL062 expression findings, FL021 join key mismatches,
// FL051 ordering advisories.
func (l *linter) checkStage(specs []task.Spec, k int, def *flowfile.TaskDef, name string, ins []flowcheck.Input) {
	entity := "T." + name
	in := flowcheck.Scope{}
	if len(ins) > 0 {
		in = ins[0].Scope
	}
	switch t := specs[k].(type) {
	case *task.FilterSpec:
		if t.Expression != "" {
			l.checkExprIssues(t.Expression, in, entity, configLine(def, "filter_expression"))
		}
	case *task.MapSpec:
		if t.Operator == "expr" {
			line := configLine(def, "expression")
			l.checkExprColumns(def.Config.Str("expression"), ins, entity, line)
			l.checkExprIssues(def.Config.Str("expression"), in, entity, line)
		}
	case *task.ParallelSpec:
		for i, sub := range t.Subs {
			ms, ok := sub.(*task.MapSpec)
			if !ok || ms.Operator != "expr" || i >= len(t.Names) {
				continue
			}
			if sdef, ok := l.f.Tasks[t.Names[i]]; ok {
				line := configLine(sdef, "expression")
				l.checkExprColumns(sdef.Config.Str("expression"), ins, "T."+t.Names[i], line)
				l.checkExprIssues(sdef.Config.Str("expression"), in, "T."+t.Names[i], line)
			}
		}
	case *task.JoinSpec:
		l.checkJoinKeys(t, entity, def, ins)
	case *task.TopNSpec:
		for _, key := range t.OrderBy {
			if hasString(t.GroupBy, key.Column) {
				l.add(Finding{Rule: "FL051", Severity: Info, Entity: entity, Line: def.Line,
					Message: fmt.Sprintf("orderby column %q is also a grouping key — it is constant within each group and cannot rank rows", key.Column)})
			}
		}
	case *task.SortSpec:
		if k+1 < len(specs) {
			if lim, ok := specs[k+1].(*task.LimitSpec); ok {
				l.add(Finding{Rule: "FL051", Severity: Info, Entity: entity, Line: def.Line,
					Message: fmt.Sprintf("sort feeding a limit keeps only %d rows; a topn task computes the same result without sorting the full input", lim.N)})
			}
		}
	}
}

// checkExprColumns reports FL003 for expression columns absent from the
// stage's input schema — the same error the engine's Bind raises at run
// time, caught statically. Filter expressions are validated by
// FilterSpec.Out already; map operators extend the schema without
// binding the expression, so the walk checks them itself (the
// differential fuzzer found this gap: a lint-clean flow whose map expr
// named a missing column compiled but failed mid-run).
func (l *linter) checkExprColumns(src string, ins []flowcheck.Input, entity string, line int) {
	if src == "" || len(ins) == 0 || ins[0].Schema == nil {
		return
	}
	sch := ins[0].Schema
	cols, err := expr.ReferencedColumns(src)
	if err != nil {
		return // FL002 reports unparsable expressions
	}
	for _, c := range cols {
		if sch.Has(c) {
			continue
		}
		fd := Finding{Rule: "FL003", Severity: Error, Entity: entity, Line: line,
			Message: fmt.Sprintf("column %q not found (have %s)", c, strings.Join(sch.Names(), ", "))}
		if hint := diagnose.Nearest(c, sch.Names()); hint != "" {
			fd.Hint = fmt.Sprintf("did you mean %q?", hint)
		}
		l.add(fd)
	}
}

var bindColumnRe = regexp.MustCompile(`column "([^"]+)" not found \(have ([^)]*)\)`)

// reportBindError classifies a spec's Out failure: FL020 duplicate
// output columns, FL003 everything else (missing columns get a
// did-you-mean hint against the in-scope schema).
func (l *linter) reportBindError(name string, def *flowfile.TaskDef, err error, ins []task.Input) {
	msg := cleanMsg(err.Error())
	rule := "FL003"
	if strings.Contains(msg, "duplicate column") {
		rule = "FL020"
	}
	fd := Finding{Rule: rule, Severity: Error, Entity: "T." + name, Line: def.Line, Message: msg}
	if m := bindColumnRe.FindStringSubmatch(msg); m != nil {
		if hint := diagnose.Nearest(m[1], strings.Split(m[2], ",")); hint != "" {
			fd.Hint = fmt.Sprintf("did you mean %q?", hint)
		}
	} else if m := regexp.MustCompile(`column "([^"]+)" not found`).FindStringSubmatch(msg); m != nil && len(ins) > 0 {
		if hint := diagnose.Nearest(m[1], ins[0].Schema.Names()); hint != "" {
			fd.Hint = fmt.Sprintf("did you mean %q?", hint)
		}
	}
	l.add(fd)
}

// configLine returns the line of a task's configuration key, falling
// back to the task declaration.
func configLine(def *flowfile.TaskDef, key string) int {
	if def.Config != nil {
		if n := def.Config.Get(key); n != nil && n.Line > 0 {
			return n.Line
		}
	}
	return def.Line
}

func quoteJoin(cols []string) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprintf("%q", c)
	}
	return strings.Join(parts, ", ")
}
