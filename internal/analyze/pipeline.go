package analyze

import (
	"fmt"
	"regexp"
	"strings"

	"shareinsights/internal/dag"
	"shareinsights/internal/diagnose"
	"shareinsights/internal/flowfile"
	"shareinsights/internal/schema"
	"shareinsights/internal/task"
)

// resolveAndWalk resolves every data object's schema and walks every
// flow pipeline stage by stage. Unlike dag.Build — which aborts on the
// first error — the walk is a tolerant fixpoint: each flow binds as soon
// as its inputs resolve, failures are attributed to the specific task
// and line, and downstream flows of a failed one are skipped silently
// (their root cause is already reported).
func (l *linter) resolveAndWalk() {
	produced := map[string]bool{}
	for _, fl := range l.f.Flows {
		for _, out := range fl.Outputs {
			produced[out.Name] = true
		}
	}
	// Seed source schemas: declared inline, or resolved from the shared
	// catalog. Source column types are unknown — values are parsed
	// dynamically — so inference starts at the first deriving task.
	for _, name := range l.f.DataOrder {
		if produced[name] {
			continue
		}
		d := l.f.Data[name]
		if d.Schema != nil {
			l.schemas[name] = d.Schema
			l.types[name] = typeEnv{}
			continue
		}
		if l.opts.Shared != nil {
			if s, ok := l.opts.Shared(name); ok {
				l.schemas[name] = s
				l.types[name] = typeEnv{}
				continue
			}
		}
		if d.Prop("source") != "" || d.Prop("protocol") != "" {
			l.add(Finding{Rule: "FL003", Severity: Error, Entity: "D." + name, Line: d.Line,
				Message: "data object has a source but no declared schema, so its columns cannot be resolved",
				Hint:    "add a schema: block listing the source's columns"})
		} else {
			l.add(Finding{Rule: "FL003", Severity: Warning, Entity: "D." + name, Line: d.Line,
				Message: "data object is not resolvable locally; assuming a shared publication — its pipelines cannot be checked"})
		}
	}
	// Fixpoint: bind flows whose inputs have all resolved.
	pending := map[int]bool{}
	for i, fl := range l.f.Flows {
		if fl.Pipeline != nil && len(fl.Outputs) > 0 {
			pending[i] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for i, fl := range l.f.Flows {
			if !pending[i] || !l.inputsReady(fl.Pipeline) {
				continue
			}
			pending[i] = false
			changed = true
			out, env, ok := l.walkPipeline(fl.Pipeline, "D."+fl.Outputs[0].Name, fl.Line)
			if !ok {
				continue
			}
			for _, o := range fl.Outputs {
				l.schemas[o.Name] = out
				l.types[o.Name] = env
			}
		}
	}
}

// inputsReady reports whether every pipeline input has a resolved schema.
func (l *linter) inputsReady(p *flowfile.Pipeline) bool {
	for _, in := range p.Inputs {
		if l.schemas[in.Name] == nil {
			return false
		}
	}
	return true
}

// walkPipeline steps a pipeline's spec chain, mirroring dag.BindPipeline
// but collecting findings instead of failing fast. It returns the final
// schema and type environment; ok is false when the walk aborted (a
// missing input, unparsed task, or bind error — all reported elsewhere
// or here).
func (l *linter) walkPipeline(p *flowfile.Pipeline, owner string, ownerLine int) (*schema.Schema, typeEnv, bool) {
	ins := make([]task.Input, 0, len(p.Inputs))
	envs := make([]typeEnv, 0, len(p.Inputs))
	for _, in := range p.Inputs {
		s := l.schemas[in.Name]
		if s == nil {
			return nil, nil, false
		}
		ins = append(ins, task.Input{Name: in.Name, Schema: s})
		env := l.types[in.Name]
		if env == nil {
			env = typeEnv{}
		}
		envs = append(envs, env)
	}
	specs := make([]task.Spec, 0, len(p.Tasks))
	defs := make([]*flowfile.TaskDef, 0, len(p.Tasks))
	for _, t := range p.Tasks {
		def, ok := l.f.Tasks[t.Name]
		if !ok || l.broken[t.Name] {
			// Undefined (FL000) or unparsable (FL001/FL002): already
			// reported; the chain past this point has no schema.
			return nil, nil, false
		}
		specs = append(specs, l.specs[t.Name])
		defs = append(defs, def)
	}
	for k, sp := range specs {
		l.checkStage(specs, k, defs[k], p.Tasks[k].Name, ins, envs)
		out, err := sp.Out(ins)
		if err != nil {
			l.reportBindError(p.Tasks[k].Name, defs[k], err, ins)
			return nil, nil, false
		}
		env := l.outTypes(sp, defs[k], ins, envs, out)
		ins = []task.Input{{Name: ins[0].Name, Schema: out}}
		envs = []typeEnv{env}
	}
	// Advisories over the whole chain: filters the optimizer cannot hoist.
	for _, bf := range dag.BlockedFilters(specs) {
		name := p.Tasks[bf.Index].Name
		blocker := p.Tasks[bf.Blocker].Name
		msg := fmt.Sprintf("filter cannot be pushed ahead of T.%s", blocker)
		if len(bf.Columns) > 0 {
			msg += fmt.Sprintf(" (it reads %s, which T.%s produces)", quoteJoin(bf.Columns), blocker)
		}
		l.add(Finding{Rule: "FL050", Severity: Info, Entity: "T." + name, Line: defs[bf.Index].Line,
			Message: msg + "; every row flows through that stage before it can be discarded"})
	}
	if len(ins) != 1 {
		// A multi-input pipeline whose chain never merged them (e.g. no
		// tasks at all): no single output schema to propagate.
		return nil, nil, false
	}
	return ins[0].Schema, envs[0], true
}

// checkStage runs the per-stage rules that need the input environment:
// FL004 expression type mismatches, FL021 join key mismatches, FL051
// ordering advisories.
func (l *linter) checkStage(specs []task.Spec, k int, def *flowfile.TaskDef, name string, ins []task.Input, envs []typeEnv) {
	entity := "T." + name
	switch t := specs[k].(type) {
	case *task.FilterSpec:
		if t.Expression != "" {
			l.checkExprTypes(t.Expression, envs[0], entity, configLine(def, "filter_expression"))
		}
	case *task.MapSpec:
		if t.Operator == "expr" {
			l.checkExprTypes(def.Config.Str("expression"), envs[0], entity, configLine(def, "expression"))
		}
	case *task.ParallelSpec:
		for i, sub := range t.Subs {
			ms, ok := sub.(*task.MapSpec)
			if !ok || ms.Operator != "expr" || i >= len(t.Names) {
				continue
			}
			if sdef, ok := l.f.Tasks[t.Names[i]]; ok {
				l.checkExprTypes(sdef.Config.Str("expression"), envs[0], "T."+t.Names[i], configLine(sdef, "expression"))
			}
		}
	case *task.JoinSpec:
		l.checkJoinKeys(t, entity, def, ins, envs)
	case *task.TopNSpec:
		for _, key := range t.OrderBy {
			if hasString(t.GroupBy, key.Column) {
				l.add(Finding{Rule: "FL051", Severity: Info, Entity: entity, Line: def.Line,
					Message: fmt.Sprintf("orderby column %q is also a grouping key — it is constant within each group and cannot rank rows", key.Column)})
			}
		}
	case *task.SortSpec:
		if k+1 < len(specs) {
			if lim, ok := specs[k+1].(*task.LimitSpec); ok {
				l.add(Finding{Rule: "FL051", Severity: Info, Entity: entity, Line: def.Line,
					Message: fmt.Sprintf("sort feeding a limit keeps only %d rows; a topn task computes the same result without sorting the full input", lim.N)})
			}
		}
	}
}

// checkJoinKeys compares the inferred types of paired join keys: FL021.
func (l *linter) checkJoinKeys(j *task.JoinSpec, entity string, def *flowfile.TaskDef, ins []task.Input, envs []typeEnv) {
	if len(ins) != 2 || len(envs) != 2 {
		return
	}
	left, right := envs[0], envs[1]
	if ins[0].Name == j.RightName && ins[1].Name == j.LeftName && j.LeftName != j.RightName {
		left, right = right, left
	}
	for i := 0; i < len(j.LeftKeys) && i < len(j.RightKeys); i++ {
		lt, rt := left[j.LeftKeys[i]], right[j.RightKeys[i]]
		if conflict(lt, rt) {
			l.add(Finding{Rule: "FL021", Severity: Warning, Entity: entity, Line: def.Line,
				Message: fmt.Sprintf("join keys %q (%s) and %q (%s) have different types; rows will never match",
					j.LeftKeys[i], lt, j.RightKeys[i], rt)})
		}
	}
}

var bindColumnRe = regexp.MustCompile(`column "([^"]+)" not found \(have ([^)]*)\)`)

// reportBindError classifies a spec's Out failure: FL020 duplicate
// output columns, FL003 everything else (missing columns get a
// did-you-mean hint against the in-scope schema).
func (l *linter) reportBindError(name string, def *flowfile.TaskDef, err error, ins []task.Input) {
	msg := cleanMsg(err.Error())
	rule := "FL003"
	if strings.Contains(msg, "duplicate column") {
		rule = "FL020"
	}
	fd := Finding{Rule: rule, Severity: Error, Entity: "T." + name, Line: def.Line, Message: msg}
	if m := bindColumnRe.FindStringSubmatch(msg); m != nil {
		if hint := diagnose.Nearest(m[1], strings.Split(m[2], ",")); hint != "" {
			fd.Hint = fmt.Sprintf("did you mean %q?", hint)
		}
	} else if m := regexp.MustCompile(`column "([^"]+)" not found`).FindStringSubmatch(msg); m != nil && len(ins) > 0 {
		if hint := diagnose.Nearest(m[1], ins[0].Schema.Names()); hint != "" {
			fd.Hint = fmt.Sprintf("did you mean %q?", hint)
		}
	}
	l.add(fd)
}

// configLine returns the line of a task's configuration key, falling
// back to the task declaration.
func configLine(def *flowfile.TaskDef, key string) int {
	if def.Config != nil {
		if n := def.Config.Get(key); n != nil && n.Line > 0 {
			return n.Line
		}
	}
	return def.Line
}

func quoteJoin(cols []string) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprintf("%q", c)
	}
	return strings.Join(parts, ", ")
}
