// Package analyze is flowlint: a schema-aware static analyzer for flow
// files. It runs over a parsed file plus the task registry — never the
// data — and reports everything it can prove wrong (or suspicious)
// before a single row moves: misspelled columns in filter expressions,
// type-mismatched comparisons, dead data objects, unknown widget
// properties, joins whose keys cannot match.
//
// The paper's §5.2 hackathon learnings single out error reporting as the
// platform's weakest point ("error reporting … leaked the abstraction");
// diagnose maps failures after they happen, analyze moves the same
// vocabulary to before execution. Findings reuse the diagnose
// conventions: an entity reference (D./T./W.), the declaring line, the
// problem in flow-file terms, and a did-you-mean hint.
package analyze

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"shareinsights/internal/analyze/flowcheck"
	"shareinsights/internal/connector"
	"shareinsights/internal/dag"
	"shareinsights/internal/diagnose"
	"shareinsights/internal/flowfile"
	"shareinsights/internal/schema"
	"shareinsights/internal/task"
	"shareinsights/internal/widget"
)

// Severity grades a finding.
type Severity int

// Severity levels, least severe first so Report.Max is a plain max.
const (
	Info Severity = iota
	Warning
	Error
)

// String returns the lower-case severity name.
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	}
	return "info"
}

// MarshalJSON encodes the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Finding is one lint result.
type Finding struct {
	// Rule is the stable rule ID (FL000–FL051, see docs/LINTING.md).
	Rule string `json:"rule"`
	// Severity grades the finding; only errors fail the lint.
	Severity Severity `json:"severity"`
	// Entity is the flow-file reference ("T.players_count"), "" if global.
	Entity string `json:"entity,omitempty"`
	// Line is the 1-based flow-file line (0 unknown).
	Line int `json:"line,omitempty"`
	// Message describes the problem in flow-file vocabulary.
	Message string `json:"message"`
	// Hint is an optional suggestion ("did you mean …?").
	Hint string `json:"hint,omitempty"`
}

// String renders the finding as the CLI prints it:
//
//	FL003 error: T.by_region (line 12): column "regon" not found — did you mean "region"?
func (f Finding) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s: ", f.Rule, f.Severity)
	if f.Entity != "" {
		b.WriteString(f.Entity)
		if f.Line > 0 {
			fmt.Fprintf(&b, " (line %d)", f.Line)
		}
		b.WriteString(": ")
	} else if f.Line > 0 {
		fmt.Fprintf(&b, "(line %d): ", f.Line)
	}
	b.WriteString(f.Message)
	if f.Hint != "" {
		b.WriteString(" — ")
		b.WriteString(f.Hint)
	}
	return b.String()
}

// Report is the ordered finding list for one flow file.
type Report struct {
	Findings []Finding `json:"findings"`
}

// HasErrors reports whether any finding is error-severity — the lint
// exit-code condition.
func (r *Report) HasErrors() bool {
	for _, f := range r.Findings {
		if f.Severity == Error {
			return true
		}
	}
	return false
}

// HasAtLeast reports whether any finding is at or above sev — the
// `lint -fail-on` gating condition (HasAtLeast(Error) == HasErrors).
func (r *Report) HasAtLeast(sev Severity) bool {
	for _, f := range r.Findings {
		if f.Severity >= sev {
			return true
		}
	}
	return false
}

// ParseSeverity maps a severity name ("error", "warning", "info") to its
// level; ok is false for anything else.
func ParseSeverity(s string) (Severity, bool) {
	switch s {
	case "error":
		return Error, true
	case "warning":
		return Warning, true
	case "info":
		return Info, true
	}
	return Info, false
}

// Counts returns the number of errors, warnings and infos.
func (r *Report) Counts() (errors, warnings, infos int) {
	for _, f := range r.Findings {
		switch f.Severity {
		case Error:
			errors++
		case Warning:
			warnings++
		default:
			infos++
		}
	}
	return
}

// Options configures a lint run. Tasks is required; the rest degrade
// gracefully: without Connectors protocol/format values are not checked,
// without Shared unresolved inputs are assumed published.
type Options struct {
	// Tasks resolves task types, including user extensions.
	Tasks *task.Registry
	// Connectors validates protocol/format property values.
	Connectors *connector.Registry
	// Shared resolves published data-object schemas (may be nil).
	Shared dag.SharedResolver
	// Published lists the platform's existing published objects with
	// their owning dashboards, for the FL044 publish-collision check
	// (may be nil).
	Published func() []PublishedObject
	// SourceScopes seeds column facts for source data objects whose true
	// types the caller knows (the differential fuzzer provides its
	// generator's types; production lint leaves sources unknown, exactly
	// as before).
	SourceScopes map[string]flowcheck.Scope
}

// PublishedObject identifies one existing published object for FL044.
type PublishedObject struct {
	// Name is the name in the shared catalog.
	Name string
	// Dashboard is the publishing dashboard.
	Dashboard string
}

// Lint analyzes the file and returns every finding, ordered by line.
func Lint(f *flowfile.File, opts Options) *Report {
	r, _ := LintWithFacts(f, opts)
	return r
}

// LintWithFacts analyzes the file and additionally returns the flowcheck
// fact export — per-object column types, constants, intervals,
// cardinality bounds and liveness — for `shareinsights check`, the check
// endpoint and the optimizer.
func LintWithFacts(f *flowfile.File, opts Options) (*Report, *flowcheck.Facts) {
	l := lintRun(f, opts)
	return l.report, l.exportFacts()
}

// lintRun executes the full lint walk and returns the linter with its
// per-flow records intact — the shared engine behind LintWithFacts and
// OptimizerHints.
func lintRun(f *flowfile.File, opts Options) *linter {
	l := &linter{
		f:        f,
		opts:     opts,
		report:   &Report{},
		schemas:  map[string]*schema.Schema{},
		scopes:   map[string]flowcheck.Scope{},
		cards:    map[string]flowcheck.Card{},
		specs:    map[string]task.Spec{},
		broken:   map[string]bool{},
		flowRecs: map[int]*chainRec{},
	}
	l.validation()
	l.parseTasks()
	l.resolveAndWalk()
	l.checkWidgets()
	l.checkDataProps()
	l.checkResilienceProps()
	l.checkColumnarProp()
	l.checkCacheProps()
	l.checkPublish()
	l.checkDeadEntities()
	l.checkDeadColumns()
	sort.SliceStable(l.report.Findings, func(i, j int) bool {
		a, b := l.report.Findings[i], l.report.Findings[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Entity < b.Entity
	})
	return l
}

// exportFacts assembles the stable fact structure from the walk's
// per-object results and the liveness pass.
func (l *linter) exportFacts() *flowcheck.Facts {
	facts := flowcheck.NewFacts()
	producer := map[string]string{}
	verdict := map[string]string{}
	for i, fl := range l.f.Flows {
		rec := l.flowRecs[i]
		if rec == nil || !rec.ok {
			continue
		}
		p, v := "flow", ""
		if n := len(rec.stages); n > 0 {
			last := rec.stages[n-1]
			p = "T." + last.name
			v = last.verdict
		}
		for _, o := range fl.Outputs {
			producer[o.Name] = p
			verdict[o.Name] = v
		}
	}
	for name, sc := range l.scopes {
		prod, ok := producer[name]
		if !ok {
			prod = "source"
		}
		card, haveCard := l.cards[name]
		if !haveCard {
			card = flowcheck.CardUnknown()
		}
		facts.Record(name, prod, sc, card, verdict[name])
		if l.full[name] {
			all := map[string]bool{}
			if s := l.schemas[name]; s != nil {
				for _, n := range s.Names() {
					all[n] = true
				}
			}
			facts.SetLive(name, all)
		} else if l.consumed[name] {
			facts.SetLive(name, l.live[name])
			if s := l.schemas[name]; s != nil {
				for _, col := range s.Names() {
					if !l.live[name][col] {
						facts.AddDead(name, col, prod != "source")
					}
				}
			}
		}
	}
	return facts
}

// linter holds one run's state.
type linter struct {
	f      *flowfile.File
	opts   Options
	report *Report
	// schemas maps resolved data-object names to their column structure.
	schemas map[string]*schema.Schema
	// scopes maps resolved data-object names to flowcheck column facts.
	scopes map[string]flowcheck.Scope
	// cards maps resolved data-object names to row-count bounds.
	cards map[string]flowcheck.Card
	// specs maps task names to parsed specs (absent on parse failure).
	specs map[string]task.Spec
	// broken marks tasks whose configuration failed to parse, so
	// pipelines through them are skipped without double-reporting.
	broken map[string]bool
	// flowRecs keeps each flow's walked chain for liveness and facts.
	flowRecs map[int]*chainRec
	// full / live / consumed are the liveness pass results (see
	// checkDeadColumns).
	full     map[string]bool
	live     map[string]map[string]bool
	consumed map[string]bool
}

func (l *linter) add(f Finding) { l.report.Findings = append(l.report.Findings, f) }

// validation folds structural Validate problems in as FL000 errors, so
// one lint pass shows everything — dangling references included.
func (l *linter) validation() {
	err := l.f.Validate(true)
	if err == nil {
		return
	}
	for _, d := range diagnose.Diagnose(l.f, err) {
		if reclaimedCodes[d.Code] {
			// A structural problem some specific rule re-reports with a
			// rule ID and did-you-mean hints (FL042 resilience, FL043
			// columnar); skipping it here keeps each problem reported
			// exactly once. The code travels with the Problem from
			// flowfile.Validate, so the suppression cannot drift out of
			// sync with message wording.
			continue
		}
		l.add(Finding{Rule: "FL000", Severity: Error, Entity: d.Entity, Line: d.Line, Message: d.Problem, Hint: d.Hint})
	}
}

// reclaimedCodes are the flowfile.Problem codes a dedicated rule
// re-reports, keyed by the code each Validate problem carries.
var reclaimedCodes = map[string]bool{
	flowfile.ProblemResilience: true, // FL042: on_error / timeout / retries
	flowfile.ProblemColumnar:   true, // FL043: columnar
	flowfile.ProblemCache:      true, // FL045: cache / max_rows
}

// parseTasks type-checks every task definition against the registry:
// FL001 unknown type, FL002 invalid configuration.
func (l *linter) parseTasks() {
	if l.opts.Tasks == nil {
		return
	}
	known := append(l.opts.Tasks.Types(), "parallel")
	for _, name := range l.f.TaskOrder {
		def := l.f.Tasks[name]
		sp, err := l.opts.Tasks.Parse(l.f, def)
		if err == nil {
			l.specs[name] = sp
			continue
		}
		l.broken[name] = true
		msg := cleanMsg(err.Error())
		if strings.Contains(msg, "unknown type") || strings.Contains(msg, "unknown task type") {
			fd := Finding{Rule: "FL001", Severity: Error, Entity: "T." + name, Line: def.Line,
				Message: fmt.Sprintf("unknown task type %q", def.Type)}
			if hint := diagnose.Nearest(def.Type, known); hint != "" {
				fd.Hint = fmt.Sprintf("did you mean %q?", hint)
			}
			l.add(fd)
			continue
		}
		fd := Finding{Rule: "FL002", Severity: Error, Entity: "T." + name, Line: def.Line, Message: msg}
		if strings.Contains(msg, "empty orderby_column") {
			fd.Hint = "topn needs an orderby_column to rank rows within each group"
		}
		l.add(fd)
	}
}

// checkDataProps validates connector properties on data objects: FL040
// bad protocol/format value, FL041 unknown property key, FL042 bad
// resilience detail (on_error/timeout/retries, docs/RESILIENCE.md).
func (l *linter) checkDataProps() {
	knownProps := []string{
		"source", "protocol", "format", "separator", "request_type",
		"on_error", "timeout", "retries", "columnar", "cache", "max_rows",
	}
	for _, name := range l.f.DataOrder {
		d := l.f.Data[name]
		for _, key := range d.PropOrder {
			if hasString(knownProps, key) || strings.HasPrefix(key, "http_headers.") {
				continue
			}
			fd := Finding{Rule: "FL041", Severity: Warning, Entity: "D." + name, Line: d.Line,
				Message: fmt.Sprintf("unknown data property %q", key)}
			if hint := diagnose.Nearest(key, knownProps); hint != "" {
				fd.Hint = fmt.Sprintf("did you mean %q?", hint)
			}
			l.add(fd)
		}
		if l.opts.Connectors == nil {
			continue
		}
		if p := d.Prop("protocol"); p != "" && !hasString(l.opts.Connectors.Protocols(), p) {
			fd := Finding{Rule: "FL040", Severity: Error, Entity: "D." + name, Line: d.Line,
				Message: fmt.Sprintf("unknown connector protocol %q", p)}
			if hint := diagnose.Nearest(p, l.opts.Connectors.Protocols()); hint != "" {
				fd.Hint = fmt.Sprintf("did you mean %q?", hint)
			}
			l.add(fd)
		}
		if fm := d.Prop("format"); fm != "" && !hasString(l.opts.Connectors.Formats(), strings.ToLower(fm)) {
			fd := Finding{Rule: "FL040", Severity: Error, Entity: "D." + name, Line: d.Line,
				Message: fmt.Sprintf("unknown data format %q", fm)}
			if hint := diagnose.Nearest(fm, l.opts.Connectors.Formats()); hint != "" {
				fd.Hint = fmt.Sprintf("did you mean %q?", hint)
			}
			l.add(fd)
		}
	}
}

// checkResilienceProps validates the run-time degradation details: FL042
// bad on_error/timeout/retries value. These are also hard validation
// errors (flowfile.Validate), but the linter repeats them with rule IDs
// and hints so the editor and flowlint report them uniformly.
func (l *linter) checkResilienceProps() {
	modes := []string{"fail", "stale", "empty"}
	for _, name := range l.f.DataOrder {
		d := l.f.Data[name]
		if m := d.Prop("on_error"); m != "" && !hasString(modes, m) {
			fd := Finding{Rule: "FL042", Severity: Error, Entity: "D." + name, Line: d.Line,
				Message: fmt.Sprintf("on_error must be fail, stale or empty (got %q)", m)}
			if hint := diagnose.Nearest(m, modes); hint != "" {
				fd.Hint = fmt.Sprintf("did you mean %q?", hint)
			}
			l.add(fd)
		}
		if v := d.Prop("timeout"); v != "" {
			if dur, err := time.ParseDuration(v); err != nil || dur <= 0 {
				l.add(Finding{Rule: "FL042", Severity: Error, Entity: "D." + name, Line: d.Line,
					Message: fmt.Sprintf("timeout %q is not a positive duration", v),
					Hint:    `use Go duration syntax, e.g. "30s" or "2m"`})
			}
		}
		if v := d.Prop("retries"); v != "" {
			if n, err := strconv.Atoi(v); err != nil || n < 0 {
				l.add(Finding{Rule: "FL042", Severity: Error, Entity: "D." + name, Line: d.Line,
					Message: fmt.Sprintf("retries must be a non-negative integer (got %q)", v)})
			}
		}
	}
}

// checkColumnarProp validates the batch engine's vectorized-execution
// planner detail: FL043 bad `columnar:` value (docs/ENGINE.md). Like
// FL042 this doubles a hard validation error with a rule ID and hint.
func (l *linter) checkColumnarProp() {
	modes := []string{"auto", "on", "off"}
	for _, name := range l.f.DataOrder {
		d := l.f.Data[name]
		if v := d.Prop("columnar"); v != "" && !hasString(modes, v) {
			fd := Finding{Rule: "FL043", Severity: Error, Entity: "D." + name, Line: d.Line,
				Message: fmt.Sprintf("columnar must be auto, on or off (got %q)", v)}
			if hint := diagnose.Nearest(v, modes); hint != "" {
				fd.Hint = fmt.Sprintf("did you mean %q?", hint)
			}
			l.add(fd)
		}
	}
}

// checkCacheProps validates the serving layer's admission details:
// FL045 bad `cache:` or `max_rows:` value (docs/SERVING.md). Like
// FL042/FL043 this doubles a hard validation error with a rule ID and
// hint — a typo here silently disables the protection the detail asks
// for.
func (l *linter) checkCacheProps() {
	modes := []string{"on", "off"}
	for _, name := range l.f.DataOrder {
		d := l.f.Data[name]
		if v := d.Prop("cache"); v != "" && !hasString(modes, v) {
			fd := Finding{Rule: "FL045", Severity: Error, Entity: "D." + name, Line: d.Line,
				Message: fmt.Sprintf("cache must be on or off (got %q)", v)}
			if hint := diagnose.Nearest(v, modes); hint != "" {
				fd.Hint = fmt.Sprintf("did you mean %q?", hint)
			}
			l.add(fd)
		}
		if v := d.Prop("max_rows"); v != "" {
			if n, err := strconv.Atoi(v); err != nil || n <= 0 {
				l.add(Finding{Rule: "FL045", Severity: Error, Entity: "D." + name, Line: d.Line,
					Message: fmt.Sprintf("max_rows must be a positive integer (got %q)", v)})
			}
		}
	}
}

// checkPublish reports FL044 publish-name collisions. Two sinks in one
// file publishing the same name, or a name another dashboard already
// publishes, are last-writer-wins shadowing: each run silently
// overwrites the other's object in the shared catalog. A near-miss
// against an existing published name gets an info-level did-you-mean —
// the typo that forks "sales_total" into "sales_totl" is otherwise
// invisible until a consumer fails to resolve it.
func (l *linter) checkPublish() {
	owners := map[string]string{}
	var published []string
	if l.opts.Published != nil {
		for _, po := range l.opts.Published() {
			owners[po.Name] = po.Dashboard
			published = append(published, po.Name)
		}
	}
	seen := map[string]string{}
	for _, name := range l.f.DataOrder {
		d := l.f.Data[name]
		if d.Publish == "" {
			continue
		}
		if first, dup := seen[d.Publish]; dup {
			l.add(Finding{Rule: "FL044", Severity: Warning, Entity: "D." + name, Line: d.Line,
				Message: fmt.Sprintf("publish name %q is also published by D.%s in this file; the later sink overwrites the earlier object", d.Publish, first)})
			continue
		}
		seen[d.Publish] = name
		if owner, exists := owners[d.Publish]; exists && owner != l.f.Name {
			l.add(Finding{Rule: "FL044", Severity: Warning, Entity: "D." + name, Line: d.Line,
				Message: fmt.Sprintf("publish name %q is already published by dashboard %q; last writer wins — each run overwrites the other's object", d.Publish, owner),
				Hint:    "pick a distinct name, or read the existing object instead of republishing it"})
		} else if !exists {
			if near := diagnose.Nearest(d.Publish, published); near != "" && near != d.Publish {
				l.add(Finding{Rule: "FL044", Severity: Info, Entity: "D." + name, Line: d.Line,
					Message: fmt.Sprintf("publish name %q is close to existing published object %q (dashboard %q)", d.Publish, near, owners[near]),
					Hint:    fmt.Sprintf("did you mean %q?", near)})
			}
		}
	}
}

// visualAttrs are widget configuration keys consumed by renderers and
// the interaction layer, beyond the per-type data attributes.
var visualAttrs = []string{
	"type", "source", "static", "description",
	"default_selection", "default_selection_value", "range",
	"country", "fill_color", "latlong_value", "markers", "markersize",
	"show_tooltip", "slider_type", "tag", "body", "rows", "tabs", "name",
}

// checkWidgets validates widget definitions: FL030 unknown type, FL031
// unknown property, FL032 missing required attribute or source, FL033
// data attribute bound to a column missing from the source output.
func (l *linter) checkWidgets() {
	for _, name := range l.f.WidgetOrder {
		w := l.f.Widgets[name]
		entity := "W." + name
		desc, ok := widget.Lookup(w.Type)
		if !ok {
			fd := Finding{Rule: "FL030", Severity: Error, Entity: entity, Line: w.Line,
				Message: fmt.Sprintf("unknown widget type %q", w.Type)}
			if hint := diagnose.Nearest(w.Type, widget.Types()); hint != "" {
				fd.Hint = fmt.Sprintf("did you mean %q?", hint)
			}
			l.add(fd)
			continue
		}
		allowed := append([]string{}, visualAttrs...)
		for _, a := range desc.DataAttrs {
			allowed = append(allowed, a.Name)
			if a.Required && w.Attr(a.Name) == "" {
				l.add(Finding{Rule: "FL032", Severity: Error, Entity: entity, Line: w.Line,
					Message: fmt.Sprintf("widget type %s requires data attribute %q", w.Type, a.Name)})
			}
		}
		if desc.NeedsSource && w.Source == nil && len(w.Static) == 0 {
			l.add(Finding{Rule: "FL032", Severity: Error, Entity: entity, Line: w.Line,
				Message: fmt.Sprintf("widget type %s needs a source pipeline or static rows", w.Type)})
		}
		if w.Config != nil && w.Config.Kind == flowfile.MapNode {
			for _, e := range w.Config.Entries {
				if hasString(allowed, e.Key) {
					continue
				}
				fd := Finding{Rule: "FL031", Severity: Warning, Entity: entity,
					Line:    entryLine(e, w.Line),
					Message: fmt.Sprintf("unknown widget property %q for type %s", e.Key, w.Type)}
				if hint := diagnose.Nearest(e.Key, allowed); hint != "" {
					fd.Hint = fmt.Sprintf("did you mean %q?", hint)
				}
				l.add(fd)
			}
		}
		// Bind data attributes against the source pipeline's output.
		if w.Source == nil {
			continue
		}
		out, _, _, rec := l.walkPipeline(w.Source, entity, w.Line)
		if !rec.ok || out == nil {
			continue
		}
		for _, a := range desc.DataAttrs {
			col := w.Attr(a.Name)
			if col == "" || out.Index(col) >= 0 {
				continue
			}
			fd := Finding{Rule: "FL033", Severity: Error, Entity: entity, Line: w.Line,
				Message: fmt.Sprintf("data attribute %s binds to column %q, not produced by the source pipeline (have %s)",
					a.Name, col, strings.Join(out.Names(), ", "))}
			if hint := diagnose.Nearest(col, out.Names()); hint != "" {
				fd.Hint = fmt.Sprintf("did you mean %q?", hint)
			}
			l.add(fd)
		}
	}
}

// checkDeadEntities hand-assembles a dag.Graph (tolerating the errors
// dag.Build rejects) and reports FL010 dead data objects, FL011 unused
// tasks, FL012 unused widgets.
func (l *linter) checkDeadEntities() {
	g := &dag.Graph{Nodes: map[string]*dag.Node{}, File: l.f}
	node := func(name string) *dag.Node {
		if n, ok := g.Nodes[name]; ok {
			return n
		}
		def := l.f.Data[name]
		if def == nil {
			def = &flowfile.DataDef{Name: name}
		}
		n := &dag.Node{Name: name, Def: def}
		g.Nodes[name] = n
		return n
	}
	for _, name := range l.f.DataOrder {
		node(name)
	}
	for _, fl := range l.f.Flows {
		if fl.Pipeline == nil {
			continue
		}
		var inputs []string
		for _, in := range fl.Pipeline.Inputs {
			inputs = append(inputs, in.Name)
		}
		for _, out := range fl.Outputs {
			n := node(out.Name)
			if n.Flow == nil {
				n.Flow = fl
				n.Inputs = inputs
			}
		}
	}
	for _, wname := range l.f.WidgetOrder {
		w := l.f.Widgets[wname]
		if w.Source == nil {
			continue
		}
		for _, in := range w.Source.Inputs {
			node(in.Name).Consumers = append(node(in.Name).Consumers, "widget:"+wname)
		}
	}
	for name, n := range g.Nodes {
		for _, in := range n.Inputs {
			node(in).Consumers = append(node(in).Consumers, name)
		}
	}
	g.Order = append(g.Order, l.f.DataOrder...)
	var extra []string
	seen := map[string]bool{}
	for _, name := range g.Order {
		seen[name] = true
	}
	for name := range g.Nodes {
		if !seen[name] {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	g.Order = append(g.Order, extra...)

	for _, name := range g.DeadSinks() {
		l.add(Finding{Rule: "FL010", Severity: Warning, Entity: "D." + name, Line: defLine(l.f, name),
			Message: "computed but never read: not an endpoint, not published, feeds no flow or widget",
			Hint:    "mark it +D." + name + " to expose it, or remove the flow"})
	}
	for _, name := range g.DeadSources() {
		l.add(Finding{Rule: "FL010", Severity: Warning, Entity: "D." + name, Line: defLine(l.f, name),
			Message: "declared but never read by any flow or widget"})
	}

	// FL011: tasks referenced by no flow or widget pipeline (following
	// parallel sub-task references transitively).
	usedTasks := map[string]bool{}
	var markTask func(name string)
	markTask = func(name string) {
		if usedTasks[name] {
			return
		}
		usedTasks[name] = true
		if def, ok := l.f.Tasks[name]; ok {
			for _, sub := range def.Config.StrList("parallel") {
				if ref, err := flowfile.ParseRef(sub); err == nil && ref.Section == "T" {
					markTask(ref.Name)
				}
			}
		}
	}
	for _, fl := range l.f.Flows {
		if fl.Pipeline == nil {
			continue
		}
		for _, t := range fl.Pipeline.Tasks {
			markTask(t.Name)
		}
	}
	for _, wname := range l.f.WidgetOrder {
		if w := l.f.Widgets[wname]; w.Source != nil {
			for _, t := range w.Source.Tasks {
				markTask(t.Name)
			}
		}
	}
	for _, name := range l.f.TaskOrder {
		if !usedTasks[name] {
			l.add(Finding{Rule: "FL011", Severity: Warning, Entity: "T." + name, Line: l.f.Tasks[name].Line,
				Message: "task is referenced by no flow or widget pipeline"})
		}
	}

	// FL012: widgets reachable from no layout cell (only meaningful when
	// the file has a layout; data-processing files render nothing).
	if l.f.Layout == nil {
		return
	}
	usedWidgets := map[string]bool{}
	var markWidget func(name string)
	markWidget = func(name string) {
		if usedWidgets[name] {
			return
		}
		usedWidgets[name] = true
		w, ok := l.f.Widgets[name]
		if !ok {
			return
		}
		// Layout and TabLayout widgets nest other widgets inside their
		// configuration; any scalar matching a widget name is a reference.
		markWidgetRefs(w.Config, l.f, markWidget)
	}
	for _, row := range l.f.Layout.Rows {
		for _, cell := range row.Cells {
			markWidget(cell.Widget)
		}
	}
	// Widgets driving interaction filters are in use even off-layout.
	for _, name := range l.f.TaskOrder {
		if !usedTasks[name] {
			continue
		}
		if src := l.f.Tasks[name].Config.Str("filter_source"); src != "" {
			if ref, err := flowfile.ParseRef(src); err == nil && ref.Section == "W" {
				markWidget(ref.Name)
			}
		}
	}
	for _, name := range l.f.WidgetOrder {
		if !usedWidgets[name] {
			l.add(Finding{Rule: "FL012", Severity: Warning, Entity: "W." + name, Line: l.f.Widgets[name].Line,
				Message: "widget appears in no layout cell and drives no interaction filter"})
		}
	}
}

// markWidgetRefs walks a widget's config node marking every scalar that
// names an existing widget — how Layout rows and TabLayout tabs refer to
// their children.
func markWidgetRefs(n *flowfile.Node, f *flowfile.File, mark func(string)) {
	if n == nil {
		return
	}
	if n.Scalar != "" {
		if _, ok := f.Widgets[n.Scalar]; ok {
			mark(n.Scalar)
		}
	}
	for _, e := range n.Entries {
		if _, ok := f.Widgets[e.Key]; ok {
			mark(e.Key)
		}
		markWidgetRefs(e.Value, f, mark)
	}
	for _, it := range n.Items {
		markWidgetRefs(it, f, mark)
	}
}

// defLine returns a data object's declaring line (0 if undeclared).
func defLine(f *flowfile.File, name string) int {
	if d, ok := f.Data[name]; ok {
		return d.Line
	}
	return 0
}

// entryLine returns a map entry's value line, falling back when absent.
func entryLine(e flowfile.MapEntry, fallback int) int {
	if e.Value != nil && e.Value.Line > 0 {
		return e.Value.Line
	}
	return fallback
}

// cleanMsg strips engine prefixes, mirroring diagnose.
func cleanMsg(msg string) string {
	for _, prefix := range []string{"batch: ", "dag: ", "connector: ", "expr: ", "schema: ", "cube: ", "task: "} {
		msg = strings.ReplaceAll(msg, prefix, "")
	}
	return msg
}

func hasString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
