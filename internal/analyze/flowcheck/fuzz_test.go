// Differential soundness fuzzing: flowcheck's contract is that a flow
// it accepts (no error-severity findings) never produces a runtime type
// error, and that every cell both engines produce conforms to the
// inferred static type. The harness generates random pipelines over a
// typed sales fixture, lints them with the true source types, and runs
// every accepted flow on the row AND columnar engines, checking
//
//   - both runs succeed and agree cell-for-cell (kinds included),
//   - every cell Conforms to the column's inferred Type,
//   - proven constants, intervals and cardinality bounds hold.
//
// The external test package breaks the analyze → flowcheck import cycle.
package flowcheck_test

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"shareinsights/internal/analyze"
	"shareinsights/internal/analyze/flowcheck"
	"shareinsights/internal/dag"
	"shareinsights/internal/engine/batch"
	"shareinsights/internal/flowfile"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
	"shareinsights/internal/task"
	"shareinsights/internal/value"
)

// srcScope is the ground-truth static typing of the fixture table —
// exactly what srcTable produces, so a conformance failure is always a
// checker bug, never a fixture mismatch.
func srcScope() flowcheck.Scope {
	return flowcheck.Scope{
		"region":  {Type: flowcheck.Type{Kind: flowcheck.KString}},
		"product": {Type: flowcheck.Type{Kind: flowcheck.KString}},
		"amount":  {Type: flowcheck.Type{Kind: flowcheck.KInt, Nullable: true}},
		"ratio":   {Type: flowcheck.Type{Kind: flowcheck.KFloat, Nullable: true}},
		"flag":    {Type: flowcheck.Type{Kind: flowcheck.KBool}},
	}
}

func srcTable(n int, seed int64, nullRate int) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	tb := table.New(schema.MustFromNames("region", "product", "amount", "ratio", "flag"))
	regions := []string{"east", "west", "north", "south"}
	for i := 0; i < n; i++ {
		amount := value.NewInt(int64(rng.Intn(200) - 50))
		ratio := value.NewFloat(rng.Float64()*4 - 2)
		if rng.Intn(100) < nullRate {
			amount = value.VNull
		}
		if rng.Intn(100) < nullRate {
			ratio = value.VNull
		}
		tb.AppendValues(
			value.NewString(regions[rng.Intn(len(regions))]),
			value.NewString(fmt.Sprintf("%c%d", 'a'+rng.Intn(3), rng.Intn(4))),
			amount,
			ratio,
			value.NewBool(rng.Intn(2) == 0),
		)
	}
	return tb
}

// --- random flow generation ------------------------------------------------

type flowGen struct {
	rng  *rand.Rand
	cols []string // live columns after the stages generated so far
	next int      // fresh column counter
}

func (g *flowGen) col() string { return g.cols[g.rng.Intn(len(g.cols))] }

// scalar generates a value-producing expression, deliberately including
// ill-typed shapes (string arithmetic, null operands) so the lint gate
// itself is exercised, not just the happy path.
func (g *flowGen) scalar(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(8) {
		case 0, 1, 2:
			return g.col()
		case 3:
			return strconv.Itoa(g.rng.Intn(120) - 40)
		case 4:
			return strconv.FormatFloat(g.rng.Float64()*4-2, 'f', 2, 64)
		case 5:
			return []string{"'east'", "'a1'", "'zz'", "'42'"}[g.rng.Intn(4)]
		case 6:
			return "null"
		default:
			return "-" + g.col()
		}
	}
	op := []string{"+", "-", "*", "/", "%"}[g.rng.Intn(5)]
	return "(" + g.scalar(depth-1) + " " + op + " " + g.scalar(depth-1) + ")"
}

// pred generates a boolean filter expression.
func (g *flowGen) pred(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(6) {
		case 0:
			op := []string{"<", "<=", ">", ">=", "==", "!="}[g.rng.Intn(6)]
			return g.scalar(1) + " " + op + " " + g.scalar(1)
		case 1:
			return g.col() + " in (" + strconv.Itoa(g.rng.Intn(10)) + ", " + strconv.Itoa(g.rng.Intn(10)) + ", 'a1')"
		case 2:
			return g.col() + " contains " + []string{"'a'", "'1'", "'east'"}[g.rng.Intn(3)]
		case 3:
			return g.col() // bare truthiness test
		default:
			op := []string{"<", ">", "=="}[g.rng.Intn(3)]
			return g.col() + " " + op + " " + g.scalar(0)
		}
	}
	switch g.rng.Intn(3) {
	case 0:
		return "(" + g.pred(depth-1) + " and " + g.pred(depth-1) + ")"
	case 1:
		return "(" + g.pred(depth-1) + " or " + g.pred(depth-1) + ")"
	default:
		return "not (" + g.pred(depth-1) + ")"
	}
}

// stage emits one task definition and updates the live column set.
func (g *flowGen) stage(id string) string {
	switch g.rng.Intn(8) {
	case 0, 1:
		return fmt.Sprintf("  %s:\n    type: filter_by\n    filter_expression: %s\n", id, g.pred(2))
	case 2:
		// The expression must be generated BEFORE the output column
		// becomes live: a map expr cannot read its own output.
		ex := g.scalar(2)
		out := fmt.Sprintf("m%d", g.next)
		g.next++
		if g.rng.Intn(4) == 0 {
			out = g.col() // overwrite an existing column
		} else {
			g.cols = append(g.cols, out)
		}
		return fmt.Sprintf("  %s:\n    type: map\n    operator: expr\n    expression: %s\n    output: %s\n", id, ex, out)
	case 3:
		out := fmt.Sprintf("c%d", g.next)
		g.next++
		g.cols = append(g.cols, out)
		val := []string{"42", "3.5", "fixed", "true"}[g.rng.Intn(4)]
		return fmt.Sprintf("  %s:\n    type: map\n    operator: constant\n    output: %s\n    value: %q\n", id, out, val)
	case 4:
		dir := []string{"", " DESC"}[g.rng.Intn(2)]
		return fmt.Sprintf("  %s:\n    type: sort\n    orderby_column: [%s%s]\n", id, g.col(), dir)
	case 5:
		return fmt.Sprintf("  %s:\n    type: limit\n    limit: %d\n", id, g.rng.Intn(30)+1)
	case 6:
		dir := []string{"", " DESC"}[g.rng.Intn(2)]
		return fmt.Sprintf("  %s:\n    type: topn\n    orderby_column: [%s%s]\n    limit: %d\n", id, g.col(), dir, g.rng.Intn(8)+1)
	default:
		key := g.col()
		aggOp := []string{"sum", "avg", "min", "max", "count"}[g.rng.Intn(5)]
		on := g.col()
		outField := fmt.Sprintf("g%d", g.next)
		g.next++
		s := fmt.Sprintf("  %s:\n    type: groupby\n    groupby: [%s]\n    aggregates:\n      - operator: %s\n", id, key, aggOp)
		if aggOp != "count" {
			s += fmt.Sprintf("        apply_on: %s\n", on)
		}
		s += fmt.Sprintf("        out_field: %s\n", outField)
		g.cols = []string{key, outField}
		return s
	}
}

// genFlow assembles a random 1..5 stage flow, sometimes split across an
// intermediate data object so cross-object fact propagation is covered.
func genFlow(rng *rand.Rand) string {
	g := &flowGen{rng: rng, cols: []string{"region", "product", "amount", "ratio", "flag"}}
	stages := rng.Intn(5) + 1
	var tasks []string
	var chain []string
	for i := 0; i < stages; i++ {
		id := fmt.Sprintf("t%d", i)
		chain = append(chain, "T."+id)
		tasks = append(tasks, g.stage(id))
	}
	flows := "  D.out: D.src | " + strings.Join(chain, " | ") + "\n"
	if stages > 1 && rng.Intn(2) == 0 {
		cut := rng.Intn(stages-1) + 1
		flows = "  D.mid: D.src | " + strings.Join(chain[:cut], " | ") + "\n" +
			"  D.out: D.mid | " + strings.Join(chain[cut:], " | ") + "\n"
	}
	return "D:\n  src: [region, product, amount, ratio, flag]\n\nF:\n" +
		flows + "\n  D.out:\n    endpoint: true\n\nT:\n" + strings.Join(tasks, "")
}

// --- the soundness property ------------------------------------------------

// parseType inverts Type.String; the fuzzer reads types back from the
// exported Facts so the wire contract is what gets verified.
func parseType(t *testing.T, s string) flowcheck.Type {
	t.Helper()
	if s == "null" {
		return flowcheck.Type{Kind: flowcheck.KNone, Nullable: true}
	}
	nullable := strings.HasSuffix(s, "?")
	var k flowcheck.Kind
	switch strings.TrimSuffix(s, "?") {
	case "bool":
		k = flowcheck.KBool
	case "int":
		k = flowcheck.KInt
	case "float":
		k = flowcheck.KFloat
	case "string":
		k = flowcheck.KString
	case "time":
		k = flowcheck.KTime
	case "any":
		k = flowcheck.KAny
	default:
		t.Fatalf("unknown rendered type %q", s)
	}
	return flowcheck.Type{Kind: k, Nullable: nullable}
}

// checkFlow generates one flow from the seed, lints it, and — when
// accepted — proves the run-time soundness properties. Returns whether
// the flow was accepted.
func checkFlow(t *testing.T, seed int64, rows, nullRate int) bool {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	src := genFlow(rng)
	f, err := flowfile.Parse("fuzz", src)
	if err != nil {
		t.Fatalf("generated flow does not parse: %v\n%s", err, src)
	}
	report, facts := analyze.LintWithFacts(f, analyze.Options{
		Tasks:        task.NewRegistry(),
		SourceScopes: map[string]flowcheck.Scope{"src": srcScope()},
	})
	if report.HasErrors() {
		return false
	}
	sources := map[string]*table.Table{"src": srcTable(rows, seed+999, nullRate)}
	g, err := dag.Build(f, task.NewRegistry(), nil)
	if err != nil {
		t.Fatalf("lint-clean flow fails to compile: %v\n%s", err, src)
	}
	var results []*batch.Result
	for _, mode := range []string{batch.ColumnarOff, batch.ColumnarOn} {
		e := &batch.Executor{Parallelism: 1, Columnar: mode}
		res, err := e.Run(g, &task.Env{Parallelism: 1}, sources)
		if err != nil {
			t.Fatalf("lint-clean flow fails at runtime (columnar=%s): %v\n%s", mode, err, src)
		}
		results = append(results, res)
	}
	row, col := results[0], results[1]
	for _, name := range row.SortedNames() {
		want, _ := row.Table(name)
		got, ok := col.Table(name)
		if !ok || !want.Equal(got) {
			t.Fatalf("row and columnar engines disagree on D.%s\n%s", name, src)
		}
		checkConforms(t, src, name, want, facts)
	}
	// The platform runs with the cost-based optimizer on by default, so
	// the soundness property extends to it: a planned run — fed the same
	// static facts the checker just proved, which reorder filters and
	// shape pushdowns — must agree with the unplanned reference on both
	// engines, and its outputs must conform to the same facts.
	hints := analyze.OptimizerHints(f, analyze.Options{
		Tasks:        task.NewRegistry(),
		SourceScopes: map[string]flowcheck.Scope{"src": srcScope()},
	})
	for _, mode := range []string{batch.ColumnarOff, batch.ColumnarOn} {
		opts := hints.PlanOptions(nil)
		opts.Columnar = mode
		e := &batch.Executor{Parallelism: 1, Columnar: mode, Plan: dag.Optimize(g, opts)}
		res, err := e.Run(g, &task.Env{Parallelism: 1}, sources)
		if err != nil {
			t.Fatalf("lint-clean flow fails under the optimizer (columnar=%s): %v\n%s", mode, err, src)
		}
		for _, name := range row.SortedNames() {
			want, _ := row.Table(name)
			got, ok := res.Table(name)
			if !ok || !want.Equal(got) {
				t.Fatalf("optimized run (columnar=%s) disagrees with reference on D.%s\n%s", mode, name, src)
			}
			checkConforms(t, src, name, got, facts)
		}
	}
	return true
}

// checkConforms proves one produced table against the exported facts.
func checkConforms(t *testing.T, src, name string, tb *table.Table, facts *flowcheck.Facts) {
	t.Helper()
	of := facts.Objects[name]
	if of == nil {
		t.Fatalf("no facts recorded for produced object D.%s\n%s", name, src)
	}
	if !of.Card.Unbounded && int64(tb.Len()) > of.Card.Max {
		t.Fatalf("D.%s: %d rows exceed the proven bound %d\n%s", name, tb.Len(), of.Card.Max, src)
	}
	if int64(tb.Len()) < of.Card.Min {
		t.Fatalf("D.%s: %d rows below the proven minimum %d\n%s", name, tb.Len(), of.Card.Min, src)
	}
	for j, sc := range tb.Schema().Columns() {
		cf, ok := of.Columns[sc.Name]
		if !ok {
			continue // untracked column: no claim, nothing to refute
		}
		ty := parseType(t, cf.Type)
		for i, r := range tb.Rows() {
			v := r[j]
			if !flowcheck.Conforms(v, ty) {
				t.Fatalf("D.%s.%s row %d: value %s (%v) does not conform to inferred %s\n%s",
					name, sc.Name, i, v, v.Kind(), cf.Type, src)
			}
			if cf.Const != nil && (v.String() != *cf.Const || v.Kind().String() != cf.ConstKind) {
				t.Fatalf("D.%s.%s row %d: value %s breaks the proven constant %s (%s)\n%s",
					name, sc.Name, i, v, *cf.Const, cf.ConstKind, src)
			}
			if !v.IsNull() {
				fv := v.Float()
				if cf.Lo != nil && fv < *cf.Lo {
					t.Fatalf("D.%s.%s row %d: %s below proven bound %g\n%s", name, sc.Name, i, v, *cf.Lo, src)
				}
				if cf.Hi != nil && fv > *cf.Hi {
					t.Fatalf("D.%s.%s row %d: %s above proven bound %g\n%s", name, sc.Name, i, v, *cf.Hi, src)
				}
			}
		}
	}
}

// FuzzFlowcheck is the randomized entry point; the seeded corpus lives
// under testdata/fuzz/FuzzFlowcheck.
func FuzzFlowcheck(f *testing.F) {
	for seed := int64(0); seed < 32; seed++ {
		f.Add(seed, int64(60), int64(25))
	}
	f.Add(int64(7), int64(0), int64(0))     // empty source
	f.Add(int64(11), int64(40), int64(100)) // all-null measures
	// Optimizer-shaped seeds: these generate multi-filter chains (some
	// with groupby barriers), the shapes the planner's filter-reorder
	// and pushdown rules rewrite — so the fuzzer keeps hammering the
	// planned-vs-unplanned agreement checkFlow proves.
	for _, seed := range []int64{3, 9, 10, 23, 33, 39, 52, 57, 63, 103} {
		f.Add(seed, int64(64), int64(25))
		f.Add(seed, int64(64), int64(100)) // all-null measures through reordered filters
	}
	f.Fuzz(func(t *testing.T, seed, rows, nullRate int64) {
		if rows < 0 {
			rows = -rows
		}
		if nullRate < 0 {
			nullRate = -nullRate
		}
		checkFlow(t, seed, int(rows%200), int(nullRate%101))
	})
}

// TestFlowcheckSoundnessSweep is the deterministic acceptance gate: at
// least a thousand random flows, every accepted one proven sound on
// both engines, and the generator must not degenerate into producing
// only rejected flows.
func TestFlowcheckSoundnessSweep(t *testing.T) {
	n := 1100
	if testing.Short() {
		n = 150
	}
	accepted := 0
	rowChoices := []int{0, 1, 17, 64}
	nullChoices := []int{0, 10, 60, 100}
	for seed := 0; seed < n; seed++ {
		if checkFlow(t, int64(seed), rowChoices[seed%4], nullChoices[(seed/4)%4]) {
			accepted++
		}
	}
	t.Logf("accepted %d of %d generated flows", accepted, n)
	if accepted < n/3 {
		t.Errorf("generator degenerated: only %d of %d flows accepted", accepted, n)
	}
}
