package flowcheck

import (
	"strings"

	"shareinsights/internal/expr"
	"shareinsights/internal/flowfile"
	"shareinsights/internal/task"
)

// LiveIn computes, for each input of a stage, the columns that must be
// materialized so the stage can produce the liveOut set — the backward
// liveness transfer. Unknown spec kinds conservatively keep every input
// column live, so a custom task can never cause a false dead-column
// report.
func LiveIn(sp task.Spec, def *flowfile.TaskDef, lookup TaskLookup, ins []Input, liveOut map[string]bool) []map[string]bool {
	out := make([]map[string]bool, len(ins))
	for i := range out {
		out[i] = map[string]bool{}
	}
	if len(out) == 0 {
		return out
	}
	switch t := sp.(type) {
	case *task.FilterSpec:
		copySet(out[0], liveOut)
		addCols(out[0], exprCols(t.Expression))
		addCols(out[0], t.By)
	case *task.MapSpec:
		copySetExcept(out[0], liveOut, m2set(t.OutColumns()))
		addCols(out[0], mapUses(t, def))
	case *task.ParallelSpec:
		defined := map[string]bool{}
		var uses []string
		for i, sub := range t.Subs {
			ms, ok := sub.(*task.MapSpec)
			if !ok {
				continue
			}
			for _, c := range ms.OutColumns() {
				defined[c] = true
			}
			if i < len(t.Names) && lookup != nil {
				uses = append(uses, mapUses(ms, lookup(t.Names[i]))...)
			}
		}
		copySetExcept(out[0], liveOut, defined)
		addCols(out[0], uses)
	case *task.GroupBySpec:
		addCols(out[0], t.GroupBy)
		for _, a := range t.Aggs {
			if a.ApplyOn != "" {
				out[0][a.ApplyOn] = true
			}
		}
	case *task.ProjectSpec:
		copySet(out[0], liveOut)
	case *task.SortSpec:
		copySet(out[0], liveOut)
		addCols(out[0], orderCols(t.OrderBy))
	case *task.DistinctSpec:
		copySet(out[0], liveOut)
		if len(t.Columns) == 0 {
			if ins[0].Schema != nil {
				addCols(out[0], ins[0].Schema.Names())
			} else {
				return allLive(ins)
			}
		} else {
			addCols(out[0], t.Columns)
		}
	case *task.UnionSpec:
		for i := range out {
			copySet(out[i], liveOut)
		}
	case *task.LimitSpec:
		copySet(out[0], liveOut)
	case *task.TopNSpec:
		copySet(out[0], liveOut)
		addCols(out[0], t.GroupBy)
		addCols(out[0], orderCols(t.OrderBy))
	case *task.JoinSpec:
		liveInJoin(t, ins, liveOut, out)
	default:
		return allLive(ins)
	}
	return out
}

// liveInJoin maps live (possibly projected) join outputs back to each
// side's columns and keeps the join keys live.
func liveInJoin(t *task.JoinSpec, ins []Input, liveOut map[string]bool, out []map[string]bool) {
	if len(ins) != 2 {
		for i := range out {
			if ins[i].Schema != nil {
				addCols(out[i], ins[i].Schema.Names())
			}
		}
		return
	}
	// Live output → qualified name.
	qualified := map[string]bool{}
	if len(t.Project) > 0 {
		for _, p := range t.Project {
			if liveOut[p.Out] {
				qualified[p.Qualified] = true
			}
		}
	} else {
		copySet(qualified, liveOut)
	}
	for i, in := range ins {
		keys := t.LeftKeys
		if in.Name == t.RightName {
			keys = t.RightKeys
		}
		addCols(out[i], keys)
		prefix := in.Name + "_"
		for q := range qualified {
			if strings.HasPrefix(q, prefix) {
				out[i][strings.TrimPrefix(q, prefix)] = true
			}
		}
	}
}

// mapUses names the input columns one map operator reads.
func mapUses(m *task.MapSpec, def *flowfile.TaskDef) []string {
	if def == nil || def.Config == nil {
		return nil
	}
	switch m.Operator {
	case "constant":
		return nil
	case "expr":
		return exprCols(def.Config.Str("expression"))
	case "concat":
		return def.Config.StrList("transform")
	}
	if c := def.Config.Str("transform"); c != "" {
		return []string{c}
	}
	return nil
}

func exprCols(src string) []string {
	if src == "" {
		return nil
	}
	cols, err := expr.ReferencedColumns(src)
	if err != nil {
		return nil
	}
	return cols
}

func orderCols(keys []task.OrderKey) []string {
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k.Column)
	}
	return out
}

func copySet(dst, src map[string]bool) {
	for k := range src {
		dst[k] = true
	}
}

func copySetExcept(dst, src, except map[string]bool) {
	for k := range src {
		if !except[k] {
			dst[k] = true
		}
	}
}

func addCols(dst map[string]bool, cols []string) {
	for _, c := range cols {
		if c != "" {
			dst[c] = true
		}
	}
}

func m2set(cols []string) map[string]bool {
	out := make(map[string]bool, len(cols))
	for _, c := range cols {
		out[c] = true
	}
	return out
}

// allLive marks every column of every input live.
func allLive(ins []Input) []map[string]bool {
	out := make([]map[string]bool, len(ins))
	for i, in := range ins {
		out[i] = map[string]bool{}
		if in.Schema != nil {
			addCols(out[i], in.Schema.Names())
		}
	}
	return out
}
