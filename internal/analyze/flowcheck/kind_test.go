package flowcheck

import (
	"testing"

	"shareinsights/internal/value"
)

var allKinds = []Kind{KNone, KBool, KInt, KFloat, KString, KTime, KAny}

func allTypes() []Type {
	var out []Type
	for _, k := range allKinds {
		out = append(out, Type{Kind: k}, Type{Kind: k, Nullable: true})
	}
	return out
}

// sampleValues covers every runtime kind the engines produce.
func sampleValues() []value.V {
	return []value.V{
		value.VNull,
		value.NewBool(true),
		value.NewInt(-3),
		value.NewInt(0),
		value.NewFloat(2.5),
		value.NewString("east"),
		value.NewString("12"),
		value.Parse("2021-06-01T00:00:00Z"),
	}
}

func TestJoinIsLatticeLike(t *testing.T) {
	types := allTypes()
	for _, a := range types {
		if got := Join(a, a); got != a && !(a.Kind == KNone && got.Nullable) {
			// Joining bottom with itself forces nullability; everything
			// else must be idempotent.
			t.Errorf("Join(%v, %v) = %v, want idempotent", a, a, got)
		}
		for _, b := range types {
			ab, ba := Join(a, b), Join(b, a)
			if ab != ba {
				t.Errorf("Join not commutative: %v⊔%v=%v but %v⊔%v=%v", a, b, ab, b, a, ba)
			}
			for _, c := range types {
				if l, r := Join(Join(a, b), c), Join(a, Join(b, c)); l != r {
					t.Errorf("Join not associative at (%v,%v,%v): %v vs %v", a, b, c, l, r)
				}
			}
		}
	}
}

// TestConformsMonotone is the heart of the soundness argument: widening a
// type (joining with anything) never rejects a value the narrower type
// admitted, so every transfer function that joins facts stays sound.
func TestConformsMonotone(t *testing.T) {
	types := allTypes()
	for _, v := range sampleValues() {
		for _, a := range types {
			if !Conforms(v, a) {
				continue
			}
			for _, b := range types {
				if j := Join(a, b); !Conforms(v, j) {
					t.Errorf("value %s conforms to %v but not to the wider %v = %v⊔%v", v, a, j, a, b)
				}
			}
		}
	}
}

func TestConformsCases(t *testing.T) {
	cases := []struct {
		v    value.V
		t    Type
		want bool
	}{
		{value.VNull, Type{Kind: KInt}, false},
		{value.VNull, Type{Kind: KInt, Nullable: true}, true},
		{value.VNull, Type{Kind: KNone, Nullable: true}, true},
		{value.NewInt(5), Type{Kind: KInt}, true},
		{value.NewInt(5), Type{Kind: KFloat}, true}, // int ⊑ float
		{value.NewFloat(5), Type{Kind: KInt}, false},
		{value.NewString("5"), Type{Kind: KInt}, false},
		{value.NewBool(true), Type{Kind: KAny}, true},
		{value.NewBool(true), Type{Kind: KNone, Nullable: true}, false},
	}
	for _, c := range cases {
		if got := Conforms(c.v, c.t); got != c.want {
			t.Errorf("Conforms(%s, %v) = %v, want %v", c.v, c.t, got, c.want)
		}
	}
}

func TestCoarseConflict(t *testing.T) {
	num := Type{Kind: KInt}
	txt := Type{Kind: KString}
	tim := Type{Kind: KTime}
	unk := Unknown()
	cases := []struct {
		a, b Type
		want bool
	}{
		{num, txt, true},
		{num, Type{Kind: KFloat}, false}, // both "number"
		{txt, tim, false},                // the tolerated text/time pair
		{tim, txt, false},
		{num, tim, true},
		{unk, txt, false}, // unknown conflicts with nothing
		{Type{Kind: KNone, Nullable: true}, txt, false},
	}
	for _, c := range cases {
		if got := CoarseConflict(c.a, c.b); got != c.want {
			t.Errorf("CoarseConflict(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := CoarseConflict(c.b, c.a); got != c.want {
			t.Errorf("CoarseConflict(%v, %v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		{Kind: KInt}:                   "int",
		{Kind: KFloat, Nullable: true}: "float?",
		{Kind: KNone, Nullable: true}:  "null",
		{Kind: KAny, Nullable: true}:   "any?",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", ty, got, want)
		}
	}
}
