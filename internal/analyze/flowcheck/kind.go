// Package flowcheck is the platform's static semantics: a typed
// expression IR over internal/expr with inference on a kind lattice, and
// an abstract-interpretation pass that propagates per-column facts
// (types, constants, numeric intervals) and per-stage cardinality bounds
// through a flow's task chain.
//
// flowlint (internal/analyze) is re-founded on this package: the legacy
// coarse column types ("number", "text", …) are now projections of the
// fine lattice (Type.Coarse), so the historical FL004/FL021 warnings
// keep their exact wording while the finer rules — FL060 type mismatch,
// FL061 vacuous comparison, FL062 null-only operand, FL063 constant
// filter, FL064 dead column — become provable instead of heuristic. The
// exported Facts structure is the contract the cost-based optimizer
// consumes: constants for folding, intervals for selectivity, liveness
// for projection pushdown.
//
// Soundness contract: for every column the checker types, every value
// the engines actually produce in that column must Conform to the
// inferred Type. The differential fuzzer (FuzzFlowcheck) enforces this
// against both the row and columnar engines.
package flowcheck

import "shareinsights/internal/value"

// Kind is one point of the static kind lattice:
//
//	        KAny (top: unknown)
//	   /   /    |    \     \
//	KBool KFloat KString KTime
//	        |
//	      KInt
//	   \   |    |    /     /
//	        KNone (bottom: provably always null)
//
// KInt ⊑ KFloat because the engine's numeric coercion means an integer
// cell is acceptable wherever a float is expected (sum over a float
// column returns Int 0 for all-null groups, bucket snaps to Int for
// integral widths); no other pair of concrete kinds is ordered.
type Kind uint8

// The lattice points. KNone is the type of an expression that is
// provably null on every row; KAny carries no information.
const (
	KNone Kind = iota
	KBool
	KInt
	KFloat
	KString
	KTime
	KAny
)

// String names the kind as docs/TYPES.md spells it.
func (k Kind) String() string {
	switch k {
	case KNone:
		return "none"
	case KBool:
		return "bool"
	case KInt:
		return "int"
	case KFloat:
		return "float"
	case KString:
		return "string"
	case KTime:
		return "time"
	}
	return "any"
}

// Numeric reports whether the kind participates in numeric arithmetic
// without coercion surprises.
func (k Kind) Numeric() bool { return k == KInt || k == KFloat }

// Type is a static column or expression type: a lattice kind plus an
// orthogonal nullability bit. {KNone, true} is the canonical bottom —
// a KNone value is always null, so its nullability is forced.
type Type struct {
	Kind     Kind `json:"kind"`
	Nullable bool `json:"nullable"`
}

// Unknown is the top type: any kind, possibly null.
func Unknown() Type { return Type{Kind: KAny, Nullable: true} }

// IsUnknown reports whether t carries no kind information.
func (t Type) IsUnknown() bool { return t.Kind == KAny }

// String renders the type with the SQL-ish nullability suffix: "int",
// "float?", "any".
func (t Type) String() string {
	if t.Kind == KNone {
		return "null"
	}
	if t.Nullable {
		return t.Kind.String() + "?"
	}
	return t.Kind.String()
}

// Coarse projects the fine type onto the legacy flowlint vocabulary
// ("number", "text", "boolean", "time", "unknown"), preserving the exact
// wording of the historical FL004/FL021 findings.
func (t Type) Coarse() string {
	switch t.Kind {
	case KInt, KFloat:
		return "number"
	case KString:
		return "text"
	case KBool:
		return "boolean"
	case KTime:
		return "time"
	}
	return "unknown"
}

// CoarseConflict reports whether two types cannot meaningfully meet in a
// comparison under the legacy coarse lattice: both known, different, and
// not the text/time pair (date columns compare against their string
// forms throughout the engine). FL004 and FL021 are defined by this
// predicate, unchanged from the pre-flowcheck linter.
func CoarseConflict(a, b Type) bool {
	ca, cb := a.Coarse(), b.Coarse()
	if ca == "unknown" || cb == "unknown" || ca == cb {
		return false
	}
	if (ca == "time" && cb == "text") || (ca == "text" && cb == "time") {
		return false
	}
	return true
}

// join folds two kinds to their least upper bound.
func joinKind(a, b Kind) Kind {
	if a == b {
		return a
	}
	if a == KNone {
		return b
	}
	if b == KNone {
		return a
	}
	if (a == KInt && b == KFloat) || (a == KFloat && b == KInt) {
		return KFloat
	}
	return KAny
}

// Join returns the least upper bound of two types: the kind join, with
// nullability if either side is nullable. Joining with bottom (KNone,
// an always-null source) makes the result nullable.
func Join(a, b Type) Type {
	nullable := a.Nullable || b.Nullable || a.Kind == KNone || b.Kind == KNone
	return Type{Kind: joinKind(a.Kind, b.Kind), Nullable: nullable}
}

// FromValue returns the exact static type of one runtime value.
func FromValue(v value.V) Type {
	switch v.Kind() {
	case value.Bool:
		return Type{Kind: KBool}
	case value.Int:
		return Type{Kind: KInt}
	case value.Float:
		return Type{Kind: KFloat}
	case value.String:
		return Type{Kind: KString}
	case value.Time:
		return Type{Kind: KTime}
	}
	return Type{Kind: KNone, Nullable: true}
}

// Conforms reports whether a runtime value is admissible under the
// static type — the soundness relation the differential fuzzer checks.
// Null conforms only to nullable types; Int conforms to KInt and (by the
// int ⊑ float order) to KFloat; every value conforms to KAny.
func Conforms(v value.V, t Type) bool {
	if v.IsNull() {
		return t.Nullable || t.Kind == KNone || t.Kind == KAny
	}
	switch t.Kind {
	case KAny:
		return true
	case KNone:
		return false
	case KBool:
		return v.Kind() == value.Bool
	case KInt:
		return v.Kind() == value.Int
	case KFloat:
		return v.Kind() == value.Float || v.Kind() == value.Int
	case KString:
		return v.Kind() == value.String
	case KTime:
		return v.Kind() == value.Time
	}
	return false
}
