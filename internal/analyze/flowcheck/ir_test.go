package flowcheck

import (
	"sort"
	"strings"
	"testing"

	"shareinsights/internal/value"
)

// testScope is the standard fixture: typed sales columns plus a counter
// with a proven interval and a provably-null column.
func testScope() Scope {
	return Scope{
		"region": {Type: Type{Kind: KString}},
		"flag":   {Type: Type{Kind: KBool}},
		"amount": {Type: Type{Kind: KInt, Nullable: true}},
		"ratio":  {Type: Type{Kind: KFloat, Nullable: true}},
		"ts":     {Type: Type{Kind: KTime}},
		"cnt":    {Type: Type{Kind: KInt}, Ivl: &Interval{Lo: 1, HasLo: true}},
		"dead":   {Type: Type{Kind: KNone, Nullable: true}},
	}
}

func rulesOf(issues []Issue) []string {
	var out []string
	for _, is := range issues {
		out = append(out, is.Rule)
	}
	sort.Strings(out)
	return out
}

func TestCheckExprRules(t *testing.T) {
	cases := []struct {
		src  string
		want []string
	}{
		// Clean expressions.
		{"amount > 10", nil},
		{"region == 'east' and flag", nil},
		{"amount + ratio * 2", nil},
		{"amount in (1, 2, 3)", nil},
		{"region contains 'ea'", nil},
		{"region contains 1", nil}, // the needle coerces to text; legacy checks the haystack only
		{"ts > '2021-06-01'", nil}, // text/time comparisons are idiomatic
		{"null == 1", nil},         // an author-written null literal is deliberate

		// FL004: legacy coarse mismatches, wording preserved.
		{"region + 1", []string{"FL004"}},
		{"-region", []string{"FL004"}},
		{"amount == region", []string{"FL004"}},
		{"amount contains 'x'", []string{"FL004"}},
		{"amount in (1, 'east')", []string{"FL004"}},
		{"ts > 5", []string{"FL004"}},

		// FL060: operations no engine path gives a number for.
		{"ts + 1", []string{"FL060"}},
		{"-ts", []string{"FL060"}},
		{"flag contains 'x'", []string{"FL060"}},

		// FL061: a time column against text that orders by kind tag only.
		{"ts > 'not a date'", []string{"FL061"}},
		{"'not a date' < ts", []string{"FL061"}},
		{"ts > '42'", nil}, // numeric text compares numerically

		// FL062: a provably-null operand that is not a written literal.
		{"dead == 1", []string{"FL062"}},
		{"dead + 1", []string{"FL062"}},
		{"-dead", []string{"FL062"}},
	}
	for _, c := range cases {
		_, issues := CheckExpr(c.src, testScope())
		got := rulesOf(issues)
		if strings.Join(got, ",") != strings.Join(c.want, ",") {
			t.Errorf("CheckExpr(%q) rules = %v, want %v (issues: %v)", c.src, got, c.want, issues)
		}
	}
}

func TestVerdicts(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"amount > 10", ""},
		{"1 < 2", "always_true"},
		{"1 > 2", "always_false"},
		{"not (1 > 2)", "always_true"},
		{"amount > 10 or 1 < 2", "always_true"},
		{"amount > 10 and 1 > 2", "always_false"},
		{"'a' == 'a'", "always_true"},
		{"2 in (1, 2, 3)", "always_true"},
		{"5 in (1, 2, 3)", "always_false"},
		{"amount in (1, 2, 3)", ""},
		// Interval proofs: cnt carries [1, ∞).
		{"cnt >= 1", "always_true"},
		{"cnt > 0", "always_true"},
		{"cnt < 1", "always_false"},
		{"cnt > 5", ""},
		{"0 >= cnt", "always_false"}, // flipped orientation
		// Nullable columns never get interval verdicts: null orders below
		// every constant, so `amount > ...` can be false even when the
		// interval proves the non-null cells pass.
		{"amount >= -100000", ""},
	}
	for _, c := range cases {
		root, _ := CheckExpr(c.src, testScope())
		if got := Verdict(root); got != c.want {
			t.Errorf("Verdict(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestRefineFilter(t *testing.T) {
	lower := func(src string) Scope {
		sc := testScope()
		root, _ := CheckExpr(src, sc)
		if root == nil {
			t.Fatalf("expression %q did not lower", src)
		}
		return RefineFilter(sc, root)
	}

	// `amount > 10` strips nullability and sets the lower bound.
	sc := lower("amount > 10")
	f := sc["amount"]
	if f.Type.Nullable {
		t.Errorf("amount > 10: amount still nullable downstream")
	}
	if f.Ivl == nil || !f.Ivl.HasLo || f.Ivl.Lo != 10 {
		t.Errorf("amount > 10: interval = %+v, want Lo=10", f.Ivl)
	}

	// Conjunctions narrow both sides; the column side may be on the right.
	sc = lower("amount >= 2 and 8 >= amount")
	f = sc["amount"]
	if f.Ivl == nil || f.Ivl.Lo != 2 || f.Ivl.Hi != 8 || !f.Ivl.HasLo || !f.Ivl.HasHi {
		t.Errorf("conjunction: interval = %+v, want [2, 8]", f.Ivl)
	}

	// `region == 'east'` pins the constant.
	sc = lower("region == 'east'")
	f = sc["region"]
	if f.Const == nil || f.Const.Str() != "east" {
		t.Errorf("region == 'east': const = %v, want east", f.Const)
	}

	// Numeric-string equality must NOT pin: value.Compare treats "12" as
	// the number 12, so Int 12 also passes the filter.
	sc = lower("region == '12'")
	if sc["region"].Const != nil {
		t.Errorf("region == '12' pinned a const; numeric strings match numbers too")
	}

	// `amount == null` keeps only null cells.
	sc = lower("amount == null")
	f = sc["amount"]
	if f.Type.Kind != KNone {
		t.Errorf("amount == null: type = %v, want null", f.Type)
	}

	// A bare boolean column conjunct discards nulls.
	sc2 := Scope{"ok": {Type: Type{Kind: KBool, Nullable: true}}}
	root, _ := CheckExpr("ok", sc2)
	if got := RefineFilter(sc2, root)["ok"]; got.Type.Nullable {
		t.Errorf("bare column filter: ok still nullable")
	}

	// Disjunctions must refine nothing: either branch alone may pass.
	sc = lower("amount > 10 or flag")
	if f := sc["amount"]; f.Ivl != nil || f.Type.Nullable != true {
		t.Errorf("or-filter refined amount to %+v; disjunctions prove nothing", f)
	}
}

func TestCardBounds(t *testing.T) {
	src := CardUnknown()
	if got := src.capMax(10); got.Unbounded || got.Max != 10 {
		t.Errorf("capMax(10) = %+v", got)
	}
	lim := Card{Min: 5, Max: 100}
	if got := lim.capMax(3); got.Min != 3 || got.Max != 3 {
		t.Errorf("capMax below min = %+v, want [3,3]", got)
	}
	if got := lim.dropMin(); got.Min != 0 || got.Max != 100 {
		t.Errorf("dropMin = %+v", got)
	}
	if got := lim.collapse(); got.Min != 1 || got.Max != 100 {
		t.Errorf("collapse = %+v, want [1,100]", got)
	}
	if got := addCard(Card{Min: 1, Max: 2}, Card{Min: 3, Max: 4}); got.Min != 4 || got.Max != 6 {
		t.Errorf("addCard = %+v, want [4,6]", got)
	}
	if got := addCard(lim, CardUnknown()); !got.Unbounded || got.Min != 5 {
		t.Errorf("addCard unbounded = %+v", got)
	}
	if (Card{}).Empty() != true || lim.Empty() != false {
		t.Errorf("Empty misclassifies")
	}
}

func TestFoldingMatchesRuntime(t *testing.T) {
	// The folder's constants must be the values the engine computes; spot
	// checks on the tricky promotions.
	cases := []struct {
		src  string
		want value.V
	}{
		{"2 + 3", value.NewInt(5)},
		{"2 + 3.5", value.NewFloat(5.5)},
		// String concatenation still draws the legacy FL004 warning
		// (arithmetic on text), but the fold must match the engine: '+'
		// on two strings concatenates.
		{"'a' + 'b'", value.NewString("ab")},
		{"7 % 3", value.NewInt(1)},
		{"1 / 0", value.VNull}, // division by zero is null, not a crash
		{"-2.5", value.NewFloat(2.5 * -1)},
	}
	for _, c := range cases {
		root, _ := CheckExpr(c.src, Scope{})
		if root == nil || root.Const == nil {
			t.Errorf("fold %q: no constant", c.src)
			continue
		}
		if root.Const.Kind() != c.want.Kind() || !value.Equal(*root.Const, c.want) {
			t.Errorf("fold %q = %s (%v), want %s (%v)", c.src, root.Const, root.Const.Kind(), c.want, c.want.Kind())
		}
		if !Conforms(*root.Const, root.Type) {
			t.Errorf("fold %q: constant %s does not conform to its own type %v", c.src, root.Const, root.Type)
		}
	}
}
