package flowcheck

import (
	"strconv"
	"strings"

	"shareinsights/internal/flowfile"
	"shareinsights/internal/schema"
	"shareinsights/internal/task"
	"shareinsights/internal/value"
)

// TaskLookup resolves a task name to its definition — the map-expr and
// parallel transfers need the raw config the spec parser consumed.
type TaskLookup func(name string) *flowfile.TaskDef

// Input is one resolved stage input: the data object's name, bound
// schema, column facts and row-count bound.
type Input struct {
	Name   string
	Schema *schema.Schema
	Scope  Scope
	Card   Card
}

// StageResult is the abstract post-state of one stage.
type StageResult struct {
	// Scope holds the output column facts.
	Scope Scope
	// Card bounds the output row count.
	Card Card
	// Verdict is "always_true" / "always_false" for a filter whose
	// expression has a proven constant truth value, else "".
	Verdict string
}

// StageExprIssues type-checks every expression a stage owns — the filter
// predicate, a map-expr, the expr subs of a parallel — against the input
// scope. It runs before schema binding (mirroring the legacy checkStage
// position) so expression findings survive bind failures.
func StageExprIssues(sp task.Spec, def *flowfile.TaskDef, lookup TaskLookup, in Scope) []Issue {
	switch t := sp.(type) {
	case *task.FilterSpec:
		if t.Expression == "" {
			return nil
		}
		_, iss := CheckExpr(t.Expression, in)
		return iss
	case *task.MapSpec:
		if src := mapExprSource(t, def); src != "" {
			_, iss := CheckExpr(src, in)
			return iss
		}
	case *task.ParallelSpec:
		var out []Issue
		for i, sub := range t.Subs {
			ms, ok := sub.(*task.MapSpec)
			if !ok || i >= len(t.Names) || lookup == nil {
				continue
			}
			if src := mapExprSource(ms, lookup(t.Names[i])); src != "" {
				_, iss := CheckExpr(src, in)
				out = append(out, iss...)
			}
		}
		return out
	}
	return nil
}

// mapExprSource returns the expression source of an expr map operator.
func mapExprSource(m *task.MapSpec, def *flowfile.TaskDef) string {
	if m == nil || m.Operator != "expr" || def == nil || def.Config == nil {
		return ""
	}
	return def.Config.Str("expression")
}

// TransferStage computes the abstract post-state of one stage from its
// inputs and already-bound output schema. Facts are sound: every value
// an engine produces in a typed output column Conforms to the fact's
// type, constants hold on every row, intervals bound every non-null
// cell, and the true row count lies inside Card.
func TransferStage(sp task.Spec, def *flowfile.TaskDef, lookup TaskLookup, ins []Input, out *schema.Schema) StageResult {
	res := StageResult{Scope: carryScope(ins, out), Card: CardUnknown()}
	if len(ins) > 0 {
		res.Card = ins[0].Card
	}
	switch t := sp.(type) {
	case *task.FilterSpec:
		transferFilter(t, ins, &res)
	case *task.GroupBySpec:
		res.Scope = Scope{}
		in := firstInput(ins)
		for _, k := range t.GroupBy {
			if f, ok := in.Scope[k]; ok {
				res.Scope[k] = f
			}
		}
		for _, a := range t.Aggs {
			res.Scope[a.OutField] = aggFact(a, in.Scope)
		}
		res.Card = res.Card.collapse()
	case *task.MapSpec:
		applyMapFacts(t, def, firstInput(ins).Scope, &res)
	case *task.ParallelSpec:
		for i, sub := range t.Subs {
			ms, ok := sub.(*task.MapSpec)
			if !ok || i >= len(t.Names) || lookup == nil {
				continue
			}
			applyMapFacts(ms, lookup(t.Names[i]), firstInput(ins).Scope, &res)
		}
	case *task.JoinSpec:
		transferJoin(t, ins, out, &res)
	case *task.TopNSpec:
		if len(t.GroupBy) == 0 {
			res.Card = res.Card.capMax(int64(t.Limit))
		} else {
			res.Card = res.Card.collapse()
		}
	case *task.LimitSpec:
		res.Card = res.Card.capMax(int64(t.N))
	case *task.DistinctSpec:
		res.Card = res.Card.collapse()
	case *task.UnionSpec:
		c := Card{}
		for i, in := range ins {
			if i == 0 {
				c = in.Card
			} else {
				c = addCard(c, in.Card)
			}
		}
		res.Card = c
	case *task.SortSpec, *task.ProjectSpec:
		// row set and values unchanged; carryScope already restricted to out
	default:
		// Unknown spec (custom func): kinds usually survive a custom
		// transform by name, but values may change arbitrarily — keep the
		// coarse kind (legacy FL004 power), drop constants, intervals and
		// non-null guarantees.
		for col, f := range res.Scope {
			res.Scope[col] = ColFact{Type: Type{Kind: f.Type.Kind, Nullable: true}}
		}
		res.Card = CardUnknown()
	}
	return res
}

func firstInput(ins []Input) Input {
	if len(ins) > 0 {
		return ins[0]
	}
	return Input{Scope: Scope{}, Card: CardUnknown()}
}

// carryScope is the default transfer: an output column inherits the join
// of the facts of every input that carries a same-named column. A column
// no input knows stays untracked.
func carryScope(ins []Input, out *schema.Schema) Scope {
	sc := Scope{}
	if out == nil {
		return sc
	}
	for _, c := range out.Columns() {
		var acc ColFact
		seen := false
		for _, in := range ins {
			if in.Schema == nil || !in.Schema.Has(c.Name) {
				continue
			}
			f, ok := in.Scope[c.Name]
			if !ok {
				f = ColFact{Type: Unknown()}
			}
			if !seen {
				acc, seen = f, true
			} else {
				acc = joinFact(acc, f)
			}
		}
		if seen {
			sc[c.Name] = acc
		}
	}
	return sc
}

// joinFact folds two column facts to their least upper bound.
func joinFact(a, b ColFact) ColFact {
	out := ColFact{Type: Join(a.Type, b.Type)}
	// Constants survive only when identical in kind and payload: Int 1
	// and Float 1.0 compare equal but have different exact types.
	if a.Const != nil && b.Const != nil &&
		a.Const.Kind() == b.Const.Kind() && value.Equal(*a.Const, *b.Const) {
		out.Const = a.Const
	}
	if a.Ivl != nil && b.Ivl != nil {
		var h Interval
		if a.Ivl.HasLo && b.Ivl.HasLo {
			h.Lo, h.HasLo = minF(a.Ivl.Lo, b.Ivl.Lo), true
		}
		if a.Ivl.HasHi && b.Ivl.HasHi {
			h.Hi, h.HasHi = maxF(a.Ivl.Hi, b.Ivl.Hi), true
		}
		if h.HasLo || h.HasHi {
			out.Ivl = &h
		}
	}
	return out
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func transferFilter(t *task.FilterSpec, ins []Input, res *StageResult) {
	in := firstInput(ins)
	res.Card = in.Card.dropMin()
	if t.Expression == "" {
		return
	}
	root := LowerQuiet(t.Expression, in.Scope)
	if root == nil {
		return
	}
	res.Verdict = Verdict(root)
	switch res.Verdict {
	case "always_false":
		res.Card = Card{}
	case "always_true":
		if len(t.By) == 0 && t.SourceWidget == "" {
			res.Card = in.Card
		}
	}
	res.Scope = RefineFilter(res.Scope, root)
}

// LowerQuiet lowers an expression discarding issues — transfer re-lowers
// filter predicates whose issues were already reported by
// StageExprIssues.
func LowerQuiet(src string, sc Scope) *Expr {
	e, _ := CheckExpr(src, sc)
	return e
}

// aggFact is the output fact of one group-by aggregate, matching the
// accumulator semantics exactly: count/count_distinct are non-null ints
// ≥ 1 per group; sum skips nulls and returns Int 0 for all-null groups
// (so a float input widens to the float envelope via int ⊑ float);
// avg/stddev/median return a float that is null only when every input
// cell was null; min/max/first/last carry the input type.
func aggFact(a task.AggSpec, in Scope) ColFact {
	it := in.TypeOf(a.ApplyOn)
	switch a.Operator {
	case "count", "count_distinct":
		return ColFact{Type: Type{Kind: KInt}, Ivl: &Interval{Lo: 1, HasLo: true}}
	case "sum":
		k := KFloat
		if it.Kind == KInt {
			k = KInt
		}
		return ColFact{Type: Type{Kind: k}}
	case "avg", "stddev", "median":
		return ColFact{Type: Type{Kind: KFloat, Nullable: it.Nullable || it.Kind == KNone}}
	case "min", "max":
		f := ColFact{Type: it}
		if g, ok := in[a.ApplyOn]; ok {
			f.Ivl = g.Ivl
			f.Const = g.Const
		}
		return f
	case "first", "last":
		f := ColFact{Type: it}
		if g, ok := in[a.ApplyOn]; ok {
			f.Ivl = g.Ivl
			f.Const = g.Const
		}
		return f
	}
	return ColFact{Type: Unknown()}
}

// fanOutOps are the map operators that change the row count: they drop
// non-matching rows and emit one row per match/token.
func fanOutOp(op string) bool {
	return op == "extract" || op == "extract_location" || op == "extract_words"
}

// applyMapFacts overlays one map operator's output-column facts onto the
// result scope and adjusts the cardinality for fan-out operators.
func applyMapFacts(m *task.MapSpec, def *flowfile.TaskDef, in Scope, res *StageResult) {
	if fanOutOp(m.Operator) {
		res.Card = CardUnknown()
	}
	f := mapFact(m, def, in)
	for _, c := range m.OutColumns() {
		res.Scope[c] = f
	}
}

// mapFact is the output fact of one map operator, matching the operator
// implementations: date may fail to parse (nullable string); the extract
// family and the string transforms always produce a concrete string
// (null inputs coerce to ""); bucket preserves the input's nullability
// and is integral exactly when its width is; constant carries its parsed
// literal; expr inherits the lowered expression's full fact.
func mapFact(m *task.MapSpec, def *flowfile.TaskDef, in Scope) ColFact {
	switch m.Operator {
	case "date":
		return ColFact{Type: Type{Kind: KString, Nullable: true}}
	case "extract", "extract_location", "extract_words",
		"upper", "lower", "trim", "concat", "replace", "case":
		return ColFact{Type: Type{Kind: KString}}
	case "bucket":
		k := KFloat
		nullable := true
		if def != nil && def.Config != nil {
			ws := strings.TrimSpace(def.Config.Str("width"))
			if ws == "" {
				k = KInt
			} else if w, err := strconv.ParseFloat(ws, 64); err == nil && w == float64(int64(w)) {
				k = KInt
			}
			nullable = in.TypeOf(def.Config.Str("transform")).Nullable
		}
		return ColFact{Type: Type{Kind: k, Nullable: nullable}}
	case "constant":
		if def != nil && def.Config != nil {
			v := value.Parse(def.Config.Str("value"))
			f := ColFact{Type: FromValue(v), Const: &v}
			if v.Kind() == value.Int || v.Kind() == value.Float {
				f.Ivl = point(v.Float())
			}
			return f
		}
	case "expr":
		if src := mapExprSource(m, def); src != "" {
			if e, _ := CheckExpr(src, in); e != nil {
				return ColFact{Type: e.Type, Const: e.Const, Ivl: e.Ivl}
			}
		}
	}
	return ColFact{Type: Unknown()}
}

// transferJoin qualifies each side's facts as <object>_<column>, widens
// nullability on the side(s) an outer join may null-pad, and applies the
// projection mapping.
func transferJoin(t *task.JoinSpec, ins []Input, out *schema.Schema, res *StageResult) {
	if len(ins) != 2 {
		return
	}
	l, r := ins[0], ins[1]
	if l.Name == t.RightName && r.Name == t.LeftName {
		l, r = r, l
	}
	res.Card = joinCard(t.Condition, l.Card, r.Card)
	nullPadded := func(side int) bool {
		switch t.Condition {
		case task.LeftOuterJoin:
			return side == 1
		case task.RightOuterJoin:
			return side == 0
		case task.FullOuterJoin:
			return true
		}
		return false
	}
	qual := Scope{}
	for i, in := range []Input{l, r} {
		for col, f := range in.Scope {
			if nullPadded(i) {
				f = ColFact{Type: Type{Kind: f.Type.Kind, Nullable: true}, Ivl: f.Ivl}
			}
			qual[in.Name+"_"+col] = f
		}
	}
	sc := Scope{}
	if len(t.Project) > 0 {
		for _, p := range t.Project {
			if f, ok := qual[p.Qualified]; ok {
				sc[p.Out] = f
			}
		}
	} else if out != nil {
		for _, c := range out.Columns() {
			if f, ok := qual[c.Name]; ok {
				sc[c.Name] = f
			}
		}
	}
	res.Scope = sc
}

// joinCard bounds a join's output rows: at most l*r matches plus one
// null-padded row per unmatched row on each preserved side; at least the
// preserved side's row count for outer joins.
func joinCard(cond task.JoinCondition, l, r Card) Card {
	c := mulCard(l, r)
	switch cond {
	case task.LeftOuterJoin:
		c.Min = l.Min
	case task.RightOuterJoin:
		c.Min = r.Min
	case task.FullOuterJoin:
		c.Min = l.Min
		if r.Min > c.Min {
			c.Min = r.Min
		}
	}
	return c
}
