package flowcheck

import "sort"

// Facts is the stable analysis export: one record per named data object,
// plus the dead-column list. `shareinsights check` and
// GET /dashboards/{name}/check serialize it, and the cost-based
// optimizer consumes it — constants for folding, intervals for
// selectivity estimates, liveness for projection pushdown. Field names
// are a compatibility contract; extend, don't rename.
type Facts struct {
	Objects map[string]*ObjectFacts `json:"objects"`
	Dead    []DeadColumn            `json:"dead,omitempty"`
}

// ObjectFacts describes one named data object at the point it is
// produced.
type ObjectFacts struct {
	// Producer is the flow (task chain) that writes the object, or
	// "source" for connector-fetched data.
	Producer string `json:"producer,omitempty"`
	// Columns maps column names to their facts.
	Columns map[string]ColumnFacts `json:"columns"`
	// Card bounds the object's row count.
	Card Card `json:"card"`
	// Verdict is "always_true"/"always_false" when the producing stage is
	// a filter with a proven constant predicate.
	Verdict string `json:"filter_verdict,omitempty"`
	// Live lists the columns some downstream consumer actually reads,
	// sorted; nil when liveness was not computed for the object.
	Live []string `json:"live,omitempty"`
}

// ColumnFacts is the wire form of one column's ColFact.
type ColumnFacts struct {
	// Type is the rendered static type ("int", "float?", "any", "null").
	Type string `json:"type"`
	// Const is the display form of the column's proven constant value;
	// ConstKind disambiguates it ("int" 5 vs "string" "5").
	Const     *string `json:"const,omitempty"`
	ConstKind string  `json:"const_kind,omitempty"`
	// Lo/Hi bound every non-null cell of a numeric column.
	Lo *float64 `json:"lo,omitempty"`
	Hi *float64 `json:"hi,omitempty"`
}

// DeadColumn is one column no downstream consumer reads.
type DeadColumn struct {
	Object string `json:"object"`
	Column string `json:"column"`
	// Computed distinguishes a column a task computed (FL064 finding
	// material) from one merely fetched from a source (pushdown fact
	// only).
	Computed bool `json:"computed"`
}

// NewFacts returns an empty fact set.
func NewFacts() *Facts { return &Facts{Objects: map[string]*ObjectFacts{}} }

// ScopeFacts converts a scope to its wire form.
func ScopeFacts(sc Scope) map[string]ColumnFacts {
	out := make(map[string]ColumnFacts, len(sc))
	for col, f := range sc {
		cf := ColumnFacts{Type: f.Type.String()}
		if f.Const != nil {
			s := f.Const.String()
			cf.Const = &s
			cf.ConstKind = f.Const.Kind().String()
		}
		if f.Ivl != nil {
			if f.Ivl.HasLo {
				lo := f.Ivl.Lo
				cf.Lo = &lo
			}
			if f.Ivl.HasHi {
				hi := f.Ivl.Hi
				cf.Hi = &hi
			}
		}
		out[col] = cf
	}
	return out
}

// Record stores one object's facts, replacing any previous record.
func (f *Facts) Record(object, producer string, sc Scope, card Card, verdict string) {
	f.Objects[object] = &ObjectFacts{
		Producer: producer,
		Columns:  ScopeFacts(sc),
		Card:     card,
		Verdict:  verdict,
	}
}

// SetLive attaches the sorted live-column set to an object, if recorded.
func (f *Facts) SetLive(object string, live map[string]bool) {
	of, ok := f.Objects[object]
	if !ok {
		return
	}
	cols := make([]string, 0, len(live))
	for c := range live {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	of.Live = cols
}

// AddDead appends a dead-column record, keeping the list sorted for
// stable output.
func (f *Facts) AddDead(object, column string, computed bool) {
	f.Dead = append(f.Dead, DeadColumn{Object: object, Column: column, Computed: computed})
	sort.Slice(f.Dead, func(i, j int) bool {
		if f.Dead[i].Object != f.Dead[j].Object {
			return f.Dead[i].Object < f.Dead[j].Object
		}
		return f.Dead[i].Column < f.Dead[j].Column
	})
}
