package flowcheck

import (
	"math"

	"shareinsights/internal/value"
)

// Interval bounds a numeric column or expression: Lo ≤ v ≤ Hi on every
// non-null cell, with each bound optional. Intervals come from literal
// points, filter conjuncts (`amount > 10` narrows amount downstream) and
// a few transfer functions (count is ≥ 1 per group); the comparison
// folder and FL063 consume them.
type Interval struct {
	Lo, Hi       float64
	HasLo, HasHi bool
}

// point returns the degenerate interval [f, f].
func point(f float64) *Interval { return &Interval{Lo: f, Hi: f, HasLo: true, HasHi: true} }

// intersect narrows a with b in place, returning a (nil inputs pass the
// other side through).
func intersect(a, b *Interval) *Interval {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := *a
	if b.HasLo && (!out.HasLo || b.Lo > out.Lo) {
		out.Lo, out.HasLo = b.Lo, true
	}
	if b.HasHi && (!out.HasHi || b.Hi < out.Hi) {
		out.Hi, out.HasHi = b.Hi, true
	}
	return &out
}

// Empty reports whether the interval contains no values.
func (iv *Interval) Empty() bool {
	return iv != nil && iv.HasLo && iv.HasHi && iv.Lo > iv.Hi
}

// ColFact is everything the checker knows about one column at one point
// of a pipeline.
type ColFact struct {
	// Type is the inferred static type.
	Type Type
	// Const, when non-nil, is the value of every row's cell — constant
	// propagation from `constant` map operators and equality filters.
	Const *value.V
	// Ivl, when non-nil, bounds every non-null cell of a numeric column.
	Ivl *Interval
}

// Scope maps column names to facts for one data object or pipeline
// position. A column absent from the scope is fully unknown — source
// columns start that way because connector payloads are typed
// dynamically.
type Scope map[string]ColFact

// TypeOf returns the column's type, Unknown for untracked columns.
func (s Scope) TypeOf(col string) Type {
	if f, ok := s[col]; ok {
		return f.Type
	}
	return Unknown()
}

// clone returns a shallow copy the caller may mutate.
func (s Scope) clone() Scope {
	out := make(Scope, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Card bounds a data object's row count: Min ≤ rows, and rows ≤ Max
// unless Unbounded. Sources start [0, ∞); limits and constant-false
// filters tighten it; fan-out maps (extract_words) widen it back.
type Card struct {
	Min       int64 `json:"min"`
	Max       int64 `json:"max"`
	Unbounded bool  `json:"unbounded,omitempty"`
}

// CardUnknown is the no-information bound [0, ∞).
func CardUnknown() Card { return Card{Unbounded: true} }

// Empty reports a provably row-free object.
func (c Card) Empty() bool { return !c.Unbounded && c.Max == 0 }

// capMax clamps the upper bound to n (a limit stage).
func (c Card) capMax(n int64) Card {
	out := c
	if out.Min > n {
		out.Min = n
	}
	if out.Unbounded || out.Max > n {
		out.Unbounded = false
		out.Max = n
	}
	return out
}

// dropMin forgets the lower bound (a filter may discard every row).
func (c Card) dropMin() Card { c.Min = 0; return c }

// collapse reports at-least-one-group semantics: groupby and distinct
// emit ≥ 1 row iff their input has ≥ 1 row, and never more rows than
// they read.
func (c Card) collapse() Card {
	if c.Min > 1 {
		c.Min = 1
	}
	return c
}

// addCard saturating-sums two bounds (union).
func addCard(a, b Card) Card {
	out := Card{Min: satAdd(a.Min, b.Min)}
	if a.Unbounded || b.Unbounded {
		out.Unbounded = true
		return out
	}
	out.Max = satAdd(a.Max, b.Max)
	return out
}

// mulCard saturating-multiplies bounds plus slack rows — the sound join
// envelope: an inner join emits ≤ l*r rows, outer joins add up to one
// row per unmatched input row on the preserved sides.
func mulCard(a, b Card) Card {
	if a.Unbounded || b.Unbounded {
		return Card{Unbounded: true}
	}
	return Card{Max: satAdd(satMul(a.Max, b.Max), satAdd(a.Max, b.Max))}
}

func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}
