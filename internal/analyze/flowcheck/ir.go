package flowcheck

import (
	"fmt"
	"strconv"
	"strings"

	"shareinsights/internal/expr"
	"shareinsights/internal/value"
)

// Severity grades an issue; the values align with analyze.Severity so
// the linter can convert by number.
type Severity int

// Severity levels, least severe first.
const (
	Info Severity = iota
	Warning
	Error
)

// Issue is one finding produced by the checker. Rule is the stable
// flowlint rule ID: FL004 keeps its historical coarse-lattice wording;
// FL060–FL064 are the fine-lattice rules documented in docs/TYPES.md.
type Issue struct {
	Rule     string
	Severity Severity
	Message  string
	Hint     string
}

// Expr is one node of the typed IR: the lowered form of an
// internal/expr AST node, annotated with its inferred Type and, when
// provable, its constant value, truthiness and numeric interval.
type Expr struct {
	// Op is "lit", "col", "tuple", a unary operator ("-", "not") or a
	// binary operator token.
	Op string
	// Col is the referenced column name when Op == "col".
	Col string
	// Type is the inferred static type.
	Type Type
	// Const, when non-nil, is the expression's value on every row.
	Const *value.V
	// Truth, when non-nil, is the expression's truthiness on every row —
	// known for some non-constant shapes (interval-proved comparisons).
	Truth *bool
	// Ivl bounds the expression's non-null numeric values.
	Ivl *Interval
	// Args are the lowered operands.
	Args []*Expr
	// Src is the original AST node, for error messages.
	Src expr.Node
}

// checker accumulates issues during one lowering.
type checker struct {
	sc     Scope
	issues []Issue
}

func (c *checker) add(rule string, sev Severity, msg, hint string) {
	c.issues = append(c.issues, Issue{Rule: rule, Severity: sev, Message: msg, Hint: hint})
}

// CheckExpr parses and lowers one expression source against the scope,
// returning the typed root and every issue found. A parse failure
// returns (nil, nil): the task parser already rejected the source as
// FL002, so there is nothing further to report.
func CheckExpr(src string, sc Scope) (*Expr, []Issue) {
	n, err := expr.Parse(src)
	if err != nil {
		return nil, nil
	}
	return CheckNode(n, sc)
}

// CheckNode lowers an already-parsed AST (see CheckExpr).
func CheckNode(n expr.Node, sc Scope) (*Expr, []Issue) {
	c := &checker{sc: sc}
	e := c.lower(n)
	return e, c.issues
}

// setConst records a proven constant value: the type snaps to the
// value's exact type, truthiness follows, and numeric constants carry a
// point interval.
func (e *Expr) setConst(v value.V) {
	e.Const = &v
	e.Type = FromValue(v)
	t := v.Truthy()
	e.Truth = &t
	if v.Kind() == value.Int || v.Kind() == value.Float {
		e.Ivl = point(v.Float())
	}
}

// setTruth records known truthiness for a boolean-typed node.
func (e *Expr) setTruth(t bool) {
	if e.Const == nil {
		e.setConst(value.NewBool(t))
	}
}

// nullOnly reports a non-literal operand that is provably always null —
// the FL062 condition. A literal null written by the author is a
// deliberate null test and exempt.
func nullOnly(e *Expr) bool { return e.Type.Kind == KNone && e.Op != "lit" }

func (c *checker) lower(n expr.Node) *Expr {
	switch t := n.(type) {
	case *expr.Lit:
		e := &Expr{Op: "lit", Src: n, Type: FromValue(t.Val)}
		e.setConst(t.Val)
		return e
	case *expr.Col:
		e := &Expr{Op: "col", Col: t.Name, Src: n, Type: c.sc.TypeOf(t.Name)}
		if f, ok := c.sc[t.Name]; ok {
			if f.Const != nil {
				e.setConst(*f.Const)
			} else if f.Type.Kind == KNone {
				// A null-only column has a known value on every row even
				// without an explicit constant fact.
				e.Const = &value.VNull
				fa := false
				e.Truth = &fa
			}
			if e.Ivl == nil {
				e.Ivl = f.Ivl
			}
		}
		return e
	case *expr.Unary:
		return c.lowerUnary(t)
	case *expr.Tuple:
		e := &Expr{Op: "tuple", Src: n, Type: Unknown()}
		for i, it := range t.Items {
			a := c.lower(it)
			e.Args = append(e.Args, a)
			if i == 0 {
				e.Type = a.Type
			} else {
				e.Type = Join(e.Type, a.Type)
			}
		}
		return e
	case *expr.Binary:
		return c.lowerBinary(t)
	}
	return &Expr{Op: "lit", Src: n, Type: Unknown()}
}

func (c *checker) lowerUnary(t *expr.Unary) *Expr {
	x := c.lower(t.X)
	e := &Expr{Op: t.Op, Src: t, Args: []*Expr{x}}
	if t.Op == "-" {
		// Preserved coarse rule: negating known text is FL004.
		if x.Type.Coarse() == "text" {
			c.add("FL004", Warning,
				fmt.Sprintf("expression type mismatch: negating %s, a text value", t.X), "")
		}
		if x.Type.Kind == KTime {
			c.add("FL060", Error,
				fmt.Sprintf("negating %s, a time value: the result is its negated epoch nanoseconds, not a time", t.X), "")
		}
		if nullOnly(x) {
			c.addNullOnly("-", x)
		}
		// Runtime: a Float operand negates as Float, everything else
		// coerces through Int. Int ⊑ Float keeps the mixed case sound.
		k := KInt
		if x.Type.Kind == KFloat || x.Type.Kind == KAny {
			k = KFloat
		}
		e.Type = Type{Kind: k}
		if x.Const != nil {
			v := *x.Const
			if v.Kind() == value.Float {
				e.setConst(value.NewFloat(-v.Float()))
			} else {
				e.setConst(value.NewInt(-v.Int()))
			}
		}
		return e
	}
	// "not": total over every kind via truthiness.
	e.Type = Type{Kind: KBool}
	if x.Truth != nil {
		e.setTruth(!*x.Truth)
	}
	return e
}

func (c *checker) lowerBinary(t *expr.Binary) *Expr {
	switch t.Op {
	case "and", "&&", "or", "||":
		l, r := c.lower(t.L), c.lower(t.R)
		e := &Expr{Op: t.Op, Src: t, Args: []*Expr{l, r}, Type: Type{Kind: KBool}}
		and := t.Op == "and" || t.Op == "&&"
		lt, rt := l.Truth, r.Truth
		switch {
		case and && ((lt != nil && !*lt) || (rt != nil && !*rt)):
			e.setTruth(false)
		case and && lt != nil && *lt && rt != nil && *rt:
			e.setTruth(true)
		case !and && ((lt != nil && *lt) || (rt != nil && *rt)):
			e.setTruth(true)
		case !and && lt != nil && !*lt && rt != nil && !*rt:
			e.setTruth(false)
		}
		return e
	case "<", "<=", ">", ">=", "==", "=", "!=":
		l, r := c.lower(t.L), c.lower(t.R)
		return c.compare(t, t.Op, l, r)
	case "in":
		return c.lowerIn(t)
	case "contains":
		l, r := c.lower(t.L), c.lower(t.R)
		e := &Expr{Op: t.Op, Src: t, Args: []*Expr{l, r}, Type: Type{Kind: KBool}}
		if l.Type.Coarse() == "number" {
			c.add("FL004", Warning,
				fmt.Sprintf("expression type mismatch: 'contains' matches text, but %s is a number", t.L), "")
		}
		if l.Type.Kind == KBool || l.Type.Kind == KTime {
			c.add("FL060", Error,
				fmt.Sprintf("'contains' matches text, but %s is a %s value", t.L, l.Type.Coarse()), "")
		}
		for _, side := range []*Expr{l, r} {
			if nullOnly(side) {
				c.addNullOnly("contains", side)
			}
		}
		if l.Const != nil && r.Const != nil {
			e.setTruth(strings.Contains(l.Const.Str(), r.Const.Str()))
		}
		return e
	default: // arithmetic: + - * / %
		l, r := c.lower(t.L), c.lower(t.R)
		e := &Expr{Op: t.Op, Src: t, Args: []*Expr{l, r}}
		for _, side := range []struct {
			n expr.Node
			e *Expr
		}{{t.L, l}, {t.R, r}} {
			// Preserved coarse rule: arithmetic on known text or boolean.
			if co := side.e.Type.Coarse(); co == "text" || co == "boolean" {
				c.add("FL004", Warning,
					fmt.Sprintf("expression type mismatch: arithmetic %q on %s, a %s value", t.Op, side.n, co), "")
			}
			if side.e.Type.Kind == KTime {
				c.add("FL060", Error,
					fmt.Sprintf("arithmetic %q on %s, a time value: times coerce to epoch nanoseconds", t.Op, side.n), "")
			}
			if nullOnly(side.e) {
				c.addNullOnly(t.Op, side.e)
			}
		}
		e.Type = arithType(t.Op, l.Type, r.Type)
		if l.Const != nil && r.Const != nil {
			e.setConst(expr.Arith(t.Op, *l.Const, *r.Const))
		}
		return e
	}
}

func (c *checker) addNullOnly(op string, operand *Expr) {
	c.add("FL062", Error,
		fmt.Sprintf("%q has a null-only operand: %s is provably null on every row", op, operand.Src),
		"the operand's column is never assigned a non-null value; check the producing task")
}

// compare lowers one comparison, preserving the FL004 coarse-conflict
// warning, adding the FL061/FL062 fine rules, and folding verdicts from
// constants and intervals.
func (c *checker) compare(src expr.Node, op string, l, r *Expr) *Expr {
	e := &Expr{Op: op, Src: src, Args: []*Expr{l, r}, Type: Type{Kind: KBool}}
	if CoarseConflict(l.Type, r.Type) {
		c.add("FL004", Warning,
			fmt.Sprintf("expression type mismatch: %q compares %s (%s) with %s (%s)",
				op, l.Src, l.Type.Coarse(), r.Src, r.Type.Coarse()), "")
	}
	c.checkVacuousTimeText(op, l, r)
	c.checkVacuousTimeText(op, r, l)
	if nullOnly(l) || nullOnly(r) {
		// FL062 once per null-only side; the comparison's outcome is
		// determined by null ordering, but folding it here would stack an
		// FL063 on the same root cause, so the verdict is left unknown.
		for _, side := range []*Expr{l, r} {
			if nullOnly(side) {
				c.addNullOnly(op, side)
			}
		}
		return e
	}
	if l.Const != nil && r.Const != nil {
		e.setTruth(cmpOK(op, value.Compare(*l.Const, *r.Const)))
		return e
	}
	if v := intervalVerdict(op, l, r); v != nil {
		e.setTruth(*v)
	} else if v := intervalVerdict(flipCmp(op), r, l); v != nil {
		e.setTruth(*v)
	}
	return e
}

// checkVacuousTimeText is FL061: the coarse lattice exempts text/time
// comparisons because date columns often hold their string forms, but
// when the text side is a known constant that parses as neither a
// timestamp nor a number, value.Compare degrades to kind-tag ordering
// and the comparison can never hold by value.
func (c *checker) checkVacuousTimeText(op string, timeSide, textSide *Expr) {
	if timeSide.Type.Kind != KTime || textSide.Const == nil || textSide.Const.Kind() != value.String {
		return
	}
	s := textSide.Const.Str()
	if _, err := strconv.ParseFloat(strings.TrimSpace(s), 64); err == nil {
		return
	}
	if value.Parse(s).Kind() == value.Time {
		return
	}
	c.add("FL061", Error,
		fmt.Sprintf("comparison %q between %s (time) and %s is vacuous: the text parses as neither a timestamp nor a number, so values are ordered by kind tag only", op, timeSide.Src, textSide.Src),
		"compare against an ISO timestamp such as '2006-01-02'")
}

func (c *checker) lowerIn(t *expr.Binary) *Expr {
	l := c.lower(t.L)
	tup, ok := t.R.(*expr.Tuple)
	if !ok {
		// A single value after `in` degrades to equality at runtime; the
		// legacy linter did not coarse-check this shape, so neither do we.
		r := c.lower(t.R)
		e := &Expr{Op: "in", Src: t, Args: []*Expr{l, r}, Type: Type{Kind: KBool}}
		if nullOnly(l) || nullOnly(r) {
			for _, side := range []*Expr{l, r} {
				if nullOnly(side) {
					c.addNullOnly("in", side)
				}
			}
			return e
		}
		if l.Const != nil && r.Const != nil {
			e.setTruth(value.Compare(*l.Const, *r.Const) == 0)
		}
		return e
	}
	e := &Expr{Op: "in", Src: t, Args: []*Expr{l}, Type: Type{Kind: KBool}}
	if nullOnly(l) {
		c.addNullOnly("in", l)
	}
	allConst := l.Const != nil && !nullOnly(l)
	matched := false
	for _, it := range tup.Items {
		a := c.lower(it)
		e.Args = append(e.Args, a)
		if CoarseConflict(l.Type, a.Type) {
			c.add("FL004", Warning,
				fmt.Sprintf("expression type mismatch: 'in' list item %s (%s) can never match %s (%s)",
					it, a.Type.Coarse(), t.L, l.Type.Coarse()), "")
		}
		if a.Const == nil {
			allConst = false
		} else if l.Const != nil && value.Equal(*l.Const, *a.Const) {
			matched = true
		}
	}
	if l.Const != nil && !nullOnly(l) {
		// A matching constant item proves the whole test true regardless
		// of the remaining items; proving it false needs every item known.
		if matched {
			e.setTruth(true)
		} else if allConst {
			e.setTruth(false)
		}
	}
	return e
}

// arithType mirrors expr.Arith's result kinds on the lattice. '+' over
// two definite non-null strings is concatenation; any possibly-string or
// unknown operand forces the float envelope (lossy string coercion can
// promote); division may return null (zero divisor); modulo is integral
// and may return null.
func arithType(op string, l, r Type) Type {
	// Operand nullability does NOT propagate: Arith coerces a null
	// operand to 0 (value.Int/Float return 0 for null), so `+ - *` never
	// produce null. Only division by zero (and a fractional modulo
	// divisor truncating to an int64 zero) yields null.
	maybeStr := func(t Type) bool { return t.Kind == KString || t.Kind == KAny }
	if op == "+" && maybeStr(l) && maybeStr(r) {
		if l.Kind == KString && r.Kind == KString && !l.Nullable && !r.Nullable {
			// Both sides are runtime Strings on every row: concatenation.
			return Type{Kind: KString}
		}
		// Concatenation when both cells are strings, numeric addition
		// (possibly on null-coerced zeros) otherwise — either way non-null.
		return Type{Kind: KAny}
	}
	k := KInt
	switch {
	case l.Kind == KFloat || r.Kind == KFloat,
		l.Kind == KString || r.Kind == KString,
		l.Kind == KAny || r.Kind == KAny:
		k = KFloat
	}
	switch op {
	case "/":
		return Type{Kind: k, Nullable: true}
	case "%":
		return Type{Kind: KInt, Nullable: true}
	}
	return Type{Kind: k}
}

func cmpOK(op string, c int) bool {
	switch op {
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	case "==", "=":
		return c == 0
	case "!=":
		return c != 0
	}
	return false
}

// flipCmp mirrors an operator across swapped operands: a < b ⇔ b > a.
func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// exactFloat bounds the range where int64↔float64 conversion is exact;
// interval proofs outside it are declined rather than risk rounding.
const exactFloat = 1 << 53

// intervalVerdict decides `l op r` when l carries an interval, l is a
// non-nullable numeric (nulls order below every value and would flip the
// verdict), and r is a numeric constant.
func intervalVerdict(op string, l, r *Expr) *bool {
	if l.Ivl == nil || l.Type.Nullable || !l.Type.Kind.Numeric() || r.Const == nil {
		return nil
	}
	if k := r.Const.Kind(); k != value.Int && k != value.Float {
		return nil
	}
	cv := r.Const.Float()
	iv := l.Ivl
	if cv > exactFloat || cv < -exactFloat ||
		(iv.HasLo && (iv.Lo > exactFloat || iv.Lo < -exactFloat)) ||
		(iv.HasHi && (iv.Hi > exactFloat || iv.Hi < -exactFloat)) {
		return nil
	}
	yes, no := true, false
	switch op {
	case ">":
		if iv.HasLo && iv.Lo > cv {
			return &yes
		}
		if iv.HasHi && iv.Hi <= cv {
			return &no
		}
	case ">=":
		if iv.HasLo && iv.Lo >= cv {
			return &yes
		}
		if iv.HasHi && iv.Hi < cv {
			return &no
		}
	case "<":
		if iv.HasHi && iv.Hi < cv {
			return &yes
		}
		if iv.HasLo && iv.Lo >= cv {
			return &no
		}
	case "<=":
		if iv.HasHi && iv.Hi <= cv {
			return &yes
		}
		if iv.HasLo && iv.Lo > cv {
			return &no
		}
	case "==", "=":
		if (iv.HasLo && iv.Lo > cv) || (iv.HasHi && iv.Hi < cv) {
			return &no
		}
		if iv.HasLo && iv.HasHi && iv.Lo == cv && iv.Hi == cv {
			return &yes
		}
	case "!=":
		if (iv.HasLo && iv.Lo > cv) || (iv.HasHi && iv.Hi < cv) {
			return &yes
		}
		if iv.HasLo && iv.HasHi && iv.Lo == cv && iv.Hi == cv {
			return &no
		}
	}
	return nil
}

// Verdict classifies a filter expression root: "always_true",
// "always_false", or "" when the outcome varies by row. FL063 reports
// the constant cases.
func Verdict(root *Expr) string {
	if root == nil || root.Truth == nil {
		return ""
	}
	if *root.Truth {
		return "always_true"
	}
	return "always_false"
}

// RefineFilter returns the scope downstream of a filter whose expression
// lowered to root: AND-conjuncts of the form `col CMP literal` narrow
// the column's interval, strip nullability (null orders below every
// value, so `col > 10` discards null cells), and pin constants for
// exact-string equality.
func RefineFilter(sc Scope, root *Expr) Scope {
	if root == nil {
		return sc
	}
	out := sc.clone()
	refineConjunct(out, root)
	return out
}

func refineConjunct(sc Scope, e *Expr) {
	switch e.Op {
	case "and", "&&":
		refineConjunct(sc, e.Args[0])
		refineConjunct(sc, e.Args[1])
	case "col":
		// A bare column conjunct keeps only truthy cells, and null is
		// never truthy.
		if f, ok := sc[e.Col]; ok && f.Type.Kind != KNone {
			f.Type.Nullable = false
			sc[e.Col] = f
		}
	case "<", "<=", ">", ">=", "==", "=":
		col, cst, op := normalizeCmp(e)
		if col == "" {
			return
		}
		refineColCmp(sc, col, cst, op)
	}
}

// normalizeCmp extracts the column side and constant side of a
// comparison, flipping the operator when the column is on the right.
func normalizeCmp(e *Expr) (col string, cst value.V, op string) {
	l, r := e.Args[0], e.Args[1]
	if l.Op == "col" && r.Const != nil {
		return l.Col, *r.Const, e.Op
	}
	if r.Op == "col" && l.Const != nil {
		return r.Col, *l.Const, flipCmp(e.Op)
	}
	return "", value.VNull, ""
}

func refineColCmp(sc Scope, col string, cst value.V, op string) {
	f, tracked := sc[col]
	if !tracked {
		f.Type = Unknown()
	} else if f.Type.Kind == KNone {
		return // null-only column: FL062 territory, nothing to narrow
	}
	if cst.IsNull() {
		switch op {
		case "==", "=":
			// Only null cells survive a `col == null` filter.
			f.Type = Type{Kind: KNone, Nullable: true}
			f.Const = &value.VNull
			f.Ivl = nil
			sc[col] = f
		case ">":
			// Compare(v, null) is +1 for every non-null v: the filter
			// keeps exactly the non-null cells.
			f.Type.Nullable = false
			sc[col] = f
		}
		return
	}
	// Null cells order below every non-null constant, so >, >= and ==
	// discard them.
	if op == ">" || op == ">=" || op == "==" || op == "=" {
		f.Type.Nullable = false
	}
	switch cst.Kind() {
	case value.Int, value.Float:
		if f.Type.Kind.Numeric() && !f.Type.Nullable {
			cf := cst.Float()
			switch op {
			case ">", ">=":
				f.Ivl = intersect(f.Ivl, &Interval{Lo: cf, HasLo: true})
			case "<", "<=":
				f.Ivl = intersect(f.Ivl, &Interval{Hi: cf, HasHi: true})
			case "==", "=":
				f.Ivl = intersect(f.Ivl, point(cf))
			}
		}
	case value.String:
		// A non-numeric string constant can only compare equal to its
		// exact string form (value.Compare's numeric-string path does not
		// apply), so equality pins the column.
		if op == "==" || op == "=" {
			if _, err := strconv.ParseFloat(strings.TrimSpace(cst.Str()), 64); err != nil {
				v := cst
				f.Type = Type{Kind: KString}
				f.Const = &v
				f.Ivl = nil
			}
		}
	}
	sc[col] = f
}
