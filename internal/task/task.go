// Package task implements the ShareInsights task library: the
// transformations configured in a flow file's T section and applied by
// flows and widget-interaction pipelines.
//
// A TaskDef from the flow file is *parsed* into a Spec (checking its
// configuration), and a Spec is *bound* against the schemas of its input
// data objects when a pipeline is compiled — the contextual check of
// §3.3 ("the task configuration assumes that it will be used in a
// context where the data source has a rating column"). Bound specs are
// executed by the engines in internal/engine.
//
// The package also hosts the extension registries of §4.2: user-defined
// task types, map operators and aggregates are registered through the
// same API the built-ins use and are indistinguishable from them — the
// property the paper's hackathon observation 2 singles out.
package task

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"shareinsights/internal/flowfile"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
)

// Input describes one pipeline input at bind time: the data object's
// name (joins project columns as <object>_<column>) and schema.
type Input struct {
	// Name is the data-object name.
	Name string
	// Schema is the object's column structure.
	Schema *schema.Schema
}

// Spec is a parsed, type-checked task configuration.
type Spec interface {
	// Type returns the task type name (filter_by, groupby, …).
	Type() string
	// Out computes the output schema for the given inputs, failing when
	// a required column is missing — the bind-time contextual check.
	Out(in []Input) (*schema.Schema, error)
	// Exec runs the task on materialized inputs. Engines may use faster
	// paths (see RowLocal and Grouped) but Exec is the reference
	// semantics every implementation must match.
	Exec(env *Env, in []*table.Table, names []string) (*table.Table, error)
}

// RowFn transforms one input row, emitting zero or more output rows.
type RowFn func(r table.Row, emit func(table.Row)) error

// RowLocal is implemented by specs whose work is independent per row
// (filter, map). The batch engine shards such tasks across workers.
type RowLocal interface {
	Spec
	// BindRow returns the per-row transform and its output schema.
	BindRow(env *Env, in Input) (RowFn, *schema.Schema, error)
}

// Grouper accumulates rows into groups; Merge folds a peer accumulator
// in, enabling parallel partial aggregation.
type Grouper interface {
	Add(r table.Row) error
	Merge(other Grouper) error
	Result() (*table.Table, error)
}

// Grouped is implemented by specs with combinable aggregation semantics.
type Grouped interface {
	Spec
	NewGrouper(env *Env, in Input) (Grouper, error)
}

// Env carries everything a task may need at run time.
type Env struct {
	// Resources resolves auxiliary files referenced by task
	// configuration (dictionaries such as players.txt). Keys are the
	// names used in the flow file.
	Resources map[string][]byte
	// WidgetValue returns the current selection of a widget column for
	// interaction filters (§3.5.1); ok is false when the widget has no
	// selection, in which case the filter passes everything through.
	WidgetValue func(widget, column string) (vals []string, ok bool)
	// Parallelism caps worker fan-out in the batch engine; <= 0 means
	// GOMAXPROCS.
	Parallelism int
	// Trace, when non-nil, receives one call per executed task with the
	// task type and output cardinality. The telemetry pipeline behind
	// the Figure 31 usage dashboard hangs off this hook.
	Trace func(taskType string, outRows int)
}

// Resource returns a named auxiliary resource.
func (e *Env) Resource(name string) ([]byte, bool) {
	if e == nil || e.Resources == nil {
		return nil, false
	}
	b, ok := e.Resources[name]
	return b, ok
}

func (e *Env) trace(taskType string, rows int) {
	if e != nil && e.Trace != nil {
		e.Trace(taskType, rows)
	}
}

// ---------------------------------------------------------------------
// Registry

// Parser turns a task configuration block into a Spec.
type Parser func(cfg *flowfile.Node) (Spec, error)

// Registry maps task type names to parsers. The zero value is unusable;
// use NewRegistry, which pre-loads the platform task library.
type Registry struct {
	mu      sync.RWMutex
	parsers map[string]Parser
	builtin map[string]bool
}

// NewRegistry returns a registry pre-loaded with the platform's tasks:
// filter_by, groupby, join, topn, map, parallel, project, sort, distinct,
// union and limit.
func NewRegistry() *Registry {
	r := &Registry{parsers: map[string]Parser{}, builtin: map[string]bool{}}
	for name, p := range map[string]Parser{
		"filter_by": parseFilterBy,
		"groupby":   parseGroupBy,
		"join":      parseJoin,
		"topn":      parseTopN,
		"map":       parseMap,
		"project":   parseProject,
		"sort":      parseSort,
		"distinct":  parseDistinct,
		"union":     parseUnion,
		"limit":     parseLimit,
	} {
		r.parsers[name] = p
		r.builtin[name] = true
	}
	return r
}

// Register adds a task type. Registering over a platform task is
// rejected so user extensions cannot silently change pipeline semantics.
func (r *Registry) Register(name string, p Parser) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.builtin[name] {
		return fmt.Errorf("task: cannot replace platform task type %q", name)
	}
	r.parsers[name] = p
	return nil
}

// Types lists the registered task types, sorted.
func (r *Registry) Types() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.parsers))
	for n := range r.parsers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Parse resolves one flow-file task definition. The parallel composite
// needs access to sibling definitions, so Parse receives the whole file.
func (r *Registry) Parse(f *flowfile.File, def *flowfile.TaskDef) (Spec, error) {
	return r.parseNamed(f, def, nil)
}

func (r *Registry) parseNamed(f *flowfile.File, def *flowfile.TaskDef, stack []string) (Spec, error) {
	for _, s := range stack {
		if s == def.Name {
			return nil, fmt.Errorf("task %q: parallel composition cycle via %s", def.Name, strings.Join(stack, " -> "))
		}
	}
	if def.Type == "parallel" {
		return r.parseParallel(f, def, append(stack, def.Name))
	}
	r.mu.RLock()
	p, ok := r.parsers[def.Type]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("task %q: unknown type %q (registered: %s)", def.Name, def.Type, strings.Join(r.Types(), ", "))
	}
	spec, err := p(def.Config)
	if err != nil {
		return nil, fmt.Errorf("task %q: %w", def.Name, err)
	}
	return spec, nil
}

// singleInput enforces the one-input shape shared by most tasks.
func singleInput(typ string, in []Input) (Input, error) {
	if len(in) != 1 {
		return Input{}, fmt.Errorf("%s: expected 1 input, got %d", typ, len(in))
	}
	return in[0], nil
}

// execRowLocal is the shared Bulk implementation for RowLocal specs.
func execRowLocal(s RowLocal, env *Env, in []*table.Table, names []string) (*table.Table, error) {
	t, name, err := oneTable(s.Type(), in, names)
	if err != nil {
		return nil, err
	}
	fn, out, err := s.BindRow(env, Input{Name: name, Schema: t.Schema()})
	if err != nil {
		return nil, err
	}
	res := table.New(out)
	emit := func(r table.Row) { res.Append(r) }
	for _, r := range t.Rows() {
		if err := fn(r, emit); err != nil {
			return nil, err
		}
	}
	env.trace(s.Type(), res.Len())
	return res, nil
}

func oneTable(typ string, in []*table.Table, names []string) (*table.Table, string, error) {
	if len(in) != 1 {
		return nil, "", fmt.Errorf("%s: expected 1 input, got %d", typ, len(in))
	}
	name := ""
	if len(names) > 0 {
		name = names[0]
	}
	return in[0], name, nil
}

// inputsOf converts tables+names into bind-time Inputs.
func inputsOf(in []*table.Table, names []string) []Input {
	out := make([]Input, len(in))
	for i, t := range in {
		n := ""
		if i < len(names) {
			n = names[i]
		}
		out[i] = Input{Name: n, Schema: t.Schema()}
	}
	return out
}
