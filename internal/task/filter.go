package task

import (
	"fmt"

	"shareinsights/internal/expr"
	"shareinsights/internal/flowfile"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
	"shareinsights/internal/value"
)

// Selection is a widget's current selection, as consumed by interaction
// filters. Range selections (date sliders) carry [lo, hi]; discrete
// selections carry the chosen values.
type Selection struct {
	// Values are the selected values (display form).
	Values []string
	// Range marks an interval selection: Values[0]..Values[1] inclusive.
	Range bool
}

// FilterSpec implements the filter_by task (Figure 7 and Figure 15). It
// has two modes:
//
//   - expression mode: `filter_expression: rating < 3` keeps rows whose
//     expression evaluates truthy;
//   - interaction mode: `filter_by: [cols]` with `filter_source:
//     W.widget` and `filter_val: [widget columns]` keeps rows whose
//     column values match the widget's current selection (§3.5.1). With
//     no selection the filter passes everything — the dashboard's
//     initial render.
type FilterSpec struct {
	// Expression is the filter expression source (expression mode).
	Expression string
	// By are the data columns to filter (interaction mode).
	By []string
	// SourceWidget is the widget whose selection feeds the filter.
	SourceWidget string
	// Val are the widget columns providing values, aligned with By;
	// empty entries default to the By column.
	Val []string
}

func parseFilterBy(cfg *flowfile.Node) (Spec, error) {
	s := &FilterSpec{
		Expression: cfg.Str("filter_expression"),
		By:         cfg.StrList("filter_by"),
		Val:        cfg.StrList("filter_val"),
	}
	if src := cfg.Str("filter_source"); src != "" {
		ref, err := flowfile.ParseRef(src)
		if err != nil {
			return nil, fmt.Errorf("filter_by: bad filter_source: %w", err)
		}
		if ref.Section != "W" {
			return nil, fmt.Errorf("filter_by: filter_source %s must be a widget", ref)
		}
		s.SourceWidget = ref.Name
	}
	if s.Expression == "" && len(s.By) == 0 {
		return nil, fmt.Errorf("filter_by: need filter_expression or filter_by columns")
	}
	if s.Expression != "" {
		if _, err := expr.Parse(s.Expression); err != nil {
			return nil, err
		}
	}
	if len(s.By) > 0 && s.SourceWidget == "" {
		return nil, fmt.Errorf("filter_by: filter_by columns need a filter_source widget")
	}
	if len(s.Val) > 0 && len(s.Val) != len(s.By) {
		return nil, fmt.Errorf("filter_by: filter_val has %d entries for %d filter_by columns", len(s.Val), len(s.By))
	}
	return s, nil
}

// Type implements Spec.
func (s *FilterSpec) Type() string { return "filter_by" }

// Out implements Spec: filters preserve columns.
func (s *FilterSpec) Out(in []Input) (*schema.Schema, error) {
	one, err := singleInput("filter_by", in)
	if err != nil {
		return nil, err
	}
	if s.Expression != "" {
		cols, err := expr.ReferencedColumns(s.Expression)
		if err != nil {
			return nil, err
		}
		if _, err := one.Schema.Require(cols...); err != nil {
			return nil, err
		}
	}
	if _, err := one.Schema.Require(s.By...); err != nil {
		return nil, err
	}
	return one.Schema, nil
}

// BindRow implements RowLocal.
func (s *FilterSpec) BindRow(env *Env, in Input) (RowFn, *schema.Schema, error) {
	out, err := s.Out([]Input{in})
	if err != nil {
		return nil, nil, err
	}
	var preds []func(table.Row) bool
	if s.Expression != "" {
		ev, err := expr.Compile(s.Expression, in.Schema)
		if err != nil {
			return nil, nil, err
		}
		preds = append(preds, func(r table.Row) bool { return ev(r).Truthy() })
	}
	for i, col := range s.By {
		idx := in.Schema.Index(col)
		valCol := col
		if i < len(s.Val) && s.Val[i] != "" {
			valCol = s.Val[i]
		}
		pred, err := s.selectionPred(env, idx, valCol)
		if err != nil {
			return nil, nil, err
		}
		if pred != nil {
			preds = append(preds, pred)
		}
	}
	fn := func(r table.Row, emit func(table.Row)) error {
		for _, p := range preds {
			if !p(r) {
				return nil
			}
		}
		emit(r)
		return nil
	}
	return fn, out, nil
}

// selectionPred builds the predicate for one interaction column from the
// widget's current selection; nil means no selection (pass-through).
func (s *FilterSpec) selectionPred(env *Env, idx int, widgetCol string) (func(table.Row) bool, error) {
	if env == nil || env.WidgetValue == nil {
		return nil, nil
	}
	vals, ok := env.WidgetValue(s.SourceWidget, widgetCol)
	if !ok || len(vals) == 0 {
		return nil, nil
	}
	sel := parseSelection(vals)
	if sel.Range && len(sel.Values) >= 2 {
		lo := value.Parse(sel.Values[0])
		hi := value.Parse(sel.Values[1])
		return func(r table.Row) bool {
			v := normalizeForCompare(r[idx], lo)
			return value.Compare(v, lo) >= 0 && value.Compare(v, hi) <= 0
		}, nil
	}
	set := make(map[string]bool, len(sel.Values))
	for _, v := range sel.Values {
		set[v] = true
	}
	return func(r table.Row) bool { return set[r[idx].String()] }, nil
}

// parseSelection decodes the wire form of a widget selection: a leading
// "range:" marker flags an interval (sliders with range: true).
func parseSelection(vals []string) Selection {
	if len(vals) > 0 && vals[0] == "range:" {
		return Selection{Values: vals[1:], Range: true}
	}
	return Selection{Values: vals}
}

// normalizeForCompare aligns a cell with the selection's kind so that
// date strings in data compare against time-typed slider bounds.
func normalizeForCompare(v, bound value.V) value.V {
	if bound.Kind() == value.Time && v.Kind() == value.String {
		return value.Parse(v.Str())
	}
	return v
}

// Exec implements Spec.
func (s *FilterSpec) Exec(env *Env, in []*table.Table, names []string) (*table.Table, error) {
	return execRowLocal(s, env, in, names)
}
