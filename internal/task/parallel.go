package task

import (
	"fmt"

	"shareinsights/internal/flowfile"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
)

// ParallelSpec implements the parallel composite (Figure 20): several
// row-local sub-tasks applied to the same input, each contributing its
// output columns. Semantically the composition is sequential — each
// sub-task sees the columns added by its predecessors — while engines
// are free to fuse the chain into one pass and shard it across workers,
// which is what "in parallel" buys on the cluster.
type ParallelSpec struct {
	// Names are the referenced task names, for display.
	Names []string
	// Subs are the resolved sub-specs; all must be RowLocal.
	Subs []RowLocal
}

func (r *Registry) parseParallel(f *flowfile.File, def *flowfile.TaskDef, stack []string) (Spec, error) {
	refs := def.Config.StrList("parallel")
	if len(refs) == 0 {
		return nil, fmt.Errorf("task %q: parallel needs a task list", def.Name)
	}
	s := &ParallelSpec{}
	for _, refText := range refs {
		ref, err := flowfile.ParseRef(refText)
		if err != nil {
			return nil, fmt.Errorf("task %q: %w", def.Name, err)
		}
		if ref.Section != "T" {
			return nil, fmt.Errorf("task %q: parallel entry %s is not a task", def.Name, ref)
		}
		sub, ok := f.Tasks[ref.Name]
		if !ok {
			return nil, fmt.Errorf("task %q: parallel references undefined task T.%s", def.Name, ref.Name)
		}
		spec, err := r.parseNamed(f, sub, stack)
		if err != nil {
			return nil, err
		}
		rl, ok := spec.(RowLocal)
		if !ok {
			return nil, fmt.Errorf("task %q: parallel entry T.%s (%s) is not row-local", def.Name, ref.Name, spec.Type())
		}
		s.Names = append(s.Names, ref.Name)
		s.Subs = append(s.Subs, rl)
	}
	return s, nil
}

// Type implements Spec.
func (s *ParallelSpec) Type() string { return "parallel" }

// Out implements Spec: the schema threads through every sub-task.
func (s *ParallelSpec) Out(in []Input) (*schema.Schema, error) {
	one, err := singleInput("parallel", in)
	if err != nil {
		return nil, err
	}
	cur := one
	for i, sub := range s.Subs {
		out, err := sub.Out([]Input{cur})
		if err != nil {
			return nil, fmt.Errorf("parallel stage %d (T.%s): %w", i+1, s.Names[i], err)
		}
		cur = Input{Name: cur.Name, Schema: out}
	}
	return cur.Schema, nil
}

// BindRow implements RowLocal by fusing the sub-task chain into a single
// per-row function.
func (s *ParallelSpec) BindRow(env *Env, in Input) (RowFn, *schema.Schema, error) {
	fns := make([]RowFn, len(s.Subs))
	cur := in
	for i, sub := range s.Subs {
		fn, out, err := sub.BindRow(env, cur)
		if err != nil {
			return nil, nil, fmt.Errorf("parallel stage %d (T.%s): %w", i+1, s.Names[i], err)
		}
		fns[i] = fn
		cur = Input{Name: cur.Name, Schema: out}
	}
	var chain func(i int, r table.Row, emit func(table.Row)) error
	chain = func(i int, r table.Row, emit func(table.Row)) error {
		if i == len(fns) {
			emit(r)
			return nil
		}
		var inner error
		err := fns[i](r, func(nr table.Row) {
			if e := chain(i+1, nr, emit); e != nil && inner == nil {
				inner = e
			}
		})
		if err != nil {
			return err
		}
		return inner
	}
	fn := func(r table.Row, emit func(table.Row)) error {
		return chain(0, r, emit)
	}
	return fn, cur.Schema, nil
}

// Exec implements Spec.
func (s *ParallelSpec) Exec(env *Env, in []*table.Table, names []string) (*table.Table, error) {
	return execRowLocal(s, env, in, names)
}
