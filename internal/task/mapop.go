package task

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"shareinsights/internal/expr"
	"shareinsights/internal/flowfile"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
	"shareinsights/internal/value"
)

// MapFn computes the values of an operator's output columns for one
// input row. emit may be called zero times (the row is dropped — e.g. a
// tweet mentioning no player), once (plain mapping) or several times
// (fan-out — e.g. extract_words emits one row per word).
type MapFn func(r table.Row, emit func(extra []value.V)) error

// MapOperator is one bound column transformation — the paper's task
// category 1, "transforming a column value into another value" (§4.2).
type MapOperator interface {
	// OutColumns names the columns the operator produces.
	OutColumns() []string
	// Bind compiles the operator against the input schema.
	Bind(env *Env, in *schema.Schema) (MapFn, error)
}

// OperatorFactory parses an operator's configuration from the map task's
// property block.
type OperatorFactory func(cfg *flowfile.Node) (MapOperator, error)

var (
	opMu   sync.RWMutex
	opImpl = map[string]OperatorFactory{
		"date":             newDateOperator,
		"extract":          newExtractOperator,
		"extract_location": newExtractLocationOperator,
		"extract_words":    newExtractWordsOperator,
		"expr":             newExprOperator,
		"upper":            newCaseOperator(strings.ToUpper),
		"lower":            newCaseOperator(strings.ToLower),
		"trim":             newCaseOperator(strings.TrimSpace),
		"concat":           newConcatOperator,
		"replace":          newReplaceOperator,
		"constant":         newConstantOperator,
		"bucket":           newBucketOperator,
	}
)

// RegisterOperator adds a user-defined map operator. Platform operators
// cannot be replaced.
func RegisterOperator(name string, f OperatorFactory) error {
	opMu.Lock()
	defer opMu.Unlock()
	if _, exists := opImpl[name]; exists {
		return fmt.Errorf("task: operator %q already registered", name)
	}
	opImpl[name] = f
	return nil
}

// Operators lists registered map operators, sorted.
func Operators() []string {
	opMu.RLock()
	defer opMu.RUnlock()
	out := make([]string, 0, len(opImpl))
	for n := range opImpl {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MapSpec implements the map task: it applies one operator, producing
// the input columns plus (or overwriting) the operator's output columns.
type MapSpec struct {
	// Operator is the configured operator name, for display.
	Operator string
	op       MapOperator
}

func parseMap(cfg *flowfile.Node) (Spec, error) {
	name := cfg.Str("operator")
	if name == "" {
		return nil, fmt.Errorf("map: missing operator")
	}
	opMu.RLock()
	f, ok := opImpl[name]
	opMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("map: unknown operator %q (have %s)", name, strings.Join(Operators(), ", "))
	}
	op, err := f(cfg)
	if err != nil {
		return nil, fmt.Errorf("map %s: %w", name, err)
	}
	return &MapSpec{Operator: name, op: op}, nil
}

// Type implements Spec.
func (s *MapSpec) Type() string { return "map" }

// OutColumns names the columns the configured operator produces. The
// DAG optimizer consults it when deciding whether a filter commutes with
// this map.
func (s *MapSpec) OutColumns() []string { return s.op.OutColumns() }

// Out implements Spec.
func (s *MapSpec) Out(in []Input) (*schema.Schema, error) {
	one, err := singleInput("map", in)
	if err != nil {
		return nil, err
	}
	return one.Schema.ExtendOrSame(s.op.OutColumns()...), nil
}

// BindRow implements RowLocal.
func (s *MapSpec) BindRow(env *Env, in Input) (RowFn, *schema.Schema, error) {
	out := in.Schema.ExtendOrSame(s.op.OutColumns()...)
	fn, err := s.op.Bind(env, in.Schema)
	if err != nil {
		return nil, nil, err
	}
	// Slot each operator output into the row: existing columns are
	// overwritten in place, new ones appended.
	outCols := s.op.OutColumns()
	slots := make([]int, len(outCols))
	for i, c := range outCols {
		slots[i] = out.Index(c)
	}
	inLen := in.Schema.Len()
	outLen := out.Len()
	rowFn := func(r table.Row, emit func(table.Row)) error {
		return fn(r, func(extra []value.V) {
			nr := make(table.Row, outLen)
			copy(nr, r[:inLen])
			for i, v := range extra {
				nr[slots[i]] = v
			}
			emit(nr)
		})
	}
	return rowFn, out, nil
}

// Exec implements Spec.
func (s *MapSpec) Exec(env *Env, in []*table.Table, names []string) (*table.Table, error) {
	return execRowLocal(s, env, in, names)
}

// ---------------------------------------------------------------------
// date operator

// dateOperator reformats a timestamp column. The paper configures it
// with Java SimpleDateFormat patterns ("E MMM dd HH:mm:ss Z yyyy");
// javaToGoLayout translates those to Go reference layouts.
type dateOperator struct {
	transform string
	inLayout  string
	outLayout string
	output    string
}

func newDateOperator(cfg *flowfile.Node) (MapOperator, error) {
	op := &dateOperator{
		transform: cfg.Str("transform"),
		inLayout:  javaToGoLayout(cfg.Str("input_format")),
		outLayout: javaToGoLayout(cfg.Str("output_format")),
		output:    cfg.Str("output"),
	}
	if op.transform == "" || op.output == "" {
		return nil, fmt.Errorf("date: need transform and output columns")
	}
	if op.outLayout == "" {
		return nil, fmt.Errorf("date: need output_format")
	}
	return op, nil
}

func (op *dateOperator) OutColumns() []string { return []string{op.output} }

func (op *dateOperator) Bind(env *Env, in *schema.Schema) (MapFn, error) {
	idx, err := in.Require(op.transform)
	if err != nil {
		return nil, err
	}
	i := idx[0]
	return func(r table.Row, emit func([]value.V)) error {
		v := r[i]
		var t time.Time
		switch {
		case v.Kind() == value.Time:
			t = v.Time()
		case op.inLayout != "":
			var perr error
			t, perr = time.Parse(op.inLayout, v.Str())
			if perr != nil {
				// Malformed timestamps pass through as null rather than
				// aborting a million-row flow.
				emit([]value.V{value.VNull})
				return nil
			}
		default:
			if p := value.Parse(v.Str()); p.Kind() == value.Time {
				t = p.Time()
			} else {
				emit([]value.V{value.VNull})
				return nil
			}
		}
		emit([]value.V{value.NewString(t.Format(op.outLayout))})
		return nil
	}, nil
}

// javaToGoLayout translates a Java SimpleDateFormat pattern into a Go
// time layout. It covers the tokens the platform's connectors meet:
// yyyy/yy, MMM/MM, dd/d, EEE/E, HH/hh/h, mm, ss, SSS, a, Z/ZZ, z.
func javaToGoLayout(pattern string) string {
	if pattern == "" {
		return ""
	}
	var b strings.Builder
	repl := []struct{ java, golang string }{
		{"yyyy", "2006"}, {"yy", "06"},
		{"MMMM", "January"}, {"MMM", "Jan"}, {"MM", "01"},
		{"dd", "02"},
		{"EEEE", "Monday"}, {"EEE", "Mon"}, {"E", "Mon"},
		{"HH", "15"}, {"hh", "03"}, {"h", "3"},
		{"mm", "04"},
		{"ss", "05"}, {"SSS", "000"},
		{"a", "PM"},
		{"ZZ", "-07:00"}, {"Z", "-0700"}, {"z", "MST"},
	}
	for i := 0; i < len(pattern); {
		matched := false
		for _, r := range repl {
			if strings.HasPrefix(pattern[i:], r.java) {
				b.WriteString(r.golang)
				i += len(r.java)
				matched = true
				break
			}
		}
		if !matched {
			// Single M and d outside multi-char tokens.
			switch pattern[i] {
			case 'M':
				b.WriteByte('1')
			case 'd':
				b.WriteByte('2')
			default:
				b.WriteByte(pattern[i])
			}
			i++
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------
// extract operator

// extractOperator scans a text column for dictionary terms and emits the
// standardized name of every match — the paper's player/team extraction,
// driven by "an user provided dictionary (which maps the multitude of
// player names — abbreviations, nick names etc — to a standardized
// player name)". Rows without any match are dropped.
//
// Dictionary resource format, one entry per line:
//
//	variant => standard
//	variant,standard        (CSV form)
//	term                    (term standardizes to itself)
type extractOperator struct {
	transform string
	dict      string
	output    string
}

func newExtractOperator(cfg *flowfile.Node) (MapOperator, error) {
	op := &extractOperator{
		transform: cfg.Str("transform"),
		dict:      cfg.Str("dict"),
		output:    cfg.Str("output"),
	}
	if op.transform == "" || op.output == "" || op.dict == "" {
		return nil, fmt.Errorf("extract: need transform, dict and output")
	}
	return op, nil
}

func (op *extractOperator) OutColumns() []string { return []string{op.output} }

// ParseDictionary parses a term dictionary resource. Exported because
// the gen package reuses it for building fixtures.
func ParseDictionary(data []byte) map[string]string {
	dict := map[string]string{}
	for _, ln := range strings.Split(string(data), "\n") {
		ln = strings.TrimSpace(ln)
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		switch {
		case strings.Contains(ln, "=>"):
			parts := strings.SplitN(ln, "=>", 2)
			dict[normTerm(parts[0])] = strings.TrimSpace(parts[1])
		case strings.Contains(ln, ","):
			parts := strings.SplitN(ln, ",", 2)
			dict[normTerm(parts[0])] = strings.TrimSpace(parts[1])
		default:
			dict[normTerm(ln)] = ln
		}
	}
	return dict
}

func normTerm(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

func (op *extractOperator) Bind(env *Env, in *schema.Schema) (MapFn, error) {
	idx, err := in.Require(op.transform)
	if err != nil {
		return nil, err
	}
	data, ok := env.Resource(op.dict)
	if !ok {
		return nil, fmt.Errorf("extract: dictionary resource %q not found", op.dict)
	}
	dict := ParseDictionary(data)
	i := idx[0]
	return func(r table.Row, emit func([]value.V)) error {
		seen := map[string]bool{}
		for _, tok := range Tokenize(r[i].Str()) {
			std, ok := dict[tok]
			if !ok {
				// Hashtags and mentions match their bare dictionary
				// entry: "#CSK" finds "csk".
				std, ok = dict[strings.TrimLeft(tok, "#@")]
			}
			if ok && !seen[std] {
				seen[std] = true
				emit([]value.V{value.NewString(std)})
			}
		}
		return nil
	}, nil
}

// ---------------------------------------------------------------------
// extract_location operator

// extractLocationOperator maps free-text location strings to a region
// (state) using a gazetteer resource. Configuration mirrors the paper:
// `match: city`, `country: IND`, plus a `dict` resource of
// "city,state" lines (the platform ships no world gazetteer offline).
// Rows without a recognized city are dropped.
type extractLocationOperator struct {
	transform string
	dict      string
	output    string
	country   string
}

func newExtractLocationOperator(cfg *flowfile.Node) (MapOperator, error) {
	op := &extractLocationOperator{
		transform: cfg.Str("transform"),
		dict:      cfg.Str("dict"),
		output:    cfg.Str("output"),
		country:   cfg.Str("country"),
	}
	if op.dict == "" {
		op.dict = "cities." + strings.ToLower(op.country) + ".csv"
	}
	if op.transform == "" || op.output == "" {
		return nil, fmt.Errorf("extract_location: need transform and output")
	}
	return op, nil
}

func (op *extractLocationOperator) OutColumns() []string { return []string{op.output} }

func (op *extractLocationOperator) Bind(env *Env, in *schema.Schema) (MapFn, error) {
	idx, err := in.Require(op.transform)
	if err != nil {
		return nil, err
	}
	data, ok := env.Resource(op.dict)
	if !ok {
		return nil, fmt.Errorf("extract_location: gazetteer resource %q not found", op.dict)
	}
	gaz := ParseDictionary(data)
	i := idx[0]
	return func(r table.Row, emit func([]value.V)) error {
		for _, tok := range Tokenize(r[i].Str()) {
			if state, ok := gaz[tok]; ok {
				emit([]value.V{value.NewString(state)})
				return nil
			}
		}
		return nil
	}, nil
}

// ---------------------------------------------------------------------
// extract_words operator

// extractWordsOperator tokenizes a text column and emits one row per
// content word — the tag-cloud feed. Stopwords and words shorter than
// three characters are dropped.
type extractWordsOperator struct {
	transform string
	output    string
}

func newExtractWordsOperator(cfg *flowfile.Node) (MapOperator, error) {
	op := &extractWordsOperator{transform: cfg.Str("transform"), output: cfg.Str("output")}
	if op.transform == "" || op.output == "" {
		return nil, fmt.Errorf("extract_words: need transform and output")
	}
	return op, nil
}

func (op *extractWordsOperator) OutColumns() []string { return []string{op.output} }

var stopwords = func() map[string]bool {
	words := strings.Fields(`the and for with that this from are was you your have has had
		not but all can will our out they them his her she him its it's just what when
		who how why where which there here been being were over under very more most
		into than then also about after before during between`)
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return m
}()

func (op *extractWordsOperator) Bind(env *Env, in *schema.Schema) (MapFn, error) {
	idx, err := in.Require(op.transform)
	if err != nil {
		return nil, err
	}
	i := idx[0]
	return func(r table.Row, emit func([]value.V)) error {
		for _, tok := range Tokenize(r[i].Str()) {
			if len(tok) < 3 || stopwords[tok] || strings.HasPrefix(tok, "http") {
				continue
			}
			emit([]value.V{value.NewString(tok)})
		}
		return nil
	}, nil
}

// Tokenize lower-cases text and splits it into alphanumeric tokens.
func Tokenize(s string) []string {
	s = strings.ToLower(s)
	return strings.FieldsFunc(s, func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_' || r == '#' || r == '@' || r == ':' || r == '/' || r == '.')
	})
}

// ---------------------------------------------------------------------
// general-purpose operators

// exprOperator computes one output column from a filter-language
// expression over the row: `operator: expr, expression: a * b, output: c`.
type exprOperator struct {
	source string
	output string
}

func newExprOperator(cfg *flowfile.Node) (MapOperator, error) {
	op := &exprOperator{source: cfg.Str("expression"), output: cfg.Str("output")}
	if op.source == "" || op.output == "" {
		return nil, fmt.Errorf("expr: need expression and output")
	}
	if _, err := expr.Parse(op.source); err != nil {
		return nil, err
	}
	return op, nil
}

func (op *exprOperator) OutColumns() []string { return []string{op.output} }

func (op *exprOperator) Bind(env *Env, in *schema.Schema) (MapFn, error) {
	ev, err := expr.Compile(op.source, in)
	if err != nil {
		return nil, err
	}
	return func(r table.Row, emit func([]value.V)) error {
		emit([]value.V{ev(r)})
		return nil
	}, nil
}

// caseOperator applies a string function in place or to an output column.
type caseOperator struct {
	transform string
	output    string
	fn        func(string) string
}

func newCaseOperator(fn func(string) string) OperatorFactory {
	return func(cfg *flowfile.Node) (MapOperator, error) {
		op := &caseOperator{transform: cfg.Str("transform"), output: cfg.Str("output"), fn: fn}
		if op.transform == "" {
			return nil, fmt.Errorf("need transform column")
		}
		if op.output == "" {
			op.output = op.transform
		}
		return op, nil
	}
}

func (op *caseOperator) OutColumns() []string { return []string{op.output} }

func (op *caseOperator) Bind(env *Env, in *schema.Schema) (MapFn, error) {
	idx, err := in.Require(op.transform)
	if err != nil {
		return nil, err
	}
	i := idx[0]
	return func(r table.Row, emit func([]value.V)) error {
		emit([]value.V{value.NewString(op.fn(r[i].Str()))})
		return nil
	}, nil
}

// concatOperator joins several columns with a separator.
type concatOperator struct {
	transform []string
	sep       string
	output    string
}

func newConcatOperator(cfg *flowfile.Node) (MapOperator, error) {
	op := &concatOperator{
		transform: cfg.StrList("transform"),
		sep:       cfg.Str("separator"),
		output:    cfg.Str("output"),
	}
	if len(op.transform) == 0 || op.output == "" {
		return nil, fmt.Errorf("concat: need transform columns and output")
	}
	return op, nil
}

func (op *concatOperator) OutColumns() []string { return []string{op.output} }

func (op *concatOperator) Bind(env *Env, in *schema.Schema) (MapFn, error) {
	idx, err := in.Require(op.transform...)
	if err != nil {
		return nil, err
	}
	return func(r table.Row, emit func([]value.V)) error {
		parts := make([]string, len(idx))
		for i, j := range idx {
			parts[i] = r[j].String()
		}
		emit([]value.V{value.NewString(strings.Join(parts, op.sep))})
		return nil
	}, nil
}

// replaceOperator substitutes text in a column.
type replaceOperator struct {
	transform string
	old, new  string
	output    string
}

func newReplaceOperator(cfg *flowfile.Node) (MapOperator, error) {
	op := &replaceOperator{
		transform: cfg.Str("transform"),
		old:       cfg.Str("old"),
		new:       cfg.Str("new"),
		output:    cfg.Str("output"),
	}
	if op.transform == "" || op.old == "" {
		return nil, fmt.Errorf("replace: need transform and old")
	}
	if op.output == "" {
		op.output = op.transform
	}
	return op, nil
}

func (op *replaceOperator) OutColumns() []string { return []string{op.output} }

func (op *replaceOperator) Bind(env *Env, in *schema.Schema) (MapFn, error) {
	idx, err := in.Require(op.transform)
	if err != nil {
		return nil, err
	}
	i := idx[0]
	return func(r table.Row, emit func([]value.V)) error {
		emit([]value.V{value.NewString(strings.ReplaceAll(r[i].Str(), op.old, op.new))})
		return nil
	}, nil
}

// bucketOperator quantizes a numeric column: floor(v / width) * width.
// Histogram feeds (activity by hour, sizes by kilobyte) use it.
type bucketOperator struct {
	transform string
	output    string
	width     float64
}

func newBucketOperator(cfg *flowfile.Node) (MapOperator, error) {
	op := &bucketOperator{transform: cfg.Str("transform"), output: cfg.Str("output")}
	if op.transform == "" {
		return nil, fmt.Errorf("bucket: need transform column")
	}
	if op.output == "" {
		op.output = op.transform
	}
	w := cfg.Str("width")
	if w == "" {
		op.width = 1
	} else {
		v := value.Parse(w)
		op.width = v.Float()
	}
	if op.width <= 0 {
		return nil, fmt.Errorf("bucket: width must be positive, got %q", w)
	}
	return op, nil
}

func (op *bucketOperator) OutColumns() []string { return []string{op.output} }

func (op *bucketOperator) Bind(env *Env, in *schema.Schema) (MapFn, error) {
	idx, err := in.Require(op.transform)
	if err != nil {
		return nil, err
	}
	i := idx[0]
	return func(r table.Row, emit func([]value.V)) error {
		v := r[i]
		if v.IsNull() {
			emit([]value.V{value.VNull})
			return nil
		}
		b := math.Floor(v.Float()/op.width) * op.width
		if b == math.Trunc(b) && op.width == math.Trunc(op.width) {
			emit([]value.V{value.NewInt(int64(b))})
		} else {
			emit([]value.V{value.NewFloat(b)})
		}
		return nil
	}, nil
}

// constantOperator adds a fixed-value column.
type constantOperator struct {
	output string
	val    value.V
}

func newConstantOperator(cfg *flowfile.Node) (MapOperator, error) {
	op := &constantOperator{output: cfg.Str("output"), val: value.Parse(cfg.Str("value"))}
	if op.output == "" {
		return nil, fmt.Errorf("constant: need output")
	}
	return op, nil
}

func (op *constantOperator) OutColumns() []string { return []string{op.output} }

func (op *constantOperator) Bind(env *Env, in *schema.Schema) (MapFn, error) {
	return func(r table.Row, emit func([]value.V)) error {
		emit([]value.V{op.val})
		return nil
	}, nil
}
