package task

import (
	"strings"
	"testing"

	"shareinsights/internal/table"
	"shareinsights/internal/value"
)

func TestCaseOperators(t *testing.T) {
	in := mkTable(t, "name", []any{"  Pig  "})
	cases := []struct {
		op, want string
	}{
		{"upper", "  PIG  "},
		{"lower", "  pig  "},
		{"trim", "Pig"},
	}
	for _, c := range cases {
		spec := parseSpec(t, "x:\n  type: map\n  operator: "+c.op+"\n  transform: name\n  output: out\n")
		got, err := spec.Exec(&Env{}, []*table.Table{in}, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.op, err)
		}
		if got.Cell(0, "out").Str() != c.want {
			t.Errorf("%s = %q, want %q", c.op, got.Cell(0, "out").Str(), c.want)
		}
	}
}

func TestConcatReplaceConstant(t *testing.T) {
	in := mkTable(t, "first,last", []any{"ada", "lovelace"})
	spec := parseSpec(t, `
c:
  type: map
  operator: concat
  transform: [first, last]
  separator: ' '
  output: full
`)
	out, err := spec.Exec(&Env{}, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cell(0, "full").Str() != "ada lovelace" {
		t.Errorf("concat = %q", out.Cell(0, "full").Str())
	}

	spec = parseSpec(t, `
r:
  type: map
  operator: replace
  transform: first
  old: a
  new: o
`)
	out, err = spec.Exec(&Env{}, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cell(0, "first").Str() != "odo" {
		t.Errorf("replace = %q", out.Cell(0, "first").Str())
	}

	spec = parseSpec(t, `
k:
  type: map
  operator: constant
  output: source
  value: '42'
`)
	out, err = spec.Exec(&Env{}, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cell(0, "source").Int() != 42 {
		t.Errorf("constant = %v", out.Cell(0, "source"))
	}
}

func TestOperatorConfigErrors(t *testing.T) {
	bad := []string{
		"x:\n  type: map\n  operator: nope\n",
		"x:\n  type: map\n  operator: date\n  transform: a\n",                 // no output_format/output
		"x:\n  type: map\n  operator: extract\n  transform: a\n  output: b\n", // no dict
		"x:\n  type: map\n  operator: concat\n  output: b\n",
		"x:\n  type: map\n  operator: replace\n  transform: a\n",
		"x:\n  type: map\n  operator: constant\n  value: v\n",
		"x:\n  type: map\n  operator: expr\n  output: b\n",
		"x:\n  type: map\n  operator: expr\n  expression: ((\n  output: b\n",
		"x:\n  type: map\n",
	}
	for _, src := range bad {
		if _, err := parseSpec2(src); err == nil {
			t.Errorf("config should fail:\n%s", src)
		}
	}
}

func TestRemainingAggregates(t *testing.T) {
	spec := parseSpec(t, `
g:
  type: groupby
  groupby: [k]
  aggregates:
    - operator: min
      apply_on: v
      out_field: lo
    - operator: max
      apply_on: v
      out_field: hi
    - operator: first
      apply_on: tag
      out_field: first_tag
    - operator: last
      apply_on: tag
      out_field: last_tag
`)
	in := mkTable(t, "k,v,tag",
		[]any{"a", 3, "x"}, []any{"a", 1, "y"}, []any{"a", 2, "z"})
	out, err := spec.Exec(&Env{}, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cell(0, "lo").Int() != 1 || out.Cell(0, "hi").Int() != 3 {
		t.Errorf("min/max wrong:\n%s", out.Format(0))
	}
	if out.Cell(0, "first_tag").Str() != "x" || out.Cell(0, "last_tag").Str() != "z" {
		t.Errorf("first/last wrong:\n%s", out.Format(0))
	}
}

func TestAggregateNullHandling(t *testing.T) {
	spec := parseSpec(t, `
g:
  type: groupby
  groupby: [k]
  aggregates:
    - operator: avg
      apply_on: v
      out_field: mean
    - operator: min
      apply_on: v
      out_field: lo
    - operator: count_distinct
      apply_on: v
      out_field: nd
`)
	in := mkTable(t, "k,v", []any{"a", nil}, []any{"a", 4}, []any{"a", nil}, []any{"a", 4})
	out, err := spec.Exec(&Env{}, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// avg and min skip nulls; count_distinct counts null as a value.
	if out.Cell(0, "mean").Float() != 4 || out.Cell(0, "lo").Int() != 4 {
		t.Errorf("null-skipping aggregates wrong:\n%s", out.Format(0))
	}
	if out.Cell(0, "nd").Int() != 2 {
		t.Errorf("count_distinct = %v (null + 4)", out.Cell(0, "nd"))
	}
	// All-null group yields null results for skipping aggregates.
	in2 := mkTable(t, "k,v", []any{"a", nil})
	out2, err := spec.Exec(&Env{}, []*table.Table{in2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out2.Cell(0, "mean").IsNull() || !out2.Cell(0, "lo").IsNull() {
		t.Errorf("all-null group should be null:\n%s", out2.Format(0))
	}
}

func TestGroupByConfigErrors(t *testing.T) {
	bad := []string{
		"g:\n  type: groupby\n",
		"g:\n  type: groupby\n  groupby: [k]\n  aggregates:\n    - apply_on: v\n",
		"g:\n  type: groupby\n  groupby: [k]\n  aggregates:\n    - operator: nope\n      apply_on: v\n",
		"g:\n  type: groupby\n  groupby: [k]\n  aggregates:\n    - operator: sum\n",
	}
	for _, src := range bad {
		if _, err := parseSpec2(src); err == nil {
			t.Errorf("config should fail:\n%s", src)
		}
	}
}

func TestJoinConfigErrors(t *testing.T) {
	bad := []string{
		"j:\n  type: join\n  left: l\n  right: r by k\n",
		"j:\n  type: join\n  left: l by a\n  right: r by (x, y)\n",
		"j:\n  type: join\n  left: l by a\n  right: r by b\n  join_condition: sideways\n",
	}
	for _, src := range bad {
		if _, err := parseSpec2(src); err == nil {
			t.Errorf("config should fail:\n%s", src)
		}
	}
	// Project referencing a nonexistent qualified column fails at bind.
	spec := parseSpec(t, `
j:
  type: join
  left: l by k
  right: r by k
  project:
    l_ghost: out
`)
	l := mkTable(t, "k", []any{1})
	r := mkTable(t, "k", []any{1})
	if _, err := spec.Exec(&Env{}, []*table.Table{l, r}, []string{"l", "r"}); err == nil || !strings.Contains(err.Error(), "l_ghost") {
		t.Errorf("bad project error = %v", err)
	}
	// Mismatched input names.
	if _, err := spec.Exec(&Env{}, []*table.Table{l, r}, []string{"x", "y"}); err == nil {
		t.Error("mismatched input names should fail")
	}
}

func TestTopNConfigErrors(t *testing.T) {
	bad := []string{
		"t:\n  type: topn\n  groupby: [k]\n  limit: 5\n",
		"t:\n  type: topn\n  groupby: [k]\n  orderby_column: [v DESC]\n",
		"t:\n  type: topn\n  groupby: [k]\n  orderby_column: [v SIDEWAYS]\n  limit: 5\n",
		"t:\n  type: topn\n  groupby: [k]\n  orderby_column: [v DESC]\n  limit: 0\n",
	}
	for _, src := range bad {
		if _, err := parseSpec2(src); err == nil {
			t.Errorf("config should fail:\n%s", src)
		}
	}
}

func TestDescribe(t *testing.T) {
	specs := map[string]string{
		"f:\n  type: filter_by\n  filter_expression: v > 1\n":                        "filter_by v > 1",
		"g:\n  type: groupby\n  groupby: [a, b]\n":                                   "groupby a,b",
		"m:\n  type: map\n  operator: upper\n  transform: a\n":                       "map upper",
		"t:\n  type: topn\n  groupby: [a]\n  orderby_column: [v DESC]\n  limit: 3\n": "topn 3",
	}
	for src, want := range specs {
		sp, err := parseSpec2(src)
		if err != nil {
			t.Fatal(err)
		}
		if got := Describe(sp); !strings.Contains(got, want) {
			t.Errorf("Describe = %q, want contains %q", got, want)
		}
	}
}

func TestFilterConfigErrors(t *testing.T) {
	bad := []string{
		"f:\n  type: filter_by\n",
		"f:\n  type: filter_by\n  filter_by: [a]\n", // no filter_source
		"f:\n  type: filter_by\n  filter_by: [a]\n  filter_source: T.x\n  filter_val: [t]\n",
		"f:\n  type: filter_by\n  filter_by: [a, b]\n  filter_source: W.w\n  filter_val: [t]\n",
		"f:\n  type: filter_by\n  filter_expression: (((\n",
	}
	for _, src := range bad {
		if _, err := parseSpec2(src); err == nil {
			t.Errorf("config should fail:\n%s", src)
		}
	}
}

func TestEnvResourceAndTraceNil(t *testing.T) {
	var env *Env
	if _, ok := env.Resource("x"); ok {
		t.Error("nil env should have no resources")
	}
	env2 := &Env{}
	if _, ok := env2.Resource("x"); ok {
		t.Error("empty env should have no resources")
	}
	// trace on nil env must not panic.
	env.trace("t", 1)
	env2.trace("t", 1)
	_ = value.VNull
}
