package task

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"shareinsights/internal/flowfile"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
	"shareinsights/internal/value"
)

// Accumulator folds a bag of values into one value — the paper's "user
// defined aggregates" task category (§4.2 item 2).
type Accumulator interface {
	Add(v value.V)
	// Merge folds a peer accumulator of the same type in; engines use it
	// for parallel partial aggregation.
	Merge(other Accumulator)
	Result() value.V
}

// AggregateFactory creates a fresh accumulator per group.
type AggregateFactory func() Accumulator

var (
	aggMu   sync.RWMutex
	aggImpl = map[string]AggregateFactory{
		"sum":            func() Accumulator { return &sumAcc{} },
		"count":          func() Accumulator { return &countAcc{} },
		"avg":            func() Accumulator { return &avgAcc{} },
		"min":            func() Accumulator { return &minAcc{} },
		"max":            func() Accumulator { return &maxAcc{} },
		"count_distinct": func() Accumulator { return &distinctAcc{seen: map[uint64]bool{}} },
		"first":          func() Accumulator { return &firstAcc{} },
		"last":           func() Accumulator { return &lastAcc{} },
		"stddev":         func() Accumulator { return &stddevAcc{} },
		"median":         func() Accumulator { return &medianAcc{} },
	}
)

// RegisterAggregate adds a user-defined aggregate operator. Platform
// aggregates cannot be replaced.
func RegisterAggregate(name string, f AggregateFactory) error {
	aggMu.Lock()
	defer aggMu.Unlock()
	if _, exists := aggImpl[name]; exists {
		return fmt.Errorf("task: aggregate %q already registered", name)
	}
	aggImpl[name] = f
	return nil
}

// Aggregates lists the registered aggregate operators, sorted.
func Aggregates() []string {
	aggMu.RLock()
	defer aggMu.RUnlock()
	out := make([]string, 0, len(aggImpl))
	for n := range aggImpl {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func aggregateFactory(name string) (AggregateFactory, error) {
	aggMu.RLock()
	defer aggMu.RUnlock()
	f, ok := aggImpl[name]
	if !ok {
		return nil, fmt.Errorf("unknown aggregate operator %q (have %s)", name, strings.Join(Aggregates(), ", "))
	}
	return f, nil
}

type sumAcc struct {
	f       float64
	i       int64
	isFloat bool
	n       int
}

func (a *sumAcc) Add(v value.V) {
	if v.IsNull() {
		return
	}
	a.n++
	if v.Kind() == value.Float {
		a.isFloat = true
	}
	a.f += v.Float()
	a.i += v.Int()
}

func (a *sumAcc) Merge(o Accumulator) {
	b := o.(*sumAcc)
	a.f += b.f
	a.i += b.i
	a.n += b.n
	a.isFloat = a.isFloat || b.isFloat
}

func (a *sumAcc) Result() value.V {
	if a.isFloat {
		return value.NewFloat(a.f)
	}
	return value.NewInt(a.i)
}

type countAcc struct{ n int64 }

func (a *countAcc) Add(value.V)         { a.n++ }
func (a *countAcc) Merge(o Accumulator) { a.n += o.(*countAcc).n }
func (a *countAcc) Result() value.V     { return value.NewInt(a.n) }

type avgAcc struct {
	sum float64
	n   int64
}

func (a *avgAcc) Add(v value.V) {
	if v.IsNull() {
		return
	}
	a.sum += v.Float()
	a.n++
}
func (a *avgAcc) Merge(o Accumulator) { b := o.(*avgAcc); a.sum += b.sum; a.n += b.n }
func (a *avgAcc) Result() value.V {
	if a.n == 0 {
		return value.VNull
	}
	return value.NewFloat(a.sum / float64(a.n))
}

type minAcc struct {
	v   value.V
	set bool
}

func (a *minAcc) Add(v value.V) {
	if v.IsNull() {
		return
	}
	if !a.set || value.Less(v, a.v) {
		a.v, a.set = v, true
	}
}
func (a *minAcc) Merge(o Accumulator) {
	b := o.(*minAcc)
	if b.set {
		a.Add(b.v)
	}
}
func (a *minAcc) Result() value.V {
	if !a.set {
		return value.VNull
	}
	return a.v
}

type maxAcc struct {
	v   value.V
	set bool
}

func (a *maxAcc) Add(v value.V) {
	if v.IsNull() {
		return
	}
	if !a.set || value.Less(a.v, v) {
		a.v, a.set = v, true
	}
}
func (a *maxAcc) Merge(o Accumulator) {
	b := o.(*maxAcc)
	if b.set {
		a.Add(b.v)
	}
}
func (a *maxAcc) Result() value.V {
	if !a.set {
		return value.VNull
	}
	return a.v
}

type distinctAcc struct{ seen map[uint64]bool }

func (a *distinctAcc) Add(v value.V) { a.seen[v.Hash()] = true }
func (a *distinctAcc) Merge(o Accumulator) {
	for k := range o.(*distinctAcc).seen {
		a.seen[k] = true
	}
}
func (a *distinctAcc) Result() value.V { return value.NewInt(int64(len(a.seen))) }

type firstAcc struct {
	v   value.V
	set bool
}

func (a *firstAcc) Add(v value.V) {
	if !a.set {
		a.v, a.set = v, true
	}
}
func (a *firstAcc) Merge(o Accumulator) {
	b := o.(*firstAcc)
	if !a.set && b.set {
		a.v, a.set = b.v, true
	}
}
func (a *firstAcc) Result() value.V {
	if !a.set {
		return value.VNull
	}
	return a.v
}

type lastAcc struct {
	v   value.V
	set bool
}

func (a *lastAcc) Add(v value.V) { a.v, a.set = v, true }
func (a *lastAcc) Merge(o Accumulator) {
	b := o.(*lastAcc)
	if b.set {
		a.v, a.set = b.v, true
	}
}
func (a *lastAcc) Result() value.V {
	if !a.set {
		return value.VNull
	}
	return a.v
}

// stddevAcc computes population standard deviation via Chan et al.'s
// parallel variance merge, so Merge stays exact.
type stddevAcc struct {
	n    float64
	mean float64
	m2   float64
}

func (a *stddevAcc) Add(v value.V) {
	if v.IsNull() {
		return
	}
	x := v.Float()
	a.n++
	d := x - a.mean
	a.mean += d / a.n
	a.m2 += d * (x - a.mean)
}

func (a *stddevAcc) Merge(o Accumulator) {
	b := o.(*stddevAcc)
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*a.n*b.n/n
	a.mean += d * b.n / n
	a.n = n
}

func (a *stddevAcc) Result() value.V {
	if a.n == 0 {
		return value.VNull
	}
	return value.NewFloat(math.Sqrt(a.m2 / a.n))
}

// medianAcc keeps all values and sorts at Result — exact, not sketched;
// groups in dashboard workloads are small.
type medianAcc struct{ vals []float64 }

func (a *medianAcc) Add(v value.V) {
	if v.IsNull() {
		return
	}
	a.vals = append(a.vals, v.Float())
}

func (a *medianAcc) Merge(o Accumulator) {
	a.vals = append(a.vals, o.(*medianAcc).vals...)
}

func (a *medianAcc) Result() value.V {
	if len(a.vals) == 0 {
		return value.VNull
	}
	sort.Float64s(a.vals)
	n := len(a.vals)
	if n%2 == 1 {
		return value.NewFloat(a.vals[n/2])
	}
	return value.NewFloat((a.vals[n/2-1] + a.vals[n/2]) / 2)
}

// ---------------------------------------------------------------------
// GroupBy spec

// AggSpec is one entry of a groupby's aggregates list (Figure 8).
type AggSpec struct {
	// Operator names the aggregate (sum, count, …).
	Operator string
	// ApplyOn is the input column the aggregate folds; optional for
	// count.
	ApplyOn string
	// OutField is the output column name.
	OutField string
}

// GroupBySpec implements the groupby task. With no aggregates configured
// it counts group members into a "count" column, matching Figure 23
// where `groupby: [date, player]` yields the players_tweets schema
// [date, player, count].
type GroupBySpec struct {
	// GroupBy are the grouping key columns.
	GroupBy []string
	// Aggs are the configured aggregates.
	Aggs []AggSpec
	// OrderByAggregates sorts output by the first aggregate descending
	// (used by the tag cloud pipeline in Appendix A.2).
	OrderByAggregates bool
}

func parseGroupBy(cfg *flowfile.Node) (Spec, error) {
	s := &GroupBySpec{
		GroupBy:           cfg.StrList("groupby"),
		OrderByAggregates: cfg.Bool("orderby_aggregates"),
	}
	if len(s.GroupBy) == 0 {
		return nil, fmt.Errorf("groupby: no groupby columns")
	}
	if aggs := cfg.Get("aggregates"); aggs != nil {
		if aggs.Kind != flowfile.ListNode {
			return nil, fmt.Errorf("groupby: aggregates must be a list")
		}
		for _, it := range aggs.Items {
			a := AggSpec{
				Operator: it.Str("operator"),
				ApplyOn:  it.Str("apply_on"),
				OutField: it.Str("out_field"),
			}
			if it.Bool("orderby_aggregates") {
				s.OrderByAggregates = true
			}
			if a.Operator == "" {
				return nil, fmt.Errorf("groupby: aggregate entry missing operator")
			}
			if _, err := aggregateFactory(a.Operator); err != nil {
				return nil, fmt.Errorf("groupby: %w", err)
			}
			if a.OutField == "" {
				a.OutField = a.Operator
				if a.ApplyOn != "" {
					a.OutField = a.Operator + "_" + a.ApplyOn
				}
			}
			if a.ApplyOn == "" && a.Operator != "count" {
				return nil, fmt.Errorf("groupby: aggregate %q needs apply_on", a.Operator)
			}
			s.Aggs = append(s.Aggs, a)
		}
	}
	if len(s.Aggs) == 0 {
		s.Aggs = []AggSpec{{Operator: "count", OutField: "count"}}
	}
	return s, nil
}

// Type implements Spec.
func (s *GroupBySpec) Type() string { return "groupby" }

// Out implements Spec: group keys followed by aggregate out_fields.
func (s *GroupBySpec) Out(in []Input) (*schema.Schema, error) {
	one, err := singleInput("groupby", in)
	if err != nil {
		return nil, err
	}
	if _, err := one.Schema.Require(s.GroupBy...); err != nil {
		return nil, err
	}
	cols := make([]schema.Column, 0, len(s.GroupBy)+len(s.Aggs))
	for _, g := range s.GroupBy {
		cols = append(cols, schema.Column{Name: g})
	}
	for _, a := range s.Aggs {
		if a.ApplyOn != "" {
			if _, err := one.Schema.Require(a.ApplyOn); err != nil {
				return nil, err
			}
		}
		cols = append(cols, schema.Column{Name: a.OutField})
	}
	return schema.New(cols...)
}

// hashGrouper is the Grouper for GroupBySpec.
type hashGrouper struct {
	spec   *GroupBySpec
	out    *schema.Schema
	keyIdx []int
	aggIdx []int // input column per aggregate (-1 for bare count)
	facs   []AggregateFactory
	groups map[string]*group
	order  []string // insertion order for stability pre-sort
}

type group struct {
	key  []value.V
	accs []Accumulator
}

// NewGrouper implements Grouped.
func (s *GroupBySpec) NewGrouper(env *Env, in Input) (Grouper, error) {
	out, err := s.Out([]Input{in})
	if err != nil {
		return nil, err
	}
	g := &hashGrouper{spec: s, out: out, groups: map[string]*group{}}
	g.keyIdx, _ = in.Schema.Require(s.GroupBy...)
	for _, a := range s.Aggs {
		idx := -1
		if a.ApplyOn != "" {
			idx = in.Schema.Index(a.ApplyOn)
		}
		g.aggIdx = append(g.aggIdx, idx)
		f, err := aggregateFactory(a.Operator)
		if err != nil {
			return nil, err
		}
		g.facs = append(g.facs, f)
	}
	return g, nil
}

func (g *hashGrouper) keyOf(r table.Row) string {
	var b strings.Builder
	for i, idx := range g.keyIdx {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteByte(byte(r[idx].Kind()))
		b.WriteString(r[idx].String())
	}
	return b.String()
}

// Add implements Grouper.
func (g *hashGrouper) Add(r table.Row) error {
	k := g.keyOf(r)
	grp, ok := g.groups[k]
	if !ok {
		key := make([]value.V, len(g.keyIdx))
		for i, idx := range g.keyIdx {
			key[i] = r[idx]
		}
		accs := make([]Accumulator, len(g.facs))
		for i, f := range g.facs {
			accs[i] = f()
		}
		grp = &group{key: key, accs: accs}
		g.groups[k] = grp
		g.order = append(g.order, k)
	}
	for i, idx := range g.aggIdx {
		if idx >= 0 {
			grp.accs[i].Add(r[idx])
		} else {
			grp.accs[i].Add(value.VNull)
		}
	}
	return nil
}

// Merge implements Grouper.
func (g *hashGrouper) Merge(other Grouper) error {
	o, ok := other.(*hashGrouper)
	if !ok {
		return fmt.Errorf("groupby: cannot merge %T", other)
	}
	for _, k := range o.order {
		og := o.groups[k]
		grp, exists := g.groups[k]
		if !exists {
			g.groups[k] = og
			g.order = append(g.order, k)
			continue
		}
		for i := range grp.accs {
			grp.accs[i].Merge(og.accs[i])
		}
	}
	return nil
}

// Result implements Grouper: rows sorted by group key (or by the first
// aggregate descending when orderby_aggregates is set).
func (g *hashGrouper) Result() (*table.Table, error) {
	t := table.New(g.out)
	for _, k := range g.order {
		grp := g.groups[k]
		row := make(table.Row, 0, len(grp.key)+len(grp.accs))
		row = append(row, grp.key...)
		for _, a := range grp.accs {
			row = append(row, a.Result())
		}
		t.Append(row)
	}
	keys := make([]table.SortKey, 0, len(g.spec.GroupBy)+1)
	if g.spec.OrderByAggregates && len(g.spec.Aggs) > 0 {
		keys = append(keys, table.SortKey{Column: g.spec.Aggs[0].OutField, Desc: true})
	}
	for _, c := range g.spec.GroupBy {
		keys = append(keys, table.SortKey{Column: c})
	}
	if err := t.Sort(keys...); err != nil {
		return nil, err
	}
	return t, nil
}

// Exec implements Spec.
func (s *GroupBySpec) Exec(env *Env, in []*table.Table, names []string) (*table.Table, error) {
	t, name, err := oneTable("groupby", in, names)
	if err != nil {
		return nil, err
	}
	g, err := s.NewGrouper(env, Input{Name: name, Schema: t.Schema()})
	if err != nil {
		return nil, err
	}
	for _, r := range t.Rows() {
		if err := g.Add(r); err != nil {
			return nil, err
		}
	}
	res, err := g.Result()
	if err != nil {
		return nil, err
	}
	env.trace("groupby", res.Len())
	return res, nil
}
