package task

import (
	"fmt"
	"testing"
	"testing/quick"

	"shareinsights/internal/schema"
	"shareinsights/internal/table"
	"shareinsights/internal/value"
)

// TestGroupBySumInvariant: for any input, the groupby sums per key equal
// a manual fold, and the total over groups equals the total over rows.
func TestGroupBySumInvariant(t *testing.T) {
	spec := parseSpec(t, `
g:
  type: groupby
  groupby: [k]
  aggregates:
    - operator: sum
      apply_on: v
      out_field: total
`)
	f := func(keys []uint8, vals []int16) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		in := table.New(schema.MustFromNames("k", "v"))
		want := map[string]int64{}
		var grand int64
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("k%d", keys[i]%5)
			in.AppendValues(value.NewString(k), value.NewInt(int64(vals[i])))
			want[k] += int64(vals[i])
			grand += int64(vals[i])
		}
		out, err := spec.Exec(&Env{}, []*table.Table{in}, nil)
		if err != nil {
			return false
		}
		if out.Len() != len(want) {
			return false
		}
		var got int64
		for i := 0; i < out.Len(); i++ {
			k := out.Cell(i, "k").Str()
			total := out.Cell(i, "total").Int()
			if want[k] != total {
				return false
			}
			got += total
		}
		return got == grand
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestFilterPartitionInvariant: a filter and its negation partition the
// input exactly.
func TestFilterPartitionInvariant(t *testing.T) {
	pos := parseSpec(t, "p:\n  type: filter_by\n  filter_expression: v >= 0\n")
	neg := parseSpec(t, "n:\n  type: filter_by\n  filter_expression: not v >= 0\n")
	f := func(vals []int16) bool {
		in := table.New(schema.MustFromNames("v"))
		for _, v := range vals {
			in.AppendValues(value.NewInt(int64(v)))
		}
		a, err := pos.Exec(&Env{}, []*table.Table{in}, nil)
		if err != nil {
			return false
		}
		b, err := neg.Exec(&Env{}, []*table.Table{in}, nil)
		if err != nil {
			return false
		}
		return a.Len()+b.Len() == in.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSortIdempotentInvariant: sorting twice equals sorting once.
func TestSortIdempotentInvariant(t *testing.T) {
	spec := parseSpec(t, "s:\n  type: sort\n  orderby_column: [v ASC]\n")
	f := func(vals []int16) bool {
		in := table.New(schema.MustFromNames("v"))
		for _, v := range vals {
			in.AppendValues(value.NewInt(int64(v)))
		}
		once, err := spec.Exec(&Env{}, []*table.Table{in}, nil)
		if err != nil {
			return false
		}
		twice, err := spec.Exec(&Env{}, []*table.Table{once}, nil)
		if err != nil {
			return false
		}
		return once.Equal(twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestDistinctIdempotentInvariant: distinct is idempotent and never
// grows the input.
func TestDistinctIdempotentInvariant(t *testing.T) {
	spec := parseSpec(t, "d:\n  type: distinct\n")
	f := func(vals []uint8) bool {
		in := table.New(schema.MustFromNames("v"))
		for _, v := range vals {
			in.AppendValues(value.NewInt(int64(v % 16)))
		}
		once, err := spec.Exec(&Env{}, []*table.Table{in}, nil)
		if err != nil {
			return false
		}
		twice, err := spec.Exec(&Env{}, []*table.Table{once}, nil)
		if err != nil {
			return false
		}
		return once.Equal(twice) && once.Len() <= in.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestTopNBoundInvariant: topn never emits more than limit rows per
// group and all emitted rows come from the input.
func TestTopNBoundInvariant(t *testing.T) {
	spec := parseSpec(t, `
t:
  type: topn
  groupby: [k]
  orderby_column: [v DESC]
  limit: 3
`)
	f := func(keys []uint8, vals []int16) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		in := table.New(schema.MustFromNames("k", "v"))
		for i := 0; i < n; i++ {
			in.AppendValues(value.NewString(fmt.Sprintf("k%d", keys[i]%4)), value.NewInt(int64(vals[i])))
		}
		out, err := spec.Exec(&Env{}, []*table.Table{in}, nil)
		if err != nil {
			return false
		}
		perGroup := map[string]int{}
		for i := 0; i < out.Len(); i++ {
			perGroup[out.Cell(i, "k").Str()]++
		}
		for _, c := range perGroup {
			if c > 3 {
				return false
			}
		}
		return out.Len() <= in.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
