package task

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"shareinsights/internal/flowfile"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
	"shareinsights/internal/value"
)

// OrderKey is one "<column> [ASC|DESC]" entry of an orderby_column list.
type OrderKey struct {
	Column string
	Desc   bool
}

func parseOrderKeys(entries []string) ([]OrderKey, error) {
	var keys []OrderKey
	for _, e := range entries {
		fields := strings.Fields(e)
		switch len(fields) {
		case 1:
			keys = append(keys, OrderKey{Column: fields[0]})
		case 2:
			switch strings.ToUpper(fields[1]) {
			case "ASC":
				keys = append(keys, OrderKey{Column: fields[0]})
			case "DESC":
				keys = append(keys, OrderKey{Column: fields[0], Desc: true})
			default:
				return nil, fmt.Errorf("bad order direction %q", fields[1])
			}
		default:
			return nil, fmt.Errorf("bad orderby entry %q", e)
		}
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("empty orderby_column")
	}
	return keys, nil
}

// TopNSpec implements the topn task (Appendix A.1 "topwords"): within
// each group, keep the first `limit` rows by the given order.
type TopNSpec struct {
	// GroupBy are the partitioning columns; empty means one global group.
	GroupBy []string
	// OrderBy ranks rows within a group.
	OrderBy []OrderKey
	// Limit is the per-group row budget.
	Limit int
}

func parseTopN(cfg *flowfile.Node) (Spec, error) {
	s := &TopNSpec{GroupBy: cfg.StrList("groupby")}
	var err error
	if s.OrderBy, err = parseOrderKeys(cfg.StrList("orderby_column")); err != nil {
		return nil, fmt.Errorf("topn: %w", err)
	}
	lim := cfg.Str("limit")
	if lim == "" {
		return nil, fmt.Errorf("topn: missing limit")
	}
	if s.Limit, err = strconv.Atoi(lim); err != nil || s.Limit < 1 {
		return nil, fmt.Errorf("topn: bad limit %q", lim)
	}
	return s, nil
}

// Type implements Spec.
func (s *TopNSpec) Type() string { return "topn" }

// Out implements Spec: topn preserves columns.
func (s *TopNSpec) Out(in []Input) (*schema.Schema, error) {
	one, err := singleInput("topn", in)
	if err != nil {
		return nil, err
	}
	if _, err := one.Schema.Require(s.GroupBy...); err != nil {
		return nil, err
	}
	for _, k := range s.OrderBy {
		if _, err := one.Schema.Require(k.Column); err != nil {
			return nil, err
		}
	}
	return one.Schema, nil
}

// Exec implements Spec.
func (s *TopNSpec) Exec(env *Env, in []*table.Table, names []string) (*table.Table, error) {
	t, _, err := oneTable("topn", in, names)
	if err != nil {
		return nil, err
	}
	if _, err := s.Out(inputsOf(in, names)); err != nil {
		return nil, err
	}
	gIdx, _ := t.Schema().Require(s.GroupBy...)
	oIdx := make([]int, len(s.OrderBy))
	for i, k := range s.OrderBy {
		oIdx[i] = t.Schema().Index(k.Column)
	}
	groups := map[string][]table.Row{}
	var order []string
	for _, r := range t.Rows() {
		k := joinKey(r, gIdx)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	sort.Strings(order)
	res := table.New(t.Schema())
	for _, k := range order {
		rows := groups[k]
		sort.SliceStable(rows, func(a, b int) bool {
			for i, key := range s.OrderBy {
				c := value.Compare(rows[a][oIdx[i]], rows[b][oIdx[i]])
				if c == 0 {
					continue
				}
				if key.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		n := s.Limit
		if n > len(rows) {
			n = len(rows)
		}
		for _, r := range rows[:n] {
			res.Append(r)
		}
	}
	env.trace("topn", res.Len())
	return res, nil
}
