package task

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"shareinsights/internal/flowfile"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
	"shareinsights/internal/value"
)

// JoinCondition enumerates the supported join types.
type JoinCondition int

// Join conditions, written in flow files as "inner", "left outer",
// "right outer" and "full outer" (case-insensitive, Appendix A mixes
// cases freely).
const (
	InnerJoin JoinCondition = iota
	LeftOuterJoin
	RightOuterJoin
	FullOuterJoin
)

// String renders the condition in flow-file form.
func (c JoinCondition) String() string {
	switch c {
	case InnerJoin:
		return "inner"
	case LeftOuterJoin:
		return "left outer"
	case RightOuterJoin:
		return "right outer"
	case FullOuterJoin:
		return "full outer"
	default:
		return "join"
	}
}

// ProjPair maps one qualified input column (<object>_<column>) to an
// output column name, per the paper's join project blocks.
type ProjPair struct {
	Qualified string
	Out       string
}

// JoinSpec implements the join task (Appendix A.1): an equi-join of two
// data objects with explicit column projection.
type JoinSpec struct {
	// LeftName / RightName are the expected input data-object names.
	LeftName, RightName string
	// LeftKeys / RightKeys are the equi-join key columns.
	LeftKeys, RightKeys []string
	// Condition is the join type.
	Condition JoinCondition
	// Project lists output columns in order; empty means all columns of
	// both sides under their qualified names.
	Project []ProjPair
}

// parseBySide parses "players_tweets by player" or "t by (a, b)".
func parseBySide(s string) (name string, keys []string, err error) {
	i := strings.Index(s, " by ")
	if i < 0 {
		return "", nil, fmt.Errorf("join: side %q must be '<data> by <columns>'", s)
	}
	name = strings.TrimSpace(s[:i])
	rest := strings.TrimSpace(s[i+4:])
	rest = strings.TrimPrefix(rest, "(")
	rest = strings.TrimSuffix(rest, ")")
	for _, k := range strings.Split(rest, ",") {
		k = strings.TrimSpace(k)
		if k != "" {
			keys = append(keys, k)
		}
	}
	if name == "" || len(keys) == 0 {
		return "", nil, fmt.Errorf("join: side %q must be '<data> by <columns>'", s)
	}
	return name, keys, nil
}

func parseJoin(cfg *flowfile.Node) (Spec, error) {
	s := &JoinSpec{}
	var err error
	if s.LeftName, s.LeftKeys, err = parseBySide(cfg.Str("left")); err != nil {
		return nil, err
	}
	if s.RightName, s.RightKeys, err = parseBySide(cfg.Str("right")); err != nil {
		return nil, err
	}
	if len(s.LeftKeys) != len(s.RightKeys) {
		return nil, fmt.Errorf("join: %d left keys vs %d right keys", len(s.LeftKeys), len(s.RightKeys))
	}
	switch strings.ToLower(strings.Join(strings.Fields(cfg.Str("join_condition")), " ")) {
	case "", "inner":
		s.Condition = InnerJoin
	case "left outer", "left":
		s.Condition = LeftOuterJoin
	case "right outer", "right":
		s.Condition = RightOuterJoin
	case "full outer", "full":
		s.Condition = FullOuterJoin
	default:
		return nil, fmt.Errorf("join: unknown join_condition %q", cfg.Str("join_condition"))
	}
	if proj := cfg.Get("project"); proj != nil {
		if proj.Kind != flowfile.MapNode {
			return nil, fmt.Errorf("join: project must be a property block")
		}
		for _, e := range proj.Entries {
			if e.Value.Kind != flowfile.ScalarNode {
				return nil, fmt.Errorf("join: project entry %q must map to a column name", e.Key)
			}
			s.Project = append(s.Project, ProjPair{Qualified: e.Key, Out: e.Value.Scalar})
		}
	}
	return s, nil
}

// Type implements Spec.
func (s *JoinSpec) Type() string { return "join" }

// sides orders the two bind-time inputs as (left, right) by matching
// their data-object names against the configuration. When names are
// unavailable (anonymous intermediates) positional order is used.
func (s *JoinSpec) sides(in []Input) (left, right Input, err error) {
	if len(in) != 2 {
		return Input{}, Input{}, fmt.Errorf("join: expected 2 inputs, got %d", len(in))
	}
	a, b := in[0], in[1]
	switch {
	case a.Name == s.LeftName && b.Name == s.RightName:
		return a, b, nil
	case a.Name == s.RightName && b.Name == s.LeftName:
		return b, a, nil
	case a.Name == "" || b.Name == "":
		return a, b, nil
	default:
		return Input{}, Input{}, fmt.Errorf("join: inputs (%s, %s) do not match configured sides (%s, %s)",
			a.Name, b.Name, s.LeftName, s.RightName)
	}
}

// qualify builds the map from qualified column names to (side, index):
// side 0 = left, 1 = right.
type qualCol struct {
	side int
	idx  int
}

func (s *JoinSpec) qualified(left, right Input) map[string]qualCol {
	q := map[string]qualCol{}
	for i, c := range left.Schema.Columns() {
		q[s.LeftName+"_"+c.Name] = qualCol{side: 0, idx: i}
	}
	for i, c := range right.Schema.Columns() {
		q[s.RightName+"_"+c.Name] = qualCol{side: 1, idx: i}
	}
	return q
}

// outPlan computes the output schema and the per-column source slots.
func (s *JoinSpec) outPlan(left, right Input) (*schema.Schema, []qualCol, error) {
	if _, err := left.Schema.Require(s.LeftKeys...); err != nil {
		return nil, nil, fmt.Errorf("join left: %w", err)
	}
	if _, err := right.Schema.Require(s.RightKeys...); err != nil {
		return nil, nil, fmt.Errorf("join right: %w", err)
	}
	q := s.qualified(left, right)
	var cols []schema.Column
	var slots []qualCol
	if len(s.Project) > 0 {
		for _, p := range s.Project {
			qc, ok := q[p.Qualified]
			if !ok {
				return nil, nil, fmt.Errorf("join: project source %q not found (inputs %s, %s)", p.Qualified, s.LeftName, s.RightName)
			}
			cols = append(cols, schema.Column{Name: p.Out})
			slots = append(slots, qc)
		}
	} else {
		for i, c := range left.Schema.Columns() {
			cols = append(cols, schema.Column{Name: s.LeftName + "_" + c.Name})
			slots = append(slots, qualCol{side: 0, idx: i})
		}
		for i, c := range right.Schema.Columns() {
			cols = append(cols, schema.Column{Name: s.RightName + "_" + c.Name})
			slots = append(slots, qualCol{side: 1, idx: i})
		}
	}
	out, err := schema.New(cols...)
	if err != nil {
		return nil, nil, fmt.Errorf("join: %w", err)
	}
	return out, slots, nil
}

// Out implements Spec.
func (s *JoinSpec) Out(in []Input) (*schema.Schema, error) {
	left, right, err := s.sides(in)
	if err != nil {
		return nil, err
	}
	out, _, err := s.outPlan(left, right)
	return out, err
}

func joinKey(r table.Row, idx []int) string {
	var b strings.Builder
	for i, j := range idx {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteByte(byte(r[j].Kind()))
		b.WriteString(r[j].String())
	}
	return b.String()
}

// Exec implements Spec: a hash join building on the right side.
func (s *JoinSpec) Exec(env *Env, in []*table.Table, names []string) (*table.Table, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("join: expected 2 inputs, got %d", len(in))
	}
	inputs := inputsOf(in, names)
	left, right, err := s.sides(inputs)
	if err != nil {
		return nil, err
	}
	// sides() may have swapped the inputs to match configuration order;
	// swap the tables the same way.
	lt, rt := in[0], in[1]
	if inputs[0].Name == s.RightName && inputs[1].Name == s.LeftName && s.LeftName != s.RightName {
		lt, rt = in[1], in[0]
	}
	out, slots, err := s.outPlan(left, right)
	if err != nil {
		return nil, err
	}
	lIdx, _ := left.Schema.Require(s.LeftKeys...)
	rIdx, _ := right.Schema.Require(s.RightKeys...)

	build := map[string][]int{}
	for i, r := range rt.Rows() {
		k := joinKey(r, rIdx)
		build[k] = append(build[k], i)
	}
	makeRow := func(lr, rr table.Row) table.Row {
		row := make(table.Row, len(slots))
		for i, sl := range slots {
			src := lr
			if sl.side == 1 {
				src = rr
			}
			if src == nil {
				row[i] = value.VNull
			} else {
				row[i] = src[sl.idx]
			}
		}
		return row
	}
	// Probe: sharded across workers for large left sides; per-shard
	// output buffers concatenate in shard order, so the result is
	// identical to the sequential probe.
	lRows := lt.Rows()
	workers := 1
	if len(lRows) >= parallelJoinThreshold {
		workers = runtime.GOMAXPROCS(0)
		if env != nil && env.Parallelism > 0 {
			workers = env.Parallelism
		}
		if workers > len(lRows) {
			workers = len(lRows)
		}
	}
	shardOut := make([][]table.Row, workers)
	shardMatched := make([][]bool, workers)
	var wg sync.WaitGroup
	chunk := (len(lRows) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if lo >= len(lRows) {
			break
		}
		if hi > len(lRows) {
			hi = len(lRows)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			matched := make([]bool, rt.Len())
			var rows []table.Row
			for _, lr := range lRows[lo:hi] {
				matches := build[joinKey(lr, lIdx)]
				if len(matches) == 0 {
					if s.Condition == LeftOuterJoin || s.Condition == FullOuterJoin {
						rows = append(rows, makeRow(lr, nil))
					}
					continue
				}
				for _, ri := range matches {
					matched[ri] = true
					rows = append(rows, makeRow(lr, rt.Row(ri)))
				}
			}
			shardOut[w] = rows
			shardMatched[w] = matched
		}(w, lo, hi)
	}
	wg.Wait()
	res := table.New(out)
	for _, rows := range shardOut {
		for _, r := range rows {
			res.Append(r)
		}
	}
	if s.Condition == RightOuterJoin || s.Condition == FullOuterJoin {
		for i := 0; i < rt.Len(); i++ {
			hit := false
			for _, matched := range shardMatched {
				if matched != nil && matched[i] {
					hit = true
					break
				}
			}
			if !hit {
				res.Append(makeRow(nil, rt.Row(i)))
			}
		}
	}
	env.trace("join", res.Len())
	return res, nil
}

// parallelJoinThreshold is the probe size below which sharding is not
// worth the coordination cost.
const parallelJoinThreshold = 8192
