package task

import (
	"fmt"
	"strconv"
	"strings"

	"shareinsights/internal/flowfile"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
)

// ProjectSpec implements the project task: keep only the named columns.
type ProjectSpec struct {
	// Columns are the retained columns, in output order.
	Columns []string
}

func parseProject(cfg *flowfile.Node) (Spec, error) {
	s := &ProjectSpec{Columns: cfg.StrList("columns")}
	if len(s.Columns) == 0 {
		return nil, fmt.Errorf("project: no columns")
	}
	return s, nil
}

// Type implements Spec.
func (s *ProjectSpec) Type() string { return "project" }

// Out implements Spec.
func (s *ProjectSpec) Out(in []Input) (*schema.Schema, error) {
	one, err := singleInput("project", in)
	if err != nil {
		return nil, err
	}
	return one.Schema.Project(s.Columns...)
}

// BindRow implements RowLocal.
func (s *ProjectSpec) BindRow(env *Env, in Input) (RowFn, *schema.Schema, error) {
	out, err := s.Out([]Input{in})
	if err != nil {
		return nil, nil, err
	}
	idx, err := in.Schema.Require(s.Columns...)
	if err != nil {
		return nil, nil, err
	}
	fn := func(r table.Row, emit func(table.Row)) error {
		nr := make(table.Row, len(idx))
		for i, j := range idx {
			nr[i] = r[j]
		}
		emit(nr)
		return nil
	}
	return fn, out, nil
}

// Exec implements Spec.
func (s *ProjectSpec) Exec(env *Env, in []*table.Table, names []string) (*table.Table, error) {
	return execRowLocal(s, env, in, names)
}

// SortSpec implements the sort task.
type SortSpec struct {
	// OrderBy are the sort keys.
	OrderBy []OrderKey
}

func parseSort(cfg *flowfile.Node) (Spec, error) {
	keys, err := parseOrderKeys(cfg.StrList("orderby_column"))
	if err != nil {
		return nil, fmt.Errorf("sort: %w", err)
	}
	return &SortSpec{OrderBy: keys}, nil
}

// Type implements Spec.
func (s *SortSpec) Type() string { return "sort" }

// Out implements Spec: sorting preserves columns.
func (s *SortSpec) Out(in []Input) (*schema.Schema, error) {
	one, err := singleInput("sort", in)
	if err != nil {
		return nil, err
	}
	for _, k := range s.OrderBy {
		if _, err := one.Schema.Require(k.Column); err != nil {
			return nil, err
		}
	}
	return one.Schema, nil
}

// Exec implements Spec.
func (s *SortSpec) Exec(env *Env, in []*table.Table, names []string) (*table.Table, error) {
	t, _, err := oneTable("sort", in, names)
	if err != nil {
		return nil, err
	}
	if _, err := s.Out(inputsOf(in, names)); err != nil {
		return nil, err
	}
	out := t.Clone()
	keys := make([]table.SortKey, len(s.OrderBy))
	for i, k := range s.OrderBy {
		keys[i] = table.SortKey{Column: k.Column, Desc: k.Desc}
	}
	if err := out.Sort(keys...); err != nil {
		return nil, err
	}
	env.trace("sort", out.Len())
	return out, nil
}

// DistinctSpec implements the distinct task: drop duplicate rows,
// optionally considering only a subset of columns (first row wins).
type DistinctSpec struct {
	// Columns are the key columns; empty means all columns.
	Columns []string
}

func parseDistinct(cfg *flowfile.Node) (Spec, error) {
	return &DistinctSpec{Columns: cfg.StrList("columns")}, nil
}

// Type implements Spec.
func (s *DistinctSpec) Type() string { return "distinct" }

// Out implements Spec.
func (s *DistinctSpec) Out(in []Input) (*schema.Schema, error) {
	one, err := singleInput("distinct", in)
	if err != nil {
		return nil, err
	}
	if _, err := one.Schema.Require(s.Columns...); err != nil {
		return nil, err
	}
	return one.Schema, nil
}

// Exec implements Spec.
func (s *DistinctSpec) Exec(env *Env, in []*table.Table, names []string) (*table.Table, error) {
	t, _, err := oneTable("distinct", in, names)
	if err != nil {
		return nil, err
	}
	cols := s.Columns
	if len(cols) == 0 {
		cols = t.Schema().Names()
	}
	idx, err := t.Schema().Require(cols...)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	out := table.New(t.Schema())
	for _, r := range t.Rows() {
		k := joinKey(r, idx)
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Append(r)
	}
	env.trace("distinct", out.Len())
	return out, nil
}

// UnionSpec implements the union task: concatenate same-schema inputs.
type UnionSpec struct{}

func parseUnion(cfg *flowfile.Node) (Spec, error) { return &UnionSpec{}, nil }

// Type implements Spec.
func (s *UnionSpec) Type() string { return "union" }

// Out implements Spec: all inputs must share a schema.
func (s *UnionSpec) Out(in []Input) (*schema.Schema, error) {
	if len(in) == 0 {
		return nil, fmt.Errorf("union: no inputs")
	}
	first := in[0].Schema
	for _, i := range in[1:] {
		if !first.Equal(i.Schema) {
			return nil, fmt.Errorf("union: input %q schema %s differs from %q schema %s",
				i.Name, i.Schema, in[0].Name, first)
		}
	}
	return first, nil
}

// Exec implements Spec.
func (s *UnionSpec) Exec(env *Env, in []*table.Table, names []string) (*table.Table, error) {
	sch, err := s.Out(inputsOf(in, names))
	if err != nil {
		return nil, err
	}
	out := table.New(sch)
	for _, t := range in {
		for _, r := range t.Rows() {
			out.Append(r)
		}
	}
	env.trace("union", out.Len())
	return out, nil
}

// LimitSpec implements the limit task: keep the first N rows.
type LimitSpec struct {
	// N is the row budget.
	N int
}

func parseLimit(cfg *flowfile.Node) (Spec, error) {
	n, err := strconv.Atoi(cfg.Str("limit"))
	if err != nil || n < 0 {
		return nil, fmt.Errorf("limit: bad limit %q", cfg.Str("limit"))
	}
	return &LimitSpec{N: n}, nil
}

// Type implements Spec.
func (s *LimitSpec) Type() string { return "limit" }

// Out implements Spec.
func (s *LimitSpec) Out(in []Input) (*schema.Schema, error) {
	one, err := singleInput("limit", in)
	if err != nil {
		return nil, err
	}
	return one.Schema, nil
}

// Exec implements Spec.
func (s *LimitSpec) Exec(env *Env, in []*table.Table, names []string) (*table.Table, error) {
	t, _, err := oneTable("limit", in, names)
	if err != nil {
		return nil, err
	}
	out := t.Head(s.N)
	env.trace("limit", out.Len())
	return out, nil
}

// FuncSpec wraps a plain Go function as a task — the extension route of
// §4.2 item 4 ("transforming a data object via a native map reduce
// job"). A user task registered this way "looks no different from a
// platform provided task" (observation 2): the flow file references it
// as T.<name> exactly like built-ins.
type FuncSpec struct {
	// Name is the task type name.
	Name string
	// OutFn computes the output schema.
	OutFn func(in []Input) (*schema.Schema, error)
	// ExecFn performs the transformation.
	ExecFn func(env *Env, in []*table.Table, names []string) (*table.Table, error)
}

// Type implements Spec.
func (s *FuncSpec) Type() string { return s.Name }

// Out implements Spec.
func (s *FuncSpec) Out(in []Input) (*schema.Schema, error) { return s.OutFn(in) }

// Exec implements Spec.
func (s *FuncSpec) Exec(env *Env, in []*table.Table, names []string) (*table.Table, error) {
	t, err := s.ExecFn(env, in, names)
	if err != nil {
		return nil, err
	}
	env.trace(s.Name, t.Len())
	return t, nil
}

// RegisterFunc registers a user-defined task type backed by a Go
// function. The configuration block is handed to cfgFn so the task can
// read its own parameters, mirroring how Python/R/Java tasks receive
// their flow-file configuration in the paper's platform.
func (r *Registry) RegisterFunc(name string, build func(cfg *flowfile.Node) (*FuncSpec, error)) error {
	return r.Register(name, func(cfg *flowfile.Node) (Spec, error) {
		s, err := build(cfg)
		if err != nil {
			return nil, err
		}
		if s.Name == "" {
			s.Name = name
		}
		if s.OutFn == nil || s.ExecFn == nil {
			return nil, fmt.Errorf("task %q: FuncSpec needs OutFn and ExecFn", name)
		}
		return s, nil
	})
}

// describeSpec renders a short human-readable summary used by error
// messages and the data explorer's plan view.
func describeSpec(s Spec) string {
	switch t := s.(type) {
	case *FilterSpec:
		if t.Expression != "" {
			return "filter_by " + t.Expression
		}
		return "filter_by " + strings.Join(t.By, ",") + " from W." + t.SourceWidget
	case *GroupBySpec:
		return "groupby " + strings.Join(t.GroupBy, ",")
	case *JoinSpec:
		return fmt.Sprintf("join %s⋈%s (%s)", t.LeftName, t.RightName, t.Condition)
	case *TopNSpec:
		return fmt.Sprintf("topn %d by %v", t.Limit, t.OrderBy)
	case *MapSpec:
		return "map " + t.Operator
	case *ParallelSpec:
		return "parallel [" + strings.Join(t.Names, ", ") + "]"
	default:
		return s.Type()
	}
}

// Describe renders a short human-readable summary of a spec.
func Describe(s Spec) string { return describeSpec(s) }
