package task

import (
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
	"shareinsights/internal/table/colstore"
)

// Vectorizable is implemented by specs that can compile themselves into
// a columnar kernel (internal/table/colstore). The batch engine probes
// for it when the planner's columnar decision allows, and falls back to
// the row implementation when ok is false.
//
// BindVec never reports binding problems as errors: a configuration the
// kernel cannot handle — an interaction-mode filter, an unregistered
// aggregate, a missing column — returns ok == false, and the row path
// (which validates the same configuration) produces the authoritative
// error or result.
type Vectorizable interface {
	Spec
	BindVec(env *Env, in Input) (k colstore.Kernel, out *schema.Schema, ok bool)
}

// BindVec implements Vectorizable. Only expression mode vectorizes:
// interaction filters depend on live widget selections, which are
// per-request and cheap relative to expression scans.
func (s *FilterSpec) BindVec(env *Env, in Input) (colstore.Kernel, *schema.Schema, bool) {
	if s.Expression == "" || len(s.By) > 0 {
		return nil, nil, false
	}
	out, err := s.Out([]Input{in})
	if err != nil {
		return nil, nil, false
	}
	ev, err := colstore.CompileVecSrc(s.Expression, in.Schema)
	if err != nil {
		return nil, nil, false
	}
	return &colstore.Filter{Pred: ev}, out, true
}

// vecAggOps maps aggregate operator names to their columnar kernels.
// The remaining registry entries (count_distinct, first, last, stddev,
// median, user aggregates) keep the row accumulators.
var vecAggOps = map[string]colstore.AggOp{
	"count": colstore.AggCount,
	"sum":   colstore.AggSum,
	"avg":   colstore.AggAvg,
	"min":   colstore.AggMin,
	"max":   colstore.AggMax,
}

// BindVec implements Vectorizable.
func (s *GroupBySpec) BindVec(env *Env, in Input) (colstore.Kernel, *schema.Schema, bool) {
	out, err := s.Out([]Input{in})
	if err != nil {
		return nil, nil, false
	}
	keys, err := in.Schema.Require(s.GroupBy...)
	if err != nil {
		return nil, nil, false
	}
	aggs := make([]colstore.Agg, len(s.Aggs))
	for i, a := range s.Aggs {
		op, ok := vecAggOps[a.Operator]
		if !ok {
			return nil, nil, false
		}
		col := -1
		if a.ApplyOn != "" {
			if col = in.Schema.Index(a.ApplyOn); col < 0 {
				return nil, nil, false
			}
		}
		aggs[i] = colstore.Agg{Op: op, Col: col}
	}
	// Output ordering replicates hashGrouper.Result: the first
	// aggregate descending under orderby_aggregates, then group keys
	// ascending.
	sortKeys := make([]table.SortKey, 0, len(s.GroupBy)+1)
	if s.OrderByAggregates && len(s.Aggs) > 0 {
		sortKeys = append(sortKeys, table.SortKey{Column: s.Aggs[0].OutField, Desc: true})
	}
	for _, c := range s.GroupBy {
		sortKeys = append(sortKeys, table.SortKey{Column: c})
	}
	return &colstore.GroupBy{Keys: keys, Aggs: aggs, Out: out, SortKeys: sortKeys}, out, true
}

// BindVec implements Vectorizable. The heap kernel covers the common
// dashboard shape — one global group, one order key; partitioned or
// multi-key topn keeps the row path.
func (s *TopNSpec) BindVec(env *Env, in Input) (colstore.Kernel, *schema.Schema, bool) {
	if len(s.GroupBy) != 0 || len(s.OrderBy) != 1 {
		return nil, nil, false
	}
	key := in.Schema.Index(s.OrderBy[0].Column)
	if key < 0 {
		return nil, nil, false
	}
	return &colstore.TopN{Key: key, Desc: s.OrderBy[0].Desc, Limit: s.Limit}, in.Schema, true
}

// BindVec implements Vectorizable. Only the expr operator vectorizes;
// the text operators (extract, date, …) are dictionary- or
// tokenizer-bound and may fan out rows.
func (s *MapSpec) BindVec(env *Env, in Input) (colstore.Kernel, *schema.Schema, bool) {
	op, ok := s.op.(*exprOperator)
	if !ok {
		return nil, nil, false
	}
	out := in.Schema.ExtendOrSame(op.output)
	ev, err := colstore.CompileVecSrc(op.source, in.Schema)
	if err != nil {
		return nil, nil, false
	}
	return &colstore.MapExpr{Eval: ev, Out: out, Slot: out.Index(op.output)}, out, true
}
