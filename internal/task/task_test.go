package task

import (
	"fmt"
	"strings"
	"testing"

	"shareinsights/internal/flowfile"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
	"shareinsights/internal/value"
)

// cfg parses a task property block from flow-file text.
func cfg(t *testing.T, src string) *flowfile.TaskDef {
	t.Helper()
	f, err := flowfile.Parse("test", "T:\n"+indent(src, 2))
	if err != nil {
		t.Fatalf("parse task config: %v", err)
	}
	if len(f.TaskOrder) != 1 {
		t.Fatalf("want 1 task, got %d", len(f.TaskOrder))
	}
	return f.Tasks[f.TaskOrder[0]]
}

func indent(s string, n int) string {
	pad := strings.Repeat(" ", n)
	lines := strings.Split(strings.TrimLeft(s, "\n"), "\n")
	for i, l := range lines {
		if strings.TrimSpace(l) != "" {
			lines[i] = pad + l
		}
	}
	return strings.Join(lines, "\n")
}

func parseSpec(t *testing.T, src string) Spec {
	t.Helper()
	def := cfg(t, src)
	f := flowfile.NewFile("test")
	if err := f.AddTask(def); err != nil {
		t.Fatal(err)
	}
	spec, err := NewRegistry().Parse(f, def)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return spec
}

func mkTable(t *testing.T, cols string, rows ...[]any) *table.Table {
	t.Helper()
	s := schema.MustFromNames(strings.Split(cols, ",")...)
	tbl := table.New(s)
	for _, r := range rows {
		row := make(table.Row, len(r))
		for i, c := range r {
			row[i] = value.FromAny(c)
		}
		tbl.Append(row)
	}
	return tbl
}

func TestFilterExpression(t *testing.T) {
	spec := parseSpec(t, `
classification:
  type: filter_by
  filter_expression: rating < 3
`)
	in := mkTable(t, "item,rating",
		[]any{"a", 1}, []any{"b", 3}, []any{"c", 2}, []any{"d", 5})
	out, err := spec.Exec(&Env{}, []*table.Table{in}, []string{"reviews"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("rows = %d, want 2", out.Len())
	}
	if out.Cell(0, "item").Str() != "a" || out.Cell(1, "item").Str() != "c" {
		t.Errorf("wrong rows: %s", out.Format(0))
	}
}

func TestFilterExpressionBindError(t *testing.T) {
	spec := parseSpec(t, `
f:
  type: filter_by
  filter_expression: missing_col > 1
`)
	in := mkTable(t, "a,b", []any{1, 2})
	if _, err := spec.Exec(&Env{}, []*table.Table{in}, nil); err == nil {
		t.Fatal("expected bind error for missing column")
	}
}

func TestFilterInteraction(t *testing.T) {
	spec := parseSpec(t, `
filter_projects:
  type: filter_by
  filter_by: [project]
  filter_source: W.project_category_bubble
  filter_val: [text]
`)
	in := mkTable(t, "project,stat", []any{"pig", 1}, []any{"hive", 2}, []any{"spark", 3})
	// No selection: pass-through.
	out, err := spec.Exec(&Env{}, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Errorf("no-selection rows = %d, want 3", out.Len())
	}
	// With a selection.
	env := &Env{WidgetValue: func(w, col string) ([]string, bool) {
		if w == "project_category_bubble" && col == "text" {
			return []string{"pig"}, true
		}
		return nil, false
	}}
	out, err = spec.Exec(env, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Cell(0, "project").Str() != "pig" {
		t.Errorf("selection filter failed: %s", out.Format(0))
	}
}

func TestFilterRangeSelection(t *testing.T) {
	spec := parseSpec(t, `
filter_by_date:
  type: filter_by
  filter_by: [date]
  filter_source: W.ipl_duration
`)
	in := mkTable(t, "date,n",
		[]any{"2013-05-01", 1}, []any{"2013-05-10", 2}, []any{"2013-05-30", 3})
	env := &Env{WidgetValue: func(w, col string) ([]string, bool) {
		return []string{"range:", "2013-05-02", "2013-05-27"}, true
	}}
	out, err := spec.Exec(env, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Cell(0, "n").Int() != 2 {
		t.Errorf("range filter: %s", out.Format(0))
	}
}

func TestGroupByDefaultCount(t *testing.T) {
	spec := parseSpec(t, `
players_count:
  type: groupby
  groupby: [date, player]
`)
	in := mkTable(t, "date,player,body",
		[]any{"d1", "kohli", "x"}, []any{"d1", "kohli", "y"}, []any{"d1", "dhoni", "z"},
		[]any{"d2", "kohli", "w"})
	out, err := spec.Exec(&Env{}, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := mkTable(t, "date,player,count",
		[]any{"d1", "dhoni", 1}, []any{"d1", "kohli", 2}, []any{"d2", "kohli", 1})
	if !out.Equal(want) {
		t.Errorf("groupby default count:\n%s\nwant:\n%s", out.Format(0), want.Format(0))
	}
}

func TestGroupByAggregates(t *testing.T) {
	spec := parseSpec(t, `
get_svn_jira_count:
  type: groupby
  groupby: [project, year]
  aggregates:
    - operator: sum
      apply_on: noOfCheckins
      out_field: total_checkins
    - operator: sum
      apply_on: noOfBugs
      out_field: total_jira
    - operator: avg
      apply_on: noOfCheckins
      out_field: avg_checkins
`)
	in := mkTable(t, "project,year,noOfCheckins,noOfBugs",
		[]any{"pig", 2013, 10, 3},
		[]any{"pig", 2013, 20, 5},
		[]any{"hive", 2013, 7, 1})
	out, err := spec.Exec(&Env{}, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Schema().String(); got != "[project, year, total_checkins, total_jira, avg_checkins]" {
		t.Fatalf("schema = %s", got)
	}
	if out.Len() != 2 {
		t.Fatalf("groups = %d", out.Len())
	}
	// hive sorts before pig.
	if out.Cell(0, "total_checkins").Int() != 7 || out.Cell(1, "total_checkins").Int() != 30 {
		t.Errorf("sums wrong:\n%s", out.Format(0))
	}
	if out.Cell(1, "avg_checkins").Float() != 15 {
		t.Errorf("avg = %v", out.Cell(1, "avg_checkins"))
	}
}

func TestGroupByMergeParallel(t *testing.T) {
	spec := parseSpec(t, `
g:
  type: groupby
  groupby: [k]
  aggregates:
    - operator: sum
      apply_on: v
      out_field: total
    - operator: count_distinct
      apply_on: v
      out_field: distinct
    - operator: stddev
      apply_on: v
      out_field: sd
`).(*GroupBySpec)
	in := Input{Name: "t", Schema: schema.MustFromNames("k", "v")}
	g1, err := spec.NewGrouper(&Env{}, in)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := spec.NewGrouper(&Env{}, in)
	full, _ := spec.NewGrouper(&Env{}, in)
	for i := 0; i < 100; i++ {
		r := table.Row{value.NewString(fmt.Sprintf("k%d", i%3)), value.NewInt(int64(i % 7))}
		if i%2 == 0 {
			g1.Add(r)
		} else {
			g2.Add(r)
		}
		full.Add(r)
	}
	if err := g1.Merge(g2); err != nil {
		t.Fatal(err)
	}
	merged, err := g1.Result()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := full.Result()
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != direct.Len() {
		t.Fatalf("merged %d groups, direct %d", merged.Len(), direct.Len())
	}
	for i := 0; i < merged.Len(); i++ {
		for _, col := range []string{"k", "total", "distinct"} {
			if !value.Equal(merged.Cell(i, col), direct.Cell(i, col)) {
				t.Errorf("row %d col %s: merged %v direct %v", i, col, merged.Cell(i, col), direct.Cell(i, col))
			}
		}
		d := merged.Cell(i, "sd").Float() - direct.Cell(i, "sd").Float()
		if d > 1e-9 || d < -1e-9 {
			t.Errorf("row %d stddev mismatch: %v vs %v", i, merged.Cell(i, "sd"), direct.Cell(i, "sd"))
		}
	}
}

func TestJoinProjection(t *testing.T) {
	spec := parseSpec(t, `
join_player_team:
  type: join
  left: players_tweets by player
  right: team_players by player
  join_condition: left outer
  project:
    players_tweets_date: date
    players_tweets_player: player
    players_tweets_count: noOfTweets
    team_players_team: team
`)
	left := mkTable(t, "date,player,count",
		[]any{"d1", "kohli", 5}, []any{"d1", "nobody", 1})
	right := mkTable(t, "player,team", []any{"kohli", "RCB"})
	out, err := spec.Exec(&Env{}, []*table.Table{left, right}, []string{"players_tweets", "team_players"})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Schema().String(); got != "[date, player, noOfTweets, team]" {
		t.Fatalf("schema = %s", got)
	}
	if out.Len() != 2 {
		t.Fatalf("rows = %d", out.Len())
	}
	if out.Cell(0, "team").Str() != "RCB" {
		t.Errorf("row 0: %s", out.Format(0))
	}
	if !out.Cell(1, "team").IsNull() {
		t.Errorf("left outer should null-fill: %s", out.Format(0))
	}
}

func TestJoinInputOrderInsensitive(t *testing.T) {
	spec := parseSpec(t, `
j:
  type: join
  left: a by k
  right: b by k
  join_condition: inner
`)
	ta := mkTable(t, "k,x", []any{1, "ax"})
	tb := mkTable(t, "k,y", []any{1, "by"})
	// Feed inputs in reversed order: (b, a).
	out, err := spec.Exec(&Env{}, []*table.Table{tb, ta}, []string{"b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("rows = %d", out.Len())
	}
	if out.Cell(0, "a_x").Str() != "ax" || out.Cell(0, "b_y").Str() != "by" {
		t.Errorf("swapped join wrong: %s", out.Format(0))
	}
}

func TestJoinConditions(t *testing.T) {
	left := mkTable(t, "k,x", []any{1, "a"}, []any{2, "b"})
	right := mkTable(t, "k,y", []any{2, "B"}, []any{3, "C"})
	cases := []struct {
		cond string
		rows int
	}{
		{"inner", 1}, {"left outer", 2}, {"right outer", 2}, {"full outer", 3},
	}
	for _, c := range cases {
		t.Run(c.cond, func(t *testing.T) {
			spec := parseSpec(t, fmt.Sprintf(`
j:
  type: join
  left: l by k
  right: r by k
  join_condition: %s
`, c.cond))
			out, err := spec.Exec(&Env{}, []*table.Table{left, right}, []string{"l", "r"})
			if err != nil {
				t.Fatal(err)
			}
			if out.Len() != c.rows {
				t.Errorf("%s rows = %d, want %d\n%s", c.cond, out.Len(), c.rows, out.Format(0))
			}
		})
	}
}

func TestTopN(t *testing.T) {
	spec := parseSpec(t, `
topwords:
  type: topn
  groupby: [date]
  orderby_column: [count DESC]
  limit: 2
`)
	in := mkTable(t, "date,word,count",
		[]any{"d1", "a", 5}, []any{"d1", "b", 9}, []any{"d1", "c", 7},
		[]any{"d2", "a", 1}, []any{"d2", "b", 2})
	out, err := spec.Exec(&Env{}, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 {
		t.Fatalf("rows = %d, want 4", out.Len())
	}
	if out.Cell(0, "word").Str() != "b" || out.Cell(1, "word").Str() != "c" {
		t.Errorf("d1 top2 wrong:\n%s", out.Format(0))
	}
}

func TestMapDateOperator(t *testing.T) {
	spec := parseSpec(t, `
norm_ipldate:
  type: map
  operator: date
  transform: postedTime
  input_format: 'E MMM dd HH:mm:ss Z yyyy'
  output_format: yyyy-MM-dd
  output: date
`)
	in := mkTable(t, "postedTime,body",
		[]any{"Fri May 10 18:30:00 +0000 2013", "tweet1"},
		[]any{"garbage", "tweet2"})
	out, err := spec.Exec(&Env{}, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Schema().String(); got != "[postedTime, body, date]" {
		t.Fatalf("schema = %s", got)
	}
	if out.Cell(0, "date").Str() != "2013-05-10" {
		t.Errorf("date = %q", out.Cell(0, "date").Str())
	}
	if !out.Cell(1, "date").IsNull() {
		t.Errorf("malformed date should be null, got %v", out.Cell(1, "date"))
	}
}

func TestJavaToGoLayout(t *testing.T) {
	cases := map[string]string{
		"yyyy-MM-dd":               "2006-01-02",
		"E MMM dd HH:mm:ss Z yyyy": "Mon Jan 02 15:04:05 -0700 2006",
		"dd/MM/yy hh:mm a":         "02/01/06 03:04 PM",
	}
	for java, want := range cases {
		if got := javaToGoLayout(java); got != want {
			t.Errorf("javaToGoLayout(%q) = %q, want %q", java, got, want)
		}
	}
}

func TestMapExtractOperator(t *testing.T) {
	spec := parseSpec(t, `
extract_players:
  type: map
  operator: extract
  transform: body
  dict: players.txt
  output: player
`)
	env := &Env{Resources: map[string][]byte{
		"players.txt": []byte("kohli => Virat Kohli\nvirat => Virat Kohli\ndhoni,MS Dhoni\n"),
	}}
	in := mkTable(t, "body,n",
		[]any{"what a shot by Kohli and Virat again!", 1},
		[]any{"dhoni finishes in style", 2},
		[]any{"no players here", 3})
	out, err := spec.Exec(env, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Row 1: kohli+virat both map to Virat Kohli, deduped to one row.
	// Row 3 mentions no player and is dropped.
	if out.Len() != 2 {
		t.Fatalf("rows = %d, want 2\n%s", out.Len(), out.Format(0))
	}
	if out.Cell(0, "player").Str() != "Virat Kohli" || out.Cell(1, "player").Str() != "MS Dhoni" {
		t.Errorf("extract wrong:\n%s", out.Format(0))
	}
}

func TestMapExtractMissingDict(t *testing.T) {
	spec := parseSpec(t, `
e:
  type: map
  operator: extract
  transform: body
  dict: nope.txt
  output: player
`)
	in := mkTable(t, "body", []any{"x"})
	if _, err := spec.Exec(&Env{}, []*table.Table{in}, nil); err == nil || !strings.Contains(err.Error(), "nope.txt") {
		t.Fatalf("expected missing-dict error, got %v", err)
	}
}

func TestMapExtractWords(t *testing.T) {
	spec := parseSpec(t, `
extract_words:
  type: map
  operator: extract_words
  transform: body
  output: word
`)
	in := mkTable(t, "body", []any{"The Chennai crowd is AMAZING tonight http://t.co/x"})
	out, err := spec.Exec(&Env{}, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	words := map[string]bool{}
	for i := 0; i < out.Len(); i++ {
		words[out.Cell(i, "word").Str()] = true
	}
	for _, want := range []string{"chennai", "crowd", "amazing", "tonight"} {
		if !words[want] {
			t.Errorf("missing word %q in %v", want, words)
		}
	}
	if words["the"] || words["is"] {
		t.Errorf("stopwords leaked: %v", words)
	}
	for w := range words {
		if strings.HasPrefix(w, "http") {
			t.Errorf("URL token leaked: %q", w)
		}
	}
}

func TestMapExtractLocation(t *testing.T) {
	spec := parseSpec(t, `
extract_location:
  type: map
  operator: extract_location
  transform: displayName
  match: city
  country: IND
  dict: cities.ind.csv
  output: state
`)
	env := &Env{Resources: map[string][]byte{
		"cities.ind.csv": []byte("mumbai,Maharashtra\npune,Maharashtra\nchennai,Tamil Nadu\n"),
	}}
	in := mkTable(t, "displayName",
		[]any{"Mumbai, India"}, []any{"somewhere else"}, []any{"Chennai Super Fan"})
	out, err := spec.Exec(env, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("rows = %d, want 2", out.Len())
	}
	if out.Cell(0, "state").Str() != "Maharashtra" || out.Cell(1, "state").Str() != "Tamil Nadu" {
		t.Errorf("locations wrong:\n%s", out.Format(0))
	}
}

func TestMapExprOperator(t *testing.T) {
	spec := parseSpec(t, `
weight:
  type: map
  operator: expr
  expression: checkins * 2 + bugs
  output: total_wt
`)
	in := mkTable(t, "checkins,bugs", []any{10, 3})
	out, err := spec.Exec(&Env{}, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cell(0, "total_wt").Int() != 23 {
		t.Errorf("total_wt = %v", out.Cell(0, "total_wt"))
	}
}

func TestMapOverwritesExistingColumn(t *testing.T) {
	spec := parseSpec(t, `
up:
  type: map
  operator: upper
  transform: name
`)
	in := mkTable(t, "name,x", []any{"pig", 1})
	out, err := spec.Exec(&Env{}, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema().Len() != 2 {
		t.Fatalf("schema grew: %s", out.Schema())
	}
	if out.Cell(0, "name").Str() != "PIG" {
		t.Errorf("name = %q", out.Cell(0, "name").Str())
	}
}

func TestParallelComposite(t *testing.T) {
	src := `
T:
  players_pipeline:
    parallel: [T.norm_date, T.extract_players]
  norm_date:
    type: map
    operator: date
    transform: postedTime
    input_format: 'E MMM dd HH:mm:ss Z yyyy'
    output_format: yyyy-MM-dd
    output: date
  extract_players:
    type: map
    operator: extract
    transform: body
    dict: players.txt
    output: player
`
	f, err := flowfile.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := NewRegistry().Parse(f, f.Tasks["players_pipeline"])
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{Resources: map[string][]byte{
		"players.txt": []byte("kohli,Virat Kohli\ndhoni,MS Dhoni\n"),
	}}
	in := mkTable(t, "postedTime,body",
		[]any{"Fri May 10 18:30:00 +0000 2013", "kohli and dhoni together"})
	out, err := spec.Exec(env, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Schema().String(); got != "[postedTime, body, date, player]" {
		t.Fatalf("schema = %s", got)
	}
	if out.Len() != 2 {
		t.Fatalf("fan-out rows = %d, want 2", out.Len())
	}
	if out.Cell(0, "date").Str() != "2013-05-10" {
		t.Errorf("date lost in composition: %s", out.Format(0))
	}
}

func TestParallelCycleDetection(t *testing.T) {
	src := `
T:
  a:
    parallel: [T.b]
  b:
    parallel: [T.a]
`
	f, err := flowfile.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRegistry().Parse(f, f.Tasks["a"]); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("expected cycle error, got %v", err)
	}
}

func TestProjectSortDistinctUnionLimit(t *testing.T) {
	in := mkTable(t, "a,b,c",
		[]any{2, "x", true}, []any{1, "y", false}, []any{2, "x", true})

	proj := parseSpec(t, "p:\n  type: project\n  columns: [b, a]\n")
	out, err := proj.Exec(&Env{}, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema().String() != "[b, a]" {
		t.Errorf("project schema = %s", out.Schema())
	}

	srt := parseSpec(t, "s:\n  type: sort\n  orderby_column: [a ASC, b DESC]\n")
	out, err = srt.Exec(&Env{}, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cell(0, "a").Int() != 1 {
		t.Errorf("sort wrong:\n%s", out.Format(0))
	}

	dst := parseSpec(t, "d:\n  type: distinct\n")
	out, err = dst.Exec(&Env{}, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("distinct rows = %d, want 2", out.Len())
	}

	uni := parseSpec(t, "u:\n  type: union\n")
	out, err = uni.Exec(&Env{}, []*table.Table{in, in}, []string{"t1", "t2"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 6 {
		t.Errorf("union rows = %d, want 6", out.Len())
	}

	lim := parseSpec(t, "l:\n  type: limit\n  limit: 2\n")
	out, err = lim.Exec(&Env{}, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("limit rows = %d", out.Len())
	}
}

func TestUnionSchemaMismatch(t *testing.T) {
	uni := parseSpec(t, "u:\n  type: union\n")
	a := mkTable(t, "a,b", []any{1, 2})
	b := mkTable(t, "a,c", []any{1, 2})
	if _, err := uni.Exec(&Env{}, []*table.Table{a, b}, []string{"a", "b"}); err == nil {
		t.Fatal("expected schema mismatch error")
	}
}

func TestUserDefinedTask(t *testing.T) {
	reg := NewRegistry()
	// The hackathon's ticket-resolution predictor (observation 2): a
	// user task that scores rows by keyword.
	err := reg.RegisterFunc("predict_resolution", func(c *flowfile.Node) (*FuncSpec, error) {
		col := c.Str("text_column")
		if col == "" {
			return nil, fmt.Errorf("predict_resolution: need text_column")
		}
		return &FuncSpec{
			OutFn: func(in []Input) (*schema.Schema, error) {
				one, err := singleInput("predict_resolution", in)
				if err != nil {
					return nil, err
				}
				if _, err := one.Schema.Require(col); err != nil {
					return nil, err
				}
				return one.Schema.Extend("predicted_days")
			},
			ExecFn: func(env *Env, in []*table.Table, names []string) (*table.Table, error) {
				src := in[0]
				out := table.New(src.Schema().ExtendOrSame("predicted_days"))
				idx := src.Schema().Index(col)
				for _, r := range src.Rows() {
					days := int64(7)
					if strings.Contains(strings.ToLower(r[idx].Str()), "urgent") {
						days = 1
					}
					nr := append(r.Clone(), value.NewInt(days))
					out.Append(nr)
				}
				return out, nil
			},
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The flow file references it exactly like a platform task.
	src := `
T:
  predictor:
    type: predict_resolution
    text_column: summary
`
	f, err := flowfile.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := reg.Parse(f, f.Tasks["predictor"])
	if err != nil {
		t.Fatal(err)
	}
	in := mkTable(t, "ticket,summary", []any{1, "URGENT outage"}, []any{2, "slow UI"})
	out, err := spec.Exec(&Env{}, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cell(0, "predicted_days").Int() != 1 || out.Cell(1, "predicted_days").Int() != 7 {
		t.Errorf("prediction wrong:\n%s", out.Format(0))
	}
}

func TestRegistryProtectsBuiltins(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("groupby", nil); err == nil {
		t.Fatal("expected error replacing platform task")
	}
	if err := RegisterAggregate("sum", nil); err == nil {
		t.Fatal("expected error replacing platform aggregate")
	}
	if err := RegisterOperator("date", nil); err == nil {
		t.Fatal("expected error replacing platform operator")
	}
}

func TestTraceHook(t *testing.T) {
	spec := parseSpec(t, "g:\n  type: groupby\n  groupby: [k]\n")
	var traced []string
	env := &Env{Trace: func(typ string, rows int) { traced = append(traced, fmt.Sprintf("%s:%d", typ, rows)) }}
	in := mkTable(t, "k", []any{"a"}, []any{"a"}, []any{"b"})
	if _, err := spec.Exec(env, []*table.Table{in}, nil); err != nil {
		t.Fatal(err)
	}
	if len(traced) != 1 || traced[0] != "groupby:2" {
		t.Errorf("trace = %v", traced)
	}
}

func TestOrderByAggregates(t *testing.T) {
	spec := parseSpec(t, `
aggregate_by_word:
  type: groupby
  groupby: [word]
  aggregates:
    - operator: sum
      apply_on: count
      out_field: count
      orderby_aggregates: true
`)
	in := mkTable(t, "word,count", []any{"low", 1}, []any{"high", 10}, []any{"mid", 5})
	out, err := spec.Exec(&Env{}, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cell(0, "word").Str() != "high" || out.Cell(2, "word").Str() != "low" {
		t.Errorf("orderby_aggregates wrong:\n%s", out.Format(0))
	}
}

func TestJoinParallelMatchesSequential(t *testing.T) {
	// A probe side large enough to cross the parallel threshold, with
	// every join condition; sharded output must match the sequential
	// semantics exactly (order included).
	left := mkTable(t, "k,x")
	for i := 0; i < 20000; i++ {
		left.AppendValues(value.NewInt(int64(i%977)), value.NewInt(int64(i)))
	}
	right := mkTable(t, "k,y")
	for i := 0; i < 500; i++ {
		right.AppendValues(value.NewInt(int64(i*2)), value.NewString(fmt.Sprintf("r%d", i)))
	}
	for _, cond := range []string{"inner", "left outer", "right outer", "full outer"} {
		spec := parseSpec(t, fmt.Sprintf("j:\n  type: join\n  left: l by k\n  right: r by k\n  join_condition: %s\n", cond))
		par, err := spec.Exec(&Env{Parallelism: 8}, []*table.Table{left, right}, []string{"l", "r"})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := spec.Exec(&Env{Parallelism: 1}, []*table.Table{left, right}, []string{"l", "r"})
		if err != nil {
			t.Fatal(err)
		}
		if !par.Equal(seq) {
			t.Errorf("%s: parallel join differs from sequential (%d vs %d rows)", cond, par.Len(), seq.Len())
		}
	}
}

func TestMedianAggregate(t *testing.T) {
	spec := parseSpec(t, `
m:
  type: groupby
  groupby: [k]
  aggregates:
    - operator: median
      apply_on: v
      out_field: med
`)
	in := mkTable(t, "k,v",
		[]any{"a", 1}, []any{"a", 9}, []any{"a", 5},
		[]any{"b", 2}, []any{"b", 4})
	out, err := spec.Exec(&Env{}, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cell(0, "med").Float() != 5 || out.Cell(1, "med").Float() != 3 {
		t.Errorf("medians wrong:\n%s", out.Format(0))
	}
	// Merge path (parallel partial aggregation).
	gspec := spec.(*GroupBySpec)
	input := Input{Schema: schema.MustFromNames("k", "v")}
	g1, _ := gspec.NewGrouper(&Env{}, input)
	g2, _ := gspec.NewGrouper(&Env{}, input)
	for i := 1; i <= 5; i++ {
		r := table.Row{value.NewString("x"), value.NewInt(int64(i))}
		if i%2 == 0 {
			g2.Add(r)
		} else {
			g1.Add(r)
		}
	}
	if err := g1.Merge(g2); err != nil {
		t.Fatal(err)
	}
	res, _ := g1.Result()
	if res.Cell(0, "med").Float() != 3 {
		t.Errorf("merged median = %v", res.Cell(0, "med"))
	}
}

func TestBucketOperator(t *testing.T) {
	spec := parseSpec(t, `
b:
  type: map
  operator: bucket
  transform: hour
  width: 2
  output: slot
`)
	in := mkTable(t, "hour", []any{0.5}, []any{1.9}, []any{2.0}, []any{5.7}, []any{nil})
	out, err := spec.Exec(&Env{}, []*table.Table{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 0, 2, 4}
	for i, w := range want {
		if got := out.Cell(i, "slot").Int(); got != w {
			t.Errorf("row %d slot = %d, want %d", i, got, w)
		}
	}
	if !out.Cell(4, "slot").IsNull() {
		t.Error("null input should bucket to null")
	}
	if _, err := parseSpec2("b:\n  type: map\n  operator: bucket\n  transform: h\n  width: 0\n"); err == nil {
		t.Error("zero width should fail")
	}
}

// parseSpec2 is parseSpec returning the error instead of failing.
func parseSpec2(src string) (Spec, error) {
	f, err := flowfile.Parse("test", "T:\n"+indent(src, 2))
	if err != nil {
		return nil, err
	}
	return NewRegistry().Parse(f, f.Tasks[f.TaskOrder[0]])
}
