package diagnose_test

import (
	"strings"
	"testing"

	"shareinsights/internal/connector"
	"shareinsights/internal/dashboard"
	"shareinsights/internal/diagnose"
	"shareinsights/internal/flowfile"
)

const diagFlow = `
D:
  sales: [region, product, amount]

D.sales:
  source: mem:sales.csv
  format: csv

F:
  +D.by_region: D.sales | T.sum_by_region

T:
  sum_by_region:
    type: groupby
    groupby: [regoin]
    aggregates:
      - operator: sum
        apply_on: amount
        out_field: total
`

func TestDidYouMeanForMisspelledColumn(t *testing.T) {
	f, err := flowfile.Parse("diag", diagFlow)
	if err != nil {
		t.Fatal(err)
	}
	p := dashboard.NewPlatform()
	p.Connectors = connector.NewRegistry(connector.Options{
		Mem: map[string][]byte{"sales.csv": []byte("e,w,1\n")},
	})
	_, cerr := p.Compile(f, nil)
	if cerr == nil {
		t.Fatal("expected compile error for misspelled column")
	}
	ds := diagnose.Diagnose(f, cerr)
	if len(ds) != 1 {
		t.Fatalf("diagnostics = %v", ds)
	}
	d := ds[0]
	if d.Entity != "D.by_region" {
		t.Errorf("entity = %q", d.Entity)
	}
	if !strings.Contains(d.Hint, `"region"`) {
		t.Errorf("hint = %q, want did-you-mean region", d.Hint)
	}
	if strings.Contains(d.Problem, "dag:") || strings.Contains(d.Problem, "schema:") {
		t.Errorf("engine prefixes leaked: %q", d.Problem)
	}
	if d.Line == 0 {
		t.Error("line not attributed")
	}
}

func TestValidationErrorsExpand(t *testing.T) {
	src := `
D:
  raw: [a]

D.raw:
  source: x.csv

F:
  D.out: D.raw | T.missing_one
  D.out2: D.raw | T.missing_two

T:
  unused:
    type: distinct
`
	f, err := flowfile.Parse("multi", src)
	if err != nil {
		t.Fatal(err)
	}
	verr := f.Validate(false)
	if verr == nil {
		t.Fatal("expected validation error")
	}
	ds := diagnose.Diagnose(f, verr)
	if len(ds) < 2 {
		t.Fatalf("want one diagnostic per problem, got %v", ds)
	}
	joined := make([]string, len(ds))
	for i, d := range ds {
		joined[i] = d.String()
	}
	all := strings.Join(joined, "\n")
	if !strings.Contains(all, "T.missing_one") || !strings.Contains(all, "T.missing_two") {
		t.Errorf("diagnostics missing entities:\n%s", all)
	}
}

func TestTaskLineAttribution(t *testing.T) {
	f, err := flowfile.Parse("diag", diagFlow)
	if err != nil {
		t.Fatal(err)
	}
	ds := diagnose.Diagnose(f, errFor(`task "sum_by_region": something broke`))
	if ds[0].Entity != "T.sum_by_region" || ds[0].Line != f.Tasks["sum_by_region"].Line {
		t.Errorf("diagnostic = %+v", ds[0])
	}
}

type strErr string

func (e strErr) Error() string { return string(e) }

func errFor(msg string) error { return strErr(msg) }

func TestNilError(t *testing.T) {
	if ds := diagnose.Diagnose(nil, nil); ds != nil {
		t.Errorf("nil error produced diagnostics: %v", ds)
	}
}
