package diagnose

import "testing"

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0}, {"a", "", 1}, {"abc", "abc", 0},
		{"regoin", "region", 2}, {"kitten", "sitting", 3},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Errorf("editDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestNearestRespectsThreshold(t *testing.T) {
	if got := nearest("zzzzz", []string{"region", "product"}); got != "" {
		t.Errorf("nearest matched a distant candidate: %q", got)
	}
	if got := nearest("prodct", []string{"region", "product"}); got != "product" {
		t.Errorf("nearest = %q", got)
	}
}
