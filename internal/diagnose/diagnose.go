// Package diagnose turns platform errors into flow-file-level
// diagnostics — the §6 commitment that "since the flow file is an
// abstraction layer, more work needs to be done to enable users to
// pin-point errors quickly (without leaking the underlying engine errors
// or debug logs)", motivated by the hackathon's observation 7 ("error
// reporting … leaked the abstraction").
//
// A Diagnostic names the flow-file entity (D./T./W. reference), its
// declaring line, the problem in the user's vocabulary, and — for the
// most common failure, a misspelled column — a did-you-mean hint
// computed against the schema in scope.
package diagnose

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"shareinsights/internal/flowfile"
)

// Diagnostic is one user-facing finding.
type Diagnostic struct {
	// Entity is the flow-file reference ("T.players_count",
	// "D.ipl_tweets", "W.bubble"), or "" when the error is global.
	Entity string
	// Line is the entity's declaring line in the flow file (0 unknown).
	Line int
	// Problem is the platform's description, stripped of engine prefixes.
	Problem string
	// Hint is an optional suggestion ("did you mean …?").
	Hint string
	// Code carries flowfile.Problem's classification code ("" for most
	// problems), so reporters that re-report a class under a dedicated
	// rule can suppress the generic copy without matching message text.
	Code string
}

// String renders the diagnostic as the editor shows it.
func (d Diagnostic) String() string {
	var b strings.Builder
	if d.Entity != "" {
		b.WriteString(d.Entity)
		if d.Line > 0 {
			fmt.Fprintf(&b, " (line %d)", d.Line)
		}
		b.WriteString(": ")
	}
	b.WriteString(d.Problem)
	if d.Hint != "" {
		b.WriteString(" — ")
		b.WriteString(d.Hint)
	}
	return b.String()
}

var (
	entityRe = regexp.MustCompile(`\b([DTW])\.([A-Za-z_][A-Za-z0-9_]*)`)
	columnRe = regexp.MustCompile(`column "([^"]+)" not found \(have ([^)]*)\)`)
	taskRe   = regexp.MustCompile(`task "([^"]+)"`)
	widgetRe = regexp.MustCompile(`widget W\.([A-Za-z_][A-Za-z0-9_]*)`)
)

// Diagnose maps an error from Compile/Run against the flow file it came
// from. Multi-problem validation errors expand into one diagnostic per
// problem.
func Diagnose(f *flowfile.File, err error) []Diagnostic {
	if err == nil {
		return nil
	}
	var out []Diagnostic
	if ve, ok := err.(*flowfile.ValidationError); ok {
		for _, p := range ve.Problems {
			d := diagnoseOne(f, p.Message)
			d.Code = p.Code
			if p.Line > 0 {
				// The problem records the offending reference's own line
				// (flow, task or layout row), which is more precise than
				// the referenced entity's declaration.
				d.Line = p.Line
			}
			out = append(out, d)
		}
		return out
	}
	return []Diagnostic{diagnoseOne(f, err.Error())}
}

func diagnoseOne(f *flowfile.File, msg string) Diagnostic {
	d := Diagnostic{Problem: cleanMessage(msg)}
	// Attribute to the most specific entity mentioned.
	if m := widgetRe.FindStringSubmatch(msg); m != nil {
		d.Entity = "W." + m[1]
		if w, ok := f.Widgets[m[1]]; ok {
			d.Line = w.Line
		}
	} else if m := taskRe.FindStringSubmatch(msg); m != nil {
		d.Entity = "T." + m[1]
		if t, ok := f.Tasks[m[1]]; ok {
			d.Line = t.Line
		}
	} else if m := entityRe.FindStringSubmatch(msg); m != nil {
		d.Entity = m[1] + "." + m[2]
		switch m[1] {
		case "D":
			if dd, ok := f.Data[m[2]]; ok {
				d.Line = dd.Line
			}
		case "T":
			if t, ok := f.Tasks[m[2]]; ok {
				d.Line = t.Line
			}
		case "W":
			if w, ok := f.Widgets[m[2]]; ok {
				d.Line = w.Line
			}
		}
	}
	// Did-you-mean for missing columns.
	if m := columnRe.FindStringSubmatch(msg); m != nil {
		missing := m[1]
		available := strings.Split(m[2], ",")
		if hint := nearest(missing, available); hint != "" {
			d.Hint = fmt.Sprintf("did you mean %q?", hint)
		}
	}
	return d
}

// cleanMessage strips engine-internal prefixes so the user reads their
// pipeline's vocabulary, not the substrate's.
func cleanMessage(msg string) string {
	for _, prefix := range []string{"batch: ", "dag: ", "connector: ", "expr: ", "schema: ", "cube: "} {
		msg = strings.ReplaceAll(msg, prefix, "")
	}
	return msg
}

// Nearest picks the closest candidate within edit distance 2 ("" when
// nothing is close). The static analyzer (internal/analyze) reuses it
// for did-you-mean hints so lint and runtime diagnostics agree.
func Nearest(target string, candidates []string) string { return nearest(target, candidates) }

// nearest picks the closest candidate within edit distance 2.
func nearest(target string, candidates []string) string {
	best := ""
	bestDist := 3
	sorted := append([]string(nil), candidates...)
	sort.Strings(sorted)
	for _, c := range sorted {
		c = strings.TrimSpace(c)
		if c == "" {
			continue
		}
		if d := editDistance(strings.ToLower(target), strings.ToLower(c)); d < bestDist {
			bestDist = d
			best = c
		}
	}
	return best
}

// editDistance is Levenshtein with unit costs.
func editDistance(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
