package table

import (
	"strings"
	"testing"
	"testing/quick"

	"shareinsights/internal/schema"
	"shareinsights/internal/value"
)

func sample() *Table {
	t := New(schema.MustFromNames("name", "score"))
	t.AppendValues(value.NewString("bob"), value.NewInt(3))
	t.AppendValues(value.NewString("alice"), value.NewInt(5))
	t.AppendValues(value.NewString("carol"), value.NewInt(3))
	return t
}

func TestAppendAndCell(t *testing.T) {
	tb := sample()
	if tb.Len() != 3 {
		t.Fatalf("len = %d", tb.Len())
	}
	if tb.Cell(1, "name").Str() != "alice" || tb.Cell(1, "score").Int() != 5 {
		t.Error("cell lookup wrong")
	}
	if !tb.Cell(0, "missing").IsNull() {
		t.Error("missing column should be null")
	}
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch should panic")
		}
	}()
	tb.Append(Row{value.NewInt(1)})
}

func TestFromRowsValidatesArity(t *testing.T) {
	s := schema.MustFromNames("a", "b")
	_, err := FromRows(s, []Row{{value.NewInt(1)}})
	if err == nil {
		t.Error("short row should fail")
	}
	tb, err := FromRows(s, []Row{{value.NewInt(1), value.NewInt(2)}})
	if err != nil || tb.Len() != 1 {
		t.Errorf("FromRows: %v", err)
	}
}

func TestColumn(t *testing.T) {
	tb := sample()
	col, err := tb.Column("score")
	if err != nil || len(col) != 3 || col[1].Int() != 5 {
		t.Errorf("Column = %v, %v", col, err)
	}
	if _, err := tb.Column("zz"); err == nil {
		t.Error("missing column should fail")
	}
}

func TestSortStable(t *testing.T) {
	tb := sample()
	if err := tb.Sort(SortKey{Column: "score"}, SortKey{Column: "name"}); err != nil {
		t.Fatal(err)
	}
	got := []string{tb.Cell(0, "name").Str(), tb.Cell(1, "name").Str(), tb.Cell(2, "name").Str()}
	want := []string{"bob", "carol", "alice"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", got, want)
		}
	}
	if err := tb.Sort(SortKey{Column: "score", Desc: true}); err != nil {
		t.Fatal(err)
	}
	if tb.Cell(0, "score").Int() != 5 {
		t.Error("desc sort wrong")
	}
	if err := tb.Sort(SortKey{Column: "zz"}); err == nil {
		t.Error("sort on missing column should fail")
	}
}

func TestProjectHeadClone(t *testing.T) {
	tb := sample()
	p, err := tb.Project("score")
	if err != nil || p.Schema().String() != "[score]" || p.Len() != 3 {
		t.Errorf("Project: %v %v", p, err)
	}
	h := tb.Head(2)
	if h.Len() != 2 {
		t.Errorf("Head(2) = %d rows", h.Len())
	}
	if tb.Head(99).Len() != 3 || tb.Head(-1).Len() != 0 {
		t.Error("Head bounds wrong")
	}
	cl := tb.Clone()
	cl.Rows()[0][0] = value.NewString("mutated")
	if tb.Cell(0, "name").Str() == "mutated" {
		t.Error("clone shares row storage")
	}
}

func TestEqual(t *testing.T) {
	a, b := sample(), sample()
	if !a.Equal(b) {
		t.Error("identical tables unequal")
	}
	b.Rows()[0][1] = value.NewInt(99)
	if a.Equal(b) {
		t.Error("differing tables equal")
	}
	c := New(schema.MustFromNames("name", "other"))
	if a.Equal(c) {
		t.Error("schema mismatch should be unequal")
	}
}

func TestFormat(t *testing.T) {
	tb := sample()
	out := tb.Format(2)
	if !strings.Contains(out, "name") || !strings.Contains(out, "alice") {
		t.Errorf("format missing content:\n%s", out)
	}
	if !strings.Contains(out, "1 more rows") {
		t.Errorf("format missing truncation notice:\n%s", out)
	}
	if strings.Contains(tb.Format(0), "more rows") {
		t.Error("Format(0) should show everything")
	}
}

func TestSizeBytes(t *testing.T) {
	tb := sample()
	if tb.SizeBytes() <= 0 {
		t.Error("SizeBytes should be positive")
	}
	bigger := sample()
	bigger.AppendValues(value.NewString(strings.Repeat("x", 1000)), value.NewInt(1))
	if bigger.SizeBytes() <= tb.SizeBytes()+900 {
		t.Error("SizeBytes should reflect string payloads")
	}
}

func TestSortPermutationProperty(t *testing.T) {
	// Sorting preserves the multiset of rows.
	f := func(vals []int16) bool {
		tb := New(schema.MustFromNames("v"))
		counts := map[int64]int{}
		for _, v := range vals {
			tb.AppendValues(value.NewInt(int64(v)))
			counts[int64(v)]++
		}
		if err := tb.Sort(SortKey{Column: "v"}); err != nil {
			return false
		}
		var prev int64 = -1 << 62
		for _, r := range tb.Rows() {
			v := r[0].Int()
			if v < prev {
				return false
			}
			prev = v
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
