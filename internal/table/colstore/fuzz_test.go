package colstore

import (
	"math"
	"testing"
	"time"

	"shareinsights/internal/schema"
	"shareinsights/internal/table"
	"shareinsights/internal/value"
)

// FuzzConvert decodes arbitrary bytes into a small table of mixed kinds
// and null patterns, then checks the columnar conversion contract: if
// FromTable accepts the table, ToTable must reproduce it exactly (same
// schema, same cells, same kinds), and selection must never panic.
func FuzzConvert(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte("hello columnar world"))
	f.Add([]byte{0xFF, 0x00, 0xFF, 0x00, 0x80, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		tb := decodeTable(data)
		b, ok := FromTable(tb)
		if !ok {
			return
		}
		if b.Len() != tb.Len() {
			t.Fatalf("batch length %d != table length %d", b.Len(), tb.Len())
		}
		back := b.ToTable()
		if !back.Equal(tb) {
			t.Fatalf("round trip changed the table:\nin:  %v\nout: %v", tb, back)
		}
		// Cell kinds must survive exactly — Equal uses Compare, which
		// treats some cross-kind pairs as equal.
		for i, row := range tb.Rows() {
			for j, want := range row {
				if got := back.Rows()[i][j]; got.Kind() != want.Kind() {
					t.Fatalf("row %d col %d: kind %v -> %v", i, j, want.Kind(), got.Kind())
				}
			}
		}
		if b.Len() > 0 {
			sel := NewBitmap(b.Len())
			for i := 0; i < b.Len(); i += 2 {
				sel.Set(i)
			}
			if got := b.SelectBitmap(sel); got.Len() != sel.Count() {
				t.Fatalf("SelectBitmap length %d, want %d", got.Len(), sel.Count())
			}
		}
	})
}

// decodeTable builds a deterministic table from fuzz bytes: the first
// byte picks the column count (1..4), each subsequent byte contributes
// one cell whose kind and payload derive from its bits. Producing some
// tables FromTable must decline (mixed kinds, Time cells) is the point —
// the fuzzer probes both sides of the eligibility check.
func decodeTable(data []byte) *table.Table {
	ncols := 1
	if len(data) > 0 {
		ncols = int(data[0])%4 + 1
		data = data[1:]
	}
	names := []string{"c0", "c1", "c2", "c3"}[:ncols]
	tb := table.New(schema.MustFromNames(names...))
	row := make(table.Row, 0, ncols)
	for _, by := range data {
		switch by % 6 {
		case 0:
			row = append(row, value.VNull)
		case 1:
			row = append(row, value.NewBool(by&0x40 != 0))
		case 2:
			row = append(row, value.NewInt(int64(int8(by))))
		case 3:
			f := float64(int8(by)) / 4
			if by == 0x8D {
				f = math.NaN()
			}
			row = append(row, value.NewFloat(f))
		case 4:
			row = append(row, value.NewString(string(rune(by))))
		case 5:
			// Time cells are deliberately ineligible for columnar
			// conversion; generating them exercises the decline path.
			row = append(row, value.NewTime(timeFromByte(by)))
		}
		if len(row) == ncols {
			tb.Append(row)
			row = make(table.Row, 0, ncols)
		}
	}
	return tb
}

func timeFromByte(by byte) time.Time {
	return time.Unix(int64(by)*3600, 0).UTC()
}
