// Package colstore is the columnar execution layout of the batch
// engine: typed column vectors (int64 / float64 / string / bool, each
// with a null bitmap) plus vectorized kernels for the hot tasks —
// filter, groupby, topn and map-expr.
//
// A row Table converts to a Batch when every column is kind-uniform
// (one payload kind plus nulls); mixed-kind and time columns keep the
// row representation, and the engine falls back to the row kernels.
// Conversion copies cell headers but never string payloads (Go strings
// are immutable), so a 100k-row text column costs 100k string headers,
// not a byte of text. The kernels are semantically identical to the
// reference task implementations — internal/engine/enginetest runs
// both paths over the same pipelines and asserts equal outputs.
package colstore

import (
	"math"

	"shareinsights/internal/schema"
	"shareinsights/internal/table"
	"shareinsights/internal/value"
)

// anyKind marks a heterogeneous vector (boxed values). FromTable never
// produces one; expression evaluation and aggregate outputs may.
const anyKind value.Kind = 0xFF

// Vec is one column of a Batch: a typed payload slice selected by kind,
// plus an optional null bitmap (nil when the column has no nulls).
// Null cells hold the zero value in the payload slice, which matches
// the platform's coercion rules (null.Int() == 0, null.Str() == "").
type Vec struct {
	kind   value.Kind
	ints   []int64
	floats []float64
	strs   []string
	bools  []bool
	anys   []value.V
	nulls  *Bitmap
	length int
	// constant marks a broadcast vector: one stored element (index 0)
	// logically repeated length times. The expression evaluator uses it
	// for literals; Batch columns are always dense (see densify).
	constant bool
}

// Len returns the number of elements.
func (v *Vec) Len() int { return v.length }

// Kind returns the vector's payload kind (value.Null for an all-null
// column).
func (v *Vec) Kind() value.Kind { return v.kind }

// Nulls returns the null bitmap, or nil when the vector has none.
func (v *Vec) Nulls() *Bitmap { return v.nulls }

// hasNulls reports whether any element is null.
func (v *Vec) hasNulls() bool { return v.kind == value.Null || (v.nulls != nil && !v.nulls.Empty()) }

// null reports whether element i is null.
func (v *Vec) null(i int) bool {
	if v.kind == value.Null {
		return true
	}
	if v.constant {
		return false
	}
	return v.nulls != nil && v.nulls.Get(i)
}

// At reconstructs element i as a dynamic value.
func (v *Vec) At(i int) value.V {
	if v.null(i) {
		return value.VNull
	}
	if v.constant {
		i = 0
	}
	switch v.kind {
	case value.Bool:
		return value.NewBool(v.bools[i])
	case value.Int:
		return value.NewInt(v.ints[i])
	case value.Float:
		return value.NewFloat(v.floats[i])
	case value.String:
		return value.NewString(v.strs[i])
	case anyKind:
		return v.anys[i]
	}
	return value.VNull
}

// newVec allocates a dense vector of the given kind and length.
func newVec(k value.Kind, n int) *Vec {
	v := &Vec{kind: k, length: n}
	switch k {
	case value.Bool:
		v.bools = make([]bool, n)
	case value.Int:
		v.ints = make([]int64, n)
	case value.Float:
		v.floats = make([]float64, n)
	case value.String:
		v.strs = make([]string, n)
	case anyKind:
		v.anys = make([]value.V, n)
	}
	return v
}

// setNull marks element i null, allocating the bitmap on first use.
func (v *Vec) setNull(i int) {
	if v.kind == value.Null {
		return
	}
	if v.nulls == nil {
		v.nulls = NewBitmap(v.length)
	}
	v.nulls.Set(i)
}

// set stores a value into element i of a vector whose kind matches
// val's kind (or which is an any-vector).
func (v *Vec) set(i int, val value.V) {
	if val.IsNull() {
		v.setNull(i)
		if v.kind == anyKind {
			v.anys[i] = val
		}
		return
	}
	switch v.kind {
	case value.Bool:
		v.bools[i] = val.Bool()
	case value.Int:
		v.ints[i] = val.Int()
	case value.Float:
		v.floats[i] = val.Float()
	case value.String:
		v.strs[i] = val.Str()
	case anyKind:
		v.anys[i] = val
	}
}

// densify expands a constant vector into a dense one; dense vectors
// are returned unchanged. Kernels densify before storing a vector into
// a Batch, so batch columns always index positionally.
func (v *Vec) densify() *Vec {
	if !v.constant {
		return v
	}
	out := newVec(v.kind, v.length)
	if v.kind != value.Null {
		val := v.At(0)
		for i := 0; i < v.length; i++ {
			out.set(i, val)
		}
	}
	return out
}

// gather returns a new vector holding the elements of v at idx.
func (v *Vec) gather(idx []int) *Vec {
	out := &Vec{kind: v.kind, length: len(idx)}
	if v.kind == value.Null {
		return out
	}
	switch v.kind {
	case value.Bool:
		out.bools = make([]bool, len(idx))
		for o, i := range idx {
			out.bools[o] = v.bools[i]
		}
	case value.Int:
		out.ints = make([]int64, len(idx))
		for o, i := range idx {
			out.ints[o] = v.ints[i]
		}
	case value.Float:
		out.floats = make([]float64, len(idx))
		for o, i := range idx {
			out.floats[o] = v.floats[i]
		}
	case value.String:
		out.strs = make([]string, len(idx))
		for o, i := range idx {
			out.strs[o] = v.strs[i]
		}
	case anyKind:
		out.anys = make([]value.V, len(idx))
		for o, i := range idx {
			out.anys[o] = v.anys[i]
		}
	}
	if v.nulls != nil {
		for o, i := range idx {
			if v.nulls.Get(i) {
				out.setNull(o)
			}
		}
	}
	return out
}

// Batch is a columnar table: a schema plus one vector per column. All
// vectors have the batch's length.
type Batch struct {
	schema *schema.Schema
	cols   []*Vec
	length int
}

// Schema returns the batch's schema.
func (b *Batch) Schema() *schema.Schema { return b.schema }

// Len returns the number of rows.
func (b *Batch) Len() int { return b.length }

// Col returns the i'th column vector.
func (b *Batch) Col(i int) *Vec { return b.cols[i] }

// FromTable converts a row table into a Batch. ok is false when the
// table is not columnar-eligible: a column mixes payload kinds, or
// holds time values (which have no typed vector). Nulls are always
// allowed. String payloads are shared with the source table, never
// copied.
func FromTable(t *table.Table) (b *Batch, ok bool) {
	s := t.Schema()
	rows := t.Rows()
	n := len(rows)
	nc := s.Len()
	cols := make([]*Vec, nc)
	// One row-major pass: rows are individually allocated, so visiting
	// each exactly once is ~nc times cheaper in memory traffic than a
	// column-at-a-time sweep. The first non-null cell fixes a column's
	// kind and backfills the leading nulls; payload reads go through the
	// inlinable NumRaw/StrRaw accessors.
	for i, r := range rows {
		for c := 0; c < nc; c++ {
			cell := r[c]
			ck := cell.Kind()
			v := cols[c]
			if ck == value.Null {
				if v != nil {
					v.setNull(i)
				}
				continue
			}
			if v == nil {
				if ck == value.Time {
					return nil, false
				}
				v = newVec(ck, n)
				for j := 0; j < i; j++ {
					v.setNull(j)
				}
				cols[c] = v
			} else if ck != v.kind {
				return nil, false
			}
			switch ck {
			case value.Int:
				v.ints[i] = cell.NumRaw()
			case value.Float:
				v.floats[i] = math.Float64frombits(uint64(cell.NumRaw()))
			case value.String:
				v.strs[i] = cell.StrRaw()
			case value.Bool:
				v.bools[i] = cell.NumRaw() != 0
			}
		}
	}
	for c := 0; c < nc; c++ {
		if cols[c] == nil {
			// Column never produced a non-null cell (or the table is
			// empty): an all-null vector.
			cols[c] = newVec(value.Null, n)
		}
	}
	return &Batch{schema: s, cols: cols, length: n}, true
}

// ToTable materializes the batch back into a row table.
func (b *Batch) ToTable() *table.Table {
	rows := make([]table.Row, b.length)
	w := b.schema.Len()
	// One flat cell allocation for the whole table keeps the conversion
	// a single copy pass instead of one allocation per row.
	cells := make([]value.V, b.length*w)
	for i := range rows {
		r := cells[i*w : (i+1)*w : (i+1)*w]
		for c, v := range b.cols {
			r[c] = v.At(i)
		}
		rows[i] = r
	}
	t, err := table.FromRows(b.schema, rows)
	if err != nil {
		// Vectors always match the schema arity; reaching here is a
		// colstore bug.
		panic(err)
	}
	return t
}

// Select returns a new batch holding the rows at idx, in order — the
// gather step after a selection bitmap or heap selection.
func (b *Batch) Select(idx []int) *Batch {
	cols := make([]*Vec, len(b.cols))
	for c, v := range b.cols {
		cols[c] = v.gather(idx)
	}
	return &Batch{schema: b.schema, cols: cols, length: len(idx)}
}

// SelectBitmap is Select over a selection bitmap's set positions.
func (b *Batch) SelectBitmap(sel *Bitmap) *Batch {
	return b.Select(sel.Indices())
}

// withColumn returns a batch sharing b's vectors with vec placed at
// column slot (overwriting, or appending when slot == len(cols)).
func (b *Batch) withColumn(out *schema.Schema, slot int, vec *Vec) *Batch {
	cols := make([]*Vec, out.Len())
	copy(cols, b.cols)
	cols[slot] = vec
	return &Batch{schema: out, cols: cols, length: b.length}
}

// compress turns a boxed value slice into the tightest vector: a typed
// vector when all non-null elements share one vectorizable kind, else
// an any-vector.
func compress(vals []value.V) *Vec {
	k := value.Null
	uniform := true
	for _, v := range vals {
		ck := v.Kind()
		if ck == value.Null {
			continue
		}
		if ck == value.Time {
			uniform = false
			break
		}
		if k == value.Null {
			k = ck
		} else if k != ck {
			uniform = false
			break
		}
	}
	if !uniform {
		out := newVec(anyKind, len(vals))
		for i, v := range vals {
			out.set(i, v)
		}
		return out
	}
	out := newVec(k, len(vals))
	for i, v := range vals {
		out.set(i, v)
	}
	return out
}
