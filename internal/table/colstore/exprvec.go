package colstore

import (
	"fmt"
	"strings"

	"shareinsights/internal/expr"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
	"shareinsights/internal/value"
)

// VecEval evaluates a compiled expression over a batch, producing one
// vector of the batch's length. Like the row evaluator (expr.Eval) it
// cannot fail at run time: all binding errors surface at compile time.
type VecEval func(b *Batch) *Vec

// CompileVec compiles an expression AST against a schema into a
// vectorized evaluator. The result is element-for-element identical to
// binding and evaluating the same AST with the row evaluator: hot
// same-kind comparisons and arithmetic run as tight typed loops, and
// every other kind combination falls back to a per-element loop over
// the exact scalar semantics (value.Compare, expr.Arith, Truthy).
func CompileVec(n expr.Node, s *schema.Schema) (VecEval, error) {
	switch t := n.(type) {
	case *expr.Lit:
		val := t.Val
		return func(b *Batch) *Vec { return constVec(val, b.length) }, nil
	case *expr.Col:
		i := s.Index(t.Name)
		if i < 0 {
			return nil, fmt.Errorf("colstore: column %q not found in %s", t.Name, s)
		}
		return func(b *Batch) *Vec { return b.cols[i] }, nil
	case *expr.Unary:
		x, err := CompileVec(t.X, s)
		if err != nil {
			return nil, err
		}
		switch t.Op {
		case "-":
			return func(b *Batch) *Vec { return vecNeg(x(b)) }, nil
		case "not", "!":
			return func(b *Batch) *Vec { return vecNot(x(b)) }, nil
		}
		return nil, fmt.Errorf("colstore: unknown unary operator %q", t.Op)
	case *expr.Tuple:
		return nil, fmt.Errorf("colstore: value list is only valid after 'in'")
	case *expr.Binary:
		return compileBinary(t, s)
	}
	return nil, fmt.Errorf("colstore: unsupported expression node %T", n)
}

// CompileVecSrc parses and compiles an expression source string.
func CompileVecSrc(src string, s *schema.Schema) (VecEval, error) {
	n, err := expr.Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileVec(n, s)
}

func compileBinary(n *expr.Binary, s *schema.Schema) (VecEval, error) {
	l, err := CompileVec(n.L, s)
	if err != nil {
		return nil, err
	}
	// `in` with a value list has no right-hand evaluator.
	if tup, ok := n.R.(*expr.Tuple); ok {
		if n.Op != "in" {
			return nil, fmt.Errorf("colstore: value list is only valid after 'in'")
		}
		items := make([]VecEval, len(tup.Items))
		for i, it := range tup.Items {
			ev, err := CompileVec(it, s)
			if err != nil {
				return nil, err
			}
			items[i] = ev
		}
		return func(b *Batch) *Vec { return vecIn(l(b), evalAll(items, b)) }, nil
	}
	r, err := CompileVec(n.R, s)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case "and", "&&":
		return func(b *Batch) *Vec { return vecAnd(l(b), r(b)) }, nil
	case "or", "||":
		return func(b *Batch) *Vec { return vecOr(l(b), r(b)) }, nil
	case "<":
		return cmpVecEval(l, r, func(c int) bool { return c < 0 }), nil
	case "<=":
		return cmpVecEval(l, r, func(c int) bool { return c <= 0 }), nil
	case ">":
		return cmpVecEval(l, r, func(c int) bool { return c > 0 }), nil
	case ">=":
		return cmpVecEval(l, r, func(c int) bool { return c >= 0 }), nil
	case "==", "=":
		return cmpVecEval(l, r, func(c int) bool { return c == 0 }), nil
	case "!=":
		return cmpVecEval(l, r, func(c int) bool { return c != 0 }), nil
	case "contains":
		return func(b *Batch) *Vec { return vecContains(l(b), r(b)) }, nil
	case "in":
		return cmpVecEval(l, r, func(c int) bool { return c == 0 }), nil
	case "+", "-", "*", "/", "%":
		op := n.Op
		return func(b *Batch) *Vec { return vecArith(op, l(b), r(b)) }, nil
	}
	return nil, fmt.Errorf("colstore: unknown operator %q", n.Op)
}

func evalAll(evs []VecEval, b *Batch) []*Vec {
	out := make([]*Vec, len(evs))
	for i, ev := range evs {
		out[i] = ev(b)
	}
	return out
}

// constVec builds a broadcast vector holding one literal value.
func constVec(val value.V, n int) *Vec {
	v := &Vec{kind: val.Kind(), length: n, constant: true}
	switch val.Kind() {
	case value.Bool:
		v.bools = []bool{val.Bool()}
	case value.Int:
		v.ints = []int64{val.Int()}
	case value.Float:
		v.floats = []float64{val.Float()}
	case value.String:
		v.strs = []string{val.Str()}
	case value.Null:
		// kind Null: every element reads as VNull.
	default:
		v.kind = anyKind
		v.anys = []value.V{val}
	}
	return v
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// stride returns the per-element index multiplier for a payload slice:
// 0 for a broadcast (constant) vector, 1 for a dense one.
func stride(v *Vec) int {
	if v.constant {
		return 0
	}
	return 1
}

// cmpVecEval builds the evaluator for one comparison operator.
func cmpVecEval(l, r VecEval, ok func(int) bool) VecEval {
	return func(b *Batch) *Vec { return vecCmp(ok, l(b), r(b)) }
}

// vecCmp compares two vectors element-wise under value.Compare,
// producing a bool vector. Same-kind int/float/string pairs with no
// nulls run as typed loops; everything else (nulls, mixed kinds,
// boxed vectors) goes through the scalar comparator.
func vecCmp(ok func(int) bool, a, b *Vec) *Vec {
	n := a.length
	out := newVec(value.Bool, n)
	if a.kind == b.kind && !a.hasNulls() && !b.hasNulls() {
		switch a.kind {
		case value.Int:
			xs, xe := a.ints, stride(a)
			ys, ye := b.ints, stride(b)
			for i := 0; i < n; i++ {
				out.bools[i] = ok(cmpInt64(xs[i*xe], ys[i*ye]))
			}
			return out
		case value.Float:
			xs, xe := a.floats, stride(a)
			ys, ye := b.floats, stride(b)
			for i := 0; i < n; i++ {
				out.bools[i] = ok(cmpFloat(xs[i*xe], ys[i*ye]))
			}
			return out
		case value.String:
			xs, xe := a.strs, stride(a)
			ys, ye := b.strs, stride(b)
			for i := 0; i < n; i++ {
				out.bools[i] = ok(strings.Compare(xs[i*xe], ys[i*ye]))
			}
			return out
		}
	}
	// Mixed int/float pairs compare numerically under value.Compare, so a
	// null-free pair can run as a typed float loop (an int column against
	// a float constant is the common filter shape).
	if numericPair(a, b) {
		for i := 0; i < n; i++ {
			out.bools[i] = ok(cmpFloat(floatAt(a, i), floatAt(b, i)))
		}
		return out
	}
	for i := 0; i < n; i++ {
		out.bools[i] = ok(value.Compare(a.At(i), b.At(i)))
	}
	return out
}

// numericPair reports whether both vectors are null-free int or float
// vectors (of differing kinds — same kinds took the typed loop above).
func numericPair(a, b *Vec) bool {
	num := func(k value.Kind) bool { return k == value.Int || k == value.Float }
	return num(a.kind) && num(b.kind) && !a.hasNulls() && !b.hasNulls()
}

// floatAt reads element i of a null-free int or float vector as float64,
// mirroring value.V.Float for those kinds.
func floatAt(v *Vec, i int) float64 {
	if v.kind == value.Int {
		return float64(v.ints[i*stride(v)])
	}
	return v.floats[i*stride(v)]
}

// vecArith applies an arithmetic operator element-wise under the exact
// expr.Arith coercion rules. Int/int pairs run as typed loops even with
// nulls (a null coerces to 0, which is what the zero payload stores);
// float/float pairs run typed only when null-free, because Arith on two
// nulls yields the int 0, not a float. Everything else falls back to
// the scalar path.
func vecArith(op string, a, b *Vec) *Vec {
	n := a.length
	if a.kind == value.Int && b.kind == value.Int {
		out := newVec(value.Int, n)
		xs, xe := a.ints, stride(a)
		ys, ye := b.ints, stride(b)
		switch op {
		case "+":
			for i := 0; i < n; i++ {
				out.ints[i] = xs[i*xe] + ys[i*ye]
			}
			return out
		case "-":
			for i := 0; i < n; i++ {
				out.ints[i] = xs[i*xe] - ys[i*ye]
			}
			return out
		case "*":
			for i := 0; i < n; i++ {
				out.ints[i] = xs[i*xe] * ys[i*ye]
			}
			return out
		case "/", "%":
			for i := 0; i < n; i++ {
				y := ys[i*ye]
				if y == 0 {
					out.setNull(i)
					continue
				}
				if op == "/" {
					out.ints[i] = xs[i*xe] / y
				} else {
					out.ints[i] = xs[i*xe] % y
				}
			}
			return out
		}
	}
	if a.kind == value.Float && b.kind == value.Float &&
		!a.hasNulls() && !b.hasNulls() && op != "%" {
		out := newVec(value.Float, n)
		xs, xe := a.floats, stride(a)
		ys, ye := b.floats, stride(b)
		switch op {
		case "+":
			for i := 0; i < n; i++ {
				out.floats[i] = xs[i*xe] + ys[i*ye]
			}
			return out
		case "-":
			for i := 0; i < n; i++ {
				out.floats[i] = xs[i*xe] - ys[i*ye]
			}
			return out
		case "*":
			for i := 0; i < n; i++ {
				out.floats[i] = xs[i*xe] * ys[i*ye]
			}
			return out
		case "/":
			for i := 0; i < n; i++ {
				y := ys[i*ye]
				if y == 0 {
					out.setNull(i)
					continue
				}
				out.floats[i] = xs[i*xe] / y
			}
			return out
		}
	}
	// Exactly one float side: Arith computes these in float ("%" stays
	// integral). Null-free only — a null in each operand at the same row
	// would yield the int 0 under Arith, not a float.
	if mixedNumeric(a, b) && op != "%" {
		out := newVec(value.Float, n)
		switch op {
		case "+":
			for i := 0; i < n; i++ {
				out.floats[i] = floatAt(a, i) + floatAt(b, i)
			}
			return out
		case "-":
			for i := 0; i < n; i++ {
				out.floats[i] = floatAt(a, i) - floatAt(b, i)
			}
			return out
		case "*":
			for i := 0; i < n; i++ {
				out.floats[i] = floatAt(a, i) * floatAt(b, i)
			}
			return out
		case "/":
			for i := 0; i < n; i++ {
				y := floatAt(b, i)
				if y == 0 {
					out.setNull(i)
					continue
				}
				out.floats[i] = floatAt(a, i) / y
			}
			return out
		}
	}
	vals := make([]value.V, n)
	for i := 0; i < n; i++ {
		vals[i] = expr.Arith(op, a.At(i), b.At(i))
	}
	return compress(vals)
}

// mixedNumeric reports a null-free int/float (or float/int) pair.
func mixedNumeric(a, b *Vec) bool {
	return numericPair(a, b) && (a.kind == value.Float) != (b.kind == value.Float)
}

// truthyBools evaluates Truthy element-wise. Null payload slots store
// zero values, which are exactly the falsy ones, so typed loops need no
// null checks.
func truthyBools(v *Vec) []bool {
	n := v.length
	out := make([]bool, n)
	switch v.kind {
	case value.Null:
		// all false
	case value.Bool:
		xs, xe := v.bools, stride(v)
		for i := 0; i < n; i++ {
			out[i] = xs[i*xe]
		}
	case value.Int:
		xs, xe := v.ints, stride(v)
		for i := 0; i < n; i++ {
			out[i] = xs[i*xe] != 0
		}
	case value.Float:
		xs, xe := v.floats, stride(v)
		for i := 0; i < n; i++ {
			out[i] = xs[i*xe] != 0
		}
	case value.String:
		xs, xe := v.strs, stride(v)
		for i := 0; i < n; i++ {
			out[i] = xs[i*xe] != ""
		}
	default:
		for i := 0; i < n; i++ {
			out[i] = v.At(i).Truthy()
		}
	}
	return out
}

func boolsVec(bs []bool) *Vec {
	return &Vec{kind: value.Bool, bools: bs, length: len(bs)}
}

func vecAnd(a, b *Vec) *Vec {
	x, y := truthyBools(a), truthyBools(b)
	for i := range x {
		x[i] = x[i] && y[i]
	}
	return boolsVec(x)
}

func vecOr(a, b *Vec) *Vec {
	x, y := truthyBools(a), truthyBools(b)
	for i := range x {
		x[i] = x[i] || y[i]
	}
	return boolsVec(x)
}

func vecNot(a *Vec) *Vec {
	x := truthyBools(a)
	for i := range x {
		x[i] = !x[i]
	}
	return boolsVec(x)
}

// vecNeg negates element-wise: floats negate as floats, everything
// else through the int coercion — the row evaluator's unary minus.
func vecNeg(a *Vec) *Vec {
	n := a.length
	if a.kind == value.Int {
		// Null slots store 0; -null coerces to int 0 on the row path too.
		out := newVec(value.Int, n)
		xs, xe := a.ints, stride(a)
		for i := 0; i < n; i++ {
			out.ints[i] = -xs[i*xe]
		}
		return out
	}
	if a.kind == value.Float && !a.hasNulls() {
		out := newVec(value.Float, n)
		xs, xe := a.floats, stride(a)
		for i := 0; i < n; i++ {
			out.floats[i] = -xs[i*xe]
		}
		return out
	}
	vals := make([]value.V, n)
	for i := 0; i < n; i++ {
		v := a.At(i)
		if v.Kind() == value.Float {
			vals[i] = value.NewFloat(-v.Float())
		} else {
			vals[i] = value.NewInt(-v.Int())
		}
	}
	return compress(vals)
}

func vecContains(a, b *Vec) *Vec {
	n := a.length
	out := newVec(value.Bool, n)
	if a.kind == value.String && b.kind == value.String && !a.hasNulls() && !b.hasNulls() {
		xs, xe := a.strs, stride(a)
		ys, ye := b.strs, stride(b)
		for i := 0; i < n; i++ {
			out.bools[i] = strings.Contains(xs[i*xe], ys[i*ye])
		}
		return out
	}
	for i := 0; i < n; i++ {
		out.bools[i] = strings.Contains(a.At(i).Str(), b.At(i).Str())
	}
	return out
}

func vecIn(a *Vec, items []*Vec) *Vec {
	n := a.length
	out := newVec(value.Bool, n)
	for i := 0; i < n; i++ {
		v := a.At(i)
		for _, it := range items {
			if value.Equal(v, it.At(i)) {
				out.bools[i] = true
				break
			}
		}
	}
	return out
}

// sortBatch returns a batch with rows stably ordered by keys — the
// columnar analogue of table.Sort.
func sortBatch(b *Batch, keys []table.SortKey) (*Batch, error) {
	if len(keys) == 0 {
		return b, nil
	}
	type bound struct {
		col  *Vec
		desc bool
	}
	bounds := make([]bound, len(keys))
	for i, k := range keys {
		j := b.schema.Index(k.Column)
		if j < 0 {
			return nil, fmt.Errorf("colstore: sort column %q not found", k.Column)
		}
		bounds[i] = bound{col: b.cols[j], desc: k.Desc}
	}
	idx := make([]int, b.length)
	for i := range idx {
		idx[i] = i
	}
	stableSortIdx(idx, func(x, y int) bool {
		for _, k := range bounds {
			c := value.Compare(k.col.At(x), k.col.At(y))
			if c == 0 {
				continue
			}
			if k.desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return b.Select(idx), nil
}
