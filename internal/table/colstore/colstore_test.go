package colstore

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"shareinsights/internal/expr"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
	"shareinsights/internal/value"
)

// qc mirrors the property-test configuration used in internal/task:
// enough iterations to explore the space, cheap enough for every run.
var qc = &quick.Config{MaxCount: 100}

// --- Bitmap invariants ---------------------------------------------------

// TestBitmapInvariants drives a bitmap with a random op sequence and
// checks it against a reference set: Get/Count/Indices/Empty must agree
// at every step, and Indices must be ascending.
func TestBitmapInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		const n = 137 // crosses a word boundary twice
		b := NewBitmap(n)
		ref := map[int]bool{}
		for _, op := range ops {
			i := int(op>>1) % n
			if op&1 == 0 {
				b.Set(i)
				ref[i] = true
			} else {
				b.Clear(i)
				delete(ref, i)
			}
		}
		if b.Len() != n || b.Count() != len(ref) || b.Empty() != (len(ref) == 0) {
			return false
		}
		idx := b.Indices()
		if len(idx) != len(ref) {
			return false
		}
		for k, i := range idx {
			if !ref[i] || (k > 0 && idx[k-1] >= i) {
				return false
			}
		}
		for i := 0; i < n; i++ {
			if b.Get(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, qc); err != nil {
		t.Fatal(err)
	}
}

// TestBitmapSetOps checks And/Or against per-bit boolean logic and that
// Clone is independent of its source.
func TestBitmapSetOps(t *testing.T) {
	f := func(xs, ys []bool) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		a, b := NewBitmap(n), NewBitmap(n)
		for i := 0; i < n; i++ {
			if xs[i] {
				a.Set(i)
			}
			if ys[i] {
				b.Set(i)
			}
		}
		and, or := a.Clone(), a.Clone()
		and.And(b)
		or.Or(b)
		for i := 0; i < n; i++ {
			if and.Get(i) != (xs[i] && ys[i]) || or.Get(i) != (xs[i] || ys[i]) {
				return false
			}
			// Clone must not have fed back into the source.
			if a.Get(i) != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, qc); err != nil {
		t.Fatal(err)
	}
}

// --- Row <-> column round trip -------------------------------------------

// mixedTable builds a four-column table (int, float, string, bool) with
// nulls controlled by the mask bytes: bit k of masks[i] nulls column k in
// row i. Row count is the shortest input slice.
func mixedTable(ints []int64, floats []float64, strs []string, bools []bool, masks []byte) *table.Table {
	n := len(ints)
	for _, m := range []int{len(floats), len(strs), len(bools), len(masks)} {
		if m < n {
			n = m
		}
	}
	tb := table.New(schema.MustFromNames("a", "b", "s", "flag"))
	cell := func(v value.V, null bool) value.V {
		if null {
			return value.VNull
		}
		return v
	}
	for i := 0; i < n; i++ {
		f := floats[i]
		switch i % 7 {
		case 3:
			f = math.NaN()
		case 5:
			f = math.Inf(1)
		}
		tb.AppendValues(
			cell(value.NewInt(ints[i]), masks[i]&1 != 0),
			cell(value.NewFloat(f), masks[i]&2 != 0),
			cell(value.NewString(strs[i]), masks[i]&4 != 0),
			cell(value.NewBool(bools[i]), masks[i]&8 != 0),
		)
	}
	return tb
}

// TestRoundTripProperty: FromTable followed by ToTable must reproduce the
// original table exactly, for any mix of kinds and null patterns.
func TestRoundTripProperty(t *testing.T) {
	f := func(ints []int64, floats []float64, strs []string, bools []bool, masks []byte) bool {
		tb := mixedTable(ints, floats, strs, bools, masks)
		b, ok := FromTable(tb)
		if !ok {
			return false
		}
		if b.Len() != tb.Len() {
			return false
		}
		return b.ToTable().Equal(tb)
	}
	if err := quick.Check(f, qc); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripAllNullAndEmpty covers the degenerate shapes the property
// generator rarely hits head-on.
func TestRoundTripAllNullAndEmpty(t *testing.T) {
	empty := table.New(schema.MustFromNames("x", "y"))
	b, ok := FromTable(empty)
	if !ok || b.Len() != 0 || !b.ToTable().Equal(empty) {
		t.Fatalf("empty table did not round-trip")
	}
	nulls := table.New(schema.MustFromNames("x"))
	for i := 0; i < 5; i++ {
		nulls.AppendValues(value.VNull)
	}
	b, ok = FromTable(nulls)
	if !ok || !b.ToTable().Equal(nulls) {
		t.Fatalf("all-null column did not round-trip")
	}
	if b.Col(0).Kind() != value.Null {
		t.Fatalf("all-null column kind = %v, want Null", b.Col(0).Kind())
	}
}

// TestFromTableRejects: Time columns and mixed-kind columns have no
// vector representation and must make FromTable decline (the engine then
// stays on the row path).
func TestFromTableRejects(t *testing.T) {
	tt := table.New(schema.MustFromNames("ts"))
	tt.AppendValues(value.NewTime(time.Unix(0, 0).UTC()))
	if _, ok := FromTable(tt); ok {
		t.Fatalf("FromTable accepted a Time column")
	}
	mixed := table.New(schema.MustFromNames("m"))
	mixed.AppendValues(value.NewInt(1))
	mixed.AppendValues(value.NewString("two"))
	if _, ok := FromTable(mixed); ok {
		t.Fatalf("FromTable accepted a mixed-kind column")
	}
}

// --- Selection vectors ----------------------------------------------------

// TestSelectComposition: selecting twice must equal selecting once with
// the composed index vector, and SelectBitmap must agree with
// Select(Indices()).
func TestSelectComposition(t *testing.T) {
	f := func(ints []int64, floats []float64, strs []string, bools []bool, masks []byte, pick1, pick2 []uint16) bool {
		tb := mixedTable(ints, floats, strs, bools, masks)
		b, ok := FromTable(tb)
		if !ok {
			return false
		}
		if b.Len() == 0 {
			return true
		}
		idx1 := make([]int, len(pick1))
		for i, p := range pick1 {
			idx1[i] = int(p) % b.Len()
		}
		s1 := b.Select(idx1)
		if len(idx1) == 0 {
			return s1.Len() == 0
		}
		idx2 := make([]int, len(pick2))
		composed := make([]int, len(pick2))
		for i, p := range pick2 {
			idx2[i] = int(p) % s1.Len()
			composed[i] = idx1[idx2[i]]
		}
		if !s1.Select(idx2).ToTable().Equal(b.Select(composed).ToTable()) {
			return false
		}
		sel := NewBitmap(b.Len())
		for _, i := range idx1 {
			sel.Set(i)
		}
		return b.SelectBitmap(sel).ToTable().Equal(b.Select(sel.Indices()).ToTable())
	}
	if err := quick.Check(f, qc); err != nil {
		t.Fatal(err)
	}
}

// --- Vectorized expressions vs row expressions ---------------------------

// exprCases is the operator coverage for the differential expression
// property: arithmetic (incl. zero divisors), comparison, logic, string
// ops and membership, over nullable int/float and string/bool columns.
var exprCases = []string{
	"a + b",
	"a * 2 - 1",
	"a % 2",
	"b / a",
	"a / 0",
	"-a",
	"-b",
	"a > b",
	"a >= 1.5",
	"a == b",
	"a != 1",
	"b <= 0.5",
	"not flag",
	"flag and a > 0",
	"a > 1 or b < 0.5",
	"s contains 'ab'",
	"s == 'abc'",
	"s + '!'",
	"a in (1, 2, 3)",
	"s in ('x', 'abc')",
	"(a + 1) * (a - 1)",
}

// TestVecExprMatchesRowExpr is the core equivalence property for the
// vectorized expression compiler: for every supported operator, the
// batch evaluation must produce the same value AND the same kind as the
// row-at-a-time evaluator — kind drift would silently change group-by
// keys downstream.
func TestVecExprMatchesRowExpr(t *testing.T) {
	for _, src := range exprCases {
		src := src
		t.Run(src, func(t *testing.T) {
			f := func(ints []int64, floats []float64, strs []string, bools []bool, masks []byte) bool {
				tb := mixedTable(ints, floats, strs, bools, masks)
				b, ok := FromTable(tb)
				if !ok {
					return false
				}
				rowEv, err := expr.Compile(src, tb.Schema())
				if err != nil {
					t.Fatalf("row compile %q: %v", src, err)
				}
				vecEv, err := CompileVecSrc(src, tb.Schema())
				if err != nil {
					t.Fatalf("vec compile %q: %v", src, err)
				}
				out := vecEv(b)
				if out.Len() != tb.Len() {
					return false
				}
				for i, row := range tb.Rows() {
					want, got := rowEv(row), out.At(i)
					if want.Kind() != got.Kind() || !value.Equal(want, got) {
						t.Logf("row %d: row path %v (%v) vs vec path %v (%v)",
							i, want, want.Kind(), got, got.Kind())
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, qc); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// --- Kernel semantics -----------------------------------------------------

// TestTopNMatchesStableSort checks the heap-based TopN against the
// obvious reference (stable sort, take limit), across ties, nulls and
// both directions.
func TestTopNMatchesStableSort(t *testing.T) {
	f := func(ints []int64, floats []float64, strs []string, bools []bool, masks []byte, limit8 uint8, desc bool) bool {
		tb := mixedTable(ints, floats, strs, bools, masks)
		b, ok := FromTable(tb)
		if !ok {
			return false
		}
		limit := int(limit8%16) + 1
		got, err := (&TopN{Key: 0, Desc: desc, Limit: limit}).Run(b)
		if err != nil {
			return false
		}
		cmp := keyComparator(b.Col(0))
		idx := make([]int, b.Len())
		for i := range idx {
			idx[i] = i
		}
		stableSortIdx(idx, func(i, j int) bool {
			c := cmp(i, j)
			if desc {
				c = -c
			}
			return c < 0
		})
		if limit < len(idx) {
			idx = idx[:limit]
		}
		return got.ToTable().Equal(b.Select(idx).ToTable())
	}
	if err := quick.Check(f, qc); err != nil {
		t.Fatal(err)
	}
}

// TestGroupByNullSemantics pins the row engine's aggregate null
// conventions: sum over an all-null group is Int 0, avg/min/max over an
// all-null group are null, and count counts every row including nulls.
func TestGroupByNullSemantics(t *testing.T) {
	tb := table.New(schema.MustFromNames("k", "v"))
	tb.AppendValues(value.NewString("a"), value.VNull)
	tb.AppendValues(value.NewString("a"), value.VNull)
	tb.AppendValues(value.NewString("b"), value.NewFloat(1.5))
	tb.AppendValues(value.NewString("b"), value.NewFloat(2.5))
	b, ok := FromTable(tb)
	if !ok {
		t.Fatal("FromTable declined")
	}
	k := &GroupBy{
		Keys: []int{0},
		Aggs: []Agg{
			{Op: AggSum, Col: 1},
			{Op: AggAvg, Col: 1},
			{Op: AggMin, Col: 1},
			{Op: AggMax, Col: 1},
			{Op: AggCount, Col: -1},
		},
		Out:      schema.MustFromNames("k", "sum", "avg", "min", "max", "count"),
		SortKeys: []table.SortKey{{Column: "k"}},
	}
	out, err := k.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	res := out.ToTable()
	if res.Len() != 2 {
		t.Fatalf("got %d groups, want 2", res.Len())
	}
	// Group "a": all inputs null.
	if v := res.Cell(0, "sum"); v.Kind() != value.Int || v.Int() != 0 {
		t.Errorf("all-null sum = %v (%v), want Int 0", v, v.Kind())
	}
	for _, col := range []string{"avg", "min", "max"} {
		if v := res.Cell(0, col); v.Kind() != value.Null {
			t.Errorf("all-null %s = %v, want null", col, v)
		}
	}
	if v := res.Cell(0, "count"); v.Int() != 2 {
		t.Errorf("count = %v, want 2 (nulls are counted)", v)
	}
	// Group "b": ordinary float aggregates.
	if v := res.Cell(1, "sum"); v.Float() != 4.0 {
		t.Errorf("sum = %v, want 4", v)
	}
	if v := res.Cell(1, "avg"); v.Float() != 2.0 {
		t.Errorf("avg = %v, want 2", v)
	}
	if v := res.Cell(1, "min"); v.Float() != 1.5 {
		t.Errorf("min = %v, want 1.5", v)
	}
	if v := res.Cell(1, "max"); v.Float() != 2.5 {
		t.Errorf("max = %v, want 2.5", v)
	}
}

// TestGroupByFallback: aggregating sum over a string column has no
// vectorized meaning; the kernel must surface ErrFallback so the engine
// reruns the stage on the row path rather than guessing.
func TestGroupByFallback(t *testing.T) {
	tb := table.New(schema.MustFromNames("k", "v"))
	tb.AppendValues(value.NewString("a"), value.NewString("x"))
	b, ok := FromTable(tb)
	if !ok {
		t.Fatal("FromTable declined")
	}
	k := &GroupBy{
		Keys: []int{0},
		Aggs: []Agg{{Op: AggSum, Col: 1}},
		Out:  schema.MustFromNames("k", "sum"),
	}
	if _, err := k.Run(b); err != ErrFallback {
		t.Fatalf("err = %v, want ErrFallback", err)
	}
}

// TestFilterKernel: the filter kernel must keep exactly the rows whose
// predicate is truthy, in input order.
func TestFilterKernel(t *testing.T) {
	f := func(ints []int64, floats []float64, strs []string, bools []bool, masks []byte) bool {
		tb := mixedTable(ints, floats, strs, bools, masks)
		b, ok := FromTable(tb)
		if !ok {
			return false
		}
		const src = "a > 0 and flag"
		pred, err := CompileVecSrc(src, tb.Schema())
		if err != nil {
			t.Fatal(err)
		}
		got, err := (&Filter{Pred: pred}).Run(b)
		if err != nil {
			return false
		}
		rowEv, err := expr.Compile(src, tb.Schema())
		if err != nil {
			t.Fatal(err)
		}
		want := table.New(tb.Schema())
		for _, row := range tb.Rows() {
			if rowEv(row).Truthy() {
				want.Append(row)
			}
		}
		return got.ToTable().Equal(want)
	}
	if err := quick.Check(f, qc); err != nil {
		t.Fatal(err)
	}
}
