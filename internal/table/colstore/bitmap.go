package colstore

import "math/bits"

// Bitmap is a fixed-length bitset over row positions. Vectors use it for
// null tracking (a set bit marks a null cell) and the filter kernel uses
// it as a selection bitmap (a set bit keeps the row).
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns an all-zero bitmap over n positions.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of positions.
func (b *Bitmap) Len() int { return b.n }

// Set sets bit i.
func (b *Bitmap) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b *Bitmap) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bit is set.
func (b *Bitmap) Empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// And intersects o into b. Both bitmaps must have the same length.
func (b *Bitmap) And(o *Bitmap) {
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// Or unions o into b. Both bitmaps must have the same length.
func (b *Bitmap) Or(o *Bitmap) {
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
}

// Indices returns the positions of the set bits, ascending — the
// selection vector corresponding to the bitmap.
func (b *Bitmap) Indices() []int {
	out := make([]int, 0, b.Count())
	for wi, w := range b.words {
		base := wi << 6
		for w != 0 {
			out = append(out, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}

// Clone returns an independent copy.
func (b *Bitmap) Clone() *Bitmap {
	return &Bitmap{words: append([]uint64(nil), b.words...), n: b.n}
}
