package colstore

import (
	"errors"
	"sort"
	"strconv"
	"strings"

	"shareinsights/internal/schema"
	"shareinsights/internal/table"
	"shareinsights/internal/value"
)

// ErrFallback reports that a kernel met data it has no typed path for
// (an aggregate over a mixed or string column, say). The engine catches
// it and re-runs the stage through the row kernel — never an error the
// user sees.
var ErrFallback = errors.New("colstore: not vectorizable for this data")

// Kernel is one vectorized pipeline stage: a batch in, a batch out.
type Kernel interface {
	Run(b *Batch) (*Batch, error)
}

// ---------------------------------------------------------------------
// filter

// Filter keeps the rows whose predicate evaluates truthy: the predicate
// runs per-column into a selection bitmap, and the kept rows gather
// into a new batch.
type Filter struct {
	// Pred is the compiled predicate (CompileVec of the
	// filter_expression).
	Pred VecEval
}

// Run implements Kernel.
func (k *Filter) Run(b *Batch) (*Batch, error) {
	keep := truthyBools(k.Pred(b))
	sel := NewBitmap(b.length)
	for i, t := range keep {
		if t {
			sel.Set(i)
		}
	}
	return b.SelectBitmap(sel), nil
}

// ---------------------------------------------------------------------
// map-expr

// MapExpr computes one expression column over the whole batch — the
// vectorized `map` task with the expr operator. Input columns are
// shared, not copied; only the computed column is new.
type MapExpr struct {
	// Eval is the compiled expression.
	Eval VecEval
	// Out is the output schema (input extended with, or overwriting,
	// the output column) and Slot the output column's index in it.
	Out  *schema.Schema
	Slot int
}

// Run implements Kernel.
func (k *MapExpr) Run(b *Batch) (*Batch, error) {
	return b.withColumn(k.Out, k.Slot, k.Eval(b).densify()), nil
}

// ---------------------------------------------------------------------
// topn

// TopN keeps the first Limit rows by one key column — a bounded-heap
// selection instead of a full sort when the input is larger than the
// budget. Configuration mirrors the topn task restricted to a single
// global group and a single order key.
type TopN struct {
	// Key is the order column's index; Desc flips the order.
	Key  int
	Desc bool
	// Limit is the row budget.
	Limit int
}

// Run implements Kernel.
func (k *TopN) Run(b *Batch) (*Batch, error) {
	n := b.length
	cmp := keyComparator(b.cols[k.Key])
	// less is the row order of the output: key order, ties broken by
	// original position — exactly the row kernel's stable sort.
	less := func(i, j int) bool {
		c := cmp(i, j)
		if c != 0 {
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return i < j
	}
	if n <= k.Limit {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(x, y int) bool { return less(idx[x], idx[y]) })
		return b.Select(idx), nil
	}
	// Bounded heap: the worst kept row sits at the root; a better
	// candidate evicts it. O(n log limit) instead of O(n log n).
	h := make([]int, k.Limit)
	for i := range h {
		h[i] = i
	}
	worse := func(i, j int) bool { return less(j, i) }
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i, worse)
	}
	for i := k.Limit; i < n; i++ {
		if less(i, h[0]) {
			h[0] = i
			siftDown(h, 0, worse)
		}
	}
	sort.Slice(h, func(x, y int) bool { return less(h[x], h[y]) })
	return b.Select(h), nil
}

// siftDown restores the heap property at root i under the given
// ordering (the "largest" element, per worse, bubbles to the top).
func siftDown(h []int, i int, worse func(a, b int) bool) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && worse(h[r], h[l]) {
			m = r
		}
		if !worse(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// keyComparator builds a three-way comparator over a vector's elements,
// equal to value.Compare on the reconstructed values: nulls first, then
// the typed payload order.
func keyComparator(v *Vec) func(i, j int) int {
	var core func(i, j int) int
	switch v.kind {
	case value.Int:
		core = func(i, j int) int { return cmpInt64(v.ints[i], v.ints[j]) }
	case value.Float:
		core = func(i, j int) int { return cmpFloat(v.floats[i], v.floats[j]) }
	case value.String:
		core = func(i, j int) int { return strings.Compare(v.strs[i], v.strs[j]) }
	default:
		core = func(i, j int) int { return value.Compare(v.At(i), v.At(j)) }
	}
	if !v.hasNulls() {
		return core
	}
	return func(i, j int) int {
		in, jn := v.null(i), v.null(j)
		switch {
		case in && jn:
			return 0
		case in:
			return -1
		case jn:
			return 1
		}
		return core(i, j)
	}
}

func stableSortIdx(idx []int, less func(i, j int) bool) {
	sort.SliceStable(idx, func(x, y int) bool { return less(idx[x], idx[y]) })
}

// ---------------------------------------------------------------------
// groupby

// AggOp enumerates the aggregates with a typed columnar path. The rest
// of the aggregate registry (count_distinct, stddev, user aggregates…)
// keeps the row path.
type AggOp uint8

// The vectorized aggregate operators.
const (
	AggCount AggOp = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// Agg is one aggregate of a GroupBy kernel.
type Agg struct {
	// Op is the aggregate operator.
	Op AggOp
	// Col is the input column the aggregate folds; -1 for a bare count.
	Col int
}

// GroupBy is the vectorized hash aggregation kernel: group ids are
// assigned in one pass over the key columns, then each aggregate folds
// its column in a tight loop over preallocated per-group accumulator
// slices. Grouping identity and output ordering match the row
// hashGrouper exactly (kind-tagged display-form keys; result sorted by
// SortKeys).
type GroupBy struct {
	// Keys are the grouping columns' indices.
	Keys []int
	// Aggs are the aggregates, aligned with Out's trailing columns.
	Aggs []Agg
	// Out is the output schema: key columns then aggregate columns.
	Out *schema.Schema
	// SortKeys is the final output ordering (group keys ascending, or
	// the first aggregate descending first under orderby_aggregates).
	SortKeys []table.SortKey
}

// Run implements Kernel.
func (k *GroupBy) Run(b *Batch) (*Batch, error) {
	for _, a := range k.Aggs {
		if a.Col < 0 {
			continue
		}
		kind := b.cols[a.Col].kind
		switch a.Op {
		case AggSum, AggAvg:
			if kind != value.Int && kind != value.Float && kind != value.Bool && kind != value.Null {
				return nil, ErrFallback
			}
		case AggMin, AggMax:
			if kind != value.Int && kind != value.Float && kind != value.String && kind != value.Null {
				return nil, ErrFallback
			}
		}
	}
	n := b.length
	gids := make([]int32, n)
	keyRows := groupIDs(b, k.Keys, gids)
	ng := len(keyRows)
	outCols := make([]*Vec, 0, len(k.Keys)+len(k.Aggs))
	for _, c := range k.Keys {
		outCols = append(outCols, b.cols[c].gather(keyRows))
	}
	for _, a := range k.Aggs {
		outCols = append(outCols, runAgg(a, b, gids, ng))
	}
	out := &Batch{schema: k.Out, cols: outCols, length: ng}
	return sortBatch(out, k.SortKeys)
}

// groupIDs assigns a dense group id to every row (into gids) and
// returns the first input row of each group, in first-seen order. A
// single null-free string or int key column — the overwhelmingly common
// group-by shape — hashes its payload directly; everything else builds
// the composite kind-tagged byte key. Both produce the same partition
// and the same first-seen order, because a kind-uniform column's
// payload determines its encoded key and vice versa.
func groupIDs(b *Batch, keys []int, gids []int32) (keyRows []int) {
	if len(keys) == 1 {
		v := b.cols[keys[0]]
		if !v.hasNulls() {
			switch v.kind {
			case value.String:
				m := make(map[string]int32, 64)
				for i, s := range v.strs {
					id, ok := m[s]
					if !ok {
						id = int32(len(keyRows))
						m[s] = id
						keyRows = append(keyRows, i)
					}
					gids[i] = id
				}
				return keyRows
			case value.Int:
				m := make(map[int64]int32, 64)
				for i, x := range v.ints {
					id, ok := m[x]
					if !ok {
						id = int32(len(keyRows))
						m[x] = id
						keyRows = append(keyRows, i)
					}
					gids[i] = id
				}
				return keyRows
			}
		}
	}
	groups := make(map[string]int32, 64)
	buf := make([]byte, 0, 64)
	for i := 0; i < b.length; i++ {
		buf = buf[:0]
		for ki, c := range keys {
			if ki > 0 {
				buf = append(buf, 0)
			}
			buf = appendGroupKey(buf, b.cols[c], i)
		}
		id, ok := groups[string(buf)]
		if !ok {
			id = int32(len(keyRows))
			groups[string(buf)] = id
			keyRows = append(keyRows, i)
		}
		gids[i] = id
	}
	return keyRows
}

// appendGroupKey appends one key cell in the row grouper's encoding —
// kind byte plus display form — so both engines assign identical group
// identities.
func appendGroupKey(buf []byte, v *Vec, i int) []byte {
	if v.null(i) {
		return append(buf, byte(value.Null))
	}
	switch v.kind {
	case value.Bool:
		buf = append(buf, byte(value.Bool))
		if v.bools[i] {
			return append(buf, "true"...)
		}
		return append(buf, "false"...)
	case value.Int:
		buf = append(buf, byte(value.Int))
		return strconv.AppendInt(buf, v.ints[i], 10)
	case value.Float:
		buf = append(buf, byte(value.Float))
		return strconv.AppendFloat(buf, v.floats[i], 'g', -1, 64)
	case value.String:
		buf = append(buf, byte(value.String))
		return append(buf, v.strs[i]...)
	default:
		val := v.At(i)
		buf = append(buf, byte(val.Kind()))
		return val.AppendTo(buf)
	}
}

// runAgg folds one aggregate over the whole batch into a per-group
// result vector. Semantics replicate the row accumulators: sum/avg/
// min/max skip nulls, count counts every row, an empty fold yields
// null (avg/min/max) or zero (sum/count).
func runAgg(a Agg, b *Batch, gids []int32, ng int) *Vec {
	if a.Op == AggCount {
		counts := make([]int64, ng)
		for _, g := range gids {
			counts[g]++
		}
		return &Vec{kind: value.Int, ints: counts, length: ng}
	}
	col := b.cols[a.Col]
	switch a.Op {
	case AggSum:
		return aggSum(col, gids, ng)
	case AggAvg:
		return aggAvg(col, gids, ng)
	case AggMin:
		return aggMinMax(col, gids, ng, true)
	case AggMax:
		return aggMinMax(col, gids, ng, false)
	}
	// Unreachable: kernels are built only with the operators above.
	panic("colstore: unknown aggregate op")
}

func aggSum(col *Vec, gids []int32, ng int) *Vec {
	if col.kind == value.Float {
		sums := make([]float64, ng)
		if !col.hasNulls() {
			for i, g := range gids {
				sums[g] += col.floats[i]
			}
			return &Vec{kind: value.Float, floats: sums, length: ng}
		}
		// A group with only nulls sums to the int 0 on the row path
		// (the accumulator never sees a float); track which groups saw
		// a value so the kinds come out identical.
		seen := make([]bool, ng)
		for i, g := range gids {
			if !col.nulls.Get(i) {
				sums[g] += col.floats[i]
				seen[g] = true
			}
		}
		allSeen := true
		for _, s := range seen {
			if !s {
				allSeen = false
				break
			}
		}
		if allSeen {
			return &Vec{kind: value.Float, floats: sums, length: ng}
		}
		vals := make([]value.V, ng)
		for g := range vals {
			if seen[g] {
				vals[g] = value.NewFloat(sums[g])
			} else {
				vals[g] = value.NewInt(0)
			}
		}
		return compress(vals)
	}
	// Int, bool and all-null columns sum as int64; null slots store 0,
	// which is also what the row accumulator's coercion adds.
	sums := make([]int64, ng)
	switch col.kind {
	case value.Int:
		for i, g := range gids {
			sums[g] += col.ints[i]
		}
	case value.Bool:
		for i, g := range gids {
			if col.bools[i] {
				sums[g]++
			}
		}
	}
	return &Vec{kind: value.Int, ints: sums, length: ng}
}

func aggAvg(col *Vec, gids []int32, ng int) *Vec {
	sums := make([]float64, ng)
	counts := make([]int64, ng)
	add := func(i int, g int32) {
		switch col.kind {
		case value.Int:
			sums[g] += float64(col.ints[i])
		case value.Float:
			sums[g] += col.floats[i]
		case value.Bool:
			if col.bools[i] {
				sums[g]++
			}
		}
		counts[g]++
	}
	if col.hasNulls() {
		for i, g := range gids {
			if !col.null(i) {
				add(i, g)
			}
		}
	} else {
		for i, g := range gids {
			add(i, g)
		}
	}
	out := newVec(value.Float, ng)
	for g := range sums {
		if counts[g] == 0 {
			out.setNull(g)
			continue
		}
		out.floats[g] = sums[g] / float64(counts[g])
	}
	return out
}

func aggMinMax(col *Vec, gids []int32, ng int, min bool) *Vec {
	if col.kind == value.Null {
		return newVec(value.Null, ng)
	}
	out := newVec(col.kind, ng)
	set := make([]bool, ng)
	hasNulls := col.hasNulls()
	for i, g := range gids {
		if hasNulls && col.null(i) {
			continue
		}
		if !set[g] {
			set[g] = true
			out.set(int(g), col.At(i))
			continue
		}
		switch col.kind {
		case value.Int:
			x := col.ints[i]
			if min == (x < out.ints[g]) && x != out.ints[g] {
				out.ints[g] = x
			}
		case value.Float:
			x := col.floats[i]
			if (min && x < out.floats[g]) || (!min && x > out.floats[g]) {
				out.floats[g] = x
			}
		case value.String:
			x := col.strs[i]
			if (min && x < out.strs[g]) || (!min && x > out.strs[g]) {
				out.strs[g] = x
			}
		}
	}
	for g, s := range set {
		if !s {
			out.setNull(g)
		}
	}
	return out
}
