// Package table implements the data object: the relation that flows
// between tasks in a ShareInsights pipeline.
//
// The paper makes no distinction between data sources and data sinks
// ("the system internally makes no differentiation between a data source
// and a data sink", §3.4) — both are simply tables with a schema, and a
// sink of one flow can be the source of another.
package table

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"shareinsights/internal/schema"
	"shareinsights/internal/value"
)

// Row is one tuple of a table. Cells align with the table's schema.
type Row []value.V

// Clone returns an independent copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Table is an in-memory relation: a schema plus rows.
type Table struct {
	schema *schema.Schema
	rows   []Row
}

// New returns an empty table with the given schema.
func New(s *schema.Schema) *Table {
	return &Table{schema: s}
}

// FromRows builds a table from pre-built rows. Each row must have exactly
// one cell per schema column.
func FromRows(s *schema.Schema, rows []Row) (*Table, error) {
	for i, r := range rows {
		if len(r) != s.Len() {
			return nil, fmt.Errorf("table: row %d has %d cells, schema has %d columns", i, len(r), s.Len())
		}
	}
	return &Table{schema: s, rows: rows}, nil
}

// Schema returns the table's schema.
func (t *Table) Schema() *schema.Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Rows returns the backing row slice. Callers must treat it as read-only
// unless they own the table: the slice aliases the table's storage, so
// sorting it, growing it, or replacing row headers mutates the table in
// place — and any snapshot (cache entry, shared catalog copy) holding
// the same *Table. Holders of long-lived references should store a
// CloneShallow instead, which is immune to those structural mutations
// (cell values themselves are immutable).
func (t *Table) Rows() []Row { return t.rows }

// CloneShallow returns a copy with a fresh row-header slice sharing the
// row storage of t. The copy is insulated from structural mutation of
// the original — Sort, Append, or writes through the Rows() slice —
// while avoiding Clone's per-cell copy; it is NOT insulated from a
// caller overwriting cells inside an aliased Row. Caches snapshotting
// tables they do not own (last-good source snapshots, the shared
// catalog) use it as a cheap copy-on-write boundary.
func (t *Table) CloneShallow() *Table {
	return &Table{schema: t.schema, rows: append([]Row(nil), t.rows...)}
}

// Row returns the i'th row.
func (t *Table) Row(i int) Row { return t.rows[i] }

// Append adds a row. It panics if the arity is wrong — appends are always
// produced by operators that already know the schema.
func (t *Table) Append(r Row) {
	if len(r) != t.schema.Len() {
		panic(fmt.Sprintf("table: append arity %d != schema %d", len(r), t.schema.Len()))
	}
	t.rows = append(t.rows, r)
}

// AppendValues adds a row built from the given cells.
func (t *Table) AppendValues(cells ...value.V) { t.Append(Row(cells)) }

// Cell returns the value at (row, named column); the null value if the
// column does not exist.
func (t *Table) Cell(row int, col string) value.V {
	i := t.schema.Index(col)
	if i < 0 {
		return value.VNull
	}
	return t.rows[row][i]
}

// Column returns all values of the named column in row order.
func (t *Table) Column(col string) ([]value.V, error) {
	i := t.schema.Index(col)
	if i < 0 {
		return nil, fmt.Errorf("table: column %q not found", col)
	}
	out := make([]value.V, len(t.rows))
	for r, row := range t.rows {
		out[r] = row[i]
	}
	return out, nil
}

// Clone returns a deep copy (rows are copied; values are immutable).
func (t *Table) Clone() *Table {
	rows := make([]Row, len(t.rows))
	for i, r := range t.rows {
		rows[i] = r.Clone()
	}
	return &Table{schema: t.schema.Clone(), rows: rows}
}

// Project returns a new table with only the named columns, in order.
func (t *Table) Project(names ...string) (*Table, error) {
	idx, err := t.schema.Require(names...)
	if err != nil {
		return nil, err
	}
	s, err := t.schema.Project(names...)
	if err != nil {
		return nil, err
	}
	out := &Table{schema: s, rows: make([]Row, len(t.rows))}
	for r, row := range t.rows {
		nr := make(Row, len(idx))
		for c, i := range idx {
			nr[c] = row[i]
		}
		out.rows[r] = nr
	}
	return out, nil
}

// SortKey describes one sort criterion.
type SortKey struct {
	Column string
	Desc   bool
}

// Sort sorts the table in place by the given keys (stable).
func (t *Table) Sort(keys ...SortKey) error {
	type bound struct {
		idx  int
		desc bool
	}
	bounds := make([]bound, len(keys))
	for i, k := range keys {
		j := t.schema.Index(k.Column)
		if j < 0 {
			return fmt.Errorf("table: sort column %q not found", k.Column)
		}
		bounds[i] = bound{idx: j, desc: k.Desc}
	}
	sort.SliceStable(t.rows, func(a, b int) bool {
		for _, k := range bounds {
			c := value.Compare(t.rows[a][k.idx], t.rows[b][k.idx])
			if c == 0 {
				continue
			}
			if k.desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return nil
}

// Head returns a new table with at most n leading rows (sharing row
// storage with t).
func (t *Table) Head(n int) *Table {
	if n > len(t.rows) {
		n = len(t.rows)
	}
	if n < 0 {
		n = 0
	}
	return &Table{schema: t.schema, rows: t.rows[:n]}
}

// SizeBytes estimates the in-memory footprint of the table. The DAG
// optimizer and the E6 transfer-ablation bench use it to cost shipping a
// data object to the client-side cube.
func (t *Table) SizeBytes() int {
	n := 0
	for _, r := range t.rows {
		for _, v := range r {
			n += v.Size()
		}
	}
	return n
}

// Format renders the table as an aligned text grid — the representation
// the data explorer uses ("runs the dashboard in a headless mode and
// displays the data in a tabular format", §4.4). At most maxRows rows are
// shown; maxRows <= 0 means all.
func (t *Table) Format(maxRows int) string {
	names := t.schema.Names()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	rows := t.rows
	truncated := 0
	if maxRows > 0 && len(rows) > maxRows {
		truncated = len(rows) - maxRows
		rows = rows[:maxRows]
	}
	cells := make([][]string, len(rows))
	for r, row := range rows {
		cells[r] = make([]string, len(row))
		for c, v := range row {
			s := v.String()
			cells[r][c] = s
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(fields []string) {
		for c, f := range fields {
			if c > 0 {
				b.WriteString("  ")
			}
			b.WriteString(f)
			if c < len(fields)-1 { // no trailing padding after the last column
				for p := len(f); p < widths[c]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(names)
	sep := make([]string, len(names))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range cells {
		writeRow(row)
	}
	if truncated > 0 {
		fmt.Fprintf(&b, "... (%d more rows)\n", truncated)
	}
	return b.String()
}

// Fingerprint returns a stable content hash of the table (schema plus
// every cell, order-sensitive). The incremental-execution cache uses it
// as a source node's signature: same payload, same fingerprint.
func (t *Table) Fingerprint() string {
	h := fnv.New64a()
	h.Write([]byte(t.schema.String()))
	for _, r := range t.rows {
		for _, v := range r {
			v.HashInto(h)
		}
		h.Write([]byte{0xFF})
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// Equal reports whether two tables have equal schemas and identical rows
// in the same order. Integration tests use it for golden comparisons.
func (t *Table) Equal(o *Table) bool {
	if !t.schema.Equal(o.schema) || len(t.rows) != len(o.rows) {
		return false
	}
	for i := range t.rows {
		for j := range t.rows[i] {
			if !value.Equal(t.rows[i][j], o.rows[i][j]) {
				return false
			}
		}
	}
	return true
}
