package dag

import (
	"shareinsights/internal/expr"
	"shareinsights/internal/task"
)

// Optimizer passes. The paper's compilation service holds the whole
// pipeline as one AST precisely so it can be rearranged: "The AST
// provides opportunities to optimize the complete flow. For example,
// tasks can be re-arranged to minimize data transfers to the browser"
// (§4.1); §6 restates this as the headline future optimization. The
// passes below are those rearrangements.

// DeadSinks returns the produced data objects nothing consumes: not an
// endpoint, not published, and feeding neither another flow nor a
// widget. The executor skips them ("it is assumed to be a throw-away
// data source/sink", §3.4.1 — a throw-away sink with no readers needs no
// computation at all).
func (g *Graph) DeadSinks() []string {
	// Iterate until fixpoint: removing a dead sink can orphan its inputs.
	dead := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for _, name := range g.Order {
			n := g.Nodes[name]
			if n.IsSource() || dead[name] || n.Def.Endpoint || n.Def.Publish != "" {
				continue
			}
			live := false
			for _, c := range n.Consumers {
				if len(c) > 7 && c[:7] == "widget:" {
					live = true
					break
				}
				if !dead[c] {
					live = true
					break
				}
			}
			if !live {
				dead[name] = true
				changed = true
			}
		}
	}
	var out []string
	for _, name := range g.Order {
		if dead[name] {
			out = append(out, name)
		}
	}
	return out
}

// DeadSources returns the source data objects nothing consumes: not an
// endpoint, not published, feeding no flow and no widget. The complement
// of DeadSinks — a declared ingest that no pipeline ever reads is almost
// always a leftover from editing, so the linter flags it.
func (g *Graph) DeadSources() []string {
	var out []string
	for _, name := range g.Order {
		n := g.Nodes[name]
		if !n.IsSource() || n.Def.Endpoint || n.Def.Publish != "" {
			continue
		}
		if len(n.Consumers) == 0 {
			out = append(out, name)
		}
	}
	return out
}

// BlockedFilter describes an expression filter that PushdownFilters
// cannot hoist to the head of its chain: an earlier stage produces a
// column the filter reads, so every row must flow through that stage
// before it can be discarded.
type BlockedFilter struct {
	// Index is the filter's position in the spec chain.
	Index int
	// Blocker is the position of the nearest stage the filter cannot
	// commute past.
	Blocker int
	// Columns are the filter's referenced columns that the blocking stage
	// produces (empty when the blocker is simply not a map stage).
	Columns []string
}

// BlockedFilters reports, for each expression filter in the chain that is
// not already first, how far PushdownFilters can move it and what stops
// it. Filters that reach position 0 are not reported — the optimizer
// handles them; the remainder are lint advisories.
func BlockedFilters(specs []task.Spec) []BlockedFilter {
	var out []BlockedFilter
	for i, sp := range specs {
		f, ok := sp.(*task.FilterSpec)
		if !ok || f.Expression == "" || f.SourceWidget != "" || i == 0 {
			continue
		}
		cols, err := expr.ReferencedColumns(f.Expression)
		if err != nil {
			continue
		}
		need := map[string]bool{}
		for _, c := range cols {
			need[c] = true
		}
		j := i
		for j > 0 && commutesWithFilter(specs[j-1], need) {
			j--
		}
		if j == 0 {
			continue
		}
		var produced []string
		switch t := specs[j-1].(type) {
		case *task.MapSpec:
			for _, c := range mapOutColumns(t) {
				if need[c] {
					produced = append(produced, c)
				}
			}
		case *task.ParallelSpec:
			for _, sub := range t.Subs {
				if ms, ok := sub.(*task.MapSpec); ok {
					for _, c := range mapOutColumns(ms) {
						if need[c] {
							produced = append(produced, c)
						}
					}
				}
			}
		}
		out = append(out, BlockedFilter{Index: i, Blocker: j - 1, Columns: produced})
	}
	return out
}

// SplitAtInteraction divides a widget source pipeline into the stages
// that can run once on the server (producing the widget's endpoint data)
// and the stages that must re-run in the client data cube on every
// interaction because they depend on widget selections. Everything
// before the first interaction-dependent task ships to the batch plan,
// so only pre-aggregated data crosses to the browser — the transfer
// minimization of §4.1, measured by the E6 ablation bench.
func SplitAtInteraction(specs []task.Spec) (server, client []task.Spec) {
	for i, sp := range specs {
		if DependsOnInteraction(sp) {
			return specs[:i], specs[i:]
		}
	}
	return specs, nil
}

// DependsOnInteraction reports whether a spec reads widget state.
func DependsOnInteraction(sp task.Spec) bool {
	switch t := sp.(type) {
	case *task.FilterSpec:
		return t.SourceWidget != ""
	case *task.ParallelSpec:
		for _, sub := range t.Subs {
			if DependsOnInteraction(sub) {
				return true
			}
		}
	}
	return false
}

// PushdownFilters rearranges a linear spec chain, hoisting expression
// filters ahead of map stages that do not produce any column the filter
// reads. Filtering commutes with such maps (the filter's columns are
// untouched) and doing it earlier shrinks every later stage's input —
// including fan-out maps like extract_words, where each filtered-out row
// saves many emitted rows.
func PushdownFilters(specs []task.Spec) []task.Spec {
	out := make([]task.Spec, len(specs))
	copy(out, specs)
	for i := 1; i < len(out); i++ {
		f, ok := out[i].(*task.FilterSpec)
		if !ok || f.Expression == "" || f.SourceWidget != "" {
			continue
		}
		cols, err := expr.ReferencedColumns(f.Expression)
		if err != nil {
			continue
		}
		need := map[string]bool{}
		for _, c := range cols {
			need[c] = true
		}
		j := i
		for j > 0 && commutesWithFilter(out[j-1], need) {
			out[j-1], out[j] = out[j], out[j-1]
			j--
		}
	}
	return out
}

// commutesWithFilter reports whether the spec can safely run after a
// filter on the given columns instead of before it.
func commutesWithFilter(sp task.Spec, filterCols map[string]bool) bool {
	var produced []string
	switch t := sp.(type) {
	case *task.MapSpec:
		produced = mapOutColumns(t)
	case *task.ParallelSpec:
		for _, sub := range t.Subs {
			ms, ok := sub.(*task.MapSpec)
			if !ok {
				return false
			}
			produced = append(produced, mapOutColumns(ms)...)
		}
	default:
		return false
	}
	for _, c := range produced {
		if filterCols[c] {
			return false
		}
	}
	return true
}

// mapOutColumns exposes a MapSpec's output columns via its schema
// transform on an empty input (operators report columns statically).
func mapOutColumns(m *task.MapSpec) []string { return m.OutColumns() }
