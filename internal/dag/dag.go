// Package dag builds and analyzes the directed acyclic graph a flow file
// implies.
//
// "On submission, the platform internally builds a directed acyclic graph
// (DAG) from the collection of flows specified by the user" (§3.4.2):
// users write only linear flows, but because sinks feed other flows,
// arbitrary transformation graphs arise. This package performs that
// assembly, detects cycles, topologically orders the graph, resolves
// every data object's schema (binding each task against its actual
// input — the compile-time check), and provides the optimizer passes the
// paper describes for the compilation service (§4.1, §6).
package dag

import (
	"fmt"
	"sort"
	"strings"

	"shareinsights/internal/flowfile"
	"shareinsights/internal/schema"
	"shareinsights/internal/task"
)

// Node is one data object in the graph.
type Node struct {
	// Name is the data-object name.
	Name string
	// Def is the flow-file definition (never nil; possibly empty).
	Def *flowfile.DataDef
	// Flow is the producing flow, nil for source objects.
	Flow *flowfile.Flow
	// Inputs are the producing flow's input object names.
	Inputs []string
	// Specs are the producing flow's bound task specs, in order.
	Specs []task.Spec
	// Schema is the resolved output schema.
	Schema *schema.Schema
	// Shared is true when the object resolves from the platform catalog
	// rather than a local source or flow.
	Shared bool
	// Consumers are the names of nodes reading this object, plus the
	// pseudo-consumers "widget:<name>" for widget sources.
	Consumers []string
}

// IsSource reports whether the node has no producing flow.
func (n *Node) IsSource() bool { return n.Flow == nil }

// ColumnarMode returns the node's `columnar:` data detail ("" when
// unset) — the per-object override of the batch engine's vectorized
// execution planner (auto, on or off).
func (n *Node) ColumnarMode() string {
	if n.Def == nil {
		return ""
	}
	return n.Def.Prop("columnar")
}

// Graph is the assembled, schema-resolved DAG.
type Graph struct {
	// Nodes maps data-object names to nodes.
	Nodes map[string]*Node
	// Order is a topological order of node names (inputs first).
	Order []string
	// File is the originating flow file.
	File *flowfile.File
}

// SharedResolver resolves a published data object's schema from the
// platform catalog; ok is false when the name is not published.
type SharedResolver func(name string) (*schema.Schema, bool)

// Build assembles and validates the graph for a flow file. reg resolves
// task types (including user extensions); shared resolves cross-dashboard
// published objects and may be nil for standalone files.
func Build(f *flowfile.File, reg *task.Registry, shared SharedResolver) (*Graph, error) {
	g := &Graph{Nodes: map[string]*Node{}, File: f}
	// One node per declared data object.
	for _, name := range f.DataOrder {
		g.Nodes[name] = &Node{Name: name, Def: f.Data[name]}
	}
	// Attach flows.
	for _, fl := range f.Flows {
		specs, err := parseFlowTasks(f, reg, fl)
		if err != nil {
			return nil, err
		}
		var inputs []string
		for _, in := range fl.Pipeline.Inputs {
			if _, ok := g.Nodes[in.Name]; !ok {
				g.Nodes[in.Name] = &Node{Name: in.Name, Def: &flowfile.DataDef{Name: in.Name}}
			}
			inputs = append(inputs, in.Name)
		}
		for _, out := range fl.Outputs {
			n, ok := g.Nodes[out.Name]
			if !ok {
				n = &Node{Name: out.Name, Def: &flowfile.DataDef{Name: out.Name}}
				g.Nodes[out.Name] = n
			}
			if n.Flow != nil {
				return nil, fmt.Errorf("dag: data object D.%s produced by two flows (lines %d and %d)",
					out.Name, n.Flow.Line, fl.Line)
			}
			n.Flow = fl
			n.Inputs = inputs
			n.Specs = specs
		}
	}
	// Record widget consumers so dead-sink elimination keeps their feeds.
	for _, wname := range f.WidgetOrder {
		w := f.Widgets[wname]
		if w.Source == nil {
			continue
		}
		for _, in := range w.Source.Inputs {
			if _, ok := g.Nodes[in.Name]; !ok {
				g.Nodes[in.Name] = &Node{Name: in.Name, Def: &flowfile.DataDef{Name: in.Name}}
			}
			g.Nodes[in.Name].Consumers = append(g.Nodes[in.Name].Consumers, "widget:"+wname)
		}
	}
	for name, n := range g.Nodes {
		for _, in := range n.Inputs {
			g.Nodes[in].Consumers = append(g.Nodes[in].Consumers, name)
		}
	}
	if err := g.topoSort(); err != nil {
		return nil, err
	}
	if err := g.resolveSchemas(shared); err != nil {
		return nil, err
	}
	return g, nil
}

// parseFlowTasks resolves a flow's task references into specs.
func parseFlowTasks(f *flowfile.File, reg *task.Registry, fl *flowfile.Flow) ([]task.Spec, error) {
	specs := make([]task.Spec, 0, len(fl.Pipeline.Tasks))
	for _, tref := range fl.Pipeline.Tasks {
		def, ok := f.Tasks[tref.Name]
		if !ok {
			return nil, fmt.Errorf("dag: flow at line %d references undefined task T.%s", fl.Line, tref.Name)
		}
		spec, err := reg.Parse(f, def)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// topoSort orders nodes inputs-first (Kahn), detecting cycles. Ties
// break on declaration order, keeping plans deterministic.
func (g *Graph) topoSort() error {
	indeg := map[string]int{}
	for name, n := range g.Nodes {
		indeg[name] = len(n.Inputs)
	}
	names := make([]string, 0, len(g.Nodes))
	declared := map[string]int{}
	for i, name := range g.File.DataOrder {
		declared[name] = i
	}
	for name := range g.Nodes {
		names = append(names, name)
	}
	sort.Slice(names, func(a, b int) bool {
		da, oka := declared[names[a]]
		db, okb := declared[names[b]]
		switch {
		case oka && okb:
			return da < db
		case oka:
			return true
		case okb:
			return false
		default:
			return names[a] < names[b]
		}
	})
	var queue []string
	for _, name := range names {
		if indeg[name] == 0 {
			queue = append(queue, name)
		}
	}
	g.Order = g.Order[:0]
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		g.Order = append(g.Order, cur)
		for _, name := range names {
			n := g.Nodes[name]
			for _, in := range n.Inputs {
				if in == cur {
					indeg[name]--
					if indeg[name] == 0 {
						queue = append(queue, name)
					}
				}
			}
		}
	}
	if len(g.Order) != len(g.Nodes) {
		var cyclic []string
		inOrder := map[string]bool{}
		for _, n := range g.Order {
			inOrder[n] = true
		}
		for name := range g.Nodes {
			if !inOrder[name] {
				cyclic = append(cyclic, "D."+name)
			}
		}
		sort.Strings(cyclic)
		return fmt.Errorf("dag: flows form a cycle through %s", strings.Join(cyclic, ", "))
	}
	return nil
}

// resolveSchemas walks the topological order computing every node's
// schema: declared for sources, shared-catalog for published inputs, and
// the bound pipeline's output for produced objects. A produced object
// with a declared schema is cross-checked — the declaration acts as an
// assertion, surfacing drift between the D section and the flows.
func (g *Graph) resolveSchemas(shared SharedResolver) error {
	for _, name := range g.Order {
		n := g.Nodes[name]
		if n.IsSource() {
			switch {
			case n.Def.Schema != nil:
				n.Schema = n.Def.Schema
			case shared != nil:
				s, ok := shared(name)
				if !ok {
					return fmt.Errorf("dag: data object D.%s has no schema, source, or shared publication", name)
				}
				n.Schema = s
				n.Shared = true
			default:
				return fmt.Errorf("dag: data object D.%s has no schema or producing flow", name)
			}
			continue
		}
		out, err := BindPipeline(g, n.Inputs, n.Specs)
		if err != nil {
			return fmt.Errorf("dag: flow for D.%s (line %d): %w", name, n.Flow.Line, err)
		}
		n.Schema = out
		if n.Def.Schema != nil && !n.Def.Schema.Equal(out) {
			return fmt.Errorf("dag: D.%s declared schema %s but its flow produces %s",
				name, n.Def.Schema, out)
		}
	}
	return nil
}

// BindPipeline threads input schemas through a spec chain, returning the
// final output schema. The first spec receives all fan-in inputs;
// subsequent specs receive the running intermediate.
func BindPipeline(g *Graph, inputs []string, specs []task.Spec) (*schema.Schema, error) {
	ins := make([]task.Input, len(inputs))
	for i, in := range inputs {
		node := g.Nodes[in]
		if node.Schema == nil {
			return nil, fmt.Errorf("input D.%s has unresolved schema", in)
		}
		ins[i] = task.Input{Name: in, Schema: node.Schema}
	}
	if len(specs) == 0 {
		if len(ins) != 1 {
			return nil, fmt.Errorf("fan-in of %d inputs needs at least one task", len(ins))
		}
		return ins[0].Schema, nil
	}
	cur := ins
	var out *schema.Schema
	for i, sp := range specs {
		var err error
		out, err = sp.Out(cur)
		if err != nil {
			return nil, fmt.Errorf("stage %d (%s): %w", i+1, task.Describe(sp), err)
		}
		cur = []task.Input{{Schema: out}}
	}
	return out, nil
}

// Sources lists source-node names in topological order.
func (g *Graph) Sources() []string {
	var out []string
	for _, name := range g.Order {
		if g.Nodes[name].IsSource() {
			out = append(out, name)
		}
	}
	return out
}

// Endpoints lists endpoint data objects in topological order.
func (g *Graph) Endpoints() []string {
	var out []string
	for _, name := range g.Order {
		if g.Nodes[name].Def.Endpoint {
			out = append(out, name)
		}
	}
	return out
}

// Published lists nodes with a publish name, in topological order.
func (g *Graph) Published() []string {
	var out []string
	for _, name := range g.Order {
		if g.Nodes[name].Def.Publish != "" {
			out = append(out, name)
		}
	}
	return out
}

// String renders the graph for the plan view: one line per node with its
// producing pipeline.
func (g *Graph) String() string {
	var b strings.Builder
	for _, name := range g.Order {
		n := g.Nodes[name]
		switch {
		case n.IsSource() && n.Shared:
			fmt.Fprintf(&b, "D.%s  (shared) %s\n", name, n.Schema)
		case n.IsSource():
			fmt.Fprintf(&b, "D.%s  (source) %s\n", name, n.Schema)
		default:
			stages := make([]string, len(n.Specs))
			for i, sp := range n.Specs {
				stages[i] = task.Describe(sp)
			}
			fmt.Fprintf(&b, "D.%s  <- (%s) | %s\n", name, strings.Join(n.Inputs, ", "), strings.Join(stages, " | "))
		}
	}
	return b.String()
}
