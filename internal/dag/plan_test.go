package dag

import (
	"encoding/json"
	"strings"
	"testing"

	"shareinsights/internal/task"
)

// twoFilterFlow has two adjacent expression filters feeding a groupby —
// the reordering planner's canonical input.
const twoFilterFlow = `
D:
  raw: [region, amount, flag]

F:
  D.mid: D.raw | T.wide | T.narrow
  +D.out: D.mid | T.agg

T:
  wide:
    type: filter_by
    filter_expression: amount > 0
  narrow:
    type: filter_by
    filter_expression: flag == 1
  agg:
    type: groupby
    groupby: [region]
`

// statsOf builds a StatsFn over literal (output, stage) → selectivity
// entries, every entry marked as observed evidence.
func statsOf(m map[string]float64) StatsFn {
	return func(output, stage string) (StageStats, bool) {
		sel, ok := m[HintKey(output, stage)]
		if !ok {
			return StageStats{}, false
		}
		return StageStats{Selectivity: sel, HasSelectivity: true}, true
	}
}

func stageNames(np *NodePlan) []string {
	out := make([]string, len(np.Specs))
	for i, sp := range np.Specs {
		out[i] = task.Describe(sp)
	}
	return out
}

func TestReorderFiltersByObservedSelectivity(t *testing.T) {
	g := build(t, twoFilterFlow, nil)
	p := Optimize(g, PlanOptions{Stats: statsOf(map[string]float64{
		HintKey("mid", "filter_by amount > 0"): 0.9,
		HintKey("mid", "filter_by flag == 1"):  0.1,
	})})
	np := p.Node("mid")
	got := stageNames(np)
	if got[0] != "filter_by flag == 1" || got[1] != "filter_by amount > 0" {
		t.Fatalf("planned order = %v, want most selective filter first", got)
	}
	found := false
	for _, d := range np.Decisions {
		if d.Rule == RuleFilterReorder {
			found = true
			if d.Evidence != EvidenceHistory {
				t.Errorf("reorder evidence = %q, want history", d.Evidence)
			}
		}
	}
	if !found {
		t.Fatalf("no %s decision recorded: %+v", RuleFilterReorder, np.Decisions)
	}
	if np.Summary() != RuleFilterReorder {
		t.Errorf("Summary() = %q", np.Summary())
	}
}

func TestNoReorderWithoutEvidence(t *testing.T) {
	g := build(t, twoFilterFlow, nil)
	p := Optimize(g, PlanOptions{})
	got := stageNames(p.Node("mid"))
	if got[0] != "filter_by amount > 0" {
		t.Fatalf("heuristic-only plan reordered filters: %v", got)
	}
	if len(p.Node("mid").Decisions) != 0 {
		t.Errorf("decisions without evidence: %+v", p.Node("mid").Decisions)
	}
	if p.Node("mid").Summary() != "as-written" {
		t.Errorf("Summary() = %q, want as-written", p.Node("mid").Summary())
	}
}

func TestFactsHintsReorder(t *testing.T) {
	g := build(t, twoFilterFlow, nil)
	p := Optimize(g, PlanOptions{Hints: map[string]float64{
		HintKey("mid", "filter_by flag == 1"): 0, // provably false
	}})
	np := p.Node("mid")
	got := stageNames(np)
	if got[0] != "filter_by flag == 1" {
		t.Fatalf("facts hint did not reorder: %v", got)
	}
	for _, d := range np.Decisions {
		if d.Rule == RuleFilterReorder && d.Evidence != EvidenceFacts {
			t.Errorf("evidence = %q, want facts", d.Evidence)
		}
	}
}

// TestEmptyRunIsNoEvidence pins the satellite fix end to end at the
// planner: a stage observed only on empty input reports
// HasSelectivity=false, and the planner must fall through to the
// heuristic (no reorder) instead of treating "kept nothing of nothing"
// as selectivity evidence.
func TestEmptyRunIsNoEvidence(t *testing.T) {
	g := build(t, twoFilterFlow, nil)
	noEvidence := func(output, stage string) (StageStats, bool) {
		// What history.Profiles reports after an empty first run:
		// the profile exists but carries no selectivity samples.
		return StageStats{Selectivity: 0, HasSelectivity: false, HasRows: true}, true
	}
	p := Optimize(g, PlanOptions{Stats: noEvidence})
	got := stageNames(p.Node("mid"))
	if got[0] != "filter_by amount > 0" {
		t.Fatalf("empty-run stats poisoned the order: %v", got)
	}
}

const pushdownFlow = `
D:
  raw: [region, amount, notes]

F:
  D.kept: D.raw | T.keep
  +D.out: D.kept | T.agg

T:
  keep:
    type: filter_by
    filter_expression: amount > 100
  agg:
    type: groupby
    groupby: [region]
`

func TestPredicatePushdownNeedsEvidence(t *testing.T) {
	g := build(t, pushdownFlow, nil)
	// No statistics: the first run must not push (fetch shape changes
	// are only worth it once measured).
	p := Optimize(g, PlanOptions{})
	if pd := p.Node("raw").Pushdown; pd != nil && pd.Predicate != "" {
		t.Fatalf("predicate pushed without evidence: %+v", pd)
	}
	// Observed selective filter: push.
	p = Optimize(g, PlanOptions{Stats: statsOf(map[string]float64{
		HintKey("kept", "filter_by amount > 100"): 0.05,
	})})
	pd := p.Node("raw").Pushdown
	if pd == nil || pd.Predicate != "amount > 100" {
		t.Fatalf("selective filter not pushed: %+v", pd)
	}
	if pd.Evidence != EvidenceHistory {
		t.Errorf("pushdown evidence = %q", pd.Evidence)
	}
	// Observed unselective filter: not worth reshaping the fetch.
	p = Optimize(g, PlanOptions{Stats: statsOf(map[string]float64{
		HintKey("kept", "filter_by amount > 100"): 0.95,
	})})
	if pd := p.Node("raw").Pushdown; pd != nil && pd.Predicate != "" {
		t.Fatalf("unselective predicate pushed: %+v", pd)
	}
}

func TestPredicatePushdownGates(t *testing.T) {
	stats := statsOf(map[string]float64{
		HintKey("kept", "filter_by amount > 100"): 0.05,
	})
	// A published source must stay unfiltered for its other readers.
	pub := pushdownFlow + `
D.raw:
  publish: everyone
`
	g := build(t, pub, nil)
	if pd := g.mustPlan(t, stats).Node("raw").Pushdown; pd != nil && pd.Predicate != "" {
		t.Fatalf("predicate pushed into published source: %+v", pd)
	}
	// Two consumers: each needs the full fetch.
	multi := strings.Replace(pushdownFlow, "+D.out: D.kept | T.agg",
		"+D.out: D.kept | T.agg\n  +D.out2: D.raw | T.agg", 1)
	g = build(t, multi, nil)
	if pd := g.mustPlan(t, stats).Node("raw").Pushdown; pd != nil && pd.Predicate != "" {
		t.Fatalf("predicate pushed into multi-consumer source: %+v", pd)
	}
}

// mustPlan is a tiny helper keeping gate tests readable.
func (g *Graph) mustPlan(t *testing.T, stats StatsFn) *Plan {
	t.Helper()
	return Optimize(g, PlanOptions{Stats: stats})
}

func TestProjectionPushdown(t *testing.T) {
	g := build(t, pushdownFlow, nil)
	p := Optimize(g, PlanOptions{
		DeadSourceColumns: map[string][]string{"raw": {"notes"}},
		Stats: statsOf(map[string]float64{
			HintKey("kept", "filter_by amount > 100"): 0.05,
		}),
	})
	pd := p.Node("raw").Pushdown
	if pd == nil || len(pd.SkipColumns) != 1 || pd.SkipColumns[0] != "notes" {
		t.Fatalf("dead column not skipped: %+v", pd)
	}
	// A dead column the pushed predicate reads must still decode.
	p = Optimize(g, PlanOptions{
		DeadSourceColumns: map[string][]string{"raw": {"amount", "notes"}},
		Stats: statsOf(map[string]float64{
			HintKey("kept", "filter_by amount > 100"): 0.05,
		}),
	})
	pd = p.Node("raw").Pushdown
	if pd == nil || len(pd.SkipColumns) != 1 || pd.SkipColumns[0] != "notes" {
		t.Fatalf("predicate column wrongly skipped: %+v", pd)
	}
}

func TestInteractionFiltersNeverMove(t *testing.T) {
	src := `
D:
  raw: [region, amount]

W:
  pick:
    type: Grid
    source: D.raw | T.agg

F:
  +D.out: D.raw | T.w | T.keep

T:
  keep:
    type: filter_by
    filter_expression: amount > 0
  w:
    type: filter_by
    filter_by: [region]
    filter_source: W.pick
  agg:
    type: groupby
    groupby: [region]
`
	g := build(t, src, nil)
	p := Optimize(g, PlanOptions{Stats: statsOf(map[string]float64{
		HintKey("out", "filter_by amount > 0"): 0.01,
	})})
	got := stageNames(p.Node("out"))
	if !strings.HasPrefix(got[0], "filter_by region from W.pick") {
		t.Fatalf("interaction filter moved: %v", got)
	}
}

func TestPlanFormatAndJSON(t *testing.T) {
	g := build(t, twoFilterFlow, nil)
	p := Optimize(g, PlanOptions{Stats: statsOf(map[string]float64{
		HintKey("mid", "filter_by amount > 0"): 0.9,
		HintKey("mid", "filter_by flag == 1"):  0.1,
	})})
	text := p.Format()
	for _, want := range []string{"D.raw  (source)", "D.mid  columnar=auto", "sel=0.10 [history]", "filter_reorder"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format() missing %q:\n%s", want, text)
		}
	}
	if text != p.Format() {
		t.Fatal("Format() not deterministic")
	}
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var round Plan
	if err := json.Unmarshal(raw, &round); err != nil {
		t.Fatal(err)
	}
	if round.Nodes["mid"].Stages[0].Stage != "filter_by flag == 1" {
		t.Errorf("JSON round-trip lost stage order: %+v", round.Nodes["mid"].Stages)
	}
}

func TestPlanSkippedSinks(t *testing.T) {
	src := strings.Replace(twoFilterFlow, "+D.out: D.mid | T.agg",
		"+D.out: D.mid | T.agg\n  D.unused: D.mid | T.agg", 1)
	g := build(t, src, nil)
	p := Optimize(g, PlanOptions{})
	if len(p.SkippedSinks) != 1 || p.SkippedSinks[0] != "unused" {
		t.Fatalf("SkippedSinks = %v", p.SkippedSinks)
	}
	if !strings.Contains(p.Format(), "D.unused  skipped") {
		t.Errorf("Format() missing skipped sink:\n%s", p.Format())
	}
}
