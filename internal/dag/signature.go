package dag

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// Signatures computes a content signature for every node, topologically:
// a produced node's signature covers its pipeline text, the canonical
// text of every task it applies (so editing a task's configuration
// changes the signature), and its inputs' signatures; a source node's
// signature is supplied by sourceSig (typically a hash of the loaded
// payload). Two runs in which a node's signature is unchanged are
// guaranteed to compute identical content for it — the foundation of the
// incremental re-execution cache that gives flow-file authors the
// quick-feedback loop of §4.5.3 within a single dashboard.
func (g *Graph) Signatures(sourceSig func(name string) string) map[string]string {
	sigs := make(map[string]string, len(g.Nodes))
	for _, name := range g.Order {
		n := g.Nodes[name]
		h := sha256.New()
		if n.IsSource() {
			fmt.Fprintf(h, "source|%s|%s|", name, sourceSig(name))
			if n.Def.Schema != nil {
				h.Write([]byte(n.Def.Schema.String()))
			}
		} else {
			fmt.Fprintf(h, "flow|%s|", n.Flow.Pipeline.String())
			for _, tref := range n.Flow.Pipeline.Tasks {
				h.Write([]byte(g.File.TaskText(tref.Name)))
				h.Write([]byte{0})
				// Transitively include parallel sub-task texts: a
				// parallel composite's behaviour changes when a
				// referenced sub-task changes.
				for _, sub := range g.File.Tasks[tref.Name].Config.StrList("parallel") {
					subName := strings.TrimPrefix(sub, "T.")
					h.Write([]byte(g.File.TaskText(subName)))
					h.Write([]byte{0})
				}
			}
			for _, in := range n.Inputs {
				h.Write([]byte(sigs[in]))
				h.Write([]byte{1})
			}
		}
		sigs[name] = hex.EncodeToString(h.Sum(nil))
	}
	return sigs
}
