package dag

import (
	"strings"
	"testing"

	"shareinsights/internal/flowfile"
	"shareinsights/internal/schema"
	"shareinsights/internal/task"
)

func build(t *testing.T, src string, shared SharedResolver) *Graph {
	t.Helper()
	f, err := flowfile.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(f, task.NewRegistry(), shared)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

const chainFlow = `
D:
  raw: [a, b, v]

F:
  D.mid: D.raw | T.f
  +D.out: D.mid | T.g

T:
  f:
    type: filter_by
    filter_expression: v > 0
  g:
    type: groupby
    groupby: [a]
`

func TestTopologicalOrder(t *testing.T) {
	g := build(t, chainFlow, nil)
	pos := map[string]int{}
	for i, n := range g.Order {
		pos[n] = i
	}
	if !(pos["raw"] < pos["mid"] && pos["mid"] < pos["out"]) {
		t.Errorf("order = %v", g.Order)
	}
	if got := g.Sources(); len(got) != 1 || got[0] != "raw" {
		t.Errorf("sources = %v", got)
	}
	if got := g.Endpoints(); len(got) != 1 || got[0] != "out" {
		t.Errorf("endpoints = %v", got)
	}
}

func TestSchemaResolution(t *testing.T) {
	g := build(t, chainFlow, nil)
	if got := g.Nodes["mid"].Schema.String(); got != "[a, b, v]" {
		t.Errorf("mid schema = %s", got)
	}
	if got := g.Nodes["out"].Schema.String(); got != "[a, count]" {
		t.Errorf("out schema = %s", got)
	}
}

func TestDeclaredSchemaCrossCheck(t *testing.T) {
	// Declaring a wrong schema for a produced sink is caught.
	src := strings.Replace(chainFlow, "D:\n  raw: [a, b, v]",
		"D:\n  raw: [a, b, v]\n  out: [a, wrong]", 1)
	f, err := flowfile.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Build(f, task.NewRegistry(), nil)
	if err == nil || !strings.Contains(err.Error(), "declared schema") {
		t.Errorf("cross-check error = %v", err)
	}
}

func TestCycleDetection(t *testing.T) {
	src := `
D:
  a: [x]

F:
  D.b: D.c | T.f
  D.c: D.b | T.f

T:
  f:
    type: filter_by
    filter_expression: x > 0
`
	f, err := flowfile.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Build(f, task.NewRegistry(), nil)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle error = %v", err)
	}
}

func TestSharedResolution(t *testing.T) {
	src := `
F:
  +D.out: D.published_thing | T.g

T:
  g:
    type: groupby
    groupby: [k]
`
	shared := func(name string) (*schema.Schema, bool) {
		if name == "published_thing" {
			return schema.MustFromNames("k", "v"), true
		}
		return nil, false
	}
	g := build(t, src, shared)
	if !g.Nodes["published_thing"].Shared {
		t.Error("shared node not marked")
	}
	if got := g.Nodes["out"].Schema.String(); got != "[k, count]" {
		t.Errorf("out schema = %s", got)
	}
	// Without the resolver the same file fails.
	f, _ := flowfile.Parse("t", src)
	if _, err := Build(f, task.NewRegistry(), nil); err == nil {
		t.Error("unresolvable shared input should fail")
	}
}

func TestDuplicateProducerRejected(t *testing.T) {
	src := `
D:
  raw: [a]

F:
  D.out: D.raw | T.f
  D.out: D.raw | T.f

T:
  f:
    type: filter_by
    filter_expression: a > 0
`
	f, err := flowfile.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Build(f, task.NewRegistry(), nil)
	if err == nil || !strings.Contains(err.Error(), "two flows") {
		t.Errorf("duplicate producer error = %v", err)
	}
}

func TestDeadSinks(t *testing.T) {
	src := `
D:
  raw: [a]

F:
  +D.kept: D.raw | T.f
  D.dead1: D.raw | T.f
  D.dead2: D.dead1 | T.f
  D.published: D.raw | T.f

D.published:
  publish: keepme

W:
  chart:
    type: Grid
    source: D.widget_feed

F:
  D.widget_feed: D.raw | T.f

T:
  f:
    type: filter_by
    filter_expression: a > 0
`
	g := build(t, src, nil)
	dead := g.DeadSinks()
	want := map[string]bool{"dead1": true, "dead2": true}
	if len(dead) != 2 {
		t.Fatalf("dead = %v", dead)
	}
	for _, d := range dead {
		if !want[d] {
			t.Errorf("unexpected dead sink %q", d)
		}
	}
}

func TestSplitAtInteraction(t *testing.T) {
	reg := task.NewRegistry()
	src := `
T:
  static_group:
    type: groupby
    groupby: [k]
  pick:
    type: filter_by
    filter_by: [k]
    filter_source: W.list
  agg:
    type: groupby
    groupby: [k]
`
	f, err := flowfile.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	var specs []task.Spec
	for _, name := range []string{"static_group", "pick", "agg"} {
		sp, err := reg.Parse(f, f.Tasks[name])
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, sp)
	}
	server, client := SplitAtInteraction(specs)
	if len(server) != 1 || len(client) != 2 {
		t.Errorf("split = %d server, %d client", len(server), len(client))
	}
	// All-static pipeline: everything server-side.
	server, client = SplitAtInteraction([]task.Spec{specs[0], specs[2]})
	if len(server) != 2 || len(client) != 0 {
		t.Errorf("static split = %d/%d", len(server), len(client))
	}
	// Interaction-first pipeline: everything client-side.
	server, client = SplitAtInteraction([]task.Spec{specs[1], specs[2]})
	if len(server) != 0 || len(client) != 2 {
		t.Errorf("interactive split = %d/%d", len(server), len(client))
	}
}

func TestPushdownFilters(t *testing.T) {
	reg := task.NewRegistry()
	src := `
T:
  add_col:
    type: map
    operator: expr
    expression: v * 2
    output: doubled
  keep:
    type: filter_by
    filter_expression: v > 0
  keep_doubled:
    type: filter_by
    filter_expression: doubled > 10
`
	f, err := flowfile.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	spec := func(name string) task.Spec {
		sp, err := reg.Parse(f, f.Tasks[name])
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	// Filter on v commutes past a map producing doubled: hoisted.
	out := PushdownFilters([]task.Spec{spec("add_col"), spec("keep")})
	if out[0].Type() != "filter_by" || out[1].Type() != "map" {
		t.Errorf("pushdown did not hoist: %v, %v", out[0].Type(), out[1].Type())
	}
	// Filter on doubled depends on the map: stays put.
	out = PushdownFilters([]task.Spec{spec("add_col"), spec("keep_doubled")})
	if out[0].Type() != "map" {
		t.Errorf("pushdown moved a dependent filter")
	}
	// Interaction filters never move (their placement is semantic).
	src2 := `
T:
  inter:
    type: filter_by
    filter_by: [v]
    filter_source: W.w
`
	f2, _ := flowfile.Parse("t", src2)
	interSpec, err := reg.Parse(f2, f2.Tasks["inter"])
	if err != nil {
		t.Fatal(err)
	}
	out = PushdownFilters([]task.Spec{spec("add_col"), interSpec})
	if out[0].Type() != "map" {
		t.Errorf("pushdown moved an interaction filter")
	}
}

func TestGraphString(t *testing.T) {
	g := build(t, chainFlow, nil)
	s := g.String()
	for _, want := range []string{"D.raw", "(source)", "filter_by v > 0", "groupby a"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan view missing %q:\n%s", want, s)
		}
	}
}

func TestSignatures(t *testing.T) {
	g := build(t, chainFlow, nil)
	src := func(name string) string { return "payload-v1" }
	sigs := g.Signatures(src)
	if len(sigs) != 3 {
		t.Fatalf("signatures = %d", len(sigs))
	}
	// Stable across calls.
	again := g.Signatures(src)
	for k, v := range sigs {
		if again[k] != v {
			t.Errorf("signature for %s unstable", k)
		}
	}
	// Source payload changes propagate to every downstream node.
	changed := g.Signatures(func(string) string { return "payload-v2" })
	for _, node := range []string{"raw", "mid", "out"} {
		if changed[node] == sigs[node] {
			t.Errorf("node %s signature did not change with its source", node)
		}
	}
	// Editing one task changes that node and its descendants only.
	g2 := build(t, strings.Replace(chainFlow, "groupby: [a]", "groupby: [b]", 1), nil)
	sigs2 := g2.Signatures(src)
	if sigs2["mid"] != sigs["mid"] {
		t.Error("upstream node signature changed by a downstream edit")
	}
	if sigs2["out"] == sigs["out"] {
		t.Error("edited node signature unchanged")
	}
	// Editing a parallel sub-task changes the composite's consumers.
	par := `
D:
  raw: [postedTime, body]

D.raw:
  source: r.csv

F:
  +D.out: D.raw | T.pipe

T:
  pipe:
    parallel: [T.up]
  up:
    type: map
    operator: upper
    transform: body
`
	gp := build(t, par, nil)
	base := gp.Signatures(src)["out"]
	gp2 := build(t, strings.Replace(par, "operator: upper", "operator: lower", 1), nil)
	if gp2.Signatures(src)["out"] == base {
		t.Error("parallel sub-task edit not reflected in signature")
	}
}
