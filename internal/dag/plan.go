package dag

import (
	"fmt"
	"sort"
	"strings"

	"shareinsights/internal/expr"
	"shareinsights/internal/task"
)

// Cost-based planning. Optimize turns a compiled graph plus whatever
// statistics exist — flight-recorder stage profiles from past runs,
// flowcheck facts when there is no history yet, heuristics when there is
// neither — into a Plan: per node, the spec order to execute, the
// resolved columnar mode, predicted paths and fusion, and negotiated
// source pushdown requests. The executor consults the plan instead of
// re-deriving rewrites per run, and the same Plan renders the `explain`
// surface (CLI, REST and golden tests), so what runs and what is shown
// are one object.
//
// Every rewrite is meaning-preserving for arbitrary statistics: filters
// commute with each other exactly (each row's membership is the
// conjunction of predicates and relative order is preserved), filter
// hoisting past maps reuses PushdownFilters' column-disjointness proof,
// and source predicates are re-applied by the consuming pipeline, so a
// connector that declines or half-applies a pushdown never changes the
// result. The enginetest differential harness asserts this cell-for-cell
// against adversarial random statistics.

// ColumnarAutoThreshold is the input cardinality below which the auto
// columnar planner keeps the row kernels. It lives here so the plan's
// path predictions and the batch engine's runtime decisions share one
// constant.
const ColumnarAutoThreshold = 256

// Evidence sources for a planning decision, strongest first.
const (
	// EvidenceHistory marks statistics observed by the flight recorder.
	EvidenceHistory = "history"
	// EvidenceFacts marks statically proven flowcheck facts.
	EvidenceFacts = "facts"
	// EvidenceHeuristic marks built-in defaults (no statistics).
	EvidenceHeuristic = "heuristic"
)

// Rewrite rules a Decision can record.
const (
	// RuleFilterPushdown hoists expression filters ahead of commuting
	// maps (the FL050 advisory, applied).
	RuleFilterPushdown = "filter_pushdown"
	// RuleFilterReorder orders adjacent expression filters by estimated
	// selectivity, cheapest-to-discard first.
	RuleFilterReorder = "filter_reorder"
	// RulePredicateToSource pushes a consumer's leading filter into the
	// source fetch so non-matching rows are never decoded.
	RulePredicateToSource = "predicate_to_source"
	// RuleProjectionToSource skips decoding of fetched-but-never-read
	// source columns (flowcheck's dead-column liveness).
	RuleProjectionToSource = "projection_to_source"
)

// StageStats is one stage's observed statistics, as the planner's
// StatsFn reports them.
type StageStats struct {
	// Selectivity is the observed rows-out / rows-in ratio;
	// HasSelectivity is false when no non-empty input was ever observed
	// (an empty run is no evidence — see history.StageProfile).
	Selectivity    float64
	HasSelectivity bool
	// RowsIn / Rows are the observed input and output cardinalities.
	RowsIn    float64
	HasRowsIn bool
	Rows      float64
	HasRows   bool
	// CostUS is the observed stage duration baseline in microseconds.
	CostUS float64
}

// StatsFn resolves observed statistics for a (output object, stage
// description) pair; ok is false when the stage was never observed.
type StatsFn func(output, stage string) (StageStats, bool)

// HintKey builds the PlanOptions.Hints key for a stage.
func HintKey(output, stage string) string { return output + "\x00" + stage }

// PlanOptions carries the planner's statistics feeds. The dag package
// depends on neither the flight recorder nor flowcheck; callers adapt
// both into these neutral shapes (dashboard does).
type PlanOptions struct {
	// Stats resolves observed per-stage statistics (flight recorder).
	// nil means no history.
	Stats StatsFn
	// Hints maps HintKey(output, stage) to a statically derived
	// selectivity estimate (flowcheck verdicts and intervals).
	Hints map[string]float64
	// DeadSourceColumns maps source names to columns that are fetched
	// but provably never read (flowcheck liveness) — projection
	// pushdown input.
	DeadSourceColumns map[string][]string
	// Columnar is the executor's default columnar mode; a node's
	// `columnar:` detail overrides it.
	Columnar string
}

// Decision is one rewrite the planner applied, with its evidence.
type Decision struct {
	Rule     string `json:"rule"`
	Detail   string `json:"detail"`
	Evidence string `json:"evidence"`
}

// StagePlan describes one planned pipeline stage.
type StagePlan struct {
	// Stage is the task description (task.Describe).
	Stage string `json:"stage"`
	// Selectivity and Evidence are set for expression filters: the
	// estimate that ranked the stage and where it came from.
	Selectivity float64 `json:"selectivity,omitempty"`
	Evidence    string  `json:"evidence,omitempty"`
	// Path is the predicted execution path: "row", "columnar", or
	// "auto" when the runtime planner will decide on observed input
	// size. The actual path lands in StageTiming.Path.
	Path string `json:"path"`
	// Fused marks a stage predicted to fuse with its predecessor into
	// one sharded row-local pass.
	Fused bool `json:"fused,omitempty"`
}

// SourcePushdown is a negotiated fetch-time rewrite request for a
// source. Connectors may decline any part of it; the consuming pipeline
// re-applies the predicate, so partial application is always sound.
type SourcePushdown struct {
	// Predicate is the filter expression to apply while decoding ("" =
	// none). Consumer names the data object whose leading filter the
	// predicate came from: when a connector reports the predicate
	// applied, that filter's observed selectivity is an artifact of the
	// pushdown (≈1.0) and must not be recorded as evidence.
	Predicate string `json:"predicate,omitempty"`
	Consumer  string `json:"consumer,omitempty"`
	// Selectivity and Evidence justify the predicate push.
	Selectivity float64 `json:"selectivity,omitempty"`
	Evidence    string  `json:"evidence,omitempty"`
	// SkipColumns are declared columns whose values need not be decoded
	// (statically dead); decoded tables carry nulls there, schema
	// unchanged.
	SkipColumns []string `json:"skip_columns,omitempty"`
}

// NodePlan is the plan for one data object.
type NodePlan struct {
	Output string `json:"output"`
	// Source marks source nodes (no pipeline; may carry a Pushdown).
	Source bool `json:"source,omitempty"`
	// Specs is the planned spec order the executor runs (produced nodes).
	Specs []task.Spec `json:"-"`
	// Stages render Specs for the explain surface.
	Stages []StagePlan `json:"stages,omitempty"`
	// Columnar is the resolved planner mode for the node.
	Columnar string `json:"columnar,omitempty"`
	// Pushdown is the fetch-time request for source nodes (nil = none).
	Pushdown *SourcePushdown `json:"pushdown,omitempty"`
	// Decisions are the rewrites applied to this node.
	Decisions []Decision `json:"decisions,omitempty"`
}

// Plan is a full optimized execution plan for a graph.
type Plan struct {
	Nodes map[string]*NodePlan `json:"nodes"`
	// Order mirrors the graph's topological order.
	Order []string `json:"order"`
	// SkippedSinks are dead sinks the executor will not run.
	SkippedSinks []string `json:"skipped_sinks,omitempty"`
}

// Node returns the plan for one data object (nil when absent).
func (p *Plan) Node(name string) *NodePlan {
	if p == nil {
		return nil
	}
	return p.Nodes[name]
}

// Summary compresses a node's plan into the short tag carried on stage
// timings and history records: the applied rule names, or "as-written".
func (np *NodePlan) Summary() string {
	if np == nil {
		return ""
	}
	seen := map[string]bool{}
	var rules []string
	for _, d := range np.Decisions {
		if !seen[d.Rule] {
			seen[d.Rule] = true
			rules = append(rules, d.Rule)
		}
	}
	if len(rules) == 0 {
		return "as-written"
	}
	return strings.Join(rules, "+")
}

// Optimize plans the graph against the supplied statistics. The result
// is deterministic for fixed inputs: ties keep declaration order, so
// golden plans are stable.
func Optimize(g *Graph, opts PlanOptions) *Plan {
	p := &Plan{Nodes: make(map[string]*NodePlan, len(g.Nodes)), Order: append([]string(nil), g.Order...)}
	p.SkippedSinks = g.DeadSinks()
	skip := map[string]bool{}
	for _, s := range p.SkippedSinks {
		skip[s] = true
	}
	// Produced nodes first: source pushdown needs the consumers' planned
	// spec order.
	for _, name := range g.Order {
		n := g.Nodes[name]
		if n.IsSource() {
			continue
		}
		np := &NodePlan{Output: name, Columnar: resolveColumnar(n, opts.Columnar)}
		specs := PushdownFilters(n.Specs)
		if !sameSpecs(specs, n.Specs) {
			np.Decisions = append(np.Decisions, Decision{
				Rule:     RuleFilterPushdown,
				Detail:   "hoisted expression filters ahead of maps that do not produce their columns",
				Evidence: EvidenceHeuristic,
			})
		}
		specs, reorder := reorderFilters(name, specs, opts)
		if reorder != nil {
			np.Decisions = append(np.Decisions, *reorder)
		}
		np.Specs = specs
		np.Stages = stagePlans(name, specs, np.Columnar, opts)
		p.Nodes[name] = np
	}
	for _, name := range g.Order {
		n := g.Nodes[name]
		if !n.IsSource() {
			continue
		}
		np := &NodePlan{Output: name, Source: true}
		if !n.Shared {
			np.Pushdown, np.Decisions = sourcePushdown(g, n, p.Nodes, skip, opts)
		}
		p.Nodes[name] = np
	}
	return p
}

// resolveColumnar resolves a node's effective columnar mode: node
// detail, then executor default, then auto — mirroring the batch
// engine's columnarMode so the plan and the runtime agree.
func resolveColumnar(n *Node, def string) string {
	for _, m := range []string{n.ColumnarMode(), def} {
		switch m {
		case "auto", "on", "off":
			return m
		}
	}
	return "auto"
}

// isExprFilter reports whether sp is a pure expression filter — the only
// stage kind the planner reorders or pushes to sources. Interaction
// filters depend on live widget selections and are never moved.
func isExprFilter(sp task.Spec) bool {
	f, ok := sp.(*task.FilterSpec)
	return ok && f.Expression != "" && f.SourceWidget == ""
}

func sameSpecs(a, b []task.Spec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// estimate resolves a filter stage's selectivity with its evidence
// chain: observed history, then static facts, then the 0.5 heuristic.
func estimate(output string, sp task.Spec, opts PlanOptions) (float64, string) {
	desc := task.Describe(sp)
	if opts.Stats != nil {
		if st, ok := opts.Stats(output, desc); ok && st.HasSelectivity {
			return clamp01(st.Selectivity), EvidenceHistory
		}
	}
	if opts.Hints != nil {
		if h, ok := opts.Hints[HintKey(output, desc)]; ok {
			return clamp01(h), EvidenceFacts
		}
	}
	return 0.5, EvidenceHeuristic
}

// reorderFilters stable-sorts each maximal run of adjacent expression
// filters by estimated selectivity, most selective first — the
// cheapest-to-discard ordering. Filters commute exactly (conjunction;
// relative row order preserved), so this is sound for any estimates;
// the estimates only decide how fast it runs. Ties keep written order,
// so with uniform heuristics the plan equals the flow as written.
func reorderFilters(output string, specs []task.Spec, opts PlanOptions) ([]task.Spec, *Decision) {
	out := append([]task.Spec(nil), specs...)
	changed := false
	evidence := EvidenceHeuristic
	var detail []string
	for i := 0; i < len(out); {
		if !isExprFilter(out[i]) {
			i++
			continue
		}
		j := i
		for j < len(out) && isExprFilter(out[j]) {
			j++
		}
		if j-i >= 2 {
			type ranked struct {
				sp   task.Spec
				sel  float64
				ev   string
				orig int
			}
			run := make([]ranked, j-i)
			for k := 0; k < j-i; k++ {
				sel, ev := estimate(output, out[i+k], opts)
				run[k] = ranked{out[i+k], sel, ev, k}
			}
			sort.SliceStable(run, func(a, b int) bool { return run[a].sel < run[b].sel })
			for k, r := range run {
				if r.orig != k {
					changed = true
				}
				if r.ev == EvidenceHistory {
					evidence = EvidenceHistory
				} else if r.ev == EvidenceFacts && evidence != EvidenceHistory {
					evidence = EvidenceFacts
				}
				out[i+k] = r.sp
				detail = append(detail, fmt.Sprintf("%s sel=%.2f", task.Describe(r.sp), r.sel))
			}
		}
		i = j
	}
	if !changed {
		return out, nil
	}
	return out, &Decision{
		Rule:     RuleFilterReorder,
		Detail:   "ordered adjacent filters by estimated selectivity: " + strings.Join(detail, ", "),
		Evidence: evidence,
	}
}

// stagePlans renders the planned specs with predicted selectivities,
// execution paths and fusion — the explain view of one node.
func stagePlans(output string, specs []task.Spec, mode string, opts PlanOptions) []StagePlan {
	out := make([]StagePlan, len(specs))
	for i, sp := range specs {
		st := StagePlan{Stage: task.Describe(sp)}
		if isExprFilter(sp) {
			st.Selectivity, st.Evidence = estimate(output, sp, opts)
		}
		st.Path = predictPath(output, sp, mode, opts)
		out[i] = st
	}
	// Fusion: consecutive row-local stages fuse into one sharded pass
	// unless the columnar path takes a stage out of the run.
	for i := 1; i < len(specs); i++ {
		_, prevRL := specs[i-1].(task.RowLocal)
		_, curRL := specs[i].(task.RowLocal)
		if prevRL && curRL && out[i-1].Path != "columnar" && out[i].Path != "columnar" {
			out[i].Fused = true
		}
	}
	return out
}

// predictPath predicts a stage's execution path from the resolved mode,
// the spec's vectorizability and the observed input cardinality. "auto"
// means the runtime planner decides (no statistics to predict from).
func predictPath(output string, sp task.Spec, mode string, opts PlanOptions) string {
	if mode == "off" {
		return "row"
	}
	if _, ok := sp.(task.Vectorizable); !ok {
		return "row"
	}
	if mode == "on" {
		return "columnar"
	}
	if opts.Stats != nil {
		if st, ok := opts.Stats(output, task.Describe(sp)); ok && st.HasRowsIn {
			if st.RowsIn >= ColumnarAutoThreshold {
				return "columnar"
			}
			return "row"
		}
	}
	return "auto"
}

// predicateGate is the selectivity above which pushing a predicate into
// the fetch is not worth re-shaping the decode: most rows survive, so
// decode-time filtering saves little. Below it, the fetch provably
// drops enough rows to pay off. Requiring real evidence (history or
// facts) means the very first run of a flow never pushes — the second
// run does, because the first was measured.
const predicateGate = 0.75

// sourcePushdown decides a source's fetch-time rewrite: projection from
// static liveness, predicate from the single consumer's leading filter
// when the evidence says it is selective.
func sourcePushdown(g *Graph, n *Node, plans map[string]*NodePlan, skip map[string]bool, opts PlanOptions) (*SourcePushdown, []Decision) {
	pd := &SourcePushdown{}
	var decisions []Decision
	// Projection applies regardless of fan-out or endpoint status:
	// flowcheck's liveness already accounts for every reader, widgets
	// and endpoints included.
	if dead := opts.DeadSourceColumns[n.Name]; len(dead) > 0 {
		pd.SkipColumns = append([]string(nil), dead...)
		sort.Strings(pd.SkipColumns)
	}
	// Predicate pushdown: the source must feed exactly one pipeline (no
	// widgets, not an endpoint, not published — every other reader sees
	// unfiltered rows), and that pipeline's planned first stage must be
	// an expression filter with evidence it is selective.
	if f := pushableFilter(g, n, plans, skip); f != nil {
		consumer := uniqueConsumer(n)
		sel, ev := estimate(consumer, f, opts)
		if ev != EvidenceHeuristic && sel < predicateGate && predicateCoversSchema(f.Expression, n) {
			pd.Predicate = f.Expression
			pd.Consumer = consumer
			pd.Selectivity = sel
			pd.Evidence = ev
			// The predicate's columns must be decoded to evaluate it.
			pd.SkipColumns = subtractCols(pd.SkipColumns, f.Expression)
			decisions = append(decisions, Decision{
				Rule:     RulePredicateToSource,
				Detail:   fmt.Sprintf("filter (%s) of D.%s applied during fetch (sel=%.2f)", f.Expression, consumer, sel),
				Evidence: ev,
			})
		}
	}
	if len(pd.SkipColumns) > 0 {
		decisions = append(decisions, Decision{
			Rule:     RuleProjectionToSource,
			Detail:   "skip decoding never-read columns: " + strings.Join(pd.SkipColumns, ", "),
			Evidence: EvidenceFacts,
		})
	}
	if pd.Predicate == "" && len(pd.SkipColumns) == 0 {
		return nil, decisions
	}
	return pd, decisions
}

// uniqueConsumer returns the single non-widget consumer name, or "".
func uniqueConsumer(n *Node) string {
	seen := map[string]bool{}
	name := ""
	for _, c := range n.Consumers {
		if strings.HasPrefix(c, "widget:") {
			return ""
		}
		if !seen[c] {
			seen[c] = true
			name = c
		}
	}
	if len(seen) != 1 {
		return ""
	}
	return name
}

// pushableFilter returns the leading expression filter of the source's
// single consumer, when the graph shape allows pushing it.
func pushableFilter(g *Graph, n *Node, plans map[string]*NodePlan, skip map[string]bool) *task.FilterSpec {
	if n.Def.Endpoint || n.Def.Publish != "" {
		return nil
	}
	cname := uniqueConsumer(n)
	if cname == "" || skip[cname] {
		return nil
	}
	consumer := g.Nodes[cname]
	if consumer == nil || len(consumer.Inputs) != 1 || consumer.Inputs[0] != n.Name {
		return nil
	}
	np := plans[cname]
	if np == nil || len(np.Specs) == 0 || !isExprFilter(np.Specs[0]) {
		return nil
	}
	return np.Specs[0].(*task.FilterSpec)
}

// predicateCoversSchema verifies every column the predicate reads is a
// declared source column (it binds first in the consumer, so this holds
// by construction; the check guards programmatic callers).
func predicateCoversSchema(src string, n *Node) bool {
	cols, err := expr.ReferencedColumns(src)
	if err != nil {
		return false
	}
	if n.Schema == nil {
		return false
	}
	for _, c := range cols {
		if !n.Schema.Has(c) {
			return false
		}
	}
	return true
}

// subtractCols removes the predicate's referenced columns from a
// skip-column list.
func subtractCols(cols []string, predicate string) []string {
	refs, err := expr.ReferencedColumns(predicate)
	if err != nil {
		return cols
	}
	needed := map[string]bool{}
	for _, c := range refs {
		needed[c] = true
	}
	out := cols[:0]
	for _, c := range cols {
		if !needed[c] {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Format renders the plan as the deterministic text of `shareinsights
// explain`: one block per node in topological order, with stages,
// estimates, predicted paths and the decisions that shaped them.
func (p *Plan) Format() string {
	skipped := map[string]bool{}
	for _, s := range p.SkippedSinks {
		skipped[s] = true
	}
	var b strings.Builder
	for _, name := range p.Order {
		np := p.Nodes[name]
		if np == nil {
			continue
		}
		if skipped[name] {
			fmt.Fprintf(&b, "D.%s  skipped (dead sink: nothing consumes it)\n", name)
			continue
		}
		if np.Source {
			fmt.Fprintf(&b, "D.%s  (source)\n", name)
			if pd := np.Pushdown; pd != nil {
				if pd.Predicate != "" {
					fmt.Fprintf(&b, "  pushdown predicate: (%s)  sel=%.2f [%s]\n", pd.Predicate, pd.Selectivity, pd.Evidence)
				}
				if len(pd.SkipColumns) > 0 {
					fmt.Fprintf(&b, "  pushdown skip columns: %s\n", strings.Join(pd.SkipColumns, ", "))
				}
			}
			for _, d := range np.Decisions {
				fmt.Fprintf(&b, "  * %s: %s [%s]\n", d.Rule, d.Detail, d.Evidence)
			}
			continue
		}
		fmt.Fprintf(&b, "D.%s  columnar=%s\n", name, np.Columnar)
		for i, st := range np.Stages {
			fmt.Fprintf(&b, "  %d. %s", i+1, st.Stage)
			if st.Evidence != "" {
				fmt.Fprintf(&b, "  sel=%.2f [%s]", st.Selectivity, st.Evidence)
			}
			fmt.Fprintf(&b, "  path=%s", st.Path)
			if st.Fused {
				b.WriteString("  (fused with previous)")
			}
			b.WriteString("\n")
		}
		for _, d := range np.Decisions {
			fmt.Fprintf(&b, "  * %s: %s [%s]\n", d.Rule, d.Detail, d.Evidence)
		}
	}
	return b.String()
}
