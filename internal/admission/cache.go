package admission

import (
	"context"
	"strings"
	"sync"

	"shareinsights/internal/obs"
)

// Result-cache outcomes, reported by Do and surfaced to clients on the
// X-SI-Result-Cache response header.
const (
	// OutcomeHit marks a request served from a completed cache entry.
	OutcomeHit = "hit"
	// OutcomeMiss marks the request that led an execution (and, on
	// success, populated the cache).
	OutcomeMiss = "miss"
	// OutcomeFollow marks a request collapsed onto a concurrent
	// identical execution (singleflight): it waited for the leader's
	// result instead of running its own.
	OutcomeFollow = "follow"
)

// ResultCache is a bounded, singleflight-collapsing cache of run
// results. Keys encode everything a result depends on — flow-file
// revision, shared-input catalog generations, upload revision — so a
// publish, commit or upload naturally rotates the key; Invalidate
// additionally drops entries eagerly so a superseded result never
// lingers until eviction.
//
// Values are opaque (any): the cache does not know what a dashboard
// is, keeping this package engine-agnostic like the rest of admission.
type ResultCache struct {
	limit int

	mu      sync.Mutex
	seq     int64
	entries map[string]*cacheEntry
	flights map[string]*flight
	stats   CacheStats

	mHits, mMisses, mCollapsed, mEvictions, mInvalidations *obs.Counter
	mEntries                                               *obs.Gauge
}

type cacheEntry struct {
	val  any
	seen int64 // LRU clock
}

// flight is one in-progress leader execution; followers wait on done.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// NewResultCache builds a cache holding at most limit completed
// entries (default 128 when limit <= 0).
func NewResultCache(limit int, m *obs.Registry) *ResultCache {
	if limit <= 0 {
		limit = 128
	}
	c := &ResultCache{
		limit:   limit,
		entries: map[string]*cacheEntry{},
		flights: map[string]*flight{},
	}
	if m != nil {
		c.mHits = m.Counter("si_result_cache_hits_total", "Run requests served from the shared result cache.")
		c.mMisses = m.Counter("si_result_cache_misses_total", "Run requests that executed and (on success) populated the result cache.")
		c.mCollapsed = m.Counter("si_result_cache_collapsed_total", "Run requests collapsed onto a concurrent identical execution (singleflight).")
		c.mEvictions = m.Counter("si_result_cache_evictions_total", "Result-cache entries evicted by the LRU bound.")
		c.mInvalidations = m.Counter("si_result_cache_invalidations_total", "Result-cache entries dropped by explicit invalidation.")
		c.mEntries = m.Gauge("si_result_cache_entries", "Completed entries in the shared result cache.")
	}
	return c
}

func inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

// Do returns the cached value for key, or executes fn to produce it.
// Concurrent calls with the same key collapse: one leader runs fn, the
// rest wait for its result (outcome "follow"). A follower whose ctx
// dies returns ctx.Err() without disturbing the flight — the leader
// keeps running for everyone else. Failed executions are never cached.
func (c *ResultCache) Do(ctx context.Context, key string, fn func() (any, error)) (any, string, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.seq++
		e.seen = c.seq
		c.stats.Hits++
		c.mu.Unlock()
		inc(c.mHits)
		return e.val, OutcomeHit, nil
	}
	if f, ok := c.flights[key]; ok {
		c.stats.Collapsed++
		c.mu.Unlock()
		inc(c.mCollapsed)
		select {
		case <-f.done:
			return f.val, OutcomeFollow, f.err
		case <-ctx.Done():
			return nil, OutcomeFollow, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.stats.Misses++
	c.mu.Unlock()
	inc(c.mMisses)

	f.val, f.err = fn()

	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil {
		c.storeLocked(key, f.val)
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, OutcomeMiss, f.err
}

// storeLocked installs a completed entry, evicting the least recently
// used entry when over the bound. Callers hold c.mu.
func (c *ResultCache) storeLocked(key string, val any) {
	c.seq++
	c.entries[key] = &cacheEntry{val: val, seen: c.seq}
	for len(c.entries) > c.limit {
		var oldest string
		var oldestSeen int64
		for k, e := range c.entries {
			if oldest == "" || e.seen < oldestSeen {
				oldest, oldestSeen = k, e.seen
			}
		}
		delete(c.entries, oldest)
		c.stats.Evictions++
		inc(c.mEvictions)
	}
	if c.mEntries != nil {
		c.mEntries.Set(float64(len(c.entries)))
	}
}

// Invalidate drops every completed entry whose key starts with prefix
// ("" drops all) and returns how many were dropped. In-progress
// flights are untouched: their result lands under a key the caller's
// mutation has already superseded, where the next Invalidate or the
// LRU bound collects it.
func (c *ResultCache) Invalidate(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k := range c.entries {
		if strings.HasPrefix(k, prefix) {
			delete(c.entries, k)
			n++
		}
	}
	c.stats.Invalidations += int64(n)
	if n > 0 && c.mInvalidations != nil {
		c.mInvalidations.Add(int64(n))
	}
	if c.mEntries != nil {
		c.mEntries.Set(float64(len(c.entries)))
	}
	return n
}

// Len reports the number of completed entries.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// CacheStats is a point-in-time snapshot of the result cache for
// status surfaces (the ops meta-dashboard's cache panel).
type CacheStats struct {
	// Entries is the number of completed entries held.
	Entries int
	// Hits, Misses and Collapsed count Do outcomes cumulatively.
	Hits, Misses, Collapsed int64
	// Evictions and Invalidations count dropped entries cumulatively.
	Evictions, Invalidations int64
}

// Stats snapshots the cache.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = len(c.entries)
	return st
}
