package admission

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shareinsights/internal/obs"
)

// acquireOK admits and fails the test on any error.
func acquireOK(t *testing.T, g *Gate, tenant string) func() {
	t.Helper()
	release, err := g.Acquire(context.Background(), tenant)
	if err != nil {
		t.Fatalf("Acquire(%q): %v", tenant, err)
	}
	return release
}

func TestGateZeroConfigAdmitsEverything(t *testing.T) {
	g := NewGate(Config{})
	for i := 0; i < 100; i++ {
		release := acquireOK(t, g, "")
		defer release()
	}
	if st := g.Stats(); st.InFlight != 100 {
		t.Fatalf("inflight = %d, want 100", st.InFlight)
	}
}

func TestGateShedsWhenQueueFull(t *testing.T) {
	g := NewGate(Config{MaxInFlight: 1, QueueDepth: 0})
	release := acquireOK(t, g, "")
	defer release()
	_, err := g.Acquire(context.Background(), "")
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedQueueFull {
		t.Fatalf("err = %v, want queue_full shed", err)
	}
	if shed.RetryAfter <= 0 {
		t.Fatalf("shed has no Retry-After hint: %+v", shed)
	}
}

func TestGateQueueIsFIFO(t *testing.T) {
	g := NewGate(Config{MaxInFlight: 1, QueueDepth: 8})
	release := acquireOK(t, g, "")

	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := g.Acquire(context.Background(), "")
			if err != nil {
				t.Errorf("queued acquire %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			rel()
		}()
		// Serialize enqueue order so FIFO is observable.
		waitFor(t, func() bool { return g.Stats().Queued == i+1 })
	}
	release()
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order %v is not FIFO", order)
		}
	}
	if st := g.Stats(); st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("gate not drained: %+v", st)
	}
}

// TestGateCanceledWaiterReleasesSlot is the client-disconnect
// contract: a queued request whose context dies must give up its queue
// position, and — in the race where a slot was granted concurrently —
// pass the slot on rather than leak it.
func TestGateCanceledWaiterReleasesSlot(t *testing.T) {
	g := NewGate(Config{MaxInFlight: 1, QueueDepth: 4})
	release := acquireOK(t, g, "")

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx, "")
		errc <- err
	}()
	waitFor(t, func() bool { return g.Stats().Queued == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter returned %v, want context.Canceled", err)
	}
	waitFor(t, func() bool { return g.Stats().Queued == 0 })

	// The slot is still usable: release the holder, re-acquire.
	release()
	rel2 := acquireOK(t, g, "")
	rel2()
	if st := g.Stats(); st.InFlight != 0 {
		t.Fatalf("slot leaked: %+v", st)
	}
}

// TestGateCancelGrantRace drives the cancel/grant race hard: waiters
// are canceled at the same moment releases hand them slots. However
// the race lands, no slot may leak — the gate must end fully drained
// and still admit MaxInFlight requests.
func TestGateCancelGrantRace(t *testing.T) {
	g := NewGate(Config{MaxInFlight: 2, QueueDepth: 64})
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			go cancel() // races with a concurrent grant
			release, err := g.Acquire(ctx, "")
			if err == nil {
				release()
			}
		}()
	}
	wg.Wait()
	waitFor(t, func() bool {
		st := g.Stats()
		return st.InFlight == 0 && st.Queued == 0
	})
	r1, r2 := acquireOK(t, g, ""), acquireOK(t, g, "")
	r1()
	r2()
}

func TestGateQueueTimeout(t *testing.T) {
	g := NewGate(Config{MaxInFlight: 1, QueueDepth: 4, QueueTimeout: 20 * time.Millisecond})
	release := acquireOK(t, g, "")
	defer release()
	_, err := g.Acquire(context.Background(), "")
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedQueueTimeout {
		t.Fatalf("err = %v, want queue_timeout shed", err)
	}
	if st := g.Stats(); st.Queued != 0 {
		t.Fatalf("timed-out waiter still queued: %+v", st)
	}
}

func TestTenantTokenBucket(t *testing.T) {
	now := time.Unix(0, 0)
	g := NewGate(Config{TenantRPS: 1, TenantBurst: 2, Now: func() time.Time { return now }})

	// The burst admits immediately; the next request sheds with the
	// time to the next token as its Retry-After hint.
	acquireOK(t, g, "a")()
	acquireOK(t, g, "a")()
	_, err := g.Acquire(context.Background(), "a")
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedTenantRate {
		t.Fatalf("err = %v, want tenant_rate shed", err)
	}
	if shed.RetryAfter < 500*time.Millisecond || shed.RetryAfter > time.Second {
		t.Fatalf("Retry-After = %s, want ~1s (time to next token)", shed.RetryAfter)
	}
	// Another tenant is unaffected.
	acquireOK(t, g, "b")()
	// Advancing the clock refills the bucket.
	now = now.Add(1500 * time.Millisecond)
	acquireOK(t, g, "a")()
}

// TestTenantIsolation is the acceptance criterion: a hot tenant
// saturating its own quota and rate never blocks a well-behaved one.
func TestTenantIsolation(t *testing.T) {
	g := NewGate(Config{
		MaxInFlight:       16,
		QueueDepth:        16,
		TenantRPS:         1000, // rate effectively unlimited here
		TenantBurst:       1000,
		TenantMaxInFlight: 2,
	})
	// The hot tenant pins its whole quota and keeps hammering.
	hold1 := acquireOK(t, g, "hot")
	hold2 := acquireOK(t, g, "hot")
	defer hold1()
	defer hold2()
	var hotSheds atomic.Int64
	for i := 0; i < 50; i++ {
		if _, err := g.Acquire(context.Background(), "hot"); err != nil {
			var shed *ShedError
			if !errors.As(err, &shed) || shed.Reason != ShedTenantQuota {
				t.Fatalf("hot tenant err = %v, want tenant_quota shed", err)
			}
			hotSheds.Add(1)
		}
	}
	if hotSheds.Load() != 50 {
		t.Fatalf("hot tenant sheds = %d, want 50", hotSheds.Load())
	}
	// The polite tenant sails through: the hot tenant's quota sheds
	// never consumed global slots or queue positions.
	for i := 0; i < 20; i++ {
		acquireOK(t, g, "polite")()
	}
}

func TestGateMetrics(t *testing.T) {
	m := obs.NewRegistry()
	g := NewGate(Config{MaxInFlight: 1, QueueDepth: 0, Metrics: m})
	release := acquireOK(t, g, "")
	g.Acquire(context.Background(), "") // sheds queue_full
	release()

	var sb strings.Builder
	m.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"si_admission_admitted_total 1",
		`si_admission_shed_total{reason="queue_full"} 1`,
		"si_admission_inflight 0",
		"si_admission_queued 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGateReleaseIsIdempotent(t *testing.T) {
	g := NewGate(Config{MaxInFlight: 2})
	release := acquireOK(t, g, "")
	release()
	release() // must not double-decrement
	if st := g.Stats(); st.InFlight != 0 {
		t.Fatalf("inflight = %d after double release, want 0", st.InFlight)
	}
	r1, r2 := acquireOK(t, g, ""), acquireOK(t, g, "")
	if st := g.Stats(); st.InFlight != 2 {
		t.Fatalf("inflight = %d, want 2", st.InFlight)
	}
	r1()
	r2()
}

func TestBudget(t *testing.T) {
	if NewBudget(0, 0) != nil {
		t.Fatal("NewBudget(0,0) should be nil (no accounting)")
	}
	var nilB *Budget
	if err := nilB.Charge(1<<40, 1<<40); err != nil {
		t.Fatalf("nil budget charged: %v", err)
	}

	b := NewBudget(100, 1000)
	if err := b.Charge(60, 400); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := b.Charge(60, 0)
	var be *BudgetError
	if !errors.As(err, &be) || be.Kind != "rows" {
		t.Fatalf("err = %v, want rows budget error", err)
	}
	b2 := NewBudget(0, 1000)
	if err := b2.Charge(1<<30, 500); err != nil {
		t.Fatalf("rows unlimited: %v", err)
	}
	if err := b2.Charge(0, 501); err == nil {
		t.Fatal("bytes over budget not detected")
	}
	rows, bytes := b2.Used()
	if rows != 1<<30 || bytes != 1001 {
		t.Fatalf("Used() = %d, %d", rows, bytes)
	}
}

func TestBudgetConcurrent(t *testing.T) {
	b := NewBudget(1000, 0)
	var over atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if err := b.Charge(1, 0); err != nil {
					over.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	// 8000 rows charged against a 1000-row budget: exactly 7000
	// charges land over the limit.
	if over.Load() != 7000 {
		t.Fatalf("over-budget charges = %d, want 7000", over.Load())
	}
}

// waitFor polls cond with a deadline; scheduling-dependent state
// (queue membership of a goroutine) cannot be asserted synchronously.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
