// Package admission is the serving layer's front door: a server-wide
// concurrency gate with a bounded FIFO queue and queue-depth shedding,
// per-tenant token-bucket rate limits and in-flight quotas, per-run
// row/byte budgets, and a singleflight result cache that collapses
// identical concurrent runs into one execution (docs/SERVING.md).
//
// The paper's premise is one platform serving an entire hackathon's
// worth of concurrent analysts; without admission control any burst of
// dashboard runs competes unbounded for CPU and memory, and one
// tenant's expensive flow starves everyone. The gate turns overload
// into bounded latency plus explicit 429s — the same Retry-After
// contract the http connector already honors on the client side
// (docs/RESILIENCE.md) — instead of collapse.
//
// Like internal/resilience, this package is standard-library-only
// (internal/obs, its one dependency, is itself stdlib-only), so every
// layer of the system can adopt it.
package admission

import (
	"context"
	"fmt"
	"sync"
	"time"

	"shareinsights/internal/obs"
)

// DefaultTenant is the tenant requests without an X-SI-Tenant header
// are accounted to.
const DefaultTenant = "default"

// Shed reasons, carried on ShedError and the reason label of
// si_admission_shed_total.
const (
	// ShedQueueFull marks requests rejected because the global gate was
	// saturated and its FIFO queue at capacity.
	ShedQueueFull = "queue_full"
	// ShedQueueTimeout marks requests that queued but were not granted
	// a slot within Config.QueueTimeout.
	ShedQueueTimeout = "queue_timeout"
	// ShedTenantRate marks requests rejected by the tenant's token
	// bucket (request rate above Config.TenantRPS for too long).
	ShedTenantRate = "tenant_rate"
	// ShedTenantQuota marks requests rejected because the tenant is
	// already running Config.TenantMaxInFlight requests.
	ShedTenantQuota = "tenant_quota"
)

// ShedError is a load-shedding decision: the request was rejected
// before any work ran. Servers translate it to HTTP 429 with a
// Retry-After header; it is not a failure of the platform, so it must
// never feed circuit breakers or error budgets.
type ShedError struct {
	// Reason is one of the Shed* constants.
	Reason string
	// Tenant is the tenant the request was accounted to.
	Tenant string
	// RetryAfter is the backoff hint: for tenant_rate sheds the time
	// until the bucket refills one token, otherwise Config.RetryAfter.
	RetryAfter time.Duration
}

// Error implements error.
func (e *ShedError) Error() string {
	return fmt.Sprintf("request shed (%s, tenant %q): retry after %s", e.Reason, e.Tenant, e.RetryAfter)
}

// Config tunes a Gate. The zero value disables every limit: Acquire
// then always admits immediately.
type Config struct {
	// MaxInFlight caps concurrently admitted requests server-wide;
	// <= 0 disables the global gate (no queue, no queue sheds).
	MaxInFlight int
	// QueueDepth bounds the FIFO queue behind a saturated gate;
	// arrivals beyond it shed with reason queue_full. <= 0 means no
	// queue: a saturated gate sheds immediately.
	QueueDepth int
	// QueueTimeout caps how long a queued request waits for a slot
	// before shedding with reason queue_timeout (default 10s).
	QueueTimeout time.Duration
	// TenantRPS is each tenant's token-bucket refill rate in requests
	// per second; <= 0 disables per-tenant rate limiting.
	TenantRPS float64
	// TenantBurst is the bucket capacity (default: 2×TenantRPS,
	// minimum 1) — the burst a tenant can spend after an idle period.
	TenantBurst int
	// TenantMaxInFlight caps one tenant's concurrently admitted
	// requests; <= 0 disables per-tenant quotas.
	TenantMaxInFlight int
	// RetryAfter is the backoff hint attached to queue_full and
	// tenant_quota sheds (default 1s).
	RetryAfter time.Duration
	// Metrics receives the si_admission_* series (optional).
	Metrics *obs.Registry
	// Now overrides the clock (tests).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 10 * time.Second
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = int(2 * c.TenantRPS)
		if c.TenantBurst < 1 {
			c.TenantBurst = 1
		}
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// tenantState is one tenant's token bucket and in-flight count.
type tenantState struct {
	tokens   float64
	last     time.Time
	inflight int
}

// waiter is one queued request. grant is buffered so a releaser can
// hand over a slot without blocking even while the waiter is
// concurrently abandoning the wait (cancel or timeout).
type waiter struct {
	tenant string
	grant  chan struct{}
}

// Gate is the admission controller. The zero value is not usable;
// build one with NewGate.
type Gate struct {
	cfg Config

	mu       sync.Mutex
	inflight int
	queue    []*waiter
	tenants  map[string]*tenantState
	admitted int64
	sheds    map[string]int64 // by reason

	mInflight *obs.Gauge
	mQueued   *obs.Gauge
	mAdmitted *obs.Counter
	mShed     *obs.CounterVec
	mWait     *obs.Histogram
}

// NewGate builds a gate from cfg.
func NewGate(cfg Config) *Gate {
	g := &Gate{cfg: cfg.withDefaults(), tenants: map[string]*tenantState{}, sheds: map[string]int64{}}
	if m := g.cfg.Metrics; m != nil {
		g.mInflight = m.Gauge("si_admission_inflight", "Requests currently admitted through the gate.")
		g.mQueued = m.Gauge("si_admission_queued", "Requests waiting in the admission FIFO queue.")
		g.mAdmitted = m.Counter("si_admission_admitted_total", "Requests admitted through the gate.")
		g.mShed = m.CounterVec("si_admission_shed_total", "Requests shed by the admission controller, by reason.", "reason")
		g.mWait = m.Histogram("si_admission_queue_wait_seconds", "Queue wait of admitted requests that had to queue.", nil)
	}
	return g
}

// tenantLocked fetches or creates a tenant's state. Callers hold g.mu.
func (g *Gate) tenantLocked(tenant string) *tenantState {
	ts := g.tenants[tenant]
	if ts == nil {
		// Bound the map: a scrape of distinct tenant names must not
		// grow it forever. Idle tenants (full bucket, nothing running)
		// carry no state worth keeping.
		if len(g.tenants) >= 4096 {
			for name, old := range g.tenants {
				if old.inflight == 0 && old.tokens >= float64(g.cfg.TenantBurst) {
					delete(g.tenants, name)
				}
			}
		}
		ts = &tenantState{tokens: float64(g.cfg.TenantBurst), last: g.cfg.Now()}
		g.tenants[tenant] = ts
	}
	return ts
}

// refillLocked advances a tenant's token bucket to now.
func (g *Gate) refillLocked(ts *tenantState, now time.Time) {
	if elapsed := now.Sub(ts.last); elapsed > 0 {
		ts.tokens += elapsed.Seconds() * g.cfg.TenantRPS
		if burst := float64(g.cfg.TenantBurst); ts.tokens > burst {
			ts.tokens = burst
		}
	}
	ts.last = now
}

// gaugesLocked publishes the in-flight and queue-depth gauges.
func (g *Gate) gaugesLocked() {
	if g.mInflight != nil {
		g.mInflight.Set(float64(g.inflight))
		g.mQueued.Set(float64(len(g.queue)))
	}
}

// shed builds a ShedError and counts it. Callers must not hold g.mu.
func (g *Gate) shed(reason, tenant string, retryAfter time.Duration) error {
	g.mu.Lock()
	g.sheds[reason]++
	g.mu.Unlock()
	if g.mShed != nil {
		g.mShed.With(reason).Inc()
	}
	return &ShedError{Reason: reason, Tenant: tenant, RetryAfter: retryAfter}
}

// admitted counts one admission.
func (g *Gate) countAdmitted() {
	g.mu.Lock()
	g.admitted++
	g.mu.Unlock()
	if g.mAdmitted != nil {
		g.mAdmitted.Inc()
	}
}

// Acquire admits, queues or sheds one request for tenant ("" means
// DefaultTenant). The checks run in cost order — tenant token bucket,
// tenant in-flight quota, then the global gate — so a rate-limited
// tenant never occupies a queue slot. On admission it returns a
// release function (idempotent; callers must invoke it exactly when
// the work ends). On rejection the error is a *ShedError, except when
// ctx dies while queued, which returns ctx.Err() — the client is gone,
// there is nobody to send a Retry-After to.
//
// Cancellation is only observed while queued: admission itself never
// blocks on anything but the queue.
func (g *Gate) Acquire(ctx context.Context, tenant string) (func(), error) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	g.mu.Lock()
	ts := g.tenantLocked(tenant)
	if g.cfg.TenantRPS > 0 {
		g.refillLocked(ts, g.cfg.Now())
		if ts.tokens < 1 {
			wait := time.Duration((1 - ts.tokens) / g.cfg.TenantRPS * float64(time.Second))
			if wait < time.Millisecond {
				wait = time.Millisecond
			}
			g.mu.Unlock()
			return nil, g.shed(ShedTenantRate, tenant, wait)
		}
		ts.tokens--
	}
	if g.cfg.TenantMaxInFlight > 0 && ts.inflight >= g.cfg.TenantMaxInFlight {
		g.mu.Unlock()
		return nil, g.shed(ShedTenantQuota, tenant, g.cfg.RetryAfter)
	}
	if g.cfg.MaxInFlight <= 0 || g.inflight < g.cfg.MaxInFlight {
		g.inflight++
		ts.inflight++
		g.gaugesLocked()
		g.mu.Unlock()
		g.countAdmitted()
		return g.releaseFunc(tenant), nil
	}
	if len(g.queue) >= g.cfg.QueueDepth {
		g.mu.Unlock()
		return nil, g.shed(ShedQueueFull, tenant, g.cfg.RetryAfter)
	}
	w := &waiter{tenant: tenant, grant: make(chan struct{}, 1)}
	g.queue = append(g.queue, w)
	g.gaugesLocked()
	g.mu.Unlock()

	enqueued := time.Now()
	timer := time.NewTimer(g.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case <-w.grant:
		if g.mWait != nil {
			g.mWait.Observe(time.Since(enqueued).Seconds())
		}
		g.countAdmitted()
		return g.releaseFunc(tenant), nil
	case <-ctx.Done():
		if g.abandon(w) {
			return nil, ctx.Err()
		}
		// A releaser granted our slot concurrently with the cancel:
		// the grant is in the buffered channel. Take it and release it
		// so the slot is not leaked — a canceled queued run must hand
		// its slot to the next waiter.
		<-w.grant
		g.release(tenant)
		return nil, ctx.Err()
	case <-timer.C:
		if g.abandon(w) {
			return nil, g.shed(ShedQueueTimeout, tenant, g.cfg.RetryAfter)
		}
		<-w.grant
		g.release(tenant)
		return nil, g.shed(ShedQueueTimeout, tenant, g.cfg.RetryAfter)
	}
}

// abandon removes w from the queue. False means w is no longer queued
// — a releaser already granted it a slot, which the caller now owns
// (and must release).
func (g *Gate) abandon(w *waiter) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, q := range g.queue {
		if q == w {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			g.gaugesLocked()
			return true
		}
	}
	return false
}

// releaseFunc wraps release in a sync.Once: a double release must not
// corrupt the in-flight accounting.
func (g *Gate) releaseFunc(tenant string) func() {
	var once sync.Once
	return func() { once.Do(func() { g.release(tenant) }) }
}

// release returns one slot: the oldest queued waiter inherits it (the
// slot never goes idle while the queue is non-empty), otherwise the
// in-flight count drops.
func (g *Gate) release(tenant string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if ts := g.tenants[tenant]; ts != nil && ts.inflight > 0 {
		ts.inflight--
	}
	if len(g.queue) > 0 {
		w := g.queue[0]
		g.queue = g.queue[1:]
		g.tenantLocked(w.tenant).inflight++
		w.grant <- struct{}{}
	} else if g.inflight > 0 {
		g.inflight--
	}
	g.gaugesLocked()
}

// Stats is a point-in-time snapshot of the gate for status surfaces
// (the ops meta-dashboard's admission panel).
type Stats struct {
	// InFlight is the number of currently admitted requests.
	InFlight int
	// Queued is the current FIFO queue depth.
	Queued int
	// MaxInFlight and QueueDepth echo the configured limits.
	MaxInFlight int
	QueueDepth  int
	// Tenants is the number of tenants with tracked state.
	Tenants int
	// Admitted is the cumulative count of admitted requests.
	Admitted int64
	// Shed maps shed reasons to cumulative counts.
	Shed map[string]int64
}

// Stats snapshots the gate.
func (g *Gate) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	shed := make(map[string]int64, len(g.sheds))
	for k, v := range g.sheds {
		shed[k] = v
	}
	return Stats{
		InFlight:    g.inflight,
		Queued:      len(g.queue),
		MaxInFlight: g.cfg.MaxInFlight,
		QueueDepth:  g.cfg.QueueDepth,
		Tenants:     len(g.tenants),
		Admitted:    g.admitted,
		Shed:        shed,
	}
}
