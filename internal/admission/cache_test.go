package admission

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestResultCacheHitAndMiss(t *testing.T) {
	c := NewResultCache(8, nil)
	calls := 0
	fn := func() (any, error) { calls++; return "result", nil }

	v, outcome, err := c.Do(context.Background(), "k", fn)
	if err != nil || v != "result" || outcome != OutcomeMiss {
		t.Fatalf("first Do = %v, %q, %v", v, outcome, err)
	}
	v, outcome, err = c.Do(context.Background(), "k", fn)
	if err != nil || v != "result" || outcome != OutcomeHit {
		t.Fatalf("second Do = %v, %q, %v", v, outcome, err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
}

func TestResultCacheNeverCachesErrors(t *testing.T) {
	c := NewResultCache(8, nil)
	boom := errors.New("boom")
	_, _, err := c.Do(context.Background(), "k", func() (any, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	_, outcome, err := c.Do(context.Background(), "k", func() (any, error) { return "ok", nil })
	if err != nil || outcome != OutcomeMiss {
		t.Fatalf("retry after error = %q, %v; failures must not be cached", outcome, err)
	}
}

// TestResultCacheCollapse is the singleflight contract: N identical
// concurrent runs execute once; everyone gets the leader's result.
func TestResultCacheCollapse(t *testing.T) {
	c := NewResultCache(8, nil)
	var calls atomic.Int64
	started := make(chan struct{})
	unblock := make(chan struct{})
	fn := func() (any, error) {
		calls.Add(1)
		close(started)
		<-unblock
		return "shared", nil
	}

	var wg sync.WaitGroup
	outcomes := make([]string, 16)
	leaderGo := func() {
		defer wg.Done()
		v, outcome, err := c.Do(context.Background(), "k", fn)
		if err != nil || v != "shared" {
			t.Errorf("leader Do = %v, %v", v, err)
		}
		outcomes[0] = outcome
	}
	wg.Add(1)
	go leaderGo()
	<-started // leader is inside fn; the rest must collapse onto it
	for i := 1; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, outcome, err := c.Do(context.Background(), "k", func() (any, error) {
				t.Error("follower executed fn")
				return nil, nil
			})
			if err != nil || v != "shared" {
				t.Errorf("follower Do = %v, %v", v, err)
			}
			outcomes[i] = outcome
		}()
	}
	time.Sleep(10 * time.Millisecond) // let followers attach to the flight
	close(unblock)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times under concurrency, want 1", calls.Load())
	}
	if outcomes[0] != OutcomeMiss {
		t.Fatalf("leader outcome = %q", outcomes[0])
	}
	for i := 1; i < 16; i++ {
		if outcomes[i] != OutcomeFollow {
			t.Fatalf("follower %d outcome = %q, want follow", i, outcomes[i])
		}
	}
}

// TestResultCacheFollowerCancel: a follower whose context dies walks
// away with ctx.Err(); the leader's flight is undisturbed and still
// populates the cache.
func TestResultCacheFollowerCancel(t *testing.T) {
	c := NewResultCache(8, nil)
	started := make(chan struct{})
	unblock := make(chan struct{})
	go c.Do(context.Background(), "k", func() (any, error) {
		close(started)
		<-unblock
		return "late", nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, outcome, err := c.Do(ctx, "k", nil)
	if !errors.Is(err, context.Canceled) || outcome != OutcomeFollow {
		t.Fatalf("canceled follower = %q, %v", outcome, err)
	}

	close(unblock)
	deadline := time.Now().Add(5 * time.Second)
	for c.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader result never cached")
		}
		time.Sleep(time.Millisecond)
	}
	v, outcome, err := c.Do(context.Background(), "k", nil)
	if err != nil || v != "late" || outcome != OutcomeHit {
		t.Fatalf("post-cancel Do = %v, %q, %v", v, outcome, err)
	}
}

func TestResultCacheInvalidate(t *testing.T) {
	c := NewResultCache(8, nil)
	for _, k := range []string{"sales@1", "sales@2", "ops@1"} {
		k := k
		c.Do(context.Background(), k, func() (any, error) { return k, nil })
	}
	if n := c.Invalidate("sales@"); n != 2 {
		t.Fatalf("Invalidate dropped %d, want 2", n)
	}
	if _, outcome, _ := c.Do(context.Background(), "sales@1", func() (any, error) { return "fresh", nil }); outcome != OutcomeMiss {
		t.Fatalf("invalidated key outcome = %q, want miss", outcome)
	}
	if _, outcome, _ := c.Do(context.Background(), "ops@1", nil); outcome != OutcomeHit {
		t.Fatalf("unrelated key outcome = %q, want hit", outcome)
	}
}

func TestResultCacheInvalidateAll(t *testing.T) {
	c := NewResultCache(8, nil)
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("k%d", i)
		c.Do(context.Background(), k, func() (any, error) { return k, nil })
	}
	if n := c.Invalidate(""); n != 5 {
		t.Fatalf("Invalidate(\"\") dropped %d, want 5", n)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after full invalidation", c.Len())
	}
}

func TestResultCacheLRUBound(t *testing.T) {
	c := NewResultCache(2, nil)
	for _, k := range []string{"a", "b"} {
		k := k
		c.Do(context.Background(), k, func() (any, error) { return k, nil })
	}
	// Touch "a" so "b" is the LRU victim when "c" arrives.
	if _, outcome, _ := c.Do(context.Background(), "a", nil); outcome != OutcomeHit {
		t.Fatal("warm-up hit on a failed")
	}
	c.Do(context.Background(), "c", func() (any, error) { return "c", nil })
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (bounded)", c.Len())
	}
	if _, outcome, _ := c.Do(context.Background(), "a", nil); outcome != OutcomeHit {
		t.Fatal("recently used entry evicted")
	}
	if _, outcome, _ := c.Do(context.Background(), "b", func() (any, error) { return "b", nil }); outcome != OutcomeMiss {
		t.Fatal("LRU entry survived past the bound")
	}
}

// TestResultCacheInvalidateDuringFlight: an invalidation racing an
// in-progress execution never resurrects — the flight's stale result
// may land in the cache under its old key, but a mutation that changes
// the key (the server encodes revisions into keys) makes it
// unreachable; a same-key invalidation after completion drops it.
func TestResultCacheInvalidateDuringFlight(t *testing.T) {
	c := NewResultCache(8, nil)
	started := make(chan struct{})
	unblock := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Do(context.Background(), "k@rev1", func() (any, error) {
			close(started)
			<-unblock
			return "stale", nil
		})
	}()
	<-started
	c.Invalidate("k@") // racing publish: nothing completed yet
	close(unblock)
	<-done
	// The new revision misses regardless of the stale entry.
	v, outcome, err := c.Do(context.Background(), "k@rev2", func() (any, error) { return "fresh", nil })
	if err != nil || v != "fresh" || outcome != OutcomeMiss {
		t.Fatalf("post-publish Do = %v, %q, %v", v, outcome, err)
	}
	c.Invalidate("k@")
	if c.Len() != 0 {
		t.Fatalf("stale flight entry survived invalidation: Len = %d", c.Len())
	}
}
