package admission

import (
	"fmt"
	"sync/atomic"
)

// Budget is a per-run cap on engine output: rows and bytes charged by
// the batch engine's accounting hook as stages materialize results. A
// flow that crosses either limit fails with a *BudgetError instead of
// growing until the process OOMs — one tenant's runaway join cannot
// take the server down with it.
//
// Budget satisfies the engine's hook interface (batch.Budget)
// structurally, so the engine keeps zero knowledge of this package.
// A nil *Budget charges nothing and never fails.
type Budget struct {
	maxRows, maxBytes int64
	rows, bytes       atomic.Int64
}

// NewBudget builds a budget; a limit <= 0 means unlimited for that
// dimension. NewBudget(0, 0) returns nil — no accounting at all.
func NewBudget(maxRows, maxBytes int64) *Budget {
	if maxRows <= 0 && maxBytes <= 0 {
		return nil
	}
	return &Budget{maxRows: maxRows, maxBytes: maxBytes}
}

// Charge accounts rows and bytes produced by one stage, returning a
// *BudgetError once a limit is crossed. Safe for concurrent use — DAG
// nodes charge from parallel goroutines.
func (b *Budget) Charge(rows, bytes int) error {
	if b == nil {
		return nil
	}
	r := b.rows.Add(int64(rows))
	by := b.bytes.Add(int64(bytes))
	if b.maxRows > 0 && r > b.maxRows {
		return &BudgetError{Kind: "rows", Used: r, Limit: b.maxRows}
	}
	if b.maxBytes > 0 && by > b.maxBytes {
		return &BudgetError{Kind: "bytes", Used: by, Limit: b.maxBytes}
	}
	return nil
}

// Used reports the rows and bytes charged so far.
func (b *Budget) Used() (rows, bytes int64) {
	if b == nil {
		return 0, 0
	}
	return b.rows.Load(), b.bytes.Load()
}

// BudgetError reports a run that exceeded its row or byte budget.
type BudgetError struct {
	// Kind is "rows" or "bytes".
	Kind string
	// Used and Limit are the charged total and the configured cap.
	Used, Limit int64
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("run budget exceeded: %d %s charged, limit %d", e.Used, e.Kind, e.Limit)
}
