package hackathon

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"shareinsights/internal/admission"
	"shareinsights/internal/dashboard"
	"shareinsights/internal/server"
)

// TestRunLoadAgainstGatedServer is the end-to-end contract at small
// scale, made deterministic by saturating the gate by hand: with every
// slot held, a burst sheds completely (zero 5xx, every request
// accounted for); with the slots released, the same burst lands and
// warms the result cache.
func TestRunLoadAgainstGatedServer(t *testing.T) {
	s := server.New(dashboard.NewPlatform(),
		server.WithAdmission(admission.Config{
			MaxInFlight: 2, QueueDepth: 2, QueueTimeout: 50 * time.Millisecond,
		}),
		server.WithResultCache(32),
	)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cfg := LoadConfig{
		BaseURL:    ts.URL,
		Dashboards: 2,
		Workers:    16,
		Requests:   60,
		Tenants:    3,
		Rows:       50,
	}

	// Saturated: both slots pinned, so every run request queues briefly
	// or sheds — and shedding is never a 5xx.
	var releases []func()
	for i := 0; i < 2; i++ {
		release, err := s.Gate().Acquire(context.Background(), "pin")
		if err != nil {
			t.Fatal(err)
		}
		releases = append(releases, release)
	}
	rep, err := RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.OK + rep.Shed + rep.ClientErrors + rep.ServerErrors; got != rep.Requests {
		t.Errorf("outcomes %d do not sum to requests %d: %+v", got, rep.Requests, rep)
	}
	if rep.ServerErrors != 0 {
		t.Errorf("server errors under saturation: %+v", rep)
	}
	if rep.Shed != rep.Requests {
		t.Errorf("saturated gate shed %d/%d: %+v", rep.Shed, rep.Requests, rep)
	}
	if rep.ShedRate != 1 {
		t.Errorf("shed rate = %v, want 1", rep.ShedRate)
	}

	// Released: the same burst lands, runs collapse onto the cache, and
	// nothing sheds its way to a server error.
	for _, release := range releases {
		release()
	}
	rep, err = RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ServerErrors != 0 {
		t.Errorf("server errors after release: %+v", rep)
	}
	if rep.OK == 0 {
		t.Errorf("no successful runs after release: %+v", rep)
	}
	if rep.CacheHits+rep.Collapsed == 0 {
		t.Errorf("identical runs never hit the result cache: %+v", rep)
	}
	if rep.P99Ms < rep.P50Ms || rep.MaxMs < rep.P99Ms {
		t.Errorf("latency percentiles disordered: %+v", rep)
	}
}

// TestRunLoadUngated: without a gate every request lands, nothing
// sheds — the "before" half of the BENCH_serve comparison.
func TestRunLoadUngated(t *testing.T) {
	s := server.New(dashboard.NewPlatform())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rep, err := RunLoad(LoadConfig{
		BaseURL: ts.URL, Dashboards: 1, Workers: 8, Requests: 40, Rows: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed != 0 || rep.ServerErrors != 0 {
		t.Errorf("ungated server shed or failed: %+v", rep)
	}
	if rep.OK != rep.Requests-rep.ClientErrors {
		t.Errorf("unexpected outcome mix: %+v", rep)
	}
}
