package hackathon

import (
	"bytes"
	"sort"
	"testing"

	"shareinsights/internal/flowfile"
)

func TestSimulateDeterministic(t *testing.T) {
	a := Simulate(Config{Seed: 42})
	b := Simulate(Config{Seed: 42})
	if !bytes.Equal(a.TeamsCSV(), b.TeamsCSV()) {
		t.Error("same seed produced different team outcomes")
	}
	if !bytes.Equal(a.EventsCSV(), b.EventsCSV()) {
		t.Error("same seed produced different telemetry")
	}
	c := Simulate(Config{Seed: 43})
	if bytes.Equal(a.TeamsCSV(), c.TeamsCSV()) {
		t.Error("different seeds produced identical outcomes")
	}
}

func TestSimulateShape(t *testing.T) {
	r := Simulate(Config{Seed: 42})
	if len(r.Teams) != 52 {
		t.Fatalf("teams = %d, want 52", len(r.Teams))
	}
	// Team IDs are a permutation of 1..52.
	ids := map[int]bool{}
	for _, tm := range r.Teams {
		if tm.ID < 1 || tm.ID > 52 || ids[tm.ID] {
			t.Fatalf("bad team id %d", tm.ID)
		}
		ids[tm.ID] = true
	}
	// The figure annotations match the paper.
	if got := r.FinalistIDs(); !equalInts(got, PaperFinalists) {
		t.Errorf("finalists = %v, want %v", got, PaperFinalists)
	}
	if got := r.WinnerIDs(); !equalInts(got, PaperWinners) {
		t.Errorf("winners = %v, want %v", got, PaperWinners)
	}
	// Winners are a subset of finalists.
	fin := map[int]bool{}
	for _, id := range r.FinalistIDs() {
		fin[id] = true
	}
	for _, id := range r.WinnerIDs() {
		if !fin[id] {
			t.Errorf("winner %d is not a finalist", id)
		}
	}
}

// TestPracticeMatters asserts the Figure 32 relationship: winners sit in
// the high-practice region.
func TestPracticeMatters(t *testing.T) {
	r := Simulate(Config{Seed: 42})
	var all []int
	winnersMin := 1 << 30
	for _, tm := range r.Teams {
		all = append(all, tm.PracticeRuns)
		if tm.Winner && tm.PracticeRuns < winnersMin {
			winnersMin = tm.PracticeRuns
		}
	}
	sort.Ints(all)
	median := all[len(all)/2]
	if winnersMin <= median {
		t.Errorf("a winner practiced only %d runs (median %d) — practice/success correlation lost", winnersMin, median)
	}
}

// TestForkToGo asserts the Figure 35 shape: every team starts from a
// non-trivial forked flow file and sizes vary across teams.
func TestForkToGo(t *testing.T) {
	r := Simulate(Config{Seed: 42})
	minSize, maxSize := 1<<30, 0
	for _, tm := range r.Teams {
		if tm.ForkSizeBytes < 200 {
			t.Errorf("team %d fork size %d is implausibly small", tm.ID, tm.ForkSizeBytes)
		}
		if tm.ForkSizeBytes < minSize {
			minSize = tm.ForkSizeBytes
		}
		if tm.ForkSizeBytes > maxSize {
			maxSize = tm.ForkSizeBytes
		}
		// The grown flow file must still parse — teams edit through the
		// platform editor, which rejects unparseable saves.
		content, err := tm.Repo.Content("main")
		if err != nil {
			t.Fatalf("team %d repo: %v", tm.ID, err)
		}
		if _, err := flowfile.Parse(tm.Repo.Name, string(content)); err != nil {
			t.Errorf("team %d flow file does not parse: %v", tm.ID, err)
		}
		if len(content) != tm.ForkSizeBytes {
			t.Errorf("team %d fork size %d does not match repo content %d", tm.ID, tm.ForkSizeBytes, len(content))
		}
	}
	if maxSize < 2*minSize {
		t.Errorf("fork sizes do not vary enough: min %d max %d", minSize, maxSize)
	}
}

// TestOperatorPopularity asserts the Figure 31 shape: filters and
// group-bys dominate operator usage.
func TestOperatorPopularity(t *testing.T) {
	r := Simulate(Config{Seed: 42})
	counts := map[string]int{}
	for _, e := range r.Events {
		if e.Operator != "" {
			counts[e.Operator]++
		}
	}
	if counts["filter_by"] <= counts["join"] || counts["groupby"] <= counts["join"] {
		t.Errorf("operator popularity shape wrong: %v", counts)
	}
	if counts["custom"] == 0 {
		t.Error("no custom-task usage despite high-skill teams (observation 2)")
	}
	if counts["custom"] > counts["groupby"]/4 {
		t.Errorf("custom tasks too common: %v", counts)
	}
}

// TestCustomTasksComeFromSkilledTeams checks observation 2: the teams
// writing custom tasks are skilled ones.
func TestCustomTasksComeFromSkilledTeams(t *testing.T) {
	r := Simulate(Config{Seed: 42})
	n := 0
	for _, tm := range r.Teams {
		if tm.WroteCustomTask {
			n++
			if tm.Skill <= 0.75 {
				t.Errorf("team %d wrote a custom task with skill %.2f", tm.ID, tm.Skill)
			}
		}
	}
	if n == 0 {
		t.Error("no team wrote a custom task")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
