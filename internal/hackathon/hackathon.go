// Package hackathon simulates the Race2Insights competition of §5 — the
// paper's evaluation vehicle.
//
// The paper's evaluation artifacts are telemetry dashboards built on the
// platform itself: "The data generated during the competition as well as
// the practice sessions — application logs, flow file growth, error
// messages, execution logs — were used to build dashboards (using the
// platform)" (§5.2.1). This package reproduces exactly that setup with a
// stochastic model of the 52 five-person teams: skill and diligence
// levels, five practice days, dashboard forking through the real VCS,
// six competition hours of runs with operator/widget usage, and the
// two-round judging. The simulator emits its telemetry as ordinary CSV
// payloads so that the Figure 31/32/35 aggregations run as ShareInsights
// pipelines, not ad-hoc Go code.
//
// Calibration targets (what "the shape should hold" means here) come
// from the paper's reported facts: 52 teams; finalists
// {5,9,12,18,33,35,41} and winners {12,18,33} sit in the high-practice
// region of Figure 32; every team starts from a non-trivial forked flow
// file (Figure 35, "Fork to go"); filter/group/map dominate operator
// usage (Figure 31); some winning teams wrote custom tasks
// (observation 2).
package hackathon

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"shareinsights/internal/gen"
	"shareinsights/internal/vcs"
)

// Config parameterizes the simulation. Zero values take the paper's
// numbers.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Teams is the number of teams (paper: 52).
	Teams int
	// TeamSize is members per team (paper: 5).
	TeamSize int
	// PracticeDays before the competition (paper: 5).
	PracticeDays int
	// CompetitionHours of build time (paper: 6).
	CompetitionHours int
	// Finalists picked by the internal committee (paper: 7).
	Finalists int
	// Winners picked by the external committee (paper: 3).
	Winners int
}

func (c *Config) defaults() {
	if c.Teams == 0 {
		c.Teams = 52
	}
	if c.TeamSize == 0 {
		c.TeamSize = 5
	}
	if c.PracticeDays == 0 {
		c.PracticeDays = 5
	}
	if c.CompetitionHours == 0 {
		c.CompetitionHours = 6
	}
	if c.Finalists == 0 {
		c.Finalists = 7
	}
	if c.Winners == 0 {
		c.Winners = 3
	}
}

// PaperFinalists and PaperWinners are the team numbers reported under
// Figure 32. The simulator assigns these labels to its top-ranked teams
// (team numbering is arbitrary), so the regenerated figure carries the
// same annotations as the paper's.
var (
	PaperFinalists = []int{5, 9, 12, 18, 33, 35, 41}
	PaperWinners   = []int{12, 18, 33}
)

// Team is one simulated team.
type Team struct {
	// ID is the team number (1-based, relabeled to match the paper's
	// finalist/winner numbering).
	ID int
	// Skill in [0,1] models prior data-processing experience; the paper
	// notes teams ranged "from zero to little programming background …
	// to significant skills".
	Skill float64
	// Diligence in [0,1] models training engagement.
	Diligence float64
	// PracticeRuns is the number of dashboard executions before the
	// competition (x-axis of Figure 32).
	PracticeRuns int
	// CompetitionRuns is executions during the six hours (y-axis).
	CompetitionRuns int
	// ForkSizeBytes is the flow-file size at competition start
	// (Figure 35).
	ForkSizeBytes int
	// ForkedFrom names the sample dashboard the team forked.
	ForkedFrom string
	// WroteCustomTask marks teams that registered their own task type
	// (observation 2).
	WroteCustomTask bool
	// Score is the judging outcome in [0,100].
	Score float64
	// Finalist and Winner mark judging results.
	Finalist, Winner bool
	// Repo is the team's dashboard repository.
	Repo *vcs.Repo
}

// RunEvent is one telemetry record: a dashboard execution during
// practice or competition, with the operators and widgets its flow file
// used.
type RunEvent struct {
	// Team is the team number.
	Team int
	// Phase is "practice" or "competition".
	Phase string
	// Hour is hours since the phase started.
	Hour float64
	// Operator is one task/operator use in the run (events are emitted
	// one per use so the telemetry pipeline can group directly).
	Operator string
	// Widget is one widget use ("" for operator events).
	Widget string
	// Success records whether the run completed without error.
	Success bool
}

// Result is the complete simulation outcome.
type Result struct {
	// Config echoes the effective configuration.
	Config Config
	// Teams are the simulated teams, by ascending ID.
	Teams []*Team
	// Events is the full telemetry stream.
	Events []RunEvent
}

// operator popularity weights: filters and group-bys dominate (the
// platform-usage shape of Figure 31), maps follow, joins and topn are
// for stronger teams, custom tasks are rare.
var operatorWeights = []struct {
	name   string
	weight float64
	skill  float64 // minimum skill to use it
}{
	{"filter_by", 1.00, 0},
	{"groupby", 0.85, 0},
	{"map:date", 0.55, 0},
	{"map:extract", 0.40, 0.2},
	{"sort", 0.30, 0},
	{"join", 0.35, 0.35},
	{"topn", 0.25, 0.3},
	{"map:extract_words", 0.20, 0.3},
	{"project", 0.18, 0.2},
	{"distinct", 0.15, 0.2},
	{"union", 0.10, 0.4},
	{"custom", 0.08, 0.75},
}

var widgetWeights = []struct {
	name   string
	weight float64
}{
	{"Grid", 1.0},
	{"BarChart", 0.9},
	{"Pie", 0.8},
	{"Slider", 0.7},
	{"List", 0.65},
	{"LineChart", 0.6},
	{"WordCloud", 0.4},
	{"BubbleChart", 0.35},
	{"MapMarker", 0.2},
	{"Streamgraph", 0.15},
	{"TabLayout", 0.25},
	{"HTML", 0.3},
}

// sample dashboards teams fork from, with realistic size spread: the
// quickstart help file, a mid-size sample and the full IPL sample.
var sampleDashboards = []struct {
	name string
	body string
}{
	{"help_quickstart", sampleSmall},
	{"sample_sales", sampleMedium},
	{"sample_ipl", sampleLarge},
}

// Simulate runs the competition model.
func Simulate(cfg Config) *Result {
	cfg.defaults()
	rng := gen.Rand(cfg.Seed)
	res := &Result{Config: cfg}

	// Build the sample repos once; teams fork them.
	clock := simClock()
	samples := make([]*vcs.Repo, len(sampleDashboards))
	for i, s := range sampleDashboards {
		r := vcs.NewRepo(s.name)
		r.SetClock(clock)
		if _, err := r.Commit(vcs.DefaultBranch, "platform", "sample dashboard", []byte(s.body)); err != nil {
			panic(err) // static content; cannot fail
		}
		samples[i] = r
	}

	teams := make([]*Team, cfg.Teams)
	for i := range teams {
		t := &Team{
			ID:        i + 1,
			Skill:     clamp(rng.NormFloat64()*0.22+0.45, 0, 1),
			Diligence: clamp(rng.NormFloat64()*0.25+0.5, 0, 1),
		}
		// Practice: runs accumulate over the training days; diligent
		// teams practice much more ("Does practice matter?").
		t.PracticeRuns = int(t.Diligence*float64(cfg.PracticeDays)*18 + rng.Float64()*12)
		// Fork a sample dashboard and grow it during practice.
		si := rng.Intn(len(samples))
		fork, err := samples[si].Fork(vcs.DefaultBranch, fmt.Sprintf("team%d_dashboard", t.ID), fmt.Sprintf("team%d", t.ID))
		if err != nil {
			panic(err)
		}
		fork.SetClock(clock)
		t.Repo = fork
		t.ForkedFrom = sampleDashboards[si].name
		content, _ := fork.Content(vcs.DefaultBranch)
		grown := growFlowFile(rng, content, t.PracticeRuns/6)
		if _, err := fork.Commit(vcs.DefaultBranch, fmt.Sprintf("team%d", t.ID), "practice edits", grown); err != nil {
			panic(err)
		}
		t.ForkSizeBytes = len(grown)
		// Competition: run volume grows with practice familiarity and a
		// little skill; ~1 run every few minutes for fluent teams.
		t.CompetitionRuns = int(8 + t.Skill*18 + float64(t.PracticeRuns)*0.45 + rng.Float64()*10)
		t.WroteCustomTask = t.Skill > 0.75 && rng.Float64() < 0.7
		// Judging: business value correlates with skill and, strongly,
		// with practice (the paper's correlation); custom tasks earn
		// extra credit with the internal committee.
		t.Score = t.Skill*40 + float64(t.PracticeRuns)*0.45 + rng.Float64()*14
		if t.WroteCustomTask {
			t.Score += 6
		}
		teams[i] = t
	}

	// Judging: rank, mark finalists/winners, then relabel IDs so the
	// figure carries the paper's team numbers.
	ranked := make([]*Team, len(teams))
	copy(ranked, teams)
	sort.Slice(ranked, func(a, b int) bool { return ranked[a].Score > ranked[b].Score })
	for i, t := range ranked {
		t.Finalist = i < cfg.Finalists
		t.Winner = i < cfg.Winners
	}
	relabel(rng, ranked, cfg)
	sort.Slice(teams, func(a, b int) bool { return teams[a].ID < teams[b].ID })
	res.Teams = teams

	// Telemetry: one event per operator/widget use per run.
	for _, t := range teams {
		emitRuns(rng, res, t, "practice", t.PracticeRuns, float64(cfg.PracticeDays)*24)
		emitRuns(rng, res, t, "competition", t.CompetitionRuns, float64(cfg.CompetitionHours))
	}
	return res
}

// relabel assigns the paper's team numbers to the ranked teams (winners
// first, then remaining finalists), distributing the rest of 1..N over
// the other teams deterministically.
func relabel(rng *rand.Rand, ranked []*Team, cfg Config) {
	used := map[int]bool{}
	nonWinnersFinalists := make([]int, 0, len(PaperFinalists)-len(PaperWinners))
	winnerSet := map[int]bool{}
	for _, id := range PaperWinners {
		winnerSet[id] = true
	}
	for _, id := range PaperFinalists {
		if !winnerSet[id] {
			nonWinnersFinalists = append(nonWinnersFinalists, id)
		}
	}
	idx := 0
	for i, t := range ranked {
		switch {
		case i < cfg.Winners && i < len(PaperWinners):
			t.ID = PaperWinners[i]
		case t.Finalist && idx < len(nonWinnersFinalists):
			t.ID = nonWinnersFinalists[idx]
			idx++
		default:
			continue
		}
		used[t.ID] = true
	}
	next := 1
	for _, t := range ranked {
		if t.Finalist {
			continue
		}
		for used[next] {
			next++
		}
		t.ID = next
		used[next] = true
	}
}

func emitRuns(rng *rand.Rand, res *Result, t *Team, phase string, runs int, hours float64) {
	for r := 0; r < runs; r++ {
		hour := rng.Float64() * hours
		success := rng.Float64() < 0.55+t.Skill*0.35
		nOps := 2 + rng.Intn(4)
		for o := 0; o < nOps; o++ {
			op := pickOperator(rng, t)
			if op == "custom" && !t.WroteCustomTask {
				op = "map:extract"
			}
			res.Events = append(res.Events, RunEvent{
				Team: t.ID, Phase: phase, Hour: hour, Operator: op, Success: success,
			})
		}
		nWidgets := 1 + rng.Intn(3)
		for wi := 0; wi < nWidgets; wi++ {
			res.Events = append(res.Events, RunEvent{
				Team: t.ID, Phase: phase, Hour: hour, Widget: pickWidget(rng), Success: success,
			})
		}
	}
}

func pickOperator(rng *rand.Rand, t *Team) string {
	total := 0.0
	for _, o := range operatorWeights {
		if t.Skill >= o.skill {
			total += o.weight
		}
	}
	x := rng.Float64() * total
	for _, o := range operatorWeights {
		if t.Skill < o.skill {
			continue
		}
		x -= o.weight
		if x <= 0 {
			return o.name
		}
	}
	return "filter_by"
}

func pickWidget(rng *rand.Rand) string {
	total := 0.0
	for _, w := range widgetWeights {
		total += w.weight
	}
	x := rng.Float64() * total
	for _, w := range widgetWeights {
		x -= w.weight
		if x <= 0 {
			return w.name
		}
	}
	return "Grid"
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// simClock is a deterministic competition-time clock.
func simClock() func() time.Time {
	t := time.Date(2015, 2, 20, 8, 0, 0, 0, time.UTC)
	return func() time.Time {
		t = t.Add(37 * time.Second)
		return t
	}
}

// ---------------------------------------------------------------------
// Telemetry export: the figures are computed by platform pipelines over
// these CSV payloads.

// EventsCSV renders the telemetry stream: team, phase, hour, operator,
// widget, success. Empty operator/widget slots are written as "-" so the
// downstream filter expressions compare against a concrete value.
func (r *Result) EventsCSV() []byte {
	var buf bytes.Buffer
	dash := func(s string) string {
		if s == "" {
			return "-"
		}
		return s
	}
	for _, e := range r.Events {
		fmt.Fprintf(&buf, "%d,%s,%.2f,%s,%s,%t\n", e.Team, e.Phase, e.Hour, dash(e.Operator), dash(e.Widget), e.Success)
	}
	return buf.Bytes()
}

// TeamsCSV renders per-team outcomes: team, skill, practice_runs,
// competition_runs, fork_size_bytes, forked_from, custom_task, score,
// finalist, winner.
func (r *Result) TeamsCSV() []byte {
	var buf bytes.Buffer
	for _, t := range r.Teams {
		fmt.Fprintf(&buf, "%d,%.3f,%d,%d,%d,%s,%t,%.1f,%t,%t\n",
			t.ID, t.Skill, t.PracticeRuns, t.CompetitionRuns, t.ForkSizeBytes,
			t.ForkedFrom, t.WroteCustomTask, t.Score, t.Finalist, t.Winner)
	}
	return buf.Bytes()
}

// FinalistIDs returns the finalist team numbers, ascending.
func (r *Result) FinalistIDs() []int {
	var out []int
	for _, t := range r.Teams {
		if t.Finalist {
			out = append(out, t.ID)
		}
	}
	sort.Ints(out)
	return out
}

// WinnerIDs returns the winning team numbers, ascending.
func (r *Result) WinnerIDs() []int {
	var out []int
	for _, t := range r.Teams {
		if t.Winner {
			out = append(out, t.ID)
		}
	}
	sort.Ints(out)
	return out
}
