package hackathon

import (
	"fmt"
	"math/rand"
)

// The sample dashboards teams fork from. All three parse and validate;
// forked flow files must remain loadable in the editor.

const sampleSmall = `# quickstart help dashboard
D:
  raw: [category, amount]

D.raw:
  source: data:raw.csv
  format: csv

F:
  +D.by_category: D.raw | T.sum_by_category

T:
  sum_by_category:
    type: groupby
    groupby: [category]
    aggregates:
      - operator: sum
        apply_on: amount
        out_field: total

W:
  chart:
    type: BarChart
    source: D.by_category
    x: category
    y: total

L:
  description: Quickstart
  rows:
    - [span12: W.chart]
`

const sampleMedium = `# sales analysis sample
D:
  orders: [date, region, product, amount]
  regions: [region, manager]

D.orders:
  source: data:orders.csv
  format: csv

D.regions:
  source: data:regions.csv
  format: csv

F:
  +D.by_region: D.orders | T.sum_by_region
  +D.with_manager: (D.by_region, D.regions) | T.join_regions

T:
  sum_by_region:
    type: groupby
    groupby: [region]
    aggregates:
      - operator: sum
        apply_on: amount
        out_field: total
  join_regions:
    type: join
    left: by_region by region
    right: regions by region
    join_condition: left outer
    project:
      by_region_region: region
      by_region_total: total
      regions_manager: manager
  pick_region:
    type: filter_by
    filter_by: [region]
    filter_source: W.region_list
    filter_val: [text]

W:
  region_list:
    type: List
    source: D.by_region
    text: region
  totals:
    type: BarChart
    source: D.with_manager | T.pick_region
    x: region
    y: total
  detail:
    type: Grid
    source: D.with_manager | T.pick_region

L:
  description: Sales Sample
  rows:
    - [span4: W.region_list, span8: W.totals]
    - [span12: W.detail]
`

const sampleLarge = `# ipl tweet analysis sample
D:
  ipl_tweets: [postedTime, body, location]
  players_tweets: [date, player, count]
  teams_tweets: [date, team, count]
  tagcloud_tweets_raw: [date, word, count]
  tagcloud_tweets: [date, word, count]

D.ipl_tweets:
  source: data:tweets.csv
  format: csv

F:
  D.players_tweets: D.ipl_tweets | T.players_pipeline | T.players_count
  D.teams_tweets: D.ipl_tweets | T.teams_pipeline | T.teams_count
  D.tagcloud_tweets_raw: D.ipl_tweets | T.word_date_extraction | T.words_count
  +D.tagcloud_tweets: D.tagcloud_tweets_raw | T.topwords

  D.players_tweets:
    endpoint: true
  D.teams_tweets:
    endpoint: true

T:
  players_pipeline:
    parallel: [T.norm_ipldate, T.extract_players]
  teams_pipeline:
    parallel: [T.norm_ipldate, T.extract_teams]
  word_date_extraction:
    parallel: [T.norm_ipldate, T.extract_words]
  norm_ipldate:
    type: map
    operator: date
    transform: postedTime
    input_format: 'E MMM dd HH:mm:ss Z yyyy'
    output_format: yyyy-MM-dd
    output: date
  extract_players:
    type: map
    operator: extract
    transform: body
    dict: players.txt
    output: player
  extract_teams:
    type: map
    operator: extract
    transform: body
    dict: teams.csv
    output: team
  extract_words:
    type: map
    operator: extract_words
    transform: body
    output: word
  players_count:
    type: groupby
    groupby: [date, player]
  teams_count:
    type: groupby
    groupby: [date, team]
  words_count:
    type: groupby
    groupby: [date, word]
  topwords:
    type: topn
    groupby: [date]
    orderby_column: [count DESC]
    limit: 20
  filter_by_date:
    type: filter_by
    filter_by: [date]
    filter_source: W.duration
  aggregate_by_player:
    type: groupby
    groupby: [player]
    aggregates:
      - operator: sum
        apply_on: count
        out_field: noOfTweets
  aggregate_by_word:
    type: groupby
    groupby: [word]
    aggregates:
      - operator: sum
        apply_on: count
        out_field: total

W:
  duration:
    type: Slider
    source: ['2013-05-02', '2013-05-27']
    static: true
    range: true
    slider_type: date
  players:
    type: WordCloud
    source: D.players_tweets | T.filter_by_date | T.aggregate_by_player
    text: player
    size: noOfTweets
  words:
    type: WordCloud
    source: D.tagcloud_tweets | T.filter_by_date | T.aggregate_by_word
    text: word
    size: total

L:
  description: IPL Sample
  rows:
    - [span12: W.duration]
    - [span6: W.players, span6: W.words]
`

// growth snippets appended as teams iterate; each is a complete section
// fragment that keeps the file parseable.
var growthSnippets = []string{
	"\nT:\n  extra_filter_%d:\n    type: filter_by\n    filter_expression: amount > %d\n",
	"\nT:\n  extra_sort_%d:\n    type: sort\n    orderby_column: [total DESC]\n# tweak %d\n",
	"\nT:\n  extra_top_%d:\n    type: topn\n    groupby: [category]\n    orderby_column: [total DESC]\n    limit: %d\n",
	"\nW:\n  extra_grid_%d:\n    type: Grid\n    source: D.raw\n# rev %d\n",
	"\n# iteration note %d: weights tuned to %d\n",
}

// growFlowFile simulates a team's practice edits: appending tasks,
// widgets and notes across edit rounds, as the paper observed flow files
// growing during practice.
func growFlowFile(rng *rand.Rand, base []byte, rounds int) []byte {
	out := append([]byte(nil), base...)
	for i := 0; i < rounds; i++ {
		snippet := growthSnippets[rng.Intn(len(growthSnippets))]
		// The first verb is the entity-name suffix: the round index keeps
		// names unique so the grown file always re-parses.
		out = append(out, []byte(fmt.Sprintf(snippet, i, rng.Intn(90)+10))...)
	}
	return out
}
