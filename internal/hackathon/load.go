package hackathon

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The load generator grows the Race2Insights simulator into the paper's
// other evaluation axis: not 52 simulated teams editing flow files, but
// thousands of concurrent dashboard sessions hammering one serve
// process. It drives the real HTTP API — PUT dashboards, upload data,
// POST runs under distinct tenants — and snapshots what the admission
// gate did about it: latency percentiles, shed rate, result-cache hit
// rate. cmd/shareinsights exposes it as `shareinsights load` and CI
// records the report as BENCH_serve.json.

// LoadConfig parameterizes one load run. Zero values take defaults
// sized for a laptop-scale smoke: enough concurrency to saturate a
// small gate, small enough to finish in seconds.
type LoadConfig struct {
	// BaseURL is the serve process under test, e.g. http://127.0.0.1:8080.
	BaseURL string
	// Dashboards is how many distinct dashboards the setup phase
	// creates; requests round-robin across them (default 4).
	Dashboards int
	// Workers is the number of concurrent client sessions (default 64).
	Workers int
	// Requests is the total number of run requests issued (default 1000).
	Requests int
	// Tenants is how many distinct X-SI-Tenant identities the workers
	// spread across (default 4).
	Tenants int
	// Rows is the size of each dashboard's uploaded CSV (default 500).
	Rows int
	// Timeout bounds each request (default 30s).
	Timeout time.Duration
	// SkipSetup skips the dashboard-creation and CSV-upload phase: the
	// target already holds the dashboards — e.g. a read-only replica that
	// replicated them from a leader a prior RunLoad set up. The replica
	// rejects the PUTs anyway (307 to the leader), so a read-split
	// comparison must skip them.
	SkipSetup bool
}

func (c *LoadConfig) defaults() {
	if c.Dashboards <= 0 {
		c.Dashboards = 4
	}
	if c.Workers <= 0 {
		c.Workers = 64
	}
	if c.Requests <= 0 {
		c.Requests = 1000
	}
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.Rows <= 0 {
		c.Rows = 500
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
}

// LoadReport is the outcome snapshot, JSON-shaped for BENCH_serve.json.
// The serving contract under saturation (ISSUE: bounded p99, controlled
// 429s, zero 5xx) is checkable directly off these fields.
type LoadReport struct {
	Requests     int     `json:"requests"`
	OK           int     `json:"ok"`
	Shed         int     `json:"shed"`          // 429s: the gate said later
	ClientErrors int     `json:"client_errors"` // other 4xx + transport errors
	ServerErrors int     `json:"server_errors"` // 5xx: must stay zero
	CacheHits    int     `json:"cache_hits"`    // X-SI-Result-Cache: hit
	CacheMisses  int     `json:"cache_misses"`
	Collapsed    int     `json:"collapsed"` // followers of an in-flight run
	P50Ms        float64 `json:"p50_ms"`
	P90Ms        float64 `json:"p90_ms"`
	P99Ms        float64 `json:"p99_ms"`
	MaxMs        float64 `json:"max_ms"`
	ElapsedMs    float64 `json:"elapsed_ms"`
	Throughput   float64 `json:"throughput_rps"`
	ShedRate     float64 `json:"shed_rate"`
	CacheHitRate float64 `json:"cache_hit_rate"` // hits / completed runs
}

// loadFlow is the dashboard every worker hits: a groupby over an
// uploaded CSV — the serverFlow shape, self-contained via the data:
// protocol so it works against any serve process.
const loadFlow = `
D:
  sales: [region, product, amount]

D.sales:
  source: data:sales.csv
  format: csv
  on_error: stale

F:
  +D.by_region: D.sales | T.sum_by_region

T:
  sum_by_region:
    type: groupby
    groupby: [region]
    aggregates:
      - operator: sum
        apply_on: amount
        out_field: total
`

// loadCSV builds a deterministic sales table of n rows.
func loadCSV(n int) string {
	regions := []string{"east", "west", "north", "south"}
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%s,p%d,%d\n", regions[i%len(regions)], i%7, i%100)
	}
	return sb.String()
}

// RunLoad sets up cfg.Dashboards dashboards on the target server, then
// fires cfg.Requests run requests from cfg.Workers concurrent sessions
// spread over cfg.Tenants tenants, and reports what came back.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	cfg.defaults()
	client := &http.Client{Timeout: cfg.Timeout}
	base := strings.TrimRight(cfg.BaseURL, "/")

	put := func(url, body string) error {
		req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(body))
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("PUT %s: status %d", url, resp.StatusCode)
		}
		return nil
	}
	csv := loadCSV(cfg.Rows)
	names := make([]string, cfg.Dashboards)
	for i := range names {
		names[i] = fmt.Sprintf("load_%d", i)
		if cfg.SkipSetup {
			continue
		}
		dashURL := base + "/dashboards/" + names[i]
		if err := put(dashURL, loadFlow); err != nil {
			return nil, fmt.Errorf("load setup: %w", err)
		}
		if err := put(dashURL+"/data/sales.csv", csv); err != nil {
			return nil, fmt.Errorf("load setup: %w", err)
		}
	}

	rep := &LoadReport{Requests: cfg.Requests}
	var (
		mu        sync.Mutex
		latencies = make([]float64, 0, cfg.Requests)
		next      atomic.Int64
		wg        sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				seq := int(next.Add(1)) - 1
				if seq >= cfg.Requests {
					return
				}
				name := names[seq%len(names)]
				req, err := http.NewRequest(http.MethodPost, base+"/dashboards/"+name+"/run", nil)
				if err != nil {
					continue
				}
				req.Header.Set("X-SI-Tenant", fmt.Sprintf("tenant-%d", seq%cfg.Tenants))
				t0 := time.Now()
				resp, err := client.Do(req)
				ms := float64(time.Since(t0).Microseconds()) / 1000
				mu.Lock()
				latencies = append(latencies, ms)
				if err != nil {
					rep.ClientErrors++
					mu.Unlock()
					continue
				}
				switch {
				case resp.StatusCode == http.StatusOK:
					rep.OK++
				case resp.StatusCode == http.StatusTooManyRequests:
					rep.Shed++
				case resp.StatusCode >= 500:
					rep.ServerErrors++
				default:
					rep.ClientErrors++
				}
				switch resp.Header.Get("X-SI-Result-Cache") {
				case "hit":
					rep.CacheHits++
				case "miss":
					rep.CacheMisses++
				case "follow":
					rep.Collapsed++
				}
				mu.Unlock()
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Float64s(latencies)
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	rep.P50Ms, rep.P90Ms, rep.P99Ms = pct(0.50), pct(0.90), pct(0.99)
	if n := len(latencies); n > 0 {
		rep.MaxMs = latencies[n-1]
	}
	rep.ElapsedMs = float64(elapsed.Microseconds()) / 1000
	if secs := elapsed.Seconds(); secs > 0 {
		rep.Throughput = float64(cfg.Requests) / secs
	}
	if cfg.Requests > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(cfg.Requests)
	}
	if done := rep.CacheHits + rep.CacheMisses + rep.Collapsed; done > 0 {
		rep.CacheHitRate = float64(rep.CacheHits+rep.Collapsed) / float64(done)
	}
	return rep, nil
}
