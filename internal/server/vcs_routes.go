package server

import (
	"fmt"
	"io"
	"net/http"

	"shareinsights/internal/vcs"
)

// The collaboration routes expose the §4.5.1 branch-and-merge model:
//
//	GET  /dashboards/{name}/branches                  list branches
//	POST /dashboards/{name}/branches/{branch}         create branch at main
//	GET  /dashboards/{name}/branches/{branch}         fetch branch content
//	PUT  /dashboards/{name}/branches/{branch}         commit to branch
//	POST /dashboards/{name}/merge/{branch}            merge branch into main
//	GET  /dashboards/{name}/diff/{branch}             entry-level diff vs main
//	POST /dashboards/{name}/fork/{newname}            fork into a new dashboard
func (s *Server) vcsRoutes(mux *http.ServeMux) {
	mux.HandleFunc("GET /dashboards/{name}/branches", s.handleBranches)
	mux.HandleFunc("POST /dashboards/{name}/branches/{branch}", s.handleBranchCreate)
	mux.HandleFunc("GET /dashboards/{name}/branches/{branch}", s.handleBranchGet)
	mux.HandleFunc("PUT /dashboards/{name}/branches/{branch}", s.handleBranchPut)
	mux.HandleFunc("POST /dashboards/{name}/merge/{branch}", s.handleMerge)
	mux.HandleFunc("GET /dashboards/{name}/diff/{branch}", s.handleDiff)
	mux.HandleFunc("POST /dashboards/{name}/fork/{newname}", s.handleFork)
}

func (s *Server) repoOr404(w http.ResponseWriter, name string) (*vcs.Repo, bool) {
	s.mu.RLock()
	repo, ok := s.repos[name]
	s.mu.RUnlock()
	if !ok {
		jsonError(w, http.StatusNotFound, fmt.Errorf("no dashboard %q", name))
		return nil, false
	}
	return repo, true
}

func (s *Server) handleBranches(w http.ResponseWriter, r *http.Request) {
	repo, ok := s.repoOr404(w, r.PathValue("name"))
	if !ok {
		return
	}
	jsonOK(w, map[string]any{"branches": repo.Branches()})
}

func (s *Server) handleBranchCreate(w http.ResponseWriter, r *http.Request) {
	repo, ok := s.repoOr404(w, r.PathValue("name"))
	if !ok {
		return
	}
	branch := r.PathValue("branch")
	if err := repo.Branch(vcs.DefaultBranch, branch); err != nil {
		jsonError(w, http.StatusConflict, err)
		return
	}
	jsonOK(w, map[string]string{"branch": branch})
}

func (s *Server) handleBranchGet(w http.ResponseWriter, r *http.Request) {
	repo, ok := s.repoOr404(w, r.PathValue("name"))
	if !ok {
		return
	}
	content, err := repo.Content(r.PathValue("branch"))
	if err != nil {
		jsonError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(content)
}

func (s *Server) handleBranchPut(w http.ResponseWriter, r *http.Request) {
	repo, ok := s.repoOr404(w, r.PathValue("name"))
	if !ok {
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.checkParses(r.PathValue("name"), body); err != nil {
		jsonError(w, http.StatusUnprocessableEntity, err)
		return
	}
	branch := r.PathValue("branch")
	hash, err := repo.Commit(branch, s.author(r), "save "+branch, body)
	if err != nil {
		jsonError(w, http.StatusInternalServerError, err)
		return
	}
	jsonOK(w, map[string]string{"branch": branch, "commit": hash})
}

func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	repo, ok := s.repoOr404(w, r.PathValue("name"))
	if !ok {
		return
	}
	hash, err := repo.Merge(vcs.DefaultBranch, r.PathValue("branch"), s.author(r))
	if err != nil {
		if ce, isConflict := err.(*vcs.ConflictError); isConflict {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusConflict)
			fmt.Fprintf(w, `{"error":"merge conflicts","conflicts":%s}`, jsonStrings(ce.Entries))
			return
		}
		jsonError(w, http.StatusConflict, err)
		return
	}
	jsonOK(w, map[string]string{"merged": r.PathValue("branch"), "commit": hash})
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	repo, ok := s.repoOr404(w, r.PathValue("name"))
	if !ok {
		return
	}
	mainContent, err := repo.Content(vcs.DefaultBranch)
	if err != nil {
		jsonError(w, http.StatusInternalServerError, err)
		return
	}
	branchContent, err := repo.Content(r.PathValue("branch"))
	if err != nil {
		jsonError(w, http.StatusNotFound, err)
		return
	}
	diff, err := vcs.Diff(mainContent, branchContent)
	if err != nil {
		jsonError(w, http.StatusUnprocessableEntity, err)
		return
	}
	jsonOK(w, map[string]any{"diff": diff})
}

// handleFork copies a dashboard's main branch into a new dashboard —
// the "fork to go" observation 3 workflow.
func (s *Server) handleFork(w http.ResponseWriter, r *http.Request) {
	repo, ok := s.repoOr404(w, r.PathValue("name"))
	if !ok {
		return
	}
	newName := r.PathValue("newname")
	s.mu.Lock()
	if _, exists := s.repos[newName]; exists {
		s.mu.Unlock()
		jsonError(w, http.StatusConflict, fmt.Errorf("dashboard %q already exists", newName))
		return
	}
	fork, err := repo.Fork(vcs.DefaultBranch, newName, s.author(r))
	if err != nil {
		s.mu.Unlock()
		jsonError(w, http.StatusInternalServerError, err)
		return
	}
	if s.store != nil {
		// The fork's initial commit predates its journal; adoption
		// records the full state and journals everything after.
		if err := s.store.AdoptRepo(fork); err != nil {
			s.mu.Unlock()
			jsonError(w, http.StatusInternalServerError, err)
			return
		}
	}
	s.repos[newName] = fork
	// The fork starts with a copy of the parent's uploaded data files so
	// it runs out of the box.
	if parentData, ok := s.data[r.PathValue("name")]; ok {
		cp := make(map[string][]byte, len(parentData))
		for k, v := range parentData {
			cp[k] = v
		}
		s.data[newName] = cp
	}
	s.mu.Unlock()
	jsonOK(w, map[string]string{"fork": newName})
}

func jsonStrings(ss []string) string {
	out := "["
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%q", s)
	}
	return out + "]"
}

// Discovery routes (§6: "discovery of data-sets to enrich an existing
// data pipeline"):
//
//	GET /shared/search?q=<query>            search published objects
//	GET /dashboards/{name}/suggest          enrichment suggestions
func (s *Server) discoveryRoutes(mux *http.ServeMux) {
	mux.HandleFunc("GET /shared/search", s.handleSharedSearch)
	mux.HandleFunc("GET /dashboards/{name}/suggest", s.handleSuggest)
}

func (s *Server) handleSharedSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	type hit struct {
		Name      string   `json:"name"`
		Dashboard string   `json:"dashboard"`
		Columns   []string `json:"columns"`
	}
	var out []hit
	for _, obj := range s.platform.Catalog.Search(q) {
		out = append(out, hit{Name: obj.Name, Dashboard: obj.Dashboard, Columns: obj.Schema.Names()})
	}
	jsonOK(w, map[string]any{"results": out})
}

// handleSuggest proposes published objects that share columns with the
// dashboard's data objects — candidate joins to enrich its pipeline.
func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	d, err := s.liveDashboard(r.PathValue("name"))
	if err != nil {
		jsonError(w, http.StatusNotFound, err)
		return
	}
	type suggestion struct {
		For           string   `json:"for"`
		Object        string   `json:"object"`
		Dashboard     string   `json:"dashboard"`
		SharedColumns []string `json:"shared_columns"`
	}
	var out []suggestion
	for _, name := range d.Graph.Order {
		n := d.Graph.Nodes[name]
		if n.Schema == nil {
			continue
		}
		for _, sug := range s.platform.Catalog.Suggest(n.Schema) {
			// Objects this dashboard already reads or publishes are not
			// news to its author.
			if sug.Object.Dashboard == d.Name {
				continue
			}
			out = append(out, suggestion{
				For:           "D." + name,
				Object:        sug.Object.Name,
				Dashboard:     sug.Object.Dashboard,
				SharedColumns: sug.SharedColumns,
			})
		}
	}
	jsonOK(w, map[string]any{"suggestions": out})
}
