// Package server exposes the ShareInsights development and data APIs
// over HTTP — the browser-only development interface of §4.3 and the
// data API of §4.4.
//
//	PUT  /dashboards/{name}                    create/update the flow file (a VCS commit)
//	GET  /dashboards/{name}                    fetch the flow file
//	GET  /dashboards                           list dashboards
//	POST /dashboards/{name}/run                compile and run
//	GET  /dashboards/{name}/health             last run's health: status,
//	                                           degraded sources, retries
//	GET  /dashboards/{name}/html               rendered page (?device=mobile
//	                                           for the constrained rendering;
//	                                           an uploaded style.css applies)
//	GET  /dashboards/{name}/explore            data explorer (headless tabular view)
//	GET  /dashboards/{name}/ds                 endpoint data listing        (Figure 27)
//	GET  /dashboards/{name}/ds/{ds}            endpoint data rows           (Figure 28)
//	GET  /dashboards/{name}/ds/{ds}/groupby/{col}/{agg}/{vcol}  ad-hoc query (Figure 30)
//	POST /dashboards/{name}/select/{widget}    record a widget selection
//	GET  /dashboards/{name}/log                commit history
//	PUT  /dashboards/{name}/data/{file}        upload a data/dictionary file (§4.3.2)
//	GET  /dashboards/{name}/profile            §6 data-profile meta-dashboard
//	GET  /dashboards/{name}/lint               static analysis findings (docs/LINTING.md)
//	GET  /dashboards/{name}/check              findings plus inferred facts: column
//	                                           types, constants, intervals, row
//	                                           bounds, liveness (docs/TYPES.md)
//	GET  /dashboards/{name}/stats              last run's execution stats (?full=1
//	                                           for every stage timing, not just top-5)
//	GET  /dashboards/{name}/trace              last run's span tree (?format=chrome
//	                                           for trace-event JSON)
//	GET  /dashboards/{name}/history            run-history flight recorder: recent
//	                                           runs plus per-stage profiles
//	                                           (?limit=N, ?baseline=1 for the last
//	                                           run's deltas against the EWMA
//	                                           baseline; docs/OBSERVABILITY.md)
//	GET  /dashboards/{name}/explain            the cost-based plan the next run
//	                                           would execute: pushdowns, filter
//	                                           order, path choices and the
//	                                           evidence behind each decision
//	                                           (docs/OPTIMIZER.md)
//	GET  /dashboards/{name}/ops                self-hosted ops meta-dashboard
//	GET  /metrics                              Prometheus text exposition
//	GET  /shared                               the published-objects catalog
//
// Every route is instrumented (request counts, latency histograms,
// in-flight gauge) against the platform's metrics registry; see
// docs/OBSERVABILITY.md.
//
// Type-checking and execution errors surface as JSON {error: ...} bodies.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"shareinsights/internal/admission"
	"shareinsights/internal/analyze"
	"shareinsights/internal/analyze/flowcheck"
	"shareinsights/internal/connector"
	"shareinsights/internal/dashboard"
	"shareinsights/internal/diagnose"
	"shareinsights/internal/flowfile"
	"shareinsights/internal/obs"
	"shareinsights/internal/obs/history"
	"shareinsights/internal/obs/ops"
	"shareinsights/internal/profile"
	"shareinsights/internal/replica"
	"shareinsights/internal/store/persist"
	"shareinsights/internal/table"
	"shareinsights/internal/vcs"
)

// Server hosts dashboards on one platform instance.
type Server struct {
	platform *dashboard.Platform
	httpm    *obs.HTTPMetrics
	store    *persist.Store // nil when running in-memory

	// follower makes this server a read-only replica serving state pulled
	// from a leader (docs/REPLICATION.md); nil on leaders.
	follower       *replica.Follower
	followerMaxLag time.Duration

	// gate and resultCache implement front-door admission control and
	// run-result sharing (docs/SERVING.md); both nil unless enabled via
	// WithAdmission / WithResultCache.
	gate        *admission.Gate
	resultCache *admission.ResultCache

	mu        sync.RWMutex
	repos     map[string]*vcs.Repo
	live      map[string]*dashboard.Dashboard
	traces    map[string]*obs.Trace        // dashboard -> last run's trace
	data      map[string]map[string][]byte // dashboard -> uploaded files
	uploadRev map[string]int               // dashboard -> upload revision (result-cache keys)
	author    func(*http.Request) string
}

// Option configures a Server at construction.
type Option func(*Server)

// WithStore attaches a durable state store (docs/DURABILITY.md): the
// recovered dashboard repositories become the server's, the platform's
// catalog and last-good cache are seeded from recovery, and every later
// mutation is journaled write-ahead. Without this option all state is
// in-memory, as before.
func WithStore(st *persist.Store) Option {
	return func(s *Server) { s.store = st }
}

// New builds a server around a platform. The incremental-execution
// cache is enabled if the platform has none: the editor's save-and-rerun
// loop is exactly the workload it exists for. Likewise a metrics
// registry is attached if the platform has none, so GET /metrics always
// serves engine and HTTP telemetry.
func New(p *dashboard.Platform, opts ...Option) *Server {
	if p.Cache == nil {
		p.Cache = dashboard.NewResultCache()
	}
	if p.Metrics == nil {
		p.Metrics = obs.NewRegistry()
	}
	if p.LastGood == nil {
		p.LastGood = dashboard.NewSourceCache()
	}
	// Connector retries and breaker transitions surface in GET /metrics.
	p.Connectors.SetMetrics(p.Metrics)
	p.Catalog.SetMetrics(p.Metrics)
	s := &Server{
		platform:  p,
		httpm:     obs.NewHTTPMetrics(p.Metrics),
		repos:     map[string]*vcs.Repo{},
		live:      map[string]*dashboard.Dashboard{},
		traces:    map[string]*obs.Trace{},
		data:      map[string]map[string][]byte{},
		uploadRev: map[string]int{},
		author: func(r *http.Request) string {
			if u := r.Header.Get("X-User"); u != "" {
				return u
			}
			return "anonymous"
		},
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.follower != nil {
		if s.store != nil {
			panic("server: WithStore and WithFollower are mutually exclusive")
		}
		// Serve the replicated state directly: the follower's components
		// are internally locked, so the pull loop can keep applying frames
		// while handlers read.
		comps := s.follower.Components()
		p.Catalog = comps.Catalog()
		p.Catalog.SetMetrics(p.Metrics)
		p.LastGood = comps.Cache()
		p.History = comps.History()
		s.repos = comps.Repos()
		comps.OnRepos(func(repos map[string]*vcs.Repo) {
			s.mu.Lock()
			s.repos = repos
			s.mu.Unlock()
		})
	}
	// Every server records run history; a durable store replaces this
	// memory-only recorder with its journaled one in WirePlatform.
	if p.History == nil {
		p.History = history.NewRecorder(history.Options{Metrics: p.Metrics})
	}
	if s.store != nil {
		// Seed the platform with recovered state and start journaling.
		// WirePlatform only fails on recovered state that cannot be
		// re-applied, which recovery itself would already have rejected.
		if err := s.store.WirePlatform(p); err != nil {
			panic(fmt.Sprintf("server: wire recovered state: %v", err))
		}
		s.repos = s.store.Repos()
	}
	return s
}

// newRepoLocked creates a repository for a dashboard and, when a store
// is attached, adopts it into the journal before first use. Callers
// hold s.mu.
func (s *Server) newRepoLocked(name string) (*vcs.Repo, error) {
	repo := vcs.NewRepo(name)
	if s.store != nil {
		if err := s.store.AdoptRepo(repo); err != nil {
			return nil, err
		}
	}
	s.repos[name] = repo
	return repo, nil
}

// Handler returns the HTTP handler with all routes installed, each
// wrapped in the metrics middleware under its route pattern.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.httpm.Instrument(pattern, h))
	}
	handle("GET /dashboards", s.handleList)
	handle("PUT /dashboards/{name}", s.handlePut)
	handle("GET /dashboards/{name}", s.handleGet)
	// Expensive routes — the ones that execute flows or pipelines — go
	// through the admission gate (a no-op middleware until WithAdmission
	// installs one). Cheap metadata reads and mutations stay ungated so
	// saves and uploads land even under shedding.
	handle("POST /dashboards/{name}/run", s.admit(s.handleRun))
	handle("GET /dashboards/{name}/html", s.admit(s.handleHTML))
	handle("GET /dashboards/{name}/explore", s.admit(s.handleExplore))
	handle("GET /dashboards/{name}/ds", s.handleDatasets)
	handle("GET /dashboards/{name}/ds/{ds}", s.handleDataset)
	handle("GET /dashboards/{name}/ds/{ds}/groupby/{col}/{agg}/{vcol}", s.admit(s.handleAdhoc))
	handle("POST /dashboards/{name}/select/{widget}", s.admit(s.handleSelect))
	handle("GET /dashboards/{name}/log", s.handleLog)
	handle("PUT /dashboards/{name}/data/{file}", s.handleUpload)
	handle("GET /dashboards/{name}/profile", s.handleProfile)
	handle("GET /dashboards/{name}/lint", s.handleLint)
	handle("GET /dashboards/{name}/check", s.handleCheck)
	handle("GET /dashboards/{name}/health", s.handleHealth)
	handle("GET /dashboards/{name}/stats", s.handleStats)
	handle("GET /dashboards/{name}/trace", s.handleTrace)
	handle("GET /dashboards/{name}/history", s.handleHistory)
	handle("GET /dashboards/{name}/explain", s.handleExplain)
	handle("GET /dashboards/{name}/ops", s.handleOps)
	handle("GET /shared", s.handleShared)
	handle("GET /dashboards/{name}/edit", s.handleEditor)
	handle("GET /health", s.handleServerHealth)
	mux.Handle("GET /metrics", s.platform.Metrics.Handler())
	s.vcsRoutes(mux)
	s.discoveryRoutes(mux)
	if s.store != nil {
		s.replicaRoutes(handle)
	}
	if s.follower != nil {
		return s.followerGuard(mux)
	}
	return mux
}

func jsonError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func jsonOK(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.repos))
	for n := range s.repos {
		names = append(names, n)
	}
	sort.Strings(names)
	jsonOK(w, map[string]any{"dashboards": names})
}

// checkParses rejects content that does not parse and validate — the
// repository only ever holds loadable pipelines.
func (s *Server) checkParses(name string, body []byte) error {
	f, err := flowfile.Parse(name, string(body))
	if err != nil {
		return err
	}
	return f.Validate(true)
}

// handlePut creates or updates a dashboard's flow file. The body must
// parse; parse failures reject the commit so the repository only ever
// holds loadable pipelines.
func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	f, err := flowfile.Parse(name, string(body))
	if err != nil {
		jsonError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if err := f.Validate(true); err != nil {
		jsonError(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.mu.Lock()
	repo, ok := s.repos[name]
	if !ok {
		if repo, err = s.newRepoLocked(name); err != nil {
			s.mu.Unlock()
			jsonError(w, http.StatusInternalServerError, err)
			return
		}
	}
	hash, err := repo.Commit(vcs.DefaultBranch, s.author(r), "save "+name, body)
	s.mu.Unlock()
	if err != nil {
		jsonError(w, http.StatusInternalServerError, err)
		return
	}
	s.invalidateResults(name)
	resp := map[string]any{"dashboard": name, "commit": hash}
	// The save already passed validation, so lint findings here are
	// advisory: the commit stands either way, the editor just shows them.
	if report, _ := s.lintFile(f); len(report.Findings) > 0 {
		resp["lint"] = report.Findings
	}
	jsonOK(w, resp)
}

// lintFile runs the static analyzer against the platform's registries
// and shared catalog, returning the report and the inferred per-object
// facts.
func (s *Server) lintFile(f *flowfile.File) (*analyze.Report, *flowcheck.Facts) {
	opts := analyze.Options{Tasks: s.platform.Tasks, Connectors: s.platform.Connectors}
	if s.platform.Catalog != nil {
		opts.Shared = s.platform.Catalog.ResolveSchema
		opts.Published = func() []analyze.PublishedObject {
			var out []analyze.PublishedObject
			for _, obj := range s.platform.Catalog.Objects() {
				out = append(out, analyze.PublishedObject{Name: obj.Name, Dashboard: obj.Dashboard})
			}
			return out
		}
	}
	return analyze.LintWithFacts(f, opts)
}

// lintTarget loads and parses the latest committed flow file of a named
// dashboard for the analysis endpoints; on failure it writes the error
// response and returns nil.
func (s *Server) lintTarget(w http.ResponseWriter, name string) *flowfile.File {
	s.mu.RLock()
	repo, ok := s.repos[name]
	s.mu.RUnlock()
	if !ok {
		jsonError(w, http.StatusNotFound, fmt.Errorf("no dashboard %q", name))
		return nil
	}
	content, err := repo.Content(vcs.DefaultBranch)
	if err != nil {
		jsonError(w, http.StatusInternalServerError, err)
		return nil
	}
	f, err := flowfile.Parse(name, string(content))
	if err != nil {
		jsonError(w, http.StatusUnprocessableEntity, err)
		return nil
	}
	return f
}

// handleLint re-analyzes the latest committed flow file on demand —
// the editor's "check my dashboard" button, no execution involved.
func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	f := s.lintTarget(w, name)
	if f == nil {
		return
	}
	report, _ := s.lintFile(f)
	errs, warns, infos := report.Counts()
	jsonOK(w, map[string]any{
		"dashboard": name,
		"findings":  report.Findings,
		"errors":    errs,
		"warnings":  warns,
		"infos":     infos,
	})
}

// handleCheck is handleLint plus the typed summary: the flowcheck facts
// (per-object column types, constants, value intervals, cardinality
// bounds, filter verdicts and liveness) the analysis inferred. The
// structure is the stable flowcheck.Facts contract (docs/TYPES.md).
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	f := s.lintTarget(w, name)
	if f == nil {
		return
	}
	report, facts := s.lintFile(f)
	jsonOK(w, map[string]any{
		"dashboard": name,
		"findings":  report.Findings,
		"facts":     facts,
	})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.RLock()
	repo, ok := s.repos[name]
	s.mu.RUnlock()
	if !ok {
		jsonError(w, http.StatusNotFound, fmt.Errorf("no dashboard %q", name))
		return
	}
	content, err := repo.Content(vcs.DefaultBranch)
	if err != nil {
		jsonError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(content)
}

// stageJSON is one stage timing in API responses.
type stageJSON struct {
	Output      string `json:"output"`
	Stage       string `json:"stage"`
	RowsIn      int    `json:"rows_in"`
	Rows        int    `json:"rows"`
	DurationUS  int64  `json:"duration_us"`
	QueueWaitUS int64  `json:"queue_wait_us"`
	// Path is the execution path that ran the stage: "row" or
	// "columnar" (docs/ENGINE.md).
	Path string `json:"path"`
	// Plan summarizes the optimizer rules applied to the stage's node,
	// "as-written" when none ran (docs/OPTIMIZER.md); empty when the
	// run executed without a cost-based plan.
	Plan string `json:"plan,omitempty"`
}

func stagesJSON(timings []dashboard.StageTiming) []stageJSON {
	out := make([]stageJSON, 0, len(timings))
	for _, st := range timings {
		out = append(out, stageJSON{
			Output: st.Output, Stage: st.Stage, RowsIn: st.RowsIn, Rows: st.Rows,
			DurationUS: st.Duration.Microseconds(), QueueWaitUS: st.QueueWait.Microseconds(),
			Path: st.Path, Plan: st.Plan,
		})
	}
	return out
}

// failureJSON is one failed node pipeline in API responses.
type failureJSON struct {
	Output string `json:"output"`
	Err    string `json:"error"`
	Panic  bool   `json:"panic,omitempty"`
	Stack  string `json:"stack,omitempty"`
}

// statsBody assembles a run's execution statistics. full includes every
// stage timing; otherwise only the five slowest. A failed run may have
// no result at all — only health survives then.
func statsBody(name string, d *dashboard.Dashboard, full bool) map[string]any {
	h := d.Health()
	body := map[string]any{
		"dashboard": name,
		"status":    h.Status,
		"retries":   h.Retries,
	}
	res := d.Result()
	if res == nil {
		return body
	}
	st := res.Stats
	body["endpoints"] = d.EndpointNames()
	body["tasks_run"] = st.TasksRun
	body["transferred_bytes"] = d.TransferredBytes
	body["skipped_sinks"] = st.SkippedSinks
	body["cache_hits"] = st.CacheHits
	body["slowest_stages"] = stagesJSON(st.Slowest(5))
	if len(st.Failures) > 0 {
		fs := make([]failureJSON, 0, len(st.Failures))
		for _, f := range st.Failures {
			fs = append(fs, failureJSON{Output: f.Output, Err: f.Err, Panic: f.Panic, Stack: f.Stack})
		}
		body["failures"] = fs
	}
	if full {
		body["timings"] = stagesJSON(st.Timings)
	}
	return body
}

// handleRun compiles the latest committed flow file and executes it.
// The request's context rides along: a client disconnect or deadline
// cancels the run.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d, outcome, err := s.runDashboardCached(r.Context(), name)
	if outcome != "" {
		w.Header().Set(ResultCacheHeader, outcome)
	}
	if err != nil {
		jsonError(w, http.StatusUnprocessableEntity, err)
		return
	}
	jsonOK(w, statsBody(name, d, r.URL.Query().Get("full") == "1"))
}

// handleServerHealth is the process-level health surface. With a
// durable store attached it reports each component's recovery outcome
// (records replayed, torn tail dropped, snapshot age) and any WAL
// damage; "degraded" means a component is fail-stop on appends until
// the next snapshot repairs it.
func (s *Server) handleServerHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	dashboards := len(s.repos)
	s.mu.RUnlock()
	body := map[string]any{"status": "ok", "dashboards": dashboards}
	if s.follower != nil {
		body["durability"] = "replica"
		st := s.follower.Status()
		body["replication"] = st
		if s.follower.Degraded() || (s.followerMaxLag > 0 && s.follower.Lag() > s.followerMaxLag) {
			body["status"] = "degraded"
		}
		jsonOK(w, body)
		return
	}
	if s.store == nil {
		body["durability"] = "in-memory"
		jsonOK(w, body)
		return
	}
	body["durability"] = "durable"
	statuses := s.store.Status()
	for _, cs := range statuses {
		if cs.Damaged != "" {
			body["status"] = "degraded"
		}
	}
	body["store"] = statuses
	jsonOK(w, body)
}

// handleHealth reports the last run attempt's health: overall status
// (ok / degraded / error / never-run), per-source outcomes and retry
// totals. Unlike /stats it also covers runs that failed outright.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d, err := s.liveDashboard(name)
	if err != nil {
		jsonError(w, http.StatusNotFound, err)
		return
	}
	h := d.Health()
	jsonOK(w, map[string]any{
		"dashboard": name,
		"status":    h.Status,
		"error":     h.Error,
		"retries":   h.Retries,
		"sources":   h.Sources,
	})
}

// handleStats reports the last run's execution statistics without
// re-running: the §6 bottleneck view. ?full=1 includes every stage
// timing, not just the top five.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d, err := s.liveDashboard(name)
	if err != nil {
		jsonError(w, http.StatusNotFound, err)
		return
	}
	jsonOK(w, statsBody(name, d, r.URL.Query().Get("full") == "1"))
}

// handleExplain reports the cost-based plan the next run would execute:
// source pushdowns, filter order, fusion and row/columnar path choices,
// with the evidence (history, facts or heuristic) behind each decision
// (docs/OPTIMIZER.md). A dashboard that has run explains its live
// compilation, so observed selectivities inform the plan; otherwise the
// latest committed flow file is compiled — never run — on demand.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d, err := s.liveDashboard(name)
	if err != nil {
		f := s.lintTarget(w, name)
		if f == nil {
			return
		}
		s.mu.RLock()
		uploads := s.data[name]
		s.mu.RUnlock()
		if d, err = s.platform.Compile(f, uploads); err != nil {
			jsonError(w, http.StatusUnprocessableEntity, diagnosed(f, err))
			return
		}
	}
	plan := d.Explain()
	if plan == nil {
		jsonError(w, http.StatusConflict, fmt.Errorf("optimizer disabled on this platform"))
		return
	}
	jsonOK(w, map[string]any{"dashboard": name, "plan": plan, "text": plan.Format()})
}

func (s *Server) runDashboard(ctx context.Context, name string) (*dashboard.Dashboard, error) {
	d, _, err := s.runDashboardCached(ctx, name)
	return d, err
}

// executeDashboard compiles and runs one parsed flow file — the
// uncached execution path runDashboardCached leads into.
func (s *Server) executeDashboard(ctx context.Context, name string, f *flowfile.File, uploads map[string][]byte) (*dashboard.Dashboard, error) {
	d, err := s.platform.Compile(f, uploads)
	if err != nil {
		return nil, diagnosed(f, err)
	}
	// Every server-side run records a span tree, served by GET
	// /dashboards/{name}/trace until the next run replaces it.
	trace := obs.NewTrace(name)
	d.SetTracer(trace)
	rerr := d.RunContext(ctx)
	// The dashboard is published even when the run failed: /health,
	// /stats and /trace must be able to explain what went wrong (stage
	// failures, panic stacks, degraded sources).
	s.mu.Lock()
	s.live[name] = d
	s.traces[name] = trace
	s.mu.Unlock()
	if rerr != nil {
		return nil, diagnosed(f, rerr)
	}
	return d, nil
}

// diagnosed rewrites a compile/run error into flow-file diagnostics so
// the editor never shows raw engine messages (§6).
func diagnosed(f *flowfile.File, err error) error {
	ds := diagnose.Diagnose(f, err)
	if len(ds) == 0 {
		return err
	}
	lines := make([]string, len(ds))
	for i, d := range ds {
		lines[i] = d.String()
	}
	return fmt.Errorf("%s", strings.Join(lines, "; "))
}

func (s *Server) liveDashboard(name string) (*dashboard.Dashboard, error) {
	s.mu.RLock()
	d, ok := s.live[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dashboard %q has not been run", name)
	}
	return d, nil
}

func (s *Server) handleHTML(w http.ResponseWriter, r *http.Request) {
	d, err := s.liveDashboard(r.PathValue("name"))
	if err != nil {
		jsonError(w, http.StatusNotFound, err)
		return
	}
	dev := dashboard.Desktop
	if r.URL.Query().Get("device") == "mobile" {
		dev = dashboard.Mobile
	}
	if css, ok := s.data[r.PathValue("name")]["style.css"]; ok {
		d.SetStylesheet(string(css))
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := d.RenderHTMLFor(dev, w); err != nil {
		jsonError(w, http.StatusInternalServerError, err)
	}
}

// handleExplore is the data explorer: every endpoint data object in
// tabular text form (Figure 29's headless mode).
func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	d, err := s.liveDashboard(r.PathValue("name"))
	if err != nil {
		jsonError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, ds := range d.EndpointNames() {
		t, ok := d.Endpoint(ds)
		if !ok {
			continue
		}
		fmt.Fprintf(w, "== %s (%d rows) ==\n%s\n", ds, t.Len(), t.Format(50))
	}
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	d, err := s.liveDashboard(r.PathValue("name"))
	if err != nil {
		jsonError(w, http.StatusNotFound, err)
		return
	}
	type dsInfo struct {
		Name    string   `json:"name"`
		Columns []string `json:"columns"`
		Rows    int      `json:"rows"`
	}
	var out []dsInfo
	for _, ds := range d.EndpointNames() {
		if t, ok := d.Endpoint(ds); ok {
			out = append(out, dsInfo{Name: ds, Columns: t.Schema().Names(), Rows: t.Len()})
		}
	}
	jsonOK(w, map[string]any{"datasets": out})
}

func (s *Server) handleDataset(w http.ResponseWriter, r *http.Request) {
	d, err := s.liveDashboard(r.PathValue("name"))
	if err != nil {
		jsonError(w, http.StatusNotFound, err)
		return
	}
	t, ok := d.Endpoint(r.PathValue("ds"))
	if !ok {
		jsonError(w, http.StatusNotFound, fmt.Errorf("no endpoint data object %q", r.PathValue("ds")))
		return
	}
	writeTable(w, r, t)
}

func writeTable(w http.ResponseWriter, r *http.Request, t *table.Table) {
	switch r.URL.Query().Get("format") {
	case "csv":
		b, err := connector.EncodeCSV(t)
		if err != nil {
			jsonError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "text/csv")
		w.Write(b)
	case "sbin":
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(connector.EncodeSBIN(t))
	default:
		b, err := connector.EncodeJSON(t)
		if err != nil {
			jsonError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	}
}

func (s *Server) handleAdhoc(w http.ResponseWriter, r *http.Request) {
	d, err := s.liveDashboard(r.PathValue("name"))
	if err != nil {
		jsonError(w, http.StatusNotFound, err)
		return
	}
	out, err := d.AdhocQuery(r.PathValue("ds"), r.PathValue("col"), r.PathValue("agg"), r.PathValue("vcol"))
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	writeTable(w, r, out)
}

// handleSelect records a widget selection. Body: {"values": [...]} or
// {"range": ["lo", "hi"]}.
func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	d, err := s.liveDashboard(r.PathValue("name"))
	if err != nil {
		jsonError(w, http.StatusNotFound, err)
		return
	}
	var body struct {
		Values []string `json:"values"`
		Range  []string `json:"range"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	widgetName := r.PathValue("widget")
	if len(body.Range) == 2 {
		err = d.SelectRange(widgetName, body.Range[0], body.Range[1])
	} else {
		err = d.Select(widgetName, body.Values...)
	}
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	jsonOK(w, map[string]any{"widget": widgetName, "dependents": d.Dependents(widgetName)})
}

func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	repo, ok := s.repos[r.PathValue("name")]
	s.mu.RUnlock()
	if !ok {
		jsonError(w, http.StatusNotFound, fmt.Errorf("no dashboard %q", r.PathValue("name")))
		return
	}
	log, err := repo.Log(vcs.DefaultBranch)
	if err != nil {
		jsonError(w, http.StatusInternalServerError, err)
		return
	}
	lines := make([]string, len(log))
	for i, c := range log {
		lines[i] = c.String()
	}
	jsonOK(w, map[string]any{"log": lines})
}

// handleUpload stores a per-dashboard auxiliary file (data payloads and
// task dictionaries) — the HTTP equivalent of the paper's SFTP upload
// interface (§4.3.2).
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	file := r.PathValue("file")
	if strings.Contains(file, "/") || strings.Contains(file, "..") {
		jsonError(w, http.StatusBadRequest, fmt.Errorf("bad file name %q", file))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	if s.data[name] == nil {
		s.data[name] = map[string][]byte{}
	}
	s.data[name][file] = body
	s.uploadRev[name]++
	s.mu.Unlock()
	s.invalidateResults(name)
	jsonOK(w, map[string]any{"dashboard": name, "file": file, "bytes": len(body)})
}

// handleProfile serves the §6 meta-dashboard: per-column statistics of
// every materialized data object, as a generated platform dashboard.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	d, err := s.liveDashboard(r.PathValue("name"))
	if err != nil {
		jsonError(w, http.StatusNotFound, err)
		return
	}
	meta, err := profile.BuildMeta(d)
	if err != nil {
		jsonError(w, http.StatusUnprocessableEntity, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, name := range meta.EndpointNames() {
		t, ok := meta.Endpoint(name)
		if !ok {
			continue
		}
		fmt.Fprintf(w, "== %s ==\n%s\n", name, t.Format(0))
	}
}

// handleTrace serves the last run's execution trace: a human span tree
// by default, Chrome trace-event JSON with ?format=chrome (loadable in
// chrome://tracing and Perfetto).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.RLock()
	trace, ok := s.traces[name]
	s.mu.RUnlock()
	if !ok {
		jsonError(w, http.StatusNotFound, fmt.Errorf("dashboard %q has not been run", name))
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		if err := trace.WriteChrome(w); err != nil {
			jsonError(w, http.StatusInternalServerError, err)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	trace.Format(w)
}

// handleHistory serves the run-history flight recorder: the dashboard's
// recent runs (newest first, ?limit=N to truncate) and the per-stage
// profiles accumulated for its current flow-file revision. ?baseline=1
// adds the latest run's per-stage deltas against the EWMA baseline —
// the regression view `shareinsights time -compare` prints.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rec := s.platform.History
	if rec == nil {
		jsonError(w, http.StatusNotFound, fmt.Errorf("run history is not enabled"))
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			jsonError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
		limit = n
	}
	runs := rec.Runs(name, limit)
	if len(runs) == 0 {
		jsonError(w, http.StatusNotFound, fmt.Errorf("dashboard %q has no recorded runs", name))
		return
	}
	body := map[string]any{
		"dashboard": name,
		"flow_hash": runs[0].FlowHash,
		"runs":      runs,
		"profiles":  rec.Profiles(runs[0].FlowHash),
	}
	if r.URL.Query().Get("baseline") == "1" {
		body["baseline"] = runs[0].Deltas
	}
	jsonOK(w, body)
}

// handleOps serves the self-hosted ops meta-dashboard: the last run's
// telemetry assembled into a generated platform dashboard (the
// Race2Insights Figure 31/32 pattern). ?format=html renders the page;
// the default is the endpoint tables plus the generated flow file.
func (s *Server) handleOps(w http.ResponseWriter, r *http.Request) {
	d, err := s.liveDashboard(r.PathValue("name"))
	if err != nil {
		jsonError(w, http.StatusNotFound, err)
		return
	}
	meta, err := ops.BuildOps(d, s.opsPanels()...)
	if err != nil {
		jsonError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if r.URL.Query().Get("format") == "html" {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := meta.RenderHTML(w); err != nil {
			jsonError(w, http.StatusInternalServerError, err)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, name := range meta.EndpointNames() {
		t, ok := meta.Endpoint(name)
		if !ok {
			continue
		}
		fmt.Fprintf(w, "== %s ==\n%s\n", name, t.Format(0))
	}
}

func (s *Server) handleShared(w http.ResponseWriter, r *http.Request) {
	type objInfo struct {
		Name      string   `json:"name"`
		Dashboard string   `json:"dashboard"`
		Columns   []string `json:"columns"`
		Rows      int      `json:"rows"`
		Version   int      `json:"version"`
	}
	var out []objInfo
	for _, n := range s.platform.Catalog.Names() {
		if o, ok := s.platform.Catalog.Resolve(n); ok {
			out = append(out, objInfo{
				Name: o.Name, Dashboard: o.Dashboard,
				Columns: o.Schema.Names(), Rows: o.Data.Len(), Version: o.Version,
			})
		}
	}
	jsonOK(w, map[string]any{"shared": out})
}

// UploadData seeds a dashboard's auxiliary files programmatically (CLI
// and tests).
func (s *Server) UploadData(dashboardName, file string, content []byte) {
	s.mu.Lock()
	if s.data[dashboardName] == nil {
		s.data[dashboardName] = map[string][]byte{}
	}
	s.data[dashboardName][file] = content
	s.uploadRev[dashboardName]++
	s.mu.Unlock()
	s.invalidateResults(dashboardName)
}

// SaveDashboard commits flow-file content programmatically.
func (s *Server) SaveDashboard(name, author string, content []byte) (string, error) {
	if _, err := flowfile.Parse(name, string(content)); err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	repo, ok := s.repos[name]
	if !ok {
		var err error
		if repo, err = s.newRepoLocked(name); err != nil {
			return "", err
		}
	}
	hash, err := repo.Commit(vcs.DefaultBranch, author, "save "+name, content)
	if err == nil {
		s.invalidateResults(name)
	}
	return hash, err
}

// Run compiles and runs a saved dashboard programmatically.
func (s *Server) Run(name string) (*dashboard.Dashboard, error) {
	return s.runDashboard(context.Background(), name)
}

// RunContext is Run honoring ctx.
func (s *Server) RunContext(ctx context.Context, name string) (*dashboard.Dashboard, error) {
	return s.runDashboard(ctx, name)
}

// Repo exposes a dashboard's repository (the CLI's vcs subcommands).
func (s *Server) Repo(name string) (*vcs.Repo, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.repos[name]
	return r, ok
}
