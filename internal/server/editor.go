package server

import (
	"fmt"
	"html"
	"net/http"

	"shareinsights/internal/vcs"
)

// handleEditor serves the browser development interface of Figure 26: a
// flow-file editor with save, run, explorer and dashboard panes, driven
// entirely by the REST API ("ShareInsights uses the browser exclusively
// for data-pipeline development", §4.3.1). Navigating to
// /dashboards/<name>/edit on a fresh name is the paper's /create flow.
func (s *Server) handleEditor(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	content := ""
	s.mu.RLock()
	if repo, ok := s.repos[name]; ok {
		if b, err := repo.Content(vcs.DefaultBranch); err == nil {
			content = string(b)
		}
	}
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, editorPage, html.EscapeString(name), html.EscapeString(name), html.EscapeString(content), html.EscapeString(name))
}

const editorPage = `<!DOCTYPE html><html><head><meta charset="utf-8">
<title>ShareInsights — %s</title>
<style>
body{font-family:sans-serif;margin:0;display:flex;flex-direction:column;height:100vh}
header{padding:8px;background:#234;color:#fff;display:flex;gap:8px;align-items:center}
header h1{font-size:16px;margin:0;flex:1}
main{flex:1;display:flex;min-height:0}
#src{flex:1;font-family:monospace;font-size:13px;border:none;padding:8px;resize:none}
#out{flex:1;overflow:auto;border-left:1px solid #ccc;padding:8px}
#status{font-size:12px}
button{padding:4px 12px}
pre{white-space:pre-wrap}
</style></head><body>
<header>
  <h1>ShareInsights — %s</h1>
  <span id="status"></span>
  <button onclick="save()">Save</button>
  <button onclick="run()">Save &amp; Run</button>
  <button onclick="explore()">Data Explorer</button>
  <button onclick="view()">Dashboard</button>
</header>
<main>
  <textarea id="src" spellcheck="false">%s</textarea>
  <div id="out"><p>Save &amp; Run to see endpoint data; the explorer and
  dashboard panes use the same REST endpoints (<code>/ds</code>,
  <code>/explore</code>, <code>/html</code>) scripts can call.</p></div>
</main>
<script>
const name = %q;
const status = (m) => document.getElementById('status').textContent = m;
const out = (html) => document.getElementById('out').innerHTML = html;
async function save() {
  const res = await fetch('/dashboards/' + name, {method: 'PUT', body: document.getElementById('src').value});
  const body = await res.json();
  status(res.ok ? 'saved ' + body.commit.slice(0, 10) : 'error');
  if (!res.ok) out('<pre>' + body.error + '</pre>');
  return res.ok;
}
async function run() {
  if (!await save()) return;
  const res = await fetch('/dashboards/' + name + '/run', {method: 'POST'});
  const body = await res.json();
  if (!res.ok) { status('run failed'); out('<pre>' + body.error + '</pre>'); return; }
  status('ran: ' + body.tasks_run + ' tasks');
  explore();
}
async function explore() {
  const res = await fetch('/dashboards/' + name + '/explore');
  out('<pre>' + (await res.text()) + '</pre>');
}
async function view() {
  const res = await fetch('/dashboards/' + name + '/html');
  out(await res.text());
}
</script>
</body></html>`
