package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestHistoryRoute drives two runs and checks the flight-recorder
// surface: runs newest first, stage profiles for the current flow
// revision, and the ?baseline=1 comparison of the second run against
// the first.
func TestHistoryRoute(t *testing.T) {
	s, ts := newTestServer(t)
	base := ts.URL + "/dashboards/sales_dash"

	// Before any run: 404.
	if code, _ := do(t, http.MethodGet, base+"/history", ""); code != 404 {
		t.Fatalf("history before runs = %d, want 404", code)
	}

	if code, body := do(t, http.MethodPut, base, serverFlow); code != 200 {
		t.Fatalf("PUT = %d: %s", code, body)
	}
	for i := 0; i < 2; i++ {
		if code, body := do(t, http.MethodPost, base+"/run", ""); code != 200 {
			t.Fatalf("run %d = %d: %s", i, code, body)
		}
		// Drop the incremental cache so the second run executes its
		// stages instead of reporting an all-cache-hit run (a fully
		// cached run legitimately has no stage records to compare).
		s.platform.Cache.Invalidate("sales_dash")
	}

	code, body := do(t, http.MethodGet, base+"/history?baseline=1", "")
	if code != 200 {
		t.Fatalf("history = %d: %s", code, body)
	}
	var resp struct {
		Dashboard string `json:"dashboard"`
		FlowHash  string `json:"flow_hash"`
		Runs      []struct {
			Seq    uint64 `json:"seq"`
			Status string `json:"status"`
			Stages []struct {
				Output     string `json:"output"`
				DurationUS int64  `json:"duration_us"`
			} `json:"stages"`
		} `json:"runs"`
		Profiles []struct {
			Output string `json:"output"`
			Count  int64  `json:"count"`
		} `json:"profiles"`
		Baseline []struct {
			Output     string  `json:"output"`
			BaselineUS int64   `json:"baseline_us"`
			DeltaPct   float64 `json:"delta_pct"`
		} `json:"baseline"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode %s: %v", body, err)
	}
	if resp.Dashboard != "sales_dash" || resp.FlowHash == "" {
		t.Fatalf("header = %+v", resp)
	}
	if len(resp.Runs) != 2 || resp.Runs[0].Seq <= resp.Runs[1].Seq {
		t.Fatalf("runs not newest-first: %+v", resp.Runs)
	}
	if resp.Runs[0].Status != "ok" || len(resp.Runs[0].Stages) == 0 {
		t.Fatalf("run detail = %+v", resp.Runs[0])
	}
	if len(resp.Profiles) == 0 || resp.Profiles[0].Count != 2 {
		t.Fatalf("profiles = %+v", resp.Profiles)
	}
	// The second run compared against the first run's baseline.
	if len(resp.Baseline) == 0 || resp.Baseline[0].BaselineUS <= 0 {
		t.Fatalf("baseline = %+v", resp.Baseline)
	}

	// ?limit truncates, bad limit rejects.
	code, body = do(t, http.MethodGet, base+"/history?limit=1", "")
	if code != 200 || !strings.Contains(string(body), `"seq"`) {
		t.Fatalf("limit=1 = %d: %s", code, body)
	}
	var lim struct {
		Runs []json.RawMessage `json:"runs"`
	}
	if err := json.Unmarshal(body, &lim); err != nil || len(lim.Runs) != 1 {
		t.Fatalf("limit=1 returned %d runs: %v", len(lim.Runs), err)
	}
	if code, _ := do(t, http.MethodGet, base+"/history?limit=x", ""); code != 400 {
		t.Fatalf("limit=x = %d, want 400", code)
	}

	// The per-stage labelled metrics from the runs are exposed.
	code, body = do(t, http.MethodGet, ts.URL+"/metrics", "")
	if code != 200 || !strings.Contains(string(body), "si_stage_duration_seconds") ||
		!strings.Contains(string(body), "si_stage_rows_total") {
		t.Fatalf("si_stage_* metrics missing: %d", code)
	}
}
