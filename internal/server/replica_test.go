package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"shareinsights/internal/connector"
	"shareinsights/internal/dashboard"
	"shareinsights/internal/replica"
	"shareinsights/internal/resilience"
	"shareinsights/internal/store"
)

// testClock is an injectable, manually advanced clock shared by the
// follower and its breaker, so replication lag is deterministic.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock {
	return &testClock{t: time.Date(2015, 6, 1, 12, 0, 0, 0, time.UTC)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// doFull is do() plus headers — the replica contract lives in Location,
// X-SI-Replica-Lag and Retry-After.
func doFull(t *testing.T, method, url, body string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	// The 307 must reach the test, not be followed to the leader.
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// newFollowerServer stands up a leader (durable server with state built
// through the API), syncs a follower against it, and wraps the follower
// in a serve process of its own. The follower's source protocol is
// offline from the start: every successful follower run proves it ran
// on replicated state.
func newFollowerServer(t *testing.T, maxLag time.Duration) (leader *httptest.Server, fol *replica.Follower, follower *httptest.Server, clk *testClock) {
	t.Helper()
	_, lts, _ := newDurableServer(t, store.NewMemFS(), false)
	if code, body := do(t, "PUT", lts.URL+"/dashboards/sales", durableFlow); code != 200 {
		t.Fatalf("leader put: %d %s", code, body)
	}
	if code, body := do(t, "POST", lts.URL+"/dashboards/sales/run", ""); code != 200 {
		t.Fatalf("leader run: %d %s", code, body)
	}

	clk = newTestClock()
	fol, err := replica.New(replica.Config{
		LeaderURL: lts.URL,
		Now:       clk.Now,
		Retry:     resilience.Policy{MaxRetries: 0, BaseDelay: time.Nanosecond},
		Breaker:   resilience.BreakerConfig{FailureThreshold: 1 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fol.Close() })
	if err := fol.Sync(context.Background()); err != nil {
		t.Fatalf("initial sync: %v", err)
	}

	proto := &switchProtocol{payload: []byte(salesCSV)}
	proto.fail.Store(true)
	p := dashboard.NewPlatform()
	p.Connectors = connector.NewRegistry(connector.Options{})
	if err := p.Connectors.RegisterProtocol("switch", proto); err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(New(p, WithFollower(fol, maxLag)).Handler())
	t.Cleanup(fts.Close)
	return lts, fol, fts, clk
}

// TestFollowerServesReplicatedReads pins the read side of the replica
// contract: replicated flow files, shared objects and last-good tables
// all serve over the follower's own HTTP API, every response carries the
// lag header, and a run executes locally on replicated state (the
// follower's source is offline — on_error: stale hits the replicated
// cache).
func TestFollowerServesReplicatedReads(t *testing.T) {
	_, _, fts, _ := newFollowerServer(t, 0)

	code, hdr, body := doFull(t, "GET", fts.URL+"/dashboards/sales", "")
	if code != 200 || !strings.Contains(string(body), "sum_by_region") {
		t.Fatalf("replicated flow read: %d %s", code, body)
	}
	if hdr.Get(ReplicaLagHeader) == "" {
		t.Fatalf("missing %s header on follower read", ReplicaLagHeader)
	}
	code, body = do(t, "GET", fts.URL+"/shared", "")
	if code != 200 || !strings.Contains(string(body), "region_totals") {
		t.Fatalf("replicated catalog: %d %s", code, body)
	}
	if code, body = do(t, "POST", fts.URL+"/dashboards/sales/run", ""); code != 200 {
		t.Fatalf("follower run: %d %s", code, body)
	}
	code, body = do(t, "GET", fts.URL+"/dashboards/sales/health", "")
	if code != 200 || !strings.Contains(string(body), `"stale"`) {
		t.Fatalf("follower run should degrade to replicated last-good: %d %s", code, body)
	}
	code, body = do(t, "GET", fts.URL+"/dashboards/sales/ds/by_region", "")
	if code != 200 || !strings.Contains(string(body), "east") {
		t.Fatalf("follower endpoint data: %d %s", code, body)
	}

	// Ops page carries the replication panel.
	code, body = do(t, "GET", fts.URL+"/dashboards/sales/ops", "")
	if code != 200 || !strings.Contains(string(body), "replication") ||
		!strings.Contains(string(body), "applied_seq") {
		t.Fatalf("ops replication panel: %d %s", code, body)
	}
}

// TestFollowerRedirectsWrites pins the write side: PUT/DELETE and the
// mutating POSTs answer 307 with a Location pointing at the leader, and
// nothing is applied locally.
func TestFollowerRedirectsWrites(t *testing.T) {
	lts, _, fts, _ := newFollowerServer(t, 0)

	for _, tc := range []struct{ method, path string }{
		{"PUT", "/dashboards/sales"},
		{"DELETE", "/dashboards/sales"},
		{"POST", "/dashboards/sales/branches/dev"},
	} {
		code, hdr, body := doFull(t, tc.method, fts.URL+tc.path, durableFlow)
		if code != 307 {
			t.Fatalf("%s %s on follower: got %d %s, want 307", tc.method, tc.path, code, body)
		}
		if loc := hdr.Get("Location"); loc != lts.URL+tc.path {
			t.Fatalf("%s %s Location = %q, want %q", tc.method, tc.path, loc, lts.URL+tc.path)
		}
	}
	// The replicated branch list is untouched.
	code, body := do(t, "GET", fts.URL+"/dashboards/sales/branches", "")
	if code != 200 || strings.Contains(string(body), `"dev"`) {
		t.Fatalf("redirected branch leaked into replica: %d %s", code, body)
	}
}

// TestFollowerBoundedStaleness pins -max-lag: once lag exceeds the
// bound, data reads refuse with 503 + Retry-After while /health,
// /metrics and the ops page stay reachable and report degraded.
func TestFollowerBoundedStaleness(t *testing.T) {
	_, fol, fts, clk := newFollowerServer(t, 2*time.Second)

	// Fresh: within the bound. The run also gives the ops page a live
	// dashboard to build on.
	if code, _, _ := doFull(t, "GET", fts.URL+"/dashboards/sales", ""); code != 200 {
		t.Fatalf("fresh read: %d", code)
	}
	if code, _, body := doFull(t, "POST", fts.URL+"/dashboards/sales/run", ""); code != 200 {
		t.Fatalf("fresh run: %d %s", code, body)
	}

	clk.Advance(5 * time.Second)
	code, hdr, body := doFull(t, "GET", fts.URL+"/dashboards/sales", "")
	if code != 503 {
		t.Fatalf("stale read: got %d %s, want 503", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if hdr.Get(ReplicaLagHeader) == "" {
		t.Fatal("503 without lag header")
	}
	for _, path := range []string{"/health", "/metrics", "/dashboards/sales/ops"} {
		if code, _, _ := doFull(t, "GET", fts.URL+path, ""); code != 200 {
			t.Fatalf("%s must stay reachable past max-lag: %d", path, code)
		}
	}

	var h struct {
		Status      string `json:"status"`
		Durability  string `json:"durability"`
		Replication struct {
			Leader     string  `json:"leader"`
			LagSeconds float64 `json:"lag_seconds"`
			AppliedSeq uint64  `json:"applied_seq"`
			Breaker    string  `json:"breaker"`
			Components map[string]struct {
				Cursor struct {
					Gen    uint64 `json:"gen"`
					Offset int64  `json:"offset"`
				} `json:"cursor"`
			} `json:"components"`
		} `json:"replication"`
	}
	_, _, body = doFull(t, "GET", fts.URL+"/health", "")
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Durability != "replica" || h.Status != "degraded" {
		t.Fatalf("stale follower health = %s", body)
	}
	if h.Replication.LagSeconds < 5 || h.Replication.AppliedSeq == 0 {
		t.Fatalf("replication status = %s", body)
	}
	if cs, ok := h.Replication.Components["vcs"]; !ok || cs.Cursor.Offset == 0 {
		t.Fatalf("per-component WAL cursor missing from health: %s", body)
	}

	// Catching up again clears the refusal.
	if err := fol.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := doFull(t, "GET", fts.URL+"/dashboards/sales", ""); code != 200 {
		t.Fatalf("read after resync: %d", code)
	}
}
