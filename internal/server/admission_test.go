package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shareinsights/internal/admission"
	"shareinsights/internal/connector"
	"shareinsights/internal/dashboard"
	"shareinsights/internal/resilience"
)

// newAdmissionServer builds a server with the admission gate and the
// shared result cache enabled.
func newAdmissionServer(t *testing.T, cfg admission.Config) (*Server, *httptest.Server) {
	t.Helper()
	p := dashboard.NewPlatform()
	p.Connectors = connector.NewRegistry(connector.Options{
		Mem: map[string][]byte{"sales.csv": []byte(salesCSV)},
	})
	s := New(p, WithAdmission(cfg), WithResultCache(16))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func putAndRun(t *testing.T, ts *httptest.Server, name, flow string) {
	t.Helper()
	if code, body := do(t, http.MethodPut, ts.URL+"/dashboards/"+name, flow); code != 200 {
		t.Fatalf("put %s: %d %s", name, code, body)
	}
	if code, body := do(t, http.MethodPost, ts.URL+"/dashboards/"+name+"/run", ""); code != 200 {
		t.Fatalf("run %s: %d %s", name, code, body)
	}
}

// doTenant issues a request with a tenant header and returns the
// response (caller closes the body).
func doTenant(t *testing.T, method, url, tenant string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestAdmissionSheds429 saturates the gate and asserts the shed
// contract: 429 status, Retry-After header, a "shed" flight-recorder
// entry — and, critically, zero effect on the connector circuit
// breakers (a shed is pressure, not a platform failure).
func TestAdmissionSheds429(t *testing.T) {
	s, ts := newAdmissionServer(t, admission.Config{MaxInFlight: 1, QueueDepth: 0})
	putAndRun(t, ts, "sales", serverFlow)

	// Hold the only slot so every HTTP request sheds queue_full.
	release, err := s.Gate().Acquire(context.Background(), "holder")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		resp := doTenant(t, http.MethodPost, ts.URL+"/dashboards/sales/run", "")
		body := readAll(t, resp)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("saturated run = %d %s, want 429", resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 missing Retry-After")
		}
	}
	release()

	// Shed requests never trip circuit breakers: they are rejected
	// before any connector work, so every breaker stays closed.
	for host, st := range s.platform.Connectors.Breakers().States() {
		if st != resilience.Closed {
			t.Errorf("breaker for %s = %v after sheds, want closed", host, st)
		}
	}
	// The gate recovered: the next request is admitted.
	if code, body := do(t, http.MethodPost, ts.URL+"/dashboards/sales/run", ""); code != 200 {
		t.Fatalf("post-release run = %d %s", code, body)
	}
	// Sheds land in the flight recorder alongside runs.
	found := false
	for _, run := range s.platform.History.Runs("sales", 0) {
		if run.Status == "shed" {
			found = true
		}
	}
	if !found {
		t.Error("no shed entry in the flight recorder")
	}
}

// TestQueuedRequestCanceledReleasesSlot is the client-disconnect
// contract over HTTP: a queued run whose client goes away must leave
// the queue, and the server must keep serving afterwards.
func TestQueuedRequestCanceledReleasesSlot(t *testing.T) {
	s, ts := newAdmissionServer(t, admission.Config{MaxInFlight: 1, QueueDepth: 4})
	putAndRun(t, ts, "sales", serverFlow)

	release, err := s.Gate().Acquire(context.Background(), "holder")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/dashboards/sales/run", nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitForCond(t, func() bool { return s.Gate().Stats().Queued == 1 })
	cancel()
	<-done
	waitForCond(t, func() bool { return s.Gate().Stats().Queued == 0 })

	release()
	if code, body := do(t, http.MethodPost, ts.URL+"/dashboards/sales/run", ""); code != 200 {
		t.Fatalf("run after canceled waiter = %d %s", code, body)
	}
	if st := s.Gate().Stats(); st.InFlight != 0 {
		t.Fatalf("slot leaked: %+v", st)
	}
}

// TestTenantIsolationHTTP is the acceptance criterion at the HTTP
// layer: a hot tenant burning through its rate limit gets 429s while a
// well-behaved tenant keeps getting 200s from the same server.
func TestTenantIsolationHTTP(t *testing.T) {
	_, ts := newAdmissionServer(t, admission.Config{
		MaxInFlight: 8,
		QueueDepth:  8,
		TenantRPS:   0.001, // one token then starve
		TenantBurst: 2,
	})
	putAndRun(t, ts, "sales", serverFlow) // spends one default-tenant token

	hot429 := 0
	for i := 0; i < 10; i++ {
		resp := doTenant(t, http.MethodPost, ts.URL+"/dashboards/sales/run", "hot")
		readAll(t, resp)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			hot429++
		}
	}
	if hot429 < 8 {
		t.Fatalf("hot tenant got only %d/10 429s", hot429)
	}
	// The polite tenant has its own bucket: both burst tokens work.
	for i := 0; i < 2; i++ {
		resp := doTenant(t, http.MethodPost, ts.URL+"/dashboards/sales/run", "polite")
		body := readAll(t, resp)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("polite tenant request %d = %d %s", i, resp.StatusCode, body)
		}
	}
}

// TestResultCacheOverHTTP covers the cache lifecycle through the API:
// miss on first run, hit on the second, invalidation on save and on
// upload.
func TestResultCacheOverHTTP(t *testing.T) {
	_, ts := newAdmissionServer(t, admission.Config{})
	if code, body := do(t, http.MethodPut, ts.URL+"/dashboards/sales", serverFlow); code != 200 {
		t.Fatalf("put: %d %s", code, body)
	}
	run := func() (int, string) {
		resp := doTenant(t, http.MethodPost, ts.URL+"/dashboards/sales/run", "")
		readAll(t, resp)
		resp.Body.Close()
		return resp.StatusCode, resp.Header.Get(ResultCacheHeader)
	}
	if code, outcome := run(); code != 200 || outcome != admission.OutcomeMiss {
		t.Fatalf("first run = %d, cache %q; want 200 miss", code, outcome)
	}
	if code, outcome := run(); code != 200 || outcome != admission.OutcomeHit {
		t.Fatalf("second run = %d, cache %q; want 200 hit", code, outcome)
	}
	// A save rotates the key and drops the entry.
	if code, body := do(t, http.MethodPut, ts.URL+"/dashboards/sales", serverFlow); code != 200 {
		t.Fatalf("re-put: %d %s", code, body)
	}
	if code, outcome := run(); code != 200 || outcome != admission.OutcomeMiss {
		t.Fatalf("run after save = %d, cache %q; want miss", code, outcome)
	}
	if _, outcome := run(); outcome != admission.OutcomeHit {
		t.Fatalf("re-run = cache %q, want hit", outcome)
	}
	// An upload invalidates too.
	if code, body := do(t, http.MethodPut, ts.URL+"/dashboards/sales/data/extra.csv", "x\n1\n"); code != 200 {
		t.Fatalf("upload: %d %s", code, body)
	}
	if _, outcome := run(); outcome != admission.OutcomeMiss {
		t.Fatalf("run after upload = cache %q, want miss", outcome)
	}
}

// TestResultCachePublishInvalidation: a consumer dashboard's cached
// result becomes stale the moment its shared input is republished —
// the catalog version inside the cache key rotates, so the next run
// recomputes against the new data.
func TestResultCachePublishInvalidation(t *testing.T) {
	_, ts := newAdmissionServer(t, admission.Config{})
	producer := serverFlow + "\nD.by_region:\n  publish: region_totals\n"
	putAndRun(t, ts, "producer", producer)

	consumer := `
F:
  +D.report: D.region_totals | T.top

T:
  top:
    type: topn
    orderby_column: [total DESC]
    limit: 1
`
	if code, body := do(t, http.MethodPut, ts.URL+"/dashboards/consumer", consumer); code != 200 {
		t.Fatalf("put consumer: %d %s", code, body)
	}
	run := func() string {
		resp := doTenant(t, http.MethodPost, ts.URL+"/dashboards/consumer/run", "")
		body := readAll(t, resp)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("consumer run: %d %s", resp.StatusCode, body)
		}
		return resp.Header.Get(ResultCacheHeader)
	}
	if outcome := run(); outcome != admission.OutcomeMiss {
		t.Fatalf("first consumer run = %q, want miss", outcome)
	}
	if outcome := run(); outcome != admission.OutcomeHit {
		t.Fatalf("second consumer run = %q, want hit", outcome)
	}
	// Republish: save the producer (rotating its own key) and re-run it
	// so the catalog object's version bumps.
	putAndRun(t, ts, "producer", producer)
	if outcome := run(); outcome != admission.OutcomeMiss {
		t.Fatalf("consumer run after republish = %q, want miss (stale shared input)", outcome)
	}
}

// TestCacheOffOptsOut: a flow with a `cache: off` data object never
// touches the result cache.
func TestCacheOffOptsOut(t *testing.T) {
	_, ts := newAdmissionServer(t, admission.Config{})
	flow := serverFlow + "\nD.sales:\n  cache: off\n"
	if code, body := do(t, http.MethodPut, ts.URL+"/dashboards/sales", flow); code != 200 {
		t.Fatalf("put: %d %s", code, body)
	}
	for i := 0; i < 2; i++ {
		resp := doTenant(t, http.MethodPost, ts.URL+"/dashboards/sales/run", "")
		readAll(t, resp)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("run %d: %d", i, resp.StatusCode)
		}
		if h := resp.Header.Get(ResultCacheHeader); h != "" {
			t.Fatalf("cache-off run %d reported outcome %q", i, h)
		}
	}
}

// TestOpsPanelsIncludeAdmission: the ops meta-dashboard grows the
// admission and result-cache panels when those subsystems are on.
func TestOpsPanelsIncludeAdmission(t *testing.T) {
	_, ts := newAdmissionServer(t, admission.Config{MaxInFlight: 4, QueueDepth: 4})
	putAndRun(t, ts, "sales", serverFlow)
	code, body := do(t, http.MethodGet, ts.URL+"/dashboards/sales/ops", "")
	if code != 200 {
		t.Fatalf("ops: %d %s", code, body)
	}
	for _, want := range []string{"admission", "result_cache", "max_inflight", "hits"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("ops page missing %q", want)
		}
	}
}

// TestAdmissionMetricsExposed: the si_admission_* and si_result_cache_*
// series land on GET /metrics.
func TestAdmissionMetricsExposed(t *testing.T) {
	s, ts := newAdmissionServer(t, admission.Config{MaxInFlight: 1, QueueDepth: 0})
	putAndRun(t, ts, "sales", serverFlow)
	release, err := s.Gate().Acquire(context.Background(), "holder")
	if err != nil {
		t.Fatal(err)
	}
	resp := doTenant(t, http.MethodPost, ts.URL+"/dashboards/sales/run", "")
	readAll(t, resp)
	resp.Body.Close()
	release()

	code, body := do(t, http.MethodGet, ts.URL+"/metrics", "")
	if code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		"si_admission_admitted_total",
		`si_admission_shed_total{reason="queue_full"}`,
		"si_result_cache_misses_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func waitForCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
