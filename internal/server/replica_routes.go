package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"shareinsights/internal/obs/ops"
	"shareinsights/internal/replica"
	"shareinsights/internal/table"
	"shareinsights/internal/value"
)

// ReplicaLagHeader carries a follower's replication lag in seconds on
// every response it serves, so clients always know how stale a read
// was (docs/REPLICATION.md).
const ReplicaLagHeader = "X-SI-Replica-Lag"

// WithFollower runs the server as a read-only replica fed by the given
// follower: dashboard reads serve the replicated state, writes answer
// 307 with the leader's URL, and reads refuse with 503 + Retry-After
// once the replication lag exceeds maxLag (0 = serve however stale).
// Mutually exclusive with WithStore.
func WithFollower(f *replica.Follower, maxLag time.Duration) Option {
	return func(s *Server) {
		s.follower = f
		s.followerMaxLag = maxLag
	}
}

// Follower exposes the attached follower (nil on leaders).
func (s *Server) Follower() *replica.Follower { return s.follower }

// replicaRoutes mounts the leader-side shipping endpoints. Only servers
// with a durable store ship WALs.
func (s *Server) replicaRoutes(handle func(pattern string, h http.HandlerFunc)) {
	l := replica.NewLeader(s.store)
	handle("GET /replica/status", l.ServeStatus)
	handle("GET /replica/wal/{component}", l.ServeWAL)
	handle("GET /replica/bootstrap/{component}", l.ServeBootstrap)
}

// isReplicaWrite classifies requests a follower must not apply locally:
// every PUT/DELETE/PATCH, plus the POST routes that mutate repositories
// (branch, merge, fork). POST run/select stay local — they execute the
// replicated flow ephemerally and never touch journaled state.
func isReplicaWrite(r *http.Request) bool {
	switch r.Method {
	case http.MethodPut, http.MethodDelete, http.MethodPatch:
		return true
	case http.MethodPost:
		p := r.URL.Path
		return strings.Contains(p, "/branches/") || strings.Contains(p, "/merge/") || strings.Contains(p, "/fork/")
	}
	return false
}

// stalenessGated reports whether a path serves replicated data and so
// falls under the -max-lag bound. Health, metrics and the ops page stay
// reachable on an arbitrarily stale follower — they describe this
// process, and are exactly what an operator needs when replication is
// the thing that broke.
func stalenessGated(path string) bool {
	if strings.HasSuffix(path, "/ops") {
		return false
	}
	return strings.HasPrefix(path, "/dashboards") || strings.HasPrefix(path, "/shared") || strings.HasPrefix(path, "/ds")
}

// followerGuard enforces the replica serving contract around every
// route: leader redirect for writes, lag header on everything, bounded
// staleness on data reads.
func (s *Server) followerGuard(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if isReplicaWrite(r) {
			target := strings.TrimSuffix(s.follower.LeaderURL(), "/") + r.URL.RequestURI()
			w.Header().Set("Location", target)
			jsonError(w, http.StatusTemporaryRedirect,
				fmt.Errorf("read-only replica: write to the leader at %s", target))
			return
		}
		lag := s.follower.Lag()
		w.Header().Set(ReplicaLagHeader, strconv.FormatFloat(lag.Seconds(), 'f', 3, 64))
		if s.followerMaxLag > 0 && lag > s.followerMaxLag && stalenessGated(r.URL.Path) {
			w.Header().Set("Retry-After", "1")
			jsonError(w, http.StatusServiceUnavailable,
				fmt.Errorf("replica lag %.1fs exceeds max-lag %s; retry or read the leader", lag.Seconds(), s.followerMaxLag))
			return
		}
		next.ServeHTTP(w, r)
	})
}

// replicationPanel is the follower's ops-page panel: lag, applied
// sequence, breaker state and per-component apply counters.
func (s *Server) replicationPanel() ops.Panel {
	st := s.follower.Status()
	t := table.New(opsPanelSchema)
	add := func(metric string, v int64) {
		t.AppendValues(value.NewString(metric), value.NewInt(v))
	}
	add("lag_ms", int64(s.follower.Lag().Milliseconds()))
	add("applied_seq", int64(st.AppliedSeq))
	add("breaker_state", int64(s.follower.Breaker().State()))
	names := make([]string, 0, len(st.Components))
	for n := range st.Components {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		cs := st.Components[n]
		add("frames_applied_"+n, int64(cs.FramesApplied))
		add("bootstraps_"+n, int64(cs.Bootstraps))
	}
	return ops.Panel{Name: "replication", Table: t}
}
