package server

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"shareinsights/internal/connector"
	"shareinsights/internal/dashboard"
	"shareinsights/internal/obs"
	"shareinsights/internal/store"
	"shareinsights/internal/store/persist"
)

// durableFlow is staleFlow plus a publish: — it exercises all three
// persisted components: the flow-file repo (PUT), the shared catalog
// (publish on run) and the last-good source cache (on_error: stale).
var durableFlow = strings.Replace(staleFlow, "endpoint: true", "endpoint: true\n    publish: region_totals", 1)

func newDurableServer(t *testing.T, fs store.FS, failSource bool) (*Server, *httptest.Server, *persist.Store) {
	t.Helper()
	st, err := persist.Open(fs, persist.Options{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	proto := &switchProtocol{payload: []byte(salesCSV)}
	proto.fail.Store(failSource)
	p := dashboard.NewPlatform()
	p.Metrics = st.Metrics()
	p.Connectors = connector.NewRegistry(connector.Options{})
	if err := p.Connectors.RegisterProtocol("switch", proto); err != nil {
		t.Fatal(err)
	}
	s := New(p, WithStore(st))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, st
}

// TestServerRestartPreservesState is the acceptance round trip: commits,
// branches, published objects and last-good tables made through the REST
// API survive a full server restart over the same data directory — and
// on_error: stale serves recovered data even when the source never comes
// back up in the second life.
func TestServerRestartPreservesState(t *testing.T) {
	fs := store.NewMemFS()

	// First life: build state through the API.
	_, ts, st := newDurableServer(t, fs, false)
	if code, body := do(t, "PUT", ts.URL+"/dashboards/sales", durableFlow); code != 200 {
		t.Fatalf("put: %d %s", code, body)
	}
	if code, body := do(t, "POST", ts.URL+"/dashboards/sales/run", ""); code != 200 {
		t.Fatalf("run: %d %s", code, body)
	}
	if code, body := do(t, "POST", ts.URL+"/dashboards/sales/branches/dev", ""); code != 200 {
		t.Fatalf("branch: %d %s", code, body)
	}
	if code, body := do(t, "PUT", ts.URL+"/dashboards/sales/branches/dev", durableFlow); code != 200 {
		t.Fatalf("commit to dev: %d %s", code, body)
	}
	ts.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: same FS, fresh process, source down from the start.
	_, ts2, _ := newDurableServer(t, fs, true)

	// VCS: the dashboard, its content and its branches are back.
	code, body := do(t, "GET", ts2.URL+"/dashboards/sales", "")
	if code != 200 || strings.TrimSpace(string(body)) == "" {
		t.Fatalf("recovered flow file: %d %s", code, body)
	}
	code, body = do(t, "GET", ts2.URL+"/dashboards/sales/branches", "")
	if code != 200 || !strings.Contains(string(body), `"dev"`) {
		t.Fatalf("recovered branches: %d %s", code, body)
	}
	code, body = do(t, "GET", ts2.URL+"/dashboards/sales/log", "")
	if code != 200 || !strings.Contains(string(body), "save sales") {
		t.Fatalf("recovered commit log: %d %s", code, body)
	}

	// Catalog: the published object is resolvable before any run.
	code, body = do(t, "GET", ts2.URL+"/shared", "")
	if code != 200 || !strings.Contains(string(body), "region_totals") {
		t.Fatalf("recovered shared catalog: %d %s", code, body)
	}

	// Cache: on_error: stale works across the restart — the source is
	// offline, yet the run completes on the recovered last-good table.
	if code, body := do(t, "POST", ts2.URL+"/dashboards/sales/run", ""); code != 200 {
		t.Fatalf("degraded run after restart: %d %s", code, body)
	}
	code, body = do(t, "GET", ts2.URL+"/dashboards/sales/health", "")
	if code != 200 || !strings.Contains(string(body), `"stale"`) {
		t.Fatalf("stale fallback after restart: %d %s", code, body)
	}
	code, body = do(t, "GET", ts2.URL+"/dashboards/sales/ds/by_region", "")
	if code != 200 || !strings.Contains(string(body), "east") {
		t.Fatalf("endpoint data after restart: %d %s", code, body)
	}

	// Health surface: recovery outcome per component.
	code, body = do(t, "GET", ts2.URL+"/health", "")
	if code != 200 {
		t.Fatalf("health: %d %s", code, body)
	}
	var h struct {
		Status     string `json:"status"`
		Durability string `json:"durability"`
		Store      []struct {
			Component string `json:"component"`
			Records   int    `json:"records_replayed"`
			Gen       uint64 `json:"generation"`
			Committed int64  `json:"committed_offset"`
		} `json:"store"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Durability != "durable" || len(h.Store) != 4 {
		t.Fatalf("health = %s", body)
	}
	replayed, shipped := 0, 0
	for _, cs := range h.Store {
		replayed += cs.Records
		// The shipping cursor (docs/REPLICATION.md): committed offset is
		// at least the WAL magic on every component.
		if cs.Committed > 8 {
			shipped++
		}
	}
	if replayed == 0 {
		t.Fatalf("no records replayed on recovery: %s", body)
	}
	if shipped == 0 {
		t.Fatalf("no component exposes a shipping cursor: %s", body)
	}

	// Metrics: the si_store_* series are exposed.
	code, body = do(t, "GET", ts2.URL+"/metrics", "")
	if code != 200 || !strings.Contains(string(body), "si_store_appends_total") ||
		!strings.Contains(string(body), "si_store_recoveries_total") {
		t.Fatalf("si_store_* metrics missing: %d", code)
	}
}

// TestInMemoryHealthSurface pins the default: no store attached means
// durability reports in-memory and no component table.
func TestInMemoryHealthSurface(t *testing.T) {
	_, _, ts := newFaultServer(t)
	code, body := do(t, "GET", ts.URL+"/health", "")
	if code != 200 || !strings.Contains(string(body), `"durability":"in-memory"`) {
		t.Fatalf("health: %d %s", code, body)
	}
}
