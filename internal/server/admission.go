package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"shareinsights/internal/admission"
	"shareinsights/internal/dashboard"
	"shareinsights/internal/flowfile"
	"shareinsights/internal/obs/history"
	"shareinsights/internal/obs/ops"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
	"shareinsights/internal/value"
	"shareinsights/internal/vcs"
)

// TenantHeader names the request header carrying the tenant identity
// for per-tenant rate limits and in-flight quotas. Requests without it
// share the default tenant. See docs/SERVING.md.
const TenantHeader = "X-SI-Tenant"

// ResultCacheHeader names the response header reporting how the shared
// result cache handled a run request: hit, miss or follow.
const ResultCacheHeader = "X-SI-Result-Cache"

// WithAdmission installs the front-door admission gate: a server-wide
// concurrency limit with bounded FIFO queue, queue-depth shedding
// (429 + Retry-After) and per-tenant limits keyed on the X-SI-Tenant
// header. cfg.Metrics defaults to the platform's registry so the
// si_admission_* series land on GET /metrics.
func WithAdmission(cfg admission.Config) Option {
	return func(s *Server) {
		if cfg.Metrics == nil {
			cfg.Metrics = s.platform.Metrics
		}
		s.gate = admission.NewGate(cfg)
	}
}

// WithResultCache enables the shared run-result cache holding at most
// limit entries (<= 0 means the default bound): identical concurrent
// run requests collapse to one execution, and repeated requests serve
// the completed result until a save, upload or publish rotates the key.
func WithResultCache(limit int) Option {
	return func(s *Server) {
		s.resultCache = admission.NewResultCache(limit, s.platform.Metrics)
	}
}

// Gate exposes the admission gate (nil when admission is off) — the
// ops meta-dashboard and tests read its snapshot.
func (s *Server) Gate() *admission.Gate { return s.gate }

// tenantOf resolves the request's tenant identity.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get(TenantHeader); t != "" {
		return t
	}
	return admission.DefaultTenant
}

// admit wraps a handler with the admission gate. Shed requests answer
// 429 with a Retry-After hint — the same contract PR 3's connector
// client honors on upstream 429s — and are recorded in the flight
// recorder so `shareinsights history` shows pressure, not just runs.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.gate == nil {
			h(w, r)
			return
		}
		release, err := s.gate.Acquire(r.Context(), tenantOf(r))
		if err != nil {
			var shed *admission.ShedError
			if errors.As(err, &shed) {
				secs := int(math.Ceil(shed.RetryAfter.Seconds()))
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				s.recordOutcome(r.PathValue("name"), "shed", err.Error())
				jsonError(w, http.StatusTooManyRequests, err)
				return
			}
			// The context died while queued: the client is gone, the
			// status is never delivered. 408 keeps it out of 5xx space.
			jsonError(w, http.StatusRequestTimeout, err)
			return
		}
		defer release()
		h(w, r)
	}
}

// recordOutcome adds a shed or cached entry to the flight recorder —
// best-effort, like run recording itself.
func (s *Server) recordOutcome(name, status, detail string) {
	rec := s.platform.History
	if rec == nil || name == "" {
		return
	}
	rec.Record(&history.RunRecord{Dashboard: name, Status: status, Error: detail})
}

// cacheableFlow reports whether a flow's results may be served from
// the shared result cache: any `cache: off` data object opts the whole
// dashboard out (its sources are declared side-effecting or
// time-sensitive).
func cacheableFlow(f *flowfile.File) bool {
	for _, d := range f.Data {
		if d.Prop("cache") == "off" {
			return false
		}
	}
	return true
}

// resultCacheKey encodes everything a run result depends on: the flow
// revision (commit tip), the upload revision, and the versions of
// every shared catalog object the flow reads. A save, upload or
// publish rotates the key, so stale entries become unreachable without
// any coordination; explicit Invalidate calls drop them eagerly too.
func (s *Server) resultCacheKey(name string, repo *vcs.Repo, f *flowfile.File, uploadRev int) string {
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteString("@")
	if tip, err := repo.Tip(vcs.DefaultBranch); err == nil {
		sb.WriteString(tip.Hash)
	}
	fmt.Fprintf(&sb, "|u%d", uploadRev)
	names := make([]string, 0, len(f.Data))
	for n := range f.Data {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if obj, ok := s.platform.Catalog.Resolve(n); ok {
			fmt.Fprintf(&sb, "|%s:v%d", n, obj.Version)
		}
	}
	return sb.String()
}

// invalidateResults drops the dashboard's completed result-cache
// entries after a mutation (save, upload). Publishes need no call: the
// catalog version inside the key rotates instead.
func (s *Server) invalidateResults(name string) {
	if s.resultCache != nil {
		s.resultCache.Invalidate(name + "@")
	}
}

// runDashboardCached is runDashboard through the shared result cache:
// identical concurrent requests collapse onto one leader execution and
// repeated requests serve the completed dashboard. The outcome ("hit",
// "miss", "follow", or "" when caching is off for this flow) feeds the
// X-SI-Result-Cache response header.
func (s *Server) runDashboardCached(ctx context.Context, name string) (*dashboard.Dashboard, string, error) {
	s.mu.RLock()
	repo, ok := s.repos[name]
	uploads := s.data[name]
	rev := s.uploadRev[name]
	s.mu.RUnlock()
	if !ok {
		return nil, "", fmt.Errorf("no dashboard %q", name)
	}
	content, err := repo.Content(vcs.DefaultBranch)
	if err != nil {
		return nil, "", err
	}
	f, err := flowfile.Parse(name, string(content))
	if err != nil {
		return nil, "", err
	}
	if s.resultCache == nil || !cacheableFlow(f) {
		d, err := s.executeDashboard(ctx, name, f, uploads)
		return d, "", err
	}
	key := s.resultCacheKey(name, repo, f, rev)
	// The leader executes detached from the requester's context: its
	// result is shared by every collapsed follower, so one client's
	// disconnect must not kill work others are waiting on. The
	// platform's RunTimeout still bounds the run.
	leaderCtx := context.WithoutCancel(ctx)
	v, outcome, err := s.resultCache.Do(ctx, key, func() (any, error) {
		return s.executeDashboard(leaderCtx, name, f, uploads)
	})
	if err != nil {
		return nil, outcome, err
	}
	d := v.(*dashboard.Dashboard)
	if outcome == admission.OutcomeHit {
		s.recordOutcome(name, "cached", "")
	}
	return d, outcome, nil
}

// opsPanels builds the admission and result-cache panels for the ops
// meta-dashboard — metric/value tables, one Grid widget each. Empty
// when the corresponding subsystem is off.
func (s *Server) opsPanels() []ops.Panel {
	var panels []ops.Panel
	kv := func(rows [][2]any) *table.Table {
		t := table.New(opsPanelSchema)
		for _, r := range rows {
			t.AppendValues(value.NewString(r[0].(string)), value.NewInt(r[1].(int64)))
		}
		return t
	}
	if s.gate != nil {
		st := s.gate.Stats()
		rows := [][2]any{
			{"in_flight", int64(st.InFlight)},
			{"queued", int64(st.Queued)},
			{"max_inflight", int64(st.MaxInFlight)},
			{"queue_depth", int64(st.QueueDepth)},
			{"tenants", int64(st.Tenants)},
			{"admitted", st.Admitted},
		}
		reasons := make([]string, 0, len(st.Shed))
		for r := range st.Shed {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			rows = append(rows, [2]any{"shed_" + r, st.Shed[r]})
		}
		panels = append(panels, ops.Panel{Name: "admission", Table: kv(rows)})
	}
	if s.resultCache != nil {
		st := s.resultCache.Stats()
		panels = append(panels, ops.Panel{Name: "result_cache", Table: kv([][2]any{
			{"entries", int64(st.Entries)},
			{"hits", st.Hits},
			{"misses", st.Misses},
			{"collapsed", st.Collapsed},
			{"evictions", st.Evictions},
			{"invalidations", st.Invalidations},
		})})
	}
	if s.follower != nil {
		panels = append(panels, s.replicationPanel())
	}
	return panels
}

// opsPanelSchema is the metric/value shape shared by the admission and
// result-cache ops panels.
var opsPanelSchema = schema.MustFromNames("metric", "value")
