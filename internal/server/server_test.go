package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"shareinsights/internal/connector"
	"shareinsights/internal/dashboard"
)

const serverFlow = `
D:
  sales: [region, product, amount]

D.sales:
  source: mem:sales.csv
  format: csv

F:
  +D.by_region: D.sales | T.sum_by_region

T:
  sum_by_region:
    type: groupby
    groupby: [region]
    aggregates:
      - operator: sum
        apply_on: amount
        out_field: total
`

const salesCSV = `east,widget,10
east,gadget,20
west,widget,5
`

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	p := dashboard.NewPlatform()
	p.Connectors = connector.NewRegistry(connector.Options{
		Mem: map[string][]byte{"sales.csv": []byte(salesCSV)},
	})
	s := New(p)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func do(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := fmt.Fprint(&buf, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, []byte(buf.String())
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return b.String()
}

func TestDashboardLifecycle(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/dashboards/sales_dash"

	// Create.
	code, body := do(t, http.MethodPut, base, serverFlow)
	if code != 200 {
		t.Fatalf("PUT = %d: %s", code, body)
	}
	// List.
	code, body = do(t, http.MethodGet, ts.URL+"/dashboards", "")
	if code != 200 || !strings.Contains(string(body), "sales_dash") {
		t.Fatalf("list = %d: %s", code, body)
	}
	// Fetch the content back.
	code, body = do(t, http.MethodGet, base, "")
	if code != 200 || !strings.Contains(string(body), "sum_by_region") {
		t.Fatalf("GET = %d: %s", code, body)
	}
	// Run.
	code, body = do(t, http.MethodPost, base+"/run", "")
	if code != 200 {
		t.Fatalf("run = %d: %s", code, body)
	}
	var runResp struct {
		Endpoints []string `json:"endpoints"`
		TasksRun  int      `json:"tasks_run"`
	}
	if err := json.Unmarshal(body, &runResp); err != nil {
		t.Fatal(err)
	}
	if len(runResp.Endpoints) != 1 || runResp.Endpoints[0] != "by_region" {
		t.Errorf("endpoints = %v", runResp.Endpoints)
	}
	// /ds listing (Figure 27).
	code, body = do(t, http.MethodGet, base+"/ds", "")
	if code != 200 || !strings.Contains(string(body), `"by_region"`) {
		t.Fatalf("/ds = %d: %s", code, body)
	}
	// Dataset rows (Figure 28).
	code, body = do(t, http.MethodGet, base+"/ds/by_region", "")
	if code != 200 {
		t.Fatalf("/ds/by_region = %d: %s", code, body)
	}
	var rows []map[string]any
	if err := json.Unmarshal(body, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0]["total"].(float64) != 30 {
		t.Errorf("rows = %v", rows)
	}
	// CSV form.
	code, body = do(t, http.MethodGet, base+"/ds/by_region?format=csv", "")
	if code != 200 || !strings.HasPrefix(string(body), "region,total") {
		t.Fatalf("csv = %d: %s", code, body)
	}
	// Ad-hoc query (Figure 30).
	code, body = do(t, http.MethodGet, base+"/ds/by_region/groupby/region/sum/total", "")
	if code != 200 {
		t.Fatalf("adhoc = %d: %s", code, body)
	}
	// Data explorer (Figure 29).
	code, body = do(t, http.MethodGet, base+"/explore", "")
	if code != 200 || !strings.Contains(string(body), "by_region") {
		t.Fatalf("explore = %d: %s", code, body)
	}
	// Commit log.
	code, body = do(t, http.MethodGet, base+"/log", "")
	if code != 200 || !strings.Contains(string(body), "save sales_dash") {
		t.Fatalf("log = %d: %s", code, body)
	}
}

func TestPutRejectsBadFlowFile(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := do(t, http.MethodPut, ts.URL+"/dashboards/bad", "X:\n  nope: 1\n")
	if code != 422 {
		t.Fatalf("expected 422, got %d: %s", code, body)
	}
	// The rejected save must not create the dashboard.
	code, _ = do(t, http.MethodGet, ts.URL+"/dashboards/bad", "")
	if code != 404 {
		t.Errorf("rejected dashboard exists: %d", code)
	}
}

// A valid save with a lintable mistake still commits, but the response
// carries the advisory findings — the editor's non-blocking warnings.
func TestPutReturnsLintFindings(t *testing.T) {
	_, ts := newTestServer(t)
	flow := strings.Replace(serverFlow, "+D.by_region: D.sales | T.sum_by_region",
		"+D.by_region: D.sales | T.keep | T.sum_by_region", 1) +
		"  keep:\n    type: filter_by\n    filter_expression: amont > 3\n"
	code, body := do(t, http.MethodPut, ts.URL+"/dashboards/warned", flow)
	if code != 200 {
		t.Fatalf("PUT = %d: %s", code, body)
	}
	var resp struct {
		Commit string `json:"commit"`
		Lint   []struct {
			Rule   string `json:"rule"`
			Entity string `json:"entity"`
			Hint   string `json:"hint"`
		} `json:"lint"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Commit == "" {
		t.Fatal("lint findings must not block the commit")
	}
	found := false
	for _, f := range resp.Lint {
		if f.Rule == "FL003" && f.Entity == "T.keep" && strings.Contains(f.Hint, `"amount"`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("PUT response lacks the FL003 finding: %s", body)
	}
	// A clean save carries no lint key at all.
	code, body = do(t, http.MethodPut, ts.URL+"/dashboards/clean", serverFlow)
	if code != 200 || strings.Contains(string(body), `"lint"`) {
		t.Fatalf("clean PUT = %d: %s", code, body)
	}
}

func TestLintRoute(t *testing.T) {
	_, ts := newTestServer(t)
	flow := strings.Replace(serverFlow, "+D.by_region: D.sales | T.sum_by_region",
		"+D.by_region: D.sales | T.keep | T.sum_by_region", 1) +
		"  keep:\n    type: filter_by\n    filter_expression: amont > 3\n"
	if code, body := do(t, http.MethodPut, ts.URL+"/dashboards/lintme", flow); code != 200 {
		t.Fatalf("PUT = %d: %s", code, body)
	}
	code, body := do(t, http.MethodGet, ts.URL+"/dashboards/lintme/lint", "")
	if code != 200 {
		t.Fatalf("GET lint = %d: %s", code, body)
	}
	var resp struct {
		Findings []struct {
			Rule     string `json:"rule"`
			Severity string `json:"severity"`
			Line     int    `json:"line"`
		} `json:"findings"`
		Errors int `json:"errors"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Errors == 0 || len(resp.Findings) == 0 {
		t.Fatalf("lint route reports nothing: %s", body)
	}
	if resp.Findings[0].Rule == "" || resp.Findings[0].Severity == "" || resp.Findings[0].Line == 0 {
		t.Fatalf("finding missing fields: %s", body)
	}
	// Unknown dashboards 404.
	if code, _ := do(t, http.MethodGet, ts.URL+"/dashboards/ghost/lint", ""); code != 404 {
		t.Fatalf("lint of unknown dashboard = %d, want 404", code)
	}
}

func TestRunFailureSurfacesError(t *testing.T) {
	_, ts := newTestServer(t)
	// References a mem source that does not exist.
	flow := strings.Replace(serverFlow, "mem:sales.csv", "mem:missing.csv", 1)
	code, _ := do(t, http.MethodPut, ts.URL+"/dashboards/broken", flow)
	if code != 200 {
		t.Fatal("PUT failed")
	}
	code, body := do(t, http.MethodPost, ts.URL+"/dashboards/broken/run", "")
	if code != 422 || !strings.Contains(string(body), "missing.csv") {
		t.Fatalf("run = %d: %s", code, body)
	}
}

func TestUploadAndUseDictionary(t *testing.T) {
	_, ts := newTestServer(t)
	flow := `
D:
  notes: [body]

D.notes:
  source: data:notes.csv
  format: csv

F:
  +D.tags: D.notes | T.tag | T.count_tags

T:
  tag:
    type: map
    operator: extract
    transform: body
    dict: tags.txt
    output: tag
  count_tags:
    type: groupby
    groupby: [tag]
`
	base := ts.URL + "/dashboards/notes"
	if code, body := do(t, http.MethodPut, base, flow); code != 200 {
		t.Fatalf("PUT = %d: %s", code, body)
	}
	if code, body := do(t, http.MethodPut, base+"/data/tags.txt", "widget,Widget\ngadget,Gadget\n"); code != 200 {
		t.Fatalf("upload = %d: %s", code, body)
	}
	if code, body := do(t, http.MethodPut, base+"/data/notes.csv", "\"bought a widget\"\n\"returned a gadget\"\n\"no tags here\"\n"); code != 200 {
		t.Fatalf("upload notes = %d: %s", code, body)
	}
	if code, body := do(t, http.MethodPost, base+"/run", ""); code != 200 {
		t.Fatalf("run = %d: %s", code, body)
	}
	code, body := do(t, http.MethodGet, base+"/ds/tags", "")
	if code != 200 || !strings.Contains(string(body), "Widget") {
		t.Fatalf("tags = %d: %s", code, body)
	}
}

func TestSharedCatalogEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	flow := serverFlow + "\nD.by_region:\n  publish: region_totals\n"
	if _, err := s.SaveDashboard("pub", "tester", []byte(flow)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("pub"); err != nil {
		t.Fatal(err)
	}
	code, body := do(t, http.MethodGet, ts.URL+"/shared", "")
	if code != 200 || !strings.Contains(string(body), "region_totals") {
		t.Fatalf("shared = %d: %s", code, body)
	}
}

func TestSelectEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	flow := serverFlow + `
W:
  regions:
    type: List
    source: D.by_region
    text: region

  totals:
    type: BarChart
    source: D.by_region | T.pick_region
    x: region
    y: total

T:
  pick_region:
    type: filter_by
    filter_by: [region]
    filter_source: W.regions
    filter_val: [text]

L:
  rows:
    - [span4: W.regions, span8: W.totals]
`
	if _, err := s.SaveDashboard("inter", "tester", []byte(flow)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("inter"); err != nil {
		t.Fatal(err)
	}
	code, body := do(t, http.MethodPost, ts.URL+"/dashboards/inter/select/regions", `{"values":["east"]}`)
	if code != 200 || !strings.Contains(string(body), "totals") {
		t.Fatalf("select = %d: %s", code, body)
	}
	code, body = do(t, http.MethodGet, ts.URL+"/dashboards/inter/html", "")
	if code != 200 || !strings.Contains(string(body), "data-widget=\"totals\"") {
		t.Fatalf("html = %d", code)
	}
	// The bar chart should now only show east.
	d, _ := s.Run("inter") // rerun resets; select again via API on live dashboard
	_ = d
	code, _ = do(t, http.MethodPost, ts.URL+"/dashboards/inter/select/regions", `{"values":["west"]}`)
	if code != 200 {
		t.Fatalf("re-select = %d", code)
	}
}

func TestProfileEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	if _, err := s.SaveDashboard("prof", "tester", []byte(serverFlow)); err != nil {
		t.Fatal(err)
	}
	// Before run: 404-ish error.
	code, _ := do(t, http.MethodGet, ts.URL+"/dashboards/prof/profile", "")
	if code != 404 {
		t.Fatalf("profile before run = %d", code)
	}
	if _, err := s.Run("prof"); err != nil {
		t.Fatal(err)
	}
	code, body := do(t, http.MethodGet, ts.URL+"/dashboards/prof/profile", "")
	if code != 200 || !strings.Contains(string(body), "by_region_profile") {
		t.Fatalf("profile = %d: %s", code, body)
	}
	if !strings.Contains(string(body), "distinct") {
		t.Errorf("profile missing stats columns: %s", body)
	}
}

func TestRunResponseIncludesTimings(t *testing.T) {
	_, ts := newTestServer(t)
	if code, _ := do(t, http.MethodPut, ts.URL+"/dashboards/timed", serverFlow); code != 200 {
		t.Fatal("PUT failed")
	}
	code, body := do(t, http.MethodPost, ts.URL+"/dashboards/timed/run", "")
	if code != 200 || !strings.Contains(string(body), "slowest_stages") {
		t.Fatalf("run = %d: %s", code, body)
	}
}

func TestDeviceParamAndStylesheet(t *testing.T) {
	s, ts := newTestServer(t)
	if _, err := s.SaveDashboard("styled", "tester", []byte(serverFlow+`
W:
  g:
    type: Grid
    source: D.by_region

L:
  rows:
    - [span6: W.g]
`)); err != nil {
		t.Fatal(err)
	}
	s.UploadData("styled", "style.css", []byte(".widget{background:#123}"))
	if _, err := s.Run("styled"); err != nil {
		t.Fatal(err)
	}
	code, body := do(t, http.MethodGet, ts.URL+"/dashboards/styled/html?device=mobile", "")
	if code != 200 || !strings.Contains(string(body), "span12") {
		t.Fatalf("mobile html = %d", code)
	}
	if !strings.Contains(string(body), "background:#123") {
		t.Errorf("uploaded stylesheet not applied")
	}
	// Error payloads carry diagnostics, not raw engine errors.
	flow := strings.Replace(serverFlow, "apply_on: amount", "apply_on: amout", 1)
	if code, _ := do(t, http.MethodPut, ts.URL+"/dashboards/typo", flow); code != 200 {
		t.Fatal("PUT failed")
	}
	code, body = do(t, http.MethodPost, ts.URL+"/dashboards/typo/run", "")
	if code != 422 || !strings.Contains(string(body), "did you mean") {
		t.Fatalf("diagnosed run = %d: %s", code, body)
	}
}

func TestBranchMergeForkOverREST(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/dashboards/collab"
	if code, _ := do(t, http.MethodPut, base, serverFlow); code != 200 {
		t.Fatal("PUT failed")
	}
	// Branch, edit on the branch, diff, merge.
	if code, body := do(t, http.MethodPost, base+"/branches/feature", ""); code != 200 {
		t.Fatalf("branch = %d: %s", code, body)
	}
	edited := serverFlow + "\n  extra:\n    type: distinct\n"
	if code, body := do(t, http.MethodPut, base+"/branches/feature", edited); code != 200 {
		t.Fatalf("branch put = %d: %s", code, body)
	}
	code, body := do(t, http.MethodGet, base+"/diff/feature", "")
	if code != 200 || !strings.Contains(string(body), "+ T.extra") {
		t.Fatalf("diff = %d: %s", code, body)
	}
	code, body = do(t, http.MethodGet, base+"/branches", "")
	if code != 200 || !strings.Contains(string(body), "feature") {
		t.Fatalf("branches = %d: %s", code, body)
	}
	if code, body := do(t, http.MethodPost, base+"/merge/feature", ""); code != 200 {
		t.Fatalf("merge = %d: %s", code, body)
	}
	code, body = do(t, http.MethodGet, base, "")
	if code != 200 || !strings.Contains(string(body), "extra:") {
		t.Fatalf("merged main missing branch content: %s", body)
	}
	// Fork into a new dashboard and run it.
	if code, body := do(t, http.MethodPost, base+"/fork/collab_fork", ""); code != 200 {
		t.Fatalf("fork = %d: %s", code, body)
	}
	if code, body := do(t, http.MethodPost, ts.URL+"/dashboards/collab_fork/run", ""); code != 200 {
		t.Fatalf("fork run = %d: %s", code, body)
	}
	// Forking over an existing dashboard is rejected.
	if code, _ := do(t, http.MethodPost, base+"/fork/collab_fork", ""); code != 409 {
		t.Fatalf("duplicate fork = %d", code)
	}
}

func TestMergeConflictOverREST(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/dashboards/conflict"
	if code, _ := do(t, http.MethodPut, base, serverFlow); code != 200 {
		t.Fatal("PUT failed")
	}
	if code, _ := do(t, http.MethodPost, base+"/branches/b", ""); code != 200 {
		t.Fatal("branch failed")
	}
	// Divergent edits to the same task.
	mainEdit := strings.Replace(serverFlow, "groupby: [region]", "groupby: [product]", 1)
	branchEdit := strings.Replace(serverFlow, "groupby: [region]", "groupby: [region, product]", 1)
	if code, _ := do(t, http.MethodPut, base, mainEdit); code != 200 {
		t.Fatal("main edit failed")
	}
	if code, _ := do(t, http.MethodPut, base+"/branches/b", branchEdit); code != 200 {
		t.Fatal("branch edit failed")
	}
	code, body := do(t, http.MethodPost, base+"/merge/b", "")
	if code != 409 || !strings.Contains(string(body), "T.sum_by_region") {
		t.Fatalf("conflict = %d: %s", code, body)
	}
}

func TestDiscoveryRoutes(t *testing.T) {
	s, ts := newTestServer(t)
	// Publisher dashboard.
	pubFlow := serverFlow + "\nD.by_region:\n  publish: region_totals\n"
	if _, err := s.SaveDashboard("pub", "tester", []byte(pubFlow)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("pub"); err != nil {
		t.Fatal(err)
	}
	// Search by name and by column.
	code, body := do(t, http.MethodGet, ts.URL+"/shared/search?q=region", "")
	if code != 200 || !strings.Contains(string(body), "region_totals") {
		t.Fatalf("search = %d: %s", code, body)
	}
	// A second dashboard whose data shares the region column gets the
	// suggestion.
	if _, err := s.SaveDashboard("consumer", "tester", []byte(serverFlow)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("consumer"); err != nil {
		t.Fatal(err)
	}
	code, body = do(t, http.MethodGet, ts.URL+"/dashboards/consumer/suggest", "")
	if code != 200 || !strings.Contains(string(body), "region_totals") {
		t.Fatalf("suggest = %d: %s", code, body)
	}
	if !strings.Contains(string(body), `"shared_columns":["region"`) {
		t.Errorf("suggestion missing join keys: %s", body)
	}
}

func TestEditorPage(t *testing.T) {
	s, ts := newTestServer(t)
	if _, err := s.SaveDashboard("edit_me", "tester", []byte(serverFlow)); err != nil {
		t.Fatal(err)
	}
	code, body := do(t, http.MethodGet, ts.URL+"/dashboards/edit_me/edit", "")
	if code != 200 {
		t.Fatalf("edit = %d", code)
	}
	page := string(body)
	for _, want := range []string{"sum_by_region", "Save &amp; Run", `const name = "edit_me"`} {
		if !strings.Contains(page, want) {
			t.Errorf("editor page missing %q", want)
		}
	}
	// A fresh name serves an empty editor — the /create flow.
	code, body = do(t, http.MethodGet, ts.URL+"/dashboards/brand_new/edit", "")
	if code != 200 || !strings.Contains(string(body), "brand_new") {
		t.Fatalf("create flow = %d", code)
	}
}

func TestErrorPaths(t *testing.T) {
	s, ts := newTestServer(t)
	// Everything 404s before the dashboard exists / runs.
	for _, path := range []string{
		"/dashboards/ghost", "/dashboards/ghost/ds", "/dashboards/ghost/html",
		"/dashboards/ghost/explore", "/dashboards/ghost/log", "/dashboards/ghost/profile",
		"/dashboards/ghost/branches", "/dashboards/ghost/suggest",
	} {
		if code, _ := do(t, http.MethodGet, ts.URL+path, ""); code != 404 {
			t.Errorf("GET %s = %d, want 404", path, code)
		}
	}
	if _, err := s.SaveDashboard("e", "t", []byte(serverFlow)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("e"); err != nil {
		t.Fatal(err)
	}
	// Unknown dataset and bad aggregate on the ad-hoc path.
	if code, _ := do(t, http.MethodGet, ts.URL+"/dashboards/e/ds/nope", ""); code != 404 {
		t.Errorf("unknown dataset should 404")
	}
	code, body := do(t, http.MethodGet, ts.URL+"/dashboards/e/ds/by_region/groupby/region/p99/total", "")
	if code != 400 || !strings.Contains(string(body), "p99") {
		t.Errorf("bad aggregate = %d: %s", code, body)
	}
	// Malformed selection body.
	if code, _ := do(t, http.MethodPost, ts.URL+"/dashboards/e/select/x", "{not json"); code != 400 {
		t.Errorf("bad json should 400")
	}
	// Selecting an unknown widget.
	if code, _ := do(t, http.MethodPost, ts.URL+"/dashboards/e/select/ghost", `{"values":["a"]}`); code != 400 {
		t.Errorf("unknown widget should 400")
	}
	// Path traversal in uploads.
	if code, _ := do(t, http.MethodPut, ts.URL+"/dashboards/e/data/..%2Fescape", "x"); code != 400 {
		t.Errorf("traversal upload should 400")
	}
	// Branch operations on unknown branches.
	if code, _ := do(t, http.MethodGet, ts.URL+"/dashboards/e/branches/nope", ""); code != 404 {
		t.Errorf("unknown branch should 404")
	}
	if code, _ := do(t, http.MethodPost, ts.URL+"/dashboards/e/merge/nope", ""); code != 409 {
		t.Errorf("merge of unknown branch should conflict")
	}
	// Duplicate branch creation.
	if code, _ := do(t, http.MethodPost, ts.URL+"/dashboards/e/branches/b", ""); code != 200 {
		t.Fatal("branch create failed")
	}
	if code, _ := do(t, http.MethodPost, ts.URL+"/dashboards/e/branches/b", ""); code != 409 {
		t.Errorf("duplicate branch should 409")
	}
	// sbin wire format on the data API.
	code, body = do(t, http.MethodGet, ts.URL+"/dashboards/e/ds/by_region?format=sbin", "")
	if code != 200 || !strings.HasPrefix(string(body), "SBIN\x01") {
		t.Errorf("sbin endpoint = %d, prefix %q", code, string(body[:5]))
	}
}

// TestObservabilityRoutes drives the three tentpole surfaces over REST:
// per-run stats (?full=1), the execution trace (tree and Chrome JSON),
// and the ops meta-dashboard — plus the Prometheus /metrics endpoint.
func TestObservabilityRoutes(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/dashboards/obsd"

	// Before any run, trace and stats are 404s.
	if code, _ := do(t, http.MethodGet, base+"/trace", ""); code != 404 {
		t.Errorf("trace before run = %d, want 404", code)
	}

	if code, body := do(t, http.MethodPut, base, serverFlow); code != 200 {
		t.Fatalf("PUT = %d: %s", code, body)
	}
	if code, body := do(t, http.MethodPost, base+"/run", ""); code != 200 {
		t.Fatalf("run = %d: %s", code, body)
	}

	// Stats without ?full=1 omit the per-stage timings.
	code, body := do(t, http.MethodGet, base+"/stats", "")
	if code != 200 {
		t.Fatalf("stats = %d: %s", code, body)
	}
	var brief map[string]any
	if err := json.Unmarshal(body, &brief); err != nil {
		t.Fatal(err)
	}
	if _, ok := brief["timings"]; ok {
		t.Error("brief stats include full timings")
	}
	if _, ok := brief["slowest_stages"]; !ok {
		t.Error("stats missing slowest_stages")
	}

	// ?full=1 includes every stage with the satellite fields.
	code, body = do(t, http.MethodGet, base+"/stats?full=1", "")
	if code != 200 {
		t.Fatalf("stats?full=1 = %d: %s", code, body)
	}
	var full struct {
		Timings []struct {
			Output      string `json:"output"`
			Stage       string `json:"stage"`
			RowsIn      int    `json:"rows_in"`
			QueueWaitUS int64  `json:"queue_wait_us"`
			Plan        string `json:"plan"`
		} `json:"timings"`
	}
	if err := json.Unmarshal(body, &full); err != nil {
		t.Fatal(err)
	}
	if len(full.Timings) == 0 {
		t.Fatalf("full stats have no timings: %s", body)
	}
	var sawRowsIn, sawPlan bool
	for _, st := range full.Timings {
		if st.RowsIn > 0 {
			sawRowsIn = true
		}
		if st.Plan != "" {
			sawPlan = true
		}
	}
	if !sawRowsIn {
		t.Errorf("no stage reports rows_in: %s", body)
	}
	if !sawPlan {
		t.Errorf("no stage carries a plan tag: %s", body)
	}

	// The trace tree names the run and the executed node.
	code, body = do(t, http.MethodGet, base+"/trace", "")
	if code != 200 || !strings.Contains(string(body), "run obsd") ||
		!strings.Contains(string(body), "node D.by_region") {
		t.Errorf("trace = %d: %s", code, body)
	}

	// The Chrome export is a JSON array of complete events.
	code, body = do(t, http.MethodGet, base+"/trace?format=chrome", "")
	if code != 200 {
		t.Fatalf("chrome trace = %d: %s", code, body)
	}
	var events []map[string]any
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatalf("chrome trace is not JSON: %v\n%s", err, body)
	}
	if len(events) == 0 || events[0]["ph"] != "X" {
		t.Errorf("chrome events = %v", events)
	}

	// The ops meta-dashboard reports the run's own telemetry.
	code, body = do(t, http.MethodGet, base+"/ops", "")
	if code != 200 || !strings.Contains(string(body), "== summary ==") ||
		!strings.Contains(string(body), "tasks_run") {
		t.Errorf("ops = %d: %s", code, body)
	}
	code, body = do(t, http.MethodGet, base+"/ops?format=html", "")
	if code != 200 || !strings.Contains(string(body), "<html") {
		t.Errorf("ops html = %d", code)
	}

	// /metrics exposes the HTTP middleware and engine instrument
	// families in Prometheus text format.
	code, body = do(t, http.MethodGet, ts.URL+"/metrics", "")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE si_http_requests_total counter",
		"# TYPE si_http_request_duration_seconds histogram",
		"# TYPE si_http_in_flight_requests gauge",
		`route="POST /dashboards/{name}/run"`,
		"# TYPE si_runs_total counter",
		"# TYPE si_engine_stage_duration_seconds histogram",
		`si_runs_total{status="ok"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestExplainEndpoint covers GET /dashboards/{name}/explain in both
// modes: compile-on-demand for a dashboard that has never run, and the
// live compilation (with its history-informed plan) after a run.
func TestExplainEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/dashboards/sales_dash"

	code, body := do(t, http.MethodGet, base+"/explain", "")
	if code != 404 {
		t.Fatalf("explain before create = %d, want 404: %s", code, body)
	}
	if code, body = do(t, http.MethodPut, base, serverFlow); code != 200 {
		t.Fatalf("PUT = %d: %s", code, body)
	}

	// Never run: the latest commit compiles on demand. The unused
	// product column makes a visible projection-pushdown decision.
	code, body = do(t, http.MethodGet, base+"/explain", "")
	if code != 200 {
		t.Fatalf("explain = %d: %s", code, body)
	}
	var resp struct {
		Dashboard string `json:"dashboard"`
		Text      string `json:"text"`
		Plan      struct {
			Nodes map[string]json.RawMessage `json:"nodes"`
			Order []string                   `json:"order"`
		} `json:"plan"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("explain response not JSON: %v\n%s", err, body)
	}
	if resp.Dashboard != "sales_dash" || len(resp.Plan.Order) == 0 {
		t.Errorf("explain response = %+v", resp)
	}
	if !strings.Contains(resp.Text, "D.sales  (source)") ||
		!strings.Contains(resp.Text, "pushdown skip columns: product") {
		t.Errorf("plan text missing pushdown decision:\n%s", resp.Text)
	}

	// After a run the live dashboard serves the plan.
	if code, body = do(t, http.MethodPost, base+"/run", ""); code != 200 {
		t.Fatalf("run = %d: %s", code, body)
	}
	code, body = do(t, http.MethodGet, base+"/explain", "")
	if code != 200 || !strings.Contains(string(body), "pushdown skip columns: product") {
		t.Errorf("explain after run = %d: %s", code, body)
	}
}
