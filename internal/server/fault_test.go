package server

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"shareinsights/internal/connector"
	"shareinsights/internal/dashboard"
	"shareinsights/internal/flowfile"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
	"shareinsights/internal/task"
)

// switchProtocol serves a payload until told to fail.
type switchProtocol struct {
	payload []byte
	fail    atomic.Bool
}

func (p *switchProtocol) Fetch(*flowfile.DataDef) ([]byte, error) {
	if p.fail.Load() {
		return nil, errors.New("upstream source offline")
	}
	return p.payload, nil
}

const staleFlow = `
D:
  sales: [region, product, amount]
  by_region: [region, total]

D.sales:
  source: sales.csv
  protocol: switch
  format: csv
  on_error: stale
  retries: 0

F:
  D.by_region: D.sales | T.sum_by_region

  D.by_region:
    endpoint: true

T:
  sum_by_region:
    type: groupby
    groupby: [region]
    aggregates:
      - operator: sum
        apply_on: amount
        out_field: total
`

func newFaultServer(t *testing.T) (*switchProtocol, *Server, *httptest.Server) {
	t.Helper()
	proto := &switchProtocol{payload: []byte(salesCSV)}
	p := dashboard.NewPlatform()
	p.Connectors = connector.NewRegistry(connector.Options{})
	if err := p.Connectors.RegisterProtocol("switch", proto); err != nil {
		t.Fatal(err)
	}
	s := New(p)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return proto, s, ts
}

// TestStaleDegradationRoundTripsThroughHealth pins the acceptance
// criterion end to end over HTTP: a failing source with on_error: stale
// completes the run on last-good data, /health reports degraded, and
// /metrics counts the degraded run.
func TestStaleDegradationRoundTripsThroughHealth(t *testing.T) {
	proto, _, ts := newFaultServer(t)
	if code, body := do(t, "PUT", ts.URL+"/dashboards/sales", staleFlow); code != 200 {
		t.Fatalf("put: %d %s", code, body)
	}
	if code, body := do(t, "POST", ts.URL+"/dashboards/sales/run", ""); code != 200 {
		t.Fatalf("healthy run: %d %s", code, body)
	}
	code, body := do(t, "GET", ts.URL+"/dashboards/sales/health", "")
	if code != 200 || !strings.Contains(string(body), `"status":"ok"`) {
		t.Fatalf("healthy health: %d %s", code, body)
	}
	// The source goes down between runs.
	proto.fail.Store(true)
	if code, body := do(t, "POST", ts.URL+"/dashboards/sales/run", ""); code != 200 {
		t.Fatalf("degraded run should still complete: %d %s", code, body)
	}
	code, body = do(t, "GET", ts.URL+"/dashboards/sales/health", "")
	if code != 200 {
		t.Fatalf("health: %d %s", code, body)
	}
	var h struct {
		Status  string `json:"status"`
		Sources []struct {
			Name   string `json:"name"`
			Status string `json:"status"`
			Mode   string `json:"mode"`
		} `json:"sources"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || len(h.Sources) != 1 || h.Sources[0].Status != "stale" {
		t.Fatalf("health = %s", body)
	}
	// The degraded run still serves the last-good endpoint data.
	code, body = do(t, "GET", ts.URL+"/dashboards/sales/ds/by_region", "")
	if code != 200 || !strings.Contains(string(body), "east") {
		t.Fatalf("degraded endpoint data: %d %s", code, body)
	}
	code, body = do(t, "GET", ts.URL+"/metrics", "")
	if code != 200 || !strings.Contains(string(body), "si_runs_degraded_total 1") {
		t.Fatalf("metrics missing degraded-run counter: %d", code)
	}
	// Run-summary status also reports it.
	code, body = do(t, "GET", ts.URL+"/dashboards/sales/stats", "")
	if code != 200 || !strings.Contains(string(body), `"status":"degraded"`) {
		t.Fatalf("stats status: %d %s", code, body)
	}
}

func TestHealthBeforeRunIs404(t *testing.T) {
	_, _, ts := newFaultServer(t)
	if code, _ := do(t, "PUT", ts.URL+"/dashboards/sales", staleFlow); code != 200 {
		t.Fatal("put failed")
	}
	if code, _ := do(t, "GET", ts.URL+"/dashboards/sales/health", ""); code != 404 {
		t.Fatalf("health before run = %d, want 404", code)
	}
}

// crashSpec panics during execution.
type crashSpec struct{}

func (crashSpec) Type() string                                { return "crash" }
func (crashSpec) Out(in []task.Input) (*schema.Schema, error) { return in[0].Schema, nil }
func (crashSpec) Exec(*task.Env, []*table.Table, []string) (*table.Table, error) {
	panic("crash: user task bug")
}

const crashFlow = `
D:
  sales: [region, product, amount]
  out: [region, product, amount]

D.sales:
  source: mem:sales.csv
  format: csv

F:
  D.out: D.sales | T.explode

  D.out:
    endpoint: true

T:
  explode:
    type: crash
`

// TestPanickingTaskNeverKillsServer pins the acceptance criterion: a
// run whose task panics returns an error response, the process (and the
// test binary standing in for it) survives, and the panic's stage error
// plus stack are served by /stats and /health explains the failure.
func TestPanickingTaskNeverKillsServer(t *testing.T) {
	p := dashboard.NewPlatform()
	p.Connectors = connector.NewRegistry(connector.Options{
		Mem: map[string][]byte{"sales.csv": []byte(salesCSV)},
	})
	if err := p.Tasks.Register("crash", func(*flowfile.Node) (task.Spec, error) { return crashSpec{}, nil }); err != nil {
		t.Fatal(err)
	}
	s := New(p)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if code, body := do(t, "PUT", ts.URL+"/dashboards/boom", crashFlow); code != 200 {
		t.Fatalf("put: %d %s", code, body)
	}
	code, body := do(t, "POST", ts.URL+"/dashboards/boom/run", "")
	if code != 422 {
		t.Fatalf("panicking run = %d %s, want 422", code, body)
	}
	// The server is still alive and can explain what happened.
	code, body = do(t, "GET", ts.URL+"/dashboards/boom/health", "")
	if code != 200 || !strings.Contains(string(body), `"status":"error"`) {
		t.Fatalf("health after panic: %d %s", code, body)
	}
	code, body = do(t, "GET", ts.URL+"/dashboards/boom/stats", "")
	if code != 200 || !strings.Contains(string(body), `"panic":true`) || !strings.Contains(string(body), "crash: user task bug") {
		t.Fatalf("stats after panic: %d %s", code, body)
	}
	// And it can still run healthy dashboards.
	healthy := strings.Replace(crashFlow, "type: crash", "type: limit\n    limit: 2", 1)
	if code, body := do(t, "PUT", ts.URL+"/dashboards/ok", healthy); code != 200 {
		t.Fatalf("put healthy: %d %s", code, body)
	}
	if code, body := do(t, "POST", ts.URL+"/dashboards/ok/run", ""); code != 200 {
		t.Fatalf("healthy run after panic: %d %s", code, body)
	}
}

// TestRetriesSurfaceInHealth checks the retry totals ride through the
// health endpoint.
func TestRetriesSurfaceInHealth(t *testing.T) {
	proto, _, ts := newFaultServer(t)
	flow := strings.Replace(staleFlow, "retries: 0", "retries: 2", 1)
	if code, _ := do(t, "PUT", ts.URL+"/dashboards/sales", flow); code != 200 {
		t.Fatal("put failed")
	}
	proto.fail.Store(false)
	if code, body := do(t, "POST", ts.URL+"/dashboards/sales/run", ""); code != 200 {
		t.Fatalf("run: %d %s", code, body)
	}
	code, body := do(t, "GET", ts.URL+"/dashboards/sales/health", "")
	if code != 200 || !strings.Contains(string(body), `"retries":0`) {
		t.Fatalf("health: %d %s", code, body)
	}
}
