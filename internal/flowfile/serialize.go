package flowfile

import (
	"fmt"
	"sort"
	"strings"
)

// String serializes the flow file back to canonical source text. The
// canonical form round-trips through Parse and is what the VCS stores,
// diffs and merges — "since the entire data pipeline is represented as a
// single text file, it makes it very amenable to manage via a source
// control system" (§4.5.1).
func (f *File) String() string {
	var b strings.Builder
	if len(f.DataOrder) > 0 {
		b.WriteString("D:\n")
		for _, name := range f.DataOrder {
			d := f.Data[name]
			switch {
			case d.Schema != nil:
				fmt.Fprintf(&b, "  %s: %s\n", name, d.Schema)
			default:
				// Schema-less declarations survive as bare entries so
				// canonicalization is a fixed point even for objects
				// that only exist as declarations.
				fmt.Fprintf(&b, "  %s:\n", name)
			}
		}
		// Detail blocks follow the schema listing, as in the paper.
		for _, name := range f.DataOrder {
			d := f.Data[name]
			if !d.hasDetails() {
				continue
			}
			fmt.Fprintf(&b, "\nD.%s:\n", name)
			for _, k := range d.PropOrder {
				fmt.Fprintf(&b, "  %s: %s\n", k, quoteIfNeeded(d.Props[k]))
			}
			if d.Endpoint {
				b.WriteString("  endpoint: true\n")
			}
			if d.Publish != "" {
				fmt.Fprintf(&b, "  publish: %s\n", d.Publish)
			}
		}
		b.WriteString("\n")
	}
	if len(f.Flows) > 0 {
		b.WriteString("F:\n")
		for _, fl := range f.Flows {
			fmt.Fprintf(&b, "  %s\n", fl)
		}
		b.WriteString("\n")
	}
	if len(f.TaskOrder) > 0 {
		b.WriteString("T:\n")
		for _, name := range f.TaskOrder {
			writeNodeBlock(&b, name, f.Tasks[name].Config, 1)
		}
		b.WriteString("\n")
	}
	if len(f.WidgetOrder) > 0 {
		b.WriteString("W:\n")
		for _, name := range f.WidgetOrder {
			writeNodeBlock(&b, name, f.Widgets[name].Config, 1)
		}
		b.WriteString("\n")
	}
	if f.Layout != nil {
		b.WriteString("L:\n")
		if f.Layout.Description != "" {
			fmt.Fprintf(&b, "  description: %s\n", quoteIfNeeded(f.Layout.Description))
		}
		if len(f.Layout.Rows) > 0 {
			b.WriteString("  rows:\n")
			for _, row := range f.Layout.Rows {
				cells := make([]string, len(row.Cells))
				for i, c := range row.Cells {
					cells[i] = fmt.Sprintf("span%d: W.%s", c.Span, c.Widget)
				}
				fmt.Fprintf(&b, "    - [%s]\n", strings.Join(cells, ", "))
			}
		}
	}
	return b.String()
}

func (d *DataDef) hasDetails() bool {
	return len(d.Props) > 0 || d.Endpoint || d.Publish != ""
}

// writeNodeBlock serializes a generic node under "name:" at the given
// indent level (2 spaces per level).
func writeNodeBlock(b *strings.Builder, name string, n *Node, level int) {
	pad := strings.Repeat("  ", level)
	switch n.Kind {
	case ScalarNode:
		fmt.Fprintf(b, "%s%s: %s\n", pad, name, quoteIfNeeded(n.Scalar))
	case ListNode:
		if inline, ok := inlineList(n); ok {
			fmt.Fprintf(b, "%s%s: %s\n", pad, name, inline)
			return
		}
		fmt.Fprintf(b, "%s%s:\n", pad, name)
		for _, it := range n.Items {
			writeListItem(b, it, level+1)
		}
	case MapNode:
		fmt.Fprintf(b, "%s%s:\n", pad, name)
		for _, e := range n.Entries {
			writeNodeBlock(b, e.Key, e.Value, level+1)
		}
	}
}

func writeListItem(b *strings.Builder, n *Node, level int) {
	pad := strings.Repeat("  ", level)
	switch n.Kind {
	case ScalarNode:
		fmt.Fprintf(b, "%s- %s\n", pad, quoteIfNeeded(n.Scalar))
	case ListNode:
		if inline, ok := inlineList(n); ok {
			fmt.Fprintf(b, "%s- %s\n", pad, inline)
			return
		}
		fmt.Fprintf(b, "%s-\n", pad)
		for _, it := range n.Items {
			writeListItem(b, it, level+1)
		}
	case MapNode:
		for i, e := range n.Entries {
			k, child := e.Key, e.Value
			if i == 0 {
				if child.Kind == ScalarNode {
					fmt.Fprintf(b, "%s- %s: %s\n", pad, k, quoteIfNeeded(child.Scalar))
					continue
				}
				fmt.Fprintf(b, "%s- %s:\n", pad, k)
				writeChildBlock(b, child, level+2)
				continue
			}
			writeNodeBlock(b, k, child, level+1)
		}
	}
}

func writeChildBlock(b *strings.Builder, n *Node, level int) {
	switch n.Kind {
	case MapNode:
		for _, e := range n.Entries {
			writeNodeBlock(b, e.Key, e.Value, level)
		}
	case ListNode:
		for _, it := range n.Items {
			writeListItem(b, it, level)
		}
	}
}

// inlineList renders a list of scalars inline when short enough.
func inlineList(n *Node) (string, bool) {
	parts := make([]string, 0, len(n.Items))
	total := 0
	for _, it := range n.Items {
		if it.Kind != ScalarNode {
			return "", false
		}
		q := quoteIfNeeded(it.Scalar)
		total += len(q) + 2
		parts = append(parts, q)
	}
	if total > 76 {
		return "", false
	}
	return "[" + strings.Join(parts, ", ") + "]", true
}

// quoteIfNeeded quotes a scalar whose text would not re-scan as itself.
func quoteIfNeeded(s string) string {
	if s == "" {
		return "''"
	}
	if strings.ContainsAny(s, ":#[](),'\"") || s != strings.TrimSpace(s) {
		return "'" + strings.ReplaceAll(s, "'", `\'`) + "'"
	}
	return s
}

// TaskText returns the canonical text of one task definition ("" if
// absent). The VCS merge and the incremental-execution cache use it as
// the task's content signature.
func (f *File) TaskText(name string) string {
	t, ok := f.Tasks[name]
	if !ok {
		return ""
	}
	var b strings.Builder
	writeNodeBlock(&b, name, t.Config, 0)
	return b.String()
}

// Sections lists the section tags present in the file, in canonical
// order. The VCS merge works section-by-section.
func (f *File) Sections() []string {
	var out []string
	if len(f.Data) > 0 {
		out = append(out, "D")
	}
	if len(f.Flows) > 0 {
		out = append(out, "F")
	}
	if len(f.Tasks) > 0 {
		out = append(out, "T")
	}
	if len(f.Widgets) > 0 {
		out = append(out, "W")
	}
	if f.Layout != nil {
		out = append(out, "L")
	}
	return out
}

// SortedDataNames returns data object names sorted alphabetically;
// reports and the REST /ds listing use it for stable output.
func (f *File) SortedDataNames() []string {
	names := make([]string, 0, len(f.Data))
	for n := range f.Data {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
