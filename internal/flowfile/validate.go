package flowfile

import (
	"fmt"
	"strings"
)

// ValidationError collects all problems found in a flow file so users see
// every issue at once — the paper's §5.2 learnings call out error
// reporting as the platform's weakest point, so validation is thorough
// and names the offending section entries.
type ValidationError struct {
	// Problems are the individual findings.
	Problems []string
}

// Error implements error.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("flow file invalid: %s", strings.Join(e.Problems, "; "))
}

func (e *ValidationError) add(format string, args ...any) {
	e.Problems = append(e.Problems, fmt.Sprintf(format, args...))
}

// Validate cross-checks the sections of the file:
//
//   - every task referenced from a flow or widget source exists in T,
//   - every data object referenced from a flow or widget source is
//     declared, produced by a flow, or plausibly a shared (published)
//     object when allowShared is true,
//   - filter tasks that name a filter_source widget reference a widget
//     that exists,
//   - every layout cell references a widget,
//   - no data object is produced by two flows.
//
// Dangling references to shared objects can only be resolved against the
// platform catalog at compile time, so Validate with allowShared=true is
// the editor-save check and the dashboard compiler re-checks strictly.
func (f *File) Validate(allowShared bool) error {
	e := &ValidationError{}
	produced := map[string]int{}
	for _, fl := range f.Flows {
		for _, out := range fl.Outputs {
			produced[out.Name]++
			if produced[out.Name] > 1 {
				e.add("data object D.%s is produced by more than one flow", out.Name)
			}
		}
		for _, t := range fl.Pipeline.Tasks {
			if _, ok := f.Tasks[t.Name]; !ok {
				e.add("flow for %s references undefined task T.%s", fl.Outputs[0], t.Name)
			}
		}
	}
	// A data object is locally resolvable if it has source details, a
	// declared schema (inline/static data) or is produced by a flow.
	resolvable := func(name string) bool {
		d, ok := f.Data[name]
		if ok && (d.Schema != nil || d.Prop("source") != "" || d.Prop("protocol") != "" || produced[name] > 0) {
			// A declared schema is enough: the object binds to an
			// uploaded data file or connector at compile time (§4.3.2).
			return true
		}
		return allowShared
	}
	for _, fl := range f.Flows {
		for _, in := range fl.Pipeline.Inputs {
			if !resolvable(in.Name) {
				e.add("flow for %s reads D.%s which has no source, producing flow, or shared publication", fl.Outputs[0], in.Name)
			}
		}
	}
	for _, name := range f.WidgetOrder {
		w := f.Widgets[name]
		if w.Source != nil {
			for _, in := range w.Source.Inputs {
				if !resolvable(in.Name) {
					e.add("widget W.%s reads D.%s which is not resolvable", name, in.Name)
				}
			}
			for _, t := range w.Source.Tasks {
				if _, ok := f.Tasks[t.Name]; !ok {
					e.add("widget W.%s references undefined task T.%s", name, t.Name)
				}
			}
		}
	}
	// Interaction tasks may name widgets as filter sources (§3.5.1).
	for _, name := range f.TaskOrder {
		t := f.Tasks[name]
		if src := t.Config.Str("filter_source"); src != "" {
			ref, err := ParseRef(src)
			if err != nil {
				e.add("task T.%s: bad filter_source %q", name, src)
				continue
			}
			if ref.Section == "W" {
				if _, ok := f.Widgets[ref.Name]; !ok {
					e.add("task T.%s filter_source references undefined widget W.%s", name, ref.Name)
				}
			}
		}
	}
	if f.Layout != nil {
		for i, row := range f.Layout.Rows {
			span := 0
			for _, cell := range row.Cells {
				span += cell.Span
				if _, ok := f.Widgets[cell.Widget]; !ok {
					e.add("layout row %d references undefined widget W.%s", i+1, cell.Widget)
				}
			}
			if span > 12 {
				e.add("layout row %d spans %d columns (max 12)", i+1, span)
			}
		}
	}
	if len(e.Problems) > 0 {
		return e
	}
	return nil
}

// ProducedBy returns the flow that produces the named data object, or nil.
func (f *File) ProducedBy(name string) *Flow {
	for _, fl := range f.Flows {
		for _, out := range fl.Outputs {
			if out.Name == name {
				return fl
			}
		}
	}
	return nil
}

// SharedInputs lists the data objects the file reads but neither sources
// nor produces locally — these must come from the platform's shared
// catalog (§3.7.2 data-consumption mode).
func (f *File) SharedInputs() []string {
	produced := map[string]bool{}
	for _, fl := range f.Flows {
		for _, out := range fl.Outputs {
			produced[out.Name] = true
		}
	}
	need := map[string]bool{}
	collect := func(p *Pipeline) {
		for _, in := range p.Inputs {
			d := f.Data[in.Name]
			local := produced[in.Name] || (d != nil && (d.Prop("source") != "" || d.Prop("protocol") != ""))
			if !local {
				need[in.Name] = true
			}
		}
	}
	for _, fl := range f.Flows {
		collect(fl.Pipeline)
	}
	for _, name := range f.WidgetOrder {
		if w := f.Widgets[name]; w.Source != nil {
			collect(w.Source)
		}
	}
	out := make([]string, 0, len(need))
	for _, name := range f.DataOrder {
		if need[name] {
			out = append(out, name)
		}
	}
	for name := range need {
		if _, declared := f.Data[name]; !declared {
			out = append(out, name)
		}
	}
	return out
}
