package flowfile

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Problem is one validation finding with the source line it refers to —
// the line of the offending flow, task, widget or layout row, so the
// editor and the lint report render validation and analysis findings
// uniformly.
type Problem struct {
	// Line is the 1-based source line (0 when unknown).
	Line int
	// Message describes the problem in flow-file vocabulary.
	Message string
	// Code classifies problems that downstream reporters (flowlint)
	// re-report under a dedicated rule, so they can suppress the generic
	// copy without matching message text. "" for everything else.
	Code string
}

// Problem codes. A code marks a class of structural problem that a
// specific flowlint rule re-reports with hints (FL042, FL043).
const (
	// ProblemResilience marks bad on_error/timeout/retries details.
	ProblemResilience = "resilience"
	// ProblemColumnar marks a bad columnar: value.
	ProblemColumnar = "columnar"
	// ProblemCache marks bad cache:/max_rows admission details.
	ProblemCache = "cache"
)

// String renders the problem with its line prefix.
func (p Problem) String() string {
	if p.Line > 0 {
		return fmt.Sprintf("line %d: %s", p.Line, p.Message)
	}
	return p.Message
}

// ValidationError collects all problems found in a flow file so users see
// every issue at once — the paper's §5.2 learnings call out error
// reporting as the platform's weakest point, so validation is thorough
// and names the offending section entries.
type ValidationError struct {
	// Problems are the individual findings.
	Problems []Problem
}

// Error implements error.
func (e *ValidationError) Error() string {
	msgs := make([]string, len(e.Problems))
	for i, p := range e.Problems {
		msgs[i] = p.String()
	}
	return fmt.Sprintf("flow file invalid: %s", strings.Join(msgs, "; "))
}

func (e *ValidationError) add(line int, format string, args ...any) {
	e.Problems = append(e.Problems, Problem{Line: line, Message: fmt.Sprintf(format, args...)})
}

// addCoded records a problem carrying a classification code.
func (e *ValidationError) addCoded(code string, line int, format string, args ...any) {
	e.Problems = append(e.Problems, Problem{Line: line, Message: fmt.Sprintf(format, args...), Code: code})
}

// label names a flow by its first output for messages, guarding against
// programmatically built flows with no outputs (the parser always
// produces at least one, but Validate must not panic on any File).
func (fl *Flow) label() string {
	if len(fl.Outputs) == 0 {
		return "(no outputs)"
	}
	return fl.Outputs[0].String()
}

// Validate cross-checks the sections of the file:
//
//   - every flow has at least one output and a pipeline,
//   - every task referenced from a flow or widget source exists in T,
//   - every data object referenced from a flow or widget source is
//     declared, produced by a flow, or plausibly a shared (published)
//     object when allowShared is true,
//   - filter tasks that name a filter_source widget reference a widget
//     that exists,
//   - every layout cell references a widget,
//   - no data object is produced by two flows,
//   - resilience details are well-formed: on_error is fail, stale or
//     empty; timeout parses as a duration; retries is a non-negative
//     integer (see docs/RESILIENCE.md).
//
// Dangling references to shared objects can only be resolved against the
// platform catalog at compile time, so Validate with allowShared=true is
// the editor-save check and the dashboard compiler re-checks strictly.
func (f *File) Validate(allowShared bool) error {
	e := &ValidationError{}
	produced := map[string]int{}
	for _, fl := range f.Flows {
		if len(fl.Outputs) == 0 {
			e.add(fl.Line, "flow has no output data objects")
		}
		if fl.Pipeline == nil {
			e.add(fl.Line, "flow for %s has no pipeline", fl.label())
			continue
		}
		for _, out := range fl.Outputs {
			produced[out.Name]++
			if produced[out.Name] > 1 {
				e.add(fl.Line, "data object D.%s is produced by more than one flow", out.Name)
			}
		}
		for _, t := range fl.Pipeline.Tasks {
			if _, ok := f.Tasks[t.Name]; !ok {
				e.add(fl.Line, "flow for %s references undefined task T.%s", fl.label(), t.Name)
			}
		}
	}
	// Resilience details steer run-time degradation (docs/RESILIENCE.md);
	// a typo here would otherwise surface only mid-outage, exactly when
	// the dashboard owner can least afford to debug it.
	for _, name := range f.DataOrder {
		d := f.Data[name]
		if m := d.Prop("on_error"); m != "" && m != "fail" && m != "stale" && m != "empty" {
			e.addCoded(ProblemResilience, d.Line, "data object D.%s: on_error must be fail, stale or empty (got %q)", name, m)
		}
		if v := d.Prop("timeout"); v != "" {
			if dur, err := time.ParseDuration(v); err != nil {
				e.addCoded(ProblemResilience, d.Line, "data object D.%s: timeout %q is not a duration (try 30s or 2m)", name, v)
			} else if dur <= 0 {
				e.addCoded(ProblemResilience, d.Line, "data object D.%s: timeout must be positive (got %q)", name, v)
			}
		}
		if v := d.Prop("retries"); v != "" {
			if n, err := strconv.Atoi(v); err != nil || n < 0 {
				e.addCoded(ProblemResilience, d.Line, "data object D.%s: retries must be a non-negative integer (got %q)", name, v)
			}
		}
		// The columnar detail steers the batch engine's vectorized
		// execution planner (docs/ENGINE.md).
		if v := d.Prop("columnar"); v != "" && v != "auto" && v != "on" && v != "off" {
			e.addCoded(ProblemColumnar, d.Line, "data object D.%s: columnar must be auto, on or off (got %q)", name, v)
		}
		// Admission details steer the serving layer's result cache and
		// per-run budgets (docs/SERVING.md). A typo silently disables the
		// protection — an always-cold cache or an unbounded run.
		if v := d.Prop("cache"); v != "" && v != "on" && v != "off" {
			e.addCoded(ProblemCache, d.Line, "data object D.%s: cache must be on or off (got %q)", name, v)
		}
		if v := d.Prop("max_rows"); v != "" {
			if n, err := strconv.Atoi(v); err != nil || n <= 0 {
				e.addCoded(ProblemCache, d.Line, "data object D.%s: max_rows must be a positive integer (got %q)", name, v)
			}
		}
	}
	// A data object is locally resolvable if it has source details, a
	// declared schema (inline/static data) or is produced by a flow.
	resolvable := func(name string) bool {
		d, ok := f.Data[name]
		if ok && (d.Schema != nil || d.Prop("source") != "" || d.Prop("protocol") != "" || produced[name] > 0) {
			// A declared schema is enough: the object binds to an
			// uploaded data file or connector at compile time (§4.3.2).
			return true
		}
		return allowShared
	}
	for _, fl := range f.Flows {
		if fl.Pipeline == nil {
			continue
		}
		for _, in := range fl.Pipeline.Inputs {
			if !resolvable(in.Name) {
				e.add(fl.Line, "flow for %s reads D.%s which has no source, producing flow, or shared publication", fl.label(), in.Name)
			}
		}
	}
	for _, name := range f.WidgetOrder {
		w := f.Widgets[name]
		if w.Source != nil {
			for _, in := range w.Source.Inputs {
				if !resolvable(in.Name) {
					e.add(w.Line, "widget W.%s reads D.%s which is not resolvable", name, in.Name)
				}
			}
			for _, t := range w.Source.Tasks {
				if _, ok := f.Tasks[t.Name]; !ok {
					e.add(w.Line, "widget W.%s references undefined task T.%s", name, t.Name)
				}
			}
		}
	}
	// Interaction tasks may name widgets as filter sources (§3.5.1).
	for _, name := range f.TaskOrder {
		t := f.Tasks[name]
		if src := t.Config.Str("filter_source"); src != "" {
			ref, err := ParseRef(src)
			if err != nil {
				e.add(t.Line, "task T.%s: bad filter_source %q", name, src)
				continue
			}
			if ref.Section == "W" {
				if _, ok := f.Widgets[ref.Name]; !ok {
					e.add(t.Line, "task T.%s filter_source references undefined widget W.%s", name, ref.Name)
				}
			}
		}
	}
	if f.Layout != nil {
		for i, row := range f.Layout.Rows {
			span := 0
			for _, cell := range row.Cells {
				span += cell.Span
				if _, ok := f.Widgets[cell.Widget]; !ok {
					e.add(f.Layout.Line, "layout row %d references undefined widget W.%s", i+1, cell.Widget)
				}
			}
			if span > 12 {
				e.add(f.Layout.Line, "layout row %d spans %d columns (max 12)", i+1, span)
			}
		}
	}
	if len(e.Problems) > 0 {
		return e
	}
	return nil
}

// ProducedBy returns the flow that produces the named data object, or nil.
func (f *File) ProducedBy(name string) *Flow {
	for _, fl := range f.Flows {
		for _, out := range fl.Outputs {
			if out.Name == name {
				return fl
			}
		}
	}
	return nil
}

// SharedInputs lists the data objects the file reads but neither sources
// nor produces locally — these must come from the platform's shared
// catalog (§3.7.2 data-consumption mode).
func (f *File) SharedInputs() []string {
	produced := map[string]bool{}
	for _, fl := range f.Flows {
		for _, out := range fl.Outputs {
			produced[out.Name] = true
		}
	}
	need := map[string]bool{}
	collect := func(p *Pipeline) {
		if p == nil {
			return
		}
		for _, in := range p.Inputs {
			d := f.Data[in.Name]
			local := produced[in.Name] || (d != nil && (d.Prop("source") != "" || d.Prop("protocol") != ""))
			if !local {
				need[in.Name] = true
			}
		}
	}
	for _, fl := range f.Flows {
		collect(fl.Pipeline)
	}
	for _, name := range f.WidgetOrder {
		if w := f.Widgets[name]; w.Source != nil {
			collect(w.Source)
		}
	}
	out := make([]string, 0, len(need))
	for _, name := range f.DataOrder {
		if need[name] {
			out = append(out, name)
		}
	}
	for name := range need {
		if _, declared := f.Data[name]; !declared {
			out = append(out, name)
		}
	}
	return out
}
