package flowfile

import (
	"fmt"
	"strconv"
	"strings"

	"shareinsights/internal/schema"
)

// Parse parses flow-file source text into the typed AST.
//
// The top level is a sequence of sections:
//
//	D:        data objects (schemas and/or source details)
//	F:        flows
//	T:        tasks
//	W:        widgets
//	L:        layout
//	D.name:   data details for one object (the grammar's dataDetailsSection)
//
// Sections may repeat and interleave; later entries extend earlier ones.
func Parse(name, src string) (*File, error) {
	root, err := parseSource(src)
	if err != nil {
		return nil, err
	}
	f := NewFile(name)
	for _, e := range root.Entries {
		key, node := e.Key, e.Value
		switch {
		case key == "D":
			if err := f.decodeDataSection(node); err != nil {
				return nil, err
			}
		case key == "F":
			if err := f.decodeFlowSection(node); err != nil {
				return nil, err
			}
		case key == "T":
			if err := f.decodeTaskSection(node); err != nil {
				return nil, err
			}
		case key == "W":
			if err := f.decodeWidgetSection(node); err != nil {
				return nil, err
			}
		case key == "L":
			if err := f.decodeLayoutSection(node); err != nil {
				return nil, err
			}
		case strings.HasPrefix(key, "D.") || strings.HasPrefix(key, "+D."):
			if err := f.decodeTopLevelData(key, node); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("line %d: unknown section %q (want D, F, T, W, L or D.<name>)", node.Line, key)
		}
	}
	return f, nil
}

// parseSource runs the scanner and generic tree builder. Duplicate
// section keys (a file with two F: blocks) are merged.
func parseSource(src string) (*Node, error) {
	lines, err := scan(src)
	if err != nil {
		return nil, err
	}
	// The generic tree rejects duplicate keys; flow files legitimately
	// repeat section headers, so merge duplicates at the top level by
	// suffixing and regrouping afterwards would complicate ordering.
	// Instead split the line stream into top-level chunks and parse each.
	root := newMap(1)
	for len(lines) > 0 {
		l := lines[0]
		if l.indent != 0 || !l.hasKey {
			return nil, fmt.Errorf("line %d: expected a top-level section header", l.num)
		}
		chunk := []line{l}
		rest := lines[1:]
		for len(rest) > 0 && rest[0].indent > 0 {
			chunk = append(chunk, rest[0])
			rest = rest[1:]
		}
		lines = rest
		sub := newMap(l.num)
		if _, err := parseBlock(chunk, 0, sub); err != nil {
			return nil, err
		}
		child := sub.Get(l.key)
		if prev := root.Get(l.key); prev != nil && (l.key == "D" || l.key == "F" || l.key == "T" || l.key == "W") {
			if err := mergeNodes(prev, child); err != nil {
				return nil, err
			}
			continue
		}
		if err := root.set(l.key, child); err != nil {
			return nil, err
		}
	}
	return root, nil
}

// mergeNodes appends the entries of src into dst (both maps or lists).
func mergeNodes(dst, src *Node) error {
	if dst.Kind != src.Kind {
		return fmt.Errorf("line %d: section re-opened with different shape", src.Line)
	}
	switch dst.Kind {
	case MapNode:
		dst.Entries = append(dst.Entries, src.Entries...)
	case ListNode:
		dst.Items = append(dst.Items, src.Items...)
	default:
		return fmt.Errorf("line %d: cannot merge scalar sections", src.Line)
	}
	return nil
}

// ---------------------------------------------------------------------
// D section

func (f *File) decodeDataSection(n *Node) error {
	if n.Kind != MapNode {
		return fmt.Errorf("line %d: D section must be a map of data objects", n.Line)
	}
	for _, en := range n.Entries {
		name, entry := en.Key, en.Value
		d := f.EnsureData(strings.TrimPrefix(name, "D."), entry.Line)
		switch entry.Kind {
		case ListNode:
			s, err := decodeSchema(entry)
			if err != nil {
				return fmt.Errorf("line %d: data %q: %w", entry.Line, name, err)
			}
			d.Schema = s
		case MapNode:
			if err := decodeDataDetails(d, entry); err != nil {
				return fmt.Errorf("line %d: data %q: %w", entry.Line, name, err)
			}
		case ScalarNode:
			// "D.out: D.in | T.x" written inside the D section is a flow.
			if strings.Contains(entry.Scalar, "|") || strings.HasPrefix(entry.Scalar, "D.") {
				if err := f.addFlowEntry(name, entry); err != nil {
					return err
				}
				continue
			}
			return fmt.Errorf("line %d: data %q: expected schema list or detail block", entry.Line, name)
		}
	}
	return nil
}

func decodeSchema(n *Node) (*schema.Schema, error) {
	cols := make([]schema.Column, 0, len(n.Items))
	for _, it := range n.Items {
		if it.Kind != ScalarNode {
			return nil, fmt.Errorf("schema entries must be column names or path => column mappings")
		}
		text := it.Scalar
		if i := strings.Index(text, "=>"); i >= 0 {
			cols = append(cols, schema.Column{
				Path: strings.TrimSpace(text[:i]),
				Name: strings.TrimSpace(text[i+2:]),
			})
		} else {
			cols = append(cols, schema.Column{Name: strings.TrimSpace(text)})
		}
	}
	return schema.New(cols...)
}

func decodeDataDetails(d *DataDef, n *Node) error {
	for _, en := range n.Entries {
		key, v := en.Key, en.Value
		switch key {
		case "endpoint":
			d.Endpoint = v.Kind == ScalarNode && strings.EqualFold(v.Scalar, "true")
		case "publish":
			d.Publish = v.Scalar
		case "schema":
			if v.Kind != ListNode {
				return fmt.Errorf("line %d: schema must be a list", v.Line)
			}
			s, err := decodeSchema(v)
			if err != nil {
				return err
			}
			d.Schema = s
		default:
			switch v.Kind {
			case ScalarNode:
				d.SetProp(key, v.Scalar)
			case MapNode:
				// Nested detail blocks (http_headers:) flatten to
				// dotted property names.
				for _, se := range v.Entries {
					sub, sv := se.Key, se.Value
					if sv.Kind != ScalarNode {
						return fmt.Errorf("line %d: property %s.%s must be scalar", sv.Line, key, sub)
					}
					d.SetProp(key+"."+sub, sv.Scalar)
				}
			case ListNode:
				vals := make([]string, 0, len(v.Items))
				for _, it := range v.Items {
					vals = append(vals, it.Scalar)
				}
				d.SetProp(key, strings.Join(vals, ","))
			}
		}
	}
	return nil
}

func (f *File) decodeTopLevelData(key string, n *Node) error {
	name := strings.TrimPrefix(strings.TrimPrefix(key, "+"), "D.")
	d := f.EnsureData(name, n.Line)
	if strings.HasPrefix(key, "+") {
		d.Endpoint = true
	}
	switch n.Kind {
	case MapNode:
		return decodeDataDetails(d, n)
	case ScalarNode:
		// "+D.name:" followed by a bare pipeline (Figure 9).
		return f.addFlowEntry(key, n)
	case ListNode:
		s, err := decodeSchema(n)
		if err != nil {
			return err
		}
		d.Schema = s
	}
	return nil
}

// ---------------------------------------------------------------------
// F section

func (f *File) decodeFlowSection(n *Node) error {
	if n.Kind != MapNode {
		return fmt.Errorf("line %d: F section must be a map of flows", n.Line)
	}
	for _, en := range n.Entries {
		key, entry := en.Key, en.Value
		switch entry.Kind {
		case ScalarNode:
			if err := f.addFlowEntry(key, entry); err != nil {
				return err
			}
		case MapNode:
			// Data-detail blocks may appear inside F (Figure 19 publishes
			// a sink right next to its flow).
			if !strings.HasPrefix(key, "D.") && !strings.HasPrefix(key, "+D.") {
				return fmt.Errorf("line %d: flow %q must map to a pipeline", entry.Line, key)
			}
			if err := f.decodeTopLevelData(key, entry); err != nil {
				return err
			}
		default:
			return fmt.Errorf("line %d: flow %q must map to a pipeline", entry.Line, key)
		}
	}
	return nil
}

// addFlowEntry parses one flow: key is "D.out", "+D.out" or
// "(D.a, D.b)"; val is the pipeline expression.
func (f *File) addFlowEntry(key string, val *Node) error {
	endpoint := false
	if strings.HasPrefix(key, "+") {
		endpoint = true
		key = strings.TrimSpace(key[1:])
	}
	var outs []Ref
	if strings.HasPrefix(key, "(") && strings.HasSuffix(key, ")") {
		for _, part := range splitTopLevel(key[1:len(key)-1], ',') {
			r, err := ParseRef(part)
			if err != nil {
				return fmt.Errorf("line %d: flow output: %w", val.Line, err)
			}
			outs = append(outs, r)
		}
	} else {
		r, err := ParseRef(key)
		if err != nil {
			return fmt.Errorf("line %d: flow output: %w", val.Line, err)
		}
		outs = []Ref{r}
	}
	for _, o := range outs {
		if o.Section != "D" {
			return fmt.Errorf("line %d: flow output %s is not a data object", val.Line, o)
		}
		d := f.EnsureData(o.Name, val.Line)
		if endpoint {
			d.Endpoint = true
		}
	}
	p, err := ParsePipeline(val.Scalar)
	if err != nil {
		return fmt.Errorf("line %d: flow %s: %w", val.Line, key, err)
	}
	for _, in := range p.Inputs {
		f.EnsureData(in.Name, val.Line)
	}
	f.Flows = append(f.Flows, &Flow{Outputs: outs, Pipeline: p, Line: val.Line})
	return nil
}

// ---------------------------------------------------------------------
// T section

func (f *File) decodeTaskSection(n *Node) error {
	if n.Kind != MapNode {
		return fmt.Errorf("line %d: T section must be a map of tasks", n.Line)
	}
	for _, en := range n.Entries {
		name, entry := en.Key, en.Value
		if entry.Kind != MapNode {
			return fmt.Errorf("line %d: task %q must be a property block", entry.Line, name)
		}
		typ := entry.Str("type")
		if typ == "" && entry.Get("parallel") != nil {
			typ = "parallel"
		}
		if typ == "" {
			return fmt.Errorf("line %d: task %q has no type", entry.Line, name)
		}
		if err := f.AddTask(&TaskDef{Name: name, Type: typ, Config: entry, Line: entry.Line}); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// W section

func (f *File) decodeWidgetSection(n *Node) error {
	if n.Kind != MapNode {
		return fmt.Errorf("line %d: W section must be a map of widgets", n.Line)
	}
	for _, en := range n.Entries {
		name, entry := en.Key, en.Value
		if entry.Kind != MapNode {
			return fmt.Errorf("line %d: widget %q must be a property block", entry.Line, name)
		}
		w := &WidgetDef{Name: name, Type: entry.Str("type"), Config: entry, Line: entry.Line}
		if w.Type == "" {
			return fmt.Errorf("line %d: widget %q has no type", entry.Line, name)
		}
		if src := entry.Get("source"); src != nil {
			switch src.Kind {
			case ScalarNode:
				p, err := ParsePipeline(src.Scalar)
				if err != nil {
					return fmt.Errorf("line %d: widget %q source: %w", src.Line, name, err)
				}
				w.Source = p
			case ListNode:
				for _, it := range src.Items {
					w.Static = append(w.Static, it.Scalar)
				}
			}
		}
		if err := f.AddWidget(w); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// L section

func (f *File) decodeLayoutSection(n *Node) error {
	if n.Kind != MapNode {
		return fmt.Errorf("line %d: L section must be a property block", n.Line)
	}
	l := &LayoutDef{Description: n.Str("description"), Line: n.Line}
	rows := n.Get("rows")
	if rows != nil {
		if rows.Kind != ListNode {
			return fmt.Errorf("line %d: layout rows must be a list", rows.Line)
		}
		for _, rowNode := range rows.Items {
			row, err := DecodeLayoutRow(rowNode)
			if err != nil {
				return err
			}
			l.Rows = append(l.Rows, row)
		}
	}
	f.Layout = l
	return nil
}

// DecodeLayoutRow decodes one layout row node: a list of
// "spanN: W.widget" cells. Widget sub-layouts (type Layout in the W
// section) reuse it.
func DecodeLayoutRow(n *Node) (LayoutRow, error) {
	var row LayoutRow
	if n.Kind != ListNode {
		// A single-cell row may be written without brackets.
		if n.Kind == ScalarNode {
			cell, err := decodeLayoutCell(n.Line, n.Scalar)
			if err != nil {
				return row, err
			}
			row.Cells = append(row.Cells, cell)
			return row, nil
		}
		return row, fmt.Errorf("line %d: layout row must be a list of cells", n.Line)
	}
	for _, it := range n.Items {
		if it.Kind != ScalarNode {
			return row, fmt.Errorf("line %d: layout cell must be span<N>: W.<widget>", it.Line)
		}
		cell, err := decodeLayoutCell(it.Line, it.Scalar)
		if err != nil {
			return row, err
		}
		row.Cells = append(row.Cells, cell)
	}
	return row, nil
}

func decodeLayoutCell(lineNum int, s string) (LayoutCell, error) {
	key, val, ok := splitKey(s)
	if !ok || !strings.HasPrefix(key, "span") {
		return LayoutCell{}, fmt.Errorf("line %d: layout cell %q: want span<N>: W.<widget>", lineNum, s)
	}
	span, err := strconv.Atoi(strings.TrimPrefix(key, "span"))
	if err != nil || span < 1 || span > 12 {
		return LayoutCell{}, fmt.Errorf("line %d: layout cell %q: span must be 1..12", lineNum, s)
	}
	ref, err := ParseRef(val)
	if err != nil || ref.Section != "W" {
		return LayoutCell{}, fmt.Errorf("line %d: layout cell %q must reference a widget", lineNum, s)
	}
	return LayoutCell{Span: span, Widget: ref.Name}, nil
}
