package flowfile

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// randomFile builds a syntactically valid flow file from random choices,
// exercising schemas with paths, fan-in flows, task property blocks,
// aggregates, widgets and layouts.
func randomFile(rng *rand.Rand) string {
	var b strings.Builder
	nData := 1 + rng.Intn(4)
	b.WriteString("D:\n")
	for i := 0; i < nData; i++ {
		cols := make([]string, 1+rng.Intn(4))
		for c := range cols {
			if rng.Intn(3) == 0 {
				cols[c] = fmt.Sprintf("path%d.f%d => col%d", i, c, c)
			} else {
				cols[c] = fmt.Sprintf("col%d", c)
			}
		}
		fmt.Fprintf(&b, "  d%d: [%s]\n", i, strings.Join(cols, ", "))
	}
	b.WriteString("\nD.d0:\n  source: 'mem:d0.csv'\n  format: csv\n")
	if rng.Intn(2) == 0 {
		b.WriteString("  endpoint: true\n")
	}
	if rng.Intn(2) == 0 {
		b.WriteString("  publish: shared_d0\n")
	}
	nTasks := 1 + rng.Intn(3)
	b.WriteString("\nT:\n")
	for i := 0; i < nTasks; i++ {
		switch rng.Intn(3) {
		case 0:
			fmt.Fprintf(&b, "  t%d:\n    type: filter_by\n    filter_expression: col0 > %d\n", i, rng.Intn(100))
		case 1:
			fmt.Fprintf(&b, "  t%d:\n    type: groupby\n    groupby: [col0]\n    aggregates:\n      - operator: count\n        out_field: n%d\n", i, i)
		default:
			fmt.Fprintf(&b, "  t%d:\n    type: sort\n    orderby_column: [col0 DESC]\n", i)
		}
	}
	b.WriteString("\nF:\n")
	for i := 0; i < nTasks; i++ {
		fmt.Fprintf(&b, "  +D.out%d: D.d%d | T.t%d\n", i, rng.Intn(nData), i)
	}
	if rng.Intn(2) == 0 {
		b.WriteString("\nW:\n  g:\n    type: Grid\n    source: D.out0\n\nL:\n  rows:\n    - [span12: W.g]\n")
	}
	return b.String()
}

// TestRandomRoundTripProperty: any generated file parses, its canonical
// serialization re-parses, and the second canonical form is a fixed
// point with the same entity counts.
func TestRandomRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomFile(rng)
		f1, err := Parse("gen", src)
		if err != nil {
			t.Logf("parse failed for:\n%s\nerr: %v", src, err)
			return false
		}
		canon := f1.String()
		f2, err := Parse("gen", canon)
		if err != nil {
			t.Logf("canonical reparse failed for:\n%s\nerr: %v", canon, err)
			return false
		}
		if f2.String() != canon {
			t.Logf("canonical form not a fixed point")
			return false
		}
		return len(f1.Flows) == len(f2.Flows) &&
			len(f1.Tasks) == len(f2.Tasks) &&
			len(f1.Widgets) == len(f2.Widgets) &&
			len(f1.DataOrder) == len(f2.DataOrder)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestParserNeverPanics feeds mutated inputs: the parser must return
// errors, not panic, whatever the bytes.
func TestParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	base := randomFile(rng)
	mutate := func(s string, rng *rand.Rand) string {
		b := []byte(s)
		for k := 0; k < 1+rng.Intn(10); k++ {
			if len(b) == 0 {
				break
			}
			switch rng.Intn(3) {
			case 0: // flip a byte
				b[rng.Intn(len(b))] = byte(rng.Intn(128))
			case 1: // delete a span
				i := rng.Intn(len(b))
				j := i + rng.Intn(len(b)-i)
				b = append(b[:i], b[j:]...)
			default: // insert noise
				i := rng.Intn(len(b) + 1)
				noise := []byte{'[', ']', '(', ':', '|', '-', '\n', '\t', '\''}[rng.Intn(9)]
				b = append(b[:i], append([]byte{noise}, b[i:]...)...)
			}
		}
		return string(b)
	}
	for i := 0; i < 500; i++ {
		src := mutate(base, rng)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on input:\n%q\npanic: %v", src, r)
				}
			}()
			f, err := Parse("fuzzed", src)
			if err == nil {
				// If it parsed, serialization must not panic either.
				_ = f.String()
				_ = f.Validate(true)
			}
		}()
	}
}

// TestPipelineRoundTripProperty: pipeline String/Parse round-trips.
func TestPipelineRoundTripProperty(t *testing.T) {
	f := func(inCount uint8, taskCount uint8) bool {
		nIn := int(inCount%3) + 1
		nT := int(taskCount%4) + 1
		var ins []string
		for i := 0; i < nIn; i++ {
			ins = append(ins, fmt.Sprintf("D.in%d", i))
		}
		head := ins[0]
		if nIn > 1 {
			head = "(" + strings.Join(ins, ", ") + ")"
		}
		src := head
		for i := 0; i < nT; i++ {
			src += fmt.Sprintf(" | T.t%d", i)
		}
		p, err := ParsePipeline(src)
		if err != nil {
			return false
		}
		p2, err := ParsePipeline(p.String())
		if err != nil {
			return false
		}
		return p.String() == p2.String() && len(p2.Inputs) == nIn && len(p2.Tasks) == nT
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
