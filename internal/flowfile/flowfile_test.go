package flowfile

import (
	"strings"
	"testing"
)

// iplProcessing is a condensed version of the paper's Appendix A.1
// data-processing dashboard, exercising every syntactic construct:
// path => column schemas, multi-line pipelines, fan-in joins, aggregate
// list items, parallel tasks and publish/endpoint details.
const iplProcessing = `
D:
  ipl_tweets: [
    postedTime => created_at,
    body => text,
    displayName => user.location
  ]
  players_tweets: [date, player, count]
  team_players: [player, team_fullName, team, player_id, noOfTweets]
  player_tweets: [player, team, date, player_id, team_fullName, noOfTweets]
  tagcloud_tweets_raw: [date, word, count]
  tagcloud_tweets: [date, word, count]

F:
  D.players_tweets: D.ipl_tweets |
    T.players_pipeline |
    T.players_count

  D.player_tweets: (
    D.players_tweets,
    D.team_players
  ) | T.join_player_team

  D.tagcloud_tweets_raw: D.ipl_tweets | T.word_date_extraction | T.words_count
  D.tagcloud_tweets: D.tagcloud_tweets_raw | T.topwords

  D.players_tweets:
    endpoint: true
    publish: players_tweets

T:
  players_pipeline:
    parallel: [T.norm_ipldate, T.extract_players]
  word_date_extraction:
    parallel: [T.norm_ipldate, T.extract_words]
  norm_ipldate:
    type: map
    operator: date
    transform: postedTime
    input_format: 'E MMM dd HH:mm:ss Z yyyy'
    output_format: yyyy-MM-dd
    output: date
  extract_players:
    type: map
    operator: extract
    transform: body
    dict: players.txt
    output: player
  extract_words:
    type: map
    operator: extract_words
    transform: body
    output: word
  join_player_team:
    type: join
    left: players_tweets by player
    right: team_players by player
    join_condition: left outer
    project:
      players_tweets_date: date
      players_tweets_player: player
      players_tweets_count: noOfTweets
  players_count:
    type: groupby
    groupby: [date, player]
  words_count:
    type: groupby
    groupby: [date, word]
  topwords:
    type: topn
    groupby: [date]
    orderby_column: [count DESC]
    limit: 20
`

// iplConsumption is a condensed Appendix A.2 consumption dashboard.
const iplConsumption = `
L:
  description: Clash of Titans
  rows:
    - [span12: W.teams]
    - [span11: W.ipl_duration]
    - [span6: W.word_tweets, span5: W.region_tweets]

W:
  ipl_duration:
    type: Slider
    source: ['2013-05-02', '2013-05-27']
    static: true
    range: true
    slider_type: date

  teams:
    type: List
    source: D.dim_teams
    text: team

  word_tweets:
    type: WordCloud
    source: D.tagcloud_tweets |
      T.filter_by_date |
      T.aggregate_by_word
    text: word
    size: count
    show_tooltip: true
    tooltip_text: [word, count]

  region_tweets:
    type: MapMarker
    source: D.team_region_tweets | T.filter_by_date
    country: IND
    markers:
      - marker1:
          type: circle_marker
          latlong_value: point_one
          markersize: noOfTweets

T:
  filter_by_date:
    type: filter_by
    filter_by: [date]
    filter_source: W.ipl_duration

  aggregate_by_word:
    type: groupby
    groupby: [word]
    aggregates:
      - operator: sum
        apply_on: count
        out_field: count
`

func TestParseIPLProcessing(t *testing.T) {
	f, err := Parse("ipl_processing", iplProcessing)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !f.DataProcessingOnly() {
		t.Errorf("expected data-processing mode")
	}
	d := f.Data["ipl_tweets"]
	if d == nil || d.Schema == nil {
		t.Fatalf("ipl_tweets schema missing")
	}
	if got := d.Schema.String(); got != "[postedTime => created_at, body => text, displayName => user.location]" {
		t.Errorf("schema = %s", got)
	}
	if len(f.Flows) != 4 {
		t.Fatalf("flows = %d, want 4", len(f.Flows))
	}
	join := f.Flows[1]
	if len(join.Pipeline.Inputs) != 2 {
		t.Errorf("join fan-in = %d, want 2", len(join.Pipeline.Inputs))
	}
	if join.Pipeline.Tasks[0].Name != "join_player_team" {
		t.Errorf("join task = %s", join.Pipeline.Tasks[0])
	}
	pt := f.Data["players_tweets"]
	if !pt.Endpoint || pt.Publish != "players_tweets" {
		t.Errorf("players_tweets endpoint=%v publish=%q", pt.Endpoint, pt.Publish)
	}
	if f.Tasks["players_pipeline"].Type != "parallel" {
		t.Errorf("players_pipeline type = %q", f.Tasks["players_pipeline"].Type)
	}
	if got := f.Tasks["players_count"].Config.StrList("groupby"); len(got) != 2 || got[0] != "date" {
		t.Errorf("players_count groupby = %v", got)
	}
	if err := f.Validate(false); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestParseIPLConsumption(t *testing.T) {
	f, err := Parse("ipl_consumption", iplConsumption)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.Layout == nil || f.Layout.Description != "Clash of Titans" {
		t.Fatalf("layout = %+v", f.Layout)
	}
	if len(f.Layout.Rows) != 3 {
		t.Fatalf("rows = %d", len(f.Layout.Rows))
	}
	last := f.Layout.Rows[2]
	if len(last.Cells) != 2 || last.Cells[0].Span != 6 || last.Cells[1].Widget != "region_tweets" {
		t.Errorf("row 3 = %+v", last)
	}
	slider := f.Widgets["ipl_duration"]
	if slider.Source != nil || len(slider.Static) != 2 || slider.Static[0] != "2013-05-02" {
		t.Errorf("slider static = %v", slider.Static)
	}
	wc := f.Widgets["word_tweets"]
	if wc.Source == nil || len(wc.Source.Tasks) != 2 {
		t.Fatalf("word cloud source = %v", wc.Source)
	}
	if wc.Source.Tasks[1].Name != "aggregate_by_word" {
		t.Errorf("word cloud task = %v", wc.Source.Tasks[1])
	}
	aggs := f.Tasks["aggregate_by_word"].Config.Get("aggregates")
	if aggs == nil || aggs.Kind != ListNode || len(aggs.Items) != 1 {
		t.Fatalf("aggregates = %+v", aggs)
	}
	item := aggs.Items[0]
	if item.Str("operator") != "sum" || item.Str("apply_on") != "count" {
		t.Errorf("aggregate item = %+v", item)
	}
	// Consumption mode: shared inputs come from the platform catalog.
	shared := f.SharedInputs()
	if len(shared) == 0 {
		t.Errorf("expected shared inputs, got none")
	}
	if err := f.Validate(true); err != nil {
		t.Errorf("Validate(allowShared): %v", err)
	}
	if err := f.Validate(false); err == nil {
		t.Errorf("Validate(strict) should fail for unresolved shared inputs")
	}
}

func TestRoundTrip(t *testing.T) {
	f, err := Parse("ipl_processing", iplProcessing)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	text := f.String()
	f2, err := Parse("ipl_processing", text)
	if err != nil {
		t.Fatalf("reparse canonical form: %v\n%s", err, text)
	}
	if f2.String() != text {
		t.Errorf("canonical form is not a fixed point:\n--- first\n%s\n--- second\n%s", text, f2.String())
	}
	if len(f2.Flows) != len(f.Flows) || len(f2.Tasks) != len(f.Tasks) {
		t.Errorf("round trip lost entries: flows %d->%d tasks %d->%d",
			len(f.Flows), len(f2.Flows), len(f.Tasks), len(f2.Tasks))
	}
}

func TestEndpointAlias(t *testing.T) {
	src := `
F:
  +D.summary:
    D.raw | T.count

T:
  count:
    type: groupby
    groupby: [k]

D.raw:
  source: raw.csv
  format: csv
`
	f, err := Parse("alias", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !f.Data["summary"].Endpoint {
		t.Errorf("+D alias did not set endpoint")
	}
	if len(f.Flows) != 1 || f.Flows[0].Pipeline.Inputs[0].Name != "raw" {
		t.Fatalf("flows = %+v", f.Flows)
	}
}

func TestFanOut(t *testing.T) {
	src := `
F:
  (D.a, D.b): D.raw | T.split

T:
  split:
    type: filter_by
    filter_expression: x > 0

D.raw:
  source: raw.csv
`
	f, err := Parse("fanout", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(f.Flows) != 1 || len(f.Flows[0].Outputs) != 2 {
		t.Fatalf("fan-out outputs = %+v", f.Flows)
	}
	if f.Flows[0].Outputs[1].Name != "b" {
		t.Errorf("second output = %s", f.Flows[0].Outputs[1])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown section", "X:\n  a: b\n", "unknown section"},
		{"task without type", "T:\n  t1:\n    groupby: [a]\n", "no type"},
		{"bad pipeline input", "F:\n  D.out: T.x | T.y\n", "not a data object"},
		{"bad span", "L:\n  rows:\n    - [span13: W.x]\n", "span must be"},
		{"duplicate task", "T:\n  t1:\n    type: map\n  t1:\n    type: map\n", "duplicate"},
		{"unbalanced bracket", "D:\n  a: [x, y\n", "unbalanced"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse("bad", c.src)
			if err == nil {
				t.Fatalf("expected error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestValidateCatchesDanglingRefs(t *testing.T) {
	src := `
F:
  D.out: D.raw | T.missing

D.raw:
  source: raw.csv

W:
  chart:
    type: Pie
    source: D.out | T.also_missing

L:
  rows:
    - [span12: W.ghost]
`
	f, err := Parse("dangling", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	err = f.Validate(false)
	if err == nil {
		t.Fatal("expected validation errors")
	}
	msg := err.Error()
	for _, want := range []string{"T.missing", "T.also_missing", "W.ghost"} {
		if !strings.Contains(msg, want) {
			t.Errorf("validation message missing %q: %s", want, msg)
		}
	}
}

func TestDuplicateProducer(t *testing.T) {
	src := `
F:
  D.out: D.raw | T.t
  D.out: D.raw | T.t

T:
  t:
    type: filter_by
    filter_expression: x > 0

D.raw:
  source: raw.csv
`
	f, err := Parse("dup", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := f.Validate(false); err == nil || !strings.Contains(err.Error(), "more than one flow") {
		t.Errorf("expected duplicate-producer error, got %v", err)
	}
}

func TestParseRef(t *testing.T) {
	r, err := ParseRef("D.tweets")
	if err != nil || r.Section != "D" || r.Name != "tweets" {
		t.Errorf("ParseRef(D.tweets) = %v, %v", r, err)
	}
	for _, bad := range []string{"tweets", "X.tweets", "D.", ".x", ""} {
		if _, err := ParseRef(bad); err == nil {
			t.Errorf("ParseRef(%q) should fail", bad)
		}
	}
}

func TestCommentsAndQuotes(t *testing.T) {
	src := `
# full line comment
D:
  a: [x, y] # trailing comment

D.a:
  source: 'http://example.com/data?q=a#frag'  # the # inside quotes stays
  format: json
`
	f, err := Parse("comments", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := f.Data["a"].Prop("source"); got != "http://example.com/data?q=a#frag" {
		t.Errorf("source = %q", got)
	}
}
