package flowfile

import (
	"fmt"
	"strings"

	"shareinsights/internal/schema"
)

// File is the typed AST of a flow file: the unified representation of a
// complete dashboard. Any section may be absent — a data-processing
// dashboard has only D/F/T (§3.7.1), a consumption dashboard only W/T/L
// (§3.7.2).
type File struct {
	// Name is the dashboard name (from the file name or Set explicitly).
	Name string
	// DataOrder lists data-object names in declaration order.
	DataOrder []string
	// Data holds the data-object definitions keyed by name.
	Data map[string]*DataDef
	// Flows are the F-section flows in declaration order.
	Flows []*Flow
	// TaskOrder lists task names in declaration order.
	TaskOrder []string
	// Tasks holds the task configurations keyed by name.
	Tasks map[string]*TaskDef
	// WidgetOrder lists widget names in declaration order.
	WidgetOrder []string
	// Widgets holds the widget configurations keyed by name.
	Widgets map[string]*WidgetDef
	// Layout is the dashboard layout, or nil for data-processing mode.
	Layout *LayoutDef
}

// NewFile returns an empty flow file with the given name.
func NewFile(name string) *File {
	return &File{
		Name:    name,
		Data:    map[string]*DataDef{},
		Tasks:   map[string]*TaskDef{},
		Widgets: map[string]*WidgetDef{},
	}
}

// DataDef configures one data object: its declared schema and/or its
// source protocol details, plus the sharing flags of §3.4.1.
type DataDef struct {
	// Name is the data-object name (without the D. prefix).
	Name string
	// Schema is the declared column list, or nil when the object's
	// schema is inferred from the flow that produces it.
	Schema *schema.Schema
	// Props holds protocol details: source, protocol, format, separator,
	// request_type, http_headers.* — everything from the detail block.
	Props map[string]string
	// PropOrder preserves property declaration order for serialization.
	PropOrder []string
	// Endpoint makes the object visible to the dashboard/REST API.
	Endpoint bool
	// Publish names the object in the platform-wide shared catalog; ""
	// means unpublished.
	Publish string
	// Line is the declaring source line.
	Line int
}

// Prop returns a property value ("" if unset).
func (d *DataDef) Prop(key string) string { return d.Props[key] }

// SetProp sets a property, tracking declaration order.
func (d *DataDef) SetProp(key, val string) {
	if d.Props == nil {
		d.Props = map[string]string{}
	}
	if _, ok := d.Props[key]; !ok {
		d.PropOrder = append(d.PropOrder, key)
	}
	d.Props[key] = val
}

// Ref names a data object, task or widget in a pipeline, qualified by
// section: D.name, T.name or W.name.
type Ref struct {
	// Section is "D", "T" or "W".
	Section string
	// Name is the unqualified name.
	Name string
}

// String renders the qualified reference.
func (r Ref) String() string { return r.Section + "." + r.Name }

// ParseRef parses a qualified reference like "D.tweets".
func ParseRef(s string) (Ref, error) {
	s = strings.TrimSpace(s)
	i := strings.IndexByte(s, '.')
	if i <= 0 || i == len(s)-1 {
		return Ref{}, fmt.Errorf("bad reference %q: want Section.name", s)
	}
	sec := s[:i]
	switch sec {
	case "D", "T", "W":
	default:
		return Ref{}, fmt.Errorf("bad reference %q: unknown section %q", s, sec)
	}
	return Ref{Section: sec, Name: s[i+1:]}, nil
}

// Pipeline is a linear chain: one or more data-object inputs piped
// through one or more tasks. It is the only "active" construct in the
// language — there are no other control structures (§4.5.2).
type Pipeline struct {
	// Inputs are the fan-in data objects (at least one).
	Inputs []Ref
	// Tasks are the task references applied in order (may be empty for a
	// widget reading a data object directly).
	Tasks []Ref
}

// String renders the pipeline in flow-file syntax.
func (p *Pipeline) String() string {
	var b strings.Builder
	if len(p.Inputs) == 1 {
		b.WriteString(p.Inputs[0].String())
	} else {
		b.WriteByte('(')
		for i, in := range p.Inputs {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(in.String())
		}
		b.WriteByte(')')
	}
	for _, t := range p.Tasks {
		b.WriteString(" | ")
		b.WriteString(t.String())
	}
	return b.String()
}

// ParsePipeline parses "D.a | T.x | T.y" or "(D.a, D.b) | T.join".
func ParsePipeline(s string) (*Pipeline, error) {
	parts := splitTopLevel(s, '|')
	if len(parts) == 0 {
		return nil, fmt.Errorf("empty pipeline")
	}
	head := strings.TrimSpace(parts[0])
	p := &Pipeline{}
	if strings.HasPrefix(head, "(") && strings.HasSuffix(head, ")") {
		for _, in := range splitTopLevel(head[1:len(head)-1], ',') {
			r, err := ParseRef(in)
			if err != nil {
				return nil, err
			}
			p.Inputs = append(p.Inputs, r)
		}
	} else {
		r, err := ParseRef(head)
		if err != nil {
			return nil, err
		}
		p.Inputs = []Ref{r}
	}
	if len(p.Inputs) == 0 {
		return nil, fmt.Errorf("pipeline %q has no inputs", s)
	}
	for _, in := range p.Inputs {
		if in.Section != "D" {
			return nil, fmt.Errorf("pipeline input %s is not a data object", in)
		}
	}
	for _, part := range parts[1:] {
		r, err := ParseRef(part)
		if err != nil {
			return nil, err
		}
		if r.Section != "T" {
			return nil, fmt.Errorf("pipeline stage %s is not a task", r)
		}
		p.Tasks = append(p.Tasks, r)
	}
	return p, nil
}

// Flow is one F-section entry: a pipeline whose result lands in one or
// more output data objects (fan-out).
type Flow struct {
	// Outputs are the data objects the flow produces (usually one).
	Outputs []Ref
	// Pipeline is the transformation chain.
	Pipeline *Pipeline
	// Line is the declaring source line.
	Line int
}

// String renders the flow in flow-file syntax.
func (f *Flow) String() string {
	outs := make([]string, len(f.Outputs))
	for i, o := range f.Outputs {
		outs[i] = o.String()
	}
	lhs := outs[0]
	if len(outs) > 1 {
		lhs = "(" + strings.Join(outs, ", ") + ")"
	}
	return lhs + ": " + f.Pipeline.String()
}

// TaskDef is one T-section entry: a named, typed, configured task. The
// configuration is kept as the generic node tree because each task type
// defines its own parameters; binding happens in internal/task.
type TaskDef struct {
	// Name is the task name (without the T. prefix).
	Name string
	// Type is the task type: filter_by, groupby, join, topn, map,
	// parallel, or a user-registered type.
	Type string
	// Config is the full property block (including "type").
	Config *Node
	// Line is the declaring source line.
	Line int
}

// WidgetDef is one W-section entry.
type WidgetDef struct {
	// Name is the widget name (without the W. prefix).
	Name string
	// Type is the widget type: BubbleChart, WordCloud, Slider, Layout…
	Type string
	// Source is the widget's data pipeline, nil when the widget is
	// static (Source then comes from Static list) or a pure layout.
	Source *Pipeline
	// Static holds an inline static source list (e.g. slider bounds).
	Static []string
	// Config is the full property block for data and visual attributes.
	Config *Node
	// Line is the declaring source line.
	Line int
}

// Attr returns a scalar widget attribute ("" if unset).
func (w *WidgetDef) Attr(key string) string { return w.Config.Str(key) }

// LayoutDef is the L-section: a 12-column grid of widget references.
type LayoutDef struct {
	// Description is the dashboard title.
	Description string
	// Rows are the grid rows.
	Rows []LayoutRow
	// Line is the declaring source line.
	Line int
}

// LayoutRow is one row of cells.
type LayoutRow struct {
	// Cells are the row's cells, left to right.
	Cells []LayoutCell
}

// LayoutCell places a widget in a span of grid columns.
type LayoutCell struct {
	// Span is the number of twelve-width columns the cell occupies.
	Span int
	// Widget is the referenced widget name (without W. prefix).
	Widget string
}

// DataProcessingOnly reports whether the file is a data-processing-mode
// dashboard (no widgets, no layout — §3.7.1).
func (f *File) DataProcessingOnly() bool {
	return len(f.Widgets) == 0 && f.Layout == nil
}

// AddData registers a data definition, keeping declaration order.
func (f *File) AddData(d *DataDef) *DataDef {
	if existing, ok := f.Data[d.Name]; ok {
		return existing
	}
	f.Data[d.Name] = d
	f.DataOrder = append(f.DataOrder, d.Name)
	return d
}

// EnsureData returns the named data definition, creating an empty one if
// needed — flows may mention sinks that have no explicit D entry.
func (f *File) EnsureData(name string, line int) *DataDef {
	if d, ok := f.Data[name]; ok {
		return d
	}
	return f.AddData(&DataDef{Name: name, Line: line})
}

// AddTask registers a task definition.
func (f *File) AddTask(t *TaskDef) error {
	if _, dup := f.Tasks[t.Name]; dup {
		return fmt.Errorf("line %d: duplicate task %q", t.Line, t.Name)
	}
	f.Tasks[t.Name] = t
	f.TaskOrder = append(f.TaskOrder, t.Name)
	return nil
}

// AddWidget registers a widget definition.
func (f *File) AddWidget(w *WidgetDef) error {
	if _, dup := f.Widgets[w.Name]; dup {
		return fmt.Errorf("line %d: duplicate widget %q", w.Line, w.Name)
	}
	f.Widgets[w.Name] = w
	f.WidgetOrder = append(f.WidgetOrder, w.Name)
	return nil
}
