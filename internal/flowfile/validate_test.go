package flowfile

import (
	"strings"
	"testing"
)

// A programmatically built flow with no outputs must be reported, not
// panic Validate (the parser always produces at least one output, but
// Validate is also called on synthesized files).
func TestValidateZeroOutputFlow(t *testing.T) {
	f := &File{
		Name: "synth",
		Data: map[string]*DataDef{},
		Flows: []*Flow{{
			Line:     3,
			Pipeline: &Pipeline{Inputs: []Ref{{Section: "D", Name: "src"}}},
		}},
		Tasks:   map[string]*TaskDef{},
		Widgets: map[string]*WidgetDef{},
	}
	err := f.Validate(true)
	if err == nil {
		t.Fatal("want a validation error for a flow with no outputs")
	}
	if !strings.Contains(err.Error(), "no output data objects") {
		t.Fatalf("error = %q, want it to mention missing outputs", err)
	}
}

// A flow without a pipeline must also be reported without panicking.
func TestValidateNilPipelineFlow(t *testing.T) {
	f := &File{
		Name:    "synth",
		Data:    map[string]*DataDef{},
		Flows:   []*Flow{{Line: 7, Outputs: []Ref{{Section: "D", Name: "out"}}}},
		Tasks:   map[string]*TaskDef{},
		Widgets: map[string]*WidgetDef{},
	}
	err := f.Validate(true)
	if err == nil {
		t.Fatal("want a validation error for a flow with no pipeline")
	}
	if !strings.Contains(err.Error(), "has no pipeline") {
		t.Fatalf("error = %q, want it to mention the missing pipeline", err)
	}
	// SharedInputs walks the same flows and must tolerate the nil too.
	if got := f.SharedInputs(); len(got) != 0 {
		t.Fatalf("SharedInputs = %v, want none", got)
	}
}

// Validation problems carry the offending reference's source line, so
// the CLI, editor and linter all render "line N" uniformly.
func TestValidateProblemsCarryLines(t *testing.T) {
	const src = `
D:
  sales: [region, amount]

D.sales:
  source: sales.csv

F:
  +D.out: D.sales | T.missing
`
	f, err := Parse("demo", src)
	if err != nil {
		t.Fatal(err)
	}
	verr := f.Validate(true)
	if verr == nil {
		t.Fatal("want a validation error for the dangling task reference")
	}
	ve, ok := verr.(*ValidationError)
	if !ok {
		t.Fatalf("error type = %T, want *ValidationError", verr)
	}
	found := false
	for _, p := range ve.Problems {
		if strings.Contains(p.Message, "T.missing") {
			found = true
			if p.Line == 0 {
				t.Fatalf("problem %q has no line", p.Message)
			}
			if !strings.Contains(p.String(), "line ") {
				t.Fatalf("problem String() = %q, want a line prefix", p.String())
			}
		}
	}
	if !found {
		t.Fatalf("no problem mentions T.missing: %v", ve.Problems)
	}
}

// TestValidateResilienceProps pins the value constraints on the
// run-time degradation details (docs/RESILIENCE.md): a typo in
// on_error/timeout/retries must fail at save time, not mid-outage.
func TestValidateResilienceProps(t *testing.T) {
	const tmpl = `
D:
  sales: [region, amount]

D.sales:
  source: sales.csv
  %s

F:
  +D.out: D.sales | T.agg

T:
  agg:
    type: groupby
    groupby: [region]
`
	cases := []struct {
		name, prop, wantErr string
	}{
		{"valid on_error stale", "on_error: stale", ""},
		{"valid on_error empty", "on_error: empty", ""},
		{"valid on_error fail", "on_error: fail", ""},
		{"bad on_error", "on_error: retry", "on_error must be fail, stale or empty"},
		{"valid timeout", "timeout: 30s", ""},
		{"unitless timeout", "timeout: 30", "not a duration"},
		{"negative timeout", "timeout: -5s", "timeout must be positive"},
		{"valid retries", "retries: 3", ""},
		{"zero retries", "retries: 0", ""},
		{"negative retries", "retries: -1", "retries must be a non-negative integer"},
		{"non-numeric retries", "retries: lots", "retries must be a non-negative integer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := Parse("demo", strings.Replace(tmpl, "%s", tc.prop, 1))
			if err != nil {
				t.Fatal(err)
			}
			verr := f.Validate(true)
			if tc.wantErr == "" {
				if verr != nil {
					t.Fatalf("Validate = %v, want ok", verr)
				}
				return
			}
			if verr == nil || !strings.Contains(verr.Error(), tc.wantErr) {
				t.Fatalf("Validate = %v, want %q", verr, tc.wantErr)
			}
		})
	}
}
