package flowfile

import "testing"

// FuzzParse drives the parser with arbitrary bytes. The contract under
// fuzzing: never panic; when parsing succeeds, serialization must
// succeed, re-parse, and reach a canonical fixed point.
func FuzzParse(f *testing.F) {
	f.Add(iplProcessing)
	f.Add(iplConsumption)
	f.Add("D:\n  a: [x => y, z]\n")
	f.Add("F:\n  +D.o: (D.a, D.b) | T.t\n")
	f.Add("L:\n  rows:\n    - [span3: W.w]\n")
	f.Add("T:\n  t:\n    type: groupby\n    aggregates:\n      - operator: sum\n")
	f.Add("D.x:\n  source: 'a:b#c'\n")
	f.Fuzz(func(t *testing.T, src string) {
		parsed, err := Parse("fuzz", src)
		if err != nil {
			return
		}
		canon := parsed.String()
		second, err := Parse("fuzz", canon)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\ninput: %q\ncanonical: %q", err, src, canon)
		}
		if second.String() != canon {
			t.Fatalf("canonical form is not a fixed point\ninput: %q", src)
		}
		_ = parsed.Validate(true)
	})
}
