// Package flowfile implements the ShareInsights flow-file language: the
// single unified representation for an entire data pipeline, from data
// ingestion (D) through tasks (T) and flows (F) to widgets (W) and
// dashboard layout (L).
//
// The surface syntax follows the paper's listings (Figures 4–23 and
// Appendix A/B): an indentation-structured configuration language with
//
//   - `key: value` scalar properties,
//   - nested blocks by indentation,
//   - `- item` lists (whose items may themselves be property blocks),
//   - inline bracketed lists `[a, b, path => c]` that may span lines,
//   - `#` line comments,
//   - Unix-pipe flow expressions `D.out: (D.a, D.b) | T.x | T.y`,
//   - the `+D.name:` alias for `endpoint: true` (Figure 9).
//
// Parsing happens in two stages: a generic indentation tree (Node, this
// file) and typed section decoding (parse.go) into the File AST (ast.go).
package flowfile

import (
	"fmt"
	"strings"
)

// NodeKind distinguishes the three shapes of the generic tree.
type NodeKind int

// Node kinds.
const (
	ScalarNode NodeKind = iota
	MapNode
	ListNode
)

// String names the node kind.
func (k NodeKind) String() string {
	switch k {
	case ScalarNode:
		return "scalar"
	case MapNode:
		return "map"
	case ListNode:
		return "list"
	default:
		return "node"
	}
}

// MapEntry is one key/value pair of a MapNode. Entries preserve source
// order and may repeat a key: a flow file's F section can legally contain
// both a flow and a detail block for the same data object (Figure 19), so
// duplicate detection is left to the section decoders that care.
type MapEntry struct {
	Key   string
	Value *Node
}

// Node is an untyped flow-file fragment.
type Node struct {
	// Kind is the node shape.
	Kind NodeKind
	// Line is the 1-based source line the node started on, for errors.
	Line int
	// Scalar holds the text of a ScalarNode.
	Scalar string
	// Entries holds MapNode key/value pairs in source order.
	Entries []MapEntry
	// Items holds ListNode elements.
	Items []*Node
}

func newMap(line int) *Node {
	return &Node{Kind: MapNode, Line: line}
}

func newList(line int) *Node { return &Node{Kind: ListNode, Line: line} }

func newScalar(line int, s string) *Node { return &Node{Kind: ScalarNode, Line: line, Scalar: s} }

// Get returns the first child for key, or nil.
func (n *Node) Get(key string) *Node {
	if n == nil || n.Kind != MapNode {
		return nil
	}
	for _, e := range n.Entries {
		if e.Key == key {
			return e.Value
		}
	}
	return nil
}

// Has reports whether the map has at least one entry for key.
func (n *Node) Has(key string) bool { return n.Get(key) != nil }

// Str returns the scalar text for key ("" if absent or non-scalar).
func (n *Node) Str(key string) string {
	c := n.Get(key)
	if c == nil || c.Kind != ScalarNode {
		return ""
	}
	return c.Scalar
}

// Bool reports whether key holds the scalar "true".
func (n *Node) Bool(key string) bool { return strings.EqualFold(n.Str(key), "true") }

// StrList returns the child list for key as scalar strings. A scalar
// child is treated as a one-element list, so `groupby: project` and
// `groupby: [project, year]` are both accepted.
func (n *Node) StrList(key string) []string {
	c := n.Get(key)
	if c == nil {
		return nil
	}
	switch c.Kind {
	case ScalarNode:
		if c.Scalar == "" {
			return nil
		}
		return []string{c.Scalar}
	case ListNode:
		out := make([]string, 0, len(c.Items))
		for _, it := range c.Items {
			if it.Kind == ScalarNode {
				out = append(out, it.Scalar)
			}
		}
		return out
	}
	return nil
}

// set appends key → child, preserving order. Duplicates are permitted at
// this layer; section decoders reject them where the language forbids it.
func (n *Node) set(key string, child *Node) error {
	n.Entries = append(n.Entries, MapEntry{Key: key, Value: child})
	return nil
}

// ---------------------------------------------------------------------
// Line scanning

type line struct {
	num    int // 1-based source line number
	indent int
	isItem bool   // starts with "- "
	key    string // "" for bare scalar lines
	hasKey bool
	rest   string // value text after "key:" or "- " or the full scalar
}

// splitComment removes a trailing # comment that is not inside quotes.
func splitComment(s string) string {
	inQ := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inQ != 0:
			if c == '\\' {
				i++
			} else if c == inQ {
				inQ = 0
			}
		case c == '\'' || c == '"':
			inQ = c
		case c == '#':
			return s[:i]
		}
	}
	return s
}

// bracketDelta returns opens-minus-closes of []() outside quotes.
func bracketDelta(s string) int {
	d := 0
	inQ := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inQ != 0:
			if c == '\\' {
				i++
			} else if c == inQ {
				inQ = 0
			}
		case c == '\'' || c == '"':
			inQ = c
		case c == '[' || c == '(':
			d++
		case c == ']' || c == ')':
			d--
		}
	}
	return d
}

// scan converts source text into logical lines, joining physical lines
// whose brackets are unbalanced (multi-line schema lists, Figure 6).
func scan(src string) ([]line, error) {
	var out []line
	raw := strings.Split(src, "\n")
	for i := 0; i < len(raw); i++ {
		num := i + 1
		text := splitComment(strings.ReplaceAll(raw[i], "\t", "    "))
		if strings.TrimSpace(text) == "" {
			continue
		}
		indent := 0
		for indent < len(text) && text[indent] == ' ' {
			indent++
		}
		body := strings.TrimRight(text[indent:], " ")
		// Join continuation lines while brackets are open.
		for bracketDelta(body) > 0 && i+1 < len(raw) {
			i++
			body += " " + strings.TrimSpace(splitComment(raw[i]))
		}
		if bracketDelta(body) != 0 {
			return nil, fmt.Errorf("line %d: unbalanced brackets", num)
		}
		// Join pipeline continuations: a logical line ending in the pipe
		// operator continues on the next physical line (Appendix A style).
		for strings.HasSuffix(strings.TrimSpace(body), "|") && i+1 < len(raw) {
			i++
			body += " " + strings.TrimSpace(splitComment(strings.ReplaceAll(raw[i], "\t", "    ")))
		}
		l := line{num: num, indent: indent}
		if strings.HasPrefix(body, "- ") || body == "-" {
			l.isItem = true
			body = strings.TrimSpace(strings.TrimPrefix(body, "-"))
		}
		if k, v, ok := splitKey(body); ok {
			l.key = k
			l.hasKey = true
			l.rest = v
		} else {
			l.rest = body
		}
		out = append(out, l)
	}
	return out, nil
}

// splitKey splits "key: value" at the first top-level colon. Colons
// inside quotes or brackets (e.g. URLs in bracket lists) do not split; a
// colon inside an unbracketed, unquoted value can only be a key
// separator in this grammar because scalar values with colons (URLs,
// time formats) are quoted in flow files.
func splitKey(s string) (key, val string, ok bool) {
	inQ := byte(0)
	depth := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inQ != 0:
			if c == '\\' {
				i++
			} else if c == inQ {
				inQ = 0
			}
		case c == '\'' || c == '"':
			inQ = c
		case c == '[' || c == '(':
			depth++
		case c == ']' || c == ')':
			depth--
		case c == ':' && depth == 0:
			key = strings.TrimSpace(s[:i])
			val = strings.TrimSpace(s[i+1:])
			if key == "" {
				return "", "", false
			}
			return key, val, true
		}
	}
	return "", "", false
}

// ---------------------------------------------------------------------
// Tree building

// parseTree builds the generic node tree from logical lines.
func parseTree(lines []line) (*Node, error) {
	root := newMap(1)
	rest, err := parseBlock(lines, 0, root)
	if err != nil {
		return nil, err
	}
	if len(rest) > 0 {
		return nil, fmt.Errorf("line %d: unexpected dedent", rest[0].num)
	}
	return root, nil
}

// parseBlock consumes lines at exactly the indentation of the first line
// into parent (a MapNode or ListNode chosen by content), returning the
// unconsumed tail.
func parseBlock(lines []line, minIndent int, parent *Node) ([]line, error) {
	if len(lines) == 0 {
		return lines, nil
	}
	indent := lines[0].indent
	if indent < minIndent {
		return lines, nil
	}
	for len(lines) > 0 {
		l := lines[0]
		if l.indent < indent {
			return lines, nil
		}
		if l.indent > indent {
			return nil, fmt.Errorf("line %d: unexpected indent", l.num)
		}
		switch {
		case l.isItem:
			if parent.Kind == MapNode && len(parent.Entries) > 0 {
				return nil, fmt.Errorf("line %d: list item inside property block", l.num)
			}
			parent.Kind = ListNode
			var err error
			lines, err = parseListItem(lines, parent)
			if err != nil {
				return nil, err
			}
		case l.hasKey:
			if parent.Kind == ListNode && len(parent.Items) > 0 {
				return nil, fmt.Errorf("line %d: property inside list block", l.num)
			}
			parent.Kind = MapNode
			var child *Node
			var err error
			lines = lines[1:]
			if l.rest != "" {
				child = parseInline(l.num, l.rest)
			} else {
				// Value is the following indented block (or empty map).
				child = newMap(l.num)
				if len(lines) > 0 && lines[0].indent > indent {
					sub := lines[0].indent
					lines, err = parseBlock(lines, sub, child)
					if err != nil {
						return nil, err
					}
				}
			}
			if err := parent.set(l.key, child); err != nil {
				return nil, err
			}
			_ = err
		default:
			// A bare scalar line: only legal as the entire body of a block
			// value, e.g. the Figure 9 style where a flow's pipeline sits
			// on its own line under "+D.name:".
			if parent.Kind != ListNode && len(parent.Entries) == 0 && len(parent.Items) == 0 {
				if parent.Scalar != "" {
					parent.Scalar += " "
				}
				parent.Kind = ScalarNode
				parent.Scalar += l.rest
				lines = lines[1:]
				continue
			}
			return nil, fmt.Errorf("line %d: expected 'key:' or '- item', got %q", l.num, l.rest)
		}
	}
	return lines, nil
}

// parseListItem consumes one "- ..." item (possibly a multi-line map
// item, as in groupby aggregates) and appends it to list.
func parseListItem(lines []line, list *Node) ([]line, error) {
	l := lines[0]
	lines = lines[1:]
	if !l.hasKey {
		// "- scalar" or "- [inline, list]"
		list.Items = append(list.Items, parseInline(l.num, l.rest))
		return lines, nil
	}
	// "- key: value" starts a map item; following deeper-indented keyed
	// lines belong to it. The paper also indents continuation keys to the
	// same column as the key after "- " — handle both by accepting keyed
	// lines at indent > l.indent as continuations.
	item := newMap(l.num)
	var first *Node
	if l.rest != "" {
		first = parseInline(l.num, l.rest)
	} else {
		first = newMap(l.num)
		if len(lines) > 0 && lines[0].indent > l.indent+2 && !lines[0].isItem {
			var err error
			lines, err = parseBlock(lines, lines[0].indent, first)
			if err != nil {
				return nil, err
			}
		}
	}
	if err := item.set(l.key, first); err != nil {
		return nil, err
	}
	for len(lines) > 0 {
		n := lines[0]
		if n.isItem || !n.hasKey || n.indent <= l.indent {
			break
		}
		lines = lines[1:]
		var child *Node
		if n.rest != "" {
			child = parseInline(n.num, n.rest)
		} else {
			child = newMap(n.num)
			if len(lines) > 0 && lines[0].indent > n.indent {
				var err error
				lines, err = parseBlock(lines, lines[0].indent, child)
				if err != nil {
					return nil, err
				}
			}
		}
		if err := item.set(n.key, child); err != nil {
			return nil, err
		}
	}
	list.Items = append(list.Items, item)
	return lines, nil
}

// parseInline parses an inline value: a bracketed list or a scalar.
func parseInline(num int, s string) *Node {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") {
		list := newList(num)
		for _, part := range splitTopLevel(s[1:len(s)-1], ',') {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			list.Items = append(list.Items, parseInline(num, part))
		}
		return list
	}
	return newScalar(num, unquote(s))
}

// splitTopLevel splits s on sep outside quotes/brackets.
func splitTopLevel(s string, sep byte) []string {
	var parts []string
	start := 0
	inQ := byte(0)
	depth := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inQ != 0:
			if c == '\\' {
				i++
			} else if c == inQ {
				inQ = 0
			}
		case c == '\'' || c == '"':
			inQ = c
		case c == '[' || c == '(':
			depth++
		case c == ']' || c == ')':
			depth--
		case c == sep && depth == 0:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	parts = append(parts, s[start:])
	return parts
}

// unquote strips one level of matching quotes.
func unquote(s string) string {
	if len(s) >= 2 {
		if s[0] == '\'' && s[len(s)-1] == '\'' || s[0] == '"' && s[len(s)-1] == '"' {
			body := s[1 : len(s)-1]
			body = strings.ReplaceAll(body, `\`+string(s[0]), string(s[0]))
			return body
		}
	}
	return s
}
