package store

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS that models fsync durability: every file
// tracks how many of its bytes have been synced, and Durable derives
// the disk image a crash would leave behind. It is the substrate the
// fault-injection tests (FaultFS) recover from.
//
// The durability model: file data is durable up to the last Sync;
// directory operations (create, rename, remove) are treated as atomic
// and immediately durable — the crash-point matrix injects failures at
// those operation boundaries instead of modeling directory journals.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool
}

type memFile struct {
	data   []byte
	synced int
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: map[string]*memFile{}, dirs: map[string]bool{"": true, ".": true}}
}

// UnsyncedPolicy decides what happens to un-fsynced bytes in a crash's
// durable image. Real crashes land anywhere on this spectrum, so the
// recovery tests run the whole matrix.
type UnsyncedPolicy int

const (
	// DropUnsynced loses every byte written after the last fsync — the
	// conservative page-cache-gone case.
	DropUnsynced UnsyncedPolicy = iota
	// KeepUnsynced persists everything written — the lucky case where
	// the kernel flushed on its own before the crash.
	KeepUnsynced
	// TornUnsynced persists half of the unsynced suffix — a torn tail
	// the WAL must detect and truncate on replay.
	TornUnsynced
)

// Durable returns a copy of the filesystem as a crash would leave it:
// each file truncated to its synced prefix plus whatever the policy
// keeps of the unsynced tail. Files that were never synced disappear
// entirely under DropUnsynced (their directory entry was never made
// durable by a data fsync).
func (m *MemFS) Durable(policy UnsyncedPolicy) *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewMemFS()
	for d := range m.dirs {
		out.dirs[d] = true
	}
	for name, f := range m.files {
		n := f.synced
		switch policy {
		case KeepUnsynced:
			n = len(f.data)
		case TornUnsynced:
			n = f.synced + (len(f.data)-f.synced)/2
		}
		if n == 0 && f.synced == 0 && policy == DropUnsynced {
			continue
		}
		out.files[name] = &memFile{data: append([]byte(nil), f.data[:n]...), synced: n}
	}
	return out
}

// memHandle is an append-only handle on a MemFS file.
type memHandle struct {
	fs   *MemFS
	name string
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, ok := h.fs.files[h.name]
	if !ok {
		return 0, fmt.Errorf("memfs: write to removed file %s", h.name)
	}
	f.data = append(f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, ok := h.fs.files[h.name]
	if !ok {
		return fmt.Errorf("memfs: sync of removed file %s", h.name)
	}
	f.synced = len(f.data)
	return nil
}

func (h *memHandle) Close() error { return nil }

func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[dir] = true
	return nil
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = &memFile{}
	return &memHandle{fs: m, name: name}, nil
}

func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return nil, fmt.Errorf("memfs: open %s: %w", name, os.ErrNotExist)
	}
	return &memHandle{fs: m, name: name}, nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("memfs: read %s: %w", name, os.ErrNotExist)
	}
	return append([]byte(nil), f.data...), nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("memfs: rename %s: %w", oldname, os.ErrNotExist)
	}
	m.files[newname] = f
	delete(m.files, oldname)
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("memfs: remove %s: %w", name, os.ErrNotExist)
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) List(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := dir
	if prefix != "" && !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	var out []string
	for name := range m.files {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		rest := strings.TrimPrefix(name, prefix)
		if rest != "" && !strings.Contains(rest, "/") {
			out = append(out, rest)
		}
	}
	sort.Strings(out)
	return out, nil
}

func (m *MemFS) SyncDir(dir string) error { return nil }
