package persist

import (
	"encoding/json"
	"fmt"
	"time"

	"shareinsights/internal/connector"
	"shareinsights/internal/schema"
	"shareinsights/internal/share"
	"shareinsights/internal/table"
	"shareinsights/internal/vcs"
)

// Record type bytes. Each component directory uses type 1 for its
// incremental entry; snapshots carry the full component state.
const recEntry byte = 1

// tableBlob serializes a table: the row data in the compact SBIN wire
// format (shared with the sbin connector) plus the column definitions
// SBIN does not carry (payload paths).
type tableBlob struct {
	Columns []colDef `json:"columns"`
	SBIN    []byte   `json:"sbin"`
}

type colDef struct {
	Name string `json:"name"`
	Path string `json:"path,omitempty"`
}

func encodeTable(t *table.Table) tableBlob {
	cols := t.Schema().Columns()
	defs := make([]colDef, len(cols))
	for i, c := range cols {
		defs[i] = colDef{Name: c.Name, Path: c.Path}
	}
	return tableBlob{Columns: defs, SBIN: connector.EncodeSBIN(t)}
}

func decodeTable(b tableBlob) (*table.Table, error) {
	_, rows, err := connector.DecodeSBIN(b.SBIN)
	if err != nil {
		return nil, fmt.Errorf("persist: decode table: %w", err)
	}
	cols := make([]schema.Column, len(b.Columns))
	for i, c := range b.Columns {
		cols[i] = schema.Column{Name: c.Name, Path: c.Path}
	}
	s, err := schema.New(cols...)
	if err != nil {
		return nil, fmt.Errorf("persist: decode table schema: %w", err)
	}
	t := table.New(s)
	for _, r := range rows {
		t.Append(r)
	}
	return t, nil
}

// vcsRecord journals one repository mutation.
type vcsRecord struct {
	Repo  string    `json:"repo"`
	Entry vcs.Entry `json:"entry"`
}

// vcsSnapshot is the full state of every repository.
type vcsSnapshot struct {
	Repos []*vcs.RepoState `json:"repos"`
}

// catObject serializes one published object.
type catObject struct {
	Kind      string     `json:"kind"` // share.EntryPublish or share.EntryRemove
	Name      string     `json:"name"`
	Dashboard string     `json:"dashboard,omitempty"`
	Version   int        `json:"version,omitempty"`
	UpdatedAt time.Time  `json:"updated_at,omitzero"`
	Table     *tableBlob `json:"table,omitempty"`
}

func encodeCatEntry(e share.Entry) ([]byte, error) {
	rec := catObject{Kind: e.Kind, Name: e.Name}
	if e.Kind == share.EntryPublish {
		if e.Object == nil {
			return nil, fmt.Errorf("persist: publish entry without object")
		}
		blob := encodeTable(e.Object.Data)
		rec.Name = e.Object.Name
		rec.Dashboard = e.Object.Dashboard
		rec.Version = e.Object.Version
		rec.UpdatedAt = e.Object.UpdatedAt
		rec.Table = &blob
	}
	return json.Marshal(rec)
}

func decodeCatEntry(payload []byte) (share.Entry, error) {
	var rec catObject
	if err := json.Unmarshal(payload, &rec); err != nil {
		return share.Entry{}, fmt.Errorf("persist: decode catalog record: %w", err)
	}
	return catEntryOf(rec)
}

func catEntryOf(rec catObject) (share.Entry, error) {
	if rec.Kind == share.EntryRemove {
		return share.Entry{Kind: share.EntryRemove, Name: rec.Name}, nil
	}
	if rec.Table == nil {
		return share.Entry{}, fmt.Errorf("persist: catalog publish %q without table", rec.Name)
	}
	t, err := decodeTable(*rec.Table)
	if err != nil {
		return share.Entry{}, err
	}
	return share.Entry{Kind: share.EntryPublish, Object: &share.Object{
		Name:      rec.Name,
		Dashboard: rec.Dashboard,
		Schema:    t.Schema(),
		Data:      t,
		UpdatedAt: rec.UpdatedAt,
		Version:   rec.Version,
	}}, nil
}

// catSnapshot is the full catalog state.
type catSnapshot struct {
	Objects []catObject `json:"objects"`
}

// cacheRecord journals one last-good source table.
type cacheRecord struct {
	Dashboard string    `json:"dashboard"`
	Source    string    `json:"source"`
	Table     tableBlob `json:"table"`
}

// cacheSnapshot is the full last-good cache state.
type cacheSnapshot struct {
	Entries []cacheRecord `json:"entries"`
}
