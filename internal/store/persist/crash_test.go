package persist

import (
	"fmt"
	"testing"
	"time"

	"shareinsights/internal/dashboard"
	"shareinsights/internal/store"
	"shareinsights/internal/table"
	"shareinsights/internal/vcs"
)

// crashWorkload drives a scripted mutation sequence against a store and
// records what was acknowledged. The live components themselves ARE the
// acked model: journal-before-install means they never hold an
// unacknowledged mutation.
type crashWorkload struct {
	st    *Store
	p     *dashboard.Platform
	repo  *vcs.Repo
	clock func() time.Time

	adopted bool
	// attemptedVersions maps catalog object name -> version -> content
	// fingerprint, for every publish attempted (acked or not).
	attemptedVersions map[string]map[int]string
	// attemptedCache maps dash\x00source -> fingerprints attempted.
	attemptedCache map[string]map[string]bool
	// attemptedBlobs is every flow-file content ever committed.
	attemptedBlobs map[string]bool
	ackedOps       int
}

func tbl(i int) *table.Table { return sampleTable(i + 1) }

func newCrashWorkload(st *Store) *crashWorkload {
	w := &crashWorkload{
		st:                st,
		p:                 dashboard.NewPlatform(),
		clock:             fixedClock(),
		attemptedVersions: map[string]map[int]string{},
		attemptedCache:    map[string]map[string]bool{},
		attemptedBlobs:    map[string]bool{},
	}
	st.WirePlatform(w.p)
	w.repo = vcs.NewRepo("alpha")
	w.repo.SetClock(w.clock)
	return w
}

func (w *crashWorkload) commit(msg, content string) error {
	w.attemptedBlobs[content] = true
	_, err := w.repo.Commit(vcs.DefaultBranch, "ann", msg, []byte(content))
	return err
}

func (w *crashWorkload) publish(name string, t *table.Table) error {
	next := 1
	if cur, ok := w.p.Catalog.Resolve(name); ok {
		next = cur.Version + 1
	}
	if w.attemptedVersions[name] == nil {
		w.attemptedVersions[name] = map[int]string{}
	}
	w.attemptedVersions[name][next] = t.Fingerprint()
	_, err := w.p.Catalog.Publish("alpha", name, t)
	return err
}

func (w *crashWorkload) cachePut(src string, t *table.Table) error {
	key := "alpha\x00" + src
	if w.attemptedCache[key] == nil {
		w.attemptedCache[key] = map[string]bool{}
	}
	w.attemptedCache[key][t.Fingerprint()] = true
	w.p.LastGood.Put("alpha", src, t)
	return nil // Put is best-effort by design; durability checked on recovery
}

// run executes the script, stopping at the first failed operation (after
// a crash point fires every subsequent operation fails too).
func (w *crashWorkload) run() {
	steps := []func() error{
		func() error { return w.commit("initial", "flow v1") },
		func() error {
			if err := w.st.AdoptRepo(w.repo); err != nil {
				return err
			}
			w.adopted = true
			return nil
		},
		func() error { return w.commit("second", "flow v2") },
		func() error { return w.publish("sales", tbl(0)) },
		func() error { return w.cachePut("raw", tbl(1)) },
		func() error { return w.commit("third", "flow v3") },
		func() error { return w.repo.Branch(vcs.DefaultBranch, "dev") },
		func() error { return w.publish("sales", tbl(2)) },
		func() error { return w.publish("metrics", tbl(3)) },
		func() error { return w.commit("fourth", "flow v4") },
		func() error { return w.cachePut("raw", tbl(4)) },
		func() error { return w.p.Catalog.Remove("alpha", "metrics") },
		func() error { return w.commit("fifth", "flow v5") },
	}
	for _, step := range steps {
		if step() != nil {
			return
		}
		w.ackedOps++
	}
}

// verifyRecovery checks the recovered store against the workload's
// acked state. exact demands byte-identical equality (every component
// equals the acknowledged state); otherwise the recovered state may
// additionally contain the single in-flight operation that was durable
// but never acknowledged.
func (w *crashWorkload) verifyRecovery(t *testing.T, name string, st2 *Store, exact bool) {
	t.Helper()
	p2 := dashboard.NewPlatform()
	if err := st2.WirePlatform(p2); err != nil {
		t.Fatalf("%s: wire recovered platform: %v", name, err)
	}
	recRepo := st2.Repos()["alpha"]

	// VCS: every acknowledged commit and branch must be recovered
	// byte-identically; nothing outside the attempted set may appear.
	if w.adopted {
		if recRepo == nil {
			t.Fatalf("%s: adopted repo lost", name)
		}
		if exact && !recRepo.Equal(w.repo) {
			t.Fatalf("%s: recovered repo differs from acked:\n%+v\nvs\n%+v", name, recRepo.State(), w.repo.State())
		}
		ast, rst := w.repo.State(), recRepo.State()
		for hash, c := range ast.Commits {
			rc, ok := rst.Commits[hash]
			if !ok {
				t.Fatalf("%s: acked commit %s lost", name, hash[:10])
			}
			if string(rst.Blobs[rc.Blob]) != string(ast.Blobs[c.Blob]) {
				t.Fatalf("%s: commit %s content differs", name, hash[:10])
			}
		}
		for b, tip := range ast.Branches {
			if rst.Branches[b] != tip && !(!exact && rst.Branches[b] != "") {
				t.Fatalf("%s: acked branch %s at %s, recovered %s", name, b, tip[:10], rst.Branches[b])
			}
		}
		if len(rst.Commits) > len(ast.Commits)+1 {
			t.Fatalf("%s: recovered %d commits, acked %d", name, len(rst.Commits), len(ast.Commits))
		}
		for _, c := range rst.Commits {
			if !w.attemptedBlobs[string(rst.Blobs[c.Blob])] {
				t.Fatalf("%s: recovered commit %s has never-attempted content", name, c.Hash[:10])
			}
		}
	} else if recRepo != nil && exact {
		t.Fatalf("%s: unadopted repo present after recovery", name)
	}

	// Catalog: recovered objects must come from the attempted set, and
	// must match the acked catalog up to one in-flight divergence.
	divergences := 0
	seen := map[string]bool{}
	for _, name2 := range p2.Catalog.Names() {
		ro, _ := p2.Catalog.Resolve(name2)
		seen[name2] = true
		wantFP, ok := w.attemptedVersions[name2][ro.Version]
		if !ok {
			t.Fatalf("%s: recovered object %s@v%d never attempted", name, name2, ro.Version)
		}
		if ro.Data.Fingerprint() != wantFP {
			t.Fatalf("%s: recovered object %s@v%d content differs", name, name2, ro.Version)
		}
		ao, ok := w.p.Catalog.Resolve(name2)
		if !ok || ao.Version != ro.Version {
			divergences++
		}
	}
	for _, name2 := range w.p.Catalog.Names() {
		if !seen[name2] {
			divergences++
		}
	}
	if exact && divergences != 0 {
		t.Fatalf("%s: recovered catalog differs from acked (%d divergences)", name, divergences)
	}
	if divergences > 1 {
		t.Fatalf("%s: %d catalog divergences; at most one in-flight op allowed", name, divergences)
	}

	// Cache: every recovered entry must be an attempted content.
	p2.LastGood.Each(func(dash, src string, tb *table.Table) {
		if !w.attemptedCache[dash+"\x00"+src][tb.Fingerprint()] {
			t.Fatalf("%s: recovered cache entry %s/%s never attempted", name, dash, src)
		}
	})
}

// serviceable proves the recovered store accepts and persists new
// mutations: commit + publish, reopen, verify.
func serviceable(t *testing.T, name string, fs store.FS, st2 *Store) {
	t.Helper()
	p2 := dashboard.NewPlatform()
	st2.WirePlatform(p2)
	repo := st2.Repos()["alpha"]
	if repo == nil {
		repo = vcs.NewRepo("alpha")
		repo.SetClock(fixedClock())
		if err := st2.AdoptRepo(repo); err != nil {
			t.Fatalf("%s: adopt after recovery: %v", name, err)
		}
	}
	hash, err := repo.Commit(vcs.DefaultBranch, "bob", "post-crash", []byte("rebuilt"))
	if err != nil {
		t.Fatalf("%s: commit after recovery: %v", name, err)
	}
	if _, err := p2.Catalog.Publish("alpha", "post", sampleTable(2)); err != nil {
		t.Fatalf("%s: publish after recovery: %v", name, err)
	}
	st2.Close()
	st3, err := Open(fs, Options{Now: fixedClock(), CompactRecords: 3})
	if err != nil {
		t.Fatalf("%s: reopen after post-crash writes: %v", name, err)
	}
	defer st3.Close()
	if _, err := st3.Repos()["alpha"].ContentAt(hash); err != nil {
		t.Fatalf("%s: post-crash commit lost: %v", name, err)
	}
	p3 := dashboard.NewPlatform()
	st3.WirePlatform(p3)
	if _, ok := p3.Catalog.Resolve("post"); !ok {
		t.Fatalf("%s: post-crash publish lost", name)
	}
}

// TestCrashKillPointMatrix kills the store at every filesystem
// operation the workload performs — every write (whole and mid-record),
// fsync, file creation, rename and remove, both before and after the
// operation applies — then recovers from the crash's durable image and
// asserts the recovered state equals the acknowledged prefix.
func TestCrashKillPointMatrix(t *testing.T) {
	type variant struct {
		op      store.Op
		mode    store.Mode
		partial int
		policy  store.UnsyncedPolicy
		exact   bool // recovery must equal acked state exactly
	}
	variants := []variant{
		// The four canonical kill points under the conservative policy.
		{store.OpWrite, store.Crash, 0, store.DropUnsynced, true},
		{store.OpWrite, store.Crash, 7, store.DropUnsynced, true},       // mid-record torn write
		{store.OpSync, store.Crash, 0, store.DropUnsynced, true},        // pre-fsync
		{store.OpRename, store.Crash, 0, store.DropUnsynced, true},      // mid-rename
		{store.OpRename, store.CrashAfter, 0, store.DropUnsynced, true}, // post-rename
		// Directory-operation kill points.
		{store.OpCreate, store.Crash, 0, store.DropUnsynced, true},
		{store.OpRemove, store.Crash, 0, store.DropUnsynced, true},
		{store.OpRemove, store.CrashAfter, 0, store.DropUnsynced, true},
		// CrashAfter on data ops can leave one durable-but-unacked op.
		{store.OpWrite, store.CrashAfter, 0, store.DropUnsynced, false},
		{store.OpSync, store.CrashAfter, 0, store.DropUnsynced, false},
		// Optimistic and torn page-cache policies: unsynced bytes may
		// survive (whole or torn), recovery may include the in-flight op.
		{store.OpWrite, store.Crash, 7, store.KeepUnsynced, false},
		{store.OpWrite, store.Crash, 7, store.TornUnsynced, false},
		{store.OpSync, store.Crash, 0, store.KeepUnsynced, false},
		{store.OpSync, store.Crash, 0, store.TornUnsynced, false},
	}
	for _, v := range variants {
		fired := 0
		for after := 0; ; after++ {
			name := fmt.Sprintf("%s/mode=%d/partial=%d/policy=%d/after=%d", v.op, v.mode, v.partial, v.policy, after)
			ffs := store.NewFaultFS()
			ffs.Inject(store.Fault{Op: v.op, After: after, Mode: v.mode, Partial: v.partial})
			// Small compaction threshold so snapshot rotations (create,
			// rename, remove) happen inside the workload window.
			st, err := Open(ffs, Options{Now: fixedClock(), CompactRecords: 3})
			var w *crashWorkload
			if err == nil {
				w = newCrashWorkload(st)
				w.run()
			}
			if !ffs.Crashed() {
				if err != nil {
					t.Fatalf("%s: open failed without crash: %v", name, err)
				}
				break // swept past the last matching operation
			}
			fired++
			durable := ffs.Durable(v.policy)
			st2, err := Open(durable, Options{Now: fixedClock(), CompactRecords: 3})
			if err != nil {
				t.Fatalf("%s: recovery open failed: %v", name, err)
			}
			if w != nil {
				w.verifyRecovery(t, name, st2, v.exact)
			}
			serviceable(t, name, durable, st2)
		}
		if fired == 0 {
			t.Errorf("variant %s/mode=%d never fired", v.op, v.mode)
		}
	}
}
