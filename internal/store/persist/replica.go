package persist

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"shareinsights/internal/dashboard"
	"shareinsights/internal/obs/history"
	"shareinsights/internal/share"
	"shareinsights/internal/store"
	"shareinsights/internal/table"
	"shareinsights/internal/vcs"
)

// ComponentNames lists the replicated component directories in ship
// order. Followers apply them independently; the order only fixes how
// status surfaces enumerate them.
var ComponentNames = []string{"vcs", "catalog", "cache", "history"}

// Dir exposes one component's durable directory for WAL shipping
// (docs/REPLICATION.md). Nil for unknown components.
func (s *Store) Dir(component string) *store.Dir {
	switch component {
	case "vcs":
		return s.vcsC.dir
	case "catalog":
		return s.catC.dir
	case "cache":
		return s.cacheC.dir
	case "history":
		return s.recorder.Dir()
	}
	return nil
}

// Components is the follower half of the replay path: the same
// in-memory objects Open rebuilds from local segments, fed shipped
// frames instead. All apply methods go through the exact decode logic
// local recovery uses, so a follower's state after applying a shipped
// prefix equals a leader recovery over that prefix.
//
// The contained objects are internally locked (vcs.Repo, share.Catalog,
// dashboard.SourceCache, history.Recorder), so readers may hold them
// while the pull loop applies new frames.
type Components struct {
	mu       sync.Mutex
	repos    map[string]*vcs.Repo
	catalog  *share.Catalog
	cache    *dashboard.SourceCache
	recorder *history.Recorder
	onRepos  func(map[string]*vcs.Repo)
}

// NewComponents returns an empty follower state.
func NewComponents() *Components {
	return &Components{
		repos:    map[string]*vcs.Repo{},
		catalog:  share.NewCatalog(),
		cache:    dashboard.NewSourceCache(),
		recorder: history.NewRecorder(history.Options{}),
	}
}

// OnRepos installs a callback fired (with a copy of the full repo map)
// whenever the repository set changes — a shipped record created a repo,
// or a bootstrap replaced the set. The server uses it to refresh its
// routing table.
func (c *Components) OnRepos(fn func(map[string]*vcs.Repo)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onRepos = fn
}

func (c *Components) reposCopyLocked() map[string]*vcs.Repo {
	out := make(map[string]*vcs.Repo, len(c.repos))
	for n, r := range c.repos {
		out[n] = r
	}
	return out
}

// Repos returns the replicated repositories by name (a copy).
func (c *Components) Repos() map[string]*vcs.Repo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reposCopyLocked()
}

// Catalog returns the replicated shared-object catalog.
func (c *Components) Catalog() *share.Catalog { return c.catalog }

// Cache returns the replicated last-good source cache.
func (c *Components) Cache() *dashboard.SourceCache { return c.cache }

// History returns the replicated run-history recorder (memory-only:
// the follower's durability lives in its replica WAL, not here).
func (c *Components) History() *history.Recorder { return c.recorder }

// ApplySnapshot replaces one component's state with a leader bootstrap
// payload (nil = reset to empty).
func (c *Components) ApplySnapshot(component string, payload []byte) error {
	switch component {
	case "vcs":
		repos := map[string]*vcs.Repo{}
		if len(payload) > 0 {
			var snap vcsSnapshot
			if err := json.Unmarshal(payload, &snap); err != nil {
				return fmt.Errorf("persist: decode vcs snapshot: %w", err)
			}
			for _, st := range snap.Repos {
				repos[st.Name] = vcs.FromState(st)
			}
		}
		c.mu.Lock()
		c.repos = repos
		fn := c.onRepos
		copied := c.reposCopyLocked()
		c.mu.Unlock()
		if fn != nil {
			fn(copied)
		}
		return nil
	case "catalog":
		return reloadCatalog(c.catalog, payload)
	case "cache":
		c.cache.Reset()
		if len(payload) == 0 {
			return nil
		}
		var snap cacheSnapshot
		if err := json.Unmarshal(payload, &snap); err != nil {
			return fmt.Errorf("persist: decode cache snapshot: %w", err)
		}
		for _, cr := range snap.Entries {
			if err := seedCacheRecord(c.cache, cr); err != nil {
				return err
			}
		}
		return nil
	case "history":
		return c.recorder.ApplySnapshot(payload)
	}
	return fmt.Errorf("persist: unknown component %q", component)
}

// ApplyRecord folds one shipped WAL record into a component — the same
// apply path local recovery replays.
func (c *Components) ApplyRecord(component string, rec store.Record) error {
	switch component {
	case "vcs":
		var vr vcsRecord
		if err := json.Unmarshal(rec.Payload, &vr); err != nil {
			return fmt.Errorf("persist: decode vcs record: %w", err)
		}
		c.mu.Lock()
		r := c.repos[vr.Repo]
		created := r == nil
		if created {
			r = vcs.NewRepo(vr.Repo)
			c.repos[vr.Repo] = r
		}
		fn := c.onRepos
		var copied map[string]*vcs.Repo
		if created && fn != nil {
			copied = c.reposCopyLocked()
		}
		c.mu.Unlock()
		if err := r.Apply(vr.Entry); err != nil {
			return fmt.Errorf("persist: replay vcs record for %q: %w", vr.Repo, err)
		}
		if copied != nil {
			fn(copied)
		}
		return nil
	case "catalog":
		e, err := decodeCatEntry(rec.Payload)
		if err != nil {
			return err
		}
		return c.catalog.Apply(e)
	case "cache":
		var cr cacheRecord
		if err := json.Unmarshal(rec.Payload, &cr); err != nil {
			return fmt.Errorf("persist: decode cache record: %w", err)
		}
		return seedCacheRecord(c.cache, cr)
	case "history":
		return c.recorder.ApplyRecord(rec)
	}
	return fmt.Errorf("persist: unknown component %q", component)
}

// ExportSnapshot serializes one component's full state in its snapshot
// format — the payload the follower writes into its own replica WAL at
// compaction, replayable by ApplySnapshot.
func (c *Components) ExportSnapshot(component string) ([]byte, error) {
	switch component {
	case "vcs":
		c.mu.Lock()
		names := make([]string, 0, len(c.repos))
		for n := range c.repos {
			names = append(names, n)
		}
		sort.Strings(names)
		snap := vcsSnapshot{Repos: make([]*vcs.RepoState, 0, len(names))}
		for _, n := range names {
			snap.Repos = append(snap.Repos, c.repos[n].State())
		}
		c.mu.Unlock()
		return json.Marshal(snap)
	case "catalog":
		return json.Marshal(exportCatalog(c.catalog))
	case "cache":
		return json.Marshal(exportCache(c.cache))
	case "history":
		return c.recorder.ExportSnapshot()
	}
	return nil, fmt.Errorf("persist: unknown component %q", component)
}

// reloadCatalog replaces a catalog's contents with a snapshot payload:
// names absent from the snapshot are removed, present ones re-applied.
func reloadCatalog(cat *share.Catalog, payload []byte) error {
	var snap catSnapshot
	if len(payload) > 0 {
		if err := json.Unmarshal(payload, &snap); err != nil {
			return fmt.Errorf("persist: decode catalog snapshot: %w", err)
		}
	}
	keep := make(map[string]bool, len(snap.Objects))
	for _, o := range snap.Objects {
		keep[o.Name] = true
	}
	for _, name := range cat.Names() {
		if !keep[name] {
			if err := cat.Apply(share.Entry{Kind: share.EntryRemove, Name: name}); err != nil {
				return err
			}
		}
	}
	for _, o := range snap.Objects {
		e, err := catEntryOf(o)
		if err != nil {
			return err
		}
		if err := cat.Apply(e); err != nil {
			return err
		}
	}
	return nil
}

// seedCacheRecord installs one decoded cache record (replay path).
func seedCacheRecord(cache *dashboard.SourceCache, cr cacheRecord) error {
	t, err := decodeTable(cr.Table)
	if err != nil {
		return err
	}
	cache.Seed(cr.Dashboard, cr.Source, t)
	return nil
}

// exportCatalog builds the catalog snapshot payload (shared with the
// leader's compaction path in catalogJournal).
func exportCatalog(cat *share.Catalog) catSnapshot {
	objs := cat.Objects()
	snap := catSnapshot{Objects: make([]catObject, 0, len(objs))}
	for _, o := range objs {
		blob := encodeTable(o.Data)
		snap.Objects = append(snap.Objects, catObject{
			Kind: share.EntryPublish, Name: o.Name, Dashboard: o.Dashboard,
			Version: o.Version, UpdatedAt: o.UpdatedAt, Table: &blob,
		})
	}
	return snap
}

// exportCache builds the cache snapshot payload, sorted for stable
// output.
func exportCache(cache *dashboard.SourceCache) cacheSnapshot {
	snap := cacheSnapshot{}
	cache.Each(func(d, src string, tb *table.Table) {
		snap.Entries = append(snap.Entries, cacheRecord{Dashboard: d, Source: src, Table: encodeTable(tb)})
	})
	sort.Slice(snap.Entries, func(a, b int) bool {
		if snap.Entries[a].Dashboard != snap.Entries[b].Dashboard {
			return snap.Entries[a].Dashboard < snap.Entries[b].Dashboard
		}
		return snap.Entries[a].Source < snap.Entries[b].Source
	})
	return snap
}
