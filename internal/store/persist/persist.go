// Package persist wires the platform's stateful components — the
// flow-file VCS repositories, the shared-object catalog and the
// last-good source cache — to crash-consistent storage (internal/store).
//
// Each component gets its own WAL + snapshot directory. Mutations are
// journaled write-ahead: the component's journal hook appends to the
// WAL (fsynced) before the mutation is installed in memory, so an
// operation is acknowledged to callers only once it is durable. After a
// crash, recovery replays snapshot + WAL and the rebuilt state equals
// exactly the acknowledged prefix of operations.
//
// Compaction uses a shadow replica per component: every journaled entry
// is also applied to a shadow copy under the store's own lock, so a
// snapshot can be exported from the shadow at a WAL-size threshold
// without racing appends — no record can land in a WAL segment after
// the snapshot that supersedes it was cut.
package persist

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"shareinsights/internal/dashboard"
	"shareinsights/internal/obs"
	"shareinsights/internal/obs/history"
	"shareinsights/internal/share"
	"shareinsights/internal/store"
	"shareinsights/internal/table"
	"shareinsights/internal/vcs"
)

// Options configures a Store.
type Options struct {
	// Metrics receives the si_store_* instruments (optional).
	Metrics *obs.Registry
	// CompactBytes triggers a snapshot once a component's WAL exceeds
	// this many bytes (default 4 MiB).
	CompactBytes int
	// CompactRecords triggers a snapshot once a component's WAL holds
	// this many records (default 1024).
	CompactRecords int
	// Now overrides the clock (tests).
	Now func() time.Time
}

// component bundles one durable directory with its shadow-replica lock.
type component struct {
	mu  sync.Mutex
	dir *store.Dir
}

// Store is the platform's durable state: four journaled components
// sharing one data directory (vcs, catalog, cache, history).
type Store struct {
	vcsC, catC, cacheC component

	// recorder is the run-history flight recorder; it owns its own
	// store.Dir under "history" and journals itself (one WAL record
	// per run, snapshot at its own thresholds).
	recorder *history.Recorder

	opts Options
	now  func() time.Time

	// Shadow replicas, guarded by their component's mutex.
	shadowRepos   map[string]*vcs.Repo
	shadowCatalog *share.Catalog
	shadowCache   *dashboard.SourceCache

	// liveRepos are the journaled repositories handed to the server,
	// guarded by vcsC.mu.
	liveRepos map[string]*vcs.Repo

	recoveries []*store.Recovery
}

// ComponentStatus is one component's durability state for the health
// surface: the recovery outcome plus current WAL size, damage, and the
// shipping cursor (generation + committed offset) followers track
// (docs/REPLICATION.md).
type ComponentStatus struct {
	store.Recovery
	WALBytes        int    `json:"wal_bytes"`
	WALRecords      int    `json:"wal_records"`
	Generation      uint64 `json:"generation"`
	CommittedOffset int64  `json:"committed_offset"`
	Damaged         string `json:"damaged,omitempty"`
}

// Open opens (creating if needed) the durable store under fs and runs
// recovery for every component. Use store.NewOSFS(dataDir) in
// production; tests inject MemFS/FaultFS.
func Open(fs store.FS, opts Options) (*Store, error) {
	if opts.CompactBytes <= 0 {
		opts.CompactBytes = 4 << 20
	}
	if opts.CompactRecords <= 0 {
		opts.CompactRecords = 1024
	}
	s := &Store{
		opts:          opts,
		now:           opts.Now,
		shadowRepos:   map[string]*vcs.Repo{},
		shadowCatalog: share.NewCatalog(),
		shadowCache:   dashboard.NewSourceCache(),
		liveRepos:     map[string]*vcs.Repo{},
	}
	if s.now == nil {
		s.now = time.Now
	}
	var err error
	if s.vcsC.dir, err = s.recoverVCS(fs); err != nil {
		return nil, err
	}
	if s.catC.dir, err = s.recoverCatalog(fs); err != nil {
		s.vcsC.dir.Close()
		return nil, err
	}
	if s.cacheC.dir, err = s.recoverCache(fs); err != nil {
		s.vcsC.dir.Close()
		s.catC.dir.Close()
		return nil, err
	}
	if s.recorder, err = history.Open(fs, history.Options{Metrics: opts.Metrics, Now: s.now}); err != nil {
		s.vcsC.dir.Close()
		s.catC.dir.Close()
		s.cacheC.dir.Close()
		return nil, err
	}
	s.recoveries = append(s.recoveries, s.recorder.Recovery())
	// Live repositories are rebuilt from the shadows: distinct objects
	// (the journal hook applies entries to the shadow under the store
	// lock, which would deadlock if live and shadow were the same repo)
	// sharing immutable blob and commit payloads.
	for name, sh := range s.shadowRepos {
		live := vcs.FromState(sh.State())
		live.SetJournal(s.repoJournal(name))
		s.liveRepos[name] = live
	}
	return s, nil
}

func (s *Store) recoverVCS(fs store.FS) (*store.Dir, error) {
	dir, rec, err := store.OpenDir(fs, "vcs", "vcs", s.opts.Metrics)
	if err != nil {
		return nil, err
	}
	if len(rec.Snapshot) > 0 {
		var snap vcsSnapshot
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			dir.Close()
			return nil, fmt.Errorf("persist: decode vcs snapshot: %w", err)
		}
		for _, st := range snap.Repos {
			s.shadowRepos[st.Name] = vcs.FromState(st)
		}
	}
	for _, r := range rec.Records {
		var vr vcsRecord
		if err := json.Unmarshal(r.Payload, &vr); err != nil {
			dir.Close()
			return nil, fmt.Errorf("persist: decode vcs record: %w", err)
		}
		sh := s.shadowRepos[vr.Repo]
		if sh == nil {
			sh = vcs.NewRepo(vr.Repo)
			s.shadowRepos[vr.Repo] = sh
		}
		if err := sh.Apply(vr.Entry); err != nil {
			dir.Close()
			return nil, fmt.Errorf("persist: replay vcs record for %q: %w", vr.Repo, err)
		}
	}
	rec.Records, rec.Snapshot = nil, nil // release replay buffers
	s.recoveries = append(s.recoveries, rec)
	return dir, nil
}

func (s *Store) recoverCatalog(fs store.FS) (*store.Dir, error) {
	dir, rec, err := store.OpenDir(fs, "catalog", "catalog", s.opts.Metrics)
	if err != nil {
		return nil, err
	}
	if len(rec.Snapshot) > 0 {
		var snap catSnapshot
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			dir.Close()
			return nil, fmt.Errorf("persist: decode catalog snapshot: %w", err)
		}
		for _, o := range snap.Objects {
			e, err := catEntryOf(o)
			if err != nil {
				dir.Close()
				return nil, err
			}
			s.shadowCatalog.Apply(e)
		}
	}
	for _, r := range rec.Records {
		e, err := decodeCatEntry(r.Payload)
		if err != nil {
			dir.Close()
			return nil, err
		}
		s.shadowCatalog.Apply(e)
	}
	rec.Records, rec.Snapshot = nil, nil
	s.recoveries = append(s.recoveries, rec)
	return dir, nil
}

func (s *Store) recoverCache(fs store.FS) (*store.Dir, error) {
	dir, rec, err := store.OpenDir(fs, "cache", "cache", s.opts.Metrics)
	if err != nil {
		return nil, err
	}
	seed := func(cr cacheRecord) error {
		t, err := decodeTable(cr.Table)
		if err != nil {
			return err
		}
		s.shadowCache.Seed(cr.Dashboard, cr.Source, t)
		return nil
	}
	if len(rec.Snapshot) > 0 {
		var snap cacheSnapshot
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			dir.Close()
			return nil, fmt.Errorf("persist: decode cache snapshot: %w", err)
		}
		for _, cr := range snap.Entries {
			if err := seed(cr); err != nil {
				dir.Close()
				return nil, err
			}
		}
	}
	for _, r := range rec.Records {
		var cr cacheRecord
		if err := json.Unmarshal(r.Payload, &cr); err != nil {
			dir.Close()
			return nil, fmt.Errorf("persist: decode cache record: %w", err)
		}
		if err := seed(cr); err != nil {
			dir.Close()
			return nil, err
		}
	}
	rec.Records, rec.Snapshot = nil, nil
	s.recoveries = append(s.recoveries, rec)
	return dir, nil
}

// repoJournal returns the write-ahead hook for one repository. It runs
// under the live repo's lock: append to the WAL, mirror into the shadow
// repo, and compact when the WAL crosses its threshold.
func (s *Store) repoJournal(name string) func(vcs.Entry) error {
	return func(e vcs.Entry) error {
		s.vcsC.mu.Lock()
		defer s.vcsC.mu.Unlock()
		payload, err := json.Marshal(vcsRecord{Repo: name, Entry: e})
		if err != nil {
			return err
		}
		if err := s.vcsC.dir.Append(store.Record{Type: recEntry, Payload: payload}); err != nil {
			return err
		}
		sh := s.shadowRepos[name]
		if sh == nil {
			sh = vcs.NewRepo(name)
			s.shadowRepos[name] = sh
		}
		if err := sh.Apply(e); err != nil {
			return err
		}
		s.maybeCompactVCSLocked()
		return nil
	}
}

func (s *Store) maybeCompactVCSLocked() {
	if !s.wantCompact(s.vcsC.dir) {
		return
	}
	names := make([]string, 0, len(s.shadowRepos))
	for n := range s.shadowRepos {
		names = append(names, n)
	}
	sort.Strings(names)
	snap := vcsSnapshot{Repos: make([]*vcs.RepoState, 0, len(names))}
	for _, n := range names {
		snap.Repos = append(snap.Repos, s.shadowRepos[n].State())
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return
	}
	// Best-effort: a failed compaction leaves the WAL long (or the dir
	// damaged), never loses acknowledged state.
	s.vcsC.dir.Snapshot(payload, s.now())
}

func (s *Store) wantCompact(d *store.Dir) bool {
	b, n := d.WALSize()
	return b >= s.opts.CompactBytes || n >= s.opts.CompactRecords
}

// catalogJournal is the catalog's write-ahead hook (runs under the live
// catalog's lock).
func (s *Store) catalogJournal(e share.Entry) error {
	s.catC.mu.Lock()
	defer s.catC.mu.Unlock()
	payload, err := encodeCatEntry(e)
	if err != nil {
		return err
	}
	if err := s.catC.dir.Append(store.Record{Type: recEntry, Payload: payload}); err != nil {
		return err
	}
	if err := s.shadowCatalog.Apply(e); err != nil {
		return err
	}
	if s.wantCompact(s.catC.dir) {
		if payload, err := json.Marshal(exportCatalog(s.shadowCatalog)); err == nil {
			s.catC.dir.Snapshot(payload, s.now())
		}
	}
	return nil
}

// cacheJournal is the last-good cache's write-ahead hook (runs under
// the live cache's lock; failures are tolerated by the caller).
func (s *Store) cacheJournal(dash, source string, t *table.Table) error {
	s.cacheC.mu.Lock()
	defer s.cacheC.mu.Unlock()
	payload, err := json.Marshal(cacheRecord{Dashboard: dash, Source: source, Table: encodeTable(t)})
	if err != nil {
		return err
	}
	if err := s.cacheC.dir.Append(store.Record{Type: recEntry, Payload: payload}); err != nil {
		return err
	}
	s.shadowCache.Seed(dash, source, t)
	if s.wantCompact(s.cacheC.dir) {
		if payload, err := json.Marshal(exportCache(s.shadowCache)); err == nil {
			s.cacheC.dir.Snapshot(payload, s.now())
		}
	}
	return nil
}

// WirePlatform seeds the platform's catalog and last-good cache with
// the recovered state and installs their write-ahead journals. Call
// once, before the platform serves traffic.
func (s *Store) WirePlatform(p *dashboard.Platform) error {
	for _, o := range s.shadowCatalog.Objects() {
		if err := p.Catalog.Apply(share.Entry{Kind: share.EntryPublish, Object: o}); err != nil {
			return err
		}
	}
	p.Catalog.SetJournal(s.catalogJournal)
	s.shadowCache.Each(func(dash, src string, t *table.Table) { p.LastGood.Seed(dash, src, t) })
	p.LastGood.SetJournal(s.cacheJournal)
	p.History = s.recorder
	return nil
}

// History returns the durable run-history recorder.
func (s *Store) History() *history.Recorder { return s.recorder }

// Repos returns the recovered, journaled repositories by dashboard
// name. The server owns them from here on.
func (s *Store) Repos() map[string]*vcs.Repo {
	s.vcsC.mu.Lock()
	defer s.vcsC.mu.Unlock()
	out := make(map[string]*vcs.Repo, len(s.liveRepos))
	for n, r := range s.liveRepos {
		out[n] = r
	}
	return out
}

// AdoptRepo starts journaling a repository created after Open (a saved
// or forked dashboard): its current state is journaled as one record
// and every later mutation flows through the write-ahead hook. On
// journal failure the repo is left unjournaled (memory-only) and the
// error returned.
func (s *Store) AdoptRepo(r *vcs.Repo) error {
	st := r.State()
	r.SetJournal(s.repoJournal(r.Name))
	s.vcsC.mu.Lock()
	defer s.vcsC.mu.Unlock()
	payload, err := json.Marshal(vcsRecord{Repo: r.Name, Entry: vcs.Entry{Kind: vcs.EntryState, State: st}})
	if err != nil {
		r.SetJournal(nil)
		return err
	}
	if err := s.vcsC.dir.Append(store.Record{Type: recEntry, Payload: payload}); err != nil {
		r.SetJournal(nil)
		return fmt.Errorf("persist: adopt repo %q: %w", r.Name, err)
	}
	s.shadowRepos[r.Name] = vcs.FromState(st)
	s.liveRepos[r.Name] = r
	s.maybeCompactVCSLocked()
	return nil
}

// Metrics returns the registry the store's si_store_* instruments are
// registered on (nil when Options.Metrics was not set).
func (s *Store) Metrics() *obs.Registry { return s.opts.Metrics }

// Recoveries reports each component's recovery outcome, in open order
// (vcs, catalog, cache).
func (s *Store) Recoveries() []*store.Recovery { return s.recoveries }

// Status reports each component's durability state for the health
// surface.
func (s *Store) Status() []ComponentStatus {
	dirs := []*store.Dir{s.vcsC.dir, s.catC.dir, s.cacheC.dir}
	out := make([]ComponentStatus, 0, len(s.recoveries))
	for i, dir := range dirs {
		st := ComponentStatus{Recovery: *s.recoveries[i]}
		st.WALBytes, st.WALRecords = dir.WALSize()
		cur := dir.Cursor()
		st.Generation, st.CommittedOffset = cur.Gen, cur.Offset
		if err := dir.Damaged(); err != nil {
			st.Damaged = err.Error()
		}
		out = append(out, st)
	}
	// The history recorder owns its own Dir; it reports through its
	// Status accessor instead of a shared dirs slice.
	hst := ComponentStatus{Recovery: *s.recorder.Recovery()}
	var damaged error
	hst.WALBytes, hst.WALRecords, damaged = s.recorder.Status()
	if hdir := s.recorder.Dir(); hdir != nil {
		cur := hdir.Cursor()
		hst.Generation, hst.CommittedOffset = cur.Gen, cur.Offset
	}
	if damaged != nil {
		hst.Damaged = damaged.Error()
	}
	return append(out, hst)
}

// Close fsyncs and closes every component directory.
func (s *Store) Close() error {
	var first error
	for _, c := range []*component{&s.vcsC, &s.catC, &s.cacheC} {
		c.mu.Lock()
		if err := c.dir.Close(); err != nil && first == nil {
			first = err
		}
		c.mu.Unlock()
	}
	if err := s.recorder.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
