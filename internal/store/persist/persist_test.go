package persist

import (
	"fmt"
	"testing"
	"time"

	"shareinsights/internal/dashboard"
	"shareinsights/internal/schema"
	"shareinsights/internal/store"
	"shareinsights/internal/table"
	"shareinsights/internal/value"
	"shareinsights/internal/vcs"
)

func sampleTable(n int) *table.Table {
	t := table.New(schema.MustFromNames("k", "v"))
	for i := 0; i < n; i++ {
		t.AppendValues(value.NewInt(int64(i)), value.NewString(fmt.Sprintf("row-%d", i)))
	}
	return t
}

func pathTable() *table.Table {
	s, _ := schema.New(schema.Column{Name: "loc", Path: "user.location"}, schema.Column{Name: "n"})
	t := table.New(s)
	t.AppendValues(value.NewString("sf"), value.NewInt(7))
	return t
}

func fixedClock() func() time.Time {
	at := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	return func() time.Time { at = at.Add(time.Second); return at }
}

func TestTableCodecRoundTrip(t *testing.T) {
	for _, tb := range []*table.Table{sampleTable(3), sampleTable(0), pathTable()} {
		got, err := decodeTable(encodeTable(tb))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(tb) {
			t.Fatalf("decoded table differs: %v vs %v", got.Rows(), tb.Rows())
		}
		// Payload paths survive (SBIN alone drops them).
		if got.Schema().String() != tb.Schema().String() {
			t.Fatalf("schema %v != %v", got.Schema(), tb.Schema())
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	fs := store.NewMemFS()
	st, err := Open(fs, Options{Now: fixedClock()})
	if err != nil {
		t.Fatal(err)
	}
	p := dashboard.NewPlatform()
	if err := st.WirePlatform(p); err != nil {
		t.Fatal(err)
	}

	repo := vcs.NewRepo("sales-dash")
	repo.SetClock(fixedClock())
	if _, err := repo.Commit(vcs.DefaultBranch, "ann", "initial", []byte("flow v1")); err != nil {
		t.Fatal(err)
	}
	if err := st.AdoptRepo(repo); err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Commit(vcs.DefaultBranch, "bob", "tweak", []byte("flow v2")); err != nil {
		t.Fatal(err)
	}
	if err := repo.Branch(vcs.DefaultBranch, "dev"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Catalog.Publish("sales-dash", "sales", sampleTable(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Catalog.Publish("sales-dash", "sales", sampleTable(5)); err != nil {
		t.Fatal(err)
	}
	p.LastGood.Put("sales-dash", "raw", pathTable())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(fs, Options{Now: fixedClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	repos := st2.Repos()
	got, ok := repos["sales-dash"]
	if !ok {
		t.Fatalf("repo not recovered; have %v", repos)
	}
	if !got.Equal(repo) {
		t.Fatalf("recovered repo differs:\n%v\nvs\n%v", got.State(), repo.State())
	}
	p2 := dashboard.NewPlatform()
	if err := st2.WirePlatform(p2); err != nil {
		t.Fatal(err)
	}
	obj, ok := p2.Catalog.Resolve("sales")
	if !ok || obj.Version != 2 || obj.Data.Len() != 5 || obj.Dashboard != "sales-dash" {
		t.Fatalf("recovered object: %+v ok=%v", obj, ok)
	}
	cached, ok := p2.LastGood.Lookup("sales-dash", "raw")
	if !ok || !cached.Equal(pathTable()) {
		t.Fatalf("recovered cache entry: %v ok=%v", cached, ok)
	}
	// The recovered store keeps journaling: new mutations survive a
	// further restart.
	if _, err := got.Commit("dev", "cat", "post-restart", []byte("flow v3")); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	st3, err := Open(fs, Options{Now: fixedClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if !st3.Repos()["sales-dash"].Equal(got) {
		t.Fatal("third-generation recovery differs")
	}
}

func TestStoreCompactionRoundTrip(t *testing.T) {
	fs := store.NewMemFS()
	st, err := Open(fs, Options{Now: fixedClock(), CompactRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := dashboard.NewPlatform()
	st.WirePlatform(p)
	repo := vcs.NewRepo("d")
	repo.SetClock(fixedClock())
	if err := st.AdoptRepo(repo); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := repo.Commit(vcs.DefaultBranch, "a", fmt.Sprintf("c%d", i), []byte(fmt.Sprintf("content %d", i))); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Catalog.Publish("d", "obj", sampleTable(i+1)); err != nil {
			t.Fatal(err)
		}
		p.LastGood.Put("d", "src", sampleTable(i))
	}
	st.Close()

	st2, err := Open(fs, Options{Now: fixedClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if !st2.Repos()["d"].Equal(repo) {
		t.Fatal("recovered repo differs after compactions")
	}
	// Compaction kept the WAL bounded: replay was snapshot + a short tail.
	for _, rec := range st2.Recoveries() {
		if rec.RecordCount > 4 {
			t.Errorf("%s: %d records replayed; compaction not bounding the WAL", rec.Component, rec.RecordCount)
		}
	}
	p2 := dashboard.NewPlatform()
	st2.WirePlatform(p2)
	obj, ok := p2.Catalog.Resolve("obj")
	if !ok || obj.Version != 10 || obj.Data.Len() != 10 {
		t.Fatalf("recovered object after compaction: %+v", obj)
	}
	cached, ok := p2.LastGood.Lookup("d", "src")
	if !ok || cached.Len() != 9 {
		t.Fatalf("recovered cache after compaction: %v", cached)
	}
}

func TestStatusReportsDamage(t *testing.T) {
	ffs := store.NewFaultFS()
	st, err := Open(ffs, Options{Now: fixedClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	p := dashboard.NewPlatform()
	st.WirePlatform(p)
	ffs.Inject(store.Fault{Op: store.OpSync, Path: "catalog/", Mode: store.FailIO})
	if _, err := p.Catalog.Publish("d", "obj", sampleTable(1)); err == nil {
		t.Fatal("publish acknowledged despite journal fsync failure")
	}
	if _, ok := p.Catalog.Resolve("obj"); ok {
		t.Fatal("unjournaled publish visible in catalog")
	}
	var catDamaged bool
	for _, cs := range st.Status() {
		if cs.Component == "catalog" && cs.Damaged != "" {
			catDamaged = true
		}
		if cs.Component == "vcs" && cs.Damaged != "" {
			t.Error("vcs damaged by a catalog fault")
		}
	}
	if !catDamaged {
		t.Fatalf("catalog damage not surfaced: %+v", st.Status())
	}
}
