// Package store is the platform's crash-consistent persistence layer
// (docs/DURABILITY.md): an append-only write-ahead log with per-record
// CRC32C framing plus periodic compacted snapshots written via
// temp-file + fsync + atomic rename.
//
// The paper's collaboration features — the DVCS-style flow-file
// repository (§4.5.1), `publish:` shared data objects (§3.4.1) and
// `endpoint:` REST-visible data — all assume state that outlives a
// process. This package provides the storage primitive those components
// journal through; internal/store/persist wires them up.
//
// Everything touches disk through the FS interface so tests can inject
// torn writes, failed fsyncs, ENOSPC and crash points (see faultfs.go)
// and prove recovery byte-exact.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// File is an append-only file handle. Writes are durable only after
// Sync returns nil.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS is the filesystem surface the store needs. Paths are
// slash-separated and relative to the filesystem root. Implementations:
// OSFS (production), MemFS and FaultFS (tests).
type FS interface {
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(dir string) error
	// Create opens a file for writing, truncating any existing content.
	Create(name string) (File, error)
	// OpenAppend opens an existing file for appending (the file must
	// exist; the store creates WAL segments explicitly via Create).
	OpenAppend(name string) (File, error)
	// ReadFile returns a file's full content.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// List returns the file names (not paths) in a directory, sorted.
	List(dir string) ([]string, error)
	// SyncDir flushes directory metadata (created/renamed/removed
	// entries) to stable storage.
	SyncDir(dir string) error
}

// osFS is the production FS, rooted at a data directory.
type osFS struct{ root string }

// NewOSFS returns an FS backed by the operating system, with all paths
// resolved relative to root.
func NewOSFS(root string) FS { return &osFS{root: root} }

func (fs *osFS) path(name string) string { return filepath.Join(fs.root, filepath.FromSlash(name)) }

func (fs *osFS) MkdirAll(dir string) error { return os.MkdirAll(fs.path(dir), 0o755) }

func (fs *osFS) Create(name string) (File, error) {
	return os.OpenFile(fs.path(name), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (fs *osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(fs.path(name), os.O_WRONLY|os.O_APPEND, 0o644)
}

func (fs *osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(fs.path(name)) }

func (fs *osFS) Rename(oldname, newname string) error {
	return os.Rename(fs.path(oldname), fs.path(newname))
}

func (fs *osFS) Remove(name string) error { return os.Remove(fs.path(name)) }

func (fs *osFS) List(dir string) ([]string, error) {
	entries, err := os.ReadDir(fs.path(dir))
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

func (fs *osFS) SyncDir(dir string) error {
	d, err := os.Open(fs.path(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some filesystems reject fsync on directories; the rename was
		// still atomic, so degrade rather than fail the operation.
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	return nil
}
