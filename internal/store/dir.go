package store

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"shareinsights/internal/obs"
)

// Dir is one component's durable home: an append-only WAL segment plus a
// compacted snapshot, both named by generation so a crash at any point
// of a compaction leaves an unambiguous recovery choice.
//
// File layout (docs/DURABILITY.md):
//
//	snap-<gen>.si   full component state as of the start of segment <gen>
//	wal-<gen>.si    records appended since snapshot <gen>
//	*.tmp           in-flight snapshot/segment writes, deleted on open
//
// Invariant: snapshot generation g covers every record of all segments
// with generation < g, so recovery loads the newest valid snapshot and
// replays only segments with generation >= g. Compaction first makes the
// new snapshot durable, then creates the new segment, then deletes the
// old files — a crash between any two steps recovers to either the old
// or the new generation, never a mix.
//
// Error model: Append is acknowledged only after fsync returns. Any
// write or fsync failure leaves the segment's durable length unknown, so
// the Dir turns fail-stop: every later Append reports the original
// damage until a successful Snapshot starts a fresh segment. In-memory
// state stays serviceable throughout — durability degrades, the process
// does not.
type Dir struct {
	fs   FS
	path string

	mu         sync.Mutex
	seg        File
	gen        uint64 // current WAL segment generation
	snapGen    uint64 // newest durable snapshot generation (0 = none)
	walBytes   int    // payload bytes appended to the current segment
	walRecords int
	damaged    error
	closed     bool

	met *dirMetrics
}

// Recovery reports what opening a Dir found on disk.
type Recovery struct {
	// Component is the label the Dir was opened under.
	Component string `json:"component"`
	// Records are the WAL records replayed on top of the snapshot; the
	// caller applies them in order, then may drop the slice.
	Records []Record `json:"-"`
	// RecordCount is len(Records), kept for reporting after the caller
	// consumed the records.
	RecordCount int `json:"records_replayed"`
	// Snapshot is the newest valid snapshot payload (nil when none).
	Snapshot []byte `json:"-"`
	// SnapshotBytes is the snapshot payload size.
	SnapshotBytes int `json:"snapshot_bytes"`
	// SnapshotAt is the snapshot write time (zero when none).
	SnapshotAt time.Time `json:"snapshot_at,omitzero"`
	// TornBytes counts trailing WAL bytes dropped as a torn write.
	TornBytes int `json:"torn_bytes_dropped"`
	// CorruptSnapshots counts snapshot generations that failed to decode
	// and were skipped (recovery fell back to an older generation).
	CorruptSnapshots int `json:"corrupt_snapshots"`
}

// dirMetrics bundles the si_store_* instruments for one component.
type dirMetrics struct {
	appends, fsyncs, tornTails, snapshots *obs.Counter
	snapshotBytes, walBytes               *obs.Gauge
}

func newDirMetrics(m *obs.Registry, component string) *dirMetrics {
	if m == nil {
		return nil
	}
	return &dirMetrics{
		appends:       m.CounterVec("si_store_appends_total", "Durable WAL records appended, by component.", "component").With(component),
		fsyncs:        m.CounterVec("si_store_fsyncs_total", "File fsyncs issued by the store, by component.", "component").With(component),
		tornTails:     m.CounterVec("si_store_torn_tails_total", "Torn WAL tails detected and truncated on recovery, by component.", "component").With(component),
		snapshots:     m.CounterVec("si_store_snapshots_total", "Compacted snapshots written, by component.", "component").With(component),
		snapshotBytes: m.GaugeVec("si_store_snapshot_bytes", "Size of the newest durable snapshot payload, by component.", "component").With(component),
		walBytes:      m.GaugeVec("si_store_wal_bytes", "Bytes in the current WAL segment past the header, by component.", "component").With(component),
	}
}

func segName(gen uint64) string  { return fmt.Sprintf("wal-%08d.si", gen) }
func snapName(gen uint64) string { return fmt.Sprintf("snap-%08d.si", gen) }

// parseGen extracts the generation from a "prefix-<gen>.si" file name.
func parseGen(name, prefix string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, prefix)
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".si")
	if !ok {
		return 0, false
	}
	g, err := strconv.ParseUint(rest, 10, 64)
	if err != nil || g == 0 {
		return 0, false
	}
	return g, true
}

// OpenDir opens (creating if needed) a component directory and runs the
// recovery pass: pick the newest snapshot that validates, replay every
// WAL segment at or past its generation truncating any torn tail, and
// leave an appendable segment behind. metrics may be nil; component
// labels the si_store_* series and the recovery report.
func OpenDir(fs FS, path, component string, metrics *obs.Registry) (*Dir, *Recovery, error) {
	if err := fs.MkdirAll(path); err != nil {
		return nil, nil, fmt.Errorf("store: mkdir %s: %w", path, err)
	}
	names, err := fs.List(path)
	if err != nil {
		return nil, nil, fmt.Errorf("store: list %s: %w", path, err)
	}
	rec := &Recovery{Component: component}
	var snapGens, walGens []uint64
	var stale []string
	for _, n := range names {
		if strings.HasSuffix(n, ".tmp") {
			// An in-flight write that never renamed: a crash artifact.
			stale = append(stale, n)
			continue
		}
		if g, ok := parseGen(n, "snap-"); ok {
			snapGens = append(snapGens, g)
		} else if g, ok := parseGen(n, "wal-"); ok {
			walGens = append(walGens, g)
		}
	}
	// Newest snapshot that validates wins; corrupt generations are
	// skipped (and deleted) so recovery degrades to an older generation
	// rather than failing.
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] > snapGens[j] })
	var snapGen uint64
	for _, g := range snapGens {
		data, rerr := fs.ReadFile(path + "/" + snapName(g))
		if rerr != nil {
			rec.CorruptSnapshots++
			stale = append(stale, snapName(g))
			continue
		}
		payload, at, derr := decodeSnapshot(data)
		if derr != nil {
			rec.CorruptSnapshots++
			stale = append(stale, snapName(g))
			continue
		}
		rec.Snapshot, rec.SnapshotAt, rec.SnapshotBytes, snapGen = payload, at, len(payload), g
		break
	}
	for _, g := range snapGens {
		if g < snapGen {
			stale = append(stale, snapName(g))
		}
	}
	// Replay segments the snapshot does not cover, oldest first. The
	// current segment (highest generation) is rewritten when its tail is
	// torn, so the next append lands after the last valid record.
	sort.Slice(walGens, func(i, j int) bool { return walGens[i] < walGens[j] })
	cur := snapGen
	curRecs := []Record(nil)
	curRewrite := false
	curExists := false
	for _, g := range walGens {
		if g < snapGen {
			stale = append(stale, segName(g))
			continue
		}
		data, rerr := fs.ReadFile(path + "/" + segName(g))
		if rerr != nil {
			return nil, nil, fmt.Errorf("store: read segment %s: %w", segName(g), rerr)
		}
		recs, _, torn, _ := parseWAL(data)
		rec.Records = append(rec.Records, recs...)
		rec.TornBytes += torn
		if g >= cur {
			cur, curRecs, curRewrite, curExists = g, recs, torn > 0, true
		}
	}
	rec.RecordCount = len(rec.Records)
	if cur == 0 {
		cur = 1
	}
	d := &Dir{fs: fs, path: path, gen: cur, snapGen: snapGen, met: newDirMetrics(metrics, component)}
	switch {
	case curRewrite:
		// Torn tail: materialize exactly the valid prefix via the same
		// temp-file + fsync + rename discipline as snapshots.
		if err := d.rewriteSegment(cur, curRecs); err != nil {
			return nil, nil, err
		}
	case curExists:
		seg, oerr := fs.OpenAppend(path + "/" + segName(cur))
		if oerr != nil {
			return nil, nil, fmt.Errorf("store: reopen segment %s: %w", segName(cur), oerr)
		}
		d.seg = seg
	default:
		seg, cerr := createSegment(fs, path, segName(cur))
		if cerr != nil {
			return nil, nil, cerr
		}
		d.countFsyncs(2) // segment fsync + directory fsync
		d.seg = seg
	}
	for _, rc := range curRecs {
		d.walBytes += recHeaderLen + len(rc.Payload)
		d.walRecords++
	}
	// Best-effort cleanup of superseded generations and crash leftovers;
	// anything that survives is re-collected on the next open.
	for _, n := range stale {
		d.fs.Remove(path + "/" + n)
	}
	if d.met != nil {
		if rec.TornBytes > 0 {
			d.met.tornTails.Inc()
		}
		d.met.snapshotBytes.Set(float64(rec.SnapshotBytes))
		d.met.walBytes.Set(float64(d.walBytes))
		if metrics != nil {
			metrics.CounterVec("si_store_recoveries_total", "Recovery passes completed, by component.", "component").With(component).Inc()
		}
	}
	return d, rec, nil
}

// rewriteSegment durably replaces segment gen with exactly recs.
func (d *Dir) rewriteSegment(gen uint64, recs []Record) error {
	name := segName(gen)
	tmp := d.path + "/" + name + ".tmp"
	h, err := d.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: create %s: %w", tmp, err)
	}
	buf := append([]byte(nil), walMagic...)
	for _, rc := range recs {
		buf = frameRecord(buf, rc)
	}
	if _, err := h.Write(buf); err != nil {
		h.Close()
		return fmt.Errorf("store: rewrite segment %s: %w", name, err)
	}
	if err := h.Sync(); err != nil {
		h.Close()
		return fmt.Errorf("store: sync rewritten segment %s: %w", name, err)
	}
	if err := h.Close(); err != nil {
		return fmt.Errorf("store: close rewritten segment %s: %w", name, err)
	}
	if err := d.fs.Rename(tmp, d.path+"/"+name); err != nil {
		return fmt.Errorf("store: rename rewritten segment %s: %w", name, err)
	}
	if err := d.fs.SyncDir(d.path); err != nil {
		return err
	}
	d.countFsyncs(2)
	seg, err := d.fs.OpenAppend(d.path + "/" + name)
	if err != nil {
		return fmt.Errorf("store: reopen rewritten segment %s: %w", name, err)
	}
	d.seg = seg
	return nil
}

func (d *Dir) countFsyncs(n int) {
	if d.met != nil {
		d.met.fsyncs.Add(int64(n))
	}
}

// Append journals records and returns only after they are fsynced — the
// acknowledgment point. Multiple records land atomically-in-order: a
// crash keeps a prefix. After a failed append the Dir is damaged (see
// the type comment) until the next successful Snapshot.
func (d *Dir) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("store: %s: append on closed dir", d.path)
	}
	if d.damaged != nil {
		return fmt.Errorf("store: %s: wal damaged by earlier failure (snapshot to repair): %w", d.path, d.damaged)
	}
	var buf []byte
	for _, rc := range recs {
		buf = frameRecord(buf, rc)
	}
	if _, err := d.seg.Write(buf); err != nil {
		d.damaged = err
		return fmt.Errorf("store: %s: append: %w", d.path, err)
	}
	if err := d.seg.Sync(); err != nil {
		d.damaged = err
		return fmt.Errorf("store: %s: append fsync: %w", d.path, err)
	}
	d.walBytes += len(buf)
	d.walRecords += len(recs)
	if d.met != nil {
		d.met.appends.Add(int64(len(recs)))
		d.met.fsyncs.Inc()
		d.met.walBytes.Set(float64(d.walBytes))
	}
	return nil
}

// WALSize reports the current segment's payload bytes and record count —
// the caller's compaction trigger.
func (d *Dir) WALSize() (bytes, records int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.walBytes, d.walRecords
}

// Damaged reports the failure that turned the Dir fail-stop (nil when
// healthy).
func (d *Dir) Damaged() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.damaged
}

// Snapshot durably writes a full-state snapshot and starts a fresh WAL
// segment. The payload must cover every record appended so far: once the
// new generation is durable the old segment is deleted. A successful
// Snapshot also clears the damaged state — the suspect segment is no
// longer part of the recovery set.
func (d *Dir) Snapshot(payload []byte, at time.Time) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("store: %s: snapshot on closed dir", d.path)
	}
	next := d.gen + 1
	if err := writeSnapshot(d.fs, d.path, snapName(next), payload, at); err != nil {
		return err
	}
	d.countFsyncs(2)
	seg, err := createSegment(d.fs, d.path, segName(next))
	if err != nil {
		// The snapshot is durable, so no acknowledged state is at risk;
		// but with no appendable segment the Dir is fail-stop until the
		// next successful Snapshot (or reopen).
		d.damaged = err
		return err
	}
	d.countFsyncs(2)
	if d.seg != nil {
		d.seg.Close()
	}
	oldGen, oldSnap := d.gen, d.snapGen
	d.seg, d.gen, d.snapGen = seg, next, next
	d.walBytes, d.walRecords = 0, 0
	d.damaged = nil
	// Superseded generations go last and best-effort: a crash that
	// preserves them costs disk, not correctness.
	d.fs.Remove(d.path + "/" + segName(oldGen))
	if oldSnap > 0 {
		d.fs.Remove(d.path + "/" + snapName(oldSnap))
	}
	if d.met != nil {
		d.met.snapshots.Inc()
		d.met.snapshotBytes.Set(float64(len(payload)))
		d.met.walBytes.Set(0)
	}
	return nil
}

// Close fsyncs and closes the current segment. Appends are synchronous,
// so Close adds no durability — it releases the handle.
func (d *Dir) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if d.seg == nil {
		return nil
	}
	if d.damaged == nil {
		if err := d.seg.Sync(); err != nil {
			d.seg.Close()
			return fmt.Errorf("store: %s: close fsync: %w", d.path, err)
		}
		d.countFsyncs(1)
	}
	return d.seg.Close()
}
