package store

import (
	"errors"
	"strings"
	"sync"
)

// FaultFS wraps a MemFS and injects filesystem faults: torn writes,
// failed fsyncs, ENOSPC and crash points. After a crash fires, every
// subsequent operation fails with ErrCrashed; Durable then yields the
// disk image a recovery would open.
//
// The crash-point matrix of docs/DURABILITY.md maps onto faults like:
//
//	mid-record   {Op: OpWrite,  Mode: Crash, Partial: k}  // k bytes land
//	pre-fsync    {Op: OpSync,   Mode: Crash}              // data written, never synced
//	mid-rename   {Op: OpRename, Mode: Crash}              // temp file left behind
//	post-rename  {Op: OpRename, Mode: CrashAfter}         // rename durable, cleanup lost
type FaultFS struct {
	mem *MemFS

	mu      sync.Mutex
	crashed bool
	faults  []*Fault
}

// Errors injected by FaultFS.
var (
	// ErrCrashed is returned by every operation after a crash point fired.
	ErrCrashed = errors.New("faultfs: simulated crash")
	// ErrInjectedIO is the generic injected I/O failure (e.g. a failed fsync).
	ErrInjectedIO = errors.New("faultfs: injected I/O error")
	// ErrNoSpace simulates ENOSPC.
	ErrNoSpace = errors.New("faultfs: no space left on device")
)

// Op names an FS operation class for fault matching.
type Op string

// Operation classes faults can target.
const (
	OpCreate Op = "create"
	OpWrite  Op = "write"
	OpSync   Op = "sync"
	OpRename Op = "rename"
	OpRemove Op = "remove"
)

// Mode is what a fault does when it fires.
type Mode int

const (
	// Crash freezes the filesystem before the operation applies (for
	// OpWrite, after Partial bytes applied).
	Crash Mode = iota
	// CrashAfter applies the operation, then freezes the filesystem.
	CrashAfter
	// FailIO returns ErrInjectedIO without applying the operation.
	FailIO
	// FailNoSpace applies Partial bytes (writes only) then returns ErrNoSpace.
	FailNoSpace
)

// Fault is one injected failure. It fires on the (After+1)'th operation
// matching Op and Path (substring; empty matches everything), once.
type Fault struct {
	Op      Op
	Path    string
	After   int
	Mode    Mode
	Partial int
	fired   bool
}

// NewFaultFS returns a FaultFS over a fresh MemFS.
func NewFaultFS() *FaultFS { return &FaultFS{mem: NewMemFS()} }

// NewFaultFSOver wraps an existing MemFS (e.g. a previous crash's
// durable image, to chain crashes across recoveries).
func NewFaultFSOver(m *MemFS) *FaultFS { return &FaultFS{mem: m} }

// Inject arms a fault.
func (f *FaultFS) Inject(fault Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = append(f.faults, &fault)
}

// Crashed reports whether a crash point has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Durable returns the crash's disk image under the given policy. It is
// typically called after Crashed() turns true, to reopen a store from
// exactly what would have survived.
func (f *FaultFS) Durable(policy UnsyncedPolicy) *MemFS { return f.mem.Durable(policy) }

// check runs the fault machinery for one operation. It returns the
// fault that fired (nil if none) and whether the FS is frozen.
func (f *FaultFS) check(op Op, path string) (*Fault, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	for _, ft := range f.faults {
		if ft.fired || ft.Op != op {
			continue
		}
		if ft.Path != "" && !strings.Contains(path, ft.Path) {
			continue
		}
		if ft.After > 0 {
			ft.After--
			continue
		}
		ft.fired = true
		if ft.Mode == Crash || ft.Mode == CrashAfter {
			f.crashed = true
		}
		return ft, nil
	}
	return nil, nil
}

func (f *FaultFS) MkdirAll(dir string) error { return f.mem.MkdirAll(dir) }

func (f *FaultFS) Create(name string) (File, error) {
	ft, err := f.check(OpCreate, name)
	if err != nil {
		return nil, err
	}
	if ft != nil {
		switch ft.Mode {
		case Crash:
			return nil, ErrCrashed
		case CrashAfter:
			f.mem.Create(name)
			return nil, ErrCrashed
		default:
			return nil, ErrInjectedIO
		}
	}
	h, err := f.mem.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultHandle{fs: f, inner: h, name: name}, nil
}

func (f *FaultFS) OpenAppend(name string) (File, error) {
	h, err := f.mem.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultHandle{fs: f, inner: h, name: name}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	return f.mem.ReadFile(name)
}

func (f *FaultFS) Rename(oldname, newname string) error {
	ft, err := f.check(OpRename, newname)
	if err != nil {
		return err
	}
	if ft != nil {
		switch ft.Mode {
		case Crash:
			return ErrCrashed
		case CrashAfter:
			f.mem.Rename(oldname, newname)
			return ErrCrashed
		default:
			return ErrInjectedIO
		}
	}
	return f.mem.Rename(oldname, newname)
}

func (f *FaultFS) Remove(name string) error {
	ft, err := f.check(OpRemove, name)
	if err != nil {
		return err
	}
	if ft != nil {
		switch ft.Mode {
		case Crash:
			return ErrCrashed
		case CrashAfter:
			f.mem.Remove(name)
			return ErrCrashed
		default:
			return ErrInjectedIO
		}
	}
	return f.mem.Remove(name)
}

func (f *FaultFS) List(dir string) ([]string, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	return f.mem.List(dir)
}

func (f *FaultFS) SyncDir(dir string) error {
	if f.Crashed() {
		return ErrCrashed
	}
	return nil
}

// faultHandle routes a file handle's writes and syncs through the fault
// machinery.
type faultHandle struct {
	fs    *FaultFS
	inner File
	name  string
}

func (h *faultHandle) Write(p []byte) (int, error) {
	ft, err := h.fs.check(OpWrite, h.name)
	if err != nil {
		return 0, err
	}
	if ft != nil {
		partial := ft.Partial
		if partial > len(p) {
			partial = len(p)
		}
		switch ft.Mode {
		case Crash, CrashAfter:
			if ft.Mode == CrashAfter {
				partial = len(p)
			}
			if partial > 0 {
				h.inner.Write(p[:partial])
			}
			return partial, ErrCrashed
		case FailNoSpace:
			if partial > 0 {
				h.inner.Write(p[:partial])
			}
			return partial, ErrNoSpace
		default:
			return 0, ErrInjectedIO
		}
	}
	return h.inner.Write(p)
}

func (h *faultHandle) Sync() error {
	ft, err := h.fs.check(OpSync, h.name)
	if err != nil {
		return err
	}
	if ft != nil {
		switch ft.Mode {
		case Crash:
			return ErrCrashed
		case CrashAfter:
			h.inner.Sync()
			return ErrCrashed
		default:
			// A failed fsync leaves durability unknown: the data was
			// written but must not be acknowledged.
			return ErrInjectedIO
		}
	}
	return h.inner.Sync()
}

func (h *faultHandle) Close() error { return h.inner.Close() }
