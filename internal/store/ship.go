package store

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// WAL shipping (docs/REPLICATION.md): a leader serves its committed WAL
// prefix to followers as raw CRC32C frames addressed by a (generation,
// byte offset) cursor. Only fsync-acknowledged bytes are ever shipped —
// walBytes advances after a successful Sync, so a crash mid-append can
// never expose a torn tail to a follower; the follower's applied state
// is always a prefix of the leader's acknowledged state.

// ErrShipGone reports a shipping cursor the leader can no longer serve
// incrementally: the generation was compacted away (or never existed),
// so the follower must re-bootstrap from a snapshot.
var ErrShipGone = errors.New("store: shipping cursor predates retained state")

// Cursor addresses a position in a component's WAL stream: the segment
// generation plus the byte offset within it (8-byte header included).
// A fresh segment's first record starts at offset 8.
type Cursor struct {
	Gen    uint64 `json:"gen"`
	Offset int64  `json:"offset"`
}

// Cursor reports the current segment generation and the committed byte
// offset — the position a fully caught-up follower holds.
func (d *Dir) Cursor() Cursor {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cursorLocked()
}

func (d *Dir) cursorLocked() Cursor {
	return Cursor{Gen: d.gen, Offset: int64(len(walMagic) + d.walBytes)}
}

// Generations reports the current WAL segment generation and the newest
// durable snapshot generation (0 = none) for the health surface.
func (d *Dir) Generations() (gen, snapGen uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.gen, d.snapGen
}

// ShipFrames reads committed frame bytes starting at the cursor: at
// most max bytes (0 = unbounded), never past the committed offset, and
// only from the current segment. It returns the frames, the cursor
// after them, and the committed cursor. A cursor in a superseded (or
// future) generation, or past the committed offset, yields ErrShipGone:
// the follower's incremental position is unservable and it must
// re-bootstrap.
func (d *Dir) ShipFrames(cur Cursor, max int) (frames []byte, next, committed Cursor, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, Cursor{}, Cursor{}, fmt.Errorf("store: %s: ship on closed dir", d.path)
	}
	committed = d.cursorLocked()
	if cur.Gen != d.gen || cur.Offset < int64(len(walMagic)) || cur.Offset > committed.Offset {
		return nil, Cursor{}, committed, ErrShipGone
	}
	if cur.Offset == committed.Offset {
		return nil, cur, committed, nil
	}
	raw, rerr := d.fs.ReadFile(d.path + "/" + segName(d.gen))
	if rerr != nil {
		return nil, Cursor{}, committed, fmt.Errorf("store: %s: ship read: %w", d.path, rerr)
	}
	hi := committed.Offset
	if max > 0 && cur.Offset+int64(max) < hi {
		hi = cur.Offset + int64(max)
	}
	if int64(len(raw)) < hi {
		// The page cache should always hold at least the committed
		// prefix; a shorter file means the substrate lost acked bytes.
		return nil, Cursor{}, committed, fmt.Errorf("store: %s: segment shorter (%d) than committed offset %d", d.path, len(raw), hi)
	}
	frames = append([]byte(nil), raw[cur.Offset:hi]...)
	return frames, Cursor{Gen: d.gen, Offset: hi}, committed, nil
}

// Bootstrap is the full-state transfer a follower applies when its
// cursor is unservable: the newest durable snapshot plus every
// committed frame the snapshot does not cover, ending at Next.
type Bootstrap struct {
	// Snapshot is the newest snapshot payload (nil when none exists —
	// the frames then start from an empty component).
	Snapshot []byte `json:"snapshot,omitempty"`
	// SnapshotAt is the snapshot write time (zero when none).
	SnapshotAt time.Time `json:"snapshot_at,omitzero"`
	// Frames are the committed frame bytes past the snapshot, in append
	// order across retained segments.
	Frames []byte `json:"frames,omitempty"`
	// Next is the cursor a follower holds after applying this bootstrap
	// — the committed position at export time.
	Next Cursor `json:"next"`
}

// ShipBootstrap exports the component's full committed state for a
// follower whose cursor is unservable: the newest snapshot plus the
// committed frames of every retained segment past it. It re-reads the
// files under the Dir's lock, so the export is consistent with
// concurrent appends and compactions.
func (d *Dir) ShipBootstrap() (*Bootstrap, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, fmt.Errorf("store: %s: bootstrap on closed dir", d.path)
	}
	b := &Bootstrap{Next: d.cursorLocked()}
	if d.snapGen > 0 {
		raw, err := d.fs.ReadFile(d.path + "/" + snapName(d.snapGen))
		if err != nil {
			return nil, fmt.Errorf("store: %s: bootstrap snapshot read: %w", d.path, err)
		}
		payload, at, err := decodeSnapshot(raw)
		if err != nil {
			return nil, fmt.Errorf("store: %s: bootstrap snapshot decode: %w", d.path, err)
		}
		b.Snapshot, b.SnapshotAt = payload, at
	}
	// Retained segments at or past the snapshot generation, oldest
	// first. Older segments are sealed (their records were replayed at
	// open); the current one is clamped to the committed offset.
	names, err := d.fs.List(d.path)
	if err != nil {
		return nil, fmt.Errorf("store: %s: bootstrap list: %w", d.path, err)
	}
	var gens []uint64
	for _, n := range names {
		if g, ok := parseGen(n, "wal-"); ok && g >= d.snapGen && g <= d.gen {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	for _, g := range gens {
		raw, err := d.fs.ReadFile(d.path + "/" + segName(g))
		if err != nil {
			return nil, fmt.Errorf("store: %s: bootstrap segment read: %w", d.path, err)
		}
		if g == d.gen {
			if int64(len(raw)) < b.Next.Offset {
				return nil, fmt.Errorf("store: %s: segment shorter (%d) than committed offset %d", d.path, len(raw), b.Next.Offset)
			}
			b.Frames = append(b.Frames, raw[len(walMagic):b.Next.Offset]...)
			continue
		}
		// A sealed segment may still carry a torn tail from the crash
		// that preceded the last recovery; ship only its valid prefix.
		_, valid, _, _ := parseWAL(raw)
		if valid > len(walMagic) {
			b.Frames = append(b.Frames, raw[len(walMagic):valid]...)
		}
	}
	return b, nil
}

// AppendFrame appends the CRC32C framing of rec to buf and returns it —
// the exported twin of the WAL's internal record framing, used by
// followers to journal shipped state in their own format.
func AppendFrame(buf []byte, rec Record) []byte { return frameRecord(buf, rec) }

// ParseFrames decodes a run of framed records with no segment header —
// the shape ShipFrames serves. Unlike segment replay, a malformed or
// truncated tail is an error: shipped bytes come from the leader's
// committed prefix, so a torn frame means transport corruption, not a
// crash artifact.
func ParseFrames(data []byte) ([]Record, error) {
	recs, valid, torn, err := parseWAL(append(append([]byte(nil), walMagic...), data...))
	if err != nil {
		return nil, err
	}
	if torn > 0 || valid != len(walMagic)+len(data) {
		return nil, fmt.Errorf("store: %d torn byte(s) in shipped frames", torn)
	}
	return recs, nil
}
