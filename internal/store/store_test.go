package store

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"shareinsights/internal/obs"
)

func rec(i int) Record {
	return Record{Type: 1, Payload: []byte(fmt.Sprintf("record-%03d", i))}
}

func payloads(recs []Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = string(r.Payload)
	}
	return out
}

// logicalState reduces a recovery to the record payloads it represents:
// the snapshot (encoded in tests as a joined payload list) plus replayed
// WAL records.
func logicalState(r *Recovery) []string {
	var out []string
	if len(r.Snapshot) > 0 {
		out = strings.Split(string(r.Snapshot), ",")
	}
	return append(out, payloads(r.Records)...)
}

func snapPayload(states []string) []byte { return []byte(strings.Join(states, ",")) }

func TestParseGen(t *testing.T) {
	cases := []struct {
		name, prefix string
		want         uint64
		ok           bool
	}{
		{"wal-00000001.si", "wal-", 1, true},
		{"wal-00012345.si", "wal-", 12345, true},
		{"snap-00000007.si", "snap-", 7, true},
		{"wal-00000001.si.tmp", "wal-", 0, false},
		{"wal-abc.si", "wal-", 0, false},
		{"wal-00000000.si", "wal-", 0, false}, // generation 0 is reserved
		{"snap-00000001.si", "wal-", 0, false},
	}
	for _, c := range cases {
		g, ok := parseGen(c.name, c.prefix)
		if g != c.want || ok != c.ok {
			t.Errorf("parseGen(%q, %q) = %d, %v; want %d, %v", c.name, c.prefix, g, ok, c.want, c.ok)
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	fs := NewMemFS()
	d, r, err := OpenDir(fs, "data", "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Records) != 0 || r.Snapshot != nil {
		t.Fatalf("fresh dir recovered state: %+v", r)
	}
	for i := 0; i < 5; i++ {
		if err := d.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if b, n := d.WALSize(); n != 5 || b == 0 {
		t.Fatalf("WALSize = %d bytes, %d records", b, n)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, r2, err := OpenDir(fs, "data", "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	want := []string{"record-000", "record-001", "record-002", "record-003", "record-004"}
	if got := payloads(r2.Records); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	if r2.TornBytes != 0 || r2.RecordCount != 5 {
		t.Fatalf("recovery stats: %+v", r2)
	}
}

func TestSnapshotCompaction(t *testing.T) {
	fs := NewMemFS()
	d, _, err := OpenDir(fs, "data", "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Append(rec(0))
	d.Append(rec(1))
	if err := d.Snapshot(snapPayload([]string{"record-000", "record-001"}), time.Unix(100, 0)); err != nil {
		t.Fatal(err)
	}
	d.Append(rec(2))
	d.Close()

	// Old generation files must be gone after compaction.
	names, _ := fs.List("data")
	for _, n := range names {
		if n == segName(1) || strings.HasSuffix(n, ".tmp") {
			t.Fatalf("stale file %s survived compaction (have %v)", n, names)
		}
	}
	_, r, err := OpenDir(fs, "data", "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := logicalState(r); fmt.Sprint(got) != fmt.Sprint([]string{"record-000", "record-001", "record-002"}) {
		t.Fatalf("recovered %v", got)
	}
	if r.SnapshotBytes == 0 || !r.SnapshotAt.Equal(time.Unix(100, 0)) {
		t.Fatalf("snapshot metadata: %+v", r)
	}
}

func TestTornTailTruncatedAndRewritten(t *testing.T) {
	fs := NewMemFS()
	fs.MkdirAll("data")
	h, _ := fs.Create("data/" + segName(1))
	buf := append([]byte(nil), walMagic...)
	buf = frameRecord(buf, rec(0))
	buf = append(buf, []byte{0x42, 0x42, 0x42}...) // torn partial header
	h.Write(buf)
	h.Sync()
	h.Close()

	d, r, err := OpenDir(fs, "data", "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := payloads(r.Records); fmt.Sprint(got) != fmt.Sprint([]string{"record-000"}) {
		t.Fatalf("recovered %v", got)
	}
	if r.TornBytes != 3 {
		t.Fatalf("TornBytes = %d, want 3", r.TornBytes)
	}
	// The segment was rewritten to the valid prefix: appends land after
	// record 0 and a clean reopen sees no torn bytes.
	if err := d.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	d.Close()
	_, r2, err := OpenDir(fs, "data", "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := payloads(r2.Records); fmt.Sprint(got) != fmt.Sprint([]string{"record-000", "record-001"}) {
		t.Fatalf("after rewrite recovered %v", got)
	}
	if r2.TornBytes != 0 {
		t.Fatalf("TornBytes = %d after rewrite", r2.TornBytes)
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	fs := NewMemFS()
	fs.MkdirAll("data")
	if err := writeSnapshot(fs, "data", snapName(2), snapPayload([]string{"old-state"}), time.Unix(50, 0)); err != nil {
		t.Fatal(err)
	}
	h, _ := fs.Create("data/" + snapName(3))
	h.Write([]byte("SISNAP01 but then garbage that will not checksum"))
	h.Sync()
	h.Close()

	_, r, err := OpenDir(fs, "data", "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := logicalState(r); fmt.Sprint(got) != fmt.Sprint([]string{"old-state"}) {
		t.Fatalf("recovered %v", got)
	}
	if r.CorruptSnapshots != 1 {
		t.Fatalf("CorruptSnapshots = %d", r.CorruptSnapshots)
	}
	names, _ := fs.List("data")
	for _, n := range names {
		if n == snapName(3) {
			t.Fatalf("corrupt snapshot not cleaned up: %v", names)
		}
	}
}

// TestCrashMatrixAckedPrefix is the core durability property: inject a
// crash at every write and fsync boundary of a scripted append workload,
// recover from the crash's durable image under each unsynced-bytes
// policy, and assert the recovered log is a prefix of the attempted one
// that contains at least every acknowledged record. Under the
// conservative policy (page cache gone) with a crash before the
// operation applies, recovery equals the acknowledged prefix exactly.
func TestCrashMatrixAckedPrefix(t *testing.T) {
	const total = 6
	type variant struct {
		op      Op
		mode    Mode
		partial int
	}
	variants := []variant{
		{OpWrite, Crash, 0},      // crash before any byte of the write lands
		{OpWrite, Crash, 4},      // torn write: 4 bytes land mid-record
		{OpWrite, CrashAfter, 0}, // write applied, crash before fsync
		{OpSync, Crash, 0},       // crash in fsync, durability unknown
		{OpSync, CrashAfter, 0},  // fsync applied, ack never returned
	}
	policies := []UnsyncedPolicy{DropUnsynced, KeepUnsynced, TornUnsynced}
	attempted := make([]string, total)
	for i := range attempted {
		attempted[i] = string(rec(i).Payload)
	}
	for _, v := range variants {
		for _, policy := range policies {
			for after := 0; ; after++ {
				name := fmt.Sprintf("%s/%d/partial=%d/policy=%d/after=%d", v.op, v.mode, v.partial, policy, after)
				ffs := NewFaultFS()
				ffs.Inject(Fault{Op: v.op, Path: "wal-", After: after, Mode: v.mode, Partial: v.partial})
				acked := 0
				d, _, err := OpenDir(ffs, "data", "test", nil)
				if err == nil {
					for i := 0; i < total; i++ {
						if d.Append(rec(i)) != nil {
							break
						}
						acked++
					}
					d.Close()
				}
				if !ffs.Crashed() {
					if err != nil {
						t.Fatalf("%s: OpenDir failed without crash: %v", name, err)
					}
					break // fault never fired: past the last matching op
				}
				d2, r, err := OpenDir(ffs.Durable(policy), "data", "test", nil)
				if err != nil {
					t.Fatalf("%s: recovery failed: %v", name, err)
				}
				got := payloads(r.Records)
				if len(got) < acked || len(got) > total {
					t.Fatalf("%s: recovered %d records, acked %d", name, len(got), acked)
				}
				if fmt.Sprint(got) != fmt.Sprint(attempted[:len(got)]) {
					t.Fatalf("%s: recovered %v is not a prefix of attempted", name, got)
				}
				if policy == DropUnsynced && v.mode == Crash && len(got) != acked {
					t.Fatalf("%s: conservative recovery has %d records, acked %d", name, len(got), acked)
				}
				// The recovered dir must be fully serviceable: append and
				// re-recover.
				if err := d2.Append(Record{Type: 2, Payload: []byte("post")}); err != nil {
					t.Fatalf("%s: append after recovery: %v", name, err)
				}
				d2.Close()
			}
		}
	}
}

// Compaction crash points: a crash at any step of the snapshot rotation
// recovers the full acknowledged state, through either the old
// generation or the new one.
func TestSnapshotRotationCrashPoints(t *testing.T) {
	want := []string{"record-000", "record-001"}
	cases := []struct {
		name  string
		fault Fault
	}{
		{"mid-snapshot-write", Fault{Op: OpWrite, Path: "snap-", Mode: Crash, Partial: 10}},
		{"pre-snapshot-fsync", Fault{Op: OpSync, Path: "snap-", Mode: Crash}},
		{"mid-rename", Fault{Op: OpRename, Path: "snap-", Mode: Crash}},
		{"post-rename", Fault{Op: OpRename, Path: "snap-", Mode: CrashAfter}},
		{"new-segment-create", Fault{Op: OpCreate, Path: segName(2), Mode: Crash}},
		{"old-segment-remove", Fault{Op: OpRemove, Path: segName(1), Mode: Crash}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ffs := NewFaultFS()
			d, _, err := OpenDir(ffs, "data", "test", nil)
			if err != nil {
				t.Fatal(err)
			}
			d.Append(rec(0))
			d.Append(rec(1))
			ffs.Inject(c.fault)
			d.Snapshot(snapPayload(want), time.Unix(0, 0)) // error or not, the crash fires
			if !ffs.Crashed() {
				t.Fatal("fault did not fire")
			}
			_, r, err := OpenDir(ffs.Durable(DropUnsynced), "data", "test", nil)
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			if got := logicalState(r); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("recovered %v, want %v (snapshot=%dB records=%d)", got, want, len(r.Snapshot), len(r.Records))
			}
		})
	}
}

func TestFailedFsyncFailStopAndSnapshotRepair(t *testing.T) {
	ffs := NewFaultFS()
	d, _, err := OpenDir(ffs, "data", "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append(rec(0)); err != nil {
		t.Fatal(err)
	}
	// Next fsync on the WAL fails: the append must not be acknowledged
	// and the dir turns fail-stop.
	ffs.Inject(Fault{Op: OpSync, Path: "wal-", Mode: FailIO})
	if err := d.Append(rec(1)); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("append with failed fsync: %v", err)
	}
	if err := d.Append(rec(2)); err == nil || !strings.Contains(err.Error(), "damaged") {
		t.Fatalf("append on damaged dir: %v", err)
	}
	if d.Damaged() == nil {
		t.Fatal("Damaged() = nil after failed fsync")
	}
	// A snapshot starts a fresh segment and repairs the dir. The caller
	// snapshots its in-memory state, which still holds only acked data.
	if err := d.Snapshot(snapPayload([]string{"record-000"}), time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	if d.Damaged() != nil {
		t.Fatal("still damaged after snapshot repair")
	}
	if err := d.Append(rec(3)); err != nil {
		t.Fatal(err)
	}
	d.Close()
	_, r, err := OpenDir(ffs, "data", "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := logicalState(r); fmt.Sprint(got) != fmt.Sprint([]string{"record-000", "record-003"}) {
		t.Fatalf("recovered %v", got)
	}
}

func TestNoSpaceLeavesTornTail(t *testing.T) {
	ffs := NewFaultFS()
	d, _, err := OpenDir(ffs, "data", "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append(rec(0)); err != nil {
		t.Fatal(err)
	}
	ffs.Inject(Fault{Op: OpWrite, Path: "wal-", Mode: FailNoSpace, Partial: 5})
	if err := d.Append(rec(1)); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("append under ENOSPC: %v", err)
	}
	if err := d.Append(rec(2)); err == nil {
		t.Fatal("damaged dir accepted an append after ENOSPC")
	}
	d.Close()
	// The 5 partial bytes are a torn tail for recovery to truncate.
	_, r, err := OpenDir(ffs.Durable(KeepUnsynced), "data", "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := payloads(r.Records); fmt.Sprint(got) != fmt.Sprint([]string{"record-000"}) {
		t.Fatalf("recovered %v", got)
	}
	if r.TornBytes != 5 {
		t.Fatalf("TornBytes = %d, want 5", r.TornBytes)
	}
}

func TestStoreMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	fs := NewMemFS()
	d, _, err := OpenDir(fs, "data", "vcs", reg)
	if err != nil {
		t.Fatal(err)
	}
	d.Append(rec(0))
	d.Append(rec(1))
	d.Snapshot(snapPayload([]string{"a", "b"}), time.Unix(0, 0))
	d.Close()

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		`si_store_appends_total{component="vcs"} 2`,
		`si_store_snapshots_total{component="vcs"} 1`,
		`si_store_recoveries_total{component="vcs"} 1`,
		`si_store_wal_bytes{component="vcs"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
	if !strings.Contains(text, `si_store_fsyncs_total{component="vcs"}`) {
		t.Errorf("metrics missing fsync counter:\n%s", text)
	}
}

func TestOSFSRoundTrip(t *testing.T) {
	fs := NewOSFS(t.TempDir())
	d, _, err := OpenDir(fs, "vcs", "vcs", nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Append(rec(0))
	if err := d.Snapshot(snapPayload([]string{"record-000"}), time.Now()); err != nil {
		t.Fatal(err)
	}
	d.Append(rec(1))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	_, r, err := OpenDir(fs, "vcs", "vcs", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := logicalState(r); fmt.Sprint(got) != fmt.Sprint([]string{"record-000", "record-001"}) {
		t.Fatalf("recovered %v", got)
	}
}
