package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"
)

// Snapshot file format (docs/DURABILITY.md):
//
//	header   8 bytes  "SISNAP01"
//	         8 bytes  little-endian unix nanoseconds (write time)
//	         4 bytes  little-endian payload length
//	         4 bytes  CRC32C over the payload
//	payload  N bytes  component-defined full-state encoding
//
// Snapshots are written to a .tmp file, fsynced, atomically renamed to
// their final name and the directory fsynced — a crash at any point
// leaves either the previous generation or a complete new one, never a
// half-written snapshot that validates.

var snapMagic = []byte("SISNAP01")

const snapHeaderLen = 24

// encodeSnapshot frames a snapshot payload.
func encodeSnapshot(payload []byte, at time.Time) []byte {
	out := make([]byte, 0, snapHeaderLen+len(payload))
	out = append(out, snapMagic...)
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(at.UnixNano()))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(payload, crcTable))
	out = append(out, hdr[:]...)
	return append(out, payload...)
}

// decodeSnapshot validates a snapshot file and returns its payload and
// write time. Any framing or checksum problem is an error: the caller
// falls back to an older generation.
func decodeSnapshot(data []byte) (payload []byte, at time.Time, err error) {
	if len(data) < snapHeaderLen || string(data[:len(snapMagic)]) != string(snapMagic) {
		return nil, time.Time{}, fmt.Errorf("store: snapshot header malformed")
	}
	ns := binary.LittleEndian.Uint64(data[8:16])
	length := binary.LittleEndian.Uint32(data[16:20])
	wantCRC := binary.LittleEndian.Uint32(data[20:24])
	if int(length) != len(data)-snapHeaderLen {
		return nil, time.Time{}, fmt.Errorf("store: snapshot length %d does not match file (%d payload bytes)", length, len(data)-snapHeaderLen)
	}
	payload = data[snapHeaderLen:]
	if crc32.Checksum(payload, crcTable) != wantCRC {
		return nil, time.Time{}, fmt.Errorf("store: snapshot checksum mismatch")
	}
	return payload, time.Unix(0, int64(ns)), nil
}

// writeSnapshot durably writes a snapshot file: temp file, fsync,
// atomic rename, directory fsync.
func writeSnapshot(fs FS, dir, name string, payload []byte, at time.Time) error {
	tmp := dir + "/" + name + ".tmp"
	h, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: create snapshot temp: %w", err)
	}
	if _, err := h.Write(encodeSnapshot(payload, at)); err != nil {
		h.Close()
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := h.Sync(); err != nil {
		h.Close()
		return fmt.Errorf("store: sync snapshot: %w", err)
	}
	if err := h.Close(); err != nil {
		return fmt.Errorf("store: close snapshot: %w", err)
	}
	if err := fs.Rename(tmp, dir+"/"+name); err != nil {
		return fmt.Errorf("store: rename snapshot: %w", err)
	}
	return fs.SyncDir(dir)
}
