package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// WAL segment format (docs/DURABILITY.md):
//
//	header   8 bytes  "SIWAL001"
//	record   4 bytes  little-endian payload length
//	         4 bytes  CRC32C (Castagnoli) over type byte + payload
//	         1 byte   record type (component-defined)
//	         N bytes  payload
//
// Records are acknowledged only after the segment file is fsynced. On
// replay, any malformed tail — a partial header, a length running past
// the end of the file, or a CRC mismatch — is treated as a torn write
// from a crash mid-append: replay stops there and the tail is dropped.

var walMagic = []byte("SIWAL001")

const (
	recHeaderLen  = 9       // length (4) + crc (4) + type (1)
	maxRecordSize = 1 << 30 // sanity bound against corrupt length fields
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one journaled entry: a component-defined type tag plus an
// opaque payload.
type Record struct {
	Type    byte
	Payload []byte
}

// frameRecord appends the framed record to buf and returns it.
func frameRecord(buf []byte, rec Record) []byte {
	var hdr [recHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(rec.Payload)))
	crc := crc32.Update(0, crcTable, []byte{rec.Type})
	crc = crc32.Update(crc, crcTable, rec.Payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	hdr[8] = rec.Type
	buf = append(buf, hdr[:]...)
	return append(buf, rec.Payload...)
}

// parseWAL replays a segment's records. It returns the records up to
// the first malformed frame, the number of valid bytes (header
// included), and how many torn trailing bytes were dropped. A segment
// whose 8-byte header itself is torn or wrong yields zero records and
// the whole file as torn bytes.
func parseWAL(data []byte) (recs []Record, validBytes, tornBytes int, err error) {
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != string(walMagic) {
		return nil, 0, len(data), nil
	}
	off := len(walMagic)
	for off < len(data) {
		rest := data[off:]
		if len(rest) < recHeaderLen {
			return recs, off, len(data) - off, nil
		}
		length := binary.LittleEndian.Uint32(rest[0:4])
		if length > maxRecordSize {
			return recs, off, len(data) - off, nil
		}
		end := recHeaderLen + int(length)
		if len(rest) < end {
			return recs, off, len(data) - off, nil
		}
		wantCRC := binary.LittleEndian.Uint32(rest[4:8])
		crc := crc32.Update(0, crcTable, rest[8:9])
		crc = crc32.Update(crc, crcTable, rest[recHeaderLen:end])
		if crc != wantCRC {
			return recs, off, len(data) - off, nil
		}
		recs = append(recs, Record{Type: rest[8], Payload: append([]byte(nil), rest[recHeaderLen:end]...)})
		off += end
	}
	return recs, off, 0, nil
}

// createSegment writes a fresh WAL segment containing only the header,
// fsyncs it, and makes its directory entry durable.
func createSegment(fs FS, dir, name string) (File, error) {
	h, err := fs.Create(dir + "/" + name)
	if err != nil {
		return nil, fmt.Errorf("store: create segment %s: %w", name, err)
	}
	if _, err := h.Write(walMagic); err != nil {
		h.Close()
		return nil, fmt.Errorf("store: write segment header %s: %w", name, err)
	}
	if err := h.Sync(); err != nil {
		h.Close()
		return nil, fmt.Errorf("store: sync segment %s: %w", name, err)
	}
	if err := fs.SyncDir(dir); err != nil {
		h.Close()
		return nil, err
	}
	return h, nil
}
