package store

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestShipFramesRoundTrip(t *testing.T) {
	fs := NewMemFS()
	d, _, err := OpenDir(fs, "data", "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	start := d.Cursor()
	if start.Gen != 1 || start.Offset != int64(len(walMagic)) {
		t.Fatalf("fresh cursor = %+v", start)
	}
	for i := 0; i < 4; i++ {
		if err := d.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	frames, next, committed, err := d.ShipFrames(start, 0)
	if err != nil {
		t.Fatal(err)
	}
	if next != committed || next != d.Cursor() {
		t.Fatalf("next %+v, committed %+v, cursor %+v", next, committed, d.Cursor())
	}
	recs, err := ParseFrames(frames)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"record-000", "record-001", "record-002", "record-003"}
	if got := payloads(recs); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("shipped %v, want %v", got, want)
	}
	// Caught up: an empty ship from the committed cursor.
	frames, next2, _, err := d.ShipFrames(next, 0)
	if err != nil || len(frames) != 0 || next2 != next {
		t.Fatalf("caught-up ship = %d bytes, %+v, %v", len(frames), next2, err)
	}
}

func TestShipFramesBatchesRespectMax(t *testing.T) {
	fs := NewMemFS()
	d, _, err := OpenDir(fs, "data", "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 8; i++ {
		d.Append(rec(i))
	}
	frameLen := recHeaderLen + len(rec(0).Payload)
	cur := Cursor{Gen: 1, Offset: int64(len(walMagic))}
	var all []Record
	steps := 0
	for {
		frames, next, committed, err := d.ShipFrames(cur, 3*frameLen)
		if err != nil {
			t.Fatal(err)
		}
		if len(frames) == 0 {
			if cur != committed {
				t.Fatalf("empty batch below committed: %+v vs %+v", cur, committed)
			}
			break
		}
		recs, err := ParseFrames(frames)
		if err != nil {
			t.Fatalf("batch at %+v: %v", cur, err)
		}
		if len(recs) > 3 {
			t.Fatalf("batch of %d records exceeds max", len(recs))
		}
		all = append(all, recs...)
		cur = next
		steps++
	}
	if len(all) != 8 || steps != 3 {
		t.Fatalf("shipped %d records in %d steps", len(all), steps)
	}
}

func TestShipFramesGoneAfterCompaction(t *testing.T) {
	fs := NewMemFS()
	d, _, err := OpenDir(fs, "data", "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Append(rec(0))
	cur := d.Cursor()
	if err := d.Snapshot(snapPayload([]string{"record-000"}), time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	d.Append(rec(1))
	if _, _, _, err := d.ShipFrames(cur, 0); !errors.Is(err, ErrShipGone) {
		t.Fatalf("stale-generation ship: %v", err)
	}
	// A cursor past the committed offset (e.g. from a leader that lost
	// acked state) is equally unservable.
	bad := d.Cursor()
	bad.Offset += 100
	if _, _, _, err := d.ShipFrames(bad, 0); !errors.Is(err, ErrShipGone) {
		t.Fatalf("past-committed ship: %v", err)
	}
	boot, err := d.ShipBootstrap()
	if err != nil {
		t.Fatal(err)
	}
	if string(boot.Snapshot) != "record-000" {
		t.Fatalf("bootstrap snapshot = %q", boot.Snapshot)
	}
	recs, err := ParseFrames(boot.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if got := payloads(recs); fmt.Sprint(got) != fmt.Sprint([]string{"record-001"}) {
		t.Fatalf("bootstrap frames %v", got)
	}
	if boot.Next != d.Cursor() {
		t.Fatalf("bootstrap next %+v, cursor %+v", boot.Next, d.Cursor())
	}
}

// A failed append must never become visible to a follower: the written
// bytes are in the file, but the committed offset excludes them.
func TestShipFramesExcludeUnackedBytes(t *testing.T) {
	ffs := NewFaultFS()
	d, _, err := OpenDir(ffs, "data", "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Append(rec(0)); err != nil {
		t.Fatal(err)
	}
	ffs.Inject(Fault{Op: OpSync, Path: "wal-", Mode: FailIO})
	if err := d.Append(rec(1)); err == nil {
		t.Fatal("append with failed fsync succeeded")
	}
	frames, next, committed, err := d.ShipFrames(Cursor{Gen: 1, Offset: int64(len(walMagic))}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if next != committed {
		t.Fatalf("next %+v != committed %+v", next, committed)
	}
	recs, err := ParseFrames(frames)
	if err != nil {
		t.Fatal(err)
	}
	if got := payloads(recs); fmt.Sprint(got) != fmt.Sprint([]string{"record-000"}) {
		t.Fatalf("shipped unacked bytes: %v", got)
	}
}

// When recovery falls back past a corrupt snapshot, multiple WAL
// generations stay retained; a bootstrap must stitch all of them, not
// just the current segment.
func TestShipBootstrapSpansRetainedGenerations(t *testing.T) {
	ffs := NewFaultFS()
	d, _, err := OpenDir(ffs, "data", "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Append(rec(0))
	if err := d.Snapshot(snapPayload([]string{"record-000"}), time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	d.Append(rec(1))
	// The old-segment delete is best-effort; when it fails, wal-2 stays
	// behind next to the new generation.
	ffs.Inject(Fault{Op: OpRemove, Path: segName(2), Mode: FailIO})
	if err := d.Snapshot(snapPayload([]string{"record-000", "record-001"}), time.Unix(1, 0)); err != nil {
		t.Fatal(err)
	}
	d.Append(rec(2))
	d.Close()
	// Corrupt the only snapshot: the next open replays wal-2 and wal-3.
	h, _ := ffs.Create("data/" + snapName(3))
	h.Write([]byte("SISNAP01 corrupted beyond recognition"))
	h.Sync()
	h.Close()
	d2, r, err := OpenDir(ffs, "data", "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if len(r.Snapshot) != 0 || r.CorruptSnapshots != 1 {
		t.Fatalf("recovery after snapshot corruption: %+v", r)
	}
	if got := payloads(r.Records); fmt.Sprint(got) != fmt.Sprint([]string{"record-001", "record-002"}) {
		t.Fatalf("recovered %v", got)
	}
	d2.Append(rec(3))
	boot, err := d2.ShipBootstrap()
	if err != nil {
		t.Fatal(err)
	}
	if len(boot.Snapshot) != 0 {
		t.Fatalf("bootstrap has snapshot %q after corruption", boot.Snapshot)
	}
	recs, err := ParseFrames(boot.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if got := payloads(recs); fmt.Sprint(got) != fmt.Sprint([]string{"record-001", "record-002", "record-003"}) {
		t.Fatalf("bootstrap frames %v", got)
	}
	if boot.Next != d2.Cursor() {
		t.Fatalf("bootstrap next %+v, cursor %+v", boot.Next, d2.Cursor())
	}
}

func TestParseFramesRejectsTornInput(t *testing.T) {
	var buf []byte
	buf = AppendFrame(buf, rec(0))
	if _, err := ParseFrames(buf[:len(buf)-2]); err == nil {
		t.Fatal("torn frame accepted")
	}
	buf[recHeaderLen] ^= 0xFF // flip a payload byte under the CRC
	if _, err := ParseFrames(buf); err == nil {
		t.Fatal("corrupt frame accepted")
	}
}
