package cube

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"shareinsights/internal/schema"
	"shareinsights/internal/table"
	"shareinsights/internal/value"
)

func sampleCube(t *testing.T) (*Cube, *table.Table) {
	t.Helper()
	tb := table.New(schema.MustFromNames("date", "team", "count"))
	rows := []struct {
		date, team string
		count      int64
	}{
		{"d1", "CSK", 5},
		{"d1", "MI", 3},
		{"d2", "CSK", 2},
		{"d2", "RCB", 7},
		{"d3", "MI", 1},
	}
	for _, r := range rows {
		tb.AppendValues(value.NewString(r.date), value.NewString(r.team), value.NewInt(r.count))
	}
	return New(tb), tb
}

func TestFilterAndMaterialize(t *testing.T) {
	c, _ := sampleCube(t)
	if c.Live() != 5 {
		t.Fatalf("live = %d", c.Live())
	}
	teams, err := c.Dimension("team")
	if err != nil {
		t.Fatal(err)
	}
	teams.Filter("CSK")
	if c.Live() != 2 {
		t.Errorf("live after team filter = %d", c.Live())
	}
	dates, err := c.Dimension("date")
	if err != nil {
		t.Fatal(err)
	}
	dates.Filter("d1")
	if c.Live() != 1 {
		t.Errorf("live after both filters = %d", c.Live())
	}
	// Materialize ignoring the team dimension: d1 rows of any team.
	m := c.Materialize(teams)
	if m.Len() != 2 {
		t.Errorf("materialize ignoring team = %d rows", m.Len())
	}
	teams.ClearFilter()
	if c.Live() != 2 { // only the date filter remains
		t.Errorf("live after clear = %d", c.Live())
	}
	dates.ClearFilter()
	if c.Live() != 5 {
		t.Errorf("live after clearing all = %d", c.Live())
	}
}

func TestFilterRange(t *testing.T) {
	c, _ := sampleCube(t)
	d, _ := c.Dimension("count")
	d.FilterRange(value.NewInt(2), value.NewInt(5))
	if c.Live() != 3 {
		t.Errorf("range filter live = %d", c.Live())
	}
}

func TestGroupObservesOtherFilters(t *testing.T) {
	c, _ := sampleCube(t)
	teams, _ := c.Dimension("team")
	dates, _ := c.Dimension("date")
	g, err := c.GroupBy(teams, Sum, "count")
	if err != nil {
		t.Fatal(err)
	}
	// Unfiltered: CSK=7, MI=4, RCB=7.
	snap := g.Snapshot()
	if len(snap) != 3 || snap[0].Sum != 7 || snap[1].Sum != 4 {
		t.Fatalf("initial snapshot = %+v", snap)
	}
	// A filter on the group's own dimension must NOT affect it
	// (crossfilter semantics: a widget doesn't filter itself).
	teams.Filter("CSK")
	if got := len(g.Snapshot()); got != 3 {
		t.Errorf("own-dimension filter changed the group: %d buckets", got)
	}
	// A filter on another dimension does.
	dates.Filter("d1")
	snap = g.Snapshot()
	if len(snap) != 2 { // d1 has CSK and MI only
		t.Fatalf("snapshot after date filter = %+v", snap)
	}
	if snap[0].Key.Str() != "CSK" || snap[0].Sum != 5 {
		t.Errorf("CSK bucket = %+v", snap[0])
	}
	dates.ClearFilter()
	if got := g.Snapshot(); len(got) != 3 || got[2].Sum != 7 {
		t.Errorf("snapshot after clear = %+v", got)
	}
}

func TestGroupCount(t *testing.T) {
	c, _ := sampleCube(t)
	teams, _ := c.Dimension("team")
	g, err := c.GroupBy(teams, Count, "")
	if err != nil {
		t.Fatal(err)
	}
	snap := g.Snapshot()
	if len(snap) != 3 || snap[0].Count != 2 {
		t.Errorf("count group = %+v", snap)
	}
	tbl, err := g.Table("team", "n")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Schema().String() != "[team, n]" || tbl.Len() != 3 {
		t.Errorf("group table = %s", tbl.Format(0))
	}
}

func TestGroupErrors(t *testing.T) {
	c, _ := sampleCube(t)
	if _, err := c.Dimension("nope"); err == nil {
		t.Error("unknown dimension column should fail")
	}
	teams, _ := c.Dimension("team")
	if _, err := c.GroupBy(teams, Sum, "nope"); err == nil {
		t.Error("unknown value column should fail")
	}
}

// TestIncrementalMatchesRecompute is the core cube invariant: after any
// sequence of filter changes, every group equals a from-scratch
// recomputation over the filtered rows.
func TestIncrementalMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tb := table.New(schema.MustFromNames("a", "b", "v"))
	for i := 0; i < 500; i++ {
		tb.AppendValues(
			value.NewString(fmt.Sprintf("a%d", rng.Intn(5))),
			value.NewString(fmt.Sprintf("b%d", rng.Intn(7))),
			value.NewInt(int64(rng.Intn(100))),
		)
	}
	c := New(tb)
	da, _ := c.Dimension("a")
	db, _ := c.Dimension("b")
	g, err := c.GroupBy(da, Sum, "v")
	if err != nil {
		t.Fatal(err)
	}
	recompute := func() map[string]float64 {
		want := map[string]float64{}
		// Group on a observes b's filter only.
		m := c.Materialize(da)
		ai := m.Schema().Index("a")
		vi := m.Schema().Index("v")
		for _, r := range m.Rows() {
			want[r[ai].Str()] += r[vi].Float()
		}
		return want
	}
	check := func(step string) {
		want := recompute()
		got := map[string]float64{}
		for _, e := range g.Snapshot() {
			got[e.Key.Str()] = e.Sum
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d buckets, want %d", step, len(got), len(want))
		}
		for k, w := range want {
			if got[k] != w {
				t.Fatalf("%s: bucket %s = %v, want %v", step, k, got[k], w)
			}
		}
	}
	check("initial")
	for i := 0; i < 30; i++ {
		switch rng.Intn(4) {
		case 0:
			db.Filter(fmt.Sprintf("b%d", rng.Intn(7)), fmt.Sprintf("b%d", rng.Intn(7)))
		case 1:
			db.ClearFilter()
		case 2:
			da.Filter(fmt.Sprintf("a%d", rng.Intn(5)))
		case 3:
			da.ClearFilter()
		}
		check(fmt.Sprintf("step %d", i))
	}
}

func TestDimensionReuseAndLimit(t *testing.T) {
	c, _ := sampleCube(t)
	d1, _ := c.Dimension("team")
	d2, _ := c.Dimension("team")
	if d1 != d2 {
		t.Error("same column should return the same dimension")
	}
}

func TestCubeCountInvariantProperty(t *testing.T) {
	// For random data and one filter, Live() equals the brute count.
	f := func(vals []uint8) bool {
		tb := table.New(schema.MustFromNames("k"))
		for _, v := range vals {
			tb.AppendValues(value.NewInt(int64(v % 4)))
		}
		c := New(tb)
		d, err := c.Dimension("k")
		if err != nil {
			return false
		}
		d.Filter("1", "3")
		want := 0
		for _, v := range vals {
			if v%4 == 1 || v%4 == 3 {
				want++
			}
		}
		return c.Live() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
