// Package cube is ShareInsights' interactive execution context — the
// stand-in for the JavaScript data cube the paper generates for ad-hoc
// widget interaction ("the AST eventually gets converted into … a data
// cube (in JavaScript) — for ad-hoc widget interaction (group, filter
// etc)", §4.1).
//
// A Cube indexes one endpoint data object. Widgets register dimensions
// (the columns their interaction filters touch) and groups (their
// aggregations). Changing a dimension's filter updates every group
// incrementally, crossfilter-style: each group observes all filters
// *except* the one on its own dimension, and additions/removals are
// applied as deltas rather than recomputed — which is what makes
// dashboard interaction latency independent of how many widgets listen.
package cube

import (
	"fmt"
	"sort"

	"shareinsights/internal/obs"
	"shareinsights/internal/schema"
	"shareinsights/internal/table"
	"shareinsights/internal/value"
)

// maxDimensions bounds the per-cube dimension count; the filter state of
// a row is a uint64 bitmask with one bit per dimension.
const maxDimensions = 64

// Cube indexes a table for interactive filtering and grouping.
type Cube struct {
	base *table.Table
	// failMask[i] has bit d set when row i fails dimension d's filter.
	failMask []uint64
	dims     map[string]*Dimension
	dimOrder []*Dimension
	groups   []*Group

	// tracer/traceParent receive spans for filter updates and
	// materializations; nil tracer disables tracing.
	tracer      obs.Tracer
	traceParent int
}

// SetTracer attaches execution tracing: filter updates and
// materializations open spans under parent on tr. nil disables.
func (c *Cube) SetTracer(tr obs.Tracer, parent int) {
	c.tracer = tr
	c.traceParent = parent
}

// New builds a cube over a materialized endpoint data object.
func New(t *table.Table) *Cube {
	return &Cube{
		base:     t,
		failMask: make([]uint64, t.Len()),
		dims:     map[string]*Dimension{},
	}
}

// Base returns the underlying table.
func (c *Cube) Base() *table.Table { return c.base }

// Dimension returns (creating on first use) the dimension over a column.
func (c *Cube) Dimension(col string) (*Dimension, error) {
	if d, ok := c.dims[col]; ok {
		return d, nil
	}
	idx := c.base.Schema().Index(col)
	if idx < 0 {
		return nil, fmt.Errorf("cube: column %q not in %s", col, c.base.Schema())
	}
	if len(c.dimOrder) >= maxDimensions {
		return nil, fmt.Errorf("cube: dimension limit (%d) reached", maxDimensions)
	}
	d := &Dimension{cube: c, col: col, colIdx: idx, bit: uint64(1) << uint(len(c.dimOrder))}
	c.dims[col] = d
	c.dimOrder = append(c.dimOrder, d)
	return d, nil
}

// Dimension is one filterable column.
type Dimension struct {
	cube   *Cube
	col    string
	colIdx int
	bit    uint64
	// active marks whether a filter is currently applied.
	active bool
}

// Column returns the dimension's column name.
func (d *Dimension) Column() string { return d.col }

// Filter keeps rows whose column value (display form) is in vals.
func (d *Dimension) Filter(vals ...string) {
	set := make(map[string]bool, len(vals))
	for _, v := range vals {
		set[v] = true
	}
	d.apply(func(v value.V) bool { return set[v.String()] })
}

// FilterRange keeps rows with lo <= value <= hi.
func (d *Dimension) FilterRange(lo, hi value.V) {
	d.apply(func(v value.V) bool {
		if lo.Kind() == value.Time && v.Kind() == value.String {
			v = value.Parse(v.Str())
		}
		return value.Compare(v, lo) >= 0 && value.Compare(v, hi) <= 0
	})
}

// FilterFunc keeps rows the predicate accepts.
func (d *Dimension) FilterFunc(pred func(value.V) bool) { d.apply(pred) }

// ClearFilter removes the dimension's filter.
func (d *Dimension) ClearFilter() {
	if !d.active {
		return
	}
	d.active = false
	d.apply(nil)
}

// apply installs a new predicate (nil = pass all) and propagates row
// state deltas to every group.
func (d *Dimension) apply(pred func(value.V) bool) {
	// Predicates can be user code (FilterFunc); annotate a panic with
	// the dimension before it unwinds so the recovery layer above can
	// pin-point which cube filter blew up.
	defer func() {
		if v := recover(); v != nil {
			panic(fmt.Sprintf("cube filter %s: %v", d.col, v))
		}
	}()
	c := d.cube
	sid := 0
	if c.tracer != nil {
		sid = c.tracer.StartSpan(c.traceParent, "cube filter "+d.col)
		defer func() {
			c.tracer.SpanInt(sid, "rows_live", int64(c.Live()))
			c.tracer.EndSpan(sid)
		}()
	}
	d.active = pred != nil
	for i, row := range c.base.Rows() {
		old := c.failMask[i]
		fails := pred != nil && !pred(row[d.colIdx])
		var next uint64
		if fails {
			next = old | d.bit
		} else {
			next = old &^ d.bit
		}
		if next == old {
			continue
		}
		c.failMask[i] = next
		for _, g := range c.groups {
			g.rowChanged(i, old, next)
		}
	}
}

// Live reports how many rows pass every filter.
func (c *Cube) Live() int {
	n := 0
	for _, m := range c.failMask {
		if m == 0 {
			n++
		}
	}
	return n
}

// Materialize returns the rows passing every filter, except those of the
// dimensions listed in ignore (widgets exclude their own dimension so a
// selection does not filter its own widget).
func (c *Cube) Materialize(ignore ...*Dimension) *table.Table {
	sid := 0
	if c.tracer != nil {
		sid = c.tracer.StartSpan(c.traceParent, "cube materialize")
	}
	var mask uint64
	for _, d := range ignore {
		if d != nil {
			mask |= d.bit
		}
	}
	out := table.New(c.base.Schema())
	for i, m := range c.failMask {
		if m&^mask == 0 {
			out.Append(c.base.Row(i))
		}
	}
	if c.tracer != nil {
		c.tracer.SpanInt(sid, "rows_in", int64(c.base.Len()))
		c.tracer.SpanInt(sid, "rows_out", int64(out.Len()))
		c.tracer.EndSpan(sid)
	}
	return out
}

// ---------------------------------------------------------------------
// Groups

// Reduce is an invertible aggregate for incremental maintenance: count
// and sum qualify; order statistics do not (recompute those from a
// Materialize'd table instead).
type Reduce int

// Supported incremental reductions.
const (
	Count Reduce = iota
	Sum
)

// Group maintains per-key aggregates over the rows that pass every
// filter except its own dimension's.
type Group struct {
	cube *Cube
	dim  *Dimension
	// valIdx is the aggregated column (-1 for Count).
	valIdx int
	reduce Reduce
	totals map[string]*bucket
}

type bucket struct {
	key   value.V
	count int64
	sum   float64
}

// GroupBy registers an incrementally maintained group on dim, reducing
// the named value column (ignored for Count).
func (c *Cube) GroupBy(dim *Dimension, reduce Reduce, valueCol string) (*Group, error) {
	valIdx := -1
	if reduce == Sum {
		valIdx = c.base.Schema().Index(valueCol)
		if valIdx < 0 {
			return nil, fmt.Errorf("cube: value column %q not in %s", valueCol, c.base.Schema())
		}
	}
	g := &Group{cube: c, dim: dim, valIdx: valIdx, reduce: reduce, totals: map[string]*bucket{}}
	// Seed from current state.
	for i, m := range c.failMask {
		if m&^dim.bit == 0 {
			g.add(i)
		}
	}
	c.groups = append(c.groups, g)
	return g, nil
}

func (g *Group) keyOf(i int) (string, value.V) {
	v := g.cube.base.Row(i)[g.dim.colIdx]
	return string(byte(v.Kind())) + v.String(), v
}

func (g *Group) add(i int) {
	k, kv := g.keyOf(i)
	b, ok := g.totals[k]
	if !ok {
		b = &bucket{key: kv}
		g.totals[k] = b
	}
	b.count++
	if g.valIdx >= 0 {
		b.sum += g.cube.base.Row(i)[g.valIdx].Float()
	}
}

func (g *Group) remove(i int) {
	k, _ := g.keyOf(i)
	b, ok := g.totals[k]
	if !ok {
		return
	}
	b.count--
	if g.valIdx >= 0 {
		b.sum -= g.cube.base.Row(i)[g.valIdx].Float()
	}
	if b.count <= 0 {
		delete(g.totals, k)
	}
}

// rowChanged applies the filter-state delta of row i.
func (g *Group) rowChanged(i int, old, next uint64) {
	before := old&^g.dim.bit == 0
	after := next&^g.dim.bit == 0
	switch {
	case before && !after:
		g.remove(i)
	case !before && after:
		g.add(i)
	}
}

// Entry is one group bucket in a snapshot.
type Entry struct {
	// Key is the group key value.
	Key value.V
	// Count is the number of contributing rows.
	Count int64
	// Sum is the reduced sum (0 for Count groups).
	Sum float64
}

// Value returns the reduction result as a value.
func (e Entry) Value(r Reduce) value.V {
	if r == Sum {
		if e.Sum == float64(int64(e.Sum)) {
			return value.NewInt(int64(e.Sum))
		}
		return value.NewFloat(e.Sum)
	}
	return value.NewInt(e.Count)
}

// Snapshot returns the current buckets sorted by key.
func (g *Group) Snapshot() []Entry {
	out := make([]Entry, 0, len(g.totals))
	for _, b := range g.totals {
		out = append(out, Entry{Key: b.key, Count: b.count, Sum: b.sum})
	}
	sort.Slice(out, func(a, b int) bool { return value.Less(out[a].Key, out[b].Key) })
	return out
}

// Table renders the snapshot as a two-column table (key, value).
func (g *Group) Table(keyCol, valCol string) (*table.Table, error) {
	s, err := schema.New(schema.Column{Name: keyCol}, schema.Column{Name: valCol})
	if err != nil {
		return nil, err
	}
	t := table.New(s)
	for _, e := range g.Snapshot() {
		t.AppendValues(e.Key, e.Value(g.reduce))
	}
	return t, nil
}
